(* Tests for the regex engine: parser, NFA compilation, Pike VM — including
   a property check against a naive reference matcher over a small
   alphabet, and the paper's HTTP pattern. *)

module Regex = Gigascope_regex.Regex
module Ast = Gigascope_regex.Ast
module Parse = Gigascope_regex.Parse
module Nfa = Gigascope_regex.Nfa

let check = Alcotest.check
let qtest ?(count = 300) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let m pattern s = Regex.matches (Regex.compile pattern) s

(* ----------------------------- basics ---------------------------------- *)

let test_literals () =
  check Alcotest.bool "exact" true (m "abc" "abc");
  check Alcotest.bool "substring match (unanchored)" true (m "abc" "xxabcxx");
  check Alcotest.bool "no match" false (m "abc" "abd");
  check Alcotest.bool "empty pattern matches anything" true (m "" "whatever");
  check Alcotest.bool "empty input vs empty pattern" true (m "" "");
  check Alcotest.bool "empty input vs literal" false (m "a" "")

let test_dot () =
  check Alcotest.bool "dot matches any" true (m "a.c" "abc");
  check Alcotest.bool "dot not newline" false (m "a.c" "a\nc");
  check Alcotest.bool "dot needs a char" false (m "a.c" "ac")

let test_classes () =
  check Alcotest.bool "range" true (m "[a-z]+" "hello");
  check Alcotest.bool "negated" true (m "[^0-9]" "x");
  check Alcotest.bool "negated miss" false (m "^[^0-9]$" "5");
  check Alcotest.bool "multi-range" true (m "^[a-zA-Z0-9]+$" "Az09");
  check Alcotest.bool "literal dash at end" true (m "^[a-]+$" "a-a");
  check Alcotest.bool "class with escape" true (m "[\\n\\t]" "a\tb")

let test_anchors () =
  check Alcotest.bool "bol" true (m "^abc" "abcdef");
  check Alcotest.bool "bol miss" false (m "^abc" "xabc");
  check Alcotest.bool "eol" true (m "abc$" "xxabc");
  check Alcotest.bool "eol miss" false (m "abc$" "abcx");
  check Alcotest.bool "both" true (m "^abc$" "abc");
  check Alcotest.bool "both miss" false (m "^abc$" "aabc")

let test_repetition () =
  check Alcotest.bool "star zero" true (m "^ab*c$" "ac");
  check Alcotest.bool "star many" true (m "^ab*c$" "abbbbc");
  check Alcotest.bool "plus needs one" false (m "^ab+c$" "ac");
  check Alcotest.bool "plus one" true (m "^ab+c$" "abc");
  check Alcotest.bool "opt zero" true (m "^ab?c$" "ac");
  check Alcotest.bool "opt one" true (m "^ab?c$" "abc");
  check Alcotest.bool "opt not two" false (m "^ab?c$" "abbc")

let test_bounded_repetition () =
  check Alcotest.bool "{3} exact" true (m "^a{3}$" "aaa");
  check Alcotest.bool "{3} under" false (m "^a{3}$" "aa");
  check Alcotest.bool "{3} over" false (m "^a{3}$" "aaaa");
  check Alcotest.bool "{2,4} low" true (m "^a{2,4}$" "aa");
  check Alcotest.bool "{2,4} high" true (m "^a{2,4}$" "aaaa");
  check Alcotest.bool "{2,4} out" false (m "^a{2,4}$" "aaaaa");
  check Alcotest.bool "{2,} unbounded" true (m "^a{2,}$" (String.make 50 'a'));
  check Alcotest.bool "{2,} under" false (m "^a{2,}$" "a")

let test_alternation () =
  check Alcotest.bool "left" true (m "^(cat|dog)$" "cat");
  check Alcotest.bool "right" true (m "^(cat|dog)$" "dog");
  check Alcotest.bool "neither" false (m "^(cat|dog)$" "cow");
  check Alcotest.bool "nested" true (m "^a(b|c(d|e))f$" "acef")

let test_escapes () =
  check Alcotest.bool "\\d" true (m "^\\d+$" "123");
  check Alcotest.bool "\\d miss" false (m "^\\d+$" "12a");
  check Alcotest.bool "\\w" true (m "^\\w+$" "ab_9");
  check Alcotest.bool "\\s" true (m "\\s" "a b");
  check Alcotest.bool "\\S" false (m "^\\S+$" "a b");
  check Alcotest.bool "escaped dot" false (m "^a\\.c$" "abc");
  check Alcotest.bool "escaped dot literal" true (m "^a\\.c$" "a.c");
  check Alcotest.bool "escaped star" true (m "^a\\*$" "a*");
  check Alcotest.bool "hex escape" true (m "^\\x41$" "A")

let test_paper_pattern () =
  (* the Section 4 experiment's pattern *)
  let rx = Regex.compile "^[^\\n]*HTTP/1.*" in
  let cases =
    [
      ("GET / HTTP/1.1\r\nHost: x", true);
      ("HTTP/1.0 200 OK", true);
      ("POST /cgi HTTP/1.1", true);
      ("\nHTTP/1.1", false); (* first line must contain it *)
      ("plain data", false);
      ("HTTP/2 h2", false);
      ("", false);
    ]
  in
  List.iter
    (fun (s, want) -> check Alcotest.bool (Printf.sprintf "%S" s) want (Regex.matches rx s))
    cases

let test_syntax_errors () =
  let bad = ["("; "a)"; "["; "[a-"; "a{2"; "a{3,1}"; "*a"; "+"; "\\"] in
  List.iter
    (fun pattern ->
      match Regex.compile_opt pattern with
      | None -> ()
      | Some _ -> Alcotest.failf "pattern %S should be rejected" pattern)
    bad

let test_error_positions () =
  match Regex.compile "ab(cd" with
  | exception Regex.Syntax_error (_, pos) -> check Alcotest.bool "position sane" true (pos >= 2)
  | _ -> Alcotest.fail "expected syntax error"

let test_program_size () =
  let small = Regex.compile "abc" in
  let big = Regex.compile "a{50}" in
  check Alcotest.bool "bounded repetition expands" true
    (Regex.program_size big > Regex.program_size small)

let test_bytes_api () =
  let rx = Regex.compile "HTTP" in
  check Alcotest.bool "bytes match" true (Regex.matches_bytes rx (Bytes.of_string "xHTTPx"));
  check Alcotest.bool "sub match" true
    (Regex.matches_bytes_sub rx (Bytes.of_string "xHTTPx") ~pos:1 ~len:4);
  check Alcotest.bool "sub miss" false
    (Regex.matches_bytes_sub rx (Bytes.of_string "xHTTPx") ~pos:2 ~len:4)

let test_pathological_linear () =
  (* catastrophic-backtracking inputs: a Pike VM stays linear *)
  let rx = Regex.compile "^(a*)*b$" in
  let s = String.make 2000 'a' in
  check Alcotest.bool "no blowup, no match" false (Regex.matches rx s);
  let rx2 = Regex.compile "a?a?a?a?a?a?a?a?a?a?aaaaaaaaaa" in
  check Alcotest.bool "classic pathological case matches" true
    (Regex.matches rx2 (String.make 10 'a'))

(* ----------------- property: engine vs naive reference ----------------- *)

(* A tiny reference matcher that directly interprets the AST, returning the
   set of end positions reachable from position [i]. Exponential in the
   worst case, fine for the tiny patterns/inputs generated below. *)
let rec ref_ends ast s i ~start : int list =
  let n = String.length s in
  match ast with
  | Ast.Empty -> [i]
  | Ast.Class cs -> if i < n && Ast.charset_mem cs s.[i] then [i + 1] else []
  | Ast.Bol -> if i = start then [i] else []
  | Ast.Eol -> if i = n then [i] else []
  | Ast.Seq (a, b) ->
      List.concat_map (fun j -> ref_ends b s j ~start) (ref_ends a s i ~start)
      |> List.sort_uniq compare
  | Ast.Alt (a, b) -> List.sort_uniq compare (ref_ends a s i ~start @ ref_ends b s i ~start)
  | Ast.Opt a -> List.sort_uniq compare (i :: ref_ends a s i ~start)
  | Ast.Plus a -> ref_ends (Ast.Seq (a, Ast.Star a)) s i ~start
  | Ast.Repeat (a, min_n, max_n) ->
      let rec expand k positions acc =
        let acc = if k >= min_n then List.sort_uniq compare (acc @ positions) else acc in
        let stop = (match max_n with Some mx -> k >= mx | None -> k >= 10) || positions = [] in
        if stop then acc
        else
          let next =
            List.concat_map (fun j -> ref_ends a s j ~start) positions |> List.sort_uniq compare
          in
          expand (k + 1) next acc
      in
      expand 0 [i] []
  | Ast.Star a ->
      let rec go seen frontier =
        let frontier' =
          List.concat_map (fun j -> ref_ends a s j ~start) frontier
          |> List.filter (fun j -> not (List.mem j seen))
          |> List.sort_uniq compare
        in
        if frontier' = [] then seen else go (List.sort_uniq compare (seen @ frontier')) frontier'
      in
      go [i] [i]

let ref_matches ast s =
  let n = String.length s in
  let rec try_from i = i <= n && (ref_ends ast s i ~start:0 <> [] || try_from (i + 1)) in
  try_from 0

let gen_pattern =
  let open QCheck.Gen in
  let rec gen depth =
    if depth = 0 then oneofl ["a"; "b"; "."; "[ab]"; "[^a]"]
    else
      oneof
        [
          gen 0;
          map2 (fun a b -> a ^ b) (gen (depth - 1)) (gen (depth - 1));
          map2 (fun a b -> "(" ^ a ^ "|" ^ b ^ ")") (gen (depth - 1)) (gen (depth - 1));
          map (fun a -> "(" ^ a ^ ")*") (gen (depth - 1));
          map (fun a -> "(" ^ a ^ ")?") (gen (depth - 1));
          map (fun a -> "(" ^ a ^ ")+") (gen (depth - 1));
        ]
  in
  gen 3

let gen_input = QCheck.Gen.(string_size ~gen:(oneofl ['a'; 'b'; 'c']) (int_range 0 8))

let engine_vs_reference =
  qtest ~count:1000 "Pike VM agrees with naive reference"
    (QCheck.make (QCheck.Gen.pair gen_pattern gen_input))
    (fun (pattern, input) ->
      let ast = Parse.parse pattern in
      let prog = Nfa.compile ast in
      let engine = Gigascope_regex.Engine.search prog input ~pos:0 ~len:(String.length input) in
      engine = ref_matches ast input)

let anchored_vs_reference =
  qtest ~count:500 "anchored patterns agree with reference"
    (QCheck.make (QCheck.Gen.pair gen_pattern gen_input))
    (fun (pattern, input) ->
      let pattern = "^" ^ pattern ^ "$" in
      let ast = Parse.parse pattern in
      let prog = Nfa.compile ast in
      let engine = Gigascope_regex.Engine.search prog input ~pos:0 ~len:(String.length input) in
      engine = ref_matches ast input)

let () =
  Alcotest.run "regex"
    [
      ( "matching",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "classes" `Quick test_classes;
          Alcotest.test_case "anchors" `Quick test_anchors;
          Alcotest.test_case "repetition" `Quick test_repetition;
          Alcotest.test_case "bounded repetition" `Quick test_bounded_repetition;
          Alcotest.test_case "alternation" `Quick test_alternation;
          Alcotest.test_case "escapes" `Quick test_escapes;
          Alcotest.test_case "paper HTTP pattern" `Quick test_paper_pattern;
          Alcotest.test_case "bytes api" `Quick test_bytes_api;
          Alcotest.test_case "pathological linear" `Quick test_pathological_linear;
        ] );
      ( "parser",
        [
          Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
          Alcotest.test_case "program size" `Quick test_program_size;
        ] );
      ("properties", [engine_vs_reference; anchored_vs_reference]);
    ]
