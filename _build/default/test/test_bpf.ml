(* Tests for the filter machine: validator, interpreter, and — the key
   property — compiled predicates agreeing with direct evaluation over
   decoded packets. *)

module Insn = Gigascope_bpf.Insn
module Vm = Gigascope_bpf.Vm
module Filter = Gigascope_bpf.Filter
module Packet = Gigascope_packet.Packet
module Ipaddr = Gigascope_packet.Ipaddr
module Prng = Gigascope_util.Prng

let check = Alcotest.check
let qtest ?(count = 200) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ----------------------------- validator ------------------------------- *)

let test_validate_empty () =
  match Insn.validate [||] with Error _ -> () | Ok () -> Alcotest.fail "empty accepted"

let test_validate_fall_off () =
  match Insn.validate [| Insn.Ld_imm 1 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "fall-off accepted"

let test_validate_backward_jump () =
  match Insn.validate [| Insn.Ja 0; Insn.Jeq (0, -2, 0); Insn.Ret 0 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "backward jump accepted"

let test_validate_out_of_range () =
  match Insn.validate [| Insn.Jeq (0, 5, 5); Insn.Ret 0 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range jump accepted"

let test_validate_good () =
  let prog = [| Insn.Ld_abs_u16 12; Insn.Jeq (0x800, 0, 1); Insn.Ret 100; Insn.Ret 0 |] in
  match Insn.validate prog with Ok () -> () | Error e -> Alcotest.fail e

(* ---------------------------- interpreter ------------------------------ *)

let test_vm_arithmetic () =
  let prog =
    [|
      Insn.Ld_imm 10; Insn.Alu_add 5; Insn.Alu_sub 3; Insn.Alu_lsh 2; Insn.Alu_rsh 1;
      Insn.Alu_and 0xff; Insn.Alu_or 0x100; Insn.Tax; Insn.Txa; Insn.Jeq (0x118, 0, 1);
      Insn.Ret 1; Insn.Ret 0;
    |]
  in
  check Alcotest.int "alu chain" 1 (Vm.run prog (Bytes.create 1))

let test_vm_loads () =
  let pkt = Bytes.of_string "\x01\x02\x03\x04\x05\x06" in
  let run_one insn expect =
    let prog = [| insn; Insn.Jeq (expect, 0, 1); Insn.Ret 1; Insn.Ret 0 |] in
    check Alcotest.int "load matches" 1 (Vm.run prog pkt)
  in
  run_one (Insn.Ld_abs_u8 2) 0x03;
  run_one (Insn.Ld_abs_u16 1) 0x0203;
  run_one (Insn.Ld_abs_u32 0) 0x01020304;
  run_one Insn.Ld_len 6

let test_vm_indexed_load () =
  let pkt = Bytes.of_string "\x00\x00\x00\xaa\xbb" in
  let prog = [| Insn.Ldx_imm 3; Insn.Ld_ind_u8 1; Insn.Jeq (0xbb, 0, 1); Insn.Ret 1; Insn.Ret 0 |] in
  check Alcotest.int "X-indexed load" 1 (Vm.run prog pkt)

let test_vm_out_of_bounds_rejects () =
  let prog = [| Insn.Ld_abs_u32 100; Insn.Ret 1 |] in
  check Alcotest.int "oob load -> reject" 0 (Vm.run prog (Bytes.create 8))

let test_vm_jset () =
  let prog = [| Insn.Ld_imm 0x12; Insn.Jset (0x10, 0, 1); Insn.Ret 1; Insn.Ret 0 |] in
  check Alcotest.int "jset hit" 1 (Vm.run prog (Bytes.create 1));
  let prog2 = [| Insn.Ld_imm 0x12; Insn.Jset (0x01, 0, 1); Insn.Ret 1; Insn.Ret 0 |] in
  check Alcotest.int "jset miss" 0 (Vm.run prog2 (Bytes.create 1))

let test_vm_ip_hlen_idiom () =
  (* version 4, IHL 6 -> X = 24 *)
  let pkt = Bytes.make 30 '\000' in
  Bytes.set pkt 14 '\x46';
  let prog = [| Insn.Ldx_ip_hlen 14; Insn.Txa; Insn.Jeq (24, 0, 1); Insn.Ret 1; Insn.Ret 0 |] in
  check Alcotest.int "IHL decode" 1 (Vm.run prog pkt)

(* ------------------------------ Filter --------------------------------- *)

let tcp_pkt ?(src = "10.0.0.1") ?(dst = "10.0.0.2") ?(sport = 1234) ?(dport = 80) ?(ttl = 64) () =
  Packet.encode
    (Packet.tcp ~ttl ~src:(Ipaddr.of_string src) ~dst:(Ipaddr.of_string dst) ~src_port:sport
       ~dst_port:dport ~payload:(Bytes.of_string "payload") ())

let udp_pkt ?(dport = 53) () =
  Packet.encode
    (Packet.udp ~src:(Ipaddr.of_string "10.0.0.3") ~dst:(Ipaddr.of_string "10.0.0.4")
       ~src_port:5353 ~dst_port:dport ~payload:(Bytes.of_string "q") ())

let test_filter_port80 () =
  let f = Filter.(And (Cmp (Ip_protocol, Eq, 6), Cmp (Dst_port, Eq, 80))) in
  let prog = Filter.compile f in
  check Alcotest.bool "tcp:80 accepted" true (Vm.accepts prog (tcp_pkt ()));
  check Alcotest.bool "tcp:443 rejected" false (Vm.accepts prog (tcp_pkt ~dport:443 ()));
  check Alcotest.bool "udp rejected" false (Vm.accepts prog (udp_pkt ~dport:80 ()))

let test_filter_ip_fields () =
  let f = Filter.(Cmp (Ip_src, Eq, Ipaddr.of_string "10.0.0.1")) in
  let prog = Filter.compile f in
  check Alcotest.bool "src ip match" true (Vm.accepts prog (tcp_pkt ()));
  check Alcotest.bool "src ip miss" false (Vm.accepts prog (tcp_pkt ~src:"10.0.0.9" ()))

let test_filter_snap_len () =
  let prog = Filter.compile ~snap_len:96 Filter.True in
  check Alcotest.int "accept returns snap" 96 (Vm.run prog (tcp_pkt ()))

let test_filter_not_or () =
  let f = Filter.(Or (Cmp (Dst_port, Eq, 22), Not (Cmp (Ip_ttl, Ge, 10)))) in
  let prog = Filter.compile f in
  check Alcotest.bool "or-left" true (Vm.accepts prog (tcp_pkt ~dport:22 ()));
  check Alcotest.bool "or-right via not" true (Vm.accepts prog (tcp_pkt ~ttl:3 ()));
  check Alcotest.bool "neither" false (Vm.accepts prog (tcp_pkt ~dport:80 ~ttl:64 ()))

let test_filter_rejects_non_ip () =
  let arp = Bytes.make 40 '\000' in
  Gigascope_packet.Bytes_util.set_u16 arp 12 0x0806;
  let prog = Filter.compile Filter.True in
  check Alcotest.bool "non-ip rejected" false (Vm.accepts prog arp)

let test_filter_fragment_guard () =
  (* a transport-field predicate must reject non-first fragments *)
  let payload = Bytes.make 2000 'x' in
  let pkt = Packet.udp ~ident:9 ~src:1 ~dst:2 ~src_port:1111 ~dst_port:53 ~payload () in
  let frags = Gigascope_packet.Frag.fragment ~mtu:576 pkt in
  let later_frag = Packet.encode (List.nth frags 1) in
  let f = Filter.(Cmp (Dst_port, Eq, 53)) in
  let prog = Filter.compile f in
  check Alcotest.bool "first fragment has ports" true
    (Vm.accepts prog (Packet.encode (List.hd frags)));
  check Alcotest.bool "later fragment rejected" false (Vm.accepts prog later_frag)

(* random predicates over random packets: compiled = direct evaluation *)
let gen_filter seed =
  let rng = Prng.create seed in
  let fields =
    [|
      Filter.Ip_version; Filter.Ip_tos; Filter.Ip_total_len; Filter.Ip_ttl; Filter.Ip_protocol;
      Filter.Ip_src; Filter.Ip_dst; Filter.Src_port; Filter.Dst_port;
    |]
  in
  let cmps = [| Filter.Eq; Filter.Ne; Filter.Lt; Filter.Le; Filter.Gt; Filter.Ge |] in
  let rec gen depth =
    if depth = 0 then
      let field = fields.(Prng.int rng (Array.length fields)) in
      let k =
        match field with
        | Filter.Ip_src | Filter.Ip_dst -> Ipaddr.of_octets 10 0 0 (Prng.int rng 8)
        | Filter.Ip_protocol -> [| 6; 17; 1 |].(Prng.int rng 3)
        | Filter.Src_port | Filter.Dst_port -> [| 80; 443; 53; 1234; 5353 |].(Prng.int rng 5)
        | _ -> Prng.int rng 256
      in
      Filter.Cmp (field, cmps.(Prng.int rng (Array.length cmps)), k)
    else
      match Prng.int rng 4 with
      | 0 -> Filter.And (gen (depth - 1), gen (depth - 1))
      | 1 -> Filter.Or (gen (depth - 1), gen (depth - 1))
      | 2 -> Filter.Not (gen (depth - 1))
      | _ -> gen 0
  in
  gen (1 + Prng.int rng 2)

let gen_packet seed =
  let rng = Prng.create (seed + 7919) in
  let src = Ipaddr.of_octets 10 0 0 (Prng.int rng 8) in
  let dst = Ipaddr.of_octets 10 0 0 (Prng.int rng 8) in
  let sport = [| 80; 443; 53; 1234; 5353 |].(Prng.int rng 5) in
  let dport = [| 80; 443; 53; 1234; 5353 |].(Prng.int rng 5) in
  let payload = Bytes.make (Prng.int rng 64) 'p' in
  if Prng.bool rng then
    Packet.encode (Packet.tcp ~ttl:(1 + Prng.int rng 255) ~src ~dst ~src_port:sport ~dst_port:dport ~payload ())
  else Packet.encode (Packet.udp ~ttl:(1 + Prng.int rng 255) ~src ~dst ~src_port:sport ~dst_port:dport ~payload ())

let compiled_matches_direct =
  qtest ~count:500 "compiled filter = direct evaluation" QCheck.small_int (fun seed ->
      let f = gen_filter seed in
      let pkt = gen_packet seed in
      let prog = Filter.compile f in
      Vm.accepts prog pkt = Filter.eval f pkt)

let compiled_programs_validate =
  qtest ~count:200 "every compiled program validates" QCheck.small_int (fun seed ->
      let prog = Filter.compile (gen_filter seed) in
      Insn.validate prog = Ok ())

let () =
  Alcotest.run "bpf"
    [
      ( "validator",
        [
          Alcotest.test_case "empty" `Quick test_validate_empty;
          Alcotest.test_case "fall off" `Quick test_validate_fall_off;
          Alcotest.test_case "backward jump" `Quick test_validate_backward_jump;
          Alcotest.test_case "out of range" `Quick test_validate_out_of_range;
          Alcotest.test_case "good program" `Quick test_validate_good;
        ] );
      ( "vm",
        [
          Alcotest.test_case "arithmetic" `Quick test_vm_arithmetic;
          Alcotest.test_case "loads" `Quick test_vm_loads;
          Alcotest.test_case "indexed load" `Quick test_vm_indexed_load;
          Alcotest.test_case "out-of-bounds rejects" `Quick test_vm_out_of_bounds_rejects;
          Alcotest.test_case "jset" `Quick test_vm_jset;
          Alcotest.test_case "IHL idiom" `Quick test_vm_ip_hlen_idiom;
        ] );
      ( "filter",
        [
          Alcotest.test_case "port 80" `Quick test_filter_port80;
          Alcotest.test_case "ip fields" `Quick test_filter_ip_fields;
          Alcotest.test_case "snap length" `Quick test_filter_snap_len;
          Alcotest.test_case "not/or" `Quick test_filter_not_or;
          Alcotest.test_case "non-ip rejected" `Quick test_filter_rejects_non_ip;
          Alcotest.test_case "fragment guard" `Quick test_filter_fragment_guard;
          compiled_matches_direct;
          compiled_programs_validate;
        ] );
    ]
