test/test_rts.ml: Alcotest Array Gigascope_rts Gigascope_util Hashtbl List Option QCheck QCheck_alcotest Result String
