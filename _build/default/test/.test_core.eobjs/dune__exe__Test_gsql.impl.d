test/test_gsql.ml: Alcotest Format Gigascope Gigascope_bpf Gigascope_gsql Gigascope_packet Gigascope_rts Hashtbl List Option Printf QCheck QCheck_alcotest String
