test/test_fuzz.ml: Alcotest Array Bytes Char Gigascope Gigascope_gsql Gigascope_lpm Gigascope_packet Gigascope_regex Gigascope_rts Gigascope_util List Printf QCheck QCheck_alcotest Result String
