test/test_gsql.mli:
