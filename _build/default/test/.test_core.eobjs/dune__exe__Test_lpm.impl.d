test/test_lpm.ml: Alcotest Filename Fun Gigascope_lpm Gigascope_packet Gigascope_util List Option QCheck QCheck_alcotest Sys
