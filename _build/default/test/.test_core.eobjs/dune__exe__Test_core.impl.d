test/test_core.ml: Alcotest Array Bytes Gigascope Gigascope_packet Gigascope_rts List Option Result String
