test/test_util.ml: Alcotest Float Gen Gigascope_util Hashtbl List Option QCheck QCheck_alcotest
