test/test_bpf.ml: Alcotest Array Bytes Gigascope_bpf Gigascope_packet Gigascope_util List QCheck QCheck_alcotest
