test/test_sim.ml: Alcotest Float Gigascope_sim List
