test/test_integration.ml: Alcotest Array Bytes Filename Gigascope Gigascope_gsql Gigascope_nic Gigascope_packet Gigascope_rts List Printf Result String Sys
