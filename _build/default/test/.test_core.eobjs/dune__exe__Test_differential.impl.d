test/test_differential.ml: Alcotest Array Gigascope Gigascope_gsql Gigascope_rts Gigascope_traffic Gigascope_util Hashtbl List Option Printf QCheck QCheck_alcotest Result String
