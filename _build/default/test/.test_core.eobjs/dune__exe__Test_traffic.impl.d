test/test_traffic.ml: Alcotest Array Bytes Float Gigascope_packet Gigascope_regex Gigascope_traffic Gigascope_util Hashtbl List Printf
