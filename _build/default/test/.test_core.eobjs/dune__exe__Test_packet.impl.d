test/test_packet.ml: Alcotest Bytes Char Filename Gen Gigascope_packet Gigascope_util List QCheck QCheck_alcotest String Sys
