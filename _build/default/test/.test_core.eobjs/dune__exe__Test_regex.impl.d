test/test_regex.ml: Alcotest Bytes Gigascope_regex List Printf QCheck QCheck_alcotest String
