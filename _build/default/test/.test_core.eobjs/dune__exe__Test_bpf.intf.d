test/test_bpf.mli:
