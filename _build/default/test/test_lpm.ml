(* Tests for longest-prefix matching: the trie against a linear-scan
   oracle, and the prefix-table file format behind getlpmid's handle. *)

module Trie = Gigascope_lpm.Trie
module Table = Gigascope_lpm.Table
module Ipaddr = Gigascope_packet.Ipaddr
module Prng = Gigascope_util.Prng

let check = Alcotest.check
let qtest ?(count = 200) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let ip = Ipaddr.of_string

let test_basic_lookup () =
  let t = Trie.create () in
  Trie.add t ~prefix:(ip "10.0.0.0") ~len:8 "ten";
  Trie.add t ~prefix:(ip "10.1.0.0") ~len:16 "ten-one";
  check Alcotest.(option string) "longest wins" (Some "ten-one") (Trie.lookup t (ip "10.1.2.3"));
  check Alcotest.(option string) "shorter covers rest" (Some "ten") (Trie.lookup t (ip "10.2.2.3"));
  check Alcotest.(option string) "no match" None (Trie.lookup t (ip "11.0.0.1"))

let test_default_route () =
  let t = Trie.create () in
  Trie.add t ~prefix:0 ~len:0 "default";
  Trie.add t ~prefix:(ip "192.168.0.0") ~len:16 "lan";
  check Alcotest.(option string) "default catches all" (Some "default") (Trie.lookup t (ip "8.8.8.8"));
  check Alcotest.(option string) "specific beats default" (Some "lan")
    (Trie.lookup t (ip "192.168.1.1"))

let test_host_route () =
  let t = Trie.create () in
  Trie.add t ~prefix:(ip "1.2.3.4") ~len:32 "host";
  check Alcotest.(option string) "/32 exact" (Some "host") (Trie.lookup t (ip "1.2.3.4"));
  check Alcotest.(option string) "/32 near miss" None (Trie.lookup t (ip "1.2.3.5"))

let test_lookup_with_len () =
  let t = Trie.create () in
  Trie.add t ~prefix:(ip "10.0.0.0") ~len:8 1;
  Trie.add t ~prefix:(ip "10.0.0.0") ~len:24 2;
  check Alcotest.(option (pair int int)) "len reported" (Some (2, 24))
    (Trie.lookup_with_len t (ip "10.0.0.99"));
  check Alcotest.(option (pair int int)) "shorter len" (Some (1, 8))
    (Trie.lookup_with_len t (ip "10.0.1.99"))

let test_replace_and_remove () =
  let t = Trie.create () in
  Trie.add t ~prefix:(ip "10.0.0.0") ~len:8 "a";
  Trie.add t ~prefix:(ip "10.0.0.0") ~len:8 "b";
  check Alcotest.int "replace keeps size" 1 (Trie.size t);
  check Alcotest.(option string) "replaced value" (Some "b") (Trie.lookup t (ip "10.1.1.1"));
  Trie.remove t ~prefix:(ip "10.0.0.0") ~len:8;
  check Alcotest.int "removed" 0 (Trie.size t);
  check Alcotest.(option string) "gone" None (Trie.lookup t (ip "10.1.1.1"))

let test_iter () =
  let t = Trie.create () in
  Trie.add t ~prefix:(ip "10.0.0.0") ~len:8 1;
  Trie.add t ~prefix:(ip "192.168.0.0") ~len:16 2;
  Trie.add t ~prefix:0 ~len:0 0;
  let seen = ref [] in
  Trie.iter (fun ~prefix:_ ~len v -> seen := (len, v) :: !seen) t;
  check Alcotest.int "iter visits all" 3 (List.length !seen)

let test_bad_len () =
  Alcotest.check_raises "len 33 rejected" (Invalid_argument "Trie.add: bad prefix length")
    (fun () -> Trie.add (Trie.create ()) ~prefix:0 ~len:33 ())

(* property: trie vs linear scan of (prefix, len) entries *)
let trie_vs_linear =
  qtest ~count:300 "trie agrees with linear scan" QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let n = 1 + Prng.int rng 40 in
      let entries =
        List.init n (fun i ->
            let len = Prng.int rng 33 in
            let prefix = Prng.int rng 0x7fffffff land Ipaddr.prefix_mask len in
            (prefix, len, i))
      in
      let t = Trie.create () in
      List.iter (fun (prefix, len, v) -> Trie.add t ~prefix ~len v) entries;
      (* deduplicate like the trie does: later entry wins for same prefix *)
      let lookup_linear addr =
        let best = ref None in
        List.iter
          (fun (prefix, len, v) ->
            if Ipaddr.in_prefix addr ~prefix ~len then
              match !best with
              | Some (blen, _) when blen > len -> ()
              | Some (blen, _) when blen = len -> best := Some (len, v) (* later wins *)
              | _ -> best := Some (len, v))
          entries;
        Option.map snd !best
      in
      List.for_all
        (fun _ ->
          let addr = Prng.int rng 0x7fffffff in
          Trie.lookup t addr = lookup_linear addr)
        (List.init 50 Fun.id))

(* ------------------------------ Table ---------------------------------- *)

let table_text = {|
# peer prefixes
10.0.0.0/8     7018
10.1.0.0/16    701    # more specific
192.168.0.0/16 64512
|}

let test_table_parse () =
  match Table.load_string table_text with
  | Ok t ->
      check Alcotest.int "three entries" 3 (Table.size t);
      check Alcotest.(option int) "longest wins" (Some 701) (Table.lookup t (ip "10.1.2.3"));
      check Alcotest.(option int) "shorter" (Some 7018) (Table.lookup t (ip "10.2.2.3"));
      check Alcotest.(option int) "no match" None (Table.lookup t (ip "172.16.0.1"))
  | Error e -> Alcotest.fail e

let test_table_errors () =
  (match Table.load_string "10.0.0.0/8" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing id accepted");
  (match Table.load_string "10.0.0.0/8 notanumber" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad id accepted");
  match Table.load_string "10.0.0.0/40 5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad prefix length accepted"

let test_table_file () =
  let path = Filename.temp_file "lpm" ".tbl" in
  let oc = open_out path in
  output_string oc table_text;
  close_out oc;
  (match Table.load_file path with
  | Ok t -> check Alcotest.(option int) "from file" (Some 64512) (Table.lookup t (ip "192.168.3.4"))
  | Error e -> Alcotest.fail e);
  Sys.remove path;
  match Table.load_file "/nonexistent/never.tbl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

let test_table_of_entries () =
  let t = Table.of_entries [("1.0.0.0/8", 1); ("1.2.3.4", 99)] in
  check Alcotest.(option int) "bare address is /32" (Some 99) (Table.lookup t (ip "1.2.3.4"));
  check Alcotest.(option int) "covered by /8" (Some 1) (Table.lookup t (ip "1.2.3.5"))

let () =
  Alcotest.run "lpm"
    [
      ( "trie",
        [
          Alcotest.test_case "basic" `Quick test_basic_lookup;
          Alcotest.test_case "default route" `Quick test_default_route;
          Alcotest.test_case "host route" `Quick test_host_route;
          Alcotest.test_case "lookup with len" `Quick test_lookup_with_len;
          Alcotest.test_case "replace/remove" `Quick test_replace_and_remove;
          Alcotest.test_case "iter" `Quick test_iter;
          Alcotest.test_case "bad length" `Quick test_bad_len;
          trie_vs_linear;
        ] );
      ( "table",
        [
          Alcotest.test_case "parse" `Quick test_table_parse;
          Alcotest.test_case "errors" `Quick test_table_errors;
          Alcotest.test_case "file" `Quick test_table_file;
          Alcotest.test_case "of_entries" `Quick test_table_of_entries;
        ] );
    ]
