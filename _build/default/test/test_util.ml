(* Tests for the utility kernel: PRNG, ring buffers, heaps, statistics. *)

module Prng = Gigascope_util.Prng
module Ring = Gigascope_util.Ring
module Minheap = Gigascope_util.Minheap
module Stats = Gigascope_util.Stats

let check = Alcotest.check
let qtest ?(count = 200) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------- Prng ---------------------------------- *)

let test_prng_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same seed, same sequence" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  check Alcotest.bool "different seeds diverge" true (!same < 4)

let test_prng_copy () =
  let a = Prng.create 3 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Prng.bits64 a) (Prng.bits64 b);
  ignore (Prng.bits64 a);
  (* now they have diverged in position *)
  check Alcotest.bool "copies are independent state" true (Prng.bits64 a <> Prng.bits64 b || true)

let prng_int_bounds =
  qtest "Prng.int stays in [0,n)" QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let v = Prng.int rng n in
      v >= 0 && v < n)

let prng_float_bounds =
  qtest "Prng.float stays in [0,x)" QCheck.(pair small_int (float_range 0.001 1e6))
    (fun (seed, x) ->
      let rng = Prng.create seed in
      let v = Prng.float rng x in
      v >= 0.0 && v < x)

let test_prng_int_rejects_bad_bound () =
  Alcotest.check_raises "n=0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int (Prng.create 1) 0))

let test_prng_exponential_mean () =
  let rng = Prng.create 11 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential rng 2.0
  done;
  let mean = !sum /. float_of_int n in
  check (Alcotest.float 0.15) "exponential mean ~ 2.0" 2.0 mean

let test_prng_bool_balance () =
  let rng = Prng.create 5 in
  let heads = ref 0 in
  for _ = 1 to 10000 do
    if Prng.bool rng then incr heads
  done;
  check Alcotest.bool "bool is roughly fair" true (!heads > 4500 && !heads < 5500)

let test_prng_choose () =
  let rng = Prng.create 9 in
  (* zero-weight element must never be chosen *)
  for _ = 1 to 1000 do
    check Alcotest.string "zero weight never picked" "a"
      (Prng.choose rng [| (1.0, "a"); (0.0, "b") |])
  done

let test_prng_choose_weights () =
  let rng = Prng.create 10 in
  let counts = Hashtbl.create 2 in
  for _ = 1 to 10000 do
    let k = Prng.choose rng [| (3.0, "x"); (1.0, "y") |] in
    Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0)
  done;
  let x = Hashtbl.find counts "x" in
  check Alcotest.bool "3:1 weighting respected" true (x > 7000 && x < 8000)

let test_prng_pareto_min () =
  let rng = Prng.create 12 in
  for _ = 1 to 1000 do
    check Alcotest.bool "pareto >= xmin" true (Prng.pareto rng ~alpha:1.5 ~xmin:0.5 >= 0.5)
  done

let test_prng_geometric () =
  let rng = Prng.create 13 in
  check Alcotest.int "p=1 is always 0" 0 (Prng.geometric rng 1.0);
  for _ = 1 to 100 do
    check Alcotest.bool "geometric nonnegative" true (Prng.geometric rng 0.3 >= 0)
  done

(* ------------------------------- Ring ---------------------------------- *)

let test_ring_fifo () =
  let r = Ring.create ~capacity:4 in
  List.iter (fun x -> ignore (Ring.push r x)) [1; 2; 3];
  check Alcotest.(option int) "fifo pop 1" (Some 1) (Ring.pop r);
  check Alcotest.(option int) "fifo pop 2" (Some 2) (Ring.pop r);
  ignore (Ring.push r 4);
  check Alcotest.(option int) "fifo pop 3" (Some 3) (Ring.pop r);
  check Alcotest.(option int) "fifo pop 4" (Some 4) (Ring.pop r);
  check Alcotest.(option int) "empty pops None" None (Ring.pop r)

let test_ring_bounded_and_drops () =
  let r = Ring.create ~capacity:2 in
  check Alcotest.bool "push ok" true (Ring.push r 1);
  check Alcotest.bool "push ok" true (Ring.push r 2);
  check Alcotest.bool "push on full fails" false (Ring.push r 3);
  check Alcotest.int "drop counted" 1 (Ring.drops r);
  Ring.reset_drops r;
  check Alcotest.int "drops reset" 0 (Ring.drops r)

let test_ring_push_force () =
  let r = Ring.create ~capacity:2 in
  ignore (Ring.push r 1);
  ignore (Ring.push r 2);
  Ring.push_force r 3;
  check Alcotest.(list int) "oldest evicted" [2; 3] (Ring.to_list r)

let test_ring_high_water () =
  let r = Ring.create ~capacity:8 in
  ignore (Ring.push r 1);
  ignore (Ring.push r 2);
  ignore (Ring.pop r);
  ignore (Ring.push r 3);
  check Alcotest.int "high water tracks max length" 2 (Ring.high_water r)

let test_ring_clear () =
  let r = Ring.create ~capacity:4 in
  ignore (Ring.push r 1);
  Ring.clear r;
  check Alcotest.bool "cleared" true (Ring.is_empty r);
  check Alcotest.(option int) "peek empty" None (Ring.peek r)

let test_ring_bad_capacity () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Ring.create ~capacity:0))

let ring_model =
  (* against a functional queue model: any sequence of pushes and pops
     behaves like a bounded FIFO *)
  qtest ~count:500 "ring behaves as a bounded FIFO"
    QCheck.(list (option small_int))
    (fun ops ->
      let r = Ring.create ~capacity:5 in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              let accepted = Ring.push r x in
              let model_accepts = List.length !model < 5 in
              if model_accepts then model := !model @ [x];
              accepted = model_accepts
          | None -> (
              let got = Ring.pop r in
              match !model with
              | [] -> got = None
              | y :: rest ->
                  model := rest;
                  got = Some y))
        ops)

(* ------------------------------ Minheap -------------------------------- *)

let test_heap_sorted_pops () =
  let h = Minheap.create () in
  List.iter (fun p -> Minheap.add h ~prio:p p) [5.0; 1.0; 3.0; 2.0; 4.0];
  let out = List.init 5 (fun _ -> fst (Option.get (Minheap.pop h))) in
  check Alcotest.(list (float 0.0)) "pops in priority order" [1.0; 2.0; 3.0; 4.0; 5.0] out

let test_heap_fifo_ties () =
  let h = Minheap.create () in
  Minheap.add h ~prio:1.0 "first";
  Minheap.add h ~prio:1.0 "second";
  Minheap.add h ~prio:1.0 "third";
  check Alcotest.(option (pair (float 0.0) string)) "ties pop in insertion order"
    (Some (1.0, "first")) (Minheap.pop h);
  check Alcotest.(option (pair (float 0.0) string)) "ties pop in insertion order"
    (Some (1.0, "second")) (Minheap.pop h)

let test_heap_min_peek () =
  let h = Minheap.create () in
  check Alcotest.bool "empty min is None" true (Minheap.min h = None);
  Minheap.add h ~prio:2.0 "x";
  Minheap.add h ~prio:1.0 "y";
  check Alcotest.(option (pair (float 0.0) string)) "min peeks without removing" (Some (1.0, "y"))
    (Minheap.min h);
  check Alcotest.int "length unchanged by min" 2 (Minheap.length h)

let heap_sorted_property =
  qtest ~count:300 "heap pops any multiset in sorted order"
    QCheck.(list (float_range (-1000.0) 1000.0))
    (fun prios ->
      let h = Minheap.create () in
      List.iter (fun p -> Minheap.add h ~prio:p ()) prios;
      let rec drain last =
        match Minheap.pop h with
        | None -> true
        | Some (p, ()) -> p >= last && drain p
      in
      drain neg_infinity)

let test_heap_clear () =
  let h = Minheap.create () in
  Minheap.add h ~prio:1.0 1;
  Minheap.clear h;
  check Alcotest.bool "cleared" true (Minheap.is_empty h)

let test_heap_growth () =
  let h = Minheap.create () in
  for i = 999 downto 0 do
    Minheap.add h ~prio:(float_of_int i) i
  done;
  check Alcotest.int "holds 1000" 1000 (Minheap.length h);
  check Alcotest.(option (pair (float 0.0) int)) "min after growth" (Some (0.0, 0))
    (Minheap.pop h)

(* ------------------------------ Stats ---------------------------------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [1.0; 2.0; 3.0; 4.0];
  check Alcotest.int "count" 4 (Stats.count s);
  check (Alcotest.float 1e-9) "total" 10.0 (Stats.total s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min_value s);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.max_value s);
  check (Alcotest.float 1e-9) "variance" 1.25 (Stats.variance s)

let test_stats_empty () =
  let s = Stats.create () in
  check (Alcotest.float 0.0) "mean of empty" 0.0 (Stats.mean s);
  check (Alcotest.float 0.0) "variance of empty" 0.0 (Stats.variance s);
  check (Alcotest.float 0.0) "percentile of empty" 0.0 (Stats.percentile s 50.0)

let stats_welford_matches_direct =
  qtest ~count:200 "Welford mean/variance match direct computation"
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-100.0) 100.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. n in
      Float.abs (Stats.mean s -. mean) < 1e-6 && Float.abs (Stats.variance s -. var) < 1e-4)

let test_stats_percentiles () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check Alcotest.bool "median near 50" true (Float.abs (Stats.percentile s 50.0 -. 50.5) < 2.0);
  check Alcotest.bool "p0 is min" true (Stats.percentile s 0.0 = 1.0);
  check Alcotest.bool "p100 is max" true (Stats.percentile s 100.0 = 100.0);
  check Alcotest.bool "percentiles monotone" true
    (Stats.percentile s 25.0 <= Stats.percentile s 75.0)

let test_stats_reservoir_overflow () =
  (* more observations than the reservoir holds: percentiles stay sane *)
  let s = Stats.create ~reservoir:64 () in
  for i = 1 to 100_000 do
    Stats.add s (float_of_int (i mod 1000))
  done;
  check Alcotest.int "count exact" 100_000 (Stats.count s);
  let p50 = Stats.percentile s 50.0 in
  check Alcotest.bool "median estimate in range" true (p50 > 200.0 && p50 < 800.0);
  check Alcotest.bool "min exact" true (Stats.min_value s = 0.0);
  check Alcotest.bool "max exact" true (Stats.max_value s = 999.0)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          prng_int_bounds;
          prng_float_bounds;
          Alcotest.test_case "int bad bound" `Quick test_prng_int_rejects_bad_bound;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "bool balance" `Quick test_prng_bool_balance;
          Alcotest.test_case "choose zero weight" `Quick test_prng_choose;
          Alcotest.test_case "choose weights" `Quick test_prng_choose_weights;
          Alcotest.test_case "pareto min" `Quick test_prng_pareto_min;
          Alcotest.test_case "geometric" `Quick test_prng_geometric;
        ] );
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "bounded + drops" `Quick test_ring_bounded_and_drops;
          Alcotest.test_case "push_force" `Quick test_ring_push_force;
          Alcotest.test_case "high water" `Quick test_ring_high_water;
          Alcotest.test_case "clear" `Quick test_ring_clear;
          Alcotest.test_case "bad capacity" `Quick test_ring_bad_capacity;
          ring_model;
        ] );
      ( "minheap",
        [
          Alcotest.test_case "sorted pops" `Quick test_heap_sorted_pops;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "min peek" `Quick test_heap_min_peek;
          heap_sorted_property;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "growth" `Quick test_heap_growth;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          stats_welford_matches_direct;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "reservoir overflow" `Quick test_stats_reservoir_overflow;
        ] );
    ]
