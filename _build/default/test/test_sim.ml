(* Tests for the Section-4 host simulation: calibration sanity, loss
   monotonicity in offered rate, and the configuration ordering the paper
   reports (disk << libpcap ~ host-LFTA << NIC-LFTA). *)

module Sim = Gigascope_sim
module Params = Sim.Params
module Host_model = Sim.Host_model
module Calibrate = Sim.Calibrate

let check = Alcotest.check

(* small fixed costs so sim tests do not depend on machine speed *)
let fixed_costs =
  { Calibrate.c_interpret = 0.7e-6; c_lfta = 0.3e-6; c_hfta = 5.0e-6; c_bpf = 0.1e-6 }

let loss config rate =
  let w = Params.default_workload ~background_mbps:(Float.max 0.0 (rate -. 60.0)) in
  (Host_model.simulate Params.default_host w config fixed_costs ~duration:8.0).Host_model.loss

let test_calibration_positive () =
  let c = Calibrate.measure ~packets:200 () in
  check Alcotest.bool "interpret cost positive" true (c.Calibrate.c_interpret > 0.0);
  check Alcotest.bool "regex cost positive" true (c.Calibrate.c_hfta > 0.0);
  check Alcotest.bool "regex much dearer than bpf" true
    (c.Calibrate.c_hfta > 5.0 *. c.Calibrate.c_bpf)

let test_calibration_scale () =
  let c = fixed_costs in
  let s = Calibrate.scale c 2.0 in
  check (Alcotest.float 1e-12) "scaled" (2.0 *. c.Calibrate.c_hfta) s.Calibrate.c_hfta

let test_low_rate_no_loss () =
  List.iter
    (fun config ->
      check Alcotest.bool (Host_model.config_name config ^ " lossless at 80 Mbit/s") true
        (loss config 80.0 < 0.001))
    [Host_model.Disk_dump; Host_model.Pcap_discard; Host_model.Host_lfta; Host_model.Nic_lfta]

let test_loss_monotone_in_rate () =
  List.iter
    (fun config ->
      let l200 = loss config 200.0 and l400 = loss config 400.0 and l600 = loss config 600.0 in
      check Alcotest.bool (Host_model.config_name config ^ " loss nondecreasing") true
        (l200 <= l400 +. 0.02 && l400 <= l600 +. 0.02))
    [Host_model.Disk_dump; Host_model.Pcap_discard; Host_model.Host_lfta]

let test_paper_ordering () =
  (* at 300 Mbit/s: disk is drowning, capture paths are fine *)
  check Alcotest.bool "disk lossy at 300" true (loss Host_model.Disk_dump 300.0 > 0.02);
  check Alcotest.bool "pcap fine at 300" true (loss Host_model.Pcap_discard 300.0 < 0.02);
  check Alcotest.bool "host-lfta fine at 300" true (loss Host_model.Host_lfta 300.0 < 0.02);
  (* at 610: only the NIC configuration survives *)
  check Alcotest.bool "pcap dead at 610" true (loss Host_model.Pcap_discard 610.0 > 0.02);
  check Alcotest.bool "host-lfta dead at 610" true (loss Host_model.Host_lfta 610.0 > 0.02);
  check Alcotest.bool "nic-lfta survives 610" true (loss Host_model.Nic_lfta 610.0 < 0.02)

let test_livelock_detected () =
  (* interrupts saturate the CPU when pps * t_interrupt reaches 1: with
     750-byte packets and 8 us interrupts that is ~750 Mbit/s offered *)
  let w = Params.default_workload ~background_mbps:1000.0 in
  let r = Host_model.simulate Params.default_host w Host_model.Pcap_discard fixed_costs ~duration:5.0 in
  check Alcotest.bool "livelock slices observed at saturation" true (r.Host_model.livelock_slices > 0)

let test_disk_stalls_observed () =
  let w = Params.default_workload ~background_mbps:200.0 in
  let r = Host_model.simulate Params.default_host w Host_model.Disk_dump fixed_costs ~duration:8.0 in
  check Alcotest.bool "flush stalls happened" true (r.Host_model.stall_slices > 0)

let test_accounting_consistent () =
  List.iter
    (fun config ->
      let w = Params.default_workload ~background_mbps:300.0 in
      let r = Host_model.simulate Params.default_host w config fixed_costs ~duration:5.0 in
      check Alcotest.bool
        (Host_model.config_name config ^ ": delivered+dropped <= offered")
        true
        (r.Host_model.delivered + r.Host_model.dropped <= r.Host_model.offered);
      check Alcotest.bool "loss in [0,1]" true (r.Host_model.loss >= 0.0 && r.Host_model.loss <= 1.0))
    [Host_model.Disk_dump; Host_model.Pcap_discard; Host_model.Host_lfta; Host_model.Nic_lfta]

let test_experiment_summary_shape () =
  let s =
    Sim.Experiment.run ~rates:[100.0; 300.0; 610.0] ~duration:5.0 ~cpu_scale:1.0 ()
  in
  check Alcotest.int "three rows" 3 (List.length s.Sim.Experiment.rows);
  check Alcotest.int "four configs" 4 (List.length s.Sim.Experiment.max_rate);
  let best = List.assoc Host_model.Nic_lfta s.Sim.Experiment.max_rate in
  let worst = List.assoc Host_model.Disk_dump s.Sim.Experiment.max_rate in
  check Alcotest.bool "nic beats disk" true (best > worst)

let () =
  Alcotest.run "sim"
    [
      ( "calibrate",
        [
          Alcotest.test_case "positive costs" `Quick test_calibration_positive;
          Alcotest.test_case "scaling" `Quick test_calibration_scale;
        ] );
      ( "host-model",
        [
          Alcotest.test_case "lossless at low rate" `Quick test_low_rate_no_loss;
          Alcotest.test_case "loss monotone in rate" `Quick test_loss_monotone_in_rate;
          Alcotest.test_case "paper ordering" `Quick test_paper_ordering;
          Alcotest.test_case "livelock detected" `Quick test_livelock_detected;
          Alcotest.test_case "disk stalls observed" `Quick test_disk_stalls_observed;
          Alcotest.test_case "accounting consistent" `Quick test_accounting_consistent;
        ] );
      ("experiment", [Alcotest.test_case "summary shape" `Quick test_experiment_summary_shape]);
    ]
