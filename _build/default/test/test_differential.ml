(* Differential testing of the query compiler: randomly generated GSQL
   queries are executed twice over identical traffic —

     (a) straight over the Protocol source, so the splitter produces the
         LFTA/HFTA physical plan (with sub/super aggregate decomposition,
         NIC hints, the direct-mapped table, punctuation translation...);
     (b) over a pass-through stream of the same fields, which forces a
         single unsplit HFTA;

   and the result multisets must be identical. This is the property that
   makes the paper's central optimization trustworthy: splitting is purely
   a physical rewrite. *)

module E = Gigascope.Engine
module Rts = Gigascope_rts
module Value = Rts.Value
module Prng = Gigascope_util.Prng
module Traffic = Gigascope_traffic

let qtest ?(count = 25) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------ random query synthesis ------------------------ *)

(* predicates over cheap fields only (both variants must see identical
   inputs, so no partial functions in the random space) *)
let random_pred rng =
  let atoms =
    [|
      (fun () -> Printf.sprintf "destport %s %d"
          [| "="; "<>"; "<"; ">" |].(Prng.int rng 4)
          [| 80; 443; 53; 1024 |].(Prng.int rng 4));
      (fun () -> Printf.sprintf "len %s %d" [| "<"; ">" |].(Prng.int rng 2) (200 + Prng.int rng 800));
      (fun () -> "protocol = 6");
      (fun () -> "protocol = 17");
      (fun () -> Printf.sprintf "ttl > %d" (Prng.int rng 64));
      (fun () -> Printf.sprintf "srcport & %d <> 0" (1 lsl Prng.int rng 10));
    |]
  in
  let atom () = atoms.(Prng.int rng (Array.length atoms)) () in
  match Prng.int rng 4 with
  | 0 -> atom ()
  | 1 -> Printf.sprintf "%s and %s" (atom ()) (atom ())
  | 2 -> Printf.sprintf "%s or %s" (atom ()) (atom ())
  | _ -> Printf.sprintf "%s and (%s or %s)" (atom ()) (atom ()) (atom ())

type shape = Selection | Grouped

let random_query rng =
  let shape = if Prng.bool rng then Selection else Grouped in
  let pred = random_pred rng in
  match shape with
  | Selection ->
      let fields =
        (* time first so results are comparable; a couple of extras *)
        ["time"; "destport"]
        @ (if Prng.bool rng then ["srcip"] else [])
        @ if Prng.bool rng then ["len"] else []
      in
      (shape, String.concat ", " fields, pred, "")
  | Grouped ->
      let bucket = [| 1; 2; 5 |].(Prng.int rng 3) in
      let extra_key = if Prng.bool rng then ", destport" else "" in
      let aggs =
        [| "count(*) as c"; "count(*) as c, sum(len) as s"; "count(*) as c, min(len) as mn, max(len) as mx";
           "count(*) as c, avg(len) as av" |].(Prng.int rng 4)
      in
      ( shape,
        Printf.sprintf "tb%s, %s" (if extra_key = "" then "" else ", destport") aggs,
        pred,
        Printf.sprintf "GROUP BY time/%d as tb%s" bucket extra_key )

(* pass-through field list covering everything the random space can use *)
let passthrough_fields = "time, srcip, destip, srcport, destport, protocol, len, ttl, data_length"

let build_query ~split ~items ~pred ~group =
  if split then
    Printf.sprintf
      {| DEFINE { query_name q_split; }
         SELECT %s FROM eth0.tcp WHERE %s %s |}
      items pred group
  else
    Printf.sprintf
      {|
      DEFINE { query_name raw_passthrough; }
      SELECT %s FROM eth0.tcp

      DEFINE { query_name q_unsplit; }
      SELECT %s FROM raw_passthrough WHERE %s %s
    |}
      passthrough_fields items pred group

let run_variant ~split ~packets ~items ~pred ~group =
  let engine = E.create ~default_capacity:300_000 () in
  E.add_packet_list_interface engine ~name:"eth0" packets;
  match E.install_program engine (build_query ~split ~items ~pred ~group) with
  | Error e -> Error e
  | Ok _ -> (
      let out = ref [] in
      let name = if split then "q_split" else "q_unsplit" in
      (match E.on_tuple engine name (fun t -> out := Array.to_list t :: !out) with
      | Ok () -> ()
      | Error e -> failwith e);
      match E.run engine () with
      | Ok _ -> Ok (List.sort compare !out)
      | Error e -> Error e)

let traffic seed =
  let gen =
    Traffic.Gen.create
      { Traffic.Gen.default with Traffic.Gen.duration = 0.4; rate_mbps = 40.0; seed; n_flows = 64 }
  in
  let rec go acc = match Traffic.Gen.next gen with Some p -> go (p :: acc) | None -> List.rev acc in
  go []

let split_equals_unsplit =
  qtest ~count:30 "split plan = unsplit plan on random queries" QCheck.small_int (fun seed ->
      let rng = Prng.create (seed * 31 + 7) in
      let _, items, pred, group = random_query rng in
      let packets = traffic (seed + 1000) in
      match
        ( run_variant ~split:true ~packets ~items ~pred ~group,
          run_variant ~split:false ~packets ~items ~pred ~group )
      with
      | Ok a, Ok b ->
          if a = b then true
          else
            QCheck.Test.fail_reportf "mismatch for SELECT %s WHERE %s %s: %d vs %d rows" items
              pred group (List.length a) (List.length b)
      | Error e, _ | _, Error e ->
          QCheck.Test.fail_reportf "query failed (SELECT %s WHERE %s %s): %s" items pred group e)

(* a second differential: NIC filtering must never change query results *)
let nic_never_changes_results =
  qtest ~count:15 "NIC push-down = dumb card on random queries" QCheck.small_int (fun seed ->
      let rng = Prng.create (seed * 17 + 3) in
      let _, items, pred, group = random_query rng in
      let packets = traffic (seed + 2000) in
      let run cap =
        let engine = E.create ~default_capacity:300_000 () in
        E.add_packet_list_interface engine ~name:"eth0" ~capability:cap packets;
        match
          E.install_query engine ~name:"q"
            (Printf.sprintf "SELECT %s FROM eth0.tcp WHERE %s %s" items pred group)
        with
        | Error e -> Error e
        | Ok _ -> (
            let out = ref [] in
            (match E.on_tuple engine "q" (fun t -> out := Array.to_list t :: !out) with
            | Ok () -> ()
            | Error e -> failwith e);
            match E.run engine () with
            | Ok _ -> Ok (List.sort compare !out)
            | Error e -> Error e)
      in
      match (run E.Cap_none, run E.Cap_bpf, run E.Cap_lfta) with
      | Ok a, Ok b, Ok c ->
          if a = b && b = c then true
          else QCheck.Test.fail_reportf "NIC capability changed results for SELECT %s WHERE %s %s" items pred group
      | Error e, _, _ | _, Error e, _ | _, _, Error e ->
          QCheck.Test.fail_reportf "query failed: %s" e)

(* a third property: the analyzer's imputed ordering properties are kept
   by the running pipeline — every output column promised monotone or
   banded actually is *)
let imputed_ordering_holds =
  qtest ~count:25 "imputed ordering properties hold at runtime" QCheck.small_int (fun seed ->
      let rng = Prng.create (seed * 13 + 11) in
      let _, items, pred, group = random_query rng in
      let packets = traffic (seed + 3000) in
      let engine = E.create ~default_capacity:300_000 () in
      E.add_packet_list_interface engine ~name:"eth0" packets;
      match
        E.install_query engine ~name:"q"
          (Printf.sprintf "SELECT %s FROM eth0.tcp WHERE %s %s" items pred group)
      with
      | Error e -> QCheck.Test.fail_reportf "compile failed: %s" e
      | Ok _ -> (
          let schema =
            match Gigascope_gsql.Catalog.find_stream (E.catalog engine) "q" with
            | Some s -> s
            | None -> failwith "schema missing"
          in
          let module Schema = Rts.Schema in
          let module Order_prop = Rts.Order_prop in
          (* per promised-ordered column: running extremum + band check *)
          let watchers =
            Array.to_list (Schema.fields schema)
            |> List.mapi (fun i (f : Schema.field) -> (i, f.Schema.order))
            |> List.filter_map (fun (i, order) ->
                   match order with
                   | Order_prop.Strict d | Order_prop.Monotone d ->
                       Some (i, d, 0.0)
                   | Order_prop.Banded (d, b) -> Some (i, d, b)
                   | _ -> None)
          in
          let violations = ref [] in
          let extrema = Hashtbl.create 4 in
          Result.get_ok
            (E.on_tuple engine "q" (fun t ->
                 List.iter
                   (fun (i, dir, band) ->
                     match Value.to_float t.(i) with
                     | None -> ()
                     | Some v ->
                         let prev =
                           Option.value (Hashtbl.find_opt extrema i)
                             ~default:
                               (match dir with
                               | Rts.Order_prop.Asc -> neg_infinity
                               | Desc -> infinity)
                         in
                         (match dir with
                         | Rts.Order_prop.Asc ->
                             if v < prev -. band then violations := (i, v, prev) :: !violations;
                             if v > prev then Hashtbl.replace extrema i v
                         | Desc ->
                             if v > prev +. band then violations := (i, v, prev) :: !violations;
                             if v < prev then Hashtbl.replace extrema i v))
                   watchers));
          match E.run engine () with
          | Error e -> QCheck.Test.fail_reportf "run failed: %s" e
          | Ok _ ->
              if !violations = [] then true
              else
                let i, v, prev = List.hd !violations in
                QCheck.Test.fail_reportf
                  "SELECT %s WHERE %s %s: column %d promised ordered but saw %g after %g" items
                  pred group i v prev))

let () =
  Alcotest.run "differential"
    [("properties", [split_equals_unsplit; nic_never_changes_results; imputed_ordering_holds])]
