(* End-to-end integration tests: GSQL text compiled, installed, and run
   through the engine over crafted packet lists, with exact expected
   results. These exercise the whole stack at once — interpretation,
   LFTA/HFTA split, punctuation, heartbeats, UDFs with handles, query
   parameters, composition, merge, join, sampling, pcap replay. *)

module E = Gigascope.Engine
module Rts = Gigascope_rts
module Gsql = Gigascope_gsql
module Value = Rts.Value
module Packet = Gigascope_packet.Packet
module Tcp = Gigascope_packet.Tcp
module Ipaddr = Gigascope_packet.Ipaddr

let check = Alcotest.check

let ip = Ipaddr.of_string

(* crafted packets: ts, src, dst, sport, dport, payload *)
let tcp_pkt ts src dst sport dport payload =
  Packet.tcp ~ts ~src:(ip src) ~dst:(ip dst) ~src_port:sport ~dst_port:dport
    ~payload:(Bytes.of_string payload) ()

let udp_pkt ts src dst sport dport payload =
  Packet.udp ~ts ~src:(ip src) ~dst:(ip dst) ~src_port:sport ~dst_port:dport
    ~payload:(Bytes.of_string payload) ()

let collect engine name =
  let rows = ref [] in
  Result.get_ok (E.on_tuple engine name (fun t -> rows := Array.copy t :: !rows));
  fun () -> List.rev !rows

let run engine = match E.run engine () with Ok s -> s | Error e -> Alcotest.fail e

let install engine ?params text =
  match E.install_program engine ?params text with
  | Ok insts -> insts
  | Error e -> Alcotest.fail e

let row_to_string row =
  String.concat "," (List.map Value.to_string (Array.to_list row))

let check_rows name expected got =
  check Alcotest.(list string) name expected (List.map row_to_string got)

(* ------------------------- exact selection ------------------------------ *)

let test_selection_exact () =
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [
      tcp_pkt 1.0 "10.0.0.1" "10.0.0.2" 1111 80 "a";
      tcp_pkt 2.0 "10.0.0.3" "10.0.0.4" 2222 443 "b";
      udp_pkt 3.0 "10.0.0.5" "10.0.0.6" 3333 80 "c";
      tcp_pkt 4.0 "10.0.0.7" "10.0.0.8" 4444 80 "d";
    ];
  ignore
    (install engine
       {| DEFINE { query_name web; }
          SELECT time, srcip FROM eth0.tcp WHERE protocol = 6 and destport = 80 |});
  let got = collect engine "web" in
  ignore (run engine);
  check_rows "only tcp port-80 rows" ["1,10.0.0.1"; "4,10.0.0.7"] (got ())

(* --------------------- split aggregation, exact ------------------------- *)

let test_aggregation_exact () =
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [
      tcp_pkt 0.5 "10.0.0.1" "10.0.0.2" 1 80 "xx";    (* tb 0 *)
      tcp_pkt 0.9 "10.0.0.1" "10.0.0.2" 1 80 "yyy";   (* tb 0 *)
      tcp_pkt 1.2 "10.0.0.1" "10.0.0.2" 1 443 "zzzz"; (* tb 1, port 443 *)
      tcp_pkt 1.7 "10.0.0.1" "10.0.0.2" 1 80 "w";     (* tb 1 *)
      tcp_pkt 2.3 "10.0.0.1" "10.0.0.2" 1 80 "v";     (* tb 2 *)
    ];
  ignore
    (install engine
       {| DEFINE { query_name perport; }
          SELECT tb, destport, count(*) as cnt, sum(data_length) as bytes
          FROM eth0.tcp WHERE protocol = 6
          GROUP BY time/1 as tb, destport |});
  let got = collect engine "perport" in
  ignore (run engine);
  (* the split LFTA/HFTA pipeline must produce exactly the offline answer *)
  check_rows "grouped counts and sums"
    ["0,80,2,5"; "1,80,1,1"; "1,443,1,4"; "2,80,1,1"]
    (List.sort compare (got ()))

let test_avg_split_exact () =
  (* avg is the aggregate that truly tests sub/super splitting: the LFTA
     emits (sum, count) partials; the HFTA recombines with fdiv *)
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [
      tcp_pkt 0.1 "10.0.0.1" "10.0.0.2" 1 80 "aa";      (* len 2 *)
      tcp_pkt 0.2 "10.0.0.1" "10.0.0.2" 1 80 "bbbb";    (* len 4 *)
      tcp_pkt 0.3 "10.0.0.1" "10.0.0.2" 1 80 "cccccc";  (* len 6 *)
    ];
  let insts =
    install engine
      {| DEFINE { query_name avgq; }
         SELECT tb, avg(data_length) as alen
         FROM eth0.tcp WHERE protocol = 6
         GROUP BY time/1 as tb |}
  in
  (* confirm the query really did split *)
  let inst = List.hd insts in
  check Alcotest.bool "query was split into LFTA+HFTA" true
    (List.length inst.Gsql.Codegen.node_names = 2);
  let got = collect engine "avgq" in
  ignore (run engine);
  match got () with
  | [[| Value.Int 0; Value.Float a |]] -> check (Alcotest.float 1e-9) "avg = 4.0" 4.0 a
  | rows -> Alcotest.failf "unexpected rows: %s" (String.concat ";" (List.map row_to_string rows))

let test_having_exact () =
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [
      tcp_pkt 0.1 "10.0.0.1" "9.9.9.9" 1 80 "";
      tcp_pkt 0.2 "10.0.0.2" "9.9.9.9" 1 80 "";
      tcp_pkt 0.3 "10.0.0.3" "8.8.8.8" 1 80 "";
    ];
  ignore
    (install engine
       {| DEFINE { query_name busy; }
          SELECT tb, destip, count(*) as c FROM eth0.tcp
          GROUP BY time/1 as tb, destip
          HAVING count(*) >= 2 |});
  let got = collect engine "busy" in
  ignore (run engine);
  check_rows "having keeps only the busy destination" ["0,9.9.9.9,2"] (got ())

(* ------------------------- query composition ---------------------------- *)

let test_composition () =
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [
      tcp_pkt 0.1 "10.0.0.1" "10.0.0.2" 1 80 "aaaa";
      tcp_pkt 0.4 "10.0.0.1" "10.0.0.2" 1 22 "bb";
      tcp_pkt 0.7 "10.0.0.1" "10.0.0.2" 1 80 "c";
    ];
  ignore
    (install engine
       {|
       DEFINE { query_name base; }
       SELECT time, destport, data_length FROM eth0.tcp WHERE protocol = 6

       DEFINE { query_name weblen; }
       SELECT time, data_length FROM base WHERE destport = 80

       DEFINE { query_name total; }
       SELECT tb, sum(data_length) as s FROM weblen GROUP BY time/1 as tb
     |});
  let got = collect engine "total" in
  ignore (run engine);
  check_rows "three-deep composition" ["0,5"] (got ())

(* ---------------------------- parameters -------------------------------- *)

let test_query_parameters () =
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [
      tcp_pkt 0.1 "10.0.0.1" "10.0.0.2" 1 80 "";
      tcp_pkt 0.2 "10.0.0.1" "10.0.0.2" 1 443 "";
      tcp_pkt 0.3 "10.0.0.1" "10.0.0.2" 1 8080 "";
    ];
  ignore
    (install engine
       ~params:[("watch_port", Value.Int 443)]
       {| DEFINE { query_name watched; }
          SELECT time, destport FROM eth0.tcp WHERE protocol = 6 and destport = $watch_port |});
  let got = collect engine "watched" in
  ignore (run engine);
  check_rows "parameter bound at instantiation" ["0,443"] (got ())

let test_missing_parameter_discards () =
  (* an unset parameter means the predicate can never hold *)
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0" [tcp_pkt 0.1 "10.0.0.1" "10.0.0.2" 1 80 ""];
  ignore
    (install engine
       {| DEFINE { query_name unset; }
          SELECT time FROM eth0.tcp WHERE destport = $never_set |});
  let got = collect engine "unset" in
  ignore (run engine);
  check Alcotest.int "no tuples" 0 (List.length (got ()))

(* ------------------------ UDFs and handles ------------------------------ *)

let test_getlpmid_partial_function () =
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [
      tcp_pkt 0.1 "10.0.0.1" "10.1.0.9" 1 80 "";  (* matches 10/8 -> id 7018 *)
      tcp_pkt 0.2 "10.0.0.1" "11.0.0.9" 1 80 "";  (* matches 11/8 -> id 701 *)
      tcp_pkt 0.3 "10.0.0.1" "12.0.0.9" 1 80 "";  (* no prefix: discarded *)
    ];
  let table = Filename.temp_file "peers" ".tbl" in
  let oc = open_out table in
  output_string oc "10.0.0.0/8 7018\n11.0.0.0/8 701\n";
  close_out oc;
  ignore
    (install engine
       (Printf.sprintf
          {| DEFINE { query_name peers; }
             SELECT peer, count(*) as c FROM eth0.tcp
             GROUP BY time/10 as tb, getlpmid(destip, '%s') as peer |}
          table));
  let got = collect engine "peers" in
  ignore (run engine);
  Sys.remove table;
  check_rows "per-peer counts; unmatched discarded" ["7018,1"; "701,1"]
    (List.sort (fun a b -> compare b a) (got ()))

let test_regex_udf_split_pipeline () =
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [
      tcp_pkt 0.1 "10.0.0.1" "10.0.0.2" 1 80 "GET / HTTP/1.1\r\n";
      tcp_pkt 0.2 "10.0.0.1" "10.0.0.2" 1 80 "\nbinary tunnel junk";
      tcp_pkt 0.3 "10.0.0.1" "10.0.0.2" 1 80 "HTTP/1.0 200 OK";
    ];
  ignore
    (install engine
       {| DEFINE { query_name http; }
          SELECT time FROM eth0.tcp
          WHERE protocol = 6 and destport = 80
            and str_match_regex(payload, '^[^\n]*HTTP/1.*') = TRUE |});
  let got = collect engine "http" in
  ignore (run engine);
  check_rows "regex filters through the split pipeline" ["0"; "0"] (got ())

let test_custom_function_registration () =
  let engine = E.create () in
  (* a user function: port class, as the paper's analysts would add *)
  E.register_function engine
    (Rts.Func.pure ~name:"port_class" ~arg_tys:[Rts.Ty.Int] ~ret_ty:Rts.Ty.Str (fun args ->
         match args.(0) with
         | Value.Int p when p < 1024 -> Some (Value.Str "well-known")
         | Value.Int _ -> Some (Value.Str "ephemeral")
         | _ -> None));
  E.add_packet_list_interface engine ~name:"eth0"
    [tcp_pkt 0.1 "10.0.0.1" "10.0.0.2" 1 80 ""; tcp_pkt 0.2 "10.0.0.1" "10.0.0.2" 1 5000 ""];
  ignore
    (install engine
       {| DEFINE { query_name classes; }
          SELECT time, port_class(destport) as cls FROM eth0.tcp WHERE protocol = 6 |});
  let got = collect engine "classes" in
  ignore (run engine);
  check_rows "user function applied" ["0,\"well-known\""; "0,\"ephemeral\""] (got ())

(* ------------------------------ merge ----------------------------------- *)

let test_merge_exact_order () =
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [tcp_pkt 1.0 "10.0.0.1" "10.0.0.2" 1 80 ""; tcp_pkt 3.0 "10.0.0.1" "10.0.0.2" 1 80 ""];
  E.add_packet_list_interface engine ~name:"eth1"
    [tcp_pkt 2.0 "10.0.0.3" "10.0.0.4" 1 80 ""; tcp_pkt 4.0 "10.0.0.3" "10.0.0.4" 1 80 ""];
  ignore
    (install engine
       {|
       DEFINE { query_name a; } SELECT timestamp, srcip FROM eth0.tcp
       DEFINE { query_name b; } SELECT timestamp, srcip FROM eth1.tcp
       DEFINE { query_name m; } MERGE x.timestamp : y.timestamp FROM a x, b y
     |});
  let got = collect engine "m" in
  ignore (run engine);
  check_rows "globally time-ordered union"
    ["1,10.0.0.1"; "2,10.0.0.3"; "3,10.0.0.1"; "4,10.0.0.3"]
    (got ())

(* ------------------------------- join ----------------------------------- *)

let test_join_exact () =
  let engine = E.create () in
  (* dns queries on eth0, responses on eth1; join on time window + ip *)
  E.add_packet_list_interface engine ~name:"eth0"
    [
      udp_pkt 1.0 "10.0.0.1" "8.8.8.8" 5353 53 "q1";
      udp_pkt 5.0 "10.0.0.2" "8.8.8.8" 5354 53 "q2";
    ];
  E.add_packet_list_interface engine ~name:"eth1"
    [
      udp_pkt 1.5 "8.8.8.8" "10.0.0.1" 53 5353 "r1"; (* within 1s of q1 *)
      udp_pkt 9.0 "8.8.8.8" "10.0.0.2" 53 5354 "r2"; (* too late for q2 *)
    ];
  ignore
    (install engine
       {|
       DEFINE { query_name queries; }
       SELECT time, srcip, srcport FROM eth0.udp WHERE destport = 53

       DEFINE { query_name answers; }
       SELECT time, destip, destport FROM eth1.udp WHERE srcport = 53

       DEFINE { query_name paired; }
       SELECT q.time, q.srcip
       FROM queries q, answers a
       WHERE q.time >= a.time - 2 and q.time <= a.time + 2
         and q.srcip = a.destip and q.srcport = a.destport
     |});
  let got = collect engine "paired" in
  ignore (run engine);
  check_rows "only the in-window pair joins" ["1,10.0.0.1"] (got ())

(* ------------------------------ sampling -------------------------------- *)

let test_sampling () =
  let engine = E.create () in
  let packets = List.init 1000 (fun i -> tcp_pkt (float_of_int i /. 1000.0) "10.0.0.1" "10.0.0.2" 1 80 "") in
  E.add_packet_list_interface engine ~name:"eth0" packets;
  ignore
    (install engine
       {| DEFINE { query_name sampled; }
          SELECT time FROM eth0.tcp WHERE protocol = 6 SAMPLE 0.2 |});
  let got = collect engine "sampled" in
  ignore (run engine);
  let n = List.length (got ()) in
  check Alcotest.bool (Printf.sprintf "~20%% sampled (got %d)" n) true (n > 120 && n < 280)

(* ----------------------------- pcap replay ------------------------------ *)

let test_pcap_interface_end_to_end () =
  let path = Filename.temp_file "gs_e2e" ".pcap" in
  let w = Gigascope_packet.Pcap.open_writer path in
  Gigascope_packet.Pcap.write_packet w (tcp_pkt 1.0 "10.0.0.1" "10.0.0.2" 1 80 "hello");
  Gigascope_packet.Pcap.write_packet w (tcp_pkt 2.0 "10.0.0.1" "10.0.0.2" 1 22 "ssh");
  Gigascope_packet.Pcap.close_writer w;
  let engine = E.create () in
  (match E.add_pcap_interface engine ~name:"eth0" path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore
    (install engine
       {| DEFINE { query_name from_pcap; }
          SELECT time, destport, data_length FROM eth0.tcp WHERE destport = 80 |});
  let got = collect engine "from_pcap" in
  ignore (run engine);
  Sys.remove path;
  check_rows "replayed capture queried" ["1,80,5"] (got ())

(* ------------------------- NIC data reduction --------------------------- *)

let test_nic_filter_reduces_delivery () =
  let mk capability =
    let engine = E.create () in
    E.add_packet_list_interface engine ~name:"eth0" ~capability
      (List.init 100 (fun i ->
           tcp_pkt (float_of_int i /. 100.0) "10.0.0.1" "10.0.0.2" 1
             (if i mod 10 = 0 then 80 else 443)
             "ppp"));
    ignore
      (install engine
         {| DEFINE { query_name web80; }
            SELECT time, destport FROM eth0.tcp WHERE protocol = 6 and destport = 80 |});
    let got = collect engine "web80" in
    ignore (run engine);
    (engine, List.length (got ()))
  in
  let eng_dumb, n_dumb = mk E.Cap_none in
  let eng_bpf, n_bpf = mk E.Cap_bpf in
  check Alcotest.int "same query answer regardless of NIC" n_dumb n_bpf;
  let stats_of eng =
    match E.nic_of eng "eth0" with
    | Some nic -> (Gigascope_nic.Nic.stats nic).Gigascope_nic.Nic.packets_delivered
    | None -> Alcotest.fail "nic missing"
  in
  check Alcotest.int "dumb card delivers everything" 100 (stats_of eng_dumb);
  check Alcotest.int "filtering card delivers only matches" 10 (stats_of eng_bpf)

(* ------------------------ LFTA batch via engine ------------------------- *)

let test_lfta_after_start_rejected () =
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0" [tcp_pkt 0.1 "10.0.0.1" "10.0.0.2" 1 80 ""];
  ignore
    (install engine
       {| DEFINE { query_name first; } SELECT time FROM eth0.tcp |});
  ignore (run engine);
  (* a new protocol query needs a new LFTA: must be refused after start *)
  (match
     E.install_query engine ~name:"late" "SELECT time, destport FROM eth0.tcp WHERE destport = 80"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "new LFTA accepted after the RTS started");
  (* but a new HFTA over an existing stream is fine *)
  match E.install_query engine ~name:"late_hfta" "SELECT time FROM first" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("HFTA after start rejected: " ^ e)

(* ------------------------- heartbeat end-to-end ------------------------- *)

let test_heartbeats_bound_merge_buffer () =
  (* same setup as bench a3 but through the public API: fast + slow custom
     sources, MERGE in GSQL, measure the merge operator's high water *)
  let schema =
    Rts.Schema.make
      [
        { Rts.Schema.name = "ts"; ty = Rts.Ty.Int; order = Rts.Order_prop.Monotone Rts.Order_prop.Asc };
      ]
  in
  let run_one ~heartbeats =
    let engine = E.create ~default_capacity:200_000 () in
    let fast_i = ref 0 in
    Result.get_ok
      (E.add_custom_source engine ~name:"fast" ~schema
         ~pull:(fun () ->
           if !fast_i >= 50_000 then None
           else begin
             let v = !fast_i in
             incr fast_i;
             Some (Rts.Item.Tuple [| Value.Int v |])
           end)
         ~clock:(fun () -> [(0, Value.Int !fast_i)]));
    let slow_sent = ref false in
    Result.get_ok
      (E.add_custom_source engine ~name:"slow" ~schema
         ~pull:(fun () ->
           if not !slow_sent then begin
             slow_sent := true;
             Some (Rts.Item.Tuple [| Value.Int 0 |])
           end
           else if !fast_i >= 50_000 then None
           else Some Rts.Item.Flush)
         ~clock:(fun () -> [(0, Value.Int !fast_i)]));
    let insts =
      install engine {| DEFINE { query_name m; } MERGE a.ts : b.ts FROM fast a, slow b |}
    in
    (match E.run engine ~heartbeats () with Ok _ -> () | Error e -> Alcotest.fail e);
    match (List.hd insts).Gsql.Codegen.merges with
    | [(_, merge)] -> Rts.Merge_op.high_water merge
    | _ -> Alcotest.fail "expected one merge operator"
  in
  let hw_on = run_one ~heartbeats:true in
  let hw_off = run_one ~heartbeats:false in
  check Alcotest.bool
    (Printf.sprintf "heartbeats bound the buffer (on=%d, off=%d)" hw_on hw_off)
    true
    (hw_on * 10 < hw_off)

let test_multiple_instances_different_params () =
  (* "The RTS can execute multiple instances of the same LFTA, each with
     different parameters" (Section 3) *)
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [
      tcp_pkt 0.1 "10.0.0.1" "10.0.0.2" 1 80 "";
      tcp_pkt 0.2 "10.0.0.1" "10.0.0.2" 1 443 "";
      tcp_pkt 0.3 "10.0.0.1" "10.0.0.2" 1 80 "";
    ];
  let text name =
    Printf.sprintf
      {| DEFINE { query_name %s; }
         SELECT time FROM eth0.tcp WHERE protocol = 6 and destport = $port |}
      name
  in
  ignore (install engine ~params:[("port", Value.Int 80)] (text "watch80"));
  ignore (install engine ~params:[("port", Value.Int 443)] (text "watch443"));
  let got80 = collect engine "watch80" and got443 = collect engine "watch443" in
  ignore (run engine);
  check Alcotest.int "instance 1 sees its port" 2 (List.length (got80 ()));
  check Alcotest.int "instance 2 sees its port" 1 (List.length (got443 ()))

(* ------------------- protocol-level merge and join ---------------------- *)

let test_merge_directly_over_protocols () =
  (* MERGE straight over two Protocol sources: the splitter inserts an
     identity-projection LFTA per interface *)
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [tcp_pkt 1.0 "10.0.0.1" "10.0.0.2" 1 80 ""; tcp_pkt 3.0 "10.0.0.1" "10.0.0.2" 1 80 ""];
  E.add_packet_list_interface engine ~name:"eth1"
    [tcp_pkt 2.0 "10.0.0.3" "10.0.0.4" 1 80 ""; tcp_pkt 4.0 "10.0.0.3" "10.0.0.4" 1 80 ""];
  let insts =
    install engine
      {| DEFINE { query_name direct_merge; }
         MERGE a.timestamp : b.timestamp FROM eth0.tcp a, eth1.tcp b |}
  in
  let inst = List.hd insts in
  check Alcotest.int "two feeders + merge" 3 (List.length inst.Gsql.Codegen.node_names);
  let got = collect engine "direct_merge" in
  ignore (run engine);
  let stamps =
    List.filter_map
      (fun t -> match t.(1) with Value.Float f -> Some f | _ -> None)
      (got ())
  in
  check Alcotest.(list (float 1e-9)) "ordered union of both links" [1.0; 2.0; 3.0; 4.0] stamps

let test_join_directly_over_protocols () =
  (* join over two Protocol sources with a side predicate: the conjunct
     referencing only one side is pushed into that side's feeder LFTA *)
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [
      udp_pkt 1.0 "10.0.0.1" "8.8.8.8" 1111 53 "q";
      udp_pkt 2.0 "10.0.0.2" "8.8.8.8" 2222 99 "not-dns";
    ];
  E.add_packet_list_interface engine ~name:"eth1"
    [
      udp_pkt 1.2 "8.8.8.8" "10.0.0.1" 53 1111 "r";
      udp_pkt 2.1 "8.8.8.8" "10.0.0.2" 99 2222 "r2";
    ];
  let insts =
    install engine
      {| DEFINE { query_name direct_join; }
         SELECT q.time, q.srcip
         FROM eth0.udp q, eth1.udp r
         WHERE q.time >= r.time - 1 and q.time <= r.time + 1
           and q.destport = 53 and q.srcip = r.destip |}
  in
  let inst = List.hd insts in
  check Alcotest.int "two feeders + join" 3 (List.length inst.Gsql.Codegen.node_names);
  let got = collect engine "direct_join" in
  ignore (run engine);
  check_rows "side predicate pushed down, window respected" ["1,10.0.0.1"] (got ())

(* ---------------------- live-application features ----------------------- *)

let test_live_parameter_change () =
  (* "query parameters ... can be changed on-the-fly" (Section 3): flip the
     watched port mid-run via the scheduler's round hook *)
  let engine = E.create () in
  let packets =
    List.init 2000 (fun i ->
        tcp_pkt (float_of_int i /. 1000.0) "10.0.0.1" "10.0.0.2" 1
          (if i mod 2 = 0 then 80 else 443)
          "")
  in
  E.add_packet_list_interface engine ~name:"eth0" packets;
  let insts =
    install engine
      {| DEFINE { query_name live; }
         SELECT time, destport FROM eth0.tcp WHERE destport = $p |}
  in
  let inst = List.hd insts in
  Gsql.Codegen.set_param inst "p" (Value.Int 80);
  let seen80 = ref 0 and seen443 = ref 0 in
  Result.get_ok
    (E.on_tuple engine "live" (fun t ->
         match t.(1) with
         | Value.Int 80 -> incr seen80
         | Value.Int 443 -> incr seen443
         | _ -> ()));
  let flipped = ref false in
  (match
     E.run engine ~quantum:16
       ~on_round:(fun round ->
         if round = 20 && not !flipped then begin
           flipped := true;
           Gsql.Codegen.set_param inst "p" (Value.Int 443)
         end)
       ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.bool "matched port 80 before the flip" true (!seen80 > 0);
  check Alcotest.bool "matched port 443 after the flip" true (!seen443 > 0);
  check Alcotest.bool "neither saw everything" true (!seen80 < 1000 && !seen443 < 1000)

let test_flush_mid_stream () =
  (* aggregation with no ordered group key: output only arrives when the
     analyst flushes the query (Section 2.2: "the user can obtain output by
     flushing the query") *)
  let engine = E.create () in
  let packets =
    List.init 100 (fun i -> tcp_pkt (float_of_int i) "10.0.0.1" "10.0.0.2" 1 80 "x")
  in
  E.add_packet_list_interface engine ~name:"eth0" packets;
  ignore
    (install engine
       {| DEFINE { query_name unkeyed; }
          SELECT destport, count(*) as c FROM eth0.tcp GROUP BY destport |});
  let flushes_seen = ref [] in
  Result.get_ok
    (E.on_tuple engine "unkeyed" (fun t ->
         match t.(1) with Value.Int c -> flushes_seen := c :: !flushes_seen | _ -> ()));
  (match
     E.run engine ~quantum:8
       ~on_round:(fun round ->
         if round = 5 then Result.get_ok (E.flush engine "unkeyed"))
       ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* one partial emission from the flush, one final from EOF, summing to
     the full count *)
  match List.rev !flushes_seen with
  | [partial; rest] ->
      check Alcotest.bool "partial before eof" true (partial > 0 && partial < 100);
      check Alcotest.int "everything accounted for" 100 (partial + rest)
  | other -> Alcotest.failf "expected two emissions, got %d" (List.length other)

let test_stats_report () =
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [tcp_pkt 1.0 "10.0.0.1" "10.0.0.2" 1 80 ""];
  ignore (install engine {| DEFINE { query_name sr; } SELECT time FROM eth0.tcp |});
  ignore (run engine);
  let report = E.stats_report engine in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions the source" true (contains report "eth0.tcp");
  check Alcotest.bool "mentions the query" true (contains report "sr");
  check Alcotest.bool "kinds listed" true (contains report "lfta")

let test_three_way_merge () =
  let engine = E.create () in
  let mk name ts_list =
    E.add_packet_list_interface engine ~name
      (List.map (fun ts -> tcp_pkt ts "10.0.0.1" "10.0.0.2" 1 80 "") ts_list)
  in
  mk "e0" [1.0; 4.0];
  mk "e1" [2.0; 5.0];
  mk "e2" [3.0; 6.0];
  ignore
    (install engine
       {|
       DEFINE { query_name s0; } SELECT timestamp FROM e0.tcp
       DEFINE { query_name s1; } SELECT timestamp FROM e1.tcp
       DEFINE { query_name s2; } SELECT timestamp FROM e2.tcp
       DEFINE { query_name m3; } MERGE a.timestamp : b.timestamp : c.timestamp
       FROM s0 a, s1 b, s2 c
     |});
  let got = collect engine "m3" in
  ignore (run engine);
  check_rows "three-way merge in order" ["1"; "2"; "3"; "4"; "5"; "6"] (got ())

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "exact selection" `Quick test_selection_exact;
          Alcotest.test_case "exact aggregation (split)" `Quick test_aggregation_exact;
          Alcotest.test_case "avg sub/super split" `Quick test_avg_split_exact;
          Alcotest.test_case "having" `Quick test_having_exact;
          Alcotest.test_case "composition" `Quick test_composition;
          Alcotest.test_case "query parameters" `Quick test_query_parameters;
          Alcotest.test_case "missing parameter" `Quick test_missing_parameter_discards;
          Alcotest.test_case "getlpmid partial fn" `Quick test_getlpmid_partial_function;
          Alcotest.test_case "regex UDF split" `Quick test_regex_udf_split_pipeline;
          Alcotest.test_case "custom function" `Quick test_custom_function_registration;
          Alcotest.test_case "merge exact order" `Quick test_merge_exact_order;
          Alcotest.test_case "join exact" `Quick test_join_exact;
          Alcotest.test_case "sampling" `Quick test_sampling;
          Alcotest.test_case "pcap replay" `Quick test_pcap_interface_end_to_end;
          Alcotest.test_case "NIC data reduction" `Quick test_nic_filter_reduces_delivery;
          Alcotest.test_case "LFTA batch restriction" `Quick test_lfta_after_start_rejected;
          Alcotest.test_case "heartbeats bound merge" `Quick test_heartbeats_bound_merge_buffer;
          Alcotest.test_case "live parameter change" `Quick test_live_parameter_change;
          Alcotest.test_case "flush mid-stream" `Quick test_flush_mid_stream;
          Alcotest.test_case "stats report" `Quick test_stats_report;
          Alcotest.test_case "three-way merge" `Quick test_three_way_merge;
          Alcotest.test_case "merge over protocols" `Quick test_merge_directly_over_protocols;
          Alcotest.test_case "join over protocols" `Quick test_join_directly_over_protocols;
          Alcotest.test_case "multi-instance params" `Quick test_multiple_instances_different_params;
        ] );
    ]
