(* Tests for the traffic generators: determinism, rate/mix fidelity,
   payload realism (HTTP matches the paper's regex, tunnel traffic does
   not), interface partitioning, and the Netflow stream's ordering shape. *)

module Gen = Gigascope_traffic.Gen
module Netflow_gen = Gigascope_traffic.Netflow_gen
module Payload = Gigascope_traffic.Payload
module Packet = Gigascope_packet.Packet
module Netflow = Gigascope_packet.Netflow
module Regex = Gigascope_regex.Regex
module Prng = Gigascope_util.Prng

let check = Alcotest.check

let cfg ?(duration = 0.5) ?(rate = 50.0) ?(seed = 3) () =
  { Gen.default with Gen.duration; rate_mbps = rate; seed }

let drain gen =
  let rec go acc = match Gen.next gen with Some p -> go (p :: acc) | None -> List.rev acc in
  go []

let test_determinism () =
  let a = drain (Gen.create (cfg ())) and b = drain (Gen.create (cfg ())) in
  check Alcotest.int "same packet count" (List.length a) (List.length b);
  List.iter2
    (fun p q ->
      check Alcotest.string "identical wire bytes" (Bytes.to_string (Packet.encode p))
        (Bytes.to_string (Packet.encode q)))
    a b

let test_seed_changes_stream () =
  let a = drain (Gen.create (cfg ~seed:1 ())) and b = drain (Gen.create (cfg ~seed:2 ())) in
  check Alcotest.bool "different seeds differ" true (List.length a <> List.length b ||
    List.exists2 (fun p q -> Packet.encode p <> Packet.encode q) a b)

let test_timestamps_monotone () =
  let pkts = drain (Gen.create (cfg ())) in
  let rec ordered = function
    | a :: (b :: _ as rest) -> a.Packet.ts <= b.Packet.ts && ordered rest
    | _ -> true
  in
  check Alcotest.bool "timestamps nondecreasing" true (ordered pkts);
  check Alcotest.bool "nonempty" true (List.length pkts > 100)

let test_rate_approximation () =
  let pkts = drain (Gen.create (cfg ~duration:1.0 ~rate:100.0 ~seed:8 ())) in
  let bytes = List.fold_left (fun acc p -> acc + p.Packet.wire_len) 0 pkts in
  let mbps = float_of_int (bytes * 8) /. 1e6 in
  check Alcotest.bool
    (Printf.sprintf "offered ~100 Mbit/s (got %.0f)" mbps)
    true
    (mbps > 50.0 && mbps < 200.0)

let test_port80_fraction () =
  let g =
    Gen.create { (cfg ~duration:1.0 ~rate:50.0 ()) with Gen.port80_fraction = 0.5; bursty = false }
  in
  let pkts = drain g in
  let port80 =
    List.length
      (List.filter
         (fun p -> match Packet.tcp_header p with Some h -> h.Gigascope_packet.Tcp.dst_port = 80 | None -> false)
         pkts)
  in
  let frac = float_of_int port80 /. float_of_int (List.length pkts) in
  check Alcotest.bool (Printf.sprintf "port-80 share ~0.5 (got %.2f)" frac) true
    (frac > 0.3 && frac < 0.7)

let test_payload_realism () =
  let rx = Regex.compile "^[^\\n]*HTTP/1.*" in
  let rng = Prng.create 5 in
  for _ = 1 to 50 do
    let http = Payload.http_request rng 200 in
    check Alcotest.bool "http_request matches paper regex" true
      (Regex.matches rx (Bytes.to_string http));
    let resp = Payload.http_response rng 100 in
    check Alcotest.bool "http_response matches" true (Regex.matches rx (Bytes.to_string resp));
    let tunnel = Payload.tunneled rng 200 in
    check Alcotest.bool "tunneled payload does not match" false
      (Regex.matches rx (Bytes.to_string tunnel))
  done

let test_generated_http_share () =
  let g =
    Gen.create
      { (cfg ~duration:1.0 ~rate:40.0 ~seed:17 ()) with Gen.port80_fraction = 1.0; http_fraction = 0.5 }
  in
  let rx = Regex.compile "^[^\\n]*HTTP/1.*" in
  let pkts = drain g in
  let http =
    List.length
      (List.filter (fun p -> Regex.matches_bytes rx (Packet.payload p)) pkts)
  in
  let frac = float_of_int http /. float_of_int (List.length pkts) in
  check Alcotest.bool (Printf.sprintf "~half of port-80 is HTTP (got %.2f)" frac) true
    (frac > 0.3 && frac < 0.7)

let test_interface_partition () =
  (* with two interfaces, a flow sticks to one; both see traffic; the two
     substreams are disjoint and cover everything *)
  let c = { (cfg ~duration:0.5 ()) with Gen.interface_count = 2 } in
  let g = Gen.create c in
  let counts = [| 0; 0 |] in
  let rec go () =
    match Gen.next_with_interface g with
    | Some (_, iface) ->
        counts.(iface) <- counts.(iface) + 1;
        go ()
    | None -> ()
  in
  go ();
  check Alcotest.bool "both interfaces carry traffic" true (counts.(0) > 0 && counts.(1) > 0)

let test_clock_advances () =
  let g = Gen.create (cfg ()) in
  let t0 = Gen.clock g in
  ignore (Gen.next g);
  ignore (Gen.next g);
  check Alcotest.bool "clock advanced" true (Gen.clock g > t0)

let test_uniform_random_mode () =
  (* adversarial mode: almost every packet has a unique 5-tuple *)
  let g = Gen.create { (cfg ~duration:0.3 ()) with Gen.uniform_random = true } in
  let pkts = drain g in
  let keys = Hashtbl.create 64 in
  List.iter
    (fun p ->
      match (Packet.ip_header p, Packet.tcp_header p) with
      | Some ip, Some tcp ->
          Hashtbl.replace keys
            (ip.Gigascope_packet.Ipv4.src, ip.Gigascope_packet.Ipv4.dst,
             tcp.Gigascope_packet.Tcp.src_port)
            ()
      | _ -> ())
    pkts;
  let tcp_count =
    List.length (List.filter (fun p -> Packet.tcp_header p <> None) pkts)
  in
  check Alcotest.bool "mostly unique flows" true
    (Hashtbl.length keys > tcp_count * 9 / 10)

(* ----------------------------- Netflow_gen ------------------------------ *)

let test_netflow_end_time_sorted () =
  let records = Netflow_gen.to_list { Netflow_gen.default with Netflow_gen.duration = 90.0 } in
  check Alcotest.bool "nonempty" true (List.length records > 100);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Netflow.end_ts <= b.Netflow.end_ts && sorted rest
    | _ -> true
  in
  check Alcotest.bool "sorted on end time" true (sorted records)

let test_netflow_start_banded () =
  (* "the start attribute is banded-increasing(dump interval)": start_ts is
     always within the dump interval of the running max start seen *)
  let cfg = { Netflow_gen.default with Netflow_gen.duration = 120.0; dump_interval = 30.0 } in
  let records = Netflow_gen.to_list cfg in
  let high = ref neg_infinity in
  let ok = ref true in
  List.iter
    (fun r ->
      if r.Netflow.start_ts < !high -. 2.0 *. cfg.Netflow_gen.dump_interval then ok := false;
      high := Float.max !high r.Netflow.start_ts)
    records;
  check Alcotest.bool "starts banded within dump intervals" true !ok;
  (* and genuinely out of order (otherwise the band is vacuous) *)
  let rec strictly_sorted = function
    | a :: (b :: _ as rest) -> a.Netflow.start_ts <= b.Netflow.start_ts && strictly_sorted rest
    | _ -> true
  in
  check Alcotest.bool "starts NOT fully sorted" false (strictly_sorted records)

let test_netflow_deterministic () =
  let a = Netflow_gen.to_list Netflow_gen.default in
  let b = Netflow_gen.to_list Netflow_gen.default in
  check Alcotest.int "same record count" (List.length a) (List.length b);
  check Alcotest.bool "identical streams" true (a = b)

let () =
  Alcotest.run "traffic"
    [
      ( "gen",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_stream;
          Alcotest.test_case "timestamps monotone" `Quick test_timestamps_monotone;
          Alcotest.test_case "rate approximation" `Quick test_rate_approximation;
          Alcotest.test_case "port-80 fraction" `Quick test_port80_fraction;
          Alcotest.test_case "payload realism" `Quick test_payload_realism;
          Alcotest.test_case "generated HTTP share" `Quick test_generated_http_share;
          Alcotest.test_case "interface partition" `Quick test_interface_partition;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "uniform random mode" `Quick test_uniform_random_mode;
        ] );
      ( "netflow",
        [
          Alcotest.test_case "end-time sorted" `Quick test_netflow_end_time_sorted;
          Alcotest.test_case "start banded" `Quick test_netflow_start_banded;
          Alcotest.test_case "deterministic" `Quick test_netflow_deterministic;
        ] );
    ]
