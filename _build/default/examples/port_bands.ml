(* Predicate-defined groups with the MD-join — the paper's Section 5
   future-work item ("the complex group definition mechanisms" of the
   MD-join paper), wired in as a user-written query node through the
   stream manager's bypass API ("users can write their own query nodes to
   implement special operators", Section 3).

   Ordinary GROUP BY cannot express these buckets: they overlap (port 80 is
   both "well-known" and "web") and quiet buckets must still report zero
   every interval.

     dune exec examples/port_bands.exe
*)

module E = Gigascope.Engine
module Rts = Gigascope_rts
module Value = Rts.Value
module Traffic = Gigascope_traffic

(* the base relation: (bucket name, low port, high port) *)
let buckets =
  [|
    [| Value.Str "well-known"; Value.Int 0; Value.Int 1023 |];
    [| Value.Str "registered"; Value.Int 1024; Value.Int 49151 |];
    [| Value.Str "dynamic"; Value.Int 49152; Value.Int 65535 |];
    [| Value.Str "web"; Value.Int 80; Value.Int 80 |];
    [| Value.Str "databases"; Value.Int 3306; Value.Int 5432 |];
  |]

let () =
  let engine = E.create () in
  E.add_generator_interface engine ~name:"eth0"
    { Traffic.Gen.default with duration = 3.0; rate_mbps = 30.0; seed = 8 };

  (* feed: a plain GSQL projection of what the MD-join needs *)
  (match
     E.install_query engine ~name:"feed"
       "SELECT time, destport, len FROM eth0.tcp WHERE ipversion = 4"
   with
  | Ok _ -> ()
  | Error e -> failwith e);

  (* the user-written node: per-second MD-join over the bucket relation *)
  let md =
    Rts.Md_join_op.make
      {
        Rts.Md_join_op.base = buckets;
        theta =
          (fun b s ->
            match (b.(1), b.(2), s.(1)) with
            | Value.Int lo, Value.Int hi, Value.Int port -> port >= lo && port <= hi
            | _ -> false);
        aggs =
          [|
            { Rts.Agg_fn.kind = Rts.Agg_fn.Count; arg = None };
            { Rts.Agg_fn.kind = Rts.Agg_fn.Sum; arg = Some (fun s -> Some s.(2)) };
          |];
        epoch_field = 0;
        direction = Rts.Order_prop.Asc;
        band = 0.0;
        assemble = (fun ~base ~epoch ~aggs -> [| epoch; base.(0); aggs.(0); aggs.(1) |]);
      }
  in
  let out_schema =
    Rts.Schema.make
      [
        { Rts.Schema.name = "tb"; ty = Rts.Ty.Int; order = Rts.Order_prop.Monotone Rts.Order_prop.Asc };
        { Rts.Schema.name = "bucket"; ty = Rts.Ty.Str; order = Rts.Order_prop.Unordered };
        { Rts.Schema.name = "pkts"; ty = Rts.Ty.Int; order = Rts.Order_prop.Unordered };
        { Rts.Schema.name = "bytes"; ty = Rts.Ty.Int; order = Rts.Order_prop.Unordered };
      ]
  in
  (match
     Rts.Manager.add_query_node (E.manager engine) ~name:"port_bands" ~kind:Rts.Node.Hfta
       ~schema:out_schema ~inputs:["feed"] ~op:(Rts.Md_join_op.op md)
   with
  | Ok _ -> ()
  | Error e -> failwith e);

  (* and the MD-join's output is an ordinary stream: GSQL composes on top *)
  Gigascope_gsql.Catalog.add_stream (E.catalog engine) ~name:"port_bands" out_schema;
  (match
     E.install_query engine ~name:"web_share"
       "SELECT tb, pkts FROM port_bands WHERE bucket = 'web'"
   with
  | Ok _ -> ()
  | Error e -> failwith e);

  let rows = ref [] in
  Result.get_ok (E.on_tuple engine "port_bands" (fun t -> rows := Array.copy t :: !rows));
  (match E.run engine () with Ok _ -> () | Error e -> failwith e);
  print_endline "second   bucket        pkts      bytes   (buckets overlap; quiet ones report 0)";
  List.iter
    (fun t ->
      Printf.printf "%-8s %-12s %6s %10s\n" (Value.to_string t.(0)) (Value.to_string t.(1))
        (Value.to_string t.(2)) (Value.to_string t.(3)))
    (List.rev !rows)
