examples/quickstart.mli:
