examples/port_bands.mli:
