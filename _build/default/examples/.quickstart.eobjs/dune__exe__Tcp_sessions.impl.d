examples/tcp_sessions.ml: Array Gigascope Gigascope_rts Gigascope_traffic List Printf Result
