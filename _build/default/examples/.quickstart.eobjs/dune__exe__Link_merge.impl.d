examples/link_merge.ml: Array Float Gigascope Gigascope_rts Gigascope_traffic List Printf Result
