examples/link_merge.mli:
