examples/netflow_report.mli:
