examples/subnet_traffic.ml: Array Filename Gigascope Gigascope_rts Gigascope_traffic List Printf Result Sys
