examples/port_bands.ml: Array Gigascope Gigascope_gsql Gigascope_rts Gigascope_traffic List Printf Result
