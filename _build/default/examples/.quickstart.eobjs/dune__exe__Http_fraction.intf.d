examples/http_fraction.mli:
