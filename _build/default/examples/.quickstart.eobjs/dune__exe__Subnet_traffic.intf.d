examples/subnet_traffic.mli:
