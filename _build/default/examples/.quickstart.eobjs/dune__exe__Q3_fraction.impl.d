examples/q3_fraction.ml: Array Gigascope Gigascope_packet Gigascope_rts Gigascope_traffic Hashtbl List Option Printf Result
