examples/intrusion.mli:
