examples/netflow_report.ml: Array Gigascope Gigascope_rts Gigascope_traffic List Option Printf Result
