examples/tcp_sessions.mli:
