examples/intrusion.ml: Array Bytes Float Gigascope Gigascope_packet Gigascope_rts Gigascope_traffic Gigascope_util List Printf Result
