examples/http_fraction.ml: Array Gigascope Gigascope_rts Gigascope_traffic Hashtbl List Option Printf Result
