examples/q3_fraction.mli:
