examples/quickstart.ml: Array Gigascope Gigascope_rts Gigascope_traffic Printf Result
