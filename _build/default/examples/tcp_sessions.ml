(* TCP session extraction — the paper's future-work item made concrete:

   "While GSQL suffices for a large class of tasks, many network analysis
   queries find and aggregate subsequences of the data stream (i.e.,
   extract the TCP/IP sessions)." (Section 5)

   A session tracker folds packets into per-connection records (packets,
   bytes, clean vs. aborted close) and streams them out as they close;
   GSQL then aggregates over the session stream like any other — the
   record's end_time is monotone, so groups close normally.

     dune exec examples/tcp_sessions.exe
*)

module E = Gigascope.Engine
module Value = Gigascope_rts.Value
module Traffic = Gigascope_traffic

let program =
  {|
  -- per-port session profile: how many connections, how big, how many
  -- torn down abnormally
  DEFINE { query_name session_profile; }
  SELECT tb, destport, count(*) as conns, sum(bytes) as bytes, avg(packets) as pkts
  FROM sessions
  GROUP BY ufloor(end_time/10) as tb, destport

  -- elephants: sessions moving serious data
  DEFINE { query_name elephants; }
  SELECT srcip, destip, destport, bytes
  FROM sessions
  WHERE bytes > $elephant_bytes
|}

let () =
  let engine = E.create () in
  (* session-ize a synthetic packet feed; the generator does not model
     FIN handshakes, so most sessions close by idle timeout / end of run —
     exactly what a monitor sees for long-lived flows *)
  let gen =
    Traffic.Gen.create
      { Traffic.Gen.default with duration = 30.0; rate_mbps = 10.0; seed = 77; n_flows = 64 }
  in
  (match
     E.add_session_source engine ~name:"sessions" ~idle_timeout:5.0
       ~feed:(fun () -> Traffic.Gen.next gen)
       ()
   with
  | Ok () -> ()
  | Error e ->
      prerr_endline ("source: " ^ e);
      exit 1);
  (match E.install_program engine ~params:[("elephant_bytes", Value.Int 100_000)] program with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("compile error: " ^ e);
      exit 1);
  let profile = ref [] and elephants = ref [] in
  Result.get_ok (E.on_tuple engine "session_profile" (fun t -> profile := Array.copy t :: !profile));
  Result.get_ok (E.on_tuple engine "elephants" (fun t -> elephants := Array.copy t :: !elephants));
  (match E.run engine () with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("run error: " ^ e);
      exit 1);
  print_endline "10s-bucket   port     conns      bytes   avg pkts/conn";
  List.iter
    (fun t ->
      Printf.printf "%-12s %-8s %6s %10s %12s\n" (Value.to_string t.(0)) (Value.to_string t.(1))
        (Value.to_string t.(2)) (Value.to_string t.(3)) (Value.to_string t.(4)))
    (List.rev !profile);
  Printf.printf "\nelephant sessions (> 100 kB): %d\n" (List.length !elephants);
  List.iteri
    (fun i t ->
      if i < 5 then
        Printf.printf "  %s -> %s:%s  %s bytes\n" (Value.to_string t.(0)) (Value.to_string t.(1))
          (Value.to_string t.(2)) (Value.to_string t.(3)))
    (List.rev !elephants)
