(* Querying a Netflow stream — the paper's motivating case for *banded*
   ordering properties: routers dump active flows every 30 seconds sorted
   on flow end time, so start times are only banded-increasing(30 s).
   A query grouping on start-time buckets still unblocks, because the
   aggregation keeps groups open for the width of the band before closing
   them.

   The Netflow source is a custom query node (the paper's bypass API):
   records come from a record generator, not from packet interpretation.

     dune exec examples/netflow_report.exe
*)

module E = Gigascope.Engine
module Rts = Gigascope_rts
module Value = Rts.Value
module Traffic = Gigascope_traffic

let program =
  {|
  DEFINE { query_name heavy_minutes; }
  SELECT tb, count(*) as flows, sum(octets) as bytes, max(packets) as biggest
  FROM netflow
  GROUP BY start_time/60 as tb
|}

let () =
  let engine = E.create () in
  (* A custom source node delivering Netflow records. *)
  let gen =
    Traffic.Netflow_gen.create
      { Traffic.Netflow_gen.default with duration = 180.0; flows_per_second = 100.0 }
  in
  let pull () =
    Option.map
      (fun r -> Rts.Item.Tuple (Gigascope.Default_protocols.netflow_tuple r))
      (Traffic.Netflow_gen.next gen)
  in
  let clock () = [(8, Value.Int (int_of_float (Traffic.Netflow_gen.clock gen)))] in
  (match
     E.add_custom_source engine ~name:"netflow"
       ~schema:Gigascope.Default_protocols.netflow_schema ~pull ~clock
   with
  | Ok () -> ()
  | Error e ->
      prerr_endline ("source error: " ^ e);
      exit 1);
  (match E.install_program engine program with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("compile error: " ^ e);
      exit 1);
  let rows = ref [] in
  Result.get_ok (E.on_tuple engine "heavy_minutes" (fun t -> rows := Array.copy t :: !rows));
  (match E.run engine () with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("run error: " ^ e);
      exit 1);
  print_endline "minute           flows        bytes     biggest-flow-pkts";
  List.iter
    (fun t ->
      Printf.printf "%-15s %6s %14s %12s\n" (Value.to_string t.(0)) (Value.to_string t.(1))
        (Value.to_string t.(2)) (Value.to_string t.(3)))
    (List.rev !rows)
