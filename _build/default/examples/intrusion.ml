(* Intrusion detection: SYN-flood and horizontal-scan monitors.

   Network attack detection is one of Gigascope's motivating applications
   (Section 1). Both monitors are plain GSQL — per-second aggregation over
   TCP flags with a HAVING threshold — and both enjoy the LFTA/HFTA split:
   the flag test and the sub-aggregation run in the LFTA, so only partial
   counters cross to the HFTA.

   tcp flag bits: fin=0x01 syn=0x02 rst=0x04 psh=0x08 ack=0x10 urg=0x20;
   a connection-opening SYN has syn set and ack clear.

     dune exec examples/intrusion.exe
*)

module E = Gigascope.Engine
module Value = Gigascope_rts.Value
module Packet = Gigascope_packet.Packet
module Tcp = Gigascope_packet.Tcp
module Ipaddr = Gigascope_packet.Ipaddr

let program =
  {|
  -- SYN flood: too many half-open attempts at one destination
  DEFINE { query_name syn_flood; }
  SELECT tb, destip, count(*) as syns
  FROM eth0.tcp
  WHERE ipversion = 4 and protocol = 6
    and flags & 0x02 <> 0 and flags & 0x10 = 0
  GROUP BY time/1 as tb, destip
  HAVING count(*) > $flood_threshold

  -- horizontal scan: one source probing many destination ports
  DEFINE { query_name port_scan; }
  SELECT tb, srcip, count(*) as probes
  FROM eth0.tcp
  WHERE ipversion = 4 and protocol = 6
    and flags & 0x02 <> 0 and flags & 0x10 = 0
  GROUP BY time/1 as tb, srcip
  HAVING count(*) > $scan_threshold
|}

(* Blend an attack into background traffic: 400 SYNs/s at one victim from
   many forged sources during seconds 1-2. *)
let attack_packets () =
  let rng = Gigascope_util.Prng.create 123 in
  let victim = Ipaddr.of_string "10.9.9.9" in
  let packets = ref [] in
  for i = 0 to 799 do
    let ts = 1_000_001.0 +. (float_of_int i /. 400.0) in
    let src =
      Ipaddr.of_octets 172 (Gigascope_util.Prng.int rng 256) (Gigascope_util.Prng.int rng 256)
        (1 + Gigascope_util.Prng.int rng 250)
    in
    packets :=
      Packet.tcp ~ts ~flags:{ Tcp.no_flags with Tcp.syn = true } ~src ~dst:victim
        ~src_port:(1024 + Gigascope_util.Prng.int rng 60000)
        ~dst_port:(Gigascope_util.Prng.int rng 1024)
        ~payload:Bytes.empty ()
      :: !packets
  done;
  List.rev !packets

let () =
  let engine = E.create () in
  (* background + attack, interleaved by timestamp *)
  let background =
    let gen =
      Gigascope_traffic.Gen.create
        { Gigascope_traffic.Gen.default with duration = 3.0; rate_mbps = 20.0; seed = 5 }
    in
    let rec go acc =
      match Gigascope_traffic.Gen.next gen with Some p -> go (p :: acc) | None -> List.rev acc
    in
    go []
  in
  let feed =
    List.merge
      (fun a b -> Float.compare a.Packet.ts b.Packet.ts)
      background (attack_packets ())
  in
  E.add_packet_list_interface engine ~name:"eth0" feed;
  (match
     E.install_program engine
       ~params:[("flood_threshold", Value.Int 100); ("scan_threshold", Value.Int 100)]
       program
   with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("compile error: " ^ e);
      exit 1);
  let alerts = ref [] in
  Result.get_ok
    (E.on_tuple engine "syn_flood" (fun t ->
         alerts := Printf.sprintf "SYN FLOOD  t=%s victim=%s syns=%s" (Value.to_string t.(0))
                     (Value.to_string t.(1)) (Value.to_string t.(2))
                   :: !alerts));
  Result.get_ok
    (E.on_tuple engine "port_scan" (fun t ->
         alerts := Printf.sprintf "PORT SCAN  t=%s source=%s probes=%s" (Value.to_string t.(0))
                     (Value.to_string t.(1)) (Value.to_string t.(2))
                   :: !alerts));
  (match E.run engine () with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("run error: " ^ e);
      exit 1);
  if !alerts = [] then print_endline "no alerts (unexpected - the attack should trigger)"
  else List.iter print_endline (List.rev !alerts)
