(* The paper's Section 2 argument, made executable.

   Babcock et al.'s example Q3 asks what fraction of backbone traffic B is
   attributable to customer network C:

       (Select Count( * ) From C, B
        Where C.src=B.src and C.dest=B.dest and C.id=B.id) /
       (Select Count( * ) from B)

   The paper's complaint: as a continuous query "the semantics of the
   result are not clear" — three unspecified windows that must be
   synchronized. In GSQL the same question is precise, because every piece
   names its window explicitly:

   - the join carries an explicit time-window constraint on ordered
     attributes from both streams;
   - each count is an aggregation over an explicit time bucket, closed by
     the ordered group key;
   - the final division happens in the application over bucket-aligned
     rows, so the "snapshots" are synchronized by construction.

     dune exec examples/q3_fraction.exe
*)

module E = Gigascope.Engine
module Value = Gigascope_rts.Value
module Packet = Gigascope_packet.Packet
module Ipaddr = Gigascope_packet.Ipaddr
module Traffic = Gigascope_traffic

(* The customer's address space: taps on the customer link see only this
   slice of what the backbone carries. *)
let customer_prefix = Ipaddr.of_string "10.0.0.0"
let customer_len = 8

let is_customer pkt =
  match Packet.ip_header pkt with
  | Some ip -> Ipaddr.in_prefix ip.Gigascope_packet.Ipv4.src ~prefix:customer_prefix ~len:customer_len
  | None -> false

let program =
  {|
  -- one query per tap; ident ties a packet's two observations together
  DEFINE { query_name bb; }
  SELECT time, srcip, destip, ident FROM backbone.ip WHERE ipversion = 4

  DEFINE { query_name cust; }
  SELECT time, srcip, destip, ident FROM custlink.ip WHERE ipversion = 4

  -- Q3's numerator, with the window EXPLICIT: the same packet is seen on
  -- both links within one second
  DEFINE { query_name matched; }
  SELECT c.time as t
  FROM cust c, bb b
  WHERE c.time >= b.time - 1 and c.time <= b.time + 1
    and c.srcip = b.srcip and c.destip = b.destip and c.ident = b.ident

  DEFINE { query_name matched_per_sec; }
  SELECT tb, count(*) as cnt FROM matched GROUP BY t/1 as tb

  -- Q3's denominator over the same explicit bucket
  DEFINE { query_name bb_per_sec; }
  SELECT tb, count(*) as cnt FROM bb GROUP BY time/1 as tb
|}

let () =
  let engine = E.create () in
  (* both taps observe the same traffic universe; the customer tap filters *)
  let cfg = { Traffic.Gen.default with duration = 4.0; rate_mbps = 20.0; seed = 31 } in
  E.add_interface engine ~name:"backbone"
    ~feed:(fun () ->
      let g = Traffic.Gen.create cfg in
      fun () -> Traffic.Gen.next g)
    ();
  E.add_interface engine ~name:"custlink"
    ~feed:(fun () ->
      let g = Traffic.Gen.create cfg in
      let rec pull () =
        match Traffic.Gen.next g with
        | Some p when is_customer p -> Some p
        | Some _ -> pull ()
        | None -> None
      in
      pull)
    ();
  (match E.install_program engine program with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("compile error: " ^ e);
      exit 1);
  let matched = Hashtbl.create 8 and total = Hashtbl.create 8 in
  let record tbl t =
    match (t.(0), t.(1)) with
    | Value.Int tb, Value.Int c -> Hashtbl.replace tbl tb c
    | _ -> ()
  in
  Result.get_ok (E.on_tuple engine "matched_per_sec" (record matched));
  Result.get_ok (E.on_tuple engine "bb_per_sec" (record total));
  (match E.run engine () with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("run error: " ^ e);
      exit 1);
  print_endline "second      customer pkts   backbone pkts   fraction (Q3, precisely)";
  Hashtbl.fold (fun tb _ acc -> tb :: acc) total [] |> List.sort compare
  |> List.iter (fun tb ->
         let m = Option.value (Hashtbl.find_opt matched tb) ~default:0 in
         let t = Hashtbl.find total tb in
         Printf.printf "%-11d %13d %15d %10.1f%%\n" tb m t
           (100.0 *. float_of_int m /. float_of_int (max 1 t)))
