(* Quickstart: stand up an engine, point it at a synthetic gigabit feed,
   run the paper's first example query, and read the output stream.

     dune exec examples/quickstart.exe
*)

module E = Gigascope.Engine
module Value = Gigascope_rts.Value

let () =
  (* 1. An engine owns the stream manager, the catalog of Protocols
        (eth0.tcp etc.) and the function registry. *)
  let engine = E.create () in

  (* 2. Interfaces are packet feeds; here half a second of 50 Mbit/s
        synthetic traffic. A pcap file works too (add_pcap_interface). *)
  E.add_generator_interface engine ~name:"eth0"
    { Gigascope_traffic.Gen.default with duration = 0.5; rate_mbps = 50.0; seed = 1 };

  (* 3. Submit GSQL. This is the query from Section 2.2 of the paper. *)
  let query =
    {|
    DEFINE { query_name tcpdest0; }
    SELECT destip, destport, time
    FROM eth0.tcp
    WHERE ipversion = 4 and protocol = 6
  |}
  in
  (match E.install_query engine query with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("compile error: " ^ e);
      exit 1);

  (* 4. Subscribe by name, like any Gigascope application. *)
  let printed = ref 0 in
  Result.get_ok
    (E.on_tuple engine "tcpdest0" (fun tuple ->
         incr printed;
         if !printed <= 10 then
           Printf.printf "%-18s port %-6s t=%s\n"
             (Value.to_string tuple.(0))
             (Value.to_string tuple.(1))
             (Value.to_string tuple.(2))));

  (* 5. Run to completion (live deployments would run forever). *)
  match E.run engine () with
  | Ok _ ->
      Printf.printf "... %d TCP packets matched in total, %d tuples dropped\n" !printed
        (E.total_drops engine)
  | Error e ->
      prerr_endline ("run error: " ^ e);
      exit 1
