(* The Section 4 workload: what fraction of port-80 traffic is actually
   HTTP? (Port 80 is used to tunnel through firewalls.) Regular-expression
   matching is too expensive for an LFTA, so the compiler splits the query:
   the LFTA filters port-80 TCP packets, the HFTA runs the regex.

     dune exec examples/http_fraction.exe
*)

module E = Gigascope.Engine
module Value = Gigascope_rts.Value

let program =
  {|
  DEFINE { query_name port80; }
  SELECT tb, count(*) as cnt
  FROM eth0.tcp
  WHERE ipversion = 4 and protocol = 6 and destport = 80
  GROUP BY time/1 as tb

  DEFINE { query_name http80; }
  SELECT tb, count(*) as cnt
  FROM eth0.tcp
  WHERE ipversion = 4 and protocol = 6 and destport = 80
    and str_match_regex(payload, '^[^\n]*HTTP/1.*') = TRUE
  GROUP BY time/1 as tb
|}

let () =
  let engine = E.create () in
  E.add_generator_interface engine ~name:"eth0" ~capability:E.Cap_lfta
    {
      Gigascope_traffic.Gen.default with
      duration = 3.0;
      rate_mbps = 80.0;
      port80_fraction = 0.4;
      http_fraction = 0.6;
      seed = 7;
    };

  (* Show how the compiler splits the regex query. *)
  (match
     E.explain engine ~name:"http80_demo"
       {|
       SELECT time, srcip FROM eth0.tcp
       WHERE protocol = 6 and destport = 80
         and str_match_regex(payload, '^[^\n]*HTTP/1.*') = TRUE
     |}
   with
  | Ok text ->
      print_endline "--- compiler view of the regex query ---";
      print_endline text
  | Error e -> prerr_endline e);

  (match E.install_program engine program with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("compile error: " ^ e);
      exit 1);

  (* Pair up the two per-second counters to report the fraction. *)
  let port80 = Hashtbl.create 8 and http = Hashtbl.create 8 in
  let record table tuple =
    match (tuple.(0), tuple.(1)) with
    | Value.Int tb, Value.Int cnt -> Hashtbl.replace table tb cnt
    | _ -> ()
  in
  Result.get_ok (E.on_tuple engine "port80" (record port80));
  Result.get_ok (E.on_tuple engine "http80" (record http));
  (match E.run engine () with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("run error: " ^ e);
      exit 1);

  print_endline "second    port-80 pkts    HTTP pkts    fraction";
  let seconds = Hashtbl.fold (fun tb _ acc -> tb :: acc) port80 [] |> List.sort compare in
  List.iter
    (fun tb ->
      let total = Option.value (Hashtbl.find_opt port80 tb) ~default:0 in
      let h = Option.value (Hashtbl.find_opt http tb) ~default:0 in
      Printf.printf "%-10d %12d %12d %11.1f%%\n" tb total h
        (100.0 *. float_of_int h /. float_of_int (max 1 total)))
    seconds
