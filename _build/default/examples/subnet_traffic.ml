(* Per-peer traffic attribution with getlpmid — the paper's Section 2.2
   example:

     Select peerid, tb, count( * )
     FROM tcpdest
     Group by time/60 as tb, getlpmid(destIP, 'peerid.tbl') as peerid

   getlpmid performs longest-prefix matching against a routing table
   loaded once through the pass-by-handle mechanism; it is *partial*, so
   addresses matching no peer prefix silently discard the tuple — a
   foreign-key join without a join operator.

     dune exec examples/subnet_traffic.exe
*)

module E = Gigascope.Engine
module Value = Gigascope_rts.Value

(* The peer table the handle parameter names: either a file path or inline
   text (one "prefix id" pair per line). *)
let peer_table =
  {|
  # AS prefixes of the peers we bill (fabricated)
  10.0.0.0/10      7018   # AT&T
  10.64.0.0/10     701    # UUNET
  10.128.0.0/9     1239   # Sprint
  11.0.0.0/8       3356   # Level3
  # everything else: not a peer -> tuple discarded
|}

(* GSQL string literals cannot hold raw newlines; in a real deployment the
   handle parameter is a file path. Write the table to a file instead. *)
let () =
  let path = Filename.temp_file "peerid" ".tbl" in
  let oc = open_out path in
  output_string oc peer_table;
  close_out oc;
  let program =
    Printf.sprintf
      {|
      DEFINE { query_name tcpdest; }
      SELECT time, destip, len
      FROM eth0.tcp
      WHERE ipversion = 4 and protocol = 6

      DEFINE { query_name peer_traffic; }
      SELECT peerid, tb, count(*) as pkts, sum(len) as bytes
      FROM tcpdest
      GROUP BY time/60 as tb, getlpmid(destip, '%s') as peerid
    |}
      path
  in
  let engine = E.create () in
  E.add_generator_interface engine ~name:"eth0"
    { Gigascope_traffic.Gen.default with duration = 2.0; rate_mbps = 60.0; seed = 13 };
  (match E.install_program engine program with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("compile error: " ^ e);
      exit 1);
  let rows = ref [] in
  Result.get_ok (E.on_tuple engine "peer_traffic" (fun t -> rows := Array.copy t :: !rows));
  (match E.run engine () with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("run error: " ^ e);
      exit 1);
  Sys.remove path;
  print_endline "peer AS   minute        packets      bytes";
  List.iter
    (fun t ->
      Printf.printf "%-9s %-13s %8s %10s\n" (Value.to_string t.(0)) (Value.to_string t.(1))
        (Value.to_string t.(2)) (Value.to_string t.(3)))
    (List.rev !rows);
  print_endline "(addresses outside every peer prefix were discarded by the partial function)"
