(* Watching a full-duplex logical link through two simplex interfaces.

   "We developed Gigascope to monitor optical links, which are usually
   simplex rather than duplex. To obtain a full view of the traffic on a
   logical link, we need to monitor two interfaces and merge the resulting
   streams." (Section 2.2 — the reason merge was implemented before join.)

   The merge preserves the ordering of the time attribute even though the
   two interfaces deliver independently; a silent interface is advanced by
   on-demand heartbeats so the merge never blocks.

     dune exec examples/link_merge.exe
*)

module E = Gigascope.Engine
module Value = Gigascope_rts.Value

let program =
  {|
  DEFINE { query_name tcpdest0; }
  SELECT time, timestamp, srcip, destip, len
  FROM eth0.tcp
  WHERE ipversion = 4 and protocol = 6

  DEFINE { query_name tcpdest1; }
  SELECT time, timestamp, srcip, destip, len
  FROM eth1.tcp
  WHERE ipversion = 4 and protocol = 6

  DEFINE { query_name tcpdest; }
  MERGE a.timestamp : b.timestamp
  FROM tcpdest0 a, tcpdest1 b

  DEFINE { query_name link_volume; }
  SELECT tb, count(*) as pkts, sum(len) as bytes
  FROM tcpdest
  GROUP BY time/1 as tb
|}

let () =
  let engine = E.create () in
  (* One traffic universe, partitioned by flow over two simplex fibers. *)
  E.add_split_interfaces engine ~names:["eth0"; "eth1"]
    {
      Gigascope_traffic.Gen.default with
      duration = 3.0;
      rate_mbps = 40.0;
      seed = 99;
      interface_count = 2;
    };
  (match E.install_program engine program with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("compile error: " ^ e);
      exit 1);
  (* Verify order preservation as we consume the merged stream. *)
  let last = ref neg_infinity and out_of_order = ref 0 and merged = ref 0 in
  Result.get_ok
    (E.on_tuple engine "tcpdest" (fun t ->
         incr merged;
         match t.(1) with
         | Value.Float ts ->
             if ts < !last then incr out_of_order;
             last := Float.max !last ts
         | _ -> ()));
  let volume = ref [] in
  Result.get_ok (E.on_tuple engine "link_volume" (fun t -> volume := Array.copy t :: !volume));
  (match E.run engine () with
  | Ok stats ->
      Printf.printf "merged %d packets from two interfaces; out-of-order: %d; heartbeats: %d\n\n"
        !merged !out_of_order stats.Gigascope_rts.Scheduler.heartbeat_requests
  | Error e ->
      prerr_endline ("run error: " ^ e);
      exit 1);
  print_endline "second        packets        bytes (whole logical link)";
  List.iter
    (fun t ->
      Printf.printf "%-13s %8s %12s\n" (Value.to_string t.(0)) (Value.to_string t.(1))
        (Value.to_string t.(2)))
    (List.rev !volume)
