lib/traffic/gen.mli: Gigascope_packet Gigascope_util
