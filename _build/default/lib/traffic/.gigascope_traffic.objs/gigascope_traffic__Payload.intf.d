lib/traffic/payload.mli: Gigascope_util
