lib/traffic/netflow_gen.mli: Gigascope_packet
