lib/traffic/netflow_gen.ml: Array Float Gigascope_packet Gigascope_util List
