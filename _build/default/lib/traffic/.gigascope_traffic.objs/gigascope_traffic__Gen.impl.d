lib/traffic/gen.ml: Array Bytes Float Gigascope_packet Gigascope_util Option Payload
