lib/traffic/payload.ml: Array Bytes Char Gigascope_util Printf String
