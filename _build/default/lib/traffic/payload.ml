module Prng = Gigascope_util.Prng

let paths = [| "/"; "/index.html"; "/images/logo.gif"; "/api/v1/items"; "/search?q=net" |]
let hosts = [| "www.example.com"; "portal.att.net"; "cdn.media.example"; "api.internal" |]

let pad_to rng b len =
  let cur = Bytes.length b in
  if cur >= len then b
  else begin
    let out = Bytes.make len ' ' in
    Bytes.blit b 0 out 0 cur;
    for i = cur to len - 1 do
      (* printable filler so regexes see realistic body bytes *)
      Bytes.set out i (Char.chr (32 + Prng.int rng 95))
    done;
    out
  end

let http_request rng len =
  let path = paths.(Prng.int rng (Array.length paths)) in
  let host = hosts.(Prng.int rng (Array.length hosts)) in
  let head =
    Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nUser-Agent: gs-gen/1.0\r\n\r\n" path host
  in
  pad_to rng (Bytes.of_string head) (max len (String.length head))

let http_response rng len =
  let head = "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nConnection: keep-alive\r\n\r\n" in
  pad_to rng (Bytes.of_string head) (max len (String.length head))

let tunneled rng len =
  (* Must not match ^[^\n]*HTTP/1.* — start with a newline-bearing binary
     preamble so no "HTTP/1" appears on the first line, and keep the magic
     string out of the body. *)
  let len = max len 4 in
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (Prng.int rng 256))
  done;
  Bytes.set b 0 '\n';
  (* scrub accidental "HTTP/1" occurrences *)
  let magic = "HTTP/1" in
  let m = String.length magic in
  for i = 0 to len - m do
    if Bytes.sub_string b i m = magic then Bytes.set b i 'X'
  done;
  b

let random_binary rng len =
  let b = Bytes.create (max len 0) in
  for i = 0 to Bytes.length b - 1 do
    Bytes.set b i (Char.chr (Prng.int rng 256))
  done;
  b

let dns_query rng len =
  let len = max len 17 in
  let b = random_binary rng len in
  (* header: id, flags=0x0100 (rd), qdcount=1 *)
  Bytes.set b 2 '\x01';
  Bytes.set b 3 '\x00';
  Bytes.set b 4 '\x00';
  Bytes.set b 5 '\x01';
  b
