(** The synthetic traffic generator.

    Stands in for the paper's router-generated test feeds and live links:
    a flow-structured, bursty, time-ordered packet stream with controllable
    rate, port mix, HTTP share and flow locality. Determinism comes from
    the seed; two generators with equal configs produce identical
    streams.

    Model: packet arrivals form a Poisson process modulated by an on/off
    burst state (Pareto-distributed burst lengths — "network traffic is
    notoriously bursty"); each arrival is attributed to a persistent flow
    drawn Zipf-style from a fixed population (the temporal locality that
    LFTA aggregation exploits), or to a fresh random five-tuple in
    adversarial mode. *)

module Prng = Gigascope_util.Prng
module Packet = Gigascope_packet.Packet

type config = {
  seed : int;
  start_ts : float;
  duration : float;  (** seconds of traffic; [next] returns [None] after *)
  rate_mbps : float;  (** offered load *)
  n_flows : int;  (** concurrent flow population *)
  port80_fraction : float;  (** share of packets to TCP port 80 *)
  http_fraction : float;  (** of port-80 packets, share with HTTP payloads *)
  udp_fraction : float;  (** of non-port-80 packets *)
  mean_payload : int;  (** mean payload bytes (exponential-ish mix) *)
  bursty : bool;
  uniform_random : bool;  (** adversarial: fresh 5-tuple per packet *)
  interface_count : int;  (** round-robin tag for simplex-link splitting *)
}

val default : config

type t

val create : config -> t

val next : t -> Packet.t option
(** The next packet in timestamp order, [None] past [duration]. *)

val next_with_interface : t -> (Packet.t * int) option
(** Also says which simplex interface (0 .. interface_count-1) carries the
    packet — a flow sticks to one interface, as real routing does. *)

val clock : t -> float
(** Current virtual time: the timestamp the next packet will carry. This
    is what a source heartbeat publishes when no packet has flowed. *)

val total_packets : t -> int
(** Packets generated so far. *)
