module Prng = Gigascope_util.Prng
module Ipaddr = Gigascope_packet.Ipaddr
module Packet = Gigascope_packet.Packet
module Tcp = Gigascope_packet.Tcp

type config = {
  seed : int;
  start_ts : float;
  duration : float;
  rate_mbps : float;
  n_flows : int;
  port80_fraction : float;
  http_fraction : float;
  udp_fraction : float;
  mean_payload : int;
  bursty : bool;
  uniform_random : bool;
  interface_count : int;
}

let default =
  {
    seed = 42;
    start_ts = 1_000_000.0;
    duration = 1.0;
    rate_mbps = 100.0;
    n_flows = 512;
    port80_fraction = 0.3;
    http_fraction = 0.5;
    udp_fraction = 0.3;
    mean_payload = 400;
    bursty = true;
    uniform_random = false;
    interface_count = 1;
  }

type flow_kind = Http | Tunnel | Tcp_other | Udp_other

type flow = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  src_port : int;
  dst_port : int;
  kind : flow_kind;
  iface : int;
  mutable seq : int;
}

type t = {
  cfg : config;
  rng : Prng.t;
  flows : flow array;
  mutable ident : int;  (** rolling IP identification, as a real stack's *)
  mutable now : float;
  mutable burst_until : float;
  mutable burst_factor : float;
  mutable count : int;
  header_overhead : int;
}

let random_ip rng =
  (* private-ish space, avoiding 0/255 octets *)
  Ipaddr.of_octets (10 + Prng.int rng 60) (1 + Prng.int rng 250) (1 + Prng.int rng 250)
    (1 + Prng.int rng 250)

let make_flow cfg rng =
  let r = Prng.float rng 1.0 in
  let kind =
    if r < cfg.port80_fraction then
      if Prng.float rng 1.0 < cfg.http_fraction then Http else Tunnel
    else if Prng.float rng 1.0 < cfg.udp_fraction then Udp_other
    else Tcp_other
  in
  let dst_port =
    match kind with
    | Http | Tunnel -> 80
    | Udp_other -> [| 53; 123; 161; 514; 4500 |].(Prng.int rng 5)
    | Tcp_other -> [| 22; 25; 110; 443; 8080; 3306 |].(Prng.int rng 6)
  in
  {
    src = random_ip rng;
    dst = random_ip rng;
    src_port = 1024 + Prng.int rng 60000;
    dst_port;
    kind;
    iface = Prng.int rng (max 1 cfg.interface_count);
    seq = Prng.int rng 1_000_000;
  }

let create cfg =
  let rng = Prng.create cfg.seed in
  {
    cfg;
    rng;
    flows = Array.init (max 1 cfg.n_flows) (fun _ -> make_flow cfg rng);
    ident = 1;
    now = cfg.start_ts;
    burst_until = cfg.start_ts;
    burst_factor = 1.0;
    count = 0;
    header_overhead = 14 + 20 + 20 (* eth + ip + tcp, roughly *);
  }

let clock t = t.now
let total_packets t = t.count

(* Zipf-ish flow choice: heavy reuse of a few flows (temporal locality).
   u^4 concentrates most packets on a small head of the population, the
   shape real traffic has and LFTA aggregation exploits. *)
let pick_flow t =
  let n = Array.length t.flows in
  let u = Prng.float t.rng 1.0 in
  let idx = int_of_float (u *. u *. u *. u *. float_of_int n) in
  t.flows.(min idx (n - 1))

let update_burst t =
  if t.cfg.bursty && t.now >= t.burst_until then begin
    let on = Prng.bool t.rng in
    t.burst_factor <- (if on then 1.7 else 0.3);
    t.burst_until <- t.now +. Prng.pareto t.rng ~alpha:1.5 ~xmin:0.01
  end

let payload_len t =
  let len = int_of_float (Prng.exponential t.rng (float_of_int t.cfg.mean_payload)) in
  min 1400 (max 16 len)

let next_with_interface t =
  if t.now -. t.cfg.start_ts >= t.cfg.duration then None
  else begin
    update_burst t;
    let mean_size = float_of_int (t.cfg.mean_payload + t.header_overhead) in
    let pkts_per_sec = t.cfg.rate_mbps *. 1e6 /. 8.0 /. mean_size in
    let effective = pkts_per_sec *. if t.cfg.bursty then t.burst_factor else 1.0 in
    let gap = Prng.exponential t.rng (1.0 /. Float.max 1.0 effective) in
    t.now <- t.now +. gap;
    if t.now -. t.cfg.start_ts >= t.cfg.duration then None
    else begin
      let flow =
        if t.cfg.uniform_random then make_flow t.cfg t.rng else pick_flow t
      in
      let len = payload_len t in
      let payload =
        match flow.kind with
        | Http ->
            if Prng.bool t.rng then Payload.http_request t.rng len
            else Payload.http_response t.rng len
        | Tunnel -> Payload.tunneled t.rng len
        | Tcp_other -> Payload.random_binary t.rng len
        | Udp_other ->
            if flow.dst_port = 53 then Payload.dns_query t.rng len
            else Payload.random_binary t.rng len
      in
      t.ident <- (t.ident + 1) land 0xffff;
      let pkt =
        match flow.kind with
        | Udp_other ->
            Packet.udp ~ts:t.now ~ident:t.ident ~src:flow.src ~dst:flow.dst
              ~src_port:flow.src_port ~dst_port:flow.dst_port ~payload ()
        | Http | Tunnel | Tcp_other ->
            let seq = flow.seq in
            flow.seq <- (flow.seq + Bytes.length payload) land 0xffffffff;
            Packet.tcp ~ts:t.now ~seq ~ident:t.ident
              ~flags:{ Tcp.no_flags with Tcp.ack = true; psh = Bytes.length payload > 0 }
              ~src:flow.src ~dst:flow.dst ~src_port:flow.src_port ~dst_port:flow.dst_port
              ~payload ()
      in
      t.count <- t.count + 1;
      Some (pkt, flow.iface)
    end
  end

let next t = Option.map fst (next_with_interface t)
