(** Netflow stream synthesis.

    Routers aggregate packets into flow records and dump active flows
    every 30 seconds; the resulting stream is sorted on flow {e end} time
    while {e start} times are only banded-increasing(30 s) — the paper's
    motivating example for banded ordering properties. This generator
    produces exactly that shape. *)

module Netflow = Gigascope_packet.Netflow

type config = {
  seed : int;
  start_ts : float;
  duration : float;
  flows_per_second : float;
  dump_interval : float;  (** 30 s in real routers *)
}

val default : config

type t

val create : config -> t

val next : t -> Netflow.t option
(** Records in end-time order, [None] when the window is exhausted. *)

val clock : t -> float

val to_list : config -> Netflow.t list
