(** Synthetic packet payloads.

    The Section 4 experiment distinguishes port-80 traffic whose payload
    matches [^[^\n]*HTTP/1.*] (real web traffic) from port-80 traffic that
    merely tunnels through firewalls; this module fabricates both, plus
    generic binary payloads. *)

module Prng = Gigascope_util.Prng

val http_request : Prng.t -> int -> bytes
(** An HTTP/1.1 request line + headers, padded/truncated to the requested
    length (always ≥ the minimal request; matches the paper's regex). *)

val http_response : Prng.t -> int -> bytes
(** An [HTTP/1.x 200 OK] response head. *)

val tunneled : Prng.t -> int -> bytes
(** Port-80 bytes that do {e not} match the HTTP regex (binary tunnel
    framing). *)

val random_binary : Prng.t -> int -> bytes

val dns_query : Prng.t -> int -> bytes
(** A rough DNS-shaped UDP payload. *)
