module Prng = Gigascope_util.Prng
module Ipaddr = Gigascope_packet.Ipaddr
module Netflow = Gigascope_packet.Netflow

type config = {
  seed : int;
  start_ts : float;
  duration : float;
  flows_per_second : float;
  dump_interval : float;
}

let default =
  { seed = 7; start_ts = 1_000_000.0; duration = 120.0; flows_per_second = 200.0; dump_interval = 30.0 }

type t = {
  cfg : config;
  rng : Prng.t;
  mutable pending : Netflow.t list;  (** current dump batch, end-time sorted *)
  mutable next_dump : float;
  mutable clock : float;
}

let create cfg =
  {
    cfg;
    rng = Prng.create cfg.seed;
    pending = [];
    next_dump = cfg.start_ts +. cfg.dump_interval;
    clock = cfg.start_ts;
  }

let clock t = t.clock

let random_ip rng =
  Ipaddr.of_octets (10 + Prng.int rng 60) (1 + Prng.int rng 250) (1 + Prng.int rng 250)
    (1 + Prng.int rng 250)

(* Fabricate the batch of flows that ended inside one dump interval. A
   flow's start precedes its end by up to the dump interval, so within the
   end-sorted batch starts are banded. *)
let make_batch t ~dump_end =
  let n =
    int_of_float (t.cfg.flows_per_second *. t.cfg.dump_interval)
    + Prng.int t.rng (max 1 (int_of_float t.cfg.flows_per_second))
  in
  let records =
    List.init n (fun _ ->
        let end_ts = dump_end -. Prng.float t.rng t.cfg.dump_interval in
        let lifetime = Prng.float t.rng t.cfg.dump_interval in
        let start_ts = Float.max t.cfg.start_ts (end_ts -. lifetime) in
        let packets = 1 + Prng.int t.rng 1000 in
        {
          Netflow.src = random_ip t.rng;
          dst = random_ip t.rng;
          src_port = 1024 + Prng.int t.rng 60000;
          dst_port = [| 80; 443; 53; 25; 8080 |].(Prng.int t.rng 5);
          protocol = (if Prng.float t.rng 1.0 < 0.7 then 6 else 17);
          packets;
          octets = packets * (40 + Prng.int t.rng 1200);
          start_ts;
          end_ts;
          tcp_flags = Prng.int t.rng 64;
        })
  in
  List.sort Netflow.compare_end_ts records

let rec next t =
  match t.pending with
  | r :: rest ->
      t.pending <- rest;
      t.clock <- r.Netflow.end_ts;
      Some r
  | [] ->
      if t.next_dump > t.cfg.start_ts +. t.cfg.duration then None
      else begin
        let batch = make_batch t ~dump_end:t.next_dump in
        t.next_dump <- t.next_dump +. t.cfg.dump_interval;
        t.pending <- batch;
        next t
      end

let to_list cfg =
  let t = create cfg in
  let rec go acc = match next t with Some r -> go (r :: acc) | None -> List.rev acc in
  go []
