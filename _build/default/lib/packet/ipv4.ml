type t = {
  tos : int;
  total_len : int;
  ident : int;
  dont_fragment : bool;
  more_fragments : bool;
  frag_offset : int;
  ttl : int;
  protocol : int;
  src : Ipaddr.t;
  dst : Ipaddr.t;
  options : bytes;
}

let min_header_len = 20
let header_len t = min_header_len + Bytes.length t.options

let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17

let make ?(tos = 0) ?(ident = 0) ?(dont_fragment = false) ?(more_fragments = false)
    ?(frag_offset = 0) ?(ttl = 64) ?(options = Bytes.empty) ~protocol ~src ~dst ~payload_len () =
  let opt_len = Bytes.length options in
  if opt_len mod 4 <> 0 || opt_len > 40 then invalid_arg "Ipv4.make: bad options length";
  {
    tos;
    total_len = min_header_len + opt_len + payload_len;
    ident;
    dont_fragment;
    more_fragments;
    frag_offset;
    ttl;
    protocol;
    src;
    dst;
    options;
  }

let encode t buf off =
  let ihl = header_len t / 4 in
  Bytes_util.set_u8 buf off ((4 lsl 4) lor ihl);
  Bytes_util.set_u8 buf (off + 1) t.tos;
  Bytes_util.set_u16 buf (off + 2) t.total_len;
  Bytes_util.set_u16 buf (off + 4) t.ident;
  let flags = (if t.dont_fragment then 0x4000 else 0) lor (if t.more_fragments then 0x2000 else 0) in
  Bytes_util.set_u16 buf (off + 6) (flags lor (t.frag_offset land 0x1fff));
  Bytes_util.set_u8 buf (off + 8) t.ttl;
  Bytes_util.set_u8 buf (off + 9) t.protocol;
  Bytes_util.set_u16 buf (off + 10) 0;
  Bytes_util.set_u32 buf (off + 12) t.src;
  Bytes_util.set_u32 buf (off + 16) t.dst;
  Bytes.blit t.options 0 buf (off + min_header_len) (Bytes.length t.options);
  let csum = Checksum.compute buf off (header_len t) in
  Bytes_util.set_u16 buf (off + 10) csum

let decode buf off =
  let avail = Bytes.length buf - off in
  if avail < min_header_len then Error "ipv4: truncated header"
  else
    let b0 = Bytes_util.get_u8 buf off in
    let version = b0 lsr 4 and ihl = b0 land 0xf in
    if version <> 4 then Error (Printf.sprintf "ipv4: bad version %d" version)
    else if ihl < 5 then Error (Printf.sprintf "ipv4: bad IHL %d" ihl)
    else
      let hlen = ihl * 4 in
      if avail < hlen then Error "ipv4: truncated options"
      else if not (Checksum.valid buf off hlen) then Error "ipv4: bad header checksum"
      else
        let flags_frag = Bytes_util.get_u16 buf (off + 6) in
        Ok
          {
            tos = Bytes_util.get_u8 buf (off + 1);
            total_len = Bytes_util.get_u16 buf (off + 2);
            ident = Bytes_util.get_u16 buf (off + 4);
            dont_fragment = flags_frag land 0x4000 <> 0;
            more_fragments = flags_frag land 0x2000 <> 0;
            frag_offset = flags_frag land 0x1fff;
            ttl = Bytes_util.get_u8 buf (off + 8);
            protocol = Bytes_util.get_u8 buf (off + 9);
            src = Bytes_util.get_u32 buf (off + 12);
            dst = Bytes_util.get_u32 buf (off + 16);
            options = Bytes.sub buf (off + min_header_len) (hlen - min_header_len);
          }

let to_string t =
  Printf.sprintf "%s > %s proto=%d len=%d ttl=%d%s" (Ipaddr.to_string t.src)
    (Ipaddr.to_string t.dst) t.protocol t.total_len t.ttl
    (if t.more_fragments || t.frag_offset > 0 then
       Printf.sprintf " frag(off=%d,mf=%b)" t.frag_offset t.more_fragments
     else "")
