type header = { snaplen : int; linktype : int }

let linktype_ethernet = 1
let magic = 0xa1b2c3d4
let magic_swapped = 0xd4c3b2a1

type record = { ts : float; orig_len : int; data : bytes }

(* Little-endian accessors; pcap files are written in host order, which for
   the dominant producers is little-endian. *)
let get_u16le b off = Bytes_util.get_u8 b off lor (Bytes_util.get_u8 b (off + 1) lsl 8)

let get_u32le b off = get_u16le b off lor (get_u16le b (off + 2) lsl 16)

let set_u16le b off v =
  Bytes_util.set_u8 b off v;
  Bytes_util.set_u8 b (off + 1) (v lsr 8)

let set_u32le b off v =
  set_u16le b off (v land 0xffff);
  set_u16le b (off + 2) (v lsr 16)

let global_header_len = 24
let record_header_len = 16

let encode_global_header ?(snaplen = 65535) () =
  let b = Bytes.create global_header_len in
  set_u32le b 0 magic;
  set_u16le b 4 2 (* version major *);
  set_u16le b 6 4 (* version minor *);
  set_u32le b 8 0 (* thiszone *);
  set_u32le b 12 0 (* sigfigs *);
  set_u32le b 16 snaplen;
  set_u32le b 20 linktype_ethernet;
  b

let encode_record r =
  let caplen = Bytes.length r.data in
  let b = Bytes.create (record_header_len + caplen) in
  let sec = int_of_float r.ts in
  let usec = int_of_float (Float.round ((r.ts -. float_of_int sec) *. 1e6)) in
  let sec, usec = if usec >= 1_000_000 then (sec + 1, usec - 1_000_000) else (sec, usec) in
  set_u32le b 0 sec;
  set_u32le b 4 usec;
  set_u32le b 8 caplen;
  set_u32le b 12 r.orig_len;
  Bytes.blit r.data 0 b record_header_len caplen;
  b

let encode_file ?snaplen records =
  let buf = Buffer.create 4096 in
  Buffer.add_bytes buf (encode_global_header ?snaplen ());
  List.iter (fun r -> Buffer.add_bytes buf (encode_record r)) records;
  Buffer.to_bytes buf

type byte_order = Le | Be

let reader_u32 order b off =
  match order with Le -> get_u32le b off | Be -> Bytes_util.get_u32 b off

let decode_global_header b =
  if Bytes.length b < global_header_len then Error "pcap: truncated global header"
  else
    let m_le = get_u32le b 0 in
    let order =
      if m_le = magic then Some Le
      else if m_le = magic_swapped then Some Be
      else None
    in
    match order with
    | None -> Error (Printf.sprintf "pcap: bad magic 0x%08x" m_le)
    | Some order ->
        Ok
          ( order,
            {
              snaplen = reader_u32 order b 16;
              linktype = reader_u32 order b 20;
            } )

let decode_records order b off0 =
  let len = Bytes.length b in
  let rec go off acc =
    if off = len then Ok (List.rev acc)
    else if len - off < record_header_len then Error "pcap: truncated record header"
    else
      let sec = reader_u32 order b off in
      let usec = reader_u32 order b (off + 4) in
      let caplen = reader_u32 order b (off + 8) in
      let orig_len = reader_u32 order b (off + 12) in
      if len - off - record_header_len < caplen then Error "pcap: truncated record body"
      else
        let data = Bytes.sub b (off + record_header_len) caplen in
        let ts = float_of_int sec +. (float_of_int usec /. 1e6) in
        go (off + record_header_len + caplen) ({ ts; orig_len; data } :: acc)
  in
  go off0 []

let decode_file b =
  match decode_global_header b with
  | Error _ as e -> e
  | Ok (order, hdr) -> (
      match decode_records order b global_header_len with
      | Ok records -> Ok (hdr, records)
      | Error _ as e -> e)

type writer = { oc : out_channel; snaplen : int }

let open_writer ?(snaplen = 65535) path =
  let oc = open_out_bin path in
  output_bytes oc (encode_global_header ~snaplen ());
  { oc; snaplen }

let write_record w r = output_bytes w.oc (encode_record r)

let write_packet w pkt =
  let wire = Packet.encode pkt in
  let data = Packet.truncate ~snap_len:w.snaplen wire in
  write_record w { ts = pkt.Packet.ts; orig_len = Bytes.length wire; data }

let close_writer w = close_out w.oc

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

let read_file path =
  match read_whole_file path with
  | b -> decode_file b
  | exception Sys_error msg -> Error ("pcap: " ^ msg)

let fold_file path ~init ~f =
  match read_file path with
  | Error _ as e -> e
  | Ok (_, records) -> Ok (List.fold_left f init records)
