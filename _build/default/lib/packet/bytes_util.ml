let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))

let get_u16 b off = (get_u8 b off lsl 8) lor get_u8 b (off + 1)

let set_u16 b off v =
  set_u8 b off (v lsr 8);
  set_u8 b (off + 1) v

let get_u32 b off = (get_u16 b off lsl 16) lor get_u16 b (off + 2)

let set_u32 b off v =
  set_u16 b off (v lsr 16);
  set_u16 b (off + 2) v

let get_u48 b off = (get_u16 b off lsl 32) lor get_u32 b (off + 2)

let set_u48 b off v =
  set_u16 b off (v lsr 32);
  set_u32 b (off + 2) v

let hexdump ?(max_bytes = 256) b =
  let n = min (Bytes.length b) max_bytes in
  let buf = Buffer.create (n * 4) in
  let line_width = 16 in
  let rec lines off =
    if off < n then begin
      Buffer.add_string buf (Printf.sprintf "%04x  " off);
      for i = off to off + line_width - 1 do
        if i < n then Buffer.add_string buf (Printf.sprintf "%02x " (get_u8 b i))
        else Buffer.add_string buf "   "
      done;
      Buffer.add_char buf ' ';
      for i = off to min (off + line_width) n - 1 do
        let c = Bytes.get b i in
        Buffer.add_char buf (if c >= ' ' && c < '\x7f' then c else '.')
      done;
      Buffer.add_char buf '\n';
      lines (off + line_width)
    end
  in
  lines 0;
  if Bytes.length b > max_bytes then Buffer.add_string buf "...\n";
  Buffer.contents buf
