(** Big-endian (network byte order) accessors over [bytes], plus helpers.

    All multi-byte packet fields are big-endian on the wire; these wrappers
    keep header codecs free of shift arithmetic. Out-of-range offsets raise
    [Invalid_argument] like the underlying [Bytes] accessors. *)

val get_u8 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit

val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit

val get_u32 : bytes -> int -> int
(** 32-bit big-endian read, returned as a nonnegative OCaml [int]. *)

val set_u32 : bytes -> int -> int -> unit
(** 32-bit big-endian write of the low 32 bits of the argument. *)

val get_u48 : bytes -> int -> int
(** 48-bit read (MAC addresses). *)

val set_u48 : bytes -> int -> int -> unit

val hexdump : ?max_bytes:int -> bytes -> string
(** Debug rendering: offset, hex bytes, printable ASCII; truncated at
    [max_bytes] (default 256). *)
