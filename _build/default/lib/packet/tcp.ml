type flags = { fin : bool; syn : bool; rst : bool; psh : bool; ack : bool; urg : bool }

let no_flags = { fin = false; syn = false; rst = false; psh = false; ack = false; urg = false }

let flags_to_int f =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.ack then 0x10 else 0)
  lor if f.urg then 0x20 else 0

let flags_of_int i =
  {
    fin = i land 0x01 <> 0;
    syn = i land 0x02 <> 0;
    rst = i land 0x04 <> 0;
    psh = i land 0x08 <> 0;
    ack = i land 0x10 <> 0;
    urg = i land 0x20 <> 0;
  }

type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack_seq : int;
  flags : flags;
  window : int;
  urgent : int;
  options : bytes;
}

let min_header_len = 20
let header_len t = min_header_len + Bytes.length t.options

let make ?(seq = 0) ?(ack_seq = 0) ?(flags = no_flags) ?(window = 65535) ?(urgent = 0)
    ?(options = Bytes.empty) ~src_port ~dst_port () =
  let opt_len = Bytes.length options in
  if opt_len mod 4 <> 0 || opt_len > 40 then invalid_arg "Tcp.make: bad options length";
  { src_port; dst_port; seq; ack_seq; flags; window; urgent; options }

(* Pseudo-header: src ip, dst ip, zero, protocol, tcp length. *)
let pseudo_sum ~src_ip ~dst_ip ~protocol ~seg_len =
  let b = Bytes.create 12 in
  Bytes_util.set_u32 b 0 src_ip;
  Bytes_util.set_u32 b 4 dst_ip;
  Bytes_util.set_u8 b 8 0;
  Bytes_util.set_u8 b 9 protocol;
  Bytes_util.set_u16 b 10 seg_len;
  Checksum.sum16 b 0 12

let encode t ~src_ip ~dst_ip ~payload buf off =
  let hlen = header_len t in
  let seg_len = hlen + Bytes.length payload in
  Bytes_util.set_u16 buf off t.src_port;
  Bytes_util.set_u16 buf (off + 2) t.dst_port;
  Bytes_util.set_u32 buf (off + 4) t.seq;
  Bytes_util.set_u32 buf (off + 8) t.ack_seq;
  Bytes_util.set_u8 buf (off + 12) ((hlen / 4) lsl 4);
  Bytes_util.set_u8 buf (off + 13) (flags_to_int t.flags);
  Bytes_util.set_u16 buf (off + 14) t.window;
  Bytes_util.set_u16 buf (off + 16) 0;
  Bytes_util.set_u16 buf (off + 18) t.urgent;
  Bytes.blit t.options 0 buf (off + min_header_len) (Bytes.length t.options);
  Bytes.blit payload 0 buf (off + hlen) (Bytes.length payload);
  let sum =
    pseudo_sum ~src_ip ~dst_ip ~protocol:Ipv4.proto_tcp ~seg_len + Checksum.sum16 buf off seg_len
  in
  Bytes_util.set_u16 buf (off + 16) (Checksum.finish sum)

let decode buf off ~avail =
  if avail < min_header_len then Error "tcp: truncated header"
  else
    let data_off = (Bytes_util.get_u8 buf (off + 12) lsr 4) * 4 in
    if data_off < min_header_len then Error "tcp: bad data offset"
    else
      (* Options may be cut off by the snap length; take what is there. *)
      let opt_avail = max 0 (min data_off avail - min_header_len) in
      Ok
        ( {
            src_port = Bytes_util.get_u16 buf off;
            dst_port = Bytes_util.get_u16 buf (off + 2);
            seq = Bytes_util.get_u32 buf (off + 4);
            ack_seq = Bytes_util.get_u32 buf (off + 8);
            flags = flags_of_int (Bytes_util.get_u8 buf (off + 13));
            window = Bytes_util.get_u16 buf (off + 14);
            urgent = Bytes_util.get_u16 buf (off + 18);
            options = Bytes.sub buf (off + min_header_len) opt_avail;
          },
          data_off )

let to_string t =
  let f = t.flags in
  let flag_str =
    String.concat ""
      [
        (if f.syn then "S" else "");
        (if f.fin then "F" else "");
        (if f.rst then "R" else "");
        (if f.psh then "P" else "");
        (if f.ack then "A" else "");
        (if f.urg then "U" else "");
      ]
  in
  Printf.sprintf "tcp %d > %d seq=%d ack=%d [%s] win=%d" t.src_port t.dst_port t.seq t.ack_seq
    flag_str t.window
