(** IPv4 fragmentation and reassembly.

    The paper cites IP defragmentation as the canonical example of protocol
    simulation that analysts need ("we have implemented a special IP
    defragmentation operator"); this module is the substrate that operator
    uses, and the generator uses [fragment] to synthesize fragmented
    traffic. *)

val fragment : mtu:int -> Packet.t -> Packet.t list
(** [fragment ~mtu pkt] splits an IPv4 packet into fragments whose IP
    packets fit in [mtu] bytes (Ethernet header excluded). A packet that
    already fits, a non-IP packet, or one with the DF bit set is returned
    unchanged (real routers would emit ICMP for DF; monitoring does not
    care). Raises [Invalid_argument] if [mtu] cannot hold the header plus
    one 8-byte unit. *)

type reassembler

val create_reassembler : ?timeout:float -> ?max_pending:int -> unit -> reassembler
(** [timeout] (default 30 s) evicts stale partial datagrams; [max_pending]
    (default 1024) bounds memory. *)

val push : reassembler -> Packet.t -> Packet.t option
(** Feed a captured packet. Returns the reassembled full packet once the
    last missing fragment arrives; non-fragment packets pass through
    immediately. *)

val pending : reassembler -> int
(** Number of incomplete datagrams currently buffered. *)

val expired : reassembler -> float -> int
(** [expired r now] evicts partial datagrams older than the timeout and
    returns how many were dropped. *)
