(** TCP header codec (RFC 793), with pseudo-header checksum support. *)

type flags = {
  fin : bool;
  syn : bool;
  rst : bool;
  psh : bool;
  ack : bool;
  urg : bool;
}

val no_flags : flags
val flags_to_int : flags -> int
val flags_of_int : int -> flags

type t = {
  src_port : int;
  dst_port : int;
  seq : int;  (** 32-bit sequence number *)
  ack_seq : int;
  flags : flags;
  window : int;
  urgent : int;
  options : bytes;  (** raw options, length a multiple of 4, at most 40 *)
}

val min_header_len : int
(** 20 bytes. *)

val header_len : t -> int

val make :
  ?seq:int ->
  ?ack_seq:int ->
  ?flags:flags ->
  ?window:int ->
  ?urgent:int ->
  ?options:bytes ->
  src_port:int ->
  dst_port:int ->
  unit ->
  t

val pseudo_sum : src_ip:Ipaddr.t -> dst_ip:Ipaddr.t -> protocol:int -> seg_len:int -> int
(** Ones'-complement sum of the IPv4 pseudo-header, shared with UDP. *)

val encode :
  t -> src_ip:Ipaddr.t -> dst_ip:Ipaddr.t -> payload:bytes -> bytes -> int -> unit
(** [encode t ~src_ip ~dst_ip ~payload buf off] writes header at [off] and
    the payload right after it, computing the checksum over the IPv4
    pseudo-header, the header, and the payload. *)

val decode : bytes -> int -> avail:int -> (t * int, string) result
(** [decode buf off ~avail] parses a header within [avail] bytes, returning
    it and the payload offset (relative to [off]). Checksum is not verified
    here because snap-length truncation (a Gigascope feature) legitimately
    cuts payloads. *)

val to_string : t -> string
