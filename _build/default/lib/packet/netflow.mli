(** Netflow-v5-style flow records.

    The paper's running examples are queries over Netflow streams: records
    carry a start and an end timestamp, with the stream sorted on end time
    and start times banded within the 30-second dump interval — the
    motivating example for banded-increasing ordering properties. This
    module gives flow records a binary wire codec (one export datagram
    carries a header plus up to 30 records, as in v5). *)

type t = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  src_port : int;
  dst_port : int;
  protocol : int;
  packets : int;
  octets : int;
  start_ts : float;  (** flow first-packet time, seconds *)
  end_ts : float;  (** flow last-packet time, seconds *)
  tcp_flags : int;  (** OR of all TCP flags seen *)
}

val record_len : int
(** Bytes per record on the wire (a compact 36-byte layout). *)

val header_len : int

val encode_datagram : boot_ts:float -> t list -> bytes
(** Pack up to 30 records into one export datagram. Timestamps are encoded
    as milliseconds since [boot_ts]. Raises [Invalid_argument] on more than
    30 records. *)

val decode_datagram : boot_ts:float -> bytes -> (t list, string) result

val compare_end_ts : t -> t -> int
(** Order used by routers when dumping flows. *)
