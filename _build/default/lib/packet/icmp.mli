(** ICMP codec (RFC 792) — enough for echo and error messages. *)

type t = { icmp_type : int; code : int; rest : int  (** the 4 bytes after the checksum *) }

val header_len : int
(** 8 bytes. *)

val type_echo_reply : int
val type_dest_unreachable : int
val type_echo_request : int
val type_time_exceeded : int

val encode : t -> payload:bytes -> bytes -> int -> unit
val decode : bytes -> int -> avail:int -> (t, string) result
val to_string : t -> string
