let sum16 b off len =
  let sum = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + Bytes_util.get_u16 b !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Bytes_util.get_u8 b !i lsl 8);
  !sum

let finish sum =
  let s = ref sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  lnot !s land 0xffff

let compute b off len = finish (sum16 b off len)

let valid b off len = finish (sum16 b off len) = 0
