(** The Internet checksum (RFC 1071).

    Ones'-complement sum of 16-bit big-endian words, used by IPv4, TCP, UDP
    and ICMP. *)

val sum16 : bytes -> int -> int -> int
(** [sum16 b off len] is the running ones'-complement sum (not yet
    complemented) of [len] bytes starting at [off]; a trailing odd byte is
    padded with zero as the low octet's partner. *)

val finish : int -> int
(** Fold carries and complement, yielding the 16-bit checksum field value. *)

val compute : bytes -> int -> int -> int
(** [compute b off len] = [finish (sum16 b off len)]. *)

val valid : bytes -> int -> int -> bool
(** A region whose checksum field is filled in sums to 0xffff before
    complementing; [valid] checks that. *)
