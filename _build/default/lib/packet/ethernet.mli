(** Ethernet II framing. *)

type t = {
  dst : int;  (** destination MAC, 48 bits *)
  src : int;  (** source MAC, 48 bits *)
  ethertype : int;  (** 16-bit ethertype, e.g. 0x0800 for IPv4 *)
}

val header_len : int
(** 14 bytes. *)

val ethertype_ipv4 : int
val ethertype_arp : int
val ethertype_ipv6 : int

val encode : t -> bytes -> int -> unit
(** [encode t buf off] writes the 14-byte header at [off]. *)

val decode : bytes -> int -> (t, string) result
(** [decode buf off] reads a header at [off]; errors if the buffer is too
    short. *)

val to_string : t -> string
