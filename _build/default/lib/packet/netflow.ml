type t = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  src_port : int;
  dst_port : int;
  protocol : int;
  packets : int;
  octets : int;
  start_ts : float;
  end_ts : float;
  tcp_flags : int;
}

let record_len = 36
let header_len = 16
let max_records = 30

let ms_since ~boot_ts ts = int_of_float (Float.round ((ts -. boot_ts) *. 1000.0))
let ts_of_ms ~boot_ts ms = boot_ts +. (float_of_int ms /. 1000.0)

let encode_record ~boot_ts r buf off =
  Bytes_util.set_u32 buf off r.src;
  Bytes_util.set_u32 buf (off + 4) r.dst;
  Bytes_util.set_u16 buf (off + 8) r.src_port;
  Bytes_util.set_u16 buf (off + 10) r.dst_port;
  Bytes_util.set_u8 buf (off + 12) r.protocol;
  Bytes_util.set_u8 buf (off + 13) r.tcp_flags;
  Bytes_util.set_u16 buf (off + 14) 0 (* pad *);
  Bytes_util.set_u32 buf (off + 16) r.packets;
  Bytes_util.set_u32 buf (off + 20) r.octets;
  Bytes_util.set_u32 buf (off + 24) (ms_since ~boot_ts r.start_ts);
  Bytes_util.set_u32 buf (off + 28) (ms_since ~boot_ts r.end_ts);
  Bytes_util.set_u32 buf (off + 32) 0 (* reserved *)

let decode_record ~boot_ts buf off =
  {
    src = Bytes_util.get_u32 buf off;
    dst = Bytes_util.get_u32 buf (off + 4);
    src_port = Bytes_util.get_u16 buf (off + 8);
    dst_port = Bytes_util.get_u16 buf (off + 10);
    protocol = Bytes_util.get_u8 buf (off + 12);
    packets = Bytes_util.get_u32 buf (off + 16);
    octets = Bytes_util.get_u32 buf (off + 20);
    start_ts = ts_of_ms ~boot_ts (Bytes_util.get_u32 buf (off + 24));
    end_ts = ts_of_ms ~boot_ts (Bytes_util.get_u32 buf (off + 28));
    tcp_flags = Bytes_util.get_u8 buf (off + 13);
  }

let encode_datagram ~boot_ts records =
  let n = List.length records in
  if n > max_records then invalid_arg "Netflow.encode_datagram: more than 30 records";
  let buf = Bytes.create (header_len + (n * record_len)) in
  Bytes_util.set_u16 buf 0 5 (* version *);
  Bytes_util.set_u16 buf 2 n;
  Bytes_util.set_u32 buf 4 0 (* sysuptime, unused *);
  Bytes_util.set_u32 buf 8 (int_of_float boot_ts);
  Bytes_util.set_u32 buf 12 0 (* sequence, unused *);
  List.iteri (fun i r -> encode_record ~boot_ts r buf (header_len + (i * record_len))) records;
  buf

let decode_datagram ~boot_ts buf =
  if Bytes.length buf < header_len then Error "netflow: truncated header"
  else
    let version = Bytes_util.get_u16 buf 0 in
    if version <> 5 then Error (Printf.sprintf "netflow: unsupported version %d" version)
    else
      let n = Bytes_util.get_u16 buf 2 in
      if Bytes.length buf < header_len + (n * record_len) then Error "netflow: truncated records"
      else
        let rec go i acc =
          if i = n then Ok (List.rev acc)
          else go (i + 1) (decode_record ~boot_ts buf (header_len + (i * record_len)) :: acc)
        in
        go 0 []

let compare_end_ts a b = Float.compare a.end_ts b.end_ts
