(** Whole-packet composition and interpretation.

    A captured packet carries a timestamp, the length seen on the wire, and
    the (possibly snap-length-truncated) bytes that were captured. Decoding
    interprets the layers; building produces wire bytes from typed headers.
    This is the "library of interpretation functions" that Gigascope's
    Protocol schemas bind field names to. *)

type transport =
  | Tcp of Tcp.t * bytes  (** header and captured payload *)
  | Udp of Udp.t * bytes
  | Icmp of Icmp.t * bytes
  | Raw_transport of bytes  (** unknown IP protocol: undecoded bytes *)

type network =
  | Ipv4 of Ipv4.t * transport
  | Non_ip of bytes  (** non-IPv4 ethertype: undecoded bytes *)

type t = {
  ts : float;  (** capture timestamp, seconds *)
  wire_len : int;  (** length on the wire *)
  eth : Ethernet.t;
  net : network;
}

val default_mac_src : int
val default_mac_dst : int

(** {1 Building} *)

val tcp :
  ?ts:float ->
  ?seq:int ->
  ?ack_seq:int ->
  ?flags:Tcp.flags ->
  ?window:int ->
  ?ttl:int ->
  ?ident:int ->
  src:Ipaddr.t ->
  dst:Ipaddr.t ->
  src_port:int ->
  dst_port:int ->
  payload:bytes ->
  unit ->
  t

val udp :
  ?ts:float ->
  ?ttl:int ->
  ?ident:int ->
  src:Ipaddr.t ->
  dst:Ipaddr.t ->
  src_port:int ->
  dst_port:int ->
  payload:bytes ->
  unit ->
  t

val icmp :
  ?ts:float ->
  ?ttl:int ->
  ?code:int ->
  src:Ipaddr.t ->
  dst:Ipaddr.t ->
  icmp_type:int ->
  payload:bytes ->
  unit ->
  t

(** {1 Wire form} *)

val encode : t -> bytes
(** Full wire bytes of the packet (Ethernet frame). *)

val decode : ?ts:float -> ?wire_len:int -> bytes -> (t, string) result
(** Interpret captured bytes. [wire_len] defaults to the buffer length; when
    the capture was truncated by a snap length, pass the original length.
    Truncated payloads decode to however many bytes were captured. *)

val truncate : snap_len:int -> bytes -> bytes
(** Model a NIC snap length: keep at most [snap_len] bytes. *)

(** {1 Accessors used by protocol schemas} *)

val ip_header : t -> Ipv4.t option
val tcp_header : t -> Tcp.t option
val udp_header : t -> Udp.t option
val payload : t -> bytes
(** Transport payload bytes ([Bytes.empty] when not applicable). *)

val to_string : t -> string
