type t = int

let of_octets a b c d =
  ((a land 0xff) lsl 24) lor ((b land 0xff) lsl 16) lor ((c land 0xff) lsl 8) lor (d land 0xff)

let of_string_opt s =
  match String.split_on_char '.' s with
  | [a; b; c; d] -> begin
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 && x <> "" -> Some v
        | _ -> None
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d -> Some (of_octets a b c d)
      | _ -> None
    end
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ipaddr.of_string: %S" s)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff) (t land 0xff)

let prefix_mask len =
  if len < 0 || len > 32 then invalid_arg "Ipaddr.prefix_mask";
  if len = 0 then 0 else 0xffffffff lsl (32 - len) land 0xffffffff

let in_prefix ip ~prefix ~len =
  let mask = prefix_mask len in
  ip land mask = prefix land mask

let parse_prefix s =
  match String.index_opt s '/' with
  | None -> (of_string s, 32)
  | Some i ->
      let addr = String.sub s 0 i in
      let len_s = String.sub s (i + 1) (String.length s - i - 1) in
      let len =
        match int_of_string_opt len_s with
        | Some l when l >= 0 && l <= 32 -> l
        | _ -> invalid_arg (Printf.sprintf "Ipaddr.parse_prefix: bad length %S" s)
      in
      (of_string addr, len)

let compare = Int.compare
