type t = { src_port : int; dst_port : int; length : int }

let header_len = 8

let encode t ~src_ip ~dst_ip ~payload buf off =
  let len = header_len + Bytes.length payload in
  Bytes_util.set_u16 buf off t.src_port;
  Bytes_util.set_u16 buf (off + 2) t.dst_port;
  Bytes_util.set_u16 buf (off + 4) len;
  Bytes_util.set_u16 buf (off + 6) 0;
  Bytes.blit payload 0 buf (off + header_len) (Bytes.length payload);
  let sum =
    Tcp.pseudo_sum ~src_ip ~dst_ip ~protocol:Ipv4.proto_udp ~seg_len:len
    + Checksum.sum16 buf off len
  in
  let csum = Checksum.finish sum in
  (* An all-zero checksum means "not computed" in UDP; transmit 0xffff. *)
  Bytes_util.set_u16 buf (off + 6) (if csum = 0 then 0xffff else csum)

let decode buf off ~avail =
  if avail < header_len then Error "udp: truncated header"
  else
    Ok
      {
        src_port = Bytes_util.get_u16 buf off;
        dst_port = Bytes_util.get_u16 buf (off + 2);
        length = Bytes_util.get_u16 buf (off + 4);
      }

let to_string t = Printf.sprintf "udp %d > %d len=%d" t.src_port t.dst_port t.length
