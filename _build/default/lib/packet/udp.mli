(** UDP header codec (RFC 768). *)

type t = { src_port : int; dst_port : int; length : int }

val header_len : int
(** 8 bytes. *)

val encode : t -> src_ip:Ipaddr.t -> dst_ip:Ipaddr.t -> payload:bytes -> bytes -> int -> unit
(** Write header then payload, with the pseudo-header checksum. [t.length]
    is ignored and recomputed from the payload. *)

val decode : bytes -> int -> avail:int -> (t, string) result
(** Parse within [avail] bytes; payload begins at [header_len]. *)

val to_string : t -> string
