type t = { icmp_type : int; code : int; rest : int }

let header_len = 8
let type_echo_reply = 0
let type_dest_unreachable = 3
let type_echo_request = 8
let type_time_exceeded = 11

let encode t ~payload buf off =
  Bytes_util.set_u8 buf off t.icmp_type;
  Bytes_util.set_u8 buf (off + 1) t.code;
  Bytes_util.set_u16 buf (off + 2) 0;
  Bytes_util.set_u32 buf (off + 4) t.rest;
  Bytes.blit payload 0 buf (off + header_len) (Bytes.length payload);
  let csum = Checksum.compute buf off (header_len + Bytes.length payload) in
  Bytes_util.set_u16 buf (off + 2) csum

let decode buf off ~avail =
  if avail < header_len then Error "icmp: truncated header"
  else
    Ok
      {
        icmp_type = Bytes_util.get_u8 buf off;
        code = Bytes_util.get_u8 buf (off + 1);
        rest = Bytes_util.get_u32 buf (off + 4);
      }

let to_string t = Printf.sprintf "icmp type=%d code=%d" t.icmp_type t.code
