lib/packet/tcp.mli: Ipaddr
