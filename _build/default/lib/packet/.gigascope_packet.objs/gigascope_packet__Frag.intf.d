lib/packet/frag.mli: Packet
