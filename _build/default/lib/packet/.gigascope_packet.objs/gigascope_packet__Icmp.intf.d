lib/packet/icmp.mli:
