lib/packet/checksum.mli:
