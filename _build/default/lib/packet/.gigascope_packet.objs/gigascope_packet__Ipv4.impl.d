lib/packet/ipv4.ml: Bytes Bytes_util Checksum Ipaddr Printf
