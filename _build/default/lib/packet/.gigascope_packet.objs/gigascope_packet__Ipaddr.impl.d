lib/packet/ipaddr.ml: Int Printf String
