lib/packet/packet.mli: Ethernet Icmp Ipaddr Ipv4 Tcp Udp
