lib/packet/tcp.ml: Bytes Bytes_util Checksum Ipv4 Printf String
