lib/packet/netflow.ml: Bytes Bytes_util Float Ipaddr List Printf
