lib/packet/bytes_util.mli:
