lib/packet/pcap.mli: Packet
