lib/packet/udp.ml: Bytes Bytes_util Checksum Ipv4 Printf Tcp
