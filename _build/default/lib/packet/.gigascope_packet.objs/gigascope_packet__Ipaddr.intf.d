lib/packet/ipaddr.mli:
