lib/packet/bytes_util.ml: Buffer Bytes Char Printf
