lib/packet/pcap.ml: Buffer Bytes Bytes_util Float Fun List Packet Printf
