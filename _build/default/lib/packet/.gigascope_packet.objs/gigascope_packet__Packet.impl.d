lib/packet/packet.ml: Bytes Ethernet Icmp Ipv4 Printf Result Tcp Udp
