lib/packet/ethernet.mli:
