lib/packet/checksum.ml: Bytes_util
