lib/packet/icmp.ml: Bytes Bytes_util Checksum Printf
