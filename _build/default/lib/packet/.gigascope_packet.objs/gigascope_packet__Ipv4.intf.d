lib/packet/ipv4.mli: Ipaddr
