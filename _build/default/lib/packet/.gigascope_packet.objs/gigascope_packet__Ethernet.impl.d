lib/packet/ethernet.ml: Bytes Bytes_util Printf
