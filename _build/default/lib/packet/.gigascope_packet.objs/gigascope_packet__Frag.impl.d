lib/packet/frag.ml: Bytes Ethernet Hashtbl Ipaddr Ipv4 List Packet
