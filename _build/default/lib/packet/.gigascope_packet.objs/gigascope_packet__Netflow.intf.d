lib/packet/netflow.mli: Ipaddr
