lib/packet/udp.mli: Ipaddr
