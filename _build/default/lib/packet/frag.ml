(* Fragmentation works on wire bytes: we re-encode the packet, split the IP
   payload on 8-byte boundaries, and emit per-fragment IP headers. *)

let fragment ~mtu pkt =
  match pkt.Packet.net with
  | Packet.Non_ip _ -> [pkt]
  | Packet.Ipv4 (ip, _) ->
      if ip.Ipv4.total_len <= mtu || ip.Ipv4.dont_fragment then [pkt]
      else begin
        let hlen = Ipv4.header_len ip in
        let unit_budget = (mtu - hlen) / 8 in
        if unit_budget < 1 then invalid_arg "Frag.fragment: mtu too small";
        let chunk = unit_budget * 8 in
        let wire = Packet.encode pkt in
        let l3_off = Ethernet.header_len in
        let payload_off = l3_off + hlen in
        let payload_len = ip.Ipv4.total_len - hlen in
        let rec go off acc =
          if off >= payload_len then List.rev acc
          else begin
            let this_len = min chunk (payload_len - off) in
            let more = off + this_len < payload_len in
            let frag_ip =
              {
                ip with
                Ipv4.total_len = hlen + this_len;
                more_fragments = more || ip.Ipv4.more_fragments;
                frag_offset = ip.Ipv4.frag_offset + (off / 8);
              }
            in
            let raw = Bytes.sub wire (payload_off + off) this_len in
            let frag =
              {
                pkt with
                Packet.wire_len = Ethernet.header_len + hlen + this_len;
                net = Packet.Ipv4 (frag_ip, Packet.Raw_transport raw);
              }
            in
            (* a captured first fragment still shows its transport header;
               re-decode so interpretation sees the (truncated) segment *)
            let frag =
              if frag_ip.Ipv4.frag_offset = 0 then
                match Packet.decode ~ts:pkt.Packet.ts ~wire_len:frag.Packet.wire_len (Packet.encode frag) with
                | Ok p -> p
                | Error _ -> frag
              else frag
            in
            go (off + this_len) (frag :: acc)
          end
        in
        go 0 []
      end

type key = { src : Ipaddr.t; dst : Ipaddr.t; protocol : int; ident : int }

type partial = {
  mutable chunks : (int * bytes) list; (* byte offset, data; unordered *)
  mutable total_payload : int option; (* known once the MF=0 fragment arrives *)
  mutable bytes_have : int;
  mutable first_header : Ipv4.t option; (* header of the offset-0 fragment *)
  mutable eth : Ethernet.t option;
  mutable wire_ts : float;
  born : float;
}

type reassembler = {
  table : (key, partial) Hashtbl.t;
  timeout : float;
  max_pending : int;
}

let create_reassembler ?(timeout = 30.0) ?(max_pending = 1024) () =
  { table = Hashtbl.create 64; timeout; max_pending }

let pending r = Hashtbl.length r.table

let expired r now =
  let stale = ref [] in
  Hashtbl.iter (fun k p -> if now -. p.born > r.timeout then stale := k :: !stale) r.table;
  List.iter (Hashtbl.remove r.table) !stale;
  List.length !stale

(* Raw IP payload bytes of a fragment, regardless of how it decoded. *)
let fragment_payload pkt ip =
  match pkt.Packet.net with
  | Packet.Ipv4 (_, Packet.Raw_transport raw) -> raw
  | Packet.Ipv4 (_, _) ->
      (* First fragment decoded as a (truncated) transport segment; recover
         the raw bytes by re-encoding. *)
      let wire = Packet.encode pkt in
      let off = Ethernet.header_len + Ipv4.header_len ip in
      Bytes.sub wire off (Bytes.length wire - off)
  | Packet.Non_ip _ -> assert false

let try_complete r key p =
  match (p.total_payload, p.first_header, p.eth) with
  | Some total, Some first_ip, Some eth when p.bytes_have >= total ->
      let payload = Bytes.create total in
      List.iter
        (fun (off, data) ->
          let len = min (Bytes.length data) (total - off) in
          if len > 0 then Bytes.blit data 0 payload off len)
        p.chunks;
      let hlen = Ipv4.header_len first_ip in
      let full_ip =
        { first_ip with Ipv4.total_len = hlen + total; more_fragments = false; frag_offset = 0 }
      in
      Hashtbl.remove r.table key;
      (* Re-decode so the transport layer is interpreted over the full payload. *)
      let wire = Bytes.create (Ethernet.header_len + hlen + total) in
      Ethernet.encode eth wire 0;
      Ipv4.encode full_ip wire Ethernet.header_len;
      Bytes.blit payload 0 wire (Ethernet.header_len + hlen) total;
      (match Packet.decode ~ts:p.wire_ts wire with Ok pkt -> Some pkt | Error _ -> None)
  | _ -> None

let push r pkt =
  match pkt.Packet.net with
  | Packet.Non_ip _ -> Some pkt
  | Packet.Ipv4 (ip, _) ->
      if (not ip.Ipv4.more_fragments) && ip.Ipv4.frag_offset = 0 then Some pkt
      else begin
        let key =
          { src = ip.Ipv4.src; dst = ip.Ipv4.dst; protocol = ip.Ipv4.protocol; ident = ip.Ipv4.ident }
        in
        let p =
          match Hashtbl.find_opt r.table key with
          | Some p -> p
          | None ->
              if Hashtbl.length r.table >= r.max_pending then ignore (expired r pkt.Packet.ts);
              let p =
                {
                  chunks = [];
                  total_payload = None;
                  bytes_have = 0;
                  first_header = None;
                  eth = None;
                  wire_ts = pkt.Packet.ts;
                  born = pkt.Packet.ts;
                }
              in
              if Hashtbl.length r.table < r.max_pending then Hashtbl.replace r.table key p;
              p
        in
        let data = fragment_payload pkt ip in
        let off = ip.Ipv4.frag_offset * 8 in
        p.chunks <- (off, data) :: p.chunks;
        p.bytes_have <- p.bytes_have + Bytes.length data;
        if not ip.Ipv4.more_fragments then p.total_payload <- Some (off + Bytes.length data);
        if ip.Ipv4.frag_offset = 0 then begin
          p.first_header <- Some ip;
          p.eth <- Some pkt.Packet.eth
        end;
        try_complete r key p
      end
