(** The classic libpcap capture-file format.

    Implemented from scratch (magic 0xa1b2c3d4, 24-byte global header,
    16-byte per-record headers, microsecond timestamps) so traces can be
    dumped for the paper's "post-facto analysis" configuration and read back
    as query input. Both byte orders are handled on read; files are written
    little-endian as tcpdump does on x86. *)

type header = {
  snaplen : int;
  linktype : int;  (** 1 = Ethernet *)
}

val linktype_ethernet : int

type record = {
  ts : float;  (** seconds, microsecond precision *)
  orig_len : int;  (** length on the wire *)
  data : bytes;  (** captured (possibly snapped) bytes *)
}

(** {1 In-memory codec} *)

val encode_file : ?snaplen:int -> record list -> bytes
val decode_file : bytes -> (header * record list, string) result

(** {1 Streaming I/O} *)

type writer

val open_writer : ?snaplen:int -> string -> writer
val write_record : writer -> record -> unit
val write_packet : writer -> Packet.t -> unit
(** Convenience: encode and write a composed packet, applying the writer's
    snap length. *)

val close_writer : writer -> unit

val fold_file : string -> init:'a -> f:('a -> record -> 'a) -> ('a, string) result
(** Stream records out of a file without loading it whole. *)

val read_file : string -> (header * record list, string) result
