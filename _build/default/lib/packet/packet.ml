type transport =
  | Tcp of Tcp.t * bytes
  | Udp of Udp.t * bytes
  | Icmp of Icmp.t * bytes
  | Raw_transport of bytes

type network = Ipv4 of Ipv4.t * transport | Non_ip of bytes

type t = { ts : float; wire_len : int; eth : Ethernet.t; net : network }

let default_mac_src = 0x020000000001
let default_mac_dst = 0x020000000002

let default_eth =
  { Ethernet.dst = default_mac_dst; src = default_mac_src; ethertype = Ethernet.ethertype_ipv4 }

let wire_len_of ~ip = Ethernet.header_len + ip.Ipv4.total_len

let tcp ?(ts = 0.0) ?seq ?ack_seq ?flags ?window ?ttl ?ident ~src ~dst ~src_port ~dst_port
    ~payload () =
  let tcp_h = Tcp.make ?seq ?ack_seq ?flags ?window ~src_port ~dst_port () in
  let seg_len = Tcp.header_len tcp_h + Bytes.length payload in
  let ip =
    Ipv4.make ?ttl ?ident ~protocol:Ipv4.proto_tcp ~src ~dst ~payload_len:seg_len ()
  in
  { ts; wire_len = wire_len_of ~ip; eth = default_eth; net = Ipv4 (ip, Tcp (tcp_h, payload)) }

let udp ?(ts = 0.0) ?ttl ?ident ~src ~dst ~src_port ~dst_port ~payload () =
  let len = Udp.header_len + Bytes.length payload in
  let udp_h = { Udp.src_port; dst_port; length = len } in
  let ip = Ipv4.make ?ttl ?ident ~protocol:Ipv4.proto_udp ~src ~dst ~payload_len:len () in
  { ts; wire_len = wire_len_of ~ip; eth = default_eth; net = Ipv4 (ip, Udp (udp_h, payload)) }

let icmp ?(ts = 0.0) ?ttl ?(code = 0) ~src ~dst ~icmp_type ~payload () =
  let icmp_h = { Icmp.icmp_type; code; rest = 0 } in
  let len = Icmp.header_len + Bytes.length payload in
  let ip = Ipv4.make ?ttl ~protocol:Ipv4.proto_icmp ~src ~dst ~payload_len:len () in
  { ts; wire_len = wire_len_of ~ip; eth = default_eth; net = Ipv4 (ip, Icmp (icmp_h, payload)) }

let encode t =
  match t.net with
  | Non_ip raw ->
      let buf = Bytes.create (Ethernet.header_len + Bytes.length raw) in
      Ethernet.encode t.eth buf 0;
      Bytes.blit raw 0 buf Ethernet.header_len (Bytes.length raw);
      buf
  | Ipv4 (ip, transport) ->
      let buf = Bytes.create (Ethernet.header_len + ip.Ipv4.total_len) in
      Ethernet.encode t.eth buf 0;
      Ipv4.encode ip buf Ethernet.header_len;
      let l4_off = Ethernet.header_len + Ipv4.header_len ip in
      (match transport with
      | Tcp (h, payload) -> Tcp.encode h ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst ~payload buf l4_off
      | Udp (h, payload) -> Udp.encode h ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst ~payload buf l4_off
      | Icmp (h, payload) -> Icmp.encode h ~payload buf l4_off
      | Raw_transport raw -> Bytes.blit raw 0 buf l4_off (Bytes.length raw));
      buf

let ( let* ) = Result.bind

let decode ?(ts = 0.0) ?wire_len buf =
  let wire_len = match wire_len with Some l -> l | None -> Bytes.length buf in
  let* eth = Ethernet.decode buf 0 in
  if eth.Ethernet.ethertype <> Ethernet.ethertype_ipv4 then
    Ok
      {
        ts;
        wire_len;
        eth;
        net = Non_ip (Bytes.sub buf Ethernet.header_len (Bytes.length buf - Ethernet.header_len));
      }
  else
    let ip_off = Ethernet.header_len in
    let* ip = Ipv4.decode buf ip_off in
    let l4_off = ip_off + Ipv4.header_len ip in
    (* The captured (possibly snapped) extent of the L4 segment. *)
    let avail = min (Bytes.length buf) (ip_off + ip.Ipv4.total_len) - l4_off in
    if avail < 0 then Error "ipv4: header extends past capture"
    else if ip.Ipv4.frag_offset > 0 then
      (* Non-first fragment: no transport header present. *)
      Ok { ts; wire_len; eth; net = Ipv4 (ip, Raw_transport (Bytes.sub buf l4_off avail)) }
    else
      let* transport =
        if ip.Ipv4.protocol = Ipv4.proto_tcp then
          let* h, data_off = Tcp.decode buf l4_off ~avail in
          (* a corrupted data offset can point past the captured bytes;
             clamp so the (empty) payload slice stays in bounds *)
          let pay_avail = max 0 (avail - data_off) in
          let pay_off = l4_off + min data_off avail in
          Ok (Tcp (h, Bytes.sub buf pay_off pay_avail))
        else if ip.Ipv4.protocol = Ipv4.proto_udp then
          let* h = Udp.decode buf l4_off ~avail in
          Ok (Udp (h, Bytes.sub buf (l4_off + Udp.header_len) (max 0 (avail - Udp.header_len))))
        else if ip.Ipv4.protocol = Ipv4.proto_icmp then
          let* h = Icmp.decode buf l4_off ~avail in
          Ok (Icmp (h, Bytes.sub buf (l4_off + Icmp.header_len) (max 0 (avail - Icmp.header_len))))
        else Ok (Raw_transport (Bytes.sub buf l4_off avail))
      in
      Ok { ts; wire_len; eth; net = Ipv4 (ip, transport) }

let truncate ~snap_len buf =
  if Bytes.length buf <= snap_len then buf else Bytes.sub buf 0 snap_len

let ip_header t = match t.net with Ipv4 (ip, _) -> Some ip | Non_ip _ -> None

let tcp_header t =
  match t.net with Ipv4 (_, Tcp (h, _)) -> Some h | Ipv4 _ | Non_ip _ -> None

let udp_header t =
  match t.net with Ipv4 (_, Udp (h, _)) -> Some h | Ipv4 _ | Non_ip _ -> None

let payload t =
  match t.net with
  | Ipv4 (_, Tcp (_, p)) | Ipv4 (_, Udp (_, p)) | Ipv4 (_, Icmp (_, p))
  | Ipv4 (_, Raw_transport p) ->
      p
  | Non_ip _ -> Bytes.empty

let to_string t =
  let body =
    match t.net with
    | Non_ip _ -> "non-ip"
    | Ipv4 (ip, transport) ->
        let l4 =
          match transport with
          | Tcp (h, p) -> Printf.sprintf "%s payload=%dB" (Tcp.to_string h) (Bytes.length p)
          | Udp (h, p) -> Printf.sprintf "%s payload=%dB" (Udp.to_string h) (Bytes.length p)
          | Icmp (h, _) -> Icmp.to_string h
          | Raw_transport p -> Printf.sprintf "raw %dB" (Bytes.length p)
        in
        Printf.sprintf "%s | %s" (Ipv4.to_string ip) l4
  in
  Printf.sprintf "[%.6f] %s" t.ts body
