type t = { dst : int; src : int; ethertype : int }

let header_len = 14
let ethertype_ipv4 = 0x0800
let ethertype_arp = 0x0806
let ethertype_ipv6 = 0x86dd

let encode t buf off =
  Bytes_util.set_u48 buf off t.dst;
  Bytes_util.set_u48 buf (off + 6) t.src;
  Bytes_util.set_u16 buf (off + 12) t.ethertype

let decode buf off =
  if Bytes.length buf - off < header_len then Error "ethernet: truncated header"
  else
    Ok
      {
        dst = Bytes_util.get_u48 buf off;
        src = Bytes_util.get_u48 buf (off + 6);
        ethertype = Bytes_util.get_u16 buf (off + 12);
      }

let mac_to_string m =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" ((m lsr 40) land 0xff)
    ((m lsr 32) land 0xff) ((m lsr 24) land 0xff) ((m lsr 16) land 0xff)
    ((m lsr 8) land 0xff) (m land 0xff)

let to_string t =
  Printf.sprintf "%s > %s type=0x%04x" (mac_to_string t.src) (mac_to_string t.dst) t.ethertype
