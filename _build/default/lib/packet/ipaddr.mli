(** IPv4 addresses as plain (nonnegative, 32-bit) OCaml ints.

    Gigascope's tuple values carry IPs as unboxed integers; this module is
    the single place that knows dotted-quad syntax and prefix arithmetic. *)

type t = int
(** An IPv4 address; always in [\[0, 2^32)]. *)

val of_string : string -> t
(** Parse dotted-quad notation. Raises [Invalid_argument] on malformed
    input. *)

val of_string_opt : string -> t option

val to_string : t -> string

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d]. Octets are masked to
    8 bits. *)

val prefix_mask : int -> t
(** [prefix_mask len] is the netmask of a /len prefix, [len] in \[0,32\]. *)

val in_prefix : t -> prefix:t -> len:int -> bool
(** [in_prefix ip ~prefix ~len] tests membership of [ip] in [prefix/len]. *)

val parse_prefix : string -> t * int
(** Parse ["a.b.c.d/len"]; a bare address means /32. Raises
    [Invalid_argument] on malformed input. *)

val compare : t -> t -> int
