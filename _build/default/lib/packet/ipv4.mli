(** IPv4 header codec (RFC 791), including options and fragmentation
    fields. *)

type t = {
  tos : int;
  total_len : int;  (** header + payload, bytes *)
  ident : int;
  dont_fragment : bool;
  more_fragments : bool;
  frag_offset : int;  (** in 8-byte units *)
  ttl : int;
  protocol : int;  (** e.g. 6 = TCP, 17 = UDP, 1 = ICMP *)
  src : Ipaddr.t;
  dst : Ipaddr.t;
  options : bytes;  (** raw options, length a multiple of 4, at most 40 *)
}

val min_header_len : int
(** 20 bytes. *)

val header_len : t -> int
(** 20 + options length. *)

val proto_icmp : int
val proto_tcp : int
val proto_udp : int

val make :
  ?tos:int ->
  ?ident:int ->
  ?dont_fragment:bool ->
  ?more_fragments:bool ->
  ?frag_offset:int ->
  ?ttl:int ->
  ?options:bytes ->
  protocol:int ->
  src:Ipaddr.t ->
  dst:Ipaddr.t ->
  payload_len:int ->
  unit ->
  t
(** Build a header with [total_len] computed from the payload length.
    Raises [Invalid_argument] if options are malformed (length not a
    multiple of 4, or over 40 bytes). *)

val encode : t -> bytes -> int -> unit
(** Writes the header (with a correct checksum) at the given offset. *)

val decode : bytes -> int -> (t, string) result
(** Parses and validates version, IHL, length and checksum. *)

val to_string : t -> string
