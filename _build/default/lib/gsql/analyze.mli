(** Semantic analysis: AST query -> logical plan.

    Performs name resolution against the catalog, type checking, GSQL's
    stream-specific legality checks (a join predicate must define a window
    on ordered attributes from both inputs; merge inputs must be
    union-compatible with a shared ordered attribute), epoch-key selection
    for aggregation, and ordering-property imputation for the output
    schema. *)

val analyze :
  Catalog.t -> ?default_interface:string -> name:string -> Ast.query_def -> (Plan.t, string) result
(** [name] is used when the DEFINE section carries no [query_name].
    [default_interface] (default ["default"]) resolves a bare protocol in
    FROM. *)
