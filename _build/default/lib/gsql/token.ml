type t =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Ip_lit of int
  | Param of string
  | Kw_define
  | Kw_select
  | Kw_from
  | Kw_where
  | Kw_group
  | Kw_by
  | Kw_having
  | Kw_as
  | Kw_and
  | Kw_or
  | Kw_not
  | Kw_merge
  | Kw_protocol
  | Kw_true
  | Kw_false
  | Kw_sample
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Comma
  | Semi
  | Dot
  | Colon
  | Star
  | Plus
  | Minus
  | Slash
  | Percent
  | Amp
  | Pipe
  | Shl
  | Shr
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

type located = { token : t; line : int; col : int }

let to_string = function
  | Ident s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Str_lit s -> Printf.sprintf "'%s'" s
  | Ip_lit ip -> Gigascope_packet.Ipaddr.to_string ip
  | Param p -> "$" ^ p
  | Kw_define -> "DEFINE"
  | Kw_select -> "SELECT"
  | Kw_from -> "FROM"
  | Kw_where -> "WHERE"
  | Kw_group -> "GROUP"
  | Kw_by -> "BY"
  | Kw_having -> "HAVING"
  | Kw_as -> "AS"
  | Kw_and -> "AND"
  | Kw_or -> "OR"
  | Kw_not -> "NOT"
  | Kw_merge -> "MERGE"
  | Kw_protocol -> "PROTOCOL"
  | Kw_true -> "TRUE"
  | Kw_false -> "FALSE"
  | Kw_sample -> "SAMPLE"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Comma -> ","
  | Semi -> ";"
  | Dot -> "."
  | Colon -> ":"
  | Star -> "*"
  | Plus -> "+"
  | Minus -> "-"
  | Slash -> "/"
  | Percent -> "%"
  | Amp -> "&"
  | Pipe -> "|"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eof -> "<eof>"
