module Rts = Gigascope_rts
module Value = Rts.Value
module Ty = Rts.Ty
module Func = Rts.Func

type t =
  | Const of Value.t
  | Field of int * Ty.t
  | Param of string * Ty.t
  | Unop of Ast.unop * t
  | Binop of Ast.binop * t * t * Ty.t
  | Call of Func.t * t list

let ty = function
  | Const v -> (match Ty.of_value v with Some t -> t | None -> Ty.Int)
  | Field (_, t) -> t
  | Param (_, t) -> t
  | Unop (Ast.Not, _) -> Ty.Bool
  | Unop (Ast.Neg, e) -> (
      match e with
      | Const (Value.Float _) -> Ty.Float
      | Field (_, t) | Param (_, t) -> t
      | Binop (_, _, _, t) -> t
      | _ -> Ty.Int)
  | Binop (_, _, _, t) -> t
  | Call (f, _) -> f.Func.ret_ty

let fields_used e =
  let rec go acc = function
    | Const _ | Param _ -> acc
    | Field (i, _) -> i :: acc
    | Unop (_, a) -> go acc a
    | Binop (_, a, b, _) -> go (go acc a) b
    | Call (_, args) -> List.fold_left go acc args
  in
  List.sort_uniq compare (go [] e)

let params_used e =
  let rec go acc = function
    | Const _ | Field _ -> acc
    | Param (p, _) -> p :: acc
    | Unop (_, a) -> go acc a
    | Binop (_, a, b, _) -> go (go acc a) b
    | Call (_, args) -> List.fold_left go acc args
  in
  List.sort_uniq compare (go [] e)

let rec is_lfta_safe = function
  | Const _ | Field _ | Param _ -> true
  | Unop (_, a) -> is_lfta_safe a
  | Binop (_, a, b, _) -> is_lfta_safe a && is_lfta_safe b
  | Call (f, args) -> f.Func.cost = Func.Cheap && List.for_all is_lfta_safe args

let rec is_partial = function
  | Const _ | Field _ | Param _ -> false
  | Unop (_, a) -> is_partial a
  | Binop (_, a, b, _) -> is_partial a || is_partial b
  | Call (f, args) -> f.Func.partial || List.exists is_partial args

let rec depends_on e i =
  match e with
  | Const _ | Param _ -> false
  | Field (j, _) -> i = j
  | Unop (_, a) -> depends_on a i
  | Binop (_, a, b, _) -> depends_on a i || depends_on b i
  | Call (_, args) -> List.exists (fun a -> depends_on a i) args

let nonneg_const = function
  | Const (Value.Int c) -> c >= 0
  | Const (Value.Float c) -> c >= 0.0
  | _ -> false

let rec monotone_in e i =
  match e with
  | Field (j, _) -> i = j
  | Const _ | Param _ -> true (* constant in field i *)
  | Binop (Ast.Add, a, b, _) -> monotone_in a i && monotone_in b i
  | Binop (Ast.Sub, a, b, _) -> monotone_in a i && not (depends_on b i)
  | Binop (Ast.Mul, a, b, _) ->
      (monotone_in a i && nonneg_const b) || (monotone_in b i && nonneg_const a)
  | Binop (Ast.Div, a, b, _) -> monotone_in a i && nonneg_const b
  | Binop (Ast.Shr, a, b, _) -> monotone_in a i && nonneg_const b
  | Call (f, [arg]) -> f.Rts.Func.monotone && monotone_in arg i
  | _ -> not (depends_on e i)

let rec conjuncts = function
  | Binop (Ast.And, a, b, _) -> conjuncts a @ conjuncts b
  | e -> [e]

let conjoin = function
  | [] -> None
  | first :: rest ->
      Some (List.fold_left (fun acc e -> Binop (Ast.And, acc, e, Ty.Bool)) first rest)

let rec rebase_fields e ~mapping =
  match e with
  | Const _ | Param _ -> e
  | Field (i, t) -> Field (mapping i, t)
  | Unop (op, a) -> Unop (op, rebase_fields a ~mapping)
  | Binop (op, a, b, t) -> Binop (op, rebase_fields a ~mapping, rebase_fields b ~mapping, t)
  | Call (f, args) -> Call (f, List.map (fun a -> rebase_fields a ~mapping) args)

let rec subst_fields e ~subst =
  match e with
  | Const _ | Param _ -> e
  | Field (i, _) -> subst i
  | Unop (op, a) -> Unop (op, subst_fields a ~subst)
  | Binop (op, a, b, t) -> Binop (op, subst_fields a ~subst, subst_fields b ~subst, t)
  | Call (f, args) -> Call (f, List.map (fun a -> subst_fields a ~subst) args)

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> Value.equal x y
  | Field (i, _), Field (j, _) -> i = j
  | Param (p, _), Param (q, _) -> p = q
  | Unop (o1, x), Unop (o2, y) -> o1 = o2 && equal x y
  | Binop (o1, x1, y1, _), Binop (o2, x2, y2, _) -> o1 = o2 && equal x1 x2 && equal y1 y2
  | Call (f, xs), Call (g, ys) ->
      f.Func.name = g.Func.name
      && List.length xs = List.length ys
      && List.for_all2 equal xs ys
  | _ -> false

let binop_string = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Band -> "&"
  | Ast.Bor -> "|"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"
  | Ast.Eq -> "="
  | Ast.Ne -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "and"
  | Ast.Or -> "or"

let rec pp fmt = function
  | Const v -> Value.pp fmt v
  | Field (i, _) -> Format.fprintf fmt "$f%d" i
  | Param (p, _) -> Format.fprintf fmt "$%s" p
  | Unop (Ast.Not, a) -> Format.fprintf fmt "(not %a)" pp a
  | Unop (Ast.Neg, a) -> Format.fprintf fmt "(-%a)" pp a
  | Binop (op, a, b, _) -> Format.fprintf fmt "(%a %s %a)" pp a (binop_string op) pp b
  | Call (f, args) ->
      Format.fprintf fmt "%s(" f.Func.name;
      List.iteri
        (fun i a ->
          if i > 0 then Format.fprintf fmt ", ";
          pp fmt a)
        args;
      Format.fprintf fmt ")"

let to_string e = Format.asprintf "%a" pp e
