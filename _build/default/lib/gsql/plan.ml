module Rts = Gigascope_rts

type input =
  | From_protocol of { interface : string; protocol : string; schema : Rts.Schema.t }
  | From_stream of { stream : string; schema : Rts.Schema.t }

let input_schema = function
  | From_protocol { schema; _ } -> schema
  | From_stream { schema; _ } -> schema

type agg_call = { kind : Rts.Agg_fn.kind; arg : Expr_ir.t option; agg_name : string }

type agg_body = {
  agg_input : input;
  agg_pred : Expr_ir.t option;
  keys : (Expr_ir.t * string) list;
  epoch : int option;
  epoch_dir : Rts.Order_prop.direction;
  epoch_band : float;
  epoch_in_field : int option;
  aggs : agg_call list;
  agg_items : (Expr_ir.t * string) list;
  having : Expr_ir.t option;
}

type join_body = {
  left : input;
  right : input;
  left_ord : int;
  right_ord : int;
  win_lo : float;
  win_hi : float;
  join_pred : Expr_ir.t option;
  join_items : (Expr_ir.t * string) list;
  ordered_output : bool;
}

type merge_body = { merge_inputs : input list; merge_field : int }

type body =
  | Select of {
      sel_input : input;
      sel_pred : Expr_ir.t option;
      sel_items : (Expr_ir.t * string) list;
      sample : float option;
    }
  | Agg of agg_body
  | Join of join_body
  | Merge of merge_body

type t = {
  name : string;
  body : body;
  out_schema : Rts.Schema.t;
  params : (string * Rts.Ty.t) list;
}

let inputs_of_body = function
  | Select { sel_input; _ } -> [sel_input]
  | Agg { agg_input; _ } -> [agg_input]
  | Join { left; right; _ } -> [left; right]
  | Merge { merge_inputs; _ } -> merge_inputs

let input_name = function
  | From_protocol { interface; protocol; _ } -> interface ^ "." ^ protocol
  | From_stream { stream; _ } -> stream

let pp_items fmt items =
  List.iteri
    (fun i (e, name) ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%a as %s" Expr_ir.pp e name)
    items

let pp fmt t =
  Format.fprintf fmt "@[<v>plan %s:@," t.name;
  (match t.body with
  | Select { sel_input; sel_pred; sel_items; sample } ->
      Format.fprintf fmt "  select %a@,  from %s@," pp_items sel_items (input_name sel_input);
      (match sel_pred with
      | Some p -> Format.fprintf fmt "  where %a@," Expr_ir.pp p
      | None -> ());
      (match sample with
      | Some r -> Format.fprintf fmt "  sample %g@," r
      | None -> ())
  | Agg a ->
      Format.fprintf fmt "  aggregate %a@,  from %s@," pp_items a.agg_items
        (input_name a.agg_input);
      (match a.agg_pred with
      | Some p -> Format.fprintf fmt "  where %a@," Expr_ir.pp p
      | None -> ());
      Format.fprintf fmt "  group by %a" pp_items a.keys;
      (match a.epoch with
      | Some e -> Format.fprintf fmt " (epoch key %d, band %g)@," e a.epoch_band
      | None -> Format.fprintf fmt " (no epoch key: flush at EOF only)@,");
      List.iteri
        (fun i (c : agg_call) ->
          Format.fprintf fmt "  agg[%d] %s%s as %s@," i
            (Rts.Agg_fn.kind_to_string c.kind)
            (match c.arg with Some e -> "(" ^ Expr_ir.to_string e ^ ")" | None -> "(*)")
            c.agg_name)
        a.aggs;
      (match a.having with
      | Some h -> Format.fprintf fmt "  having %a@," Expr_ir.pp h
      | None -> ())
  | Join j ->
      Format.fprintf fmt "  join %s, %s window [%g, %g] on fields (%d, %d)@," (input_name j.left)
        (input_name j.right) j.win_lo j.win_hi j.left_ord j.right_ord;
      (match j.join_pred with
      | Some p -> Format.fprintf fmt "  on %a@," Expr_ir.pp p
      | None -> ());
      Format.fprintf fmt "  select %a@," pp_items j.join_items
  | Merge m ->
      Format.fprintf fmt "  merge %s on field %d@,"
        (String.concat ", " (List.map input_name m.merge_inputs))
        m.merge_field);
  Format.fprintf fmt "  output %a@]" Rts.Schema.pp t.out_schema
