(** Lexical tokens of GSQL (queries and the data-definition language). *)

type t =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Ip_lit of int  (** dotted-quad literal, e.g. [192.168.0.0] *)
  | Param of string  (** [$name] — a query parameter *)
  (* keywords (recognized case-insensitively from identifiers) *)
  | Kw_define
  | Kw_select
  | Kw_from
  | Kw_where
  | Kw_group
  | Kw_by
  | Kw_having
  | Kw_as
  | Kw_and
  | Kw_or
  | Kw_not
  | Kw_merge
  | Kw_protocol
  | Kw_true
  | Kw_false
  | Kw_sample
  (* punctuation and operators *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Comma
  | Semi
  | Dot
  | Colon
  | Star
  | Plus
  | Minus
  | Slash
  | Percent
  | Amp
  | Pipe
  | Shl
  | Shr
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

type located = { token : t; line : int; col : int }

val to_string : t -> string
