(** The GSQL lexer.

    Notes on the surface syntax:
    - identifiers and keywords are case-insensitive;
    - string literals use single quotes, with [''] as the escape for a
      quote;
    - [--] starts a line comment, [/* ... */] a block comment;
    - a dotted quad of integers ([10.0.0.0]) lexes as an IP literal;
    - [$name] is a query parameter. *)

exception Error of string * int * int
(** message, line, column (1-based) *)

val tokenize : string -> Token.located list
(** Always ends with an [Eof] token. Raises {!Error}. *)
