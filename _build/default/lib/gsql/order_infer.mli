(** Imputation of output ordering properties (Section 2.1).

    "The query processing system will impute ordering properties of the
    output of query operators": a projected monotone attribute stays
    monotone; group-by keys flushed in epoch order are monotone; a join's
    ordered attributes come out banded by the window width; merge weakens
    to the least property of its inputs. *)

module Rts = Gigascope_rts

val of_select_item : Rts.Schema.t -> Expr_ir.t -> Rts.Order_prop.t
(** Property of one output expression of a selection/projection over the
    given input schema. *)

val of_group_key :
  Rts.Schema.t -> Expr_ir.t -> is_epoch:bool -> Rts.Order_prop.t
(** Property of a group key in the aggregation output. The epoch key is
    emitted in flush order, hence monotone; other keys are unordered
    (but see {!Rts.Order_prop.In_group}). *)

val of_join_item :
  left:Rts.Schema.t ->
  right:Rts.Schema.t ->
  win_lo:float ->
  win_hi:float ->
  ordered_output:bool ->
  Expr_ir.t ->
  Rts.Order_prop.t
(** Property of a join output expression (fields concatenated left then
    right): a projected ordered attribute of either side degrades to
    banded with the window width added to its own band — unless
    [ordered_output] holds and the expression depends on the {e left}
    ordered side, in which case the buffered join algorithm keeps it
    monotone ("monotonically increasing requires more buffer space",
    Section 2.1). *)

val of_agg_result :
  Rts.Schema.t ->
  kind:Rts.Agg_fn.kind ->
  arg:Expr_ir.t option ->
  group_names:string list ->
  has_epoch:bool ->
  Rts.Order_prop.t
(** Property of an aggregate result column. [min]/[max] of an ordered
    attribute under an epoch-closed group-by is {e increasing in group}
    over the non-epoch keys — the paper's Netflow example: "the start time
    of a Netflow record (an aggregation of packets) is increasing in group
    (sourceIP, destIP, sourcePort, destPort, protocol)" (Section 2.1,
    property 3). *)

val of_merge : Rts.Order_prop.t list -> Rts.Order_prop.t
(** The merge attribute keeps the weakest of its inputs' properties. *)
