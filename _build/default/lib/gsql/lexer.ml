exception Error of string * int * int

type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let error st msg = raise (Error (msg, st.line, st.col))

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let keyword_of = function
  | "define" -> Some Token.Kw_define
  | "select" -> Some Token.Kw_select
  | "from" -> Some Token.Kw_from
  | "where" -> Some Token.Kw_where
  | "group" -> Some Token.Kw_group
  | "by" -> Some Token.Kw_by
  | "having" -> Some Token.Kw_having
  | "as" -> Some Token.Kw_as
  | "and" -> Some Token.Kw_and
  | "or" -> Some Token.Kw_or
  | "not" -> Some Token.Kw_not
  | "merge" -> Some Token.Kw_merge
  | "protocol" -> Some Token.Kw_protocol
  | "true" -> Some Token.Kw_true
  | "false" -> Some Token.Kw_false
  | "sample" -> Some Token.Kw_sample
  | _ -> None

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '-' when peek2 st = Some '-' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            close ()
        | None, _ -> error st "unterminated block comment"
      in
      close ();
      skip_trivia st
  | _ -> ()

let read_while st pred =
  let start = st.pos in
  while (match peek st with Some c -> pred c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let read_string st =
  (* opening quote consumed *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '\'' when peek2 st = Some '\'' ->
        advance st;
        advance st;
        Buffer.add_char buf '\'';
        go ()
    | Some '\'' -> advance st
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

(* A number; if it turns out to be a dotted quad (a.b.c.d, all integers),
   produce an IP literal. *)
let read_number st =
  let part () = read_while st is_digit in
  let first = part () in
  let octet s =
    match int_of_string_opt s with Some v when v >= 0 && v <= 255 -> Some v | _ -> None
  in
  let dotted_quad () =
    (* we are just after "first" and peek at '.'; try to read three more
       .int parts without consuming on failure by checkpointing *)
    let save = (st.pos, st.line, st.col) in
    let restore () =
      let p, l, c = save in
      st.pos <- p;
      st.line <- l;
      st.col <- c
    in
    let read_dot_part () =
      if peek st = Some '.' && (match peek2 st with Some c -> is_digit c | None -> false) then begin
        advance st;
        Some (part ())
      end
      else None
    in
    match read_dot_part () with
    | None -> None
    | Some b -> (
        match read_dot_part () with
        | None ->
            restore ();
            None
        | Some c -> (
            match read_dot_part () with
            | None ->
                restore ();
                None
            | Some d -> (
                match (octet first, octet b, octet c, octet d) with
                | Some a, Some b, Some c, Some d ->
                    Some (Gigascope_packet.Ipaddr.of_octets a b c d)
                | _ ->
                    restore ();
                    None)))
  in
  match peek st with
  | Some '.' -> (
      match dotted_quad () with
      | Some ip -> Token.Ip_lit ip
      | None ->
          if match peek2 st with Some c -> is_digit c | None -> false then begin
            advance st;
            let frac = part () in
            Token.Float_lit (float_of_string (first ^ "." ^ frac))
          end
          else Token.Int_lit (int_of_string first))
  | _ -> (
      (* hex literals for masks: 0x... *)
      match (first, peek st) with
      | "0", Some ('x' | 'X') ->
          advance st;
          let hex =
            read_while st (fun c ->
                is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))
          in
          if hex = "" then error st "bad hex literal"
          else Token.Int_lit (int_of_string ("0x" ^ hex))
      | _ -> Token.Int_lit (int_of_string first))

let next_token st =
  skip_trivia st;
  let line = st.line and col = st.col in
  let tok =
    match peek st with
    | None -> Token.Eof
    | Some c when is_digit c -> read_number st
    | Some c when is_ident_start c ->
        let word = read_while st is_ident_char in
        (match keyword_of (String.lowercase_ascii word) with
        | Some kw -> kw
        | None -> Token.Ident word)
    | Some '\'' ->
        advance st;
        Token.Str_lit (read_string st)
    | Some '$' ->
        advance st;
        let name = read_while st is_ident_char in
        if name = "" then error st "expected parameter name after $" else Token.Param name
    | Some '(' ->
        advance st;
        Token.Lparen
    | Some ')' ->
        advance st;
        Token.Rparen
    | Some '{' ->
        advance st;
        Token.Lbrace
    | Some '}' ->
        advance st;
        Token.Rbrace
    | Some ',' ->
        advance st;
        Token.Comma
    | Some ';' ->
        advance st;
        Token.Semi
    | Some '.' ->
        advance st;
        Token.Dot
    | Some ':' ->
        advance st;
        Token.Colon
    | Some '*' ->
        advance st;
        Token.Star
    | Some '+' ->
        advance st;
        Token.Plus
    | Some '-' ->
        advance st;
        Token.Minus
    | Some '/' ->
        advance st;
        Token.Slash
    | Some '%' ->
        advance st;
        Token.Percent
    | Some '&' ->
        advance st;
        Token.Amp
    | Some '|' ->
        advance st;
        Token.Pipe
    | Some '=' ->
        advance st;
        Token.Eq
    | Some '!' when peek2 st = Some '=' ->
        advance st;
        advance st;
        Token.Neq
    | Some '<' -> (
        advance st;
        match peek st with
        | Some '=' ->
            advance st;
            Token.Le
        | Some '>' ->
            advance st;
            Token.Neq
        | Some '<' ->
            advance st;
            Token.Shl
        | _ -> Token.Lt)
    | Some '>' -> (
        advance st;
        match peek st with
        | Some '=' ->
            advance st;
            Token.Ge
        | Some '>' ->
            advance st;
            Token.Shr
        | _ -> Token.Gt)
    | Some c -> error st (Printf.sprintf "unexpected character '%c'" c)
  in
  { Token.token = tok; line; col }

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let tok = next_token st in
    if tok.Token.token = Token.Eof then List.rev (tok :: acc) else go (tok :: acc)
  in
  go []
