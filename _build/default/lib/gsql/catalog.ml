module Rts = Gigascope_rts
module Bpf = Gigascope_bpf

type protocol = {
  schema : Rts.Schema.t;
  bpf_fields : (string * Bpf.Filter.field) list;
  payload_fields : string list;
}

type t = {
  protocols : (string, protocol) Hashtbl.t;
  streams : (string, Rts.Schema.t) Hashtbl.t;
  funcs : Rts.Func.registry;
}

let create funcs = { protocols = Hashtbl.create 8; streams = Hashtbl.create 16; funcs }

let functions t = t.funcs

let key = String.lowercase_ascii

let add_protocol t ~name proto = Hashtbl.replace t.protocols (key name) proto
let find_protocol t name = Hashtbl.find_opt t.protocols (key name)

let order_of_spec = function
  | None -> Rts.Order_prop.Unordered
  | Some Ast.Spec_increasing -> Rts.Order_prop.Monotone Rts.Order_prop.Asc
  | Some Ast.Spec_decreasing -> Rts.Order_prop.Monotone Rts.Order_prop.Desc
  | Some Ast.Spec_strictly_increasing -> Rts.Order_prop.Strict Rts.Order_prop.Asc
  | Some Ast.Spec_strictly_decreasing -> Rts.Order_prop.Strict Rts.Order_prop.Desc
  | Some Ast.Spec_nonrepeating -> Rts.Order_prop.Nonrepeating
  | Some (Ast.Spec_banded_increasing b) -> Rts.Order_prop.Banded (Rts.Order_prop.Asc, b)
  | Some (Ast.Spec_banded_decreasing b) -> Rts.Order_prop.Banded (Rts.Order_prop.Desc, b)
  | Some (Ast.Spec_increasing_in fields) -> Rts.Order_prop.In_group (fields, Rts.Order_prop.Asc)

let add_protocol_def t (def : Ast.protocol_def) =
  let fields =
    List.map
      (fun (f : Ast.field_decl) ->
        match Rts.Ty.of_ddl_name (String.lowercase_ascii f.Ast.type_name) with
        | Some ty ->
            Ok { Rts.Schema.name = f.Ast.field_name; ty; order = order_of_spec f.Ast.order_spec }
        | None -> Error (Printf.sprintf "protocol %s: unknown type %s" def.Ast.protocol_name f.Ast.type_name))
      def.Ast.fields
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | Ok f :: rest -> collect (f :: acc) rest
    | Error e :: _ -> Error e
  in
  match collect [] fields with
  | Error _ as e -> e
  | Ok fields -> (
      match Rts.Schema.make fields with
      | schema ->
          add_protocol t ~name:def.Ast.protocol_name
            { schema; bpf_fields = []; payload_fields = [] };
          Ok ()
      | exception Invalid_argument msg -> Error msg)

let add_stream t ~name schema = Hashtbl.replace t.streams (key name) schema
let find_stream t name = Hashtbl.find_opt t.streams (key name)

let protocol_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.protocols [] |> List.sort compare
let stream_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.streams [] |> List.sort compare
