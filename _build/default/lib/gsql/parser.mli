(** The GSQL parser: recursive descent over {!Lexer} tokens.

    A program is a sequence of PROTOCOL definitions and queries:
    {v
      PROTOCOL tcp {
        uint time (increasing);
        ip   srcIP;
        uint srcPort;
        string payload;
      }

      DEFINE { query_name tcpdest0; }
      SELECT destIP, destPort, time
      FROM eth0.tcp
      WHERE ipversion = 4 and protocol = 6

      DEFINE { query_name tcpdest; }
      MERGE t0.time : t1.time
      FROM tcpdest0 t0, tcpdest1 t1
    v}
    The DEFINE section is optional for a single anonymous query. *)

exception Error of string * int * int
(** message, line, column *)

val parse_program : string -> Ast.program
val parse_query : string -> Ast.query_def
(** Parse exactly one query (with optional DEFINE). *)

val parse_expr : string -> Ast.expr
(** For tests and the CLI. *)
