(** Typed expression IR — what the analyzer produces and the code generator
    consumes.

    Field references are positional (resolved against the operator's input
    tuple); function calls carry the registry entry so the splitter can see
    costs and the code generator can instantiate handles. *)

module Rts = Gigascope_rts

type t =
  | Const of Rts.Value.t
  | Field of int * Rts.Ty.t
  | Param of string * Rts.Ty.t
  | Unop of Ast.unop * t
  | Binop of Ast.binop * t * t * Rts.Ty.t  (** the result type *)
  | Call of Rts.Func.t * t list

val ty : t -> Rts.Ty.t

val fields_used : t -> int list
(** Sorted, deduplicated input-field indices. *)

val params_used : t -> string list

val is_lfta_safe : t -> bool
(** No [Expensive] function anywhere in the tree. *)

val is_partial : t -> bool
(** May evaluate to "no value" (contains a partial function). *)

val monotone_in : t -> int -> bool
(** [monotone_in e i]: is [e], viewed as a function of field [i] with all
    other fields fixed, monotone nondecreasing? Conservative (sound,
    incomplete): field itself; [e + c], [e - c], [e * c] and [e / c] for
    nonnegative constant [c]; [e >> c]. This is what lets [time/60] keep
    [time]'s ordering and serve as an aggregation epoch. *)

val conjuncts : t -> t list
(** Flatten a predicate's top-level AND structure. *)

val conjoin : t list -> t option
(** Rebuild a predicate from conjuncts; [None] for the empty list. *)

val rebase_fields : t -> mapping:(int -> int) -> t
(** Renumber field references (LFTA/HFTA split rebases the HFTA part onto
    the LFTA's output schema). *)

val subst_fields : t -> subst:(int -> t) -> t
(** Replace each field reference by an arbitrary expression — used when a
    split [avg] becomes [sum_partial / count_partial] in the HFTA. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
