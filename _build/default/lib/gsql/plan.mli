(** Logical query plans — the analyzer's output, the splitter's input. *)

module Rts = Gigascope_rts

type input =
  | From_protocol of { interface : string; protocol : string; schema : Rts.Schema.t }
  | From_stream of { stream : string; schema : Rts.Schema.t }

val input_schema : input -> Rts.Schema.t

type agg_call = { kind : Rts.Agg_fn.kind; arg : Expr_ir.t option; agg_name : string }

(** Aggregation body. [items] and [having] are expressions over the
    {e virtual tuple} [keys @ aggs] (field 0 is the first group key, field
    [n_keys] the first aggregate). *)
type agg_body = {
  agg_input : input;
  agg_pred : Expr_ir.t option;
  keys : (Expr_ir.t * string) list;
  epoch : int option;  (** index into [keys] of the ordered key *)
  epoch_dir : Rts.Order_prop.direction;
  epoch_band : float;
  epoch_in_field : int option;
      (** the single input field the epoch key is monotone in, if any —
          enables punctuation translation *)
  aggs : agg_call list;
  agg_items : (Expr_ir.t * string) list;
  having : Expr_ir.t option;
}

type join_body = {
  left : input;
  right : input;
  left_ord : int;  (** ordered field index, left schema *)
  right_ord : int;  (** ordered field index, right schema *)
  win_lo : float;
  win_hi : float;  (** window on [left.ord - right.ord] *)
  join_pred : Expr_ir.t option;  (** over concatenated fields: left's then right's *)
  join_items : (Expr_ir.t * string) list;  (** over concatenated fields *)
  ordered_output : bool;
      (** emit matches in left-attribute order (monotone output, more
          buffering) instead of probe order (banded output) — the
          algorithm choice of Section 2.1 *)
}

type merge_body = { merge_inputs : input list; merge_field : int }

type body =
  | Select of {
      sel_input : input;
      sel_pred : Expr_ir.t option;
      sel_items : (Expr_ir.t * string) list;
      sample : float option;
    }
  | Agg of agg_body
  | Join of join_body
  | Merge of merge_body

type t = {
  name : string;
  body : body;
  out_schema : Rts.Schema.t;  (** with imputed ordering properties *)
  params : (string * Rts.Ty.t) list;  (** query parameters used *)
}

val inputs_of_body : body -> input list
val pp : Format.formatter -> t -> unit
