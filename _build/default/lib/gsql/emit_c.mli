(** Pseudo-C emission.

    "The GSQL processor is actually a code generator. A GSQL query is
    analyzed then translated into either C code or C++ code" (Section 3).
    Our execution path compiles to OCaml closures instead, but this module
    renders the same split plan as the C a Gigascope build would have
    generated — one translation unit per LFTA (linked into the runtime)
    and per HFTA (a separate process) — for inspection with the CLI's
    [explain] command and for documentation. The output is illustrative C,
    not compiled. *)

val emit : Split.t -> string
(** Render every physical node of the split plan. *)

val emit_node : Split.phys_node -> string
