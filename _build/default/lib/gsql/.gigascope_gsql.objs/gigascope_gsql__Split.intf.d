lib/gsql/split.mli: Catalog Expr_ir Gigascope_bpf Gigascope_rts Plan
