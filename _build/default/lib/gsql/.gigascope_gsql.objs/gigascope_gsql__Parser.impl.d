lib/gsql/parser.ml: Ast Lexer List Printf String Token
