lib/gsql/analyze.mli: Ast Catalog Plan
