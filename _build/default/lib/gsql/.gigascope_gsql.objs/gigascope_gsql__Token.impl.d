lib/gsql/token.ml: Gigascope_packet Printf
