lib/gsql/ast.mli: Format
