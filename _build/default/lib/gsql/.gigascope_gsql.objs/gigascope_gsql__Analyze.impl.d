lib/gsql/analyze.ml: Array Ast Catalog Expr_ir Float Gigascope_rts Hashtbl List Option Order_infer Plan Printf Result String
