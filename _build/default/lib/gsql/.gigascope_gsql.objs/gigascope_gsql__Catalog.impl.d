lib/gsql/catalog.ml: Ast Gigascope_bpf Gigascope_rts Hashtbl List Printf String
