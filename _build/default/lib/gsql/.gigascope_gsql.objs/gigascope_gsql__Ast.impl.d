lib/gsql/ast.ml: Format Gigascope_packet List String
