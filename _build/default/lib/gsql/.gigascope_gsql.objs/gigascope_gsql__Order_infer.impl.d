lib/gsql/order_infer.ml: Expr_ir Gigascope_rts List
