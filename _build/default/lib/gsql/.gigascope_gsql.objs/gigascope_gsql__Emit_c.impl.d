lib/gsql/emit_c.ml: Array Ast Buffer Expr_ir Format Gigascope_bpf Gigascope_packet Gigascope_rts List Plan Printf Split String
