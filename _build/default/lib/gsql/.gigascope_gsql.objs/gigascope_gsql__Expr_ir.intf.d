lib/gsql/expr_ir.mli: Ast Format Gigascope_rts
