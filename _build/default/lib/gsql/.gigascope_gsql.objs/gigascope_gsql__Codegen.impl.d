lib/gsql/codegen.ml: Array Ast Expr_ir Gigascope_rts Gigascope_util Hashtbl List Plan Printf Result Split
