lib/gsql/order_infer.mli: Expr_ir Gigascope_rts
