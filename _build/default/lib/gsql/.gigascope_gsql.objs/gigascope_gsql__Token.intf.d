lib/gsql/token.mli:
