lib/gsql/lexer.mli: Token
