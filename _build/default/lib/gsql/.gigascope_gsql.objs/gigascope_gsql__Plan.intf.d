lib/gsql/plan.mli: Expr_ir Format Gigascope_rts
