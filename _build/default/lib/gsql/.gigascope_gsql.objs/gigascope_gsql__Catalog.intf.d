lib/gsql/catalog.mli: Ast Gigascope_bpf Gigascope_rts
