lib/gsql/split.ml: Ast Catalog Expr_ir Fun Gigascope_bpf Gigascope_rts Hashtbl List Option Order_infer Plan Printf String
