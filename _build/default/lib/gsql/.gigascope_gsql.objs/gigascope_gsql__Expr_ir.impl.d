lib/gsql/expr_ir.ml: Ast Format Gigascope_rts List
