lib/gsql/plan.ml: Expr_ir Format Gigascope_rts List String
