lib/gsql/emit_c.mli: Split
