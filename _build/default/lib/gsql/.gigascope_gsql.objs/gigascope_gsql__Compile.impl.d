lib/gsql/compile.ml: Analyze Ast Buffer Catalog Emit_c Format Gigascope_rts List Option Parser Plan Printf Result Split String
