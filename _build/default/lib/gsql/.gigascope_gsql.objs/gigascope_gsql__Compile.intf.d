lib/gsql/compile.mli: Catalog Plan Split
