lib/gsql/parser.mli: Ast
