lib/gsql/codegen.mli: Expr_ir Gigascope_rts Hashtbl Split
