lib/gsql/lexer.ml: Buffer Gigascope_packet List Printf String Token
