(** Binary min-heaps over explicit priorities.

    Used for the discrete-event simulator's event queue and for k-way merges
    in tests. Priorities are floats; ties are broken by insertion order so
    that simulation runs are deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> prio:float -> 'a -> unit
(** Insert an element with the given priority. *)

val min : 'a t -> (float * 'a) option
(** The minimum-priority element, if any, without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. Among equal priorities,
    the earliest-inserted element is returned first. *)

val clear : 'a t -> unit
