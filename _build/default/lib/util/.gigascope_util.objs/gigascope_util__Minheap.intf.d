lib/util/minheap.mli:
