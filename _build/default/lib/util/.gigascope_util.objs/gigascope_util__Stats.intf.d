lib/util/stats.mli:
