lib/util/ring.mli:
