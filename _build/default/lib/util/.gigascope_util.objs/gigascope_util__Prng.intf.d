lib/util/prng.mli:
