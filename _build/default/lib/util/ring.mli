(** Bounded ring buffers.

    These model Gigascope's shared-memory communication channels between
    query nodes. They are single-producer / single-consumer FIFO queues with
    a fixed capacity; a push onto a full ring fails, which is exactly the
    event the paper's performance metric counts (a dropped tuple). Drop
    accounting is built in. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] makes an empty ring holding at most [capacity]
    elements. Requires [capacity > 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Number of elements currently queued. *)

val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push t x] enqueues [x] and returns [true], or returns [false] (and
    counts a drop) if the ring is full. *)

val push_force : 'a t -> 'a -> unit
(** [push_force t x] enqueues [x], evicting the oldest element if full.
    Used only where overwrite semantics are wanted (e.g. NIC RX rings count
    the eviction as a drop themselves). *)

val pop : 'a t -> 'a option
(** Dequeue the oldest element. *)

val peek : 'a t -> 'a option
(** The oldest element without removing it. *)

val drops : 'a t -> int
(** Number of failed pushes since creation. *)

val reset_drops : 'a t -> unit

val high_water : 'a t -> int
(** Maximum length ever observed; used to measure buffer pressure in the
    heartbeat ablation (A3). *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate oldest-to-newest without consuming. *)

val to_list : 'a t -> 'a list
(** Elements oldest-to-newest. *)
