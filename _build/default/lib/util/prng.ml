type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: tiny state, excellent statistical quality for simulation use. *)
let bits64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* OCaml ints are 63-bit; mask after truncation so the result is always
   nonnegative. *)
let nonneg_int t = Int64.to_int (bits64 t) land max_int

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = nonneg_int t in
    let v = r mod n in
    if r - v > max_int - n + 1 then go () else v
  in
  go ()

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let pareto t ~alpha ~xmin =
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  xmin /. (u ** (1.0 /. alpha))

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (log u /. log (1.0 -. p))

let choose t weighted =
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  if total <= 0.0 then invalid_arg "Prng.choose: nonpositive total weight";
  let x = float t total in
  let n = Array.length weighted in
  let rec go i acc =
    if i = n - 1 then snd weighted.(i)
    else
      let acc = acc +. fst weighted.(i) in
      if x < acc then snd weighted.(i) else go (i + 1) acc
  in
  go 0 0.0
