type 'a t = {
  buf : 'a option array;
  cap : int;
  mutable head : int; (* index of oldest element *)
  mutable len : int;
  mutable drops : int;
  mutable high_water : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; cap = capacity; head = 0; len = 0; drops = 0; high_water = 0 }

let capacity t = t.cap
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = t.cap

let push t x =
  if t.len = t.cap then begin
    t.drops <- t.drops + 1;
    false
  end else begin
    t.buf.((t.head + t.len) mod t.cap) <- Some x;
    t.len <- t.len + 1;
    if t.len > t.high_water then t.high_water <- t.len;
    true
  end

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod t.cap;
    t.len <- t.len - 1;
    x
  end

let push_force t x =
  if t.len = t.cap then ignore (pop t);
  ignore (push t x)

let peek t = if t.len = 0 then None else t.buf.(t.head)

let drops t = t.drops
let reset_drops t = t.drops <- 0
let high_water t = t.high_water

let clear t =
  Array.fill t.buf 0 t.cap None;
  t.head <- 0;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    match t.buf.((t.head + i) mod t.cap) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc
