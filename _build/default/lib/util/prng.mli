(** Deterministic pseudo-random number generation.

    A small, fast, seedable generator (splitmix64) used everywhere randomness
    is needed — traffic synthesis, sampling, property-test data — so that
    every run of the system is reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    sequences. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val bits64 : t -> int64
(** [bits64 t] returns 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution with the given
    mean; used for Poisson inter-arrival times. *)

val pareto : t -> alpha:float -> xmin:float -> float
(** [pareto t ~alpha ~xmin] samples a Pareto distribution (heavy tail);
    used for burst lengths, as network traffic is "notoriously bursty". *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of a
    Bernoulli(p) trial, [p] in (0, 1]. *)

val choose : t -> (float * 'a) array -> 'a
(** [choose t weighted] picks an element with probability proportional to its
    weight. Requires a nonempty array with positive total weight. *)
