type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { arr = Array.make 16 None; len = 0; next_seq = 0 }

let length t = t.len
let is_empty t = t.len = 0

let get t i =
  match t.arr.(i) with Some e -> e | None -> assert false

(* [before a b] is true when a should pop before b. *)
let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t =
  let arr = Array.make (2 * Array.length t.arr) None in
  Array.blit t.arr 0 arr 0 t.len;
  t.arr <- arr

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before (get t i) (get t parent) then begin
      let tmp = t.arr.(i) in
      t.arr.(i) <- t.arr.(parent);
      t.arr.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before (get t l) (get t !smallest) then smallest := l;
  if r < t.len && before (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.arr.(i) in
    t.arr.(i) <- t.arr.(!smallest);
    t.arr.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~prio value =
  if t.len = Array.length t.arr then grow t;
  t.arr.(t.len) <- Some { prio; seq = t.next_seq; value };
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let min t =
  if t.len = 0 then None
  else
    let e = get t 0 in
    Some (e.prio, e.value)

let pop t =
  if t.len = 0 then None
  else begin
    let e = get t 0 in
    t.len <- t.len - 1;
    t.arr.(0) <- t.arr.(t.len);
    t.arr.(t.len) <- None;
    if t.len > 0 then sift_down t 0;
    Some (e.prio, e.value)
  end

let clear t =
  Array.fill t.arr 0 (Array.length t.arr) None;
  t.len <- 0
