lib/lpm/trie.mli:
