lib/lpm/table.mli: Gigascope_packet
