lib/lpm/table.ml: Fun Gigascope_packet List Printf String Trie
