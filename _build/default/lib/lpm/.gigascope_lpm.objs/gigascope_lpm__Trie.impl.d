lib/lpm/trie.ml: Option
