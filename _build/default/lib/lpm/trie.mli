(** Longest-prefix-match binary trie over IPv4 prefixes.

    This is the "special fast algorithm" behind the paper's [getlpmid] UDF:
    map an IP address to the identifier of the most specific matching
    subnet (e.g. the autonomous system of an AT&T peer). Lookup walks at
    most 32 bits. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> prefix:int -> len:int -> 'a -> unit
(** [add t ~prefix ~len v] associates [v] with [prefix/len]. A later [add]
    of the same prefix replaces the value. [len] in \[0, 32\]. *)

val lookup : 'a t -> int -> 'a option
(** [lookup t ip] is the value of the longest prefix containing [ip]. *)

val lookup_with_len : 'a t -> int -> ('a * int) option
(** Also reports the matched prefix length. *)

val remove : 'a t -> prefix:int -> len:int -> unit
(** Remove an exact prefix if present (its subtree is kept). *)

val size : 'a t -> int
(** Number of prefixes stored. *)

val iter : (prefix:int -> len:int -> 'a -> unit) -> 'a t -> unit
(** Visit all stored prefixes in trie order. *)
