module Ipaddr = Gigascope_packet.Ipaddr

type t = int Trie.t

let of_entries entries =
  let trie = Trie.create () in
  List.iter
    (fun (prefix_s, id) ->
      let prefix, len = Ipaddr.parse_prefix prefix_s in
      Trie.add trie ~prefix ~len id)
    entries;
  trie

let strip_comment line =
  match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun x -> x <> "")

let load_string content =
  let trie = Trie.create () in
  let lines = String.split_on_char '\n' content in
  let rec go lineno = function
    | [] -> Ok trie
    | line :: rest -> (
        let fields = split_ws (strip_comment line) in
        match fields with
        | [] -> go (lineno + 1) rest
        | [prefix_s; id_s] -> (
            match
              ( (try Some (Ipaddr.parse_prefix prefix_s) with Invalid_argument _ -> None),
                int_of_string_opt id_s )
            with
            | Some (prefix, len), Some id ->
                Trie.add trie ~prefix ~len id;
                go (lineno + 1) rest
            | _ -> Error (Printf.sprintf "prefix table: line %d: malformed entry" lineno))
        | _ -> Error (Printf.sprintf "prefix table: line %d: expected 'prefix id'" lineno))
  in
  go 1 lines

let load_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | content -> load_string content
  | exception Sys_error msg -> Error ("prefix table: " ^ msg)

let lookup t ip = Trie.lookup t ip
let size t = Trie.size t
