type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = { root : 'a node; mutable size : int }

let new_node () = { value = None; zero = None; one = None }

let create () = { root = new_node (); size = 0 }

let bit ip i = (ip lsr (31 - i)) land 1

let add t ~prefix ~len v =
  if len < 0 || len > 32 then invalid_arg "Trie.add: bad prefix length";
  let rec go node i =
    if i = len then begin
      if node.value = None then t.size <- t.size + 1;
      node.value <- Some v
    end
    else
      let child =
        if bit prefix i = 0 then (
          match node.zero with
          | Some c -> c
          | None ->
              let c = new_node () in
              node.zero <- Some c;
              c)
        else
          match node.one with
          | Some c -> c
          | None ->
              let c = new_node () in
              node.one <- Some c;
              c
      in
      go child (i + 1)
  in
  go t.root 0

let lookup_with_len t ip =
  let best = ref None in
  let rec go node i =
    (match node.value with Some v -> best := Some (v, i) | None -> ());
    if i < 32 then
      match if bit ip i = 0 then node.zero else node.one with
      | Some child -> go child (i + 1)
      | None -> ()
  in
  go t.root 0;
  !best

let lookup t ip = Option.map fst (lookup_with_len t ip)

let remove t ~prefix ~len =
  let rec go node i =
    if i = len then begin
      if node.value <> None then t.size <- t.size - 1;
      node.value <- None
    end
    else
      match if bit prefix i = 0 then node.zero else node.one with
      | Some child -> go child (i + 1)
      | None -> ()
  in
  if len >= 0 && len <= 32 then go t.root 0

let size t = t.size

let iter f t =
  let rec go node prefix i =
    (match node.value with Some v -> f ~prefix ~len:i v | None -> ());
    if i < 32 then begin
      (match node.zero with Some c -> go c prefix (i + 1) | None -> ());
      match node.one with
      | Some c -> go c (prefix lor (1 lsl (31 - i))) (i + 1)
      | None -> ()
    end
  in
  go t.root 0 0
