(** Prefix tables loaded from routing-table dumps.

    The paper's example passes a file of AT&T peer AS prefixes as a
    pass-by-handle parameter to [getlpmid]; this module parses that file
    format and builds the lookup trie once. File format, one entry per
    line:
    {v
      # comment
      12.0.0.0/8      7018    # AT&T
      192.168.0.0/16  64512
    v}
    The second column is the integer id returned by lookups. *)

type t

val of_entries : (string * int) list -> t
(** [of_entries [(prefix_string, id); ...]] builds a table directly; raises
    [Invalid_argument] on a malformed prefix. *)

val load_string : string -> (t, string) result
(** Parse the file format from a string. *)

val load_file : string -> (t, string) result

val lookup : t -> Gigascope_packet.Ipaddr.t -> int option
(** The id of the longest matching prefix. *)

val size : t -> int
