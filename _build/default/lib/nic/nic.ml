module Bpf = Gigascope_bpf

type mode =
  | Dumb
  | Filtering of { prog : Bpf.Insn.program option; snap_len : int }
  | Programmable of { prog : Bpf.Insn.program option; snap_len : int }

type stats = {
  packets_seen : int;
  packets_delivered : int;
  bytes_seen : int;
  bytes_delivered : int;
}

type t = {
  mutable nic_mode : mode;
  mutable packets_seen : int;
  mutable packets_delivered : int;
  mutable bytes_seen : int;
  mutable bytes_delivered : int;
}

let create ?(mode = Dumb) () =
  { nic_mode = mode; packets_seen = 0; packets_delivered = 0; bytes_seen = 0; bytes_delivered = 0 }

let mode t = t.nic_mode
let set_mode t m = t.nic_mode <- m

let widen t m =
  let combine (p1, s1) (p2, s2) =
    let prog =
      match (p1, p2) with
      | Some a, Some b when a = b -> Some a
      | _ -> None (* different needs: the card must pass everything *)
    in
    (prog, max s1 s2)
  in
  let parts = function
    | Dumb -> None
    | Filtering { prog; snap_len } -> Some (`F, prog, snap_len)
    | Programmable { prog; snap_len } -> Some (`P, prog, snap_len)
  in
  t.nic_mode <-
    (match (parts t.nic_mode, parts m) with
    | None, _ | _, None -> Dumb
    | Some (k1, p1, s1), Some (k2, p2, s2) ->
        let prog, snap_len = combine (p1, s1) (p2, s2) in
        if k1 = `P && k2 = `P then Programmable { prog; snap_len }
        else Filtering { prog; snap_len })

let deliver t wire =
  t.packets_seen <- t.packets_seen + 1;
  t.bytes_seen <- t.bytes_seen + Bytes.length wire;
  let pass snap prog =
    match prog with
    | None -> Some snap
    | Some p ->
        let r = Bpf.Vm.run p wire in
        if r = 0 then None else Some (min snap r)
  in
  let decision =
    match t.nic_mode with
    | Dumb -> Some (Bytes.length wire)
    | Filtering { prog; snap_len } | Programmable { prog; snap_len } -> pass snap_len prog
  in
  match decision with
  | None -> None
  | Some keep ->
      let out = Gigascope_packet.Packet.truncate ~snap_len:keep wire in
      t.packets_delivered <- t.packets_delivered + 1;
      t.bytes_delivered <- t.bytes_delivered + Bytes.length out;
      Some out

let offloads_lfta t = match t.nic_mode with Programmable _ -> true | Dumb | Filtering _ -> false

let stats t =
  {
    packets_seen = t.packets_seen;
    packets_delivered = t.packets_delivered;
    bytes_seen = t.bytes_seen;
    bytes_delivered = t.bytes_delivered;
  }

let reset_stats t =
  t.packets_seen <- 0;
  t.packets_delivered <- 0;
  t.bytes_seen <- 0;
  t.bytes_delivered <- 0
