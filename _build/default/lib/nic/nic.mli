(** Network interface card models.

    Gigascope pushes work into the NIC when it can (Section 3): some cards
    accept a bpf filter and a snap length ("the number of bytes of
    qualifying packets to be returned"); the Tigon gigabit card could run
    the LFTAs themselves. Three models:

    - [Dumb]: every packet delivered whole;
    - [Filtering]: the card evaluates a filter program and truncates
      accepted packets to the snap length;
    - [Programmable]: like [Filtering], but the host is also relieved of
      LFTA work — the cost difference is modelled by the simulator; the
      data path here is the same.

    Delivery statistics feed the experiments' data-reduction measurements. *)

module Bpf = Gigascope_bpf

type mode =
  | Dumb
  | Filtering of { prog : Bpf.Insn.program option; snap_len : int }
  | Programmable of { prog : Bpf.Insn.program option; snap_len : int }

type stats = {
  packets_seen : int;
  packets_delivered : int;
  bytes_seen : int;
  bytes_delivered : int;
}

type t

val create : ?mode:mode -> unit -> t
val mode : t -> mode

val set_mode : t -> mode -> unit
(** Reconfiguring a NIC corresponds to an RTS restart in the real system. *)

val widen : t -> mode -> unit
(** A second LFTA binds to the same card: keep the union of what both need
    (drop the filter unless identical, take the larger snap length). *)

val deliver : t -> bytes -> bytes option
(** [deliver t wire] runs the card's data path on a wire-format packet:
    [None] if the filter rejects it, otherwise the (possibly snapped)
    bytes the host receives. *)

val offloads_lfta : t -> bool
(** True for [Programmable]: the host does not run LFTA code. *)

val stats : t -> stats
val reset_stats : t -> unit
