lib/nic/nic.ml: Bytes Gigascope_bpf Gigascope_packet
