lib/nic/nic.mli: Gigascope_bpf
