(** Stream schemas: named, typed fields with ordering properties. *)

type field = { name : string; ty : Ty.t; order : Order_prop.t }

type t

val make : field list -> t
(** Raises [Invalid_argument] on duplicate field names. *)

val fields : t -> field array
val arity : t -> int

val field_index : t -> string -> int option
(** Case-insensitive, as SQL identifiers are. *)

val field_at : t -> int -> field

val ordered_fields : t -> (int * field) list
(** Fields whose property is usable for windows/epochs, in schema order. *)

val with_order : t -> string -> Order_prop.t -> t
(** Functionally update one field's ordering property. *)

val rename : t -> (string * string) list -> t
(** Rename fields (old, new); unknown old names are ignored. *)

val concat : t -> t -> t
(** Schema of a join output; clashing names get a ["_2"] suffix on the
    right side. *)

val pp : Format.formatter -> t -> unit
val pp_tuple : t -> Format.formatter -> Value.t array -> unit
