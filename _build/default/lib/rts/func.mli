(** The user-defined-function registry.

    Gigascope adapts to analysts' "special fast algorithms" by letting them
    register functions (Section 2.2). A function can be {e partial} — no
    result means the tuple is discarded, giving foreign-key-join semantics —
    and parameters can be {e pass-by-handle}: literal arguments needing
    expensive preprocessing (compiling a regex, loading a prefix table) are
    converted once at query instantiation via a handle-registration
    function. *)

type cost = Cheap | Expensive
(** [Cheap] functions may run inside an LFTA; [Expensive] ones (the paper's
    example is regex matching) are forced up into the HFTA. *)

type impl = Value.t array -> Value.t option
(** Applied to all argument values (handle positions included, which the
    implementation is free to ignore); [None] from a partial function
    discards the tuple being processed. *)

type t = {
  name : string;
  arg_tys : Ty.t list;
  ret_ty : Ty.t;
  cost : cost;
  partial : bool;
  handle_args : int list;  (** indices of pass-by-handle parameters *)
  monotone : bool;
      (** does the function preserve directional ordering of its (single
          non-handle) argument? needed for ordering-property imputation *)
  injective : bool;
      (** one-to-one in its argument: applied to a strict or nonrepeating
          attribute the result is {e monotone nonrepeating} — the paper's
          hash-function example (Section 2.1, property 2) *)
  instantiate : Value.t list -> (impl, string) result;
      (** given the literal values of the handle parameters (in
          [handle_args] order), perform the expensive preprocessing and
          return the per-tuple implementation *)
}

type registry

val create_registry : unit -> registry

val register : registry -> t -> unit
(** Replaces any previous registration of the same name (names are
    case-insensitive). *)

val find : registry -> string -> t option
val names : registry -> string list

val pure : name:string -> arg_tys:Ty.t list -> ret_ty:Ty.t -> ?cost:cost -> ?partial:bool ->
  ?monotone:bool -> ?injective:bool -> impl -> t
(** A function with no handle parameters. *)
