(** The MD-join: aggregation over predicate-defined groups.

    Section 5 of the paper: "we are exploring how to integrate the complex
    group definition mechanisms described in [the MD-join paper] into
    GSQL". This operator is that mechanism, streamed: groups are not the
    distinct values of key expressions but the rows of a small {e base
    relation} [B]; a stream tuple [s] contributes to {e every} base row
    [b] with [theta b s]. Groups may therefore overlap (a packet counts in
    both "well-known ports" and "web ports") and empty groups still report
    (a zero row per quiet bucket every epoch) — both impossible with plain
    GROUP BY.

    Epochs work as in {!Aggregate}: when the stream's ordered attribute
    passes the open epoch (minus the band), every base row's aggregates are
    emitted — in base-relation order — and reset. Without an epoch field
    the operator reports only on [Flush]/EOF.

    It plugs into the stream manager as a user-written query node (the
    paper's bypass API): build the operator, register it with
    {!Manager.add_query_node}. *)

type config = {
  base : Value.t array array;  (** the group-defining relation, in output order *)
  theta : Value.t array -> Value.t array -> bool;  (** [theta base_row stream_tuple] *)
  aggs : Agg_fn.spec array;  (** argument expressions read the stream tuple *)
  epoch_field : int;  (** stream-tuple index of the ordered attribute; [-1] = none *)
  direction : Order_prop.direction;
  band : float;
  assemble : base:Value.t array -> epoch:Value.t -> aggs:Value.t array -> Value.t array;
      (** build one output row per base row per epoch *)
}

type t

val make : config -> t
(** Raises [Invalid_argument] on an empty base relation. *)

val op : t -> Operator.t

val epochs_emitted : t -> int
