module Regex = Gigascope_regex.Regex
module Lpm_table = Gigascope_lpm.Table
module Ipaddr = Gigascope_packet.Ipaddr

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* -- handle preparation --------------------------------------------------- *)

let load_lpm_table = function
  | Value.Str source -> (
      (* A handle value names a file; inline table text also works so
         queries are self-contained in tests. *)
      let from_file =
        if Sys.file_exists source then
          match Lpm_table.load_file source with Ok t -> Some t | Error _ -> None
        else None
      in
      match from_file with
      | Some t -> Ok t
      | None -> (
          match Lpm_table.load_string source with
          | Ok t -> Ok t
          | Error msg -> err "getlpmid: cannot load prefix table: %s" msg))
  | v -> err "getlpmid: handle parameter must be a string, got %s" (Value.to_string v)

let compile_regex = function
  | Value.Str pattern -> (
      match Regex.compile_opt pattern with
      | Some r -> Ok r
      | None -> err "str_match_regex: bad pattern %S" pattern)
  | v -> err "str_match_regex: handle parameter must be a string, got %s" (Value.to_string v)

(* -- the functions -------------------------------------------------------- *)

let getlpmid =
  {
    Func.name = "getlpmid";
    arg_tys = [Ty.Ip; Ty.Str];
    ret_ty = Ty.Int;
    cost = Func.Cheap;
    partial = true;
    handle_args = [1];
    monotone = false;
    injective = false;
    instantiate =
      (fun handles ->
        match handles with
        | [table_src] ->
            Result.map
              (fun table args ->
                match args.(0) with
                | Value.Ip ip | Value.Int ip ->
                    Option.map (fun id -> Value.Int id) (Lpm_table.lookup table ip)
                | _ -> None)
              (load_lpm_table table_src)
        | _ -> Error "getlpmid: expected one handle parameter");
  }

let getlpmid_default =
  (* Total variant: unmatched addresses map to a caller-chosen id instead of
     discarding the tuple. *)
  {
    Func.name = "getlpmid_default";
    arg_tys = [Ty.Ip; Ty.Str; Ty.Int];
    ret_ty = Ty.Int;
    cost = Func.Cheap;
    partial = false;
    handle_args = [1];
    monotone = false;
    injective = false;
    instantiate =
      (fun handles ->
        match handles with
        | [table_src] ->
            Result.map
              (fun table args ->
                match (args.(0), args.(2)) with
                | (Value.Ip ip | Value.Int ip), Value.Int dflt ->
                    Some
                      (match Lpm_table.lookup table ip with
                      | Some id -> Value.Int id
                      | None -> Value.Int dflt)
                | _ -> None)
              (load_lpm_table table_src)
        | _ -> Error "getlpmid_default: expected one handle parameter");
  }

let str_match_regex =
  {
    Func.name = "str_match_regex";
    arg_tys = [Ty.Str; Ty.Str];
    ret_ty = Ty.Bool;
    cost = Func.Expensive;
    partial = false;
    handle_args = [1];
    monotone = false;
    injective = false;
    instantiate =
      (fun handles ->
        match handles with
        | [pattern] ->
            Result.map
              (fun regex args ->
                match args.(0) with
                | Value.Str s -> Some (Value.Bool (Regex.matches regex s))
                | _ -> None)
              (compile_regex pattern)
        | _ -> Error "str_match_regex: expected one handle parameter");
  }

let str_contains =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    if nn = 0 then true
    else
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
  in
  Func.pure ~name:"str_contains" ~arg_tys:[Ty.Str; Ty.Str] ~ret_ty:Ty.Bool ~cost:Func.Expensive
    (fun args ->
      match (args.(0), args.(1)) with
      | Value.Str hay, Value.Str needle -> Some (Value.Bool (contains hay needle))
      | _ -> None)

let prefix_match =
  {
    Func.name = "prefix_match";
    arg_tys = [Ty.Ip; Ty.Str];
    ret_ty = Ty.Bool;
    cost = Func.Cheap;
    partial = false;
    handle_args = [1];
    monotone = false;
    injective = false;
    instantiate =
      (fun handles ->
        match handles with
        | [Value.Str prefix_s] -> (
            match try Some (Ipaddr.parse_prefix prefix_s) with Invalid_argument _ -> None with
            | Some (prefix, len) ->
                Ok
                  (fun args ->
                    match args.(0) with
                    | Value.Ip ip | Value.Int ip ->
                        Some (Value.Bool (Ipaddr.in_prefix ip ~prefix ~len))
                    | _ -> None)
            | None -> err "prefix_match: bad prefix %S" prefix_s)
        | _ -> Error "prefix_match: expected a string handle parameter");
  }

let truncate_ip =
  (* truncate_ip(ip, len): zero the host bits — cheap subnet bucketing that
     is safe inside an LFTA group-by. *)
  Func.pure ~name:"truncate_ip" ~arg_tys:[Ty.Ip; Ty.Int] ~ret_ty:Ty.Ip (fun args ->
      match (args.(0), args.(1)) with
      | (Value.Ip ip | Value.Int ip), Value.Int len when len >= 0 && len <= 32 ->
          Some (Value.Ip (ip land Ipaddr.prefix_mask len))
      | _ -> None)

let ufloor =
  (* floor to integer; monotone, so a group key like ufloor(end_time/10)
     keeps the timestamp's ordering property and still closes epochs *)
  Func.pure ~name:"ufloor" ~arg_tys:[Ty.Float] ~ret_ty:Ty.Int ~monotone:true (fun args ->
      match Value.to_float args.(0) with
      | Some f -> Some (Value.Int (int_of_float (Float.floor f)))
      | None -> None)

let uceil =
  Func.pure ~name:"uceil" ~arg_tys:[Ty.Float] ~ret_ty:Ty.Int ~monotone:true (fun args ->
      match Value.to_float args.(0) with
      | Some f -> Some (Value.Int (int_of_float (Float.ceil f)))
      | None -> None)

let str_len =
  Func.pure ~name:"str_len" ~arg_tys:[Ty.Str] ~ret_ty:Ty.Int (fun args ->
      match args.(0) with Value.Str s -> Some (Value.Int (String.length s)) | _ -> None)

let abs_fn =
  Func.pure ~name:"abs" ~arg_tys:[Ty.Int] ~ret_ty:Ty.Int (fun args ->
      match args.(0) with
      | Value.Int i -> Some (Value.Int (abs i))
      | Value.Float f -> Some (Value.Float (Float.abs f))
      | _ -> None)

let umin =
  Func.pure ~name:"umin" ~arg_tys:[Ty.Int; Ty.Int] ~ret_ty:Ty.Int ~monotone:false (fun args ->
      match (args.(0), args.(1)) with
      | Value.Int a, Value.Int b -> Some (Value.Int (min a b))
      | _ -> None)

let umax =
  Func.pure ~name:"umax" ~arg_tys:[Ty.Int; Ty.Int] ~ret_ty:Ty.Int ~monotone:false (fun args ->
      match (args.(0), args.(1)) with
      | Value.Int a, Value.Int b -> Some (Value.Int (max a b))
      | _ -> None)

let fdiv =
  (* Float division regardless of operand representation; the splitter uses
     it to recombine a split avg (sum_partial / count_partial). *)
  Func.pure ~name:"fdiv" ~arg_tys:[Ty.Float; Ty.Float] ~ret_ty:Ty.Float (fun args ->
      match (Value.to_float args.(0), Value.to_float args.(1)) with
      | Some a, Some b when b <> 0.0 -> Some (Value.Float (a /. b))
      | Some _, Some _ -> Some Value.Null
      | _ -> None)

let hash32 =
  (* a mixing hash; flagged injective in the paper's idiom — applied to a
     strict sequence number the output is monotone nonrepeating *)
  Func.pure ~name:"hash32" ~arg_tys:[Ty.Int] ~ret_ty:Ty.Int ~injective:true (fun args ->
      match args.(0) with
      | Value.Int i | Value.Ip i ->
          let h = i * 0x9E3779B1 land 0xffffffff in
          Some (Value.Int ((h lxor (h lsr 15)) land 0xffffffff))
      | _ -> None)

let register_all reg =
  List.iter (Func.register reg)
    [
      fdiv;
      getlpmid;
      getlpmid_default;
      str_match_regex;
      str_contains;
      prefix_match;
      truncate_ip;
      ufloor;
      uceil;
      str_len;
      abs_fn;
      umin;
      umax;
      hash32;
    ]
