type cost = Cheap | Expensive

type impl = Value.t array -> Value.t option

type t = {
  name : string;
  arg_tys : Ty.t list;
  ret_ty : Ty.t;
  cost : cost;
  partial : bool;
  handle_args : int list;
  monotone : bool;
  injective : bool;
  instantiate : Value.t list -> (impl, string) result;
}

type registry = (string, t) Hashtbl.t

let create_registry () = Hashtbl.create 16

let key = String.lowercase_ascii

let register reg f = Hashtbl.replace reg (key f.name) f

let find reg name = Hashtbl.find_opt reg (key name)

let names reg = Hashtbl.fold (fun _ f acc -> f.name :: acc) reg [] |> List.sort compare

let pure ~name ~arg_tys ~ret_ty ?(cost = Cheap) ?(partial = false) ?(monotone = false)
    ?(injective = false) impl =
  {
    name;
    arg_tys;
    ret_ty;
    cost;
    partial;
    handle_args = [];
    monotone;
    injective;
    instantiate = (fun _ -> Ok impl);
  }
