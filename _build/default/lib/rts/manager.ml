type t = {
  registry : (string, Node.t) Hashtbl.t;
  mutable order : Node.t list;  (* reverse registration order *)
  funcs : Func.registry;
  default_capacity : int;
  mutable started : bool;
}

let create ?(default_capacity = 4096) () =
  let funcs = Func.create_registry () in
  Builtin_funcs.register_all funcs;
  { registry = Hashtbl.create 32; order = []; funcs; default_capacity; started = false }

let functions t = t.funcs

let key = String.lowercase_ascii

let register t node =
  let k = key (Node.name node) in
  if Hashtbl.mem t.registry k then
    Error (Printf.sprintf "stream manager: query name %s already registered" (Node.name node))
  else begin
    Hashtbl.replace t.registry k node;
    t.order <- node :: t.order;
    Ok node
  end

let find t name = Hashtbl.find_opt t.registry (key name)
let nodes t = List.rev t.order

let add_source t ~name ~schema source =
  if t.started then
    Error "stream manager: sources are bound into the RTS; stop and restart to change them"
  else register t (Node.make_source ~name ~schema source)

let add_query_node t ~name ~kind ~schema ~inputs ~op =
  let check_batch () =
    match kind with
    | Node.Lfta when t.started ->
        Error
          "stream manager: LFTAs are linked into the RTS and must be submitted in a batch; \
           restart to change them"
    | Node.Source -> Error "stream manager: use add_source for sources"
    | Node.Lfta | Node.Hfta -> Ok ()
  in
  let resolve_inputs () =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | input_name :: rest -> (
          match find t input_name with
          | Some up -> go (up :: acc) rest
          | None -> Error (Printf.sprintf "stream manager: unknown stream %s" input_name))
    in
    go [] inputs
  in
  let check_lfta_inputs ups =
    match kind with
    | Node.Lfta ->
        if List.for_all (fun up -> Node.kind up = Node.Source) ups then Ok ()
        else Error "stream manager: LFTAs accept only Protocol (source) input"
    | Node.Hfta | Node.Source -> Ok ()
  in
  match check_batch () with
  | Error _ as e -> e
  | Ok () -> (
      match resolve_inputs () with
      | Error _ as e -> e
      | Ok ups -> (
          match check_lfta_inputs ups with
          | Error _ as e -> e
          | Ok () -> (
              let node = Node.make_op ~name ~kind ~schema ~op in
              match register t node with
              | Error _ as e -> e
              | Ok node ->
                  List.iter
                    (fun up ->
                      Node.connect ~downstream:node ~upstream:up ~capacity:t.default_capacity)
                    ups;
                  Ok node)))

let subscribe t ?capacity name =
  match find t name with
  | None -> Error (Printf.sprintf "stream manager: unknown stream %s" name)
  | Some node ->
      let capacity = Option.value capacity ~default:t.default_capacity in
      let chan = Channel.create ~capacity ~name:(Printf.sprintf "%s->app" name) () in
      Node.add_subscriber node (Node.Chan chan);
      Ok chan

let on_item t name f =
  match find t name with
  | None -> Error (Printf.sprintf "stream manager: unknown stream %s" name)
  | Some node ->
      Node.add_subscriber node (Node.Callback f);
      Ok ()

let start t = t.started <- true
let started t = t.started
let restart t = t.started <- false

let flush t name =
  match find t name with
  | None -> Error (Printf.sprintf "stream manager: unknown stream %s" name)
  | Some node ->
      (* Flushing "the query" means the whole chain: sub-aggregating LFTAs
         hold the open groups, so flush upstream first and drain each hop
         before flushing the next. *)
      let rec flush_chain node =
        Array.iter
          (fun (up, _) -> if Node.kind up <> Node.Source then flush_chain up)
          (Node.inputs node);
        ignore (Node.step_inputs node ~quantum:1_000_000);
        Node.inject_flush node
      in
      flush_chain node;
      Ok ()

let total_drops t = List.fold_left (fun acc n -> acc + Node.input_drops n) 0 (nodes t)

let stats_report t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %-8s %10s %10s %8s %9s\n" "node" "kind" "tuples-in" "tuples-out"
       "drops" "buffered");
  List.iter
    (fun node ->
      let kind =
        match Node.kind node with
        | Node.Source -> "source"
        | Node.Lfta -> "lfta"
        | Node.Hfta -> "hfta"
      in
      Buffer.add_string buf
        (Printf.sprintf "%-24s %-8s %10d %10d %8d %9d\n" (Node.name node) kind
           (Node.tuples_in node) (Node.tuples_out node) (Node.input_drops node)
           (Node.buffered node)))
    (nodes t);
  Buffer.contents buf
