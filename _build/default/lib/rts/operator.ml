type emit = Item.t -> unit

type t = {
  on_item : input:int -> Item.t -> emit:emit -> unit;
  blocked_input : unit -> int option;
  buffered : unit -> int;
}

let stateless f ~n_inputs =
  let eofs = Array.make n_inputs false in
  let done_ = ref false in
  let on_item ~input item ~emit =
    match item with
    | Item.Tuple values -> f values ~emit
    | Item.Punct _ | Item.Flush -> emit item
    | Item.Eof ->
        eofs.(input) <- true;
        if Array.for_all Fun.id eofs && not !done_ then begin
          done_ := true;
          emit Item.Eof
        end
  in
  { on_item; blocked_input = (fun () -> None); buffered = (fun () -> 0) }
