(* Hash table keyed by tuple-key value arrays, shared by both aggregation
   operators. *)
include Hashtbl.Make (struct
  type t = Value.t array

  let equal = Value.equal_array
  let hash = Value.hash_array
end)
