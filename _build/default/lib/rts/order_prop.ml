type direction = Asc | Desc

type t =
  | Unordered
  | Strict of direction
  | Monotone of direction
  | Nonrepeating
  | Banded of direction * float
  | In_group of string list * direction

let usable_for_window = function
  | Strict _ | Monotone _ | Banded _ -> true
  | Unordered | Nonrepeating | In_group _ -> false

let usable_for_epoch = usable_for_window

let band_of = function
  | Strict _ | Monotone _ -> Some 0.0
  | Banded (_, b) -> Some b
  | Unordered | Nonrepeating | In_group _ -> None

let direction_of = function
  | Strict d | Monotone d | Banded (d, _) | In_group (_, d) -> Some d
  | Unordered | Nonrepeating -> None

let weaken a b =
  match (a, b) with
  | Unordered, _ | _, Unordered -> Unordered
  | Strict d1, Strict d2 when d1 = d2 -> Strict d1
  | (Strict d1 | Monotone d1), (Strict d2 | Monotone d2) when d1 = d2 -> Monotone d1
  | ( (Strict d1 | Monotone d1 | Banded (d1, _)),
      (Strict d2 | Monotone d2 | Banded (d2, _)) )
    when d1 = d2 ->
      let band p = match band_of p with Some x -> x | None -> 0.0 in
      Banded (d1, Float.max (band a) (band b))
  | Nonrepeating, Nonrepeating -> Nonrepeating
  | (Strict _ | Nonrepeating), (Strict _ | Nonrepeating) -> Nonrepeating
  | In_group (g1, d1), In_group (g2, d2) when g1 = g2 && d1 = d2 -> In_group (g1, d1)
  | _ -> Unordered

let imputed_through_arithmetic t ~monotone_fn =
  if not monotone_fn then Unordered
  else
    match t with
    | Strict d | Monotone d -> Monotone d
    | Banded (d, b) -> Banded (d, b)
    | In_group (g, d) -> In_group (g, d)
    | Nonrepeating | Unordered -> Unordered

let dir_string = function Asc -> "increasing" | Desc -> "decreasing"

let to_string = function
  | Unordered -> "unordered"
  | Strict d -> "strictly " ^ dir_string d
  | Monotone d -> dir_string d
  | Nonrepeating -> "monotone nonrepeating"
  | Banded (d, b) -> Printf.sprintf "banded %s(%g)" (dir_string d) b
  | In_group (fields, d) ->
      Printf.sprintf "%s in group (%s)" (dir_string d) (String.concat ", " fields)

let pp fmt t = Format.pp_print_string fmt (to_string t)
