(** The standard function library shipped with the engine.

    Mirrors the functions the paper's examples rely on:
    - [getlpmid(ip, 'table-file')] — longest-prefix match against a prefix
      table loaded once through the pass-by-handle mechanism; {e partial}:
      an address matching no prefix discards the tuple (a foreign-key
      join), unless the three-argument default form is used.
    - [str_match_regex(s, 'pattern')] — payload regex search, compiled once
      per query; {e expensive}, so the splitter keeps it in the HFTA.
    - small cheap helpers usable inside LFTAs. *)

val register_all : Func.registry -> unit
(** Registers: [fdiv], [getlpmid], [getlpmid_default], [str_match_regex],
    [str_contains], [prefix_match], [truncate_ip], [ufloor], [uceil],
    [str_len], [abs], [umin], [umax]. [ufloor]/[uceil] are monotone, so
    time bucketing over float timestamps keeps epoch eligibility. The prefix-table handle argument of the [getlpmid]
    family accepts either a file path or inline table text (handy in
    tests); [prefix_match(ip, 'a.b.c.d/len')] tests one literal prefix. *)
