module Ring = Gigascope_util.Ring

type t = { name : string; ring : Item.t Ring.t; mutable tuples_in : int }

let create ?(capacity = 4096) ~name () = { name; ring = Ring.create ~capacity; tuples_in = 0 }

let name t = t.name

let push t item =
  match item with
  | Item.Eof ->
      Ring.push_force t.ring Item.Eof;
      true
  | Item.Tuple _ ->
      let ok = Ring.push t.ring item in
      if ok then t.tuples_in <- t.tuples_in + 1;
      ok
  | Item.Punct _ | Item.Flush -> Ring.push t.ring item

let pop t = Ring.pop t.ring
let peek t = Ring.peek t.ring
let length t = Ring.length t.ring
let is_empty t = Ring.is_empty t.ring
let tuples_in t = t.tuples_in
let drops t = Ring.drops t.ring
let high_water t = Ring.high_water t.ring
