type kind = Source | Lfta | Hfta

type source = {
  pull : unit -> Item.t option;
  clock : unit -> (int * Value.t) list;
}

type subscriber = Chan of Channel.t | Callback of (Item.t -> unit)

type behavior = Src of source | Op of Operator.t

type t = {
  name : string;
  kind : kind;
  schema : Schema.t;
  behavior : behavior;
  mutable node_inputs : (t * Channel.t) array;
  mutable subscribers : subscriber list;
  mutable tuples_in : int;
  mutable tuples_out : int;
  mutable source_done : bool;
  mutable eof_emitted : bool;
}

let make name kind schema behavior =
  {
    name;
    kind;
    schema;
    behavior;
    node_inputs = [||];
    subscribers = [];
    tuples_in = 0;
    tuples_out = 0;
    source_done = false;
    eof_emitted = false;
  }

let make_source ~name ~schema source = make name Source schema (Src source)
let make_op ~name ~kind ~schema ~op = make name kind schema (Op op)

let name t = t.name
let kind t = t.kind
let schema t = t.schema

let connect ~downstream ~upstream ~capacity =
  let chan =
    Channel.create ~capacity ~name:(Printf.sprintf "%s->%s" upstream.name downstream.name) ()
  in
  downstream.node_inputs <- Array.append downstream.node_inputs [| (upstream, chan) |];
  upstream.subscribers <- upstream.subscribers @ [Chan chan]

let add_subscriber t sub = t.subscribers <- t.subscribers @ [sub]

let inputs t = t.node_inputs

let emit t item =
  (match item with
  | Item.Tuple _ -> t.tuples_out <- t.tuples_out + 1
  | Item.Eof -> t.eof_emitted <- true
  | Item.Punct _ | Item.Flush -> ());
  List.iter
    (fun sub ->
      match sub with
      | Chan chan -> ignore (Channel.push chan item)
      | Callback f -> f item)
    t.subscribers

let step_source t ~quantum =
  match t.behavior with
  | Op _ -> false
  | Src src ->
      if t.source_done then false
      else begin
        let produced = ref 0 in
        let continue = ref true in
        while !continue && !produced < quantum do
          match src.pull () with
          | Some item ->
              incr produced;
              emit t item
          | None ->
              t.source_done <- true;
              continue := false;
              emit t Item.Eof
        done;
        !produced > 0
      end

let step_inputs t ~quantum =
  match t.behavior with
  | Src _ -> false
  | Op op ->
      let progress = ref false in
      Array.iteri
        (fun i (_, chan) ->
          let consumed = ref 0 in
          let continue = ref true in
          while !continue && !consumed < quantum do
            match Channel.pop chan with
            | Some item ->
                incr consumed;
                progress := true;
                if Item.is_tuple item then t.tuples_in <- t.tuples_in + 1;
                op.Operator.on_item ~input:i item ~emit:(emit t)
            | None -> continue := false
          done)
        t.node_inputs;
      !progress

let exhausted t =
  match t.behavior with Src _ -> t.source_done | Op _ -> t.eof_emitted

let blocked_input t =
  match t.behavior with Src _ -> None | Op op -> op.Operator.blocked_input ()

let heartbeat t =
  match t.behavior with
  | Op _ -> ()
  | Src src ->
      if not t.source_done then begin
        let bounds = src.clock () in
        if bounds <> [] then emit t (Item.Punct bounds)
      end

let inject_flush t =
  match t.behavior with
  | Src _ -> ()
  | Op op -> op.Operator.on_item ~input:0 Item.Flush ~emit:(emit t)

let tuples_in t = t.tuples_in
let tuples_out t = t.tuples_out

let buffered t =
  match t.behavior with Src _ -> 0 | Op op -> op.Operator.buffered ()

let input_drops t =
  Array.fold_left (fun acc (_, chan) -> acc + Channel.drops chan) 0 t.node_inputs
