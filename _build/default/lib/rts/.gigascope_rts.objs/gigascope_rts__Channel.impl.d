lib/rts/channel.ml: Gigascope_util Item
