lib/rts/order_prop.mli: Format
