lib/rts/sample_op.ml: Gigascope_util Item Operator
