lib/rts/item.ml: Array Format List Value
