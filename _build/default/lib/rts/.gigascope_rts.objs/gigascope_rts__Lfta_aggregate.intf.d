lib/rts/lfta_aggregate.mli: Agg_fn Operator Order_prop Value
