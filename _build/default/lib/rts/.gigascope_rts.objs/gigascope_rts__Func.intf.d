lib/rts/func.mli: Ty Value
