lib/rts/node.ml: Array Channel Item List Operator Printf Schema Value
