lib/rts/value.ml: Array Bool Float Format Gigascope_packet Hashtbl Int String
