lib/rts/agg_fn.ml: Value
