lib/rts/agg_fn.mli: Value
