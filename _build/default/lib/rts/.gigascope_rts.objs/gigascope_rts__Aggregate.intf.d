lib/rts/aggregate.mli: Agg_fn Operator Order_prop Value
