lib/rts/scheduler.mli: Manager Node
