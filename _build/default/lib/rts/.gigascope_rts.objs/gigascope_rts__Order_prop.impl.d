lib/rts/order_prop.ml: Float Format Printf String
