lib/rts/item.mli: Format Value
