lib/rts/md_join_op.mli: Agg_fn Operator Order_prop Value
