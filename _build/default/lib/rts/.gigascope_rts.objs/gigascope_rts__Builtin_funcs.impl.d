lib/rts/builtin_funcs.ml: Array Float Func Gigascope_lpm Gigascope_packet Gigascope_regex List Option Printf Result String Sys Ty Value
