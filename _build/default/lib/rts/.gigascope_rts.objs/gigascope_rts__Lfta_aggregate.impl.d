lib/rts/lfta_aggregate.ml: Agg_fn Array Item Operator Order_prop Value
