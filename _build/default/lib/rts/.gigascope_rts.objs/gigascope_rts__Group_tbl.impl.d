lib/rts/group_tbl.ml: Hashtbl Value
