lib/rts/value.mli: Format
