lib/rts/join_op.ml: Array Float Fun Gigascope_util Item List Operator Option Queue Value
