lib/rts/merge_op.mli: Operator Order_prop
