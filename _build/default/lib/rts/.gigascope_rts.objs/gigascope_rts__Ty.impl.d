lib/rts/ty.ml: Format Value
