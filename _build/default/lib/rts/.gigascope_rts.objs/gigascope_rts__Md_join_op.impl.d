lib/rts/md_join_op.ml: Agg_fn Array Item List Operator Order_prop Value
