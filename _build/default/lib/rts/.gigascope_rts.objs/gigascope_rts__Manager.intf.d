lib/rts/manager.mli: Channel Func Item Node Operator Schema
