lib/rts/join_op.mli: Operator Value
