lib/rts/merge_op.ml: Array Item List Operator Order_prop Queue Value
