lib/rts/operator.mli: Item Value
