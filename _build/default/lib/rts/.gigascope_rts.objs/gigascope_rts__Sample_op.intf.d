lib/rts/sample_op.mli: Operator
