lib/rts/select_op.mli: Operator Value
