lib/rts/builtin_funcs.mli: Func
