lib/rts/schema.ml: Array Format Hashtbl List Order_prop Printf String Ty Value
