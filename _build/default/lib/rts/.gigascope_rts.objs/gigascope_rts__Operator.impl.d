lib/rts/operator.ml: Array Fun Item
