lib/rts/aggregate.ml: Agg_fn Array Float Group_tbl Item List Operator Order_prop Value
