lib/rts/schema.mli: Format Order_prop Ty Value
