lib/rts/manager.ml: Array Buffer Builtin_funcs Channel Func Hashtbl List Node Option Printf String
