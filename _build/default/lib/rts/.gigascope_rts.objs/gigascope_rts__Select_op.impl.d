lib/rts/select_op.ml: Item List Operator Option
