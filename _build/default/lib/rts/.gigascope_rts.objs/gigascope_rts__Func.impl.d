lib/rts/func.ml: Hashtbl List String Ty Value
