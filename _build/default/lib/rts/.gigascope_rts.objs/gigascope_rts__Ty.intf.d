lib/rts/ty.mli: Format Value
