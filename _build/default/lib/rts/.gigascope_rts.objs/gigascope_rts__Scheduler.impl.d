lib/rts/scheduler.ml: Array Channel List Manager Node Printf
