lib/rts/channel.mli: Item
