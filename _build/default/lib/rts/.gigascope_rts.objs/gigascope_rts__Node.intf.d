lib/rts/node.mli: Channel Item Operator Schema Value
