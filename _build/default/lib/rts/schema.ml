type field = { name : string; ty : Ty.t; order : Order_prop.t }

type t = { fields : field array; index : (string, int) Hashtbl.t }

let key name = String.lowercase_ascii name

let make field_list =
  let fields = Array.of_list field_list in
  let index = Hashtbl.create (Array.length fields) in
  Array.iteri
    (fun i f ->
      let k = key f.name in
      if Hashtbl.mem index k then
        invalid_arg (Printf.sprintf "Schema.make: duplicate field %s" f.name);
      Hashtbl.replace index k i)
    fields;
  { fields; index }

let fields t = t.fields
let arity t = Array.length t.fields
let field_index t name = Hashtbl.find_opt t.index (key name)
let field_at t i = t.fields.(i)

let ordered_fields t =
  let out = ref [] in
  Array.iteri
    (fun i f -> if Order_prop.usable_for_epoch f.order then out := (i, f) :: !out)
    t.fields;
  List.rev !out

let with_order t name order =
  match field_index t name with
  | None -> t
  | Some i ->
      let fields = Array.copy t.fields in
      fields.(i) <- { fields.(i) with order };
      make (Array.to_list fields)

let rename t pairs =
  let renamed =
    Array.map
      (fun f ->
        match List.assoc_opt f.name pairs with
        | Some fresh -> { f with name = fresh }
        | None -> f)
      t.fields
  in
  make (Array.to_list renamed)

let concat a b =
  let taken = Hashtbl.copy a.index in
  let right =
    Array.map
      (fun f ->
        let name = if Hashtbl.mem taken (key f.name) then f.name ^ "_2" else f.name in
        Hashtbl.replace taken (key name) 0;
        { f with name })
      b.fields
  in
  make (Array.to_list a.fields @ Array.to_list right)

let pp fmt t =
  Format.fprintf fmt "(";
  Array.iteri
    (fun i f ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s:%a" f.name Ty.pp f.ty;
      match f.order with
      | Order_prop.Unordered -> ()
      | order -> Format.fprintf fmt " [%a]" Order_prop.pp order)
    t.fields;
  Format.fprintf fmt ")"

let pp_tuple t fmt values =
  Format.fprintf fmt "{";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf fmt ", ";
      let name = if i < Array.length t.fields then t.fields.(i).name else "?" in
      Format.fprintf fmt "%s=%a" name Value.pp v)
    values;
  Format.fprintf fmt "}"
