(** Ordering properties of stream attributes (Section 2.1 of the paper).

    Timestamps and sequence numbers in network streams generally increase
    (or decrease) with a tuple's ordinal position; Gigascope declares these
    as {e ordered attributes} and uses their properties — inherent in the
    source or imputed through operators — to turn blocking operators into
    bounded-state stream operators. *)

type direction = Asc | Desc

type t =
  | Unordered
  | Strict of direction  (** strictly increasing / decreasing *)
  | Monotone of direction  (** non-strictly increasing / decreasing *)
  | Nonrepeating
      (** monotone nonrepeating — e.g. after hashing a strict attribute;
          never takes the same value twice but in no useful order *)
  | Banded of direction * float
      (** within [band] of the running extremum; e.g. Netflow start times
          are banded-increasing(30 s) because flows dump every 30 s *)
  | In_group of string list * direction
      (** increasing within each group defined by the named fields, e.g.
          Netflow start time within a 5-tuple *)

val usable_for_window : t -> bool
(** Whether a join window / merge can be keyed on the attribute: any
    directional property (strict, monotone, banded) qualifies. *)

val usable_for_epoch : t -> bool
(** Whether group-by on the attribute closes groups (aggregation epochs):
    directional properties qualify; [Nonrepeating] and [In_group] do not
    (a new value says nothing about other groups). *)

val band_of : t -> float option
(** The slack on the high-water mark: 0 for strict/monotone, the band for
    banded, [None] for unusable properties. *)

val direction_of : t -> direction option

val weaken : t -> t -> t
(** Least upper bound: the strongest property implied by both — used when
    merging streams whose attributes have different declared properties. *)

val imputed_through_arithmetic : t -> monotone_fn:bool -> t
(** Property of [f(a)] for a monotone nondecreasing [f] (e.g. [time/60]):
    strictness is lost, direction and bandedness survive; a
    non-monotone [f] yields [Unordered]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
