type stats = { rounds : int; heartbeat_requests : int }

let rec walk_upstream visited node =
  if not (List.memq node !visited) then begin
    visited := node :: !visited;
    if Node.kind node = Node.Source then Node.heartbeat node
    else Array.iter (fun (up, _) -> walk_upstream visited up) (Node.inputs node)
  end

let request_heartbeat node =
  let visited = ref [] in
  walk_upstream visited node

let channels_empty node =
  Array.for_all (fun (_, chan) -> Channel.is_empty chan) (Node.inputs node)

let run ?(quantum = 64) ?(max_rounds = 10_000_000) ?(heartbeats = true) ?heartbeat_period
    ?on_round mgr =
  Manager.start mgr;
  let nodes = Manager.nodes mgr in
  let rounds = ref 0 in
  let heartbeat_requests = ref 0 in
  let finished () =
    List.for_all (fun n -> Node.exhausted n && channels_empty n) nodes
  in
  let result = ref None in
  while !result = None do
    if finished () then result := Some (Ok { rounds = !rounds; heartbeat_requests = !heartbeat_requests })
    else if !rounds >= max_rounds then
      result := Some (Error (Printf.sprintf "scheduler: no completion after %d rounds" max_rounds))
    else begin
      incr rounds;
      let progress = ref false in
      List.iter
        (fun node ->
          if Node.kind node = Node.Source then begin
            if Node.step_source node ~quantum then progress := true
          end
          else if Node.step_inputs node ~quantum then progress := true)
        nodes;
      let hb_fired = ref false in
      (match heartbeat_period with
      | Some period when period > 0 && !rounds mod period = 0 ->
          List.iter
            (fun node ->
              if Node.kind node = Node.Source && not (Node.exhausted node) then begin
                Node.heartbeat node;
                hb_fired := true
              end)
            nodes
      | _ -> ());
      if heartbeats then
        List.iter
          (fun node ->
            match Node.blocked_input node with
            | Some i ->
                incr heartbeat_requests;
                hb_fired := true;
                let up, _ = (Node.inputs node).(i) in
                request_heartbeat up
            | None -> ())
          nodes;
      (match on_round with Some f -> f !rounds | None -> ());
      (* A heartbeat pushes punctuation into channels, so it counts as
         progress for the next round. No item moved and nothing fired
         means either completion (checked next iteration) or a wedged
         network, which we surface rather than spin on. *)
      if (not !progress) && (not !hb_fired) && not (finished ()) then
        result := Some (Error "scheduler: wedged (no progress, not finished)")
    end
  done;
  match !result with Some r -> r | None -> assert false
