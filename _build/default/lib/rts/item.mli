(** Items flowing through stream channels.

    Besides data tuples, channels carry {e punctuations} — the
    ordering-update tokens of Tucker & Maier that Gigascope injects to
    unblock merge and join when an input is slow — and an end-of-stream
    marker. *)

type t =
  | Tuple of Value.t array
  | Punct of (int * Value.t) list
      (** lower bounds: no future tuple's field [i] will be below (for
          ascending attributes) the paired value *)
  | Flush  (** operator hint: flush open state now (user-requested) *)
  | Eof

val is_tuple : t -> bool

val punct_bound : t -> int -> Value.t option
(** The bound a punctuation carries for field [i], if any. *)

val pp : Format.formatter -> t -> unit
