(** The time-sliced capture-host simulation.

    Each slice accounts the NIC datapath, per-packet receive interrupts
    (which preempt everything — the livelock mechanism), the kernel-to-user
    copy, per-configuration packet processing, and, for the dump
    configuration, a disk with finite bandwidth, a finite write buffer, and
    periodic flush stalls that freeze processing. Packets queue in an RX
    ring and an application backlog; overflow anywhere is a dropped packet,
    the metric of Section 4. *)

(** The four alternatives of the experiment. *)
type config =
  | Disk_dump  (** (1) dump to disk for post-facto analysis *)
  | Pcap_discard  (** (2) libpcap read-and-discard — best-case host capture *)
  | Host_lfta  (** (3) Gigascope, LFTAs on the host (reading from libpcap) *)
  | Nic_lfta  (** (4) Gigascope, LFTAs on the Tigon NIC *)

val config_name : config -> string

type result = {
  offered : int;  (** packets the link carried *)
  delivered : int;  (** packets that completed processing *)
  dropped : int;
  loss : float;
  livelock_slices : int;  (** slices in which interrupts consumed all CPU *)
  stall_slices : int;  (** slices frozen by a disk flush *)
}

val simulate :
  Params.host -> Params.workload -> config -> Calibrate.costs -> duration:float -> result
