(** Measured per-packet costs of the real code paths.

    The simulator's query-evaluation costs are not guesses: they are
    measured by running this repository's actual packet decoder, compiled
    LFTA predicate, and regex engine over generated traffic, then scaled by
    [cpu_scale] to a 2003-class host (DESIGN.md, substitution table). *)

type costs = {
  c_interpret : float;  (** wire bytes -> decoded packet -> protocol tuple, s/packet *)
  c_lfta : float;  (** compiled LFTA predicate + direct-mapped table step, s/packet *)
  c_hfta : float;  (** HTTP regex over one payload, s/packet *)
  c_bpf : float;  (** the filter program on raw bytes, s/packet *)
}

val measure : ?packets:int -> ?seed:int -> unit -> costs
(** Run the real code over [packets] (default 2000) generated packets and
    time each stage. *)

val scale : costs -> float -> costs
(** Multiply every cost by a CPU-slowdown factor. *)

val default_cpu_scale : float
(** 1.0: an interpreter-style OCaml path on a modern core and the paper's
    generated C on a 733 MHz CPU land in the same per-packet cost range,
    so measured costs are used as-is; DESIGN.md discusses the
    substitution. *)
