(** Parameters of the capture-host model.

    The Section 4 experiment compared four ways of watching a gigabit
    link on a 733 MHz host with a Tigon NIC. Its outcome is governed by a
    handful of per-packet costs — interrupt service, kernel/user copy,
    query evaluation, disk writes — and by two pathologies the paper calls
    out: {e interrupt livelock} (receive interrupts starve all other work
    past a threshold rate) and {e disk stalls} ("touching disk kills
    performance not because it is slow but because it generates long and
    unpredictable delays throughout the system").

    Costs of query evaluation are {e measured} from this repository's real
    compiled code ({!Calibrate}); fixed platform costs below are set to a
    2003-class host and documented in DESIGN.md. *)

type host = {
  t_interrupt : float;  (** CPU seconds per delivered-packet interrupt *)
  t_copy_fixed : float;  (** per-packet kernel->user copy overhead *)
  t_copy_per_byte : float;
  ring_capacity : int;  (** RX ring, packets *)
  backlog_capacity : int;  (** kernel/app queue, packets *)
  disk_rate : float;  (** sustained striped-disk bandwidth, bytes/s *)
  disk_buffer : int;  (** write buffer, bytes *)
  disk_stall_interval : float;  (** seconds between flush stalls *)
  disk_stall_duration : float;  (** seconds the CPU is held per stall *)
  nic_per_packet_dumb : float;  (** NIC datapath cost, plain forwarding *)
  nic_per_packet_filter : float;  (** with the bpf filter engaged *)
  nic_per_packet_lfta : float;  (** running LFTA code on the card *)
  slice : float;  (** simulation time slice, seconds *)
}

val default_host : host

(** The workload of the experiment: a fixed port-80 component plus
    variable background traffic. *)
type workload = {
  port80_mbps : float;  (** 60 Mbit/s in the paper *)
  background_mbps : float;  (** the swept variable *)
  mean_pkt_bytes : int;
  http_fraction : float;  (** of port-80 packets *)
  filter_pass : float;  (** fraction of all packets passing the LFTA filter *)
  snap_len : int;  (** bytes delivered per qualifying packet under NIC modes *)
  bursty : bool;
  seed : int;
}

val default_workload : background_mbps:float -> workload

val offered_mbps : workload -> float
val offered_pps : workload -> float
