(** The Section 4 experiment driver (E1 in EXPERIMENTS.md).

    Sweep the offered load (60 Mbit/s of port-80 traffic plus growing
    background) across the four configurations; report per-rate loss and
    the maximum rate each configuration sustains under the paper's 2 %
    loss threshold. The paper's measured maxima (≈180, ≈480, ≈480,
    ≥610 Mbit/s) are printed alongside for shape comparison. *)

type row = {
  rate_mbps : float;
  loss : (Host_model.config * float) list;  (** per configuration *)
}

type summary = {
  rows : row list;
  max_rate : (Host_model.config * float) list;
      (** highest swept rate with loss ≤ threshold *)
  costs : Calibrate.costs;  (** the measured per-packet costs used *)
}

val run :
  ?host:Params.host ->
  ?rates:float list ->
  ?duration:float ->
  ?threshold:float ->
  ?cpu_scale:float ->
  unit ->
  summary
(** Defaults: rates 100..700 by 50 (total Mbit/s), 20 simulated seconds per
    point, 2 % threshold. *)

val paper_reference : (Host_model.config * float) list
(** What the paper measured on its hardware. *)

val print_summary : summary -> unit
(** The table the benchmark harness prints. *)
