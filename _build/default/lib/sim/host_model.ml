module Prng = Gigascope_util.Prng

type config = Disk_dump | Pcap_discard | Host_lfta | Nic_lfta

let config_name = function
  | Disk_dump -> "dump-to-disk"
  | Pcap_discard -> "libpcap-discard"
  | Host_lfta -> "lfta-on-host"
  | Nic_lfta -> "lfta-on-nic"

type result = {
  offered : int;
  delivered : int;
  dropped : int;
  loss : float;
  livelock_slices : int;
  stall_slices : int;
}

type burst = { mutable factor : float; mutable until : float }

let update_burst rng b ~now ~bursty =
  if bursty && now >= b.until then begin
    let on = Prng.bool rng in
    b.factor <- (if on then 1.7 else 0.3);
    b.until <- now +. Prng.pareto rng ~alpha:1.5 ~xmin:0.01
  end

let simulate (h : Params.host) (w : Params.workload) config (c : Calibrate.costs) ~duration =
  let rng = Prng.create w.Params.seed in
  let pps = Params.offered_pps w in
  let pass =
    (* fraction of offered packets the LFTA filter keeps (port-80) *)
    if w.Params.filter_pass > 0.0 then w.Params.filter_pass
    else w.Params.port80_mbps /. Params.offered_mbps w
  in
  let full_bytes = float_of_int w.Params.mean_pkt_bytes in
  let snap_bytes = Float.min full_bytes (float_of_int w.Params.snap_len) in
  let copy bytes = h.Params.t_copy_fixed +. (h.Params.t_copy_per_byte *. bytes) in
  (* expected host CPU cost of one delivered packet, per configuration *)
  let per_packet_cost =
    match config with
    | Disk_dump -> copy full_bytes +. (h.Params.t_copy_per_byte *. full_bytes) (* copy + write *)
    | Pcap_discard -> copy full_bytes
    | Host_lfta ->
        (* the lightweight LFTA evaluates its predicate over raw bytes
           (the bpf-equivalent cost); only qualifying packets pay field
           interpretation, the aggregation step and the HFTA regex *)
        copy full_bytes +. c.Calibrate.c_bpf
        +. (pass *. (c.Calibrate.c_interpret +. c.Calibrate.c_lfta +. c.Calibrate.c_hfta))
    | Nic_lfta ->
        (* only qualifying, snapped packets reach the host *)
        copy snap_bytes +. c.Calibrate.c_interpret +. c.Calibrate.c_hfta
  in
  let nic_cost =
    match config with
    | Disk_dump | Pcap_discard | Host_lfta -> h.Params.nic_per_packet_dumb
    | Nic_lfta -> h.Params.nic_per_packet_lfta
  in
  let deliver_fraction = match config with Nic_lfta -> pass | _ -> 1.0 in
  let slice = h.Params.slice in
  let n_slices = int_of_float (duration /. slice) in
  let burst = { factor = 1.0; until = 0.0 } in
  let offered = ref 0 and delivered = ref 0 and dropped = ref 0 in
  let ring = ref 0.0 and backlog = ref 0.0 in
  let disk_queue = ref 0.0 in
  let livelock_slices = ref 0 and stall_slices = ref 0 in
  let frac_carry = ref 0.0 in
  for i = 0 to n_slices - 1 do
    let now = float_of_int i *. slice in
    update_burst rng burst ~now ~bursty:w.Params.bursty;
    (* arrivals on the wire this slice *)
    let expected = pps *. (if w.Params.bursty then burst.factor else 1.0) *. slice in
    let exact = expected +. !frac_carry in
    let arrivals = int_of_float exact in
    frac_carry := exact -. float_of_int arrivals;
    offered := !offered + arrivals;
    (* NIC datapath: beyond its per-slice packet budget the card itself
       drops (matters only for expensive NIC modes at extreme rates) *)
    let nic_capacity = int_of_float (slice /. nic_cost) in
    let nic_kept = min arrivals nic_capacity in
    let nic_dropped = arrivals - nic_kept in
    (* filtering on the card: rejected packets never raise an interrupt *)
    let to_host = int_of_float (Float.round (float_of_int nic_kept *. deliver_fraction)) in
    let filtered_out = nic_kept - to_host in
    ignore filtered_out;
    (* RX ring *)
    ring := !ring +. float_of_int to_host;
    let ring_overflow = Float.max 0.0 (!ring -. float_of_int h.Params.ring_capacity) in
    ring := !ring -. ring_overflow;
    (* interrupt service pulls packets out of the ring at 1/t_int *)
    let int_budget = slice /. h.Params.t_interrupt in
    let pulled = Float.min !ring int_budget in
    ring := !ring -. pulled;
    let cpu_left = slice -. (pulled *. h.Params.t_interrupt) in
    if cpu_left <= slice *. 0.01 && pulled > 0.0 then incr livelock_slices;
    (* disk stall freezes processing (interrupts keep firing) *)
    let stalled =
      config = Disk_dump
      && Float.rem now h.Params.disk_stall_interval < h.Params.disk_stall_duration
      && now > h.Params.disk_stall_interval
    in
    if stalled then incr stall_slices;
    backlog := !backlog +. pulled;
    let processing_budget = if stalled then 0.0 else cpu_left in
    let can_process = processing_budget /. per_packet_cost in
    (* the dump configuration also blocks when the write buffer is full *)
    let disk_limited =
      if config = Disk_dump then begin
        let drain = if stalled then 0.0 else h.Params.disk_rate *. slice in
        disk_queue := Float.max 0.0 (!disk_queue -. drain);
        let room = Float.max 0.0 (float_of_int h.Params.disk_buffer -. !disk_queue) in
        room /. full_bytes
      end
      else infinity
    in
    let processed = Float.min !backlog (Float.min can_process disk_limited) in
    backlog := !backlog -. processed;
    if config = Disk_dump then disk_queue := !disk_queue +. (processed *. full_bytes);
    let backlog_overflow = Float.max 0.0 (!backlog -. float_of_int h.Params.backlog_capacity) in
    backlog := !backlog -. backlog_overflow;
    delivered := !delivered + int_of_float processed;
    dropped := !dropped + nic_dropped + int_of_float (ring_overflow +. backlog_overflow)
  done;
  let offered_n = max 1 !offered in
  {
    offered = !offered;
    delivered = !delivered;
    dropped = !dropped;
    loss = float_of_int !dropped /. float_of_int offered_n;
    livelock_slices = !livelock_slices;
    stall_slices = !stall_slices;
  }
