module Traffic = Gigascope_traffic
module P = Gigascope_packet
module Packet = P.Packet
module Regex = Gigascope_regex.Regex
module Bpf = Gigascope_bpf
module Value = Gigascope_rts.Value

type costs = { c_interpret : float; c_lfta : float; c_hfta : float; c_bpf : float }

let default_cpu_scale = 1.0

let time_per_iter f n =
  (* warm up, then measure CPU time *)
  f ();
  let t0 = Sys.time () in
  for _ = 1 to n do
    f ()
  done;
  (Sys.time () -. t0) /. float_of_int n

let measure ?(packets = 2000) ?(seed = 99) () =
  let cfg =
    {
      Traffic.Gen.default with
      Traffic.Gen.seed;
      duration = 1.0e9;
      rate_mbps = 100.0;
      port80_fraction = 0.3;
    }
  in
  let gen = Traffic.Gen.create cfg in
  let pkts =
    Array.init packets (fun _ ->
        match Traffic.Gen.next gen with Some p -> p | None -> assert false)
  in
  let wires = Array.map Packet.encode pkts in
  let proto = Option.get (Gigascope.Default_protocols.find "tcp") in
  let tuples =
    Array.map
      (fun p ->
        match proto.Gigascope.Default_protocols.interpret p with
        | Some t -> t
        | None -> [||])
      pkts
  in
  let payloads = Array.map (fun p -> Bytes.to_string (Packet.payload p)) pkts in
  let n = Array.length pkts in
  let cursor = ref 0 in
  let next_idx () =
    let i = !cursor in
    cursor := (i + 1) mod n;
    i
  in
  (* stage 1: decode + interpret *)
  let c_interpret =
    time_per_iter
      (fun () ->
        let i = next_idx () in
        match Packet.decode ~ts:0.0 wires.(i) with
        | Ok p -> ignore (proto.Gigascope.Default_protocols.interpret p)
        | Error _ -> ())
      n
  in
  (* stage 2: the LFTA predicate (ipversion=4 and protocol=6 and destport=80)
     over an interpreted tuple, plus a table-hash step *)
  let pred tuple =
    Array.length tuple > 12
    && Value.equal tuple.(2) (Value.Int 4)
    && Value.equal tuple.(8) (Value.Int 6)
    && Value.equal tuple.(12) (Value.Int 80)
  in
  let sink = ref 0 in
  let c_lfta =
    time_per_iter
      (fun () ->
        let i = next_idx () in
        if pred tuples.(i) then sink := !sink + 1;
        sink := !sink + (Value.hash_array tuples.(i) land 0xfff))
      n
  in
  (* stage 3: the HTTP regex over a payload *)
  let rx = Regex.compile "^[^\\n]*HTTP/1.*" in
  let c_hfta =
    time_per_iter
      (fun () ->
        let i = next_idx () in
        if Regex.matches rx payloads.(i) then incr sink)
      n
  in
  (* stage 4: the bpf filter over raw bytes *)
  let filter =
    Bpf.Filter.(And (Cmp (Ip_protocol, Eq, 6), Cmp (Dst_port, Eq, 80)))
  in
  let prog = Bpf.Filter.compile filter in
  let c_bpf =
    time_per_iter
      (fun () ->
        let i = next_idx () in
        if Bpf.Vm.run prog wires.(i) > 0 then incr sink)
      n
  in
  ignore !sink;
  { c_interpret; c_lfta; c_hfta; c_bpf }

let scale c k =
  {
    c_interpret = c.c_interpret *. k;
    c_lfta = c.c_lfta *. k;
    c_hfta = c.c_hfta *. k;
    c_bpf = c.c_bpf *. k;
  }
