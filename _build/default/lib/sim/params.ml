type host = {
  t_interrupt : float;
  t_copy_fixed : float;
  t_copy_per_byte : float;
  ring_capacity : int;
  backlog_capacity : int;
  disk_rate : float;
  disk_buffer : int;
  disk_stall_interval : float;
  disk_stall_duration : float;
  nic_per_packet_dumb : float;
  nic_per_packet_filter : float;
  nic_per_packet_lfta : float;
  slice : float;
}

(* A 733 MHz host of 2003: interrupt service ~8 us, copies ~1 us + 4 ns/B
   (~250 MB/s memcpy), fast striped disks ~25 MB/s sustained with a 150 ms
   flush stall every 2 s, a Tigon-class NIC that forwards minimum-size
   packets at line rate and pays a premium to filter or run LFTAs. *)
let default_host =
  {
    t_interrupt = 8.0e-6;
    t_copy_fixed = 1.0e-6;
    t_copy_per_byte = 4.0e-9;
    ring_capacity = 256;
    backlog_capacity = 4096;
    disk_rate = 25.0e6;
    disk_buffer = 8 * 1024 * 1024;
    disk_stall_interval = 2.0;
    disk_stall_duration = 0.15;
    nic_per_packet_dumb = 0.4e-6;
    nic_per_packet_filter = 0.7e-6;
    nic_per_packet_lfta = 1.0e-6;
    slice = 1.0e-3;
  }

type workload = {
  port80_mbps : float;
  background_mbps : float;
  mean_pkt_bytes : int;
  http_fraction : float;
  filter_pass : float;
  snap_len : int;
  bursty : bool;
  seed : int;
}

let default_workload ~background_mbps =
  {
    port80_mbps = 60.0;
    background_mbps;
    mean_pkt_bytes = 750;
    http_fraction = 0.5;
    filter_pass = 0.0 (* derived below *);
    snap_len = 65535 (* the HFTA regex needs payloads *);
    bursty = false (* the paper offered controlled rates from a router *);
    seed = 0x1ee7;
  }

let offered_mbps w = w.port80_mbps +. w.background_mbps

let offered_pps w = offered_mbps w *. 1.0e6 /. 8.0 /. float_of_int w.mean_pkt_bytes
