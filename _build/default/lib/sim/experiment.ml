type row = { rate_mbps : float; loss : (Host_model.config * float) list }

type summary = {
  rows : row list;
  max_rate : (Host_model.config * float) list;
  costs : Calibrate.costs;
}

let configs =
  [Host_model.Disk_dump; Host_model.Pcap_discard; Host_model.Host_lfta; Host_model.Nic_lfta]

let paper_reference =
  [
    (Host_model.Disk_dump, 180.0);
    (Host_model.Pcap_discard, 480.0);
    (Host_model.Host_lfta, 480.0);
    (Host_model.Nic_lfta, 610.0);
  ]

(* the paper's router could offer at most 610 Mbit/s; sweep to the same
   ceiling so "no loss at the top rate" reads as the paper's ">= 610" *)
let default_rates =
  [100.; 150.; 180.; 200.; 250.; 300.; 350.; 400.; 440.; 480.; 520.; 560.; 590.; 610.]

let run ?(host = Params.default_host) ?(rates = default_rates) ?(duration = 20.0)
    ?(threshold = 0.02) ?cpu_scale () =
  let cpu_scale = Option.value cpu_scale ~default:Calibrate.default_cpu_scale in
  let costs = Calibrate.scale (Calibrate.measure ()) cpu_scale in
  let rows =
    List.map
      (fun rate ->
        let w = Params.default_workload ~background_mbps:(Float.max 0.0 (rate -. 60.0)) in
        let loss =
          List.map
            (fun config -> (config, (Host_model.simulate host w config costs ~duration).Host_model.loss))
            configs
        in
        { rate_mbps = rate; loss })
      rates
  in
  let max_rate =
    List.map
      (fun config ->
        let best =
          List.fold_left
            (fun acc r ->
              match List.assoc_opt config r.loss with
              | Some l when l <= threshold -> Float.max acc r.rate_mbps
              | _ -> acc)
            0.0 rows
        in
        (config, best))
      configs
  in
  { rows; max_rate; costs }

let print_summary s =
  Printf.printf "E1: HTTP-fraction query, four capture configurations (Section 4)\n";
  Printf.printf
    "measured code costs (scaled): interpret=%.2fus lfta=%.2fus regex=%.2fus bpf=%.2fus\n\n"
    (s.costs.Calibrate.c_interpret *. 1e6)
    (s.costs.Calibrate.c_lfta *. 1e6)
    (s.costs.Calibrate.c_hfta *. 1e6)
    (s.costs.Calibrate.c_bpf *. 1e6);
  Printf.printf "%-12s" "Mbit/s";
  List.iter (fun c -> Printf.printf "%18s" (Host_model.config_name c)) configs;
  print_newline ();
  List.iter
    (fun r ->
      Printf.printf "%-12.0f" r.rate_mbps;
      List.iter
        (fun c ->
          match List.assoc_opt c r.loss with
          | Some l -> Printf.printf "%17.2f%%" (l *. 100.0)
          | None -> Printf.printf "%18s" "-")
        configs;
      print_newline ())
    s.rows;
  Printf.printf "\n%-22s %18s %14s\n" "configuration" "max @ <=2% (Mb/s)" "paper (Mbit/s)";
  List.iter
    (fun c ->
      Printf.printf "%-22s %18.0f %14.0f\n" (Host_model.config_name c)
        (Option.value (List.assoc_opt c s.max_rate) ~default:0.0)
        (Option.value (List.assoc_opt c paper_reference) ~default:0.0))
    configs
