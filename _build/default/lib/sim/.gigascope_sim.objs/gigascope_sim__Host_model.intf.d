lib/sim/host_model.mli: Calibrate Params
