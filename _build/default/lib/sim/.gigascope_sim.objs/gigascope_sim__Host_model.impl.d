lib/sim/host_model.ml: Calibrate Float Gigascope_util Params
