lib/sim/experiment.ml: Calibrate Float Host_model List Option Params Printf
