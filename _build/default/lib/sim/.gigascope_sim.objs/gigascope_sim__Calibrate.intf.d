lib/sim/calibrate.mli:
