lib/sim/params.mli:
