lib/sim/experiment.mli: Calibrate Host_model Params
