lib/sim/calibrate.ml: Array Bytes Gigascope Gigascope_bpf Gigascope_packet Gigascope_regex Gigascope_rts Gigascope_traffic Option Sys
