lib/sim/params.ml:
