(** TCP session extraction.

    "Many network analysis queries find and aggregate subsequences of the
    data stream (i.e., extract the TCP/IP sessions)" — the paper's most
    concrete future-work item (Section 5). This module is that substrate: a
    stateful tracker that folds packets into per-connection session records
    and emits each record when the session closes (FINs from both sides, an
    RST, or an idle timeout). Exposed to GSQL as a custom source via
    {!Engine.add_custom_source} or the convenience {!source} below.

    Emission order follows detection time, so the record's [end_time] is
    monotone nondecreasing — exactly the ordered attribute GSQL aggregation
    wants — while [start_time] is banded by the idle timeout. *)

module Rts = Gigascope_rts
module Packet = Gigascope_packet.Packet

type session = {
  src : Gigascope_packet.Ipaddr.t;  (** initiator (first packet's source) *)
  dst : Gigascope_packet.Ipaddr.t;
  src_port : int;
  dst_port : int;
  start_ts : float;
  end_ts : float;
  packets : int;  (** both directions *)
  bytes : int;  (** payload bytes, both directions *)
  flags_seen : int;  (** OR of all TCP flag bytes observed *)
  clean_close : bool;  (** FIN handshake rather than RST/timeout *)
}

type t

val create : ?idle_timeout:float -> ?max_sessions:int -> unit -> t
(** [idle_timeout] (default 60 s) closes silent connections;
    [max_sessions] (default 65536) bounds tracker memory (oldest-idle
    eviction). *)

val push : t -> Packet.t -> session list
(** Feed one captured packet; non-TCP packets are ignored. Returns the
    sessions this packet closed (its timestamp also drives timeout
    expiry). *)

val flush : t -> session list
(** Close and return every open session (end of run). *)

val open_sessions : t -> int

(** {1 GSQL integration} *)

val schema : Rts.Schema.t
(** srcip, destip, srcport, destport, start_time, end_time (increasing),
    packets, bytes, flags, clean_close. *)

val tuple : session -> Rts.Value.t array

val source :
  ?idle_timeout:float ->
  (unit -> Packet.t option) ->
  (unit -> Rts.Item.t option) * (unit -> (int * Rts.Value.t) list)
(** [source feed] adapts a packet feed into a session-record source
    (pull, clock) pair for {!Engine.add_custom_source}: sessions stream
    out as their closes are detected, and the clock publishes the packet
    timestamp minus the idle timeout (the bound below which no session can
    still end). *)
