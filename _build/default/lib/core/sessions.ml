module Rts = Gigascope_rts
module P = Gigascope_packet
module Packet = P.Packet
module Value = Rts.Value
module Ty = Rts.Ty
module Schema = Rts.Schema
module Order_prop = Rts.Order_prop

type session = {
  src : P.Ipaddr.t;
  dst : P.Ipaddr.t;
  src_port : int;
  dst_port : int;
  start_ts : float;
  end_ts : float;
  packets : int;
  bytes : int;
  flags_seen : int;
  clean_close : bool;
}

(* connections are keyed direction-insensitively *)
type key = { a_ip : int; a_port : int; b_ip : int; b_port : int }

let key_of ~src ~dst ~sport ~dport =
  if (src, sport) <= (dst, dport) then { a_ip = src; a_port = sport; b_ip = dst; b_port = dport }
  else { a_ip = dst; a_port = dport; b_ip = src; b_port = sport }

type conn = {
  key : key;
  (* initiator view, fixed by the first packet *)
  c_src : int;
  c_dst : int;
  c_sport : int;
  c_dport : int;
  c_start : float;
  mutable c_last : float;
  mutable c_packets : int;
  mutable c_bytes : int;
  mutable c_flags : int;
  mutable fin_fwd : bool;  (** FIN seen from the initiator *)
  mutable fin_rev : bool;
  mutable rst : bool;
}

type t = {
  table : (key, conn) Hashtbl.t;
  idle_timeout : float;
  max_sessions : int;
}

let create ?(idle_timeout = 60.0) ?(max_sessions = 65536) () =
  { table = Hashtbl.create 256; idle_timeout; max_sessions }

let open_sessions t = Hashtbl.length t.table

let to_session ~clean (c : conn) =
  {
    src = c.c_src;
    dst = c.c_dst;
    src_port = c.c_sport;
    dst_port = c.c_dport;
    start_ts = c.c_start;
    end_ts = c.c_last;
    packets = c.c_packets;
    bytes = c.c_bytes;
    flags_seen = c.c_flags;
    clean_close = clean;
  }

let expire t ~now =
  let closed = ref [] in
  Hashtbl.iter
    (fun _ c -> if now -. c.c_last > t.idle_timeout then closed := c :: !closed)
    t.table;
  List.map
    (fun c ->
      Hashtbl.remove t.table c.key;
      to_session ~clean:false c)
    !closed

let evict_oldest t =
  let oldest = ref None in
  Hashtbl.iter
    (fun _ c ->
      match !oldest with
      | Some o when o.c_last <= c.c_last -> ()
      | _ -> oldest := Some c)
    t.table;
  match !oldest with
  | Some c ->
      Hashtbl.remove t.table c.key;
      [to_session ~clean:false c]
  | None -> []

let push t pkt =
  match (Packet.ip_header pkt, Packet.tcp_header pkt) with
  | Some ip, Some tcp ->
      let now = pkt.Packet.ts in
      let expired = expire t ~now in
      let src = ip.P.Ipv4.src and dst = ip.P.Ipv4.dst in
      let sport = tcp.P.Tcp.src_port and dport = tcp.P.Tcp.dst_port in
      let key = key_of ~src ~dst ~sport ~dport in
      let evicted =
        if (not (Hashtbl.mem t.table key)) && Hashtbl.length t.table >= t.max_sessions then
          evict_oldest t
        else []
      in
      let conn =
        match Hashtbl.find_opt t.table key with
        | Some c -> c
        | None ->
            let c =
              {
                key;
                c_src = src;
                c_dst = dst;
                c_sport = sport;
                c_dport = dport;
                c_start = now;
                c_last = now;
                c_packets = 0;
                c_bytes = 0;
                c_flags = 0;
                fin_fwd = false;
                fin_rev = false;
                rst = false;
              }
            in
            Hashtbl.replace t.table key c;
            c
      in
      conn.c_last <- now;
      conn.c_packets <- conn.c_packets + 1;
      conn.c_bytes <- conn.c_bytes + Bytes.length (Packet.payload pkt);
      conn.c_flags <- conn.c_flags lor P.Tcp.flags_to_int tcp.P.Tcp.flags;
      let from_initiator = src = conn.c_src && sport = conn.c_sport in
      if tcp.P.Tcp.flags.P.Tcp.fin then
        if from_initiator then conn.fin_fwd <- true else conn.fin_rev <- true;
      if tcp.P.Tcp.flags.P.Tcp.rst then conn.rst <- true;
      let this_closed =
        if conn.rst || (conn.fin_fwd && conn.fin_rev) then begin
          Hashtbl.remove t.table key;
          [to_session ~clean:(not conn.rst) conn]
        end
        else []
      in
      expired @ evicted @ this_closed
  | _ -> []

let flush t =
  let all = Hashtbl.fold (fun _ c acc -> c :: acc) t.table [] in
  Hashtbl.reset t.table;
  List.map (to_session ~clean:false) (List.sort (fun a b -> Float.compare a.c_last b.c_last) all)

let schema =
  Schema.make
    [
      { Schema.name = "srcip"; ty = Ty.Ip; order = Order_prop.Unordered };
      { Schema.name = "destip"; ty = Ty.Ip; order = Order_prop.Unordered };
      { Schema.name = "srcport"; ty = Ty.Int; order = Order_prop.Unordered };
      { Schema.name = "destport"; ty = Ty.Int; order = Order_prop.Unordered };
      { Schema.name = "start_time"; ty = Ty.Float; order = Order_prop.Unordered };
      { Schema.name = "end_time"; ty = Ty.Float; order = Order_prop.Monotone Order_prop.Asc };
      { Schema.name = "packets"; ty = Ty.Int; order = Order_prop.Unordered };
      { Schema.name = "bytes"; ty = Ty.Int; order = Order_prop.Unordered };
      { Schema.name = "flags"; ty = Ty.Int; order = Order_prop.Unordered };
      { Schema.name = "clean_close"; ty = Ty.Bool; order = Order_prop.Unordered };
    ]

let tuple s =
  [|
    Value.Ip s.src;
    Value.Ip s.dst;
    Value.Int s.src_port;
    Value.Int s.dst_port;
    Value.Float s.start_ts;
    Value.Float s.end_ts;
    Value.Int s.packets;
    Value.Int s.bytes;
    Value.Int s.flags_seen;
    Value.Bool s.clean_close;
  |]

let source ?idle_timeout feed =
  let tracker = create ?idle_timeout () in
  let pending = Queue.create () in
  let feed_done = ref false in
  let last_ts = ref nan in
  let rec pull () =
    match Queue.take_opt pending with
    | Some s -> Some (Rts.Item.Tuple (tuple s))
    | None ->
        if !feed_done then None
        else begin
          match feed () with
          | None ->
              feed_done := true;
              List.iter (fun s -> Queue.push s pending) (flush tracker);
              pull ()
          | Some pkt ->
              last_ts := pkt.Packet.ts;
              List.iter (fun s -> Queue.push s pending) (push tracker pkt);
              pull ()
        end
  in
  let clock () =
    if Float.is_nan !last_ts then []
    else
      (* no still-open session can end before now - idle_timeout *)
      let bound = !last_ts -. tracker.idle_timeout in
      [(5, Value.Float bound)]
  in
  (pull, clock)
