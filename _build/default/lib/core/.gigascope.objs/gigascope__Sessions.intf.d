lib/core/sessions.mli: Gigascope_packet Gigascope_rts
