lib/core/sessions.ml: Bytes Float Gigascope_packet Gigascope_rts Hashtbl List Queue
