lib/core/default_protocols.mli: Gigascope_gsql Gigascope_packet Gigascope_rts
