lib/core/default_protocols.ml: Bytes Gigascope_bpf Gigascope_gsql Gigascope_packet Gigascope_rts List String
