lib/core/engine.ml: Bytes Default_protocols Float Gigascope_bpf Gigascope_gsql Gigascope_nic Gigascope_packet Gigascope_rts Gigascope_traffic Hashtbl List Option Printf Result Sessions String
