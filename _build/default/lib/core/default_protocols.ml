module Rts = Gigascope_rts
module Gsql = Gigascope_gsql
module Bpf = Gigascope_bpf
module P = Gigascope_packet
module Packet = P.Packet
module Netflow = P.Netflow
module Value = Rts.Value
module Ty = Rts.Ty
module Schema = Rts.Schema
module Order_prop = Rts.Order_prop

type t = {
  proto_name : string;
  catalog_entry : Gsql.Catalog.protocol;
  interpret : Packet.t -> Value.t array option;
  clock_fields : (int * (float -> Value.t)) list;
}

let mono = Order_prop.Monotone Order_prop.Asc
let un = Order_prop.Unordered

let fld name ty order = { Schema.name; ty; order }

(* Transport-level views shared by the interpreters. *)
type l4_view = {
  v_src_port : int;
  v_dst_port : int;
  v_flags : int;
  v_seq : int;
  v_ack : int;
  v_window : int;
  v_payload : bytes;
}

let l4_of pkt =
  match pkt.Packet.net with
  | Packet.Non_ip _ -> None
  | Packet.Ipv4 (_, transport) ->
      let z = { v_src_port = 0; v_dst_port = 0; v_flags = 0; v_seq = 0; v_ack = 0; v_window = 0; v_payload = Bytes.empty } in
      Some
        (match transport with
        | Packet.Tcp (h, payload) ->
            {
              v_src_port = h.P.Tcp.src_port;
              v_dst_port = h.P.Tcp.dst_port;
              v_flags = P.Tcp.flags_to_int h.P.Tcp.flags;
              v_seq = h.P.Tcp.seq;
              v_ack = h.P.Tcp.ack_seq;
              v_window = h.P.Tcp.window;
              v_payload = payload;
            }
        | Packet.Udp (h, payload) ->
            { z with v_src_port = h.P.Udp.src_port; v_dst_port = h.P.Udp.dst_port; v_payload = payload }
        | Packet.Icmp (_, payload) | Packet.Raw_transport payload -> { z with v_payload = payload })

let time_clock = [(0, fun ts -> Value.Int (int_of_float ts)); (1, fun ts -> Value.Float ts)]

let tcp =
  let schema =
    Schema.make
      [
        fld "time" Ty.Int mono;
        fld "timestamp" Ty.Float mono;
        fld "ipversion" Ty.Int un;
        fld "hdr_length" Ty.Int un;
        fld "tos" Ty.Int un;
        fld "len" Ty.Int un;
        fld "ident" Ty.Int un;
        fld "ttl" Ty.Int un;
        fld "protocol" Ty.Int un;
        fld "srcip" Ty.Ip un;
        fld "destip" Ty.Ip un;
        fld "srcport" Ty.Int un;
        fld "destport" Ty.Int un;
        fld "flags" Ty.Int un;
        fld "seq" Ty.Int un;
        fld "ack" Ty.Int un;
        fld "window" Ty.Int un;
        fld "data_length" Ty.Int un;
        fld "payload" Ty.Str un;
      ]
  in
  let bpf_fields =
    [
      ("ipversion", Bpf.Filter.Ip_version);
      ("hdr_length", Bpf.Filter.Ip_hdr_len);
      ("tos", Bpf.Filter.Ip_tos);
      ("len", Bpf.Filter.Ip_total_len);
      ("ident", Bpf.Filter.Ip_ident);
      ("ttl", Bpf.Filter.Ip_ttl);
      ("protocol", Bpf.Filter.Ip_protocol);
      ("srcip", Bpf.Filter.Ip_src);
      ("destip", Bpf.Filter.Ip_dst);
      ("srcport", Bpf.Filter.Src_port);
      ("destport", Bpf.Filter.Dst_port);
      ("flags", Bpf.Filter.Tcp_flags);
    ]
  in
  let interpret pkt =
    match (Packet.ip_header pkt, l4_of pkt) with
    | Some ip, Some l4 ->
        Some
          [|
            Value.Int (int_of_float pkt.Packet.ts);
            Value.Float pkt.Packet.ts;
            Value.Int 4;
            Value.Int (P.Ipv4.header_len ip);
            Value.Int ip.P.Ipv4.tos;
            Value.Int ip.P.Ipv4.total_len;
            Value.Int ip.P.Ipv4.ident;
            Value.Int ip.P.Ipv4.ttl;
            Value.Int ip.P.Ipv4.protocol;
            Value.Ip ip.P.Ipv4.src;
            Value.Ip ip.P.Ipv4.dst;
            Value.Int l4.v_src_port;
            Value.Int l4.v_dst_port;
            Value.Int l4.v_flags;
            Value.Int l4.v_seq;
            Value.Int l4.v_ack;
            Value.Int l4.v_window;
            Value.Int (Bytes.length l4.v_payload);
            Value.Str (Bytes.to_string l4.v_payload);
          |]
    | _ -> None
  in
  {
    proto_name = "tcp";
    catalog_entry = { Gsql.Catalog.schema; bpf_fields; payload_fields = ["payload"] };
    interpret;
    clock_fields = time_clock;
  }

let udp =
  let schema =
    Schema.make
      [
        fld "time" Ty.Int mono;
        fld "timestamp" Ty.Float mono;
        fld "ipversion" Ty.Int un;
        fld "len" Ty.Int un;
        fld "ttl" Ty.Int un;
        fld "protocol" Ty.Int un;
        fld "srcip" Ty.Ip un;
        fld "destip" Ty.Ip un;
        fld "srcport" Ty.Int un;
        fld "destport" Ty.Int un;
        fld "data_length" Ty.Int un;
        fld "payload" Ty.Str un;
      ]
  in
  let bpf_fields =
    [
      ("ipversion", Bpf.Filter.Ip_version);
      ("len", Bpf.Filter.Ip_total_len);
      ("ttl", Bpf.Filter.Ip_ttl);
      ("protocol", Bpf.Filter.Ip_protocol);
      ("srcip", Bpf.Filter.Ip_src);
      ("destip", Bpf.Filter.Ip_dst);
      ("srcport", Bpf.Filter.Src_port);
      ("destport", Bpf.Filter.Dst_port);
    ]
  in
  let interpret pkt =
    match (Packet.ip_header pkt, l4_of pkt) with
    | Some ip, Some l4 ->
        Some
          [|
            Value.Int (int_of_float pkt.Packet.ts);
            Value.Float pkt.Packet.ts;
            Value.Int 4;
            Value.Int ip.P.Ipv4.total_len;
            Value.Int ip.P.Ipv4.ttl;
            Value.Int ip.P.Ipv4.protocol;
            Value.Ip ip.P.Ipv4.src;
            Value.Ip ip.P.Ipv4.dst;
            Value.Int l4.v_src_port;
            Value.Int l4.v_dst_port;
            Value.Int (Bytes.length l4.v_payload);
            Value.Str (Bytes.to_string l4.v_payload);
          |]
    | _ -> None
  in
  {
    proto_name = "udp";
    catalog_entry = { Gsql.Catalog.schema; bpf_fields; payload_fields = ["payload"] };
    interpret;
    clock_fields = time_clock;
  }

let ip =
  let schema =
    Schema.make
      [
        fld "time" Ty.Int mono;
        fld "timestamp" Ty.Float mono;
        fld "ipversion" Ty.Int un;
        fld "hdr_length" Ty.Int un;
        fld "len" Ty.Int un;
        fld "ident" Ty.Int un;
        fld "frag_offset" Ty.Int un;
        fld "more_fragments" Ty.Int un;
        fld "ttl" Ty.Int un;
        fld "protocol" Ty.Int un;
        fld "srcip" Ty.Ip un;
        fld "destip" Ty.Ip un;
        fld "data_length" Ty.Int un;
      ]
  in
  let bpf_fields =
    [
      ("ipversion", Bpf.Filter.Ip_version);
      ("hdr_length", Bpf.Filter.Ip_hdr_len);
      ("len", Bpf.Filter.Ip_total_len);
      ("ident", Bpf.Filter.Ip_ident);
      ("frag_offset", Bpf.Filter.Ip_frag_offset);
      ("ttl", Bpf.Filter.Ip_ttl);
      ("protocol", Bpf.Filter.Ip_protocol);
      ("srcip", Bpf.Filter.Ip_src);
      ("destip", Bpf.Filter.Ip_dst);
    ]
  in
  let interpret pkt =
    match Packet.ip_header pkt with
    | Some ip_h ->
        Some
          [|
            Value.Int (int_of_float pkt.Packet.ts);
            Value.Float pkt.Packet.ts;
            Value.Int 4;
            Value.Int (P.Ipv4.header_len ip_h);
            Value.Int ip_h.P.Ipv4.total_len;
            Value.Int ip_h.P.Ipv4.ident;
            Value.Int ip_h.P.Ipv4.frag_offset;
            Value.Int (if ip_h.P.Ipv4.more_fragments then 1 else 0);
            Value.Int ip_h.P.Ipv4.ttl;
            Value.Int ip_h.P.Ipv4.protocol;
            Value.Ip ip_h.P.Ipv4.src;
            Value.Ip ip_h.P.Ipv4.dst;
            Value.Int (Bytes.length (Packet.payload pkt));
          |]
    | None -> None
  in
  {
    proto_name = "ip";
    catalog_entry = { Gsql.Catalog.schema; bpf_fields; payload_fields = [] };
    interpret;
    clock_fields = time_clock;
  }

let all = [tcp; udp; ip]

let register catalog =
  List.iter
    (fun p -> Gsql.Catalog.add_protocol catalog ~name:p.proto_name p.catalog_entry)
    all

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun p -> p.proto_name = name) all

let netflow_schema =
  Schema.make
    [
      fld "srcip" Ty.Ip un;
      fld "destip" Ty.Ip un;
      fld "srcport" Ty.Int un;
      fld "destport" Ty.Int un;
      fld "protocol" Ty.Int un;
      fld "packets" Ty.Int un;
      fld "octets" Ty.Int un;
      fld "start_time" Ty.Int (Order_prop.Banded (Order_prop.Asc, 30.0));
      fld "end_time" Ty.Int mono;
      fld "flags" Ty.Int un;
    ]

let netflow_tuple (r : Netflow.t) =
  [|
    Value.Ip r.Netflow.src;
    Value.Ip r.Netflow.dst;
    Value.Int r.Netflow.src_port;
    Value.Int r.Netflow.dst_port;
    Value.Int r.Netflow.protocol;
    Value.Int r.Netflow.packets;
    Value.Int r.Netflow.octets;
    Value.Int (int_of_float r.Netflow.start_ts);
    Value.Int (int_of_float r.Netflow.end_ts);
    Value.Int r.Netflow.tcp_flags;
  |]
