(** The built-in Protocol library.

    A Protocol maps field names to interpretation functions over captured
    packets (Section 2.2). These are the schemas the paper's examples use
    ([eth0.tcp] etc.), with ordering properties declared on the timestamp
    fields and the compiler hints (BPF lowering, payload fields) that let
    LFTAs be pushed toward the NIC.

    Note the paper's idiom: the [tcp] protocol interprets {e every} IPv4
    packet (TCP-specific fields are zero elsewhere), which is why queries
    write [WHERE ipversion = 4 and protocol = 6] explicitly. *)

module Rts = Gigascope_rts
module Gsql = Gigascope_gsql
module Packet = Gigascope_packet.Packet
module Netflow = Gigascope_packet.Netflow

type t = {
  proto_name : string;
  catalog_entry : Gsql.Catalog.protocol;
  interpret : Packet.t -> Rts.Value.t array option;
      (** [None]: the packet is outside this protocol's domain *)
  clock_fields : (int * (float -> Rts.Value.t)) list;
      (** time-derived fields and how a wall-clock reading maps into them —
          what a heartbeat punctuation publishes *)
}

val tcp : t
(** time, timestamp, ipversion, hdr_length, tos, len, ident, ttl, protocol,
    srcip, destip, srcport, destport, flags, seq, ack, window, data_length,
    payload. *)

val udp : t
val ip : t

val all : t list

val register : Gsql.Catalog.t -> unit
(** Install every built-in protocol into a catalog. *)

val find : string -> t option

(** {1 Netflow}

    Netflow sources deliver records, not packets; the schema is exposed for
    custom sources built with [Engine.add_custom_source]. *)

val netflow_schema : Rts.Schema.t
(** srcip, destip, srcport, destport, protocol, packets, octets,
    start_time (integer seconds, banded-increasing 30 s), end_time
    (integer seconds, increasing), flags. *)

val netflow_tuple : Netflow.t -> Rts.Value.t array
