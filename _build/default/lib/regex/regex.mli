(** Compiled regular expressions — the public face of the engine.

    Compiling is the expensive step (this is exactly what Gigascope's
    pass-by-handle UDF parameters exist for: the regex is compiled once at
    query instantiation); matching is linear-time. *)

type t

exception Syntax_error of string * int

val compile : string -> t
(** Raises {!Syntax_error} on malformed patterns. *)

val compile_opt : string -> t option

val pattern : t -> string
(** The source pattern. *)

val program_size : t -> int
(** Number of VM instructions; a proxy for per-byte matching cost. *)

val matches : t -> string -> bool
(** Unanchored search over the whole string ([^] and [$] anchor to its
    ends). *)

val matches_sub : t -> string -> pos:int -> len:int -> bool

val matches_bytes : t -> bytes -> bool
val matches_bytes_sub : t -> bytes -> pos:int -> len:int -> bool
