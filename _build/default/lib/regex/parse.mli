(** Regular-expression parser (recursive descent).

    Grammar, lowest precedence first:
    {v
      alt    ::= concat ('|' concat)*
      concat ::= repeat*
      repeat ::= atom ('*' | '+' | '?' | '{m}' | '{m,}' | '{m,n}')*
      atom   ::= '(' alt ')' | '[' class ']' | '.' | '^' | '$'
               | escape | literal-char
    v} *)

exception Syntax_error of string * int
(** Message and byte position of the error. *)

val parse : string -> Ast.t
(** Raises {!Syntax_error} on malformed patterns. *)
