(* Breadth-first NFA simulation (Pike VM).

   At each input offset we hold two thread sets:
   - [pending]: program counters whose thread consumed the previous byte and
     must be epsilon-expanded at the new offset;
   - [classes]: Class-instruction pcs ready to consume the byte at the
     current offset (the epsilon closure of pending plus a fresh start
     thread, giving unanchored "match anywhere" semantics).
   A generation-stamped membership array makes each pc join the closure at
   most once per offset, so the whole run is O(|input| * |program|). *)

type vm = {
  prog : Nfa.program;
  classes : int array;
  mutable classes_len : int;
  pending : int array;
  mutable pending_len : int;
  stamp : int array;
  mutable generation : int;
}

let make_vm prog =
  let n = Array.length prog in
  {
    prog;
    classes = Array.make n 0;
    classes_len = 0;
    pending = Array.make n 0;
    pending_len = 0;
    stamp = Array.make n (-1);
    generation = 0;
  }

(* Epsilon-expand [pc] at input offset [off]; Class pcs land in
   [vm.classes]. Returns true iff a Match instruction is reachable. *)
let rec add_thread vm ~start ~stop ~off pc =
  if vm.stamp.(pc) = vm.generation then false
  else begin
    vm.stamp.(pc) <- vm.generation;
    match vm.prog.(pc) with
    | Nfa.Jmp target -> add_thread vm ~start ~stop ~off target
    | Nfa.Split (a, b) ->
        let hit_a = add_thread vm ~start ~stop ~off a in
        let hit_b = add_thread vm ~start ~stop ~off b in
        hit_a || hit_b
    | Nfa.Assert_bol -> off = start && add_thread vm ~start ~stop ~off (pc + 1)
    | Nfa.Assert_eol -> off = stop && add_thread vm ~start ~stop ~off (pc + 1)
    | Nfa.Match -> true
    | Nfa.Class _ ->
        vm.classes.(vm.classes_len) <- pc;
        vm.classes_len <- vm.classes_len + 1;
        false
  end

let run get_char prog ~pos ~len =
  let vm = make_vm prog in
  let stop = pos + len in
  let matched = ref false in
  let off = ref pos in
  let continue = ref true in
  while !continue do
    vm.generation <- vm.generation + 1;
    vm.classes_len <- 0;
    for i = 0 to vm.pending_len - 1 do
      if add_thread vm ~start:pos ~stop ~off:!off vm.pending.(i) then matched := true
    done;
    (* Seed a fresh start thread at every offset: unanchored search. *)
    if add_thread vm ~start:pos ~stop ~off:!off 0 then matched := true;
    if !matched || !off >= stop then continue := false
    else begin
      let c = get_char !off in
      vm.pending_len <- 0;
      for i = 0 to vm.classes_len - 1 do
        let pc = vm.classes.(i) in
        match prog.(pc) with
        | Nfa.Class cs ->
            if Ast.charset_mem cs c then begin
              vm.pending.(vm.pending_len) <- pc + 1;
              vm.pending_len <- vm.pending_len + 1
            end
        | Nfa.Jmp _ | Nfa.Split _ | Nfa.Assert_bol | Nfa.Assert_eol | Nfa.Match -> assert false
      done;
      incr off
    end
  done;
  !matched

let search prog s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then invalid_arg "Engine.search";
  run (String.get s) prog ~pos ~len

let search_bytes prog b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then invalid_arg "Engine.search_bytes";
  run (Bytes.get b) prog ~pos ~len
