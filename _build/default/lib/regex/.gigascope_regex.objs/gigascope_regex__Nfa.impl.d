lib/regex/nfa.ml: Array Ast Format Printf
