lib/regex/ast.mli: Bytes Format
