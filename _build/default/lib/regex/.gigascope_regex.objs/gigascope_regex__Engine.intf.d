lib/regex/engine.mli: Nfa
