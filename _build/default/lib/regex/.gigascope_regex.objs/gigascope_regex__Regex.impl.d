lib/regex/regex.ml: Array Bytes Engine Nfa Parse String
