lib/regex/engine.ml: Array Ast Bytes Nfa String
