lib/regex/regex.mli:
