lib/regex/parse.mli: Ast
