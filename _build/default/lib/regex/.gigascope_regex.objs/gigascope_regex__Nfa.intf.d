lib/regex/nfa.mli: Ast Format
