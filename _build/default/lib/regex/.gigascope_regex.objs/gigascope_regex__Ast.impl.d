lib/regex/ast.ml: Bytes Char Format String
