lib/regex/parse.ml: Ast Bytes Char List Printf String
