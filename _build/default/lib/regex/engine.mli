(** The Pike virtual machine: breadth-first NFA simulation.

    Runs a compiled program over an input in O(|input| × |program|) worst
    case with no backtracking — the property that makes payload matching
    safe against adversarial packets (a regex engine in a packet monitor is
    itself attack surface). *)

val search : Nfa.program -> string -> pos:int -> len:int -> bool
(** [search prog s ~pos ~len] reports whether the program matches starting
    at {e any} offset within [s.[pos .. pos+len-1]]. [Assert_bol] only holds
    at offset [pos]; [Assert_eol] only at [pos + len]. *)

val search_bytes : Nfa.program -> bytes -> pos:int -> len:int -> bool
(** As {!search}, over [bytes] (the form packet payloads arrive in). *)
