(** Abstract syntax of the regular-expression dialect.

    The dialect covers what network analysts write in Gigascope payload
    filters (the paper's example is [^[^\n]*HTTP/1.*]): literals, [.],
    character classes with ranges and negation, escapes ([\n], [\t], [\r],
    [\d], [\w], [\s] and their complements), anchors [^]/[$], grouping,
    alternation, and the repetitions [*], [+], [?], [{m}], [{m,}],
    [{m,n}]. *)

type charset = Bytes.t
(** 256-bit membership bitmap, one bit per byte value. *)

val charset_empty : unit -> charset
val charset_add : charset -> char -> unit
val charset_add_range : charset -> char -> char -> unit
val charset_mem : charset -> char -> bool
val charset_negate : charset -> charset
val charset_union : charset -> charset -> charset

type t =
  | Empty  (** matches the empty string *)
  | Class of charset  (** one byte in the set *)
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t
  | Repeat of t * int * int option  (** {m,n}; [None] = unbounded *)
  | Bol  (** [^] — start-of-input assertion *)
  | Eol  (** [$] — end-of-input assertion *)

val literal : string -> t
(** The regex matching exactly the given string. *)

val pp : Format.formatter -> t -> unit
