exception Syntax_error of string * int

type state = { src : string; mutable pos : int }

let error st msg = raise (Syntax_error (msg, st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let class_digit () =
  let cs = Ast.charset_empty () in
  Ast.charset_add_range cs '0' '9';
  cs

let class_word () =
  let cs = class_digit () in
  Ast.charset_add_range cs 'a' 'z';
  Ast.charset_add_range cs 'A' 'Z';
  Ast.charset_add cs '_';
  cs

let class_space () =
  let cs = Ast.charset_empty () in
  List.iter (Ast.charset_add cs) [' '; '\t'; '\n'; '\r'; '\011'; '\012'];
  cs

(* Decode an escape sequence after the backslash. Returns either a single
   character or a predefined class. *)
let escape st =
  match peek st with
  | None -> error st "dangling backslash"
  | Some c ->
      advance st;
      (match c with
      | 'n' -> `Char '\n'
      | 't' -> `Char '\t'
      | 'r' -> `Char '\r'
      | '0' -> `Char '\000'
      | 'd' -> `Class (class_digit ())
      | 'D' -> `Class (Ast.charset_negate (class_digit ()))
      | 'w' -> `Class (class_word ())
      | 'W' -> `Class (Ast.charset_negate (class_word ()))
      | 's' -> `Class (class_space ())
      | 'S' -> `Class (Ast.charset_negate (class_space ()))
      | 'x' ->
          let hex () =
            match peek st with
            | Some c
              when (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') ->
                advance st;
                if c <= '9' then Char.code c - Char.code '0'
                else (Char.code (Char.lowercase_ascii c) - Char.code 'a') + 10
            | _ -> error st "bad \\x escape"
          in
          let hi = hex () in
          let lo = hex () in
          `Char (Char.chr ((hi * 16) + lo))
      | c -> `Char c (* \. \* \\ \[ etc.: the literal character *))

let parse_class st =
  (* '[' already consumed *)
  let negated =
    match peek st with
    | Some '^' ->
        advance st;
        true
    | _ -> false
  in
  let cs = Ast.charset_empty () in
  let add_single = function
    | `Char c -> Ast.charset_add cs c
    | `Class sub -> ignore (Bytes.blit (Ast.charset_union cs sub) 0 cs 0 32)
  in
  let read_item () =
    match peek st with
    | None -> error st "unterminated character class"
    | Some '\\' ->
        advance st;
        escape st
    | Some c ->
        advance st;
        `Char c
  in
  let rec items first =
    match peek st with
    | None -> error st "unterminated character class"
    | Some ']' when not first ->
        advance st;
        ()
    | Some _ -> (
        let item = read_item () in
        match (item, peek st) with
        | `Char lo, Some '-' ->
            advance st;
            (match peek st with
            | Some ']' ->
                (* trailing '-' is a literal *)
                Ast.charset_add cs lo;
                Ast.charset_add cs '-';
                advance st
            | Some _ -> (
                match read_item () with
                | `Char hi ->
                    if Char.code hi < Char.code lo then error st "reversed class range";
                    Ast.charset_add_range cs lo hi;
                    items false
                | `Class _ -> error st "class escape cannot end a range")
            | None -> error st "unterminated character class")
        | item, _ ->
            add_single item;
            items false)
  in
  items true;
  if negated then Ast.charset_negate cs else cs

let parse_int st =
  let start = st.pos in
  while (match peek st with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
    advance st
  done;
  if st.pos = start then error st "expected a number";
  int_of_string (String.sub st.src start (st.pos - start))

let any_class () =
  (* '.' matches any byte except newline, as analysts expect. *)
  let nl = Ast.charset_empty () in
  Ast.charset_add nl '\n';
  Ast.charset_negate nl

let rec parse_alt st =
  let left = parse_concat st in
  match peek st with
  | Some '|' ->
      advance st;
      Ast.Alt (left, parse_alt st)
  | _ -> left

and parse_concat st =
  let rec go acc =
    match peek st with
    | None | Some '|' | Some ')' -> acc
    | Some _ ->
        let r = parse_repeat st in
        go (match acc with Ast.Empty -> r | acc -> Ast.Seq (acc, r))
  in
  go Ast.Empty

and parse_repeat st =
  let atom = parse_atom st in
  let rec apply acc =
    match peek st with
    | Some '*' ->
        advance st;
        apply (Ast.Star acc)
    | Some '+' ->
        advance st;
        apply (Ast.Plus acc)
    | Some '?' ->
        advance st;
        apply (Ast.Opt acc)
    | Some '{' ->
        advance st;
        let m = parse_int st in
        let r =
          match peek st with
          | Some ',' -> (
              advance st;
              match peek st with
              | Some '}' -> Ast.Repeat (acc, m, None)
              | _ -> Ast.Repeat (acc, m, Some (parse_int st)))
          | _ -> Ast.Repeat (acc, m, Some m)
        in
        (match r with
        | Ast.Repeat (_, m, Some n) when n < m -> error st "reversed {m,n} bounds"
        | _ -> ());
        expect st '}';
        apply r
    | _ -> acc
  in
  apply atom

and parse_atom st =
  match peek st with
  | None -> error st "expected an atom"
  | Some '(' ->
      advance st;
      let inner = parse_alt st in
      expect st ')';
      inner
  | Some '[' ->
      advance st;
      Ast.Class (parse_class st)
  | Some '.' ->
      advance st;
      Ast.Class (any_class ())
  | Some '^' ->
      advance st;
      Ast.Bol
  | Some '$' ->
      advance st;
      Ast.Eol
  | Some '\\' -> (
      advance st;
      match escape st with
      | `Char c ->
          let cs = Ast.charset_empty () in
          Ast.charset_add cs c;
          Ast.Class cs
      | `Class cs -> Ast.Class cs)
  | Some ('*' | '+' | '?') -> error st "repetition with nothing to repeat"
  | Some c ->
      advance st;
      let cs = Ast.charset_empty () in
      Ast.charset_add cs c;
      Ast.Class cs

let parse src =
  let st = { src; pos = 0 } in
  let ast = parse_alt st in
  match peek st with
  | None -> ast
  | Some c -> error st (Printf.sprintf "unexpected '%c'" c)
