(** Compilation of regex ASTs to Thompson-style bytecode.

    The program is a flat instruction array executed by the Pike VM in
    {!Engine}; compilation is linear in the AST size (bounded repetitions
    are expanded, so [{m,n}] costs O(n) instructions). *)

type insn =
  | Class of Ast.charset  (** consume one byte in the set *)
  | Split of int * int  (** fork execution to both targets *)
  | Jmp of int
  | Assert_bol  (** succeed only at input position 0 *)
  | Assert_eol  (** succeed only at end of input *)
  | Match  (** accept *)

type program = insn array

val compile : Ast.t -> program
(** The program accepts exactly the AST's language, with a single [Match]
    at the end. *)

val pp_program : Format.formatter -> program -> unit
