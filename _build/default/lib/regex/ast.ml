type charset = Bytes.t

let charset_empty () = Bytes.make 32 '\000'

let charset_add cs c =
  let i = Char.code c in
  Bytes.set cs (i / 8) (Char.chr (Char.code (Bytes.get cs (i / 8)) lor (1 lsl (i mod 8))))

let charset_add_range cs lo hi =
  for i = Char.code lo to Char.code hi do
    charset_add cs (Char.chr i)
  done

let charset_mem cs c =
  let i = Char.code c in
  Char.code (Bytes.get cs (i / 8)) land (1 lsl (i mod 8)) <> 0

let charset_negate cs =
  let out = charset_empty () in
  for i = 0 to 31 do
    Bytes.set out i (Char.chr (lnot (Char.code (Bytes.get cs i)) land 0xff))
  done;
  out

let charset_union a b =
  let out = charset_empty () in
  for i = 0 to 31 do
    Bytes.set out i (Char.chr (Char.code (Bytes.get a i) lor Char.code (Bytes.get b i)))
  done;
  out

type t =
  | Empty
  | Class of charset
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t
  | Repeat of t * int * int option
  | Bol
  | Eol

let literal s =
  let n = String.length s in
  let rec go i =
    if i = n then Empty
    else
      let cs = charset_empty () in
      charset_add cs s.[i];
      if i = n - 1 then Class cs else Seq (Class cs, go (i + 1))
  in
  go 0

let rec pp fmt = function
  | Empty -> Format.fprintf fmt "eps"
  | Class _ -> Format.fprintf fmt "[..]"
  | Seq (a, b) -> Format.fprintf fmt "(%a %a)" pp a pp b
  | Alt (a, b) -> Format.fprintf fmt "(%a|%a)" pp a pp b
  | Star a -> Format.fprintf fmt "%a*" pp a
  | Plus a -> Format.fprintf fmt "%a+" pp a
  | Opt a -> Format.fprintf fmt "%a?" pp a
  | Repeat (a, m, None) -> Format.fprintf fmt "%a{%d,}" pp a m
  | Repeat (a, m, Some n) -> Format.fprintf fmt "%a{%d,%d}" pp a m n
  | Bol -> Format.fprintf fmt "^"
  | Eol -> Format.fprintf fmt "$"
