type insn =
  | Class of Ast.charset
  | Split of int * int
  | Jmp of int
  | Assert_bol
  | Assert_eol
  | Match

type program = insn array

(* Emit into a growable buffer; instructions reference absolute addresses,
   patched as we go. *)
type emitter = { mutable code : insn array; mutable len : int }

let emit e insn =
  if e.len = Array.length e.code then begin
    let bigger = Array.make (max 16 (2 * e.len)) Match in
    Array.blit e.code 0 bigger 0 e.len;
    e.code <- bigger
  end;
  e.code.(e.len) <- insn;
  e.len <- e.len + 1;
  e.len - 1

let patch e addr insn = e.code.(addr) <- insn

let rec gen e ast =
  match ast with
  | Ast.Empty -> ()
  | Ast.Class cs -> ignore (emit e (Class cs))
  | Ast.Bol -> ignore (emit e Assert_bol)
  | Ast.Eol -> ignore (emit e Assert_eol)
  | Ast.Seq (a, b) ->
      gen e a;
      gen e b
  | Ast.Alt (a, b) ->
      let split = emit e (Jmp 0) in
      gen e a;
      let jmp = emit e (Jmp 0) in
      let b_start = e.len in
      gen e b;
      patch e split (Split (split + 1, b_start));
      patch e jmp (Jmp e.len)
  | Ast.Star a ->
      let split = emit e (Jmp 0) in
      gen e a;
      ignore (emit e (Jmp split));
      patch e split (Split (split + 1, e.len))
  | Ast.Plus a ->
      let start = e.len in
      gen e a;
      let split = emit e (Jmp 0) in
      patch e split (Split (start, e.len))
  | Ast.Opt a ->
      let split = emit e (Jmp 0) in
      gen e a;
      patch e split (Split (split + 1, e.len))
  | Ast.Repeat (a, m, bound) -> (
      for _ = 1 to m do
        gen e a
      done;
      match bound with
      | None -> gen e (Ast.Star a)
      | Some n ->
          for _ = m + 1 to n do
            gen e (Ast.Opt a)
          done)

let compile ast =
  let e = { code = Array.make 16 Match; len = 0 } in
  gen e ast;
  ignore (emit e Match);
  Array.sub e.code 0 e.len

let pp_program fmt prog =
  Array.iteri
    (fun i insn ->
      let s =
        match insn with
        | Class _ -> "class"
        | Split (a, b) -> Printf.sprintf "split %d %d" a b
        | Jmp a -> Printf.sprintf "jmp %d" a
        | Assert_bol -> "bol"
        | Assert_eol -> "eol"
        | Match -> "match"
      in
      Format.fprintf fmt "%3d: %s@." i s)
    prog
