type t = { pattern : string; prog : Nfa.program }

exception Syntax_error of string * int

let compile pattern =
  match Parse.parse pattern with
  | ast -> { pattern; prog = Nfa.compile ast }
  | exception Parse.Syntax_error (msg, pos) -> raise (Syntax_error (msg, pos))

let compile_opt pattern = try Some (compile pattern) with Syntax_error _ -> None

let pattern t = t.pattern
let program_size t = Array.length t.prog

let matches t s = Engine.search t.prog s ~pos:0 ~len:(String.length s)
let matches_sub t s ~pos ~len = Engine.search t.prog s ~pos ~len
let matches_bytes t b = Engine.search_bytes t.prog b ~pos:0 ~len:(Bytes.length b)
let matches_bytes_sub t b ~pos ~len = Engine.search_bytes t.prog b ~pos ~len
