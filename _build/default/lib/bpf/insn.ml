type t =
  | Ld_abs_u8 of int
  | Ld_abs_u16 of int
  | Ld_abs_u32 of int
  | Ld_imm of int
  | Ld_len
  | Ld_ind_u8 of int
  | Ld_ind_u16 of int
  | Ld_ind_u32 of int
  | Ldx_imm of int
  | Ldx_ip_hlen of int
  | Alu_and of int
  | Alu_or of int
  | Alu_add of int
  | Alu_sub of int
  | Alu_lsh of int
  | Alu_rsh of int
  | Tax
  | Txa
  | Ja of int
  | Jeq of int * int * int
  | Jgt of int * int * int
  | Jge of int * int * int
  | Jset of int * int * int
  | Ret of int

type program = t array

let pp fmt = function
  | Ld_abs_u8 k -> Format.fprintf fmt "ld  A, u8[%d]" k
  | Ld_abs_u16 k -> Format.fprintf fmt "ld  A, u16[%d]" k
  | Ld_abs_u32 k -> Format.fprintf fmt "ld  A, u32[%d]" k
  | Ld_imm k -> Format.fprintf fmt "ld  A, #%d" k
  | Ld_len -> Format.fprintf fmt "ld  A, len"
  | Ld_ind_u8 k -> Format.fprintf fmt "ld  A, u8[X+%d]" k
  | Ld_ind_u16 k -> Format.fprintf fmt "ld  A, u16[X+%d]" k
  | Ld_ind_u32 k -> Format.fprintf fmt "ld  A, u32[X+%d]" k
  | Ldx_imm k -> Format.fprintf fmt "ldx X, #%d" k
  | Ldx_ip_hlen k -> Format.fprintf fmt "ldx X, 4*(u8[%d]&0xf)" k
  | Alu_and k -> Format.fprintf fmt "and A, #0x%x" k
  | Alu_or k -> Format.fprintf fmt "or  A, #0x%x" k
  | Alu_add k -> Format.fprintf fmt "add A, #%d" k
  | Alu_sub k -> Format.fprintf fmt "sub A, #%d" k
  | Alu_lsh k -> Format.fprintf fmt "lsh A, #%d" k
  | Alu_rsh k -> Format.fprintf fmt "rsh A, #%d" k
  | Tax -> Format.fprintf fmt "tax"
  | Txa -> Format.fprintf fmt "txa"
  | Ja d -> Format.fprintf fmt "ja  +%d" d
  | Jeq (k, jt, jf) -> Format.fprintf fmt "jeq #%d, +%d, +%d" k jt jf
  | Jgt (k, jt, jf) -> Format.fprintf fmt "jgt #%d, +%d, +%d" k jt jf
  | Jge (k, jt, jf) -> Format.fprintf fmt "jge #%d, +%d, +%d" k jt jf
  | Jset (k, jt, jf) -> Format.fprintf fmt "jset #0x%x, +%d, +%d" k jt jf
  | Ret k -> Format.fprintf fmt "ret #%d" k

let pp_program fmt prog =
  Array.iteri (fun i insn -> Format.fprintf fmt "%3d: %a@." i pp insn) prog

let validate prog =
  let n = Array.length prog in
  if n = 0 then Error "bpf: empty program"
  else begin
    let check_target i d =
      let target = i + 1 + d in
      if d < 0 then Error (Printf.sprintf "bpf: insn %d: backward jump" i)
      else if target >= n then Error (Printf.sprintf "bpf: insn %d: jump out of range" i)
      else Ok ()
    in
    let rec go i =
      if i = n then Ok ()
      else
        let targets =
          match prog.(i) with
          | Ja d -> [d]
          | Jeq (_, jt, jf) | Jgt (_, jt, jf) | Jge (_, jt, jf) | Jset (_, jt, jf) -> [jt; jf]
          | _ -> []
        in
        let rec all = function
          | [] -> go (i + 1)
          | d :: rest -> ( match check_target i d with Ok () -> all rest | Error _ as e -> e)
        in
        all targets
    in
    match go 0 with
    | Error _ as e -> e
    | Ok () -> (
        (* Falling off the end must be impossible: the last instruction has
           to be a Ret or an unconditional jump (which validate already
           proved lands in range, hence before the end only if n-1 has
           d >= 0 targets... a Ja as last insn always jumps past the end,
           so only Ret is allowed). *)
        match prog.(n - 1) with
        | Ret _ -> Ok ()
        | _ -> Error "bpf: program can fall off the end")
  end
