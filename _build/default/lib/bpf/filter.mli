(** Header predicates and their compilation to filter programs.

    This is the IR the GSQL planner lowers a WHERE clause into when (and
    only when) it references nothing but fixed-offset IPv4/TCP/UDP header
    fields; the compiled program is what Gigascope "pushes into the NIC".
    Transport-field predicates implicitly require an unfragmented first
    segment, as real BPF filters do. *)

type field =
  | Ip_version
  | Ip_hdr_len  (** bytes *)
  | Ip_tos
  | Ip_total_len
  | Ip_ident
  | Ip_frag_offset  (** 8-byte units *)
  | Ip_ttl
  | Ip_protocol
  | Ip_src
  | Ip_dst
  | Src_port  (** TCP or UDP: same offsets *)
  | Dst_port
  | Tcp_flags

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of field * cmp * int
  | Flag_set of field * int  (** [field land mask <> 0] *)
  | And of t * t
  | Or of t * t
  | Not of t

val needs_transport : t -> bool
(** Whether the predicate reads any transport-layer field. *)

val compile : ?snap_len:int -> t -> Insn.program
(** [compile pred] produces a validated program returning [snap_len]
    (default 65535) on acceptance and 0 on rejection. Non-IPv4 packets are
    always rejected (Gigascope Protocol sources are typed). *)

val eval : t -> bytes -> bool
(** Reference semantics: decode the packet with {!Gigascope_packet} and
    evaluate the predicate directly. Property tests check
    [eval p pkt = Vm.accepts (compile p) pkt]. *)

val pp : Format.formatter -> t -> unit
