lib/bpf/filter.mli: Format Insn
