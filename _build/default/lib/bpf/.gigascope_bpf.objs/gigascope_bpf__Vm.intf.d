lib/bpf/vm.mli: Insn
