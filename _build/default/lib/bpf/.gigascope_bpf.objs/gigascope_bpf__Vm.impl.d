lib/bpf/vm.ml: Array Bytes Gigascope_packet Insn
