lib/bpf/filter.ml: Array Format Gigascope_packet Hashtbl Insn List Option Printf
