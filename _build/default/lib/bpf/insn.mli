(** The filter-machine instruction set.

    A classic-BPF-style accumulator machine over raw packet bytes: an
    accumulator [A], an index register [X], absolute and indexed loads,
    ALU ops, conditional jumps with separate true/false displacements, and
    [Ret n] returning the snap length to capture (0 = reject the packet).
    Jump displacements are relative to the next instruction. *)

type t =
  | Ld_abs_u8 of int  (** A <- pkt\[k\] *)
  | Ld_abs_u16 of int  (** A <- big-endian u16 at k *)
  | Ld_abs_u32 of int
  | Ld_imm of int  (** A <- k *)
  | Ld_len  (** A <- captured packet length *)
  | Ld_ind_u8 of int  (** A <- pkt\[X+k\] *)
  | Ld_ind_u16 of int
  | Ld_ind_u32 of int
  | Ldx_imm of int  (** X <- k *)
  | Ldx_ip_hlen of int  (** X <- 4 * (pkt\[k\] land 0xf) — the IHL idiom *)
  | Alu_and of int
  | Alu_or of int
  | Alu_add of int
  | Alu_sub of int
  | Alu_lsh of int
  | Alu_rsh of int
  | Tax  (** X <- A *)
  | Txa  (** A <- X *)
  | Ja of int  (** unconditional relative jump *)
  | Jeq of int * int * int  (** if A = k then skip jt else skip jf *)
  | Jgt of int * int * int
  | Jge of int * int * int
  | Jset of int * int * int  (** if A land k <> 0 *)
  | Ret of int

type program = t array

val pp : Format.formatter -> t -> unit
val pp_program : Format.formatter -> program -> unit

val validate : program -> (unit, string) result
(** Static checks mirroring the kernel verifier: all jumps land inside the
    program and forward (no loops — filters must terminate), and the last
    reachable path ends in [Ret]. *)
