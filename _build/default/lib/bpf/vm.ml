module Bytes_util = Gigascope_packet.Bytes_util

exception Reject

let run prog pkt =
  let n = Array.length prog in
  let len = Bytes.length pkt in
  let a = ref 0 and x = ref 0 in
  let load width off =
    if off < 0 || off + width > len then raise Reject
    else
      match width with
      | 1 -> Bytes_util.get_u8 pkt off
      | 2 -> Bytes_util.get_u16 pkt off
      | 4 -> Bytes_util.get_u32 pkt off
      | _ -> assert false
  in
  let rec step pc =
    if pc >= n then 0 (* validated programs never get here *)
    else
      match prog.(pc) with
      | Insn.Ld_abs_u8 k ->
          a := load 1 k;
          step (pc + 1)
      | Insn.Ld_abs_u16 k ->
          a := load 2 k;
          step (pc + 1)
      | Insn.Ld_abs_u32 k ->
          a := load 4 k;
          step (pc + 1)
      | Insn.Ld_imm k ->
          a := k;
          step (pc + 1)
      | Insn.Ld_len ->
          a := len;
          step (pc + 1)
      | Insn.Ld_ind_u8 k ->
          a := load 1 (!x + k);
          step (pc + 1)
      | Insn.Ld_ind_u16 k ->
          a := load 2 (!x + k);
          step (pc + 1)
      | Insn.Ld_ind_u32 k ->
          a := load 4 (!x + k);
          step (pc + 1)
      | Insn.Ldx_imm k ->
          x := k;
          step (pc + 1)
      | Insn.Ldx_ip_hlen k ->
          x := 4 * (load 1 k land 0xf);
          step (pc + 1)
      | Insn.Alu_and k ->
          a := !a land k;
          step (pc + 1)
      | Insn.Alu_or k ->
          a := !a lor k;
          step (pc + 1)
      | Insn.Alu_add k ->
          a := !a + k;
          step (pc + 1)
      | Insn.Alu_sub k ->
          a := !a - k;
          step (pc + 1)
      | Insn.Alu_lsh k ->
          a := !a lsl k;
          step (pc + 1)
      | Insn.Alu_rsh k ->
          a := !a lsr k;
          step (pc + 1)
      | Insn.Tax ->
          x := !a;
          step (pc + 1)
      | Insn.Txa ->
          a := !x;
          step (pc + 1)
      | Insn.Ja d -> step (pc + 1 + d)
      | Insn.Jeq (k, jt, jf) -> step (pc + 1 + if !a = k then jt else jf)
      | Insn.Jgt (k, jt, jf) -> step (pc + 1 + if !a > k then jt else jf)
      | Insn.Jge (k, jt, jf) -> step (pc + 1 + if !a >= k then jt else jf)
      | Insn.Jset (k, jt, jf) -> step (pc + 1 + if !a land k <> 0 then jt else jf)
      | Insn.Ret k -> k
  in
  try step 0 with Reject -> 0

let accepts prog pkt = run prog pkt > 0
