module P = Gigascope_packet

type field =
  | Ip_version
  | Ip_hdr_len
  | Ip_tos
  | Ip_total_len
  | Ip_ident
  | Ip_frag_offset
  | Ip_ttl
  | Ip_protocol
  | Ip_src
  | Ip_dst
  | Src_port
  | Dst_port
  | Tcp_flags

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of field * cmp * int
  | Flag_set of field * int
  | And of t * t
  | Or of t * t
  | Not of t

let field_is_transport = function
  | Src_port | Dst_port | Tcp_flags -> true
  | Ip_version | Ip_hdr_len | Ip_tos | Ip_total_len | Ip_ident | Ip_frag_offset | Ip_ttl
  | Ip_protocol | Ip_src | Ip_dst ->
      false

let rec needs_transport = function
  | True | False -> false
  | Cmp (f, _, _) | Flag_set (f, _) -> field_is_transport f
  | And (a, b) | Or (a, b) -> needs_transport a || needs_transport b
  | Not a -> needs_transport a

(* -------- label-based assembly, resolved to relative displacements ------ *)

type sym_insn =
  | Raw of Insn.t
  | Lbl of string
  | Jump of string
  | Branch of [ `Eq | `Gt | `Ge | `Set ] * int * string * string

let assemble symbolic =
  (* First pass: label addresses (labels occupy no space). *)
  let addr = Hashtbl.create 16 in
  let pc = ref 0 in
  List.iter
    (function
      | Lbl name -> Hashtbl.replace addr name !pc
      | Raw _ | Jump _ | Branch _ -> incr pc)
    symbolic;
  let resolve i name =
    match Hashtbl.find_opt addr name with
    | Some target -> target - (i + 1)
    | None -> invalid_arg (Printf.sprintf "bpf assemble: undefined label %s" name)
  in
  let out = Array.make !pc (Insn.Ret 0) in
  let i = ref 0 in
  List.iter
    (function
      | Lbl _ -> ()
      | Raw insn ->
          out.(!i) <- insn;
          incr i
      | Jump name ->
          out.(!i) <- Insn.Ja (resolve !i name);
          incr i
      | Branch (kind, k, t_lbl, f_lbl) ->
          let jt = resolve !i t_lbl and jf = resolve !i f_lbl in
          out.(!i) <-
            (match kind with
            | `Eq -> Insn.Jeq (k, jt, jf)
            | `Gt -> Insn.Jgt (k, jt, jf)
            | `Ge -> Insn.Jge (k, jt, jf)
            | `Set -> Insn.Jset (k, jt, jf));
          incr i)
    symbolic;
  out

(* -------- code generation ---------------------------------------------- *)

let eth_hlen = 14
let ip_off = eth_hlen

(* Load the field's value into A. Transport fields use X = IP header
   length, set up once in the prologue. *)
let load_field f =
  match f with
  | Ip_version -> [Raw (Insn.Ld_abs_u8 ip_off); Raw (Insn.Alu_rsh 4)]
  | Ip_hdr_len -> [Raw (Insn.Ld_abs_u8 ip_off); Raw (Insn.Alu_and 0xf); Raw (Insn.Alu_lsh 2)]
  | Ip_tos -> [Raw (Insn.Ld_abs_u8 (ip_off + 1))]
  | Ip_total_len -> [Raw (Insn.Ld_abs_u16 (ip_off + 2))]
  | Ip_ident -> [Raw (Insn.Ld_abs_u16 (ip_off + 4))]
  | Ip_frag_offset -> [Raw (Insn.Ld_abs_u16 (ip_off + 6)); Raw (Insn.Alu_and 0x1fff)]
  | Ip_ttl -> [Raw (Insn.Ld_abs_u8 (ip_off + 8))]
  | Ip_protocol -> [Raw (Insn.Ld_abs_u8 (ip_off + 9))]
  | Ip_src -> [Raw (Insn.Ld_abs_u32 (ip_off + 12))]
  | Ip_dst -> [Raw (Insn.Ld_abs_u32 (ip_off + 16))]
  | Src_port -> [Raw (Insn.Ld_ind_u16 ip_off)]
  | Dst_port -> [Raw (Insn.Ld_ind_u16 (ip_off + 2))]
  | Tcp_flags -> [Raw (Insn.Ld_ind_u8 (ip_off + 13))]

let fresh =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Printf.sprintf "%s%d" prefix !counter

(* Emit code that transfers control to [t_lbl] when the predicate holds and
   to [f_lbl] otherwise. *)
let rec gen pred ~t_lbl ~f_lbl =
  match pred with
  | True -> [Jump t_lbl]
  | False -> [Jump f_lbl]
  | Not inner -> gen inner ~t_lbl:f_lbl ~f_lbl:t_lbl
  | And (a, b) ->
      let mid = fresh "and_" in
      gen a ~t_lbl:mid ~f_lbl @ [Lbl mid] @ gen b ~t_lbl ~f_lbl
  | Or (a, b) ->
      let mid = fresh "or_" in
      gen a ~t_lbl ~f_lbl:mid @ [Lbl mid] @ gen b ~t_lbl ~f_lbl
  | Flag_set (f, mask) -> load_field f @ [Branch (`Set, mask, t_lbl, f_lbl)]
  | Cmp (f, op, k) ->
      let branch =
        match op with
        | Eq -> [Branch (`Eq, k, t_lbl, f_lbl)]
        | Ne -> [Branch (`Eq, k, f_lbl, t_lbl)]
        | Gt -> [Branch (`Gt, k, t_lbl, f_lbl)]
        | Ge -> [Branch (`Ge, k, t_lbl, f_lbl)]
        | Lt -> [Branch (`Ge, k, f_lbl, t_lbl)]
        | Le -> [Branch (`Gt, k, f_lbl, t_lbl)]
      in
      load_field f @ branch

let compile ?(snap_len = 65535) pred =
  let accept = fresh "accept_" and reject = fresh "reject_" and body = fresh "body_" in
  let prologue =
    [Raw (Insn.Ld_abs_u16 12); Branch (`Eq, P.Ethernet.ethertype_ipv4, body, reject); Lbl body]
    @
    if needs_transport pred then
      (* Reject fragments with nonzero offset (no transport header), then
         point X at the transport header. *)
      let unfrag = fresh "unfrag_" in
      [
        Raw (Insn.Ld_abs_u16 (ip_off + 6));
        Branch (`Set, 0x1fff, reject, unfrag);
        Lbl unfrag;
        Raw (Insn.Ldx_ip_hlen ip_off);
      ]
    else []
  in
  let code =
    prologue
    @ gen pred ~t_lbl:accept ~f_lbl:reject
    @ [Lbl accept; Raw (Insn.Ret snap_len); Lbl reject; Raw (Insn.Ret 0)]
  in
  let prog = assemble code in
  match Insn.validate prog with
  | Ok () -> prog
  | Error msg -> invalid_arg ("Filter.compile: generated invalid program: " ^ msg)

(* -------- reference semantics ------------------------------------------ *)

let field_value pkt f =
  match P.Packet.decode pkt with
  | Error _ -> None
  | Ok decoded -> (
      match decoded.P.Packet.net with
      | P.Packet.Non_ip _ -> None
      | P.Packet.Ipv4 (ip, transport) -> (
          let transport_fields () =
            match transport with
            | P.Packet.Tcp (h, _) ->
                Some (h.P.Tcp.src_port, h.P.Tcp.dst_port, Some (P.Tcp.flags_to_int h.P.Tcp.flags))
            | P.Packet.Udp (h, _) -> Some (h.P.Udp.src_port, h.P.Udp.dst_port, None)
            | P.Packet.Icmp _ | P.Packet.Raw_transport _ -> None
          in
          match f with
          | Ip_version -> Some 4
          | Ip_hdr_len -> Some (P.Ipv4.header_len ip)
          | Ip_tos -> Some ip.P.Ipv4.tos
          | Ip_total_len -> Some ip.P.Ipv4.total_len
          | Ip_ident -> Some ip.P.Ipv4.ident
          | Ip_frag_offset -> Some ip.P.Ipv4.frag_offset
          | Ip_ttl -> Some ip.P.Ipv4.ttl
          | Ip_protocol -> Some ip.P.Ipv4.protocol
          | Ip_src -> Some ip.P.Ipv4.src
          | Ip_dst -> Some ip.P.Ipv4.dst
          | Src_port -> Option.map (fun (s, _, _) -> s) (transport_fields ())
          | Dst_port -> Option.map (fun (_, d, _) -> d) (transport_fields ())
          | Tcp_flags -> Option.bind (transport_fields ()) (fun (_, _, fl) -> fl)))

let rec eval pred pkt =
  match pred with
  | True -> ( match P.Packet.decode pkt with Ok { net = P.Packet.Ipv4 _; _ } -> true | _ -> false)
  | False -> false
  | Not a -> (
      (* Like the VM, a predicate over an absent layer rejects; Not only
         negates decidable comparisons, so evaluate the subterm carefully:
         Not(Cmp) over a packet lacking the field stays false. *)
      match P.Packet.decode pkt with
      | Ok { net = P.Packet.Ipv4 _; _ } -> not (eval a pkt)
      | _ -> false)
  | And (a, b) -> eval a pkt && eval b pkt
  | Or (a, b) -> eval a pkt || eval b pkt
  | Flag_set (f, mask) -> (
      match field_value pkt f with Some v -> v land mask <> 0 | None -> false)
  | Cmp (f, op, k) -> (
      match field_value pkt f with
      | None -> false
      | Some v -> (
          match op with
          | Eq -> v = k
          | Ne -> v <> k
          | Lt -> v < k
          | Le -> v <= k
          | Gt -> v > k
          | Ge -> v >= k))

let field_name = function
  | Ip_version -> "ip.version"
  | Ip_hdr_len -> "ip.hdr_len"
  | Ip_tos -> "ip.tos"
  | Ip_total_len -> "ip.total_len"
  | Ip_ident -> "ip.ident"
  | Ip_frag_offset -> "ip.frag_offset"
  | Ip_ttl -> "ip.ttl"
  | Ip_protocol -> "ip.protocol"
  | Ip_src -> "ip.src"
  | Ip_dst -> "ip.dst"
  | Src_port -> "src_port"
  | Dst_port -> "dst_port"
  | Tcp_flags -> "tcp.flags"

let cmp_name = function Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp fmt = function
  | True -> Format.fprintf fmt "true"
  | False -> Format.fprintf fmt "false"
  | Cmp (f, op, k) -> Format.fprintf fmt "%s %s %d" (field_name f) (cmp_name op) k
  | Flag_set (f, mask) -> Format.fprintf fmt "%s & 0x%x" (field_name f) mask
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp a pp b
  | Not a -> Format.fprintf fmt "not %a" pp a
