(** The filter-machine interpreter.

    Any fault (out-of-bounds load, division-free so no other faults) rejects
    the packet, as in the kernel: a filter can never crash the capture
    path. *)

val run : Insn.program -> bytes -> int
(** [run prog pkt] executes the filter over the packet bytes and returns
    the snap length to keep (0 = drop). Instruction count is bounded by the
    program length because validated programs only jump forward. *)

val accepts : Insn.program -> bytes -> bool
(** [run prog pkt > 0]. *)
