# Convenience targets; `make ci` is what a CI job should run.

.PHONY: all build test ci bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# CI runs the suite five times: single-threaded tuple-at-a-time, with
# every Engine.run forced onto 2 domains, with every Engine.run's data
# plane batched at 64, with both knobs combined, and once under a
# seeded chaos spec (the test/dune env_var deps make the later runs
# re-execute rather than hit the cache). All knobs claim byte-identical
# output, so the whole suite doubles as their determinism check —
# including the parallel×batched interaction, which neither single-knob
# pass exercises.
#
# The chaos pass injects only output-preserving faults — a stall on the
# tcpdest cross-domain channel and a one-shot per-peer network delay —
# so every determinism assertion must still hold with the injection
# machinery armed end to end. (Tests that install their own plan export
# it via GIGASCOPE_FAULTS for their scope, so the global spec never
# clobbers them mid-test.) Each pass runs under a hard timeout: the
# failure model's core claim is "never hangs", and CI enforces it by
# turning any wedge into a loud nonzero exit instead of a stuck job.
CI_TIMEOUT ?= 600
CHAOS_FAULTS = seed=11,stall=tcpdest0->portcounts:2:2,delay=5:2
ci:
	dune build @all
	timeout $(CI_TIMEOUT) dune runtest
	GIGASCOPE_PARALLEL=2 timeout $(CI_TIMEOUT) dune runtest --force
	GIGASCOPE_BATCH=64 timeout $(CI_TIMEOUT) dune runtest --force
	GIGASCOPE_PARALLEL=2 GIGASCOPE_BATCH=64 timeout $(CI_TIMEOUT) dune runtest --force
	GIGASCOPE_FAULTS="$(CHAOS_FAULTS)" GIGASCOPE_PARALLEL=2 timeout $(CI_TIMEOUT) dune runtest --force

bench:
	dune exec bench/main.exe

clean:
	dune clean
