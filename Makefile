# Convenience targets; `make ci` is what a CI job should run.

.PHONY: all build test ci ci-observability ci-cluster ci-certify bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# CI runs the suite seven times: single-threaded tuple-at-a-time, with
# every Engine.run forced onto 2 domains, with every Engine.run's data
# plane batched at 64, with both knobs combined, with every installed
# query sharded 4 ways across 4 domains, under a seeded chaos spec, and
# under the same chaos spec with sharding on (the test/dune env_var
# deps make the later runs re-execute rather than hit the cache). All
# knobs claim byte-identical output, so the whole suite doubles as
# their determinism check — including the parallel×batched and
# sharded×chaos interactions, which no single-knob pass exercises.
#
# The chaos pass injects only output-preserving faults — a stall on the
# tcpdest cross-domain channel and a one-shot per-peer network delay —
# so every determinism assertion must still hold with the injection
# machinery armed end to end. (Tests that install their own plan export
# it via GIGASCOPE_FAULTS for their scope, so the global spec never
# clobbers them mid-test.) Each pass runs under a hard timeout: the
# failure model's core claim is "never hangs", and CI enforces it by
# turning any wedge into a loud nonzero exit instead of a stuck job.
CI_TIMEOUT ?= 600
CHAOS_FAULTS = seed=11,stall=tcpdest0->portcounts:2:2,delay=5:2
ci:
	dune build @all
	timeout $(CI_TIMEOUT) dune runtest
	GIGASCOPE_PARALLEL=2 timeout $(CI_TIMEOUT) dune runtest --force
	GIGASCOPE_BATCH=64 timeout $(CI_TIMEOUT) dune runtest --force
	GIGASCOPE_PARALLEL=2 GIGASCOPE_BATCH=64 timeout $(CI_TIMEOUT) dune runtest --force
	GIGASCOPE_SHARDS=4 GIGASCOPE_PARALLEL=4 timeout $(CI_TIMEOUT) dune runtest --force
	GIGASCOPE_FAULTS="$(CHAOS_FAULTS)" GIGASCOPE_PARALLEL=2 timeout $(CI_TIMEOUT) dune runtest --force
	GIGASCOPE_FAULTS="$(CHAOS_FAULTS)" GIGASCOPE_SHARDS=2 timeout $(CI_TIMEOUT) dune runtest --force
	$(MAKE) ci-observability
	$(MAKE) ci-cluster
	$(MAKE) ci-certify

# The memory-certification gate: every shipped query must carry a
# finite state bound. `gsq explain --memory` prints UNBOUNDED for any
# operator the certifier cannot bound, so grep is the oracle. Then
# every example program re-runs with admission forced to reject,
# proving the gate passes each plan the examples install (an example
# that regresses to an unbounded plan exits nonzero here, not in
# production).
ci-certify:
	set -e; for q in queries/*.gsql; do \
	  dune exec bin/gsq.exe -- explain --memory $$q > .certify.out 2>&1 \
	    || { echo "$$q: explain --memory failed"; cat .certify.out; rm -f .certify.out; exit 1; }; \
	  if grep -q 'UNBOUNDED' .certify.out; then \
	    echo "$$q: unexpected UNBOUNDED verdict"; cat .certify.out; rm -f .certify.out; exit 1; \
	  fi; \
	  echo "certified $$q"; \
	done; rm -f .certify.out
	set -e; for e in examples/*.ml; do \
	  n=$$(basename $$e .ml); \
	  GIGASCOPE_ADMIT=reject timeout 60 dune exec examples/$$n.exe > /dev/null 2>&1 \
	    || { echo "example $$n failed under GIGASCOPE_ADMIT=reject"; exit 1; }; \
	  echo "certified example $$n"; \
	done

# The latency-observability smoke: a short paced soak (the bench exits
# nonzero when loss exceeds the 2% doctrine, gap markers don't conserve
# the server's drop count, or p99 goes insane), then a live scrape of a
# serve --http endpoint — /metrics must expose Prometheus families and
# /queries must list the installed streams, checked with curl like a
# real scraper would.
HTTP_SMOKE_PORT ?= 19378
ci-observability:
	timeout 20 dune exec bench/main.exe -- soak 4 40
	( dune exec bin/gsq.exe -- serve queries/tcpdest.gsql \
	    --listen 127.0.0.1:0 --http 127.0.0.1:$(HTTP_SMOKE_PORT) \
	    --rate 400 --duration 120 --latency-sample 16 & \
	  echo $$! > .http-smoke.pid; \
	  ok=1; \
	  for i in 1 2 3 4 5 6 7 8 9 10; do \
	    sleep 0.5; \
	    if curl -sf http://127.0.0.1:$(HTTP_SMOKE_PORT)/metrics > .http-smoke.prom; then ok=0; break; fi; \
	  done; \
	  if [ $$ok -eq 0 ]; then \
	    grep -q '^# TYPE rts_scheduler_rounds counter' .http-smoke.prom && \
	    grep -q '^# TYPE rts_latency_tcpdest0 summary' .http-smoke.prom && \
	    curl -sf http://127.0.0.1:$(HTTP_SMOKE_PORT)/queries | grep -q '"name":"tcpdest0"' || ok=1; \
	  fi; \
	  kill $$(cat .http-smoke.pid) 2>/dev/null; \
	  rm -f .http-smoke.pid .http-smoke.prom; \
	  exit $$ok )

# The aggregation-tree smoke: gsq cluster runs a 3-edge fan-in over
# loopback computing approx_count_distinct end to end. Each edge draws
# from the same 5000-key universe, so every epoch's true distinct count
# is exactly 5000; the awk check holds each printed estimate inside 10%
# (HLL precision 12 promises ~1.6%) and the report must show the tree
# actually reduced. The hard timeout is the clean-shutdown check: a
# wedged node turns into exit 124, not a stuck job. Below that, the two
# one-line exit-1 contracts: an unreadable and an invalid topology for
# cluster, an unbindable --listen for serve — each must fail with
# status 1 and exactly one line on stderr.
ci-cluster:
	printf 'root: e0 e1 e2\n' > .cluster-smoke.topo
	timeout 60 dune exec bin/gsq.exe -- cluster .cluster-smoke.topo queries/cluster_distinct.gsql \
	    --rows 60000 --distinct 5000 --epochs 3 > .cluster-smoke.out
	grep -q 'reduction' .cluster-smoke.out
	awk 'BEGIN { n = 0 } /"sources":/ { split($$0, a, "\"sources\":"); v = a[2] + 0; n++; \
	    if (v < 4500 || v > 5500) bad = 1 } END { exit (bad || n == 0) }' .cluster-smoke.out
	sh -c 'timeout 20 dune exec bin/gsq.exe -- cluster .cluster-smoke.missing \
	    queries/cluster_distinct.gsql 2> .cluster-smoke.err; test $$? -eq 1'
	test "$$(wc -l < .cluster-smoke.err)" -eq 1
	printf 'a: b\nb: a\n' > .cluster-smoke.topo
	sh -c 'timeout 20 dune exec bin/gsq.exe -- cluster .cluster-smoke.topo \
	    queries/cluster_distinct.gsql 2> .cluster-smoke.err; test $$? -eq 1'
	test "$$(wc -l < .cluster-smoke.err)" -eq 1
	sh -c 'timeout 20 dune exec bin/gsq.exe -- serve queries/tcpdest.gsql \
	    --listen 999.999.0.1:1 2> .cluster-smoke.err; test $$? -eq 1'
	test "$$(wc -l < .cluster-smoke.err)" -eq 1
	rm -f .cluster-smoke.topo .cluster-smoke.out .cluster-smoke.err

bench:
	dune exec bench/main.exe

clean:
	dune clean
