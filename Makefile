# Convenience targets; `make ci` is what a CI job should run.

.PHONY: all build test ci bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# CI runs the suite twice: single-threaded, then with every Engine.run
# forced onto 2 domains (the test/dune env_var dep makes the second run
# re-execute rather than hit the cache).
ci:
	dune build @all
	dune runtest
	GIGASCOPE_PARALLEL=2 dune runtest --force

bench:
	dune exec bench/main.exe

clean:
	dune clean
