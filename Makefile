# Convenience targets; `make ci` is what a CI job should run.

.PHONY: all build test ci bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# CI runs the suite four times: single-threaded tuple-at-a-time, with
# every Engine.run forced onto 2 domains, with every Engine.run's data
# plane batched at 64, and with both knobs combined (the test/dune
# env_var deps make the later runs re-execute rather than hit the
# cache). All knobs claim byte-identical output, so the whole suite
# doubles as their determinism check — including the parallel×batched
# interaction, which neither single-knob pass exercises.
ci:
	dune build @all
	dune runtest
	GIGASCOPE_PARALLEL=2 dune runtest --force
	GIGASCOPE_BATCH=64 dune runtest --force
	GIGASCOPE_PARALLEL=2 GIGASCOPE_BATCH=64 dune runtest --force

bench:
	dune exec bench/main.exe

clean:
	dune clean
