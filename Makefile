# Convenience targets; `make ci` is what a CI job should run.

.PHONY: all build test ci bench clean

all: build

build:
	dune build @all

test:
	dune runtest

ci:
	dune build @all
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
