# Convenience targets; `make ci` is what a CI job should run.

.PHONY: all build test ci bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# CI runs the suite three times: single-threaded tuple-at-a-time, with
# every Engine.run forced onto 2 domains, and with every Engine.run's
# data plane batched at 64 (the test/dune env_var deps make the later
# runs re-execute rather than hit the cache). Both knobs claim
# byte-identical output, so the whole suite doubles as their
# determinism check.
ci:
	dune build @all
	dune runtest
	GIGASCOPE_PARALLEL=2 dune runtest --force
	GIGASCOPE_BATCH=64 dune runtest --force

bench:
	dune exec bench/main.exe

clean:
	dune clean
