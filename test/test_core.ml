(* Tests for the core facade: the built-in Protocol library's
   interpretation functions, TCP session extraction, the defragmenting
   interface, FROM-clause subqueries, and periodic heartbeats. *)

module E = Gigascope.Engine
module Sessions = Gigascope.Sessions
module DP = Gigascope.Default_protocols
module Rts = Gigascope_rts
module Value = Rts.Value
module P = Gigascope_packet
module Packet = P.Packet
module Tcp = P.Tcp
module Ipaddr = P.Ipaddr

let check = Alcotest.check

let ip = Ipaddr.of_string

let tcp_pkt ?(flags = { Tcp.no_flags with Tcp.ack = true }) ts src dst sport dport payload =
  Packet.tcp ~ts ~flags ~src:(ip src) ~dst:(ip dst) ~src_port:sport ~dst_port:dport
    ~payload:(Bytes.of_string payload) ()

(* --------------------- Default_protocols interpretation ----------------- *)

let test_tcp_interpret () =
  let proto = Option.get (DP.find "tcp") in
  let pkt = tcp_pkt 12.75 "10.0.0.1" "10.0.0.2" 4321 80 "hello" in
  match proto.DP.interpret pkt with
  | Some t ->
      check Alcotest.bool "time = floor ts" true (Value.equal t.(0) (Value.Int 12));
      check Alcotest.bool "timestamp exact" true (Value.equal t.(1) (Value.Float 12.75));
      check Alcotest.bool "ipversion" true (Value.equal t.(2) (Value.Int 4));
      check Alcotest.bool "protocol 6" true (Value.equal t.(8) (Value.Int 6));
      check Alcotest.bool "srcip" true (Value.equal t.(9) (Value.Ip (ip "10.0.0.1")));
      check Alcotest.bool "destport" true (Value.equal t.(12) (Value.Int 80));
      check Alcotest.bool "data_length" true (Value.equal t.(17) (Value.Int 5));
      check Alcotest.bool "payload" true (Value.equal t.(18) (Value.Str "hello"))
  | None -> Alcotest.fail "tcp interpret failed"

let test_tcp_interpret_udp_packet () =
  (* the tcp Protocol interprets all IPv4 packets; UDP ports flow through,
     TCP-only fields are zero — the idiom behind WHERE protocol = 6 *)
  let proto = Option.get (DP.find "tcp") in
  let pkt = Packet.udp ~ts:1.0 ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2") ~src_port:53 ~dst_port:5353
              ~payload:(Bytes.of_string "x") () in
  match proto.DP.interpret pkt with
  | Some t ->
      check Alcotest.bool "protocol 17" true (Value.equal t.(8) (Value.Int 17));
      check Alcotest.bool "udp ports visible" true (Value.equal t.(11) (Value.Int 53));
      check Alcotest.bool "tcp flags zero" true (Value.equal t.(13) (Value.Int 0))
  | None -> Alcotest.fail "should interpret UDP under the tcp protocol"

let test_interpret_non_ip () =
  let proto = Option.get (DP.find "ip") in
  let b = Bytes.make 20 '\000' in
  P.Bytes_util.set_u16 b 12 0x0806;
  match Packet.decode b with
  | Ok pkt -> check Alcotest.bool "non-ip skipped" true (proto.DP.interpret pkt = None)
  | Error e -> Alcotest.fail e

let test_clock_fields () =
  let proto = Option.get (DP.find "tcp") in
  let bounds = List.map (fun (i, f) -> (i, f 99.5)) proto.DP.clock_fields in
  check Alcotest.bool "time clock" true (List.assoc 0 bounds = Value.Int 99);
  check Alcotest.bool "timestamp clock" true (List.assoc 1 bounds = Value.Float 99.5)

(* ------------------------------ Sessions -------------------------------- *)

let syn = { Tcp.no_flags with Tcp.syn = true }
let fin = { Tcp.no_flags with Tcp.fin = true; ack = true }
let rst = { Tcp.no_flags with Tcp.rst = true }

let test_session_clean_close () =
  let t = Sessions.create () in
  let feed =
    [
      tcp_pkt ~flags:syn 1.0 "10.0.0.1" "10.0.0.2" 1000 80 "";
      tcp_pkt 1.1 "10.0.0.2" "10.0.0.1" 80 1000 "response-data";
      tcp_pkt 1.2 "10.0.0.1" "10.0.0.2" 1000 80 "req";
      tcp_pkt ~flags:fin 1.3 "10.0.0.1" "10.0.0.2" 1000 80 "";
      tcp_pkt ~flags:fin 1.4 "10.0.0.2" "10.0.0.1" 80 1000 "";
    ]
  in
  let closed = List.concat_map (Sessions.push t) feed in
  match closed with
  | [s] ->
      check Alcotest.int "initiator is the SYN sender" (ip "10.0.0.1") s.Sessions.src;
      check Alcotest.int "packets both ways" 5 s.Sessions.packets;
      check Alcotest.int "bytes both ways" 16 s.Sessions.bytes;
      check (Alcotest.float 1e-9) "start" 1.0 s.Sessions.start_ts;
      check (Alcotest.float 1e-9) "end" 1.4 s.Sessions.end_ts;
      check Alcotest.bool "clean" true s.Sessions.clean_close;
      check Alcotest.int "tracker empty" 0 (Sessions.open_sessions t)
  | l -> Alcotest.failf "expected one closed session, got %d" (List.length l)

let test_session_rst_close () =
  let t = Sessions.create () in
  ignore (Sessions.push t (tcp_pkt ~flags:syn 1.0 "10.0.0.1" "10.0.0.2" 1000 80 ""));
  match Sessions.push t (tcp_pkt ~flags:rst 1.5 "10.0.0.2" "10.0.0.1" 80 1000 "") with
  | [s] -> check Alcotest.bool "rst close is not clean" false s.Sessions.clean_close
  | _ -> Alcotest.fail "RST should close the session"

let test_session_idle_timeout () =
  let t = Sessions.create ~idle_timeout:5.0 () in
  ignore (Sessions.push t (tcp_pkt ~flags:syn 1.0 "10.0.0.1" "10.0.0.2" 1000 80 ""));
  (* an unrelated packet far in the future expires the idle session *)
  match Sessions.push t (tcp_pkt 100.0 "10.0.0.3" "10.0.0.4" 2000 443 "") with
  | [s] ->
      check Alcotest.int "expired session is the old one" (ip "10.0.0.1") s.Sessions.src;
      check Alcotest.int "new session open" 1 (Sessions.open_sessions t)
  | _ -> Alcotest.fail "idle session should expire"

let test_session_half_close_stays_open () =
  let t = Sessions.create () in
  ignore (Sessions.push t (tcp_pkt ~flags:syn 1.0 "10.0.0.1" "10.0.0.2" 1000 80 ""));
  let closed = Sessions.push t (tcp_pkt ~flags:fin 1.1 "10.0.0.1" "10.0.0.2" 1000 80 "") in
  check Alcotest.int "one FIN is a half-close" 0 (List.length closed);
  check Alcotest.int "still open" 1 (Sessions.open_sessions t)

let test_session_flush () =
  let t = Sessions.create () in
  ignore (Sessions.push t (tcp_pkt ~flags:syn 1.0 "10.0.0.1" "10.0.0.2" 1000 80 ""));
  ignore (Sessions.push t (tcp_pkt ~flags:syn 2.0 "10.0.0.3" "10.0.0.4" 1001 80 ""));
  let flushed = Sessions.flush t in
  check Alcotest.int "both flushed" 2 (List.length flushed);
  (* flushed in end-time order *)
  match flushed with
  | [a; b] -> check Alcotest.bool "ordered by end" true (a.Sessions.end_ts <= b.Sessions.end_ts)
  | _ -> Alcotest.fail "shape"

let test_session_source_gsql () =
  (* end to end: packets -> session stream -> GSQL aggregation *)
  let feed_packets =
    [
      tcp_pkt ~flags:syn 1.0 "10.0.0.1" "10.0.0.2" 1000 80 "";
      tcp_pkt 1.1 "10.0.0.1" "10.0.0.2" 1000 80 "12345";
      tcp_pkt ~flags:fin 1.2 "10.0.0.1" "10.0.0.2" 1000 80 "";
      tcp_pkt ~flags:fin 1.3 "10.0.0.2" "10.0.0.1" 80 1000 "";
      tcp_pkt ~flags:syn 2.0 "10.0.0.5" "10.0.0.6" 1001 443 "";
      tcp_pkt ~flags:rst 2.5 "10.0.0.6" "10.0.0.5" 443 1001 "";
    ]
  in
  let engine = E.create () in
  let remaining = ref feed_packets in
  let feed () =
    match !remaining with
    | [] -> None
    | p :: rest ->
        remaining := rest;
        Some p
  in
  (match E.add_session_source engine ~name:"sessions" ~feed () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     E.install_query engine ~name:"per_port"
       {| SELECT destport, count(*) as sessions, sum(bytes) as bytes
          FROM sessions GROUP BY end_time/1000 as tb, destport |}
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let rows = ref [] in
  Result.get_ok (E.on_tuple engine "per_port" (fun t -> rows := Array.copy t :: !rows));
  (match E.run engine () with Ok _ -> () | Error e -> Alcotest.fail e);
  let as_strings =
    List.sort compare
      (List.map (fun t -> String.concat "," (List.map Value.to_string (Array.to_list t))) !rows)
  in
  check Alcotest.(list string) "session aggregation" ["443,1,0"; "80,1,5"] as_strings

(* --------------------------- defrag interface --------------------------- *)

let test_defrag_interface () =
  (* a large UDP datagram fragmented at the source: without defrag only the
     first fragment has ports; with defrag the query sees the whole
     payload length *)
  let payload = Bytes.make 3000 'z' in
  let whole =
    Packet.udp ~ts:1.0 ~ident:42 ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:5000
      ~dst_port:6000 ~payload ()
  in
  let frags = P.Frag.fragment ~mtu:576 whole in
  check Alcotest.bool "actually fragmented" true (List.length frags > 1);
  let run_with_defrag use_defrag =
    let engine = E.create () in
    let feed () =
      let remaining = ref frags in
      fun () ->
        match !remaining with
        | [] -> None
        | p :: rest ->
            remaining := rest;
            Some p
    in
    if use_defrag then E.add_defrag_interface engine ~name:"eth0" ~feed ()
    else E.add_interface engine ~name:"eth0" ~feed ();
    (match
       E.install_query engine ~name:"big"
         "SELECT time, data_length FROM eth0.udp WHERE destport = 6000"
     with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    let rows = ref [] in
    Result.get_ok (E.on_tuple engine "big" (fun t -> rows := Array.copy t :: !rows));
    (match E.run engine () with Ok _ -> () | Error e -> Alcotest.fail e);
    !rows
  in
  (match run_with_defrag true with
  | [[| _; Value.Int len |]] -> check Alcotest.int "whole datagram seen" 3000 len
  | rows -> Alcotest.failf "defrag: expected one row, got %d" (List.length rows));
  match run_with_defrag false with
  | [[| _; Value.Int len |]] ->
      check Alcotest.bool "without defrag only the first fragment matches" true (len < 3000)
  | rows -> Alcotest.failf "no-defrag: expected one row, got %d" (List.length rows)

(* --------------------------- FROM subqueries ---------------------------- *)

let test_from_subquery () =
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [
      tcp_pkt 1.0 "10.0.0.1" "10.0.0.2" 1 80 "aaaa";
      tcp_pkt 1.5 "10.0.0.1" "10.0.0.2" 1 22 "bb";
      tcp_pkt 2.0 "10.0.0.1" "10.0.0.2" 1 80 "c";
    ];
  (match
     E.install_query engine ~name:"subq"
       {| SELECT tb, count(*) as c, sum(data_length) as s
          FROM (SELECT time, data_length FROM eth0.tcp WHERE destport = 80) web
          GROUP BY time/10 as tb |}
   with
  | Ok inst ->
      (* the hoisted helper is registered too *)
      check Alcotest.bool "helper stream registered" true
        (Rts.Manager.find (E.manager engine) "_sub1_subq" <> None);
      ignore inst
  | Error e -> Alcotest.fail e);
  let rows = ref [] in
  Result.get_ok (E.on_tuple engine "subq" (fun t -> rows := Array.copy t :: !rows));
  (match E.run engine () with Ok _ -> () | Error e -> Alcotest.fail e);
  match !rows with
  | [[| Value.Int 0; Value.Int 2; Value.Int 5 |]] -> ()
  | rows -> Alcotest.failf "unexpected result rows (%d)" (List.length rows)

let test_nested_subqueries () =
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [tcp_pkt 1.0 "10.0.0.1" "10.0.0.2" 1 80 "x"] ;
  match
    E.install_query engine ~name:"deep"
      {| SELECT time
         FROM (SELECT time, destport
               FROM (SELECT time, destport, protocol FROM eth0.tcp) inner1
               WHERE protocol = 6) outer1
         WHERE destport = 80 |}
  with
  | Ok _ -> (
      let n = ref 0 in
      Result.get_ok (E.on_tuple engine "deep" (fun _ -> incr n));
      match E.run engine () with
      | Ok _ -> check Alcotest.int "row through two levels" 1 !n
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e

(* --------------------------- engine error paths ------------------------- *)

let test_engine_unknown_interface () =
  let engine = E.create () in
  match E.install_query engine ~name:"nope" "SELECT time FROM ghost0.tcp" with
  | Error e -> check Alcotest.bool "names the interface" true
      (let rec has i = i + 6 <= String.length e && (String.sub e i 6 = "ghost0" || has (i+1)) in
       String.length e >= 6 && has 0)
  | Ok _ -> Alcotest.fail "unknown interface accepted"

let test_engine_unknown_protocol () =
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0" [];
  match E.install_query engine ~name:"nope" "SELECT x FROM eth0.ghostproto" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown protocol accepted"

let test_engine_duplicate_query_name () =
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0" [];
  (match E.install_query engine ~name:"dup" "SELECT time FROM eth0.tcp" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match E.install_query engine ~name:"dup2"
          {| DEFINE { query_name dup; } SELECT time FROM eth0.tcp |} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate query name accepted"

(* ------------------------- periodic heartbeats -------------------------- *)

let test_periodic_heartbeats () =
  let schema =
    Rts.Schema.make
      [{ Rts.Schema.name = "ts"; ty = Rts.Ty.Int; order = Rts.Order_prop.Monotone Rts.Order_prop.Asc }]
  in
  let mgr = Rts.Manager.create () in
  let i = ref 0 in
  ignore
    (Result.get_ok
       (Rts.Manager.add_source mgr ~name:"s" ~schema
          {
            Rts.Node.pull =
              (fun () ->
                if !i >= 1000 then None
                else begin
                  incr i;
                  Some (Rts.Item.Tuple [| Value.Int !i |])
                end);
            clock = (fun () -> [(0, Value.Int !i)]);
          }));
  let puncts = ref 0 in
  Result.get_ok
    (Rts.Manager.on_item mgr "s" (function Rts.Item.Punct _ -> incr puncts | _ -> ()));
  (match Rts.Scheduler.run ~quantum:16 ~heartbeat_period:2 mgr with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.bool "periodic punctuation flowed" true (!puncts > 5)

(* ------------------------ env knob fallback ----------------------------- *)

(* GIGASCOPE_PARALLEL / GIGASCOPE_BATCH are the CI matrix's hooks; a
   value that fails to parse must degrade to 1 loudly — silently voiding
   what the matrix claims to test is how configuration bugs hide. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* putenv cannot unset, so an originally-absent variable restores to
   [default] — "1" for the numeric knobs (behaviorally identical to
   absent: both default to 1), "" for GIGASCOPE_FAULTS (empty = off). *)
let with_env ?(default = "1") name value f =
  let old = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect ~finally:(fun () -> Unix.putenv name (Option.value old ~default)) f

let capture_warnings f =
  let old_reporter = Logs.reporter () in
  let old_level = Logs.level () in
  let buf = Buffer.create 128 in
  let reporter =
    {
      Logs.report =
        (fun _src level ~over k msgf ->
          msgf (fun ?header:_ ?tags:_ fmt ->
              Format.kasprintf
                (fun s ->
                  if level = Logs.Warning then begin
                    Buffer.add_string buf s;
                    Buffer.add_char buf '\n'
                  end;
                  over ();
                  k ())
                fmt));
    }
  in
  Logs.set_reporter reporter;
  Logs.set_level (Some Logs.Warning);
  let restore () =
    Logs.set_reporter old_reporter;
    Logs.set_level old_level
  in
  let result = try f () with e -> restore (); raise e in
  restore ();
  (result, Buffer.contents buf)

(* An engine with no sources: run consults the knobs, then finds nothing
   to schedule — the cheapest way to exercise the fallback path. *)
let empty_run () =
  match E.run (E.create ()) () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_env_parallel_garbage_warns () =
  let (), warnings =
    capture_warnings (fun () -> with_env "GIGASCOPE_PARALLEL" "abc" empty_run)
  in
  check Alcotest.bool "warning names the variable and value" true
    (contains warnings "GIGASCOPE_PARALLEL" && contains warnings "abc")

let test_env_batch_negative_warns () =
  let (), warnings =
    capture_warnings (fun () -> with_env "GIGASCOPE_BATCH" "-3" empty_run)
  in
  check Alcotest.bool "warning names the variable and value" true
    (contains warnings "GIGASCOPE_BATCH" && contains warnings "-3")

let test_env_supervise_garbage_warns () =
  (* the run must still converge under the default policy — a typo'd
     failure-model knob must never itself be a failure *)
  let (), warnings =
    capture_warnings (fun () ->
        with_env ~default:"" "GIGASCOPE_SUPERVISE" "eventually" empty_run)
  in
  check Alcotest.bool "warning names the variable" true
    (contains warnings "GIGASCOPE_SUPERVISE");
  check Alcotest.bool "warning names the fallback" true (contains warnings "fail_fast")

let test_env_watchdog_garbage_warns () =
  List.iter
    (fun bad ->
      let (), warnings =
        capture_warnings (fun () ->
            with_env ~default:"" "GIGASCOPE_WATCHDOG" bad empty_run)
      in
      check Alcotest.bool
        (Printf.sprintf "GIGASCOPE_WATCHDOG=%S warns and disarms" bad)
        true
        (contains warnings "GIGASCOPE_WATCHDOG" && contains warnings bad))
    [ "0.5" (* below the minimum slack *); "lots" ]

let test_env_watchdog_valid_silent () =
  let (), warnings =
    capture_warnings (fun () ->
        with_env ~default:"" "GIGASCOPE_FAULTS" "" (fun () ->
            with_env ~default:"" "GIGASCOPE_WATCHDOG" "2.5" empty_run))
  in
  check Alcotest.string "a legal slack stays silent" "" warnings

let test_env_clean_value_silent () =
  (* GIGASCOPE_FAULTS is pinned off: an ambient chaos spec (make ci's
     chaos pass) legitimately logs a fault-injection notice, and this
     test is about the knob parsers staying quiet, not about faults. *)
  let (), warnings =
    capture_warnings (fun () ->
        with_env ~default:"" "GIGASCOPE_FAULTS" "" (fun () ->
            with_env "GIGASCOPE_PARALLEL" "2" (fun () ->
                with_env "GIGASCOPE_BATCH" " 8 " empty_run)))
  in
  check Alcotest.string "no warnings for parseable values" "" warnings

let () =
  Alcotest.run "core"
    [
      ( "protocols",
        [
          Alcotest.test_case "tcp interpret" `Quick test_tcp_interpret;
          Alcotest.test_case "tcp over udp packet" `Quick test_tcp_interpret_udp_packet;
          Alcotest.test_case "non-ip skipped" `Quick test_interpret_non_ip;
          Alcotest.test_case "clock fields" `Quick test_clock_fields;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "clean close" `Quick test_session_clean_close;
          Alcotest.test_case "rst close" `Quick test_session_rst_close;
          Alcotest.test_case "idle timeout" `Quick test_session_idle_timeout;
          Alcotest.test_case "half close stays open" `Quick test_session_half_close_stays_open;
          Alcotest.test_case "flush" `Quick test_session_flush;
          Alcotest.test_case "GSQL over sessions" `Quick test_session_source_gsql;
        ] );
      ("defrag", [Alcotest.test_case "defrag interface" `Quick test_defrag_interface]);
      ( "subqueries",
        [
          Alcotest.test_case "FROM subquery" `Quick test_from_subquery;
          Alcotest.test_case "nested subqueries" `Quick test_nested_subqueries;
        ] );
      ( "engine-errors",
        [
          Alcotest.test_case "unknown interface" `Quick test_engine_unknown_interface;
          Alcotest.test_case "unknown protocol" `Quick test_engine_unknown_protocol;
          Alcotest.test_case "duplicate query name" `Quick test_engine_duplicate_query_name;
        ] );
      ("heartbeats", [Alcotest.test_case "periodic mode" `Quick test_periodic_heartbeats]);
      ( "env-knobs",
        [
          Alcotest.test_case "garbage GIGASCOPE_PARALLEL warns" `Quick
            test_env_parallel_garbage_warns;
          Alcotest.test_case "negative GIGASCOPE_BATCH warns" `Quick test_env_batch_negative_warns;
          Alcotest.test_case "clean value stays silent" `Quick test_env_clean_value_silent;
          Alcotest.test_case "garbage GIGASCOPE_SUPERVISE warns" `Quick
            test_env_supervise_garbage_warns;
          Alcotest.test_case "bad GIGASCOPE_WATCHDOG warns and disarms" `Quick
            test_env_watchdog_garbage_warns;
          Alcotest.test_case "valid GIGASCOPE_WATCHDOG stays silent" `Quick
            test_env_watchdog_valid_silent;
        ] );
    ]
