(* Fuzz tests: a packet monitor is attack surface. Malformed wire bytes,
   garbage query text, and truncated captures must produce clean errors —
   never exceptions — on every path that touches untrusted input. *)

module Gsql = Gigascope_gsql
module Rts = Gigascope_rts
module P = Gigascope_packet
module Packet = P.Packet
module Prng = Gigascope_util.Prng

let qtest ?(count = 500) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------- packet decoding ------------------------------ *)

let random_bytes rng n = Bytes.init n (fun _ -> Char.chr (Prng.int rng 256))

let decode_never_raises =
  qtest ~count:2000 "Packet.decode never raises on random bytes" QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let b = random_bytes rng (Prng.int rng 200) in
      match Packet.decode b with Ok _ | Error _ -> true)

let decode_mutated_never_raises =
  (* nastier: start from a valid packet and flip bytes, so parsing gets
     deep before hitting the corruption *)
  qtest ~count:2000 "decode survives bit-flipped valid packets" QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let pkt =
        Packet.tcp ~src:(Prng.int rng 0xffffff) ~dst:(Prng.int rng 0xffffff)
          ~src_port:(Prng.int rng 65536) ~dst_port:(Prng.int rng 65536)
          ~payload:(random_bytes rng (Prng.int rng 100))
          ()
      in
      let wire = Packet.encode pkt in
      for _ = 0 to 4 do
        let i = Prng.int rng (Bytes.length wire) in
        Bytes.set wire i (Char.chr (Prng.int rng 256))
      done;
      (* also truncate randomly *)
      let cut = Packet.truncate ~snap_len:(1 + Prng.int rng (Bytes.length wire)) wire in
      match Packet.decode cut with Ok _ | Error _ -> true)

let pcap_decode_never_raises =
  qtest ~count:1000 "Pcap.decode_file never raises on random bytes" QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let b = random_bytes rng (Prng.int rng 128) in
      (* seed some with a valid magic so record parsing is reached *)
      if Bytes.length b >= 4 && Prng.bool rng then begin
        Bytes.set b 0 '\xd4';
        Bytes.set b 1 '\xc3';
        Bytes.set b 2 '\xb2';
        Bytes.set b 3 '\xa1'
      end;
      match P.Pcap.decode_file b with Ok _ | Error _ -> true)

let netflow_decode_never_raises =
  qtest ~count:1000 "Netflow.decode_datagram never raises" QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let b = random_bytes rng (Prng.int rng 64) in
      if Bytes.length b >= 2 && Prng.bool rng then begin
        (* plant the version so the record loop is reached *)
        Bytes.set b 0 '\x00';
        Bytes.set b 1 '\x05'
      end;
      match P.Netflow.decode_datagram ~boot_ts:0.0 b with Ok _ | Error _ -> true)

(* --------------------------- query text --------------------------------- *)

let fresh_catalog () =
  let funcs = Rts.Func.create_registry () in
  Rts.Builtin_funcs.register_all funcs;
  let catalog = Gsql.Catalog.create funcs in
  Gigascope.Default_protocols.register catalog;
  catalog

let gsql_vocabulary =
  [|
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "MERGE"; "DEFINE"; "PROTOCOL";
    "and"; "or"; "not"; "as"; "count(*)"; "sum"; "avg"; "("; ")"; "{"; "}"; ","; ";"; ":";
    "."; "="; "<>"; "<"; ">"; "+"; "-"; "*"; "/"; "&"; "time"; "destport"; "srcip";
    "payload"; "eth0"; "tcp"; "udp"; "q1"; "80"; "0.5"; "'str'"; "$p"; "10.0.0.1"; "|";
  |]

let compiler_never_raises_on_token_soup =
  qtest ~count:2000 "compiler returns Error (never raises) on token soup" QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let n = 1 + Prng.int rng 25 in
      let text =
        String.concat " "
          (List.init n (fun _ -> gsql_vocabulary.(Prng.int rng (Array.length gsql_vocabulary))))
      in
      let catalog = fresh_catalog () in
      match Gsql.Compile.compile_program catalog text with Ok _ | Error _ -> true)

let compiler_never_raises_on_random_chars =
  qtest ~count:2000 "compiler survives random character strings" QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int rng 80 in
      (* printable-ish ASCII with the occasional control char *)
      let text =
        String.init n (fun _ ->
            if Prng.int rng 20 = 0 then Char.chr (Prng.int rng 32)
            else Char.chr (32 + Prng.int rng 95))
      in
      let catalog = fresh_catalog () in
      match Gsql.Compile.compile_program catalog text with Ok _ | Error _ -> true)

let regex_compile_never_raises_unexpectedly =
  qtest ~count:2000 "regex compiler raises only Syntax_error" QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int rng 30 in
      let alphabet = "ab()[]{}*+?|\\^$.-019,nxt" in
      let pattern =
        String.init n (fun _ -> alphabet.[Prng.int rng (String.length alphabet)])
      in
      match Gigascope_regex.Regex.compile pattern with
      | _ -> true
      | exception Gigascope_regex.Regex.Syntax_error _ -> true)

(* running a fuzzed-but-valid pattern must stay linear and not raise *)
let regex_match_never_raises =
  qtest ~count:500 "compiled regexes never raise while matching" QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let alphabet = "ab()[]*+?|^$." in
      let pattern =
        String.init (Prng.int rng 15) (fun _ -> alphabet.[Prng.int rng (String.length alphabet)])
      in
      match Gigascope_regex.Regex.compile_opt pattern with
      | None -> true
      | Some rx ->
          let input = String.init (Prng.int rng 60) (fun _ -> if Prng.bool rng then 'a' else 'b') in
          let (_ : bool) = Gigascope_regex.Regex.matches rx input in
          true)

(* -------------------------- prefix tables ------------------------------- *)

let lpm_table_never_raises =
  qtest ~count:1000 "prefix-table parser never raises" QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let line () =
        match Prng.int rng 5 with
        | 0 -> "10.0.0.0/8 7018"
        | 1 -> Printf.sprintf "%d.%d.0.0/%d %d" (Prng.int rng 300) (Prng.int rng 300) (Prng.int rng 40) (Prng.int rng 100000)
        | 2 -> "# comment"
        | 3 -> String.init (Prng.int rng 20) (fun _ -> Char.chr (33 + Prng.int rng 90))
        | _ -> ""
      in
      let text = String.concat "\n" (List.init (Prng.int rng 10) (fun _ -> line ())) in
      match Gigascope_lpm.Table.load_string text with Ok _ | Error _ -> true)

(* ------------------- cross-domain channel -------------------------------- *)

(* The SPSC contract under real concurrency: a producer domain pushing with
   random stalls (sometimes closing mid-stream), a consumer domain popping
   with random stalls (so EOF regularly lands before the queue drains).
   Whatever the interleaving: the consumer sees exactly the accepted
   tuples, in push order; acceptance is a prefix when the channel closes
   mid-stream; and the metrics add up. *)
let xchannel_fuzz =
  qtest ~count:150 "Xchannel: order, prefix-on-close, metric consistency" QCheck.small_int
    (fun seed ->
      let rng = Prng.create ((seed * 7) + 1) in
      let capacity = 1 + Prng.int rng 8 in
      let n = 20 + Prng.int rng 300 in
      let close_at = if Prng.int rng 3 = 0 then Some (Prng.int rng n) else None in
      let xc = Rts.Xchannel.create ~capacity ~name:"fuzz" () in
      let stall prng =
        if Prng.int prng 10 = 0 then
          for _ = 1 to 50 do
            ignore (Sys.opaque_identity prng)
          done
      in
      let consumer =
        Domain.spawn (fun () ->
            let crng = Prng.create (seed lxor 0x5ca1ab1e) in
            let acc = ref [] in
            let continue = ref true in
            while !continue do
              (match Rts.Xchannel.pop xc with
              | Some (Rts.Item.Tuple [| Rts.Value.Int v |]) -> acc := v :: !acc
              | Some Rts.Item.Eof -> continue := false
              | Some _ -> ()
              | None ->
                  if Rts.Xchannel.is_closed xc && Rts.Xchannel.is_empty xc then
                    continue := false
                  else Domain.cpu_relax ());
              stall crng
            done;
            List.rev !acc)
      in
      for i = 0 to n - 1 do
        (match close_at with Some c when c = i -> Rts.Xchannel.close xc | _ -> ());
        ignore (Rts.Xchannel.push xc (Rts.Item.Tuple [| Rts.Value.Int i |]));
        stall rng
      done;
      ignore (Rts.Xchannel.push xc Rts.Item.Eof);
      (* EOF is dropped silently on a closed channel; close again so a
         consumer still draining observes termination either way *)
      Rts.Xchannel.close xc;
      let got = Domain.join consumer in
      let accepted = match close_at with Some c -> c | None -> n in
      got = List.init accepted (fun i -> i)
      && Rts.Xchannel.tuples_in xc = accepted
      && Rts.Xchannel.drops xc = n - accepted
      && Rts.Xchannel.high_water xc <= capacity
      && Rts.Xchannel.blocked_ns xc >= 0)

(* ---------------------- batched data plane ------------------------------ *)

(* Differential fuzz over the data-plane batch size: the knob is pure
   plumbing, so for every workload in the determinism matrix the
   subscriber output must be byte-identical — same rows, same order — at
   every batch size. The sizes cross the interesting thresholds: 2 (the
   smallest real batch), 7 (never divides a quantum evenly, so every step
   ends in a flushed partial batch), 64 (the default quantum, one batch
   per step), and 4096 (larger than any default quantum or channel
   capacity ratio, so the quantum floor and the cross-channel capacity
   clamp both engage). *)
let batch_differential =
  List.map
    (fun (w : Workloads.workload) ->
      Alcotest.test_case w.Workloads.wname `Slow (fun () ->
          let seed = 23 in
          let baseline, _ = Workloads.exec w ~seed ~parallel:1 ~batch:1 () in
          List.iter
            (fun batch ->
              let got, _ = Workloads.exec w ~seed ~parallel:1 ~batch () in
              Workloads.assert_same
                ~label:(Printf.sprintf "%s batch=%d" w.Workloads.wname batch)
                baseline got)
            [2; 7; 64; 4096];
          (* and batched across a domain boundary: one cross-channel push
             per batch must not reorder or lose anything either *)
          let par, _ = Workloads.exec w ~seed ~parallel:2 ~batch:64 () in
          Workloads.assert_same
            ~label:(Printf.sprintf "%s domains=2 batch=64" w.Workloads.wname)
            baseline par))
    Workloads.workloads

(* ---------------------- sharded execution ------------------------------- *)

(* The shard-count differential law, as a property over random plans:
   for a randomly generated aggregation or selection query, a randomly
   chosen shard count (2..5) and batch size must leave the subscriber
   output byte-identical to the unsharded tuple-at-a-time run. This is
   the same claim test_shard.ml pins on the curated workloads, extended
   to query shapes nobody hand-picked. *)
let run_shard_query ~shards ~batch ~gseed query =
  let engine = Gigascope.Engine.create ~shards () in
  Gigascope.Engine.add_generator_interface engine ~name:"eth0"
    { Gigascope_traffic.Gen.default with rate_mbps = 20.0; duration = 0.4; seed = gseed };
  match Gigascope.Engine.install_query engine ~name:"q" query with
  | Error e -> failwith ("install: " ^ e)
  | Ok _ ->
      let rows = ref [] in
      Result.get_ok
        (Gigascope.Engine.on_tuple engine "q" (fun t ->
             rows :=
               String.concat "," (List.map Rts.Value.to_string (Array.to_list t))
               :: !rows));
      (match Gigascope.Engine.run engine ~batch () with
      | Ok _ -> ()
      | Error e -> failwith ("run: " ^ e));
      List.rev !rows

let shard_count_differential =
  qtest ~count:12 "random plan × random shard count: output byte-identical"
    QCheck.small_int (fun seed ->
      let rng = Prng.create ((seed * 7919) + 5) in
      let pick l = List.nth l (Prng.int rng (List.length l)) in
      let sel_keys, group_by =
        pick
          [
            ("tb", "time/1 as tb");
            ("tb, destport", "time/1 as tb, destport");
            ("tb, subnet", "time/1 as tb, truncate_ip(srcip, 16) as subnet");
            ("tb, srcip, destport", "time/1 as tb, srcip, destport");
          ]
      in
      let aggs =
        pick
          [
            "count(*) as c";
            "count(*) as c, sum(len) as s";
            "min(len) as lo, max(len) as hi";
            "sum(len) as s, avg(len) as a";
          ]
      in
      let where = pick [ ""; "WHERE ipversion = 4"; "WHERE len > 100" ] in
      let query =
        if Prng.int rng 4 = 0 then
          Printf.sprintf "SELECT time, srcip, destip, len FROM eth0.ip %s" where
        else
          Printf.sprintf "SELECT %s, %s FROM eth0.tcp %s GROUP BY %s" sel_keys aggs where
            group_by
      in
      let gseed = 1 + Prng.int rng 1000 in
      let shards = 2 + Prng.int rng 4 in
      let batch = pick [ 1; 7; 64 ] in
      let baseline = run_shard_query ~shards:1 ~batch:1 ~gseed query in
      let got = run_shard_query ~shards ~batch ~gseed query in
      if baseline <> got then
        QCheck.Test.fail_reportf "divergence: %s (shards=%d batch=%d seed=%d)" query
          shards batch gseed
      else true)

(* Reunification-merge reorder fuzz: adversarially skewed inputs — one
   far ahead, one dribbling, random punctuation — through a bare
   Merge_op with a forwarded monotone field. The merge's two ordering
   properties must hold however the inputs interleave: emitted tuples
   globally sorted on the merge attribute (and an exact multiset of the
   inputs), and every published punctuation bound firm — no later tuple
   undershoots it, on the merge field or the forwarded one. *)
let merge_reorder_fuzz =
  qtest ~count:300 "merge under adversarial skew: sorted, conserved, firm bounds"
    QCheck.small_int (fun seed ->
      let rng = Prng.create (seed + 411) in
      let n_inputs = 2 + Prng.int rng 3 in
      let mk i =
        (* input i starts at a skewed offset and advances at its own rate *)
        let ts = ref (Prng.int rng ((20 * i) + 1)) in
        let n = 5 + Prng.int rng 40 in
        List.init n (fun j ->
            ts := !ts + Prng.int rng (1 + (5 * (i + 1)));
            if Prng.int rng 6 = 0 then Rts.Item.Punct [ (0, Rts.Value.Int !ts) ]
            else Rts.Item.Tuple [| Rts.Value.Int !ts; Rts.Value.Int i; Rts.Value.Int j |])
      in
      let inputs = Array.init n_inputs mk in
      let merge =
        Rts.Merge_op.make
          ~forward:[ (2, Rts.Order_prop.Asc) ]
          { Rts.Merge_op.n_inputs; ordered_idx = 0; direction = Rts.Order_prop.Asc }
      in
      let op = Rts.Merge_op.op merge in
      let out = ref [] in
      let emit i = out := i :: !out in
      let queues = Array.map (fun l -> ref l) inputs in
      let rec drive () =
        let live =
          List.filter (fun i -> !(queues.(i)) <> []) (List.init n_inputs Fun.id)
        in
        match live with
        | [] -> ()
        | _ ->
            let i = List.nth live (Prng.int rng (List.length live)) in
            (match !(queues.(i)) with
            | it :: rest ->
                queues.(i) := rest;
                op.Rts.Operator.on_item ~input:i it ~emit
            | [] -> ());
            drive ()
      in
      drive ();
      for i = 0 to n_inputs - 1 do
        op.Rts.Operator.on_item ~input:i Rts.Item.Eof ~emit
      done;
      let emitted = List.rev !out in
      let tuple_key = function
        | Rts.Item.Tuple [| Rts.Value.Int a; Rts.Value.Int b; Rts.Value.Int c |] ->
            Some (a, b, c)
        | _ -> None
      in
      let sent =
        List.sort compare
          (List.concat_map (fun l -> List.filter_map tuple_key l)
             (Array.to_list inputs))
      in
      let got_tuples = List.filter_map tuple_key emitted in
      let sorted =
        let rec go = function
          | (a, _, _) :: ((b, _, _) :: _ as rest) -> a <= b && go rest
          | _ -> true
        in
        go got_tuples
      in
      let conserved = List.sort compare got_tuples = sent in
      (* firm bounds: once a punct publishes a field bound, no later
         tuple may undershoot it *)
      let firm =
        let lo = Array.make 3 min_int in
        List.for_all
          (function
            | Rts.Item.Punct fields ->
                List.iter
                  (fun (idx, v) ->
                    match v with
                    | Rts.Value.Int b when idx < 3 -> lo.(idx) <- max lo.(idx) b
                    | _ -> ())
                  fields;
                true
            | Rts.Item.Tuple [| Rts.Value.Int a; _; Rts.Value.Int c |] ->
                a >= lo.(0) && c >= lo.(2)
            | _ -> true)
          emitted
      in
      if not (sorted && conserved && firm) then
        QCheck.Test.fail_reportf "inputs=%d sorted=%b conserved=%b firm=%b" n_inputs
          sorted conserved firm
      else true)

(* --------------------------- certifier algebra -------------------------- *)

(* Random aggregation plans over the certifier, checking the laws the
   engine's admission and auto-sizing rest on:

   - finiteness is a property of the logical plan, not the physical
     rewrite: a plan with an epoch key certifies finite and one without
     certifies unbounded, at every LFTA table size (the LFTA/HFTA split
     moves state around but cannot create or destroy a bound);
   - sharding is monotone: each replica of a sharded chain carries a
     bound no larger than the whole unsharded query's, and sharding
     never flips the finiteness verdict. *)

let certify_laws =
  let module Certify = Gsql.Certify in
  let module Split = Gsql.Split in
  qtest ~count:200 "certifier: split-invariant finiteness, shard-monotone bounds"
    QCheck.small_int (fun seed ->
      let rng = Prng.create ((seed * 7919) + 13) in
      let epoch = Prng.bool rng in
      let bucket = [| 1; 10; 60 |].(Prng.int rng 3) in
      let extra =
        [| []; [ "srcip" ]; [ "destport" ]; [ "srcip"; "destport" ] |].(Prng.int rng 4)
      in
      let aggs =
        [| "count(*) as c"; "count(*) as c, sum(len) as b"; "sum(len) as b" |].(Prng.int rng 3)
      in
      let keys =
        (if epoch then [ Printf.sprintf "time/%d as tb" bucket ] else [])
        @ List.map (fun k -> k ^ " as k_" ^ k) extra
      in
      let keys = if keys = [] then [ "srcip as k_srcip" ] else keys in
      let select_keys = String.concat ", " (List.map (fun k -> List.nth (String.split_on_char ' ' k) 2) keys) in
      let text =
        Printf.sprintf "DEFINE { query_name fz; } SELECT %s, %s FROM eth0.tcp GROUP BY %s"
          select_keys aggs (String.concat ", " keys)
      in
      let compile ~bits =
        (* fresh catalog per compile: compiling registers the query's
           output schema, and a re-registration would be a false failure *)
        let catalog = Gigascope.Engine.catalog (Gigascope.Engine.create ()) in
        match Gsql.Compile.compile_program catalog ~lfta_table_bits:bits text with
        | Error e -> QCheck.Test.fail_reportf "compile %S: %s" text e
        | Ok [ c ] -> c.Gsql.Compile.split
        | Ok _ -> QCheck.Test.fail_reportf "expected one compiled query for %S" text
      in
      let expect_finite = epoch in
      (* law 1: finiteness across LFTA table sizes (different physical
         splits of the same logical plan) *)
      let splits = List.map (fun bits -> (bits, compile ~bits)) [ 6; 12 ] in
      List.iter
        (fun (bits, s) ->
          let cert = Certify.certify s in
          if Certify.finite cert <> expect_finite then
            QCheck.Test.fail_reportf "bits=%d: finite=%b, epoch=%b for %S" bits
              (Certify.finite cert) epoch text)
        splits;
      (* law 2: sharding preserves the verdict and each replica's bound
         stays within the unsharded query bound *)
      let base = List.assoc 12 splits in
      let base_cert = Certify.certify base in
      let shards = 2 + Prng.int rng 3 in
      (match Split.shard ~shards base with
      | Error _ -> () (* unshardable plans install unchanged *)
      | Ok (sharded, _info) ->
          let sh_cert = Certify.certify sharded in
          if Certify.finite sh_cert <> Certify.finite base_cert then
            QCheck.Test.fail_reportf "shards=%d flipped finiteness for %S" shards text;
          match Certify.total_estimate base_cert with
          | None -> ()
          | Some total ->
              List.iter
                (fun (p : Split.phys_node) ->
                  match p.Split.pshard with
                  | None -> ()
                  | Some _ -> (
                      match Certify.node_bound sh_cert p.Split.pname with
                      | None ->
                          QCheck.Test.fail_reportf "replica %s of %S lost its bound"
                            p.Split.pname text
                      | Some b ->
                          if b > total +. 1e-9 then
                            QCheck.Test.fail_reportf
                              "replica %s bound %.0f > unsharded query bound %.0f for %S"
                              p.Split.pname b total text))
                sharded.Split.phys);
      true)

(* full path: fuzzed pcap bytes through the engine *)
let engine_survives_fuzzed_pcap =
  qtest ~count:50 "engine runs over a capture of mutated packets" QCheck.small_int (fun seed ->
      let rng = Prng.create (seed + 99) in
      let packets =
        List.init 50 (fun i ->
            let pkt =
              Packet.tcp ~ts:(float_of_int i /. 50.0)
                ~src:(Prng.int rng 0xffffff) ~dst:(Prng.int rng 0xffffff)
                ~src_port:(Prng.int rng 65536) ~dst_port:(Prng.int rng 65536)
                ~payload:(random_bytes rng (Prng.int rng 64))
                ()
            in
            let wire = Packet.encode pkt in
            if Prng.int rng 3 = 0 then begin
              let j = Prng.int rng (Bytes.length wire) in
              Bytes.set wire j (Char.chr (Prng.int rng 256))
            end;
            (float_of_int i /. 50.0, wire))
      in
      (* decode what survives, as a capture interface would *)
      let decoded =
        List.filter_map
          (fun (ts, wire) -> Result.to_option (Packet.decode ~ts wire))
          packets
      in
      let engine = Gigascope.Engine.create () in
      Gigascope.Engine.add_packet_list_interface engine ~name:"eth0" decoded;
      match
        Gigascope.Engine.install_query engine ~name:"q"
          "SELECT tb, count(*) as c FROM eth0.tcp GROUP BY time/1 as tb"
      with
      | Error _ -> false
      | Ok _ -> ( match Gigascope.Engine.run engine () with Ok _ -> true | Error _ -> false))

let () =
  Alcotest.run "fuzz"
    [
      ( "packets",
        [
          decode_never_raises;
          decode_mutated_never_raises;
          pcap_decode_never_raises;
          netflow_decode_never_raises;
        ] );
      ( "queries",
        [compiler_never_raises_on_token_soup; compiler_never_raises_on_random_chars] );
      ("regex", [regex_compile_never_raises_unexpectedly; regex_match_never_raises]);
      ("tables", [lpm_table_never_raises]);
      ("xchannel", [xchannel_fuzz]);
      ("batch-differential", batch_differential);
      ("shard-differential", [shard_count_differential; merge_reorder_fuzz]);
      ("certifier", [certify_laws]);
      ("end-to-end", [engine_survives_fuzzed_pcap]);
    ]
