(* The sharded-execution determinism harness.

   Engine.create ~shards:N replicates every eligible LFTA chain N ways
   behind a source-side partitioner and reunifies the replicas through
   an order-preserving merge. The claim under test — the property that
   makes sharding deployable at all — is that the subscriber output of
   every query is byte-identical to the unsharded engine's: not
   multiset-equal, identical in order, for every workload, shard count,
   batch size and domain count, separately and combined.

   The matrix: every differential workload (test/workloads.ml) × three
   generator seeds × shards {2,4} × batch {1,64} × single-threaded and
   multi-domain. Below it, the pieces in isolation: the hash
   partitioner's algebra, Agg_fn.merge_partial's split/merge laws for
   every aggregate kind, the rts.shard.* metrics, the splitter's
   refusal reasons, and the GIGASCOPE_SHARDS warn-and-degrade knob. *)

module E = Gigascope.Engine
module Rts = Gigascope_rts
module Gsql = Gigascope_gsql
module Value = Rts.Value
module Agg = Rts.Agg_fn
module Metrics = Gigascope_obs.Metrics

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

open Workloads

(* ------------------------- the differential ----------------------------- *)

(* (shards, domains, batch): each knob alone, then stacked. The
   single-threaded shard runs catch partitioner/merge bugs; the
   multi-domain runs catch cross-domain ones (each shard chain lands on
   its own domain); batching catches batch-seal interactions with the
   appended __seq punctuation. *)
let configs_full = [ (2, 1, 1); (4, 1, 1); (2, 1, 64); (4, 1, 64); (2, 2, 1); (4, 2, 64); (4, 5, 64) ]
let configs_quick = [ (2, 1, 1); (4, 2, 64) ]

let test_differential w () =
  List.iter
    (fun (seed, configs) ->
      let baseline, _ = exec w ~seed ~parallel:1 ~batch:1 ~shards:1 () in
      List.iter
        (fun (shards, domains, batch) ->
          let got, _ = exec w ~seed ~parallel:domains ~batch ~shards () in
          assert_same
            ~label:
              (Printf.sprintf "%s seed=%d shards=%d domains=%d batch=%d" w.wname seed
                 shards domains batch)
            baseline got)
        configs)
    [ (42, configs_full); (11, configs_quick); (77, configs_quick) ]

(* ------------------------- the hash partitioner ------------------------- *)

(* The owner computation the splitter embeds in each replica's
   predicate, verbatim. *)
let owner ~shards key = Value.hash_array key land max_int mod shards

let test_partitioner_stability () =
  let keys =
    [
      [| Value.Int 0 |];
      [| Value.Int max_int |];
      [| Value.Int min_int |];
      [| Value.Ip 0xC0A80101; Value.Int 80 |];
      [| Value.Str "alpha"; Value.Null |];
      [| Value.Float 1.5; Value.Bool true |];
    ]
  in
  List.iter
    (fun key ->
      List.iter
        (fun shards ->
          let first = owner ~shards key in
          check Alcotest.bool "owner in range" true (first >= 0 && first < shards);
          for _ = 1 to 10 do
            (* same key, same owner, every evaluation: a key that migrates
               between shards splits its group *)
            check Alcotest.int "owner stable" first (owner ~shards key)
          done)
        [ 2; 3; 4; 7 ])
    keys

let test_partitioner_coverage () =
  (* every key has exactly one owner: summing each shard's acceptance
     over all shards covers each key once, no drops, no duplicates *)
  let shards = 4 in
  for i = 0 to 999 do
    let key = [| Value.Int (i * 7919); Value.Ip (i * 104729) |] in
    let owners = List.init shards (fun me -> if owner ~shards key = me then 1 else 0) in
    check Alcotest.int
      (Printf.sprintf "key %d owned exactly once" i)
      1
      (List.fold_left ( + ) 0 owners)
  done

let test_partitioner_distribution () =
  (* distinct keys spread: no shard starves or hoards (loose 10%–50%
     bounds on a 4-way split of 1000 uniform keys) *)
  let shards = 4 in
  let counts = Array.make shards 0 in
  for i = 0 to 999 do
    let key = [| Value.Int i; Value.Str (string_of_int (i * 31)) |] in
    let o = owner ~shards key in
    counts.(o) <- counts.(o) + 1
  done;
  Array.iteri
    (fun i c ->
      check Alcotest.bool (Printf.sprintf "shard %d got %d of 1000" i c) true
        (c >= 100 && c <= 500))
    counts;
  (* a skewed stream — one hot key — lands on exactly one shard: the
     partitioner cannot split a group, that is the point (the skew gauge
     exists to make the resulting imbalance visible) *)
  let hot = [| Value.Ip 0x0A000001; Value.Int 443 |] in
  let hot_owner = owner ~shards hot in
  for _ = 1 to 100 do
    check Alcotest.int "hot key pinned" hot_owner (owner ~shards hot)
  done

(* ------------------------ merge_partial's laws -------------------------- *)

let value_t = Alcotest.testable Value.pp Value.equal

(* Splitting a value sequence across accumulators and merging must be
   indistinguishable from stepping the whole sequence into one — for
   every kind, every split point (including empty sides), Nulls
   skipped. Floats chosen dyadic so even Sum/Avg are exact here. *)
let test_merge_partial_laws () =
  let int_vs = List.map (fun i -> Value.Int i) [ 5; -3; 12; 0; 7; -3; 99; 1 ] in
  let float_vs =
    List.map (fun f -> Value.Float f) [ 0.5; -1.25; 3.0; 0.0; 2.75; 10.5 ]
  in
  let with_nulls = [ Value.Null; Value.Int 4; Value.Null; Value.Int (-9); Value.Int 4 ] in
  let sequences = [ ("ints", int_vs); ("floats", float_vs); ("nulls", with_nulls); ("empty", []) ] in
  let feed kind acc vs =
    List.iter (fun v -> Agg.step acc (if kind = Agg.Count then None else Some v)) vs
  in
  List.iter
    (fun kind ->
      List.iter
        (fun (vname, vs) ->
          let whole = Agg.init kind in
          feed kind whole vs;
          let expected = Agg.final whole in
          let n = List.length vs in
          for cut = 0 to n do
            let left = List.filteri (fun i _ -> i < cut) vs in
            let right = List.filteri (fun i _ -> i >= cut) vs in
            let a = Agg.init kind and b = Agg.init kind in
            feed kind a left;
            feed kind b right;
            Agg.merge_partial a b;
            check value_t
              (Printf.sprintf "%s %s split@%d" (Agg.kind_to_string kind) vname cut)
              expected (Agg.final a)
          done;
          (* element-wise: N singleton accumulators merged in order *)
          let acc = Agg.init kind in
          List.iter
            (fun v ->
              let one = Agg.init kind in
              feed kind one [ v ];
              Agg.merge_partial acc one)
            vs;
          check value_t
            (Printf.sprintf "%s %s element-wise" (Agg.kind_to_string kind) vname)
            expected (Agg.final acc))
        sequences)
    [ Agg.Count; Agg.Sum; Agg.Min; Agg.Max; Agg.Avg ]

(* ------------------------- shard observability -------------------------- *)

let test_shard_metrics () =
  let w = List.find (fun w -> w.wname = "subnet_volume") workloads in
  let engine = E.create ~shards:4 () in
  check Alcotest.int "shards accessor" 4 (E.shards engine);
  w.setup ~seed:42 engine;
  ignore (Result.get_ok (E.install_program engine (w.program ())));
  (match E.run engine () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("run: " ^ e));
  let snap = E.metrics_snapshot engine in
  let counter name =
    match Metrics.find snap name with
    | Some (Metrics.Counter n) -> n
    | _ -> Alcotest.failf "missing counter %s" name
  in
  let per_shard =
    List.init 4 (fun i -> counter (Printf.sprintf "rts.shard.subnet_volume.%d.tuples" i))
  in
  check Alcotest.bool "shards saw tuples" true (List.fold_left ( + ) 0 per_shard > 0);
  (match Metrics.find snap "rts.shard.subnet_volume.skew" with
  | Some (Metrics.Gauge g) ->
      (* max/mean ratio: >= 1 by construction, small for hash-spread keys *)
      check Alcotest.bool "skew gauge sane" true (g >= 1.0 && g <= 4.0)
  | _ -> Alcotest.fail "missing skew gauge");
  (match Metrics.find snap "rts.shard.subnet_volume.reunify.buffered" with
  | Some (Metrics.Gauge _) -> ()
  | _ -> Alcotest.fail "missing reunify merge metrics");
  let report = E.shard_report engine in
  check Alcotest.bool "report names the query" true (contains report "subnet_volume");
  check Alcotest.bool "report names the mode" true (contains report "hash-partitioned");
  check Alcotest.bool "report in trace_report" true
    (contains (E.trace_report engine) "hash-partitioned")

(* ------------------------ splitter-level modes -------------------------- *)

(* A pure select has no group key: the splitter must fall back to
   round-robin with a full reunification merge AND say so in the
   report — silently choosing round-robin would hide that the merge
   re-serializes the whole stream. *)
let test_keyless_round_robin_reported () =
  let w = List.find (fun w -> w.wname = "tcpdest") workloads in
  let engine = E.create ~shards:2 () in
  w.setup ~seed:42 engine;
  ignore (Result.get_ok (E.install_program engine (w.program ())));
  let report = E.shard_report engine in
  check Alcotest.bool "tcpdest0 round-robin flagged" true
    (contains report "tcpdest0: 2 replicas, keyless plan: round-robin");
  (* the replicas and the reunification merge are real registered nodes *)
  let mgr = E.manager engine in
  List.iter
    (fun n ->
      check Alcotest.bool (n ^ " registered") true (Rts.Manager.find mgr n <> None))
    [ "_shard_tcpdest0_0"; "_shard_tcpdest0_1"; "_shard_tcpdest0"; "tcpdest0" ]

(* Joins (and aggregations over already-derived streams) cannot shard;
   the engine installs them unchanged and the report says why. *)
let test_unshardable_reported () =
  let w = List.find (fun w -> w.wname = "ordered_join") workloads in
  let engine = E.create ~shards:2 () in
  w.setup ~seed:42 engine;
  ignore (Result.get_ok (E.install_program engine (w.program ())));
  let report = E.shard_report engine in
  check Alcotest.bool "join refusal reported" true (contains report "matched: not sharded");
  (* and the unsharded engine reports nothing at all *)
  check Alcotest.string "unsharded report empty" "" (E.shard_report (E.create ()))

(* ----------------------- the GIGASCOPE_SHARDS knob ---------------------- *)

let with_env name value body =
  let saved = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect ~finally:(fun () -> Unix.putenv name (Option.value saved ~default:"")) body

(* Same warn-and-degrade contract as GIGASCOPE_PARALLEL/BATCH: a
   malformed value must not be silently honoured as something else, and
   must not take the engine down either. *)
let test_env_knob () =
  with_env "GIGASCOPE_SHARDS" "banana" (fun () ->
      check Alcotest.int "garbage degrades to 1" 1 (E.shards (E.create ())));
  with_env "GIGASCOPE_SHARDS" "-3" (fun () ->
      check Alcotest.int "negative degrades to 1" 1 (E.shards (E.create ())));
  with_env "GIGASCOPE_SHARDS" "0" (fun () ->
      check Alcotest.int "zero degrades to 1" 1 (E.shards (E.create ())));
  with_env "GIGASCOPE_SHARDS" "" (fun () ->
      check Alcotest.int "empty means unset" 1 (E.shards (E.create ())));
  with_env "GIGASCOPE_SHARDS" "3" (fun () ->
      check Alcotest.int "clean value honoured" 3 (E.shards (E.create ()));
      check Alcotest.int "explicit arg overrides env" 2 (E.shards (E.create ~shards:2 ())))

(* run ~shards is a guard: sharding is fixed at create time, so a
   disagreeing value is an error, never a silent no-op *)
let test_run_shards_guard () =
  let engine = E.create ~shards:2 () in
  (match E.run engine ~shards:4 () with
  | Ok _ -> Alcotest.fail "run ~shards:4 on a 2-shard engine accepted"
  | Error e -> check Alcotest.bool "error explains" true (contains e "created with shards=2"));
  match E.run engine ~shards:2 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("agreeing run ~shards rejected: " ^ e)

(* -------------------------------- suite --------------------------------- *)

let () =
  let wcase name f = List.map (fun w -> Alcotest.test_case (w.wname ^ name) `Slow (f w)) workloads in
  Alcotest.run "shard"
    [
      ("differential", wcase " shards diff" test_differential);
      ( "partitioner",
        [
          Alcotest.test_case "stability" `Quick test_partitioner_stability;
          Alcotest.test_case "coverage" `Quick test_partitioner_coverage;
          Alcotest.test_case "distribution" `Quick test_partitioner_distribution;
        ] );
      ("merge_partial", [ Alcotest.test_case "laws" `Quick test_merge_partial_laws ]);
      ( "observability",
        [
          Alcotest.test_case "metrics" `Quick test_shard_metrics;
          Alcotest.test_case "keyless round-robin" `Quick test_keyless_round_robin_reported;
          Alcotest.test_case "unshardable" `Quick test_unshardable_reported;
        ] );
      ( "knobs",
        [
          Alcotest.test_case "env" `Quick test_env_knob;
          Alcotest.test_case "run guard" `Quick test_run_shards_guard;
        ] );
    ]
