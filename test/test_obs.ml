(* Tests for the observability layer: registry semantics, snapshots and
   deltas, histogram percentiles, JSON/Prometheus exposition, and an
   end-to-end check that the runtime's own metrics agree with what a
   query actually did to a known packet list. *)

module Metrics = Gigascope_obs.Metrics
module E = Gigascope.Engine
module Rts = Gigascope_rts
module Packet = Gigascope_packet.Packet
module Ipaddr = Gigascope_packet.Ipaddr

let check = Alcotest.check

(* ----------------------------- clock ------------------------------------ *)

(* The timing clock must be monotonic: a wall-clock step (NTP, manual
   date change) during a run must never yield a negative duration or a
   nonsense rate. Only differences of readings are meaningful. *)
let test_clock_monotonic () =
  let prev = ref (Gigascope_obs.Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Gigascope_obs.Clock.now_ns () in
    if t < !prev then
      Alcotest.failf "clock went backwards: %.0f -> %.0f" !prev t;
    prev := t
  done

let test_clock_measures_elapsed_time () =
  let t0 = Gigascope_obs.Clock.now_ns () in
  Unix.sleepf 0.05;
  let dt = Gigascope_obs.Clock.now_ns () -. t0 in
  (* a 50 ms sleep reads as at least 40 ms and at most 10 s, whatever the
     scheduler does to us *)
  check Alcotest.bool "delta in nanoseconds" true (dt >= 4e7 && dt < 1e10)

(* ----------------------------- cells ----------------------------------- *)

let test_counter_cell () =
  let c = Metrics.Counter.make () in
  check Alcotest.int "starts at zero" 0 (Metrics.Counter.get c);
  Metrics.Counter.incr c;
  Metrics.Counter.add c 41;
  check Alcotest.int "incr + add" 42 (Metrics.Counter.get c);
  Metrics.Counter.reset c;
  check Alcotest.int "reset" 0 (Metrics.Counter.get c)

let test_gauge_cell () =
  let g = Metrics.Gauge.make () in
  Metrics.Gauge.set g 2.5;
  check (Alcotest.float 1e-9) "set" 2.5 (Metrics.Gauge.get g);
  Metrics.Gauge.set_int g 7;
  check (Alcotest.float 1e-9) "set_int" 7.0 (Metrics.Gauge.get g)

let test_histogram_percentiles () =
  let h = Metrics.Histogram.make () in
  (* 1..100: exact percentiles are known *)
  for i = 1 to 100 do
    Metrics.Histogram.observe h (float_of_int i)
  done;
  let reg = Metrics.create () in
  Metrics.attach_histogram reg "h" h;
  match Metrics.find (Metrics.snapshot reg) "h" with
  | Some (Metrics.Histogram s) ->
      check Alcotest.int "count" 100 s.Metrics.h_count;
      check (Alcotest.float 1e-6) "total" 5050.0 s.Metrics.h_total;
      check (Alcotest.float 1e-6) "mean" 50.5 s.Metrics.h_mean;
      check (Alcotest.float 1e-6) "min" 1.0 s.Metrics.h_min;
      check (Alcotest.float 1e-6) "max" 100.0 s.Metrics.h_max;
      check Alcotest.bool "p50 near median" true (abs_float (s.Metrics.h_p50 -. 50.5) <= 2.0);
      check Alcotest.bool "p90 near 90" true (abs_float (s.Metrics.h_p90 -. 90.0) <= 2.0);
      check Alcotest.bool "p99 near 99" true (abs_float (s.Metrics.h_p99 -. 99.0) <= 2.0)
  | _ -> Alcotest.fail "histogram missing from snapshot"

(* --------------------------- registration ------------------------------ *)

let test_get_or_create () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "x" in
  let b = Metrics.counter reg "x" in
  Metrics.Counter.incr a;
  check Alcotest.int "same cell" 1 (Metrics.Counter.get b)

let test_kind_mismatch () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "x");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics: x is a counter, not a gauge") (fun () ->
      ignore (Metrics.gauge reg "x"))

let test_attach_duplicate () =
  let reg = Metrics.create () in
  Metrics.attach_counter reg "dup" (Metrics.Counter.make ());
  check Alcotest.bool "raises on duplicate attach" true
    (try
       Metrics.attach_counter reg "dup" (Metrics.Counter.make ());
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "even across kinds" true
    (try
       Metrics.attach_gauge reg "dup" (Metrics.Gauge.make ());
       false
     with Invalid_argument _ -> true)

let test_names_sorted_and_remove () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "b.z");
  ignore (Metrics.gauge reg "a.y");
  ignore (Metrics.counter reg "b.a");
  check Alcotest.(list string) "sorted" ["a.y"; "b.a"; "b.z"] (Metrics.names reg);
  Metrics.remove reg "b.a";
  check Alcotest.bool "removed" false (Metrics.mem reg "b.a")

let test_gauge_fn_polled () =
  let reg = Metrics.create () in
  let depth = ref 3 in
  Metrics.attach_gauge_fn reg "depth" (fun () -> float_of_int !depth);
  (match Metrics.find (Metrics.snapshot reg) "depth" with
  | Some (Metrics.Gauge v) -> check (Alcotest.float 1e-9) "first read" 3.0 v
  | _ -> Alcotest.fail "gauge_fn missing");
  depth := 9;
  match Metrics.find (Metrics.snapshot reg) "depth" with
  | Some (Metrics.Gauge v) -> check (Alcotest.float 1e-9) "polled at snapshot" 9.0 v
  | _ -> Alcotest.fail "gauge_fn missing"

(* --------------------------- snapshot/delta ---------------------------- *)

let test_snapshot_delta () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c" in
  let g = Metrics.gauge reg "g" in
  Metrics.Counter.add c 10;
  Metrics.Gauge.set g 5.0;
  let d1 = Metrics.delta reg in
  (match Metrics.find d1 "c" with
  | Some (Metrics.Counter n) -> check Alcotest.int "first delta = absolute" 10 n
  | _ -> Alcotest.fail "c missing");
  Metrics.Counter.add c 7;
  Metrics.Gauge.set g 2.0;
  let d2 = Metrics.delta reg in
  (match Metrics.find d2 "c" with
  | Some (Metrics.Counter n) -> check Alcotest.int "counter differenced" 7 n
  | _ -> Alcotest.fail "c missing");
  match Metrics.find d2 "g" with
  | Some (Metrics.Gauge v) -> check (Alcotest.float 1e-9) "gauge absolute" 2.0 v
  | _ -> Alcotest.fail "g missing"

let test_diff_histogram () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "h" in
  Metrics.Histogram.observe h 10.0;
  Metrics.Histogram.observe h 20.0;
  let before = Metrics.snapshot reg in
  Metrics.Histogram.observe h 30.0;
  let after = Metrics.snapshot reg in
  match Metrics.find (Metrics.diff ~before ~after) "h" with
  | Some (Metrics.Histogram s) ->
      check Alcotest.int "count differenced" 1 s.Metrics.h_count;
      check (Alcotest.float 1e-6) "total differenced" 30.0 s.Metrics.h_total;
      (* shape comes from [after]: max over all 3 observations *)
      check (Alcotest.float 1e-6) "shape absolute" 30.0 s.Metrics.h_max
  | _ -> Alcotest.fail "h missing"

let test_diff_new_name_passthrough () =
  let reg = Metrics.create () in
  let before = Metrics.snapshot reg in
  Metrics.Counter.add (Metrics.counter reg "late") 4;
  let after = Metrics.snapshot reg in
  match Metrics.find (Metrics.diff ~before ~after) "late" with
  | Some (Metrics.Counter n) -> check Alcotest.int "new name passes through" 4 n
  | _ -> Alcotest.fail "late missing"

(* --------------------------- exposition -------------------------------- *)

let full_registry () =
  let reg = Metrics.create () in
  Metrics.Counter.add (Metrics.counter reg "rts.node.q.tuples_in") 12345;
  Metrics.Gauge.set (Metrics.gauge reg "rts.chan.a->b.depth") 3.25;
  let h = Metrics.histogram reg "rts.node.q.service_ns" in
  List.iter (Metrics.Histogram.observe h) [1.0; 2.0; 4.0; 8.0; 16.0];
  reg

let test_json_roundtrip () =
  let snap = Metrics.snapshot (full_registry ()) in
  match Metrics.of_json (Metrics.to_json snap) with
  | Error e -> Alcotest.fail ("of_json: " ^ e)
  | Ok back ->
      check Alcotest.int "same length" (List.length snap) (List.length back);
      List.iter2
        (fun (n1, v1) (n2, v2) ->
          check Alcotest.string "name" n1 n2;
          match (v1, v2) with
          | Metrics.Counter a, Metrics.Counter b -> check Alcotest.int "counter" a b
          | Metrics.Gauge a, Metrics.Gauge b -> check (Alcotest.float 1e-12) "gauge" a b
          | Metrics.Histogram a, Metrics.Histogram b ->
              check Alcotest.int "h.count" a.Metrics.h_count b.Metrics.h_count;
              check (Alcotest.float 1e-12) "h.total" a.Metrics.h_total b.Metrics.h_total;
              check (Alcotest.float 1e-12) "h.p99" a.Metrics.h_p99 b.Metrics.h_p99
          | _ -> Alcotest.fail ("kind mismatch at " ^ n1))
        snap back

let test_json_rejects_garbage () =
  check Alcotest.bool "garbage rejected" true (Result.is_error (Metrics.of_json "not json"));
  check Alcotest.bool "truncated rejected" true
    (Result.is_error (Metrics.of_json {|{"x": {"type": "counter", |}))

(* A strict exposition-format checker. Every line must parse as a HELP
   comment, a TYPE comment, or a sample; metric names must be legal;
   HELP precedes TYPE, TYPE precedes its family's samples, neither
   repeats; label blocks and sample values must parse. This is what a
   real scraper enforces — substring spot-checks alone would accept an
   exposition Prometheus rejects. *)
let check_prometheus_conformance text =
  let is_name_start c = match c with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false in
  let is_name_char c = is_name_start c || match c with '0' .. '9' -> true | _ -> false in
  let legal_name n = n <> "" && is_name_start n.[0] && String.for_all is_name_char n in
  let helped = Hashtbl.create 16 and typed = Hashtbl.create 16 in
  let fail line msg = Alcotest.failf "prometheus conformance: %s in %S" msg line in
  let starts_with p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  List.iter
    (fun line ->
      if line = "" then () (* the trailing newline *)
      else if starts_with "# HELP " line then begin
        let rest = String.sub line 7 (String.length line - 7) in
        let name =
          match String.index_opt rest ' ' with Some i -> String.sub rest 0 i | None -> rest
        in
        if not (legal_name name) then fail line "illegal name in HELP";
        if Hashtbl.mem helped name then fail line "duplicate HELP";
        if Hashtbl.mem typed name then fail line "HELP after TYPE";
        Hashtbl.replace helped name ()
      end
      else if starts_with "# TYPE " line then begin
        let rest = String.sub line 7 (String.length line - 7) in
        match String.split_on_char ' ' rest with
        | [ name; ty ] ->
            if not (legal_name name) then fail line "illegal name in TYPE";
            if not (List.mem ty [ "counter"; "gauge"; "summary"; "histogram"; "untyped" ]) then
              fail line "unknown metric type";
            if Hashtbl.mem typed name then fail line "duplicate TYPE";
            Hashtbl.replace typed name ()
        | _ -> fail line "malformed TYPE line"
      end
      else if line.[0] = '#' then fail line "unrecognized comment"
      else begin
        (* sample: name[{label="value",...}] value *)
        let n = String.length line in
        let i = ref 0 in
        while !i < n && is_name_char line.[!i] do
          incr i
        done;
        let name = String.sub line 0 !i in
        if not (legal_name name) then fail line "illegal sample name";
        if !i < n && line.[!i] = '{' then begin
          incr i;
          let closed = ref false in
          while not !closed do
            let st = !i in
            while !i < n && is_name_char line.[!i] do
              incr i
            done;
            if !i = st then fail line "empty label name";
            if !i >= n || line.[!i] <> '=' then fail line "label missing '='";
            incr i;
            if !i >= n || line.[!i] <> '"' then fail line "label value not quoted";
            incr i;
            let value_done = ref false in
            while not !value_done do
              if !i >= n then fail line "unterminated label value"
              else
                match line.[!i] with
                | '"' ->
                    value_done := true;
                    incr i
                | '\\' ->
                    if !i + 1 >= n then fail line "dangling escape";
                    (match line.[!i + 1] with
                    | '\\' | '"' | 'n' -> i := !i + 2
                    | _ -> fail line "bad label escape")
                | _ -> incr i
            done;
            if !i < n && line.[!i] = ',' then incr i
            else if !i < n && line.[!i] = '}' then begin
              incr i;
              closed := true
            end
            else fail line "malformed label block"
          done
        end;
        if !i >= n || line.[!i] <> ' ' then fail line "missing value separator";
        let value = String.sub line (!i + 1) (n - !i - 1) in
        (match float_of_string_opt value with
        | Some _ -> ()
        | None -> if not (List.mem value [ "NaN"; "+Inf"; "-Inf" ]) then fail line "unparsable value");
        let family =
          let strip suffix s =
            let ls = String.length suffix and l = String.length s in
            if l > ls && String.sub s (l - ls) ls = suffix then Some (String.sub s 0 (l - ls))
            else None
          in
          if Hashtbl.mem typed name then name
          else
            match strip "_sum" name with
            | Some b when Hashtbl.mem typed b -> b
            | _ -> (
                match strip "_count" name with
                | Some b when Hashtbl.mem typed b -> b
                | _ -> fail line "sample precedes its TYPE")
        in
        if not (Hashtbl.mem helped family) then fail line "family has no HELP"
      end)
    (String.split_on_char '\n' text)

let test_prometheus_format () =
  let text = Metrics.to_prometheus (Metrics.snapshot (full_registry ())) in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "counter line" true (has "rts_node_q_tuples_in 12345");
  check Alcotest.bool "gauge sanitized" true (has "rts_chan_a__b_depth 3.25");
  check Alcotest.bool "summary count" true (has "rts_node_q_service_ns_count 5");
  check Alcotest.bool "summary sum" true (has "rts_node_q_service_ns_sum 31");
  check Alcotest.bool "quantile label" true (has "quantile=\"0.99\"");
  check Alcotest.bool "help line" true (has "# HELP rts_node_q_tuples_in ");
  check_prometheus_conformance text

(* Hostile registry names: whatever the runtime registers (channel
   names contain "->", user query names are free-form), the exposition
   must stay parseable by a strict scraper. *)
let test_prometheus_conformance_nasty () =
  let reg = Metrics.create () in
  Metrics.Counter.add (Metrics.counter reg "rts.chan.tcpdest0->portcounts.drops") 7;
  Metrics.Counter.add (Metrics.counter reg "weird metric name #1!") 1;
  Metrics.Counter.add (Metrics.counter reg "9starts.with.a-digit") 2;
  Metrics.Gauge.set (Metrics.gauge reg {|quotes"and\backslashes|}) 1.5;
  let h = Metrics.histogram reg "net.latency.spaced out query" in
  List.iter (Metrics.Histogram.observe h) [ 10.0; 20.0; 30.0 ];
  let text = Metrics.to_prometheus (Metrics.snapshot reg) in
  check_prometheus_conformance text;
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "arrow sanitized" true (has "rts_chan_tcpdest0__portcounts_drops 7");
  check Alcotest.bool "leading digit prefixed" true (has "_9starts_with_a_digit 2")

(* ------------------------- runtime integration ------------------------- *)

(* Known traffic through a real query: the registry must agree with the
   ground truth.  4 TCP packets, 3 to port 80 -> select passes 3, rejects 1. *)
let test_engine_metrics_ground_truth () =
  let ip = Ipaddr.of_string in
  let pkt ts dport =
    Packet.tcp ~ts ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:1234 ~dst_port:dport
      ~payload:(Bytes.of_string "x") ()
  in
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    [pkt 1.0 80; pkt 1.1 443; pkt 1.2 80; pkt 1.3 80];
  (match
     E.install_query engine ~name:"web"
       {| SELECT time, srcip FROM eth0.tcp WHERE protocol = 6 and destport = 80 |}
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let rows = ref 0 in
  Result.get_ok (E.on_tuple engine "web" (fun _ -> incr rows));
  (match E.run engine () with Ok _ -> () | Error e -> Alcotest.fail e);
  let snap = E.metrics_snapshot engine in
  let counter name =
    match Metrics.find snap name with
    | Some (Metrics.Counter n) -> n
    | _ -> Alcotest.fail ("missing counter " ^ name)
  in
  check Alcotest.int "callback saw the passes" 3 !rows;
  check Alcotest.int "node tuples_in" 4 (counter "rts.node.web.tuples_in");
  check Alcotest.int "node tuples_out" 3 (counter "rts.node.web.tuples_out");
  check Alcotest.int "select rejected" 1 (counter "rts.node.web.select.rejected");
  check Alcotest.int "channel carried all packets" 4 (counter "rts.chan.eth0.tcp->web.tuples_in");
  check Alcotest.int "no drops" 0 (counter "rts.chan.eth0.tcp->web.drops");
  check Alcotest.int "source emitted" 4 (counter "rts.node.eth0.tcp.tuples_out");
  check Alcotest.bool "scheduler rounds counted" true (counter "rts.scheduler.rounds" > 0)

(* LFTA aggregate: evictions + emitted appear and account for the input. *)
let test_engine_lfta_metrics () =
  let ip = Ipaddr.of_string in
  let pkt ts dport =
    Packet.tcp ~ts ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:1234 ~dst_port:dport
      ~payload:(Bytes.of_string "x") ()
  in
  (* tiny LFTA table (4 slots) + 64 distinct ports: collisions guaranteed *)
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    (List.init 64 (fun i -> pkt (1.0 +. (0.001 *. float_of_int i)) (1000 + i)));
  (match
     E.install_query engine
       {| DEFINE { query_name ports; lfta_bits 2; }
          SELECT tb, destport, count(*) as cnt
          FROM eth0.tcp WHERE ipversion = 4
          GROUP BY time/1 as tb, destport |}
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Result.get_ok (E.on_tuple engine "ports" (fun _ -> ()));
  (match E.run engine () with Ok _ -> () | Error e -> Alcotest.fail e);
  let snap = E.metrics_snapshot engine in
  let counter name =
    match Metrics.find snap name with
    | Some (Metrics.Counter n) -> n
    | _ -> Alcotest.fail ("missing counter " ^ name)
  in
  let evictions = counter "rts.node._lfta_ports.lfta.evictions" in
  let emitted = counter "rts.node._lfta_ports.lfta.emitted" in
  check Alcotest.int "lfta consumed everything" 64 (counter "rts.node._lfta_ports.tuples_in");
  check Alcotest.bool "collisions evicted" true (evictions > 0);
  check Alcotest.int "evictions are emissions" emitted (counter "rts.node._lfta_ports.tuples_out");
  check Alcotest.bool "every group left the table" true (emitted >= 60);
  match Metrics.find snap "rts.node._lfta_ports.lfta.slots" with
  | Some (Metrics.Gauge v) -> check (Alcotest.float 1e-9) "table size from lfta_bits" 4.0 v
  | _ -> Alcotest.fail "missing slots gauge"

(* Parallel run: the promoted cross-domain channels must export the full
   rts.xchannel.* instrument set, the scheduler must report its domain
   count, and all of it must survive both exposition formats. *)
let test_engine_xchannel_metrics () =
  let ip = Ipaddr.of_string in
  let pkt ts dport =
    Packet.tcp ~ts ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:1234 ~dst_port:dport
      ~payload:(Bytes.of_string "x") ()
  in
  let engine = E.create () in
  E.add_packet_list_interface engine ~name:"eth0"
    (List.init 32 (fun i -> pkt (1.0 +. (0.01 *. float_of_int i)) (1000 + (i mod 4))));
  (match
     E.install_query engine
       {| DEFINE { query_name ports; }
          SELECT tb, destport, count(*) as cnt
          FROM eth0.tcp WHERE ipversion = 4
          GROUP BY time/1 as tb, destport |}
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let rows = ref 0 in
  Result.get_ok (E.on_tuple engine "ports" (fun _ -> incr rows));
  (match E.run engine ~parallel:2 () with Ok _ -> () | Error e -> Alcotest.fail e);
  check Alcotest.bool "parallel run produced output" true (!rows > 0);
  let snap = E.metrics_snapshot engine in
  let starts_with pre s =
    String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre
  in
  let ends_with suf s =
    let sl = String.length s and fl = String.length suf in
    sl >= fl && String.sub s (sl - fl) fl = suf
  in
  let xchan = List.filter (fun (n, _) -> starts_with "rts.xchannel." n) snap in
  check Alcotest.bool "cross-domain channels registered" true (xchan <> []);
  let instrument suffix =
    check Alcotest.bool ("xchannel " ^ suffix ^ " exported") true
      (List.exists (fun (n, _) -> ends_with suffix n) xchan)
  in
  List.iter instrument [".tuples_in"; ".drops"; ".blocked_ns"; ".depth"; ".high_water"];
  check Alcotest.bool "tuples crossed the domain boundary" true
    (List.exists
       (function n, Metrics.Counter c -> ends_with ".tuples_in" n && c > 0 | _ -> false)
       xchan);
  check Alcotest.bool "backpressure never dropped tuples" true
    (List.for_all
       (function n, Metrics.Counter c -> (not (ends_with ".drops" n)) || c = 0 | _ -> true)
       xchan);
  (match Metrics.find snap "rts.scheduler.domains" with
  | Some (Metrics.Gauge v) -> check (Alcotest.float 1e-9) "domain count exported" 2.0 v
  | _ -> Alcotest.fail "missing rts.scheduler.domains gauge");
  (* exposition: the namespace survives JSON round-trip and Prometheus *)
  (match Metrics.of_json (Metrics.to_json snap) with
  | Error e -> Alcotest.fail ("of_json: " ^ e)
  | Ok back ->
      check Alcotest.bool "xchannel metrics survive JSON" true
        (List.exists (fun (n, _) -> starts_with "rts.xchannel." n) back));
  let prom = Metrics.to_prometheus snap in
  let has needle =
    let nl = String.length needle and tl = String.length prom in
    let rec go i = i + nl <= tl && (String.sub prom i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "prometheus xchannel lines" true (has "rts_xchannel_");
  check Alcotest.bool "prometheus domains gauge" true (has "rts_scheduler_domains 2")

(* End-to-end latency pipeline: with sampling armed, stamps placed at
   the source must survive the operator chain and close into the
   terminal node's rts.latency histogram; with sampling off the whole
   machinery must be invisible. Runs under whatever GIGASCOPE_BATCH /
   GIGASCOPE_PARALLEL the CI matrix sets — the stamp column rides
   batches and cross-domain hops alike. *)
let test_latency_pipeline () =
  let ip = Ipaddr.of_string in
  let pkt ts =
    Packet.tcp ~ts ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:1234 ~dst_port:80
      ~payload:(Bytes.of_string "x") ()
  in
  let n_pkts = 600 and interval = 10 in
  let run_once ~latency_sample =
    let engine = E.create () in
    E.add_packet_list_interface engine ~name:"eth0"
      (List.init n_pkts (fun i -> pkt (1.0 +. (0.001 *. float_of_int i))));
    (match
       E.install_query engine ~name:"web"
         {| SELECT time, srcip FROM eth0.tcp WHERE protocol = 6 |}
     with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    let seen = ref 0 and stamped = ref 0 in
    (match
       Rts.Manager.on_batch (E.manager engine) "web" (fun b ->
           seen := !seen + Rts.Batch.n_tuples b;
           match Rts.Batch.stamps b with
           | Some st -> Array.iter (fun s -> if s <> 0 then incr stamped) st
           | None -> ())
     with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    (match E.run engine ~latency_sample () with Ok _ -> () | Error e -> Alcotest.fail e);
    let snap = E.metrics_snapshot engine in
    let lat_count =
      match Metrics.find snap "rts.latency.web" with
      | Some (Metrics.Histogram h) -> h.Metrics.h_count
      | _ -> Alcotest.fail "missing rts.latency.web histogram"
    in
    (!seen, !stamped, lat_count, snap)
  in
  (* armed: every tuple delivered, some stamped, histogram agrees *)
  let seen, stamped, lat_count, snap = run_once ~latency_sample:interval in
  check Alcotest.int "all tuples delivered" n_pkts seen;
  check Alcotest.bool "some tuples stamped" true (stamped > 0);
  (* consume-once propagation can merge stamps that share a batch, so
     the delivered count is bounded by the source's sample count *)
  check Alcotest.bool "stamp count bounded by sample rate" true (stamped <= n_pkts / interval);
  check Alcotest.int "histogram counts the stamped tuples" stamped lat_count;
  (match Metrics.find snap "rts.latency.web" with
  | Some (Metrics.Histogram h) ->
      check Alcotest.bool "latency non-negative" true (h.Metrics.h_min >= 0.0);
      check Alcotest.bool "latency sane (under 100s)" true (h.Metrics.h_max < 1e11)
  | _ -> Alcotest.fail "missing rts.latency.web histogram");
  (match Metrics.find snap "rts.scheduler.latency_sample" with
  | Some (Metrics.Gauge v) -> check (Alcotest.float 1e-9) "interval gauge" (float_of_int interval) v
  | _ -> Alcotest.fail "missing rts.scheduler.latency_sample gauge");
  (* off (the default): no stamps anywhere, empty histogram *)
  let seen_off, stamped_off, lat_count_off, _ = run_once ~latency_sample:0 in
  check Alcotest.int "all tuples delivered (off)" n_pkts seen_off;
  check Alcotest.int "no stamps when off" 0 stamped_off;
  check Alcotest.int "empty histogram when off" 0 lat_count_off

let () =
  Alcotest.run "obs"
    [
      ( "cells",
        [
          Alcotest.test_case "counter" `Quick test_counter_cell;
          Alcotest.test_case "gauge" `Quick test_gauge_cell;
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "measures elapsed time" `Quick test_clock_measures_elapsed_time;
        ] );
      ( "registry",
        [
          Alcotest.test_case "get-or-create" `Quick test_get_or_create;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "attach duplicate" `Quick test_attach_duplicate;
          Alcotest.test_case "names sorted, remove" `Quick test_names_sorted_and_remove;
          Alcotest.test_case "polled gauge" `Quick test_gauge_fn_polled;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "delta" `Quick test_snapshot_delta;
          Alcotest.test_case "diff histogram" `Quick test_diff_histogram;
          Alcotest.test_case "diff new-name passthrough" `Quick test_diff_new_name_passthrough;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "prometheus" `Quick test_prometheus_format;
          Alcotest.test_case "prometheus conformance (hostile names)" `Quick
            test_prometheus_conformance_nasty;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "select ground truth" `Quick test_engine_metrics_ground_truth;
          Alcotest.test_case "lfta table metrics" `Quick test_engine_lfta_metrics;
          Alcotest.test_case "xchannel metrics (parallel)" `Quick test_engine_xchannel_metrics;
          Alcotest.test_case "latency pipeline" `Quick test_latency_pipeline;
        ] );
    ]
