(* The parallel-execution determinism harness.

   Every workload below runs twice over the SAME generated traffic: once
   on the single-threaded scheduler, once on N OCaml domains via
   Engine.run ~parallel. The subscriber output of every query must be
   byte-identical — not multiset-equal, identical in order — because the
   runtime's claim (Scheduler.run_parallel's doc) is that operator output
   depends only on per-channel input tuple order, never on punctuation
   timing or domain interleaving.

   The matrix: every example query from queries/ (plus an ordered-output
   join program, the hardest case) × three generator seeds × 2 and 3
   domains, then heartbeat on/off, a quantum sweep, pinned placements,
   and repeated runs of the same parallel configuration (the OS schedules
   domains differently every time — free interleaving fuzz). *)

module E = Gigascope.Engine
module Rts = Gigascope_rts
module Value = Rts.Value
module Traffic = Gigascope_traffic
module Packet = Gigascope_packet.Packet
module Ipaddr = Gigascope_packet.Ipaddr

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* The workload matrix and runner are shared with the batch-size
   differential in test_fuzz.ml. *)
open Workloads

(* every workload, >= 3 seeds, single vs 2 and 3 domains *)
let test_differential w () =
  List.iter
    (fun seed ->
      let baseline, _ = exec w ~seed ~parallel:1 () in
      List.iter
        (fun domains ->
          let got, _ = exec w ~seed ~parallel:domains () in
          assert_same
            ~label:(Printf.sprintf "%s seed=%d domains=%d" w.wname seed domains)
            baseline got)
        [2; 3])
    [11; 42; 77]

(* punctuation-timing insensitivity: heartbeats off entirely (operators
   coast to EOF), and aggressive periodic heartbeats, both on domains *)
let test_heartbeat_variants w () =
  let seed = 42 in
  let baseline, _ = exec w ~seed ~parallel:1 () in
  let no_hb, _ = exec w ~seed ~parallel:2 ~heartbeats:false () in
  assert_same ~label:(w.wname ^ " heartbeats=off") baseline no_hb;
  let periodic, _ = exec w ~seed ~parallel:2 ~heartbeat_period:25 () in
  assert_same ~label:(w.wname ^ " heartbeat_period=25") baseline periodic

(* scheduling-granularity insensitivity: the quantum changes how much of
   each stream is in flight at once, hence every interleaving *)
let test_quantum_sweep w () =
  let seed = 42 in
  let baseline, _ = exec w ~seed ~parallel:1 () in
  List.iter
    (fun q ->
      let single, _ = exec w ~seed ~parallel:1 ~quantum:q () in
      assert_same ~label:(Printf.sprintf "%s single quantum=%d" w.wname q) baseline single;
      let par, _ = exec w ~seed ~parallel:2 ~quantum:q () in
      assert_same ~label:(Printf.sprintf "%s parallel quantum=%d" w.wname q) baseline par)
    [1; 7; 512]

(* same config, repeated: the OS interleaves the domains differently on
   every run, so repetition is interleaving fuzz *)
let test_repeated_stress w () =
  let seed = 42 in
  let baseline, _ = exec w ~seed ~parallel:1 () in
  for i = 1 to 4 do
    let got, _ = exec w ~seed ~parallel:3 () in
    assert_same ~label:(Printf.sprintf "%s stress run %d" w.wname i) baseline got
  done

(* explicit pinning must only change placement, never output *)
let test_placement_pinned () =
  let w = List.find (fun w -> w.wname = "tcpdest") workloads in
  let seed = 42 in
  let baseline, _ = exec w ~seed ~parallel:1 () in
  let pinned, _ =
    exec w ~seed ~parallel:3 ~placement:[("portcounts", 2); ("tcpdest0", 1)] ()
  in
  assert_same ~label:"tcpdest pinned placement" baseline pinned;
  (* unknown node names must be rejected, not ignored *)
  let engine = E.create () in
  w.setup ~seed engine;
  ignore (Result.get_ok (E.install_program engine (w.program ())));
  match E.run engine ~parallel:2 ~placement:[("no_such_node", 1)] () with
  | Ok _ -> Alcotest.fail "placement of unknown node accepted"
  | Error e -> check Alcotest.bool "error names the node" true (contains e "no_such_node")

(* the DEFINE { placement N; } property lands on the query's HFTAs *)
let test_placement_property () =
  let engine = E.create () in
  eth0_setup ~rate:10.0 ~duration:0.2 ~seed:1 engine;
  ignore
    (Result.get_ok
       (E.install_program engine
          {| DEFINE { query_name pinned_q; placement 2; }
             SELECT tb, count(*) as c FROM eth0.tcp
             WHERE protocol = 6 GROUP BY time/1 as tb |}));
  let mgr = E.manager engine in
  (match Rts.Manager.find mgr "pinned_q" with
  | Some node ->
      check
        Alcotest.(option int)
        "hfta pinned" (Some 2) (Rts.Node.placement node)
  | None -> Alcotest.fail "pinned_q not registered");
  match Rts.Manager.find mgr "_lfta_pinned_q" with
  | Some node ->
      check Alcotest.(option int) "lfta not pinned" None (Rts.Node.placement node)
  | None -> Alcotest.fail "_lfta_pinned_q not registered"

(* --------------------- partitioning & liveness -------------------------- *)

(* A linear pipeline of HFTAs: the shape that deadlocked under naive
   round-robin placement once the chain wrapped back onto an earlier
   worker (stages 1 and 3 on worker 1, stage 2 on worker 2: each domain
   blocks mid-push into the other's full cross channel and neither can
   drain the one its peer waits on). The per-packet selects keep the
   tuple volume far above the cross-channel capacity. *)
let chain_program =
  {|
  DEFINE { query_name c1; } SELECT time, srcip FROM eth0.ip WHERE ipversion = 4
  DEFINE { query_name c2; } SELECT time, srcip FROM c1 WHERE time >= 0
  DEFINE { query_name c3; } SELECT time, srcip FROM c2 WHERE time >= 0
  DEFINE { query_name c4; } SELECT time, srcip FROM c3 WHERE time >= 0
|}

let chain_workload =
  {
    wname = "hfta_chain";
    program = (fun () -> chain_program);
    setup = eth0_setup ~rate:40.0 ~duration:1.0;
    outputs = ["c4"];
    params = [];
  }

(* the default partition is a pipeline: every cross-domain edge ascends,
   so the domain graph cannot contain the blocking cycle above *)
let test_partition_pipeline () =
  let engine = E.create () in
  chain_workload.setup ~seed:42 engine;
  ignore (Result.get_ok (E.install_program engine chain_program));
  let nodes = Rts.Manager.nodes (E.manager engine) in
  match Rts.Scheduler.partition ~domains:3 nodes with
  | Error e -> Alcotest.fail e
  | Ok parts ->
      let dom_of name =
        let d = ref (-1) in
        Array.iteri
          (fun i ns -> if List.exists (fun n -> Rts.Node.name n = name) ns then d := i)
          parts;
        !d
      in
      List.iter
        (fun n ->
          match Rts.Node.kind n with
          | Rts.Node.Source | Rts.Node.Lfta ->
              check Alcotest.int (Rts.Node.name n ^ " on domain 0") 0 (dom_of (Rts.Node.name n))
          | Rts.Node.Hfta -> ())
        nodes;
      List.iter
        (fun n ->
          let dn = dom_of (Rts.Node.name n) in
          Array.iter
            (fun (up, _) ->
              let du = dom_of (Rts.Node.name up) in
              if du <> dn then
                check Alcotest.bool
                  (Printf.sprintf "edge %s(dom %d) -> %s(dom %d) ascends" (Rts.Node.name up) du
                     (Rts.Node.name n) dn)
                  true (du < dn))
            (Rts.Node.inputs n))
        nodes;
      let used =
        List.length (List.filter (fun ns -> ns <> []) (List.tl (Array.to_list parts)))
      in
      check Alcotest.bool "chain still spans multiple workers" true (used >= 2)

(* end-to-end regression for the round-robin deadlock: a 3+-stage HFTA
   chain on 3 and 4 domains, with a small quantum so the 64-item cross
   channels fill, must complete and match the single-threaded output *)
let test_chain_no_deadlock () =
  List.iter
    (fun seed ->
      let baseline, _ = exec chain_workload ~seed ~parallel:1 ~quantum:4 () in
      List.iter
        (fun domains ->
          let got, _ = exec chain_workload ~seed ~parallel:domains ~quantum:4 () in
          assert_same
            ~label:(Printf.sprintf "hfta_chain seed=%d domains=%d" seed domains)
            baseline got)
        [2; 3; 4])
    [11; 42]

(* pinning a mid-chain stage onto the packet-path domain below its
   worker upstream closes a domain-level cycle (0 -> worker -> 0); the
   run must refuse up front, not hang *)
let test_cyclic_placement_rejected () =
  let engine = E.create () in
  chain_workload.setup ~seed:42 engine;
  ignore (Result.get_ok (E.install_program engine chain_program));
  match E.run engine ~parallel:2 ~placement:[("c3", 0)] () with
  | Ok _ -> Alcotest.fail "cyclic placement accepted"
  | Error e -> check Alcotest.bool ("error names the cycle: " ^ e) true (contains e "cycle")

(* an operator that consumes everything but never emits its EOF wedges
   the network with nothing blocked on a heartbeat; the parallel
   scheduler must report the wedge like the single-threaded one instead
   of parking domain 0 forever *)
let test_wedge_detected () =
  let module Schema = Rts.Schema in
  let module Ty = Rts.Ty in
  let module Order_prop = Rts.Order_prop in
  let run_wedged ~parallel =
    let mgr = Rts.Manager.create () in
    let schema =
      Schema.make [ { Schema.name = "x"; ty = Ty.Int; order = Order_prop.Unordered } ]
    in
    let remaining = ref 5 in
    let source =
      {
        Rts.Node.pull =
          (fun () ->
            if !remaining > 0 then begin
              decr remaining;
              Some (Rts.Item.Tuple [| Value.Int !remaining |])
            end
            else None);
        clock = (fun () -> []);
      }
    in
    ignore (Result.get_ok (Rts.Manager.add_source mgr ~name:"src" ~schema source));
    let stuck =
      {
        Rts.Operator.on_item = (fun ~input:_ _ ~emit:_ -> ());
        on_batch = None;
        blocked_input = (fun () -> None);
        buffered = (fun () -> 0);
        reset = None;
      }
    in
    ignore
      (Result.get_ok
         (Rts.Manager.add_query_node mgr ~name:"stuck" ~kind:Rts.Node.Hfta ~schema
            ~inputs:["src"] ~op:stuck));
    if parallel <= 1 then Rts.Scheduler.run mgr else Rts.Scheduler.run_parallel ~domains:parallel mgr
  in
  List.iter
    (fun parallel ->
      match run_wedged ~parallel with
      | Ok _ -> Alcotest.fail (Printf.sprintf "wedge not detected (parallel=%d)" parallel)
      | Error e ->
          check Alcotest.bool
            (Printf.sprintf "parallel=%d reports the wedge: %s" parallel e)
            true (contains e "wedged"))
    [1; 2; 3]

(* close-while-producer-blocked-in-push: the producer domain is parked
   in Xchannel.push on a full channel when the consumer tears the
   channel down. close must release the waiter and the push must report
   rejection — a hang here deadlocked shutdown paths. *)
let test_xchannel_close_releases_blocked_push () =
  let xc = Rts.Xchannel.create ~capacity:4 ~name:"xc-close-race" () in
  for i = 1 to 4 do
    check Alcotest.bool "fill accepted" true (Rts.Xchannel.push xc (Rts.Item.Tuple [| Value.Int i |]))
  done;
  let released = Atomic.make false in
  let accepted = Atomic.make true in
  let producer =
    Thread.create
      (fun () ->
        let ok = Rts.Xchannel.push xc (Rts.Item.Tuple [| Value.Int 99 |]) in
        Atomic.set accepted ok;
        Atomic.set released true)
      ()
  in
  Thread.delay 0.05;
  check Alcotest.bool "producer is parked on the full channel" false (Atomic.get released);
  Rts.Xchannel.close xc;
  Thread.join producer (* hangs forever if close does not broadcast *);
  check Alcotest.bool "blocked push rejected after close" false (Atomic.get accepted)

(* same race, injected: a fault clause closes the channel out from under
   a push mid-run; the parallel run must still terminate *)
let test_xchannel_injected_close_terminates () =
  let plan = Result.get_ok (Rts.Faults.parse "xclose=c2->c3:5") in
  Rts.Faults.install plan;
  Fun.protect ~finally:Rts.Faults.clear (fun () ->
      match
        let engine = E.create () in
        chain_workload.setup ~seed:42 engine;
        ignore (Result.get_ok (E.install_program engine chain_program));
        E.run engine ~parallel:3 ~quantum:4 ()
      with
      | Ok _ | Error _ -> () (* either verdict is fine; hanging is not *))

(* the e2-style acceptance run: several query networks at once on two
   domains — completes, zero dropped tuples, identical output *)
let test_multi_query_no_drops () =
  let program =
    String.concat "\n" [read_query "http_fraction"; read_query "subnet_volume"; read_query "tcpdest"]
  in
  let w =
    {
      wname = "multi_query";
      program = (fun () -> program);
      setup = eth0_setup ~rate:40.0 ~duration:1.0;
      outputs = ["port80"; "http80"; "subnet_volume"; "tcpdest0"; "portcounts"];
      params = [];
    }
  in
  let baseline, base_drops = exec w ~seed:42 ~parallel:1 () in
  check Alcotest.int "single-threaded drops" 0 base_drops;
  let got, drops = exec w ~seed:42 ~parallel:2 () in
  check Alcotest.int "parallel drops" 0 drops;
  assert_same ~label:"multi-query parallel=2" baseline got

let () =
  let tc name f = Alcotest.test_case name `Slow f in
  Alcotest.run "parallel"
    [
      ( "differential",
        List.map (fun w -> tc w.wname (test_differential w)) workloads );
      ( "heartbeat variants",
        List.map
          (fun n -> tc n (test_heartbeat_variants (List.find (fun w -> w.wname = n) workloads)))
          ["tcpdest"; "link_merge"; "ordered_join"] );
      ( "quantum sweep",
        List.map
          (fun n -> tc n (test_quantum_sweep (List.find (fun w -> w.wname = n) workloads)))
          ["link_merge"; "subnet_volume"] );
      ( "interleaving stress",
        List.map
          (fun n -> tc n (test_repeated_stress (List.find (fun w -> w.wname = n) workloads)))
          ["ordered_join"; "link_merge"] );
      ( "placement",
        [tc "pinned nodes" test_placement_pinned; tc "define property" test_placement_property] );
      ( "partitioning & liveness",
        [
          tc "pipeline partition is acyclic" test_partition_pipeline;
          tc "hfta chain does not deadlock" test_chain_no_deadlock;
          tc "cyclic placement rejected" test_cyclic_placement_rejected;
          tc "wedge detected, not hung" test_wedge_detected;
          tc "xchannel close releases a blocked push" test_xchannel_close_releases_blocked_push;
          tc "injected xchannel close terminates" test_xchannel_injected_close_terminates;
        ] );
      ("multi-query", [tc "two domains, no drops" test_multi_query_no_drops]);
    ]
