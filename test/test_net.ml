(* The network data plane: wire codec round-trips and fuzz (the decoder
   is total — a monitor's control port is attack surface just like its
   packet path), framed-connection reassembly, and end-to-end loopback
   through a live server: subscribers, slow-consumer policies, ingest
   publishing and cross-engine chaining. *)

module E = Gigascope.Engine
module Rts = Gigascope_rts
module Item = Rts.Item
module Value = Rts.Value
module Schema = Rts.Schema
module Ty = Rts.Ty
module Order_prop = Rts.Order_prop
module Batch = Rts.Batch
module Metrics = Gigascope_obs.Metrics
module Wire = Gigascope_net.Wire
module Conn = Gigascope_net.Conn
module Addr = Gigascope_net.Addr
module Server = Gigascope_net.Server
module Client = Gigascope_net.Client
module Sketch = Gigascope_sketch.Sketch

let qtest name gen law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 gen law)

(* ------------------------------ wire codec ------------------------------ *)

let schema_small =
  Schema.make
    [
      { Schema.name = "time"; ty = Ty.Int; order = Order_prop.Monotone Order_prop.Asc };
      { Schema.name = "srcip"; ty = Ty.Ip; order = Order_prop.Unordered };
      { Schema.name = "note"; ty = Ty.Str; order = Order_prop.Nonrepeating };
    ]

let schema_exotic =
  Schema.make
    [
      { Schema.name = "st"; ty = Ty.Float; order = Order_prop.Banded (Order_prop.Desc, 30.5) };
      {
        Schema.name = "seq";
        ty = Ty.Int;
        order = Order_prop.In_group ([ "srcip"; "destip" ], Order_prop.Asc);
      };
      { Schema.name = "ok"; ty = Ty.Bool; order = Order_prop.Strict Order_prop.Asc };
    ]

let sample_batch =
  Batch.make
    [|
      [| Value.Int 42; Value.Ip 0x0a000001; Value.Str "x" |];
      [| Value.Null; Value.Bool true; Value.Float 2.5 |];
      [| Value.Str ""; Value.Int (-7); Value.Bool false |];
    |]
    (Some (Item.Punct [ (0, Value.Int 43); (2, Value.Float 1.0) ]))

(* Populated sketch states of every kind: the opaque column type rides
   the wire via the sketch library's own versioned codec, so batches
   carrying them must round-trip byte-identically like any other value. *)
let sketch_state kind =
  let s =
    match kind with
    | `Cm -> Sketch.cm ~eps:0.01 ~delta:0.01
    | `Topk -> Sketch.topk ~k:8
    | `Hll -> Sketch.hll ~precision:10
  in
  for i = 0 to 199 do
    Sketch.add s (Printf.sprintf "key-%d" (i mod 23))
  done;
  s

let sample_msgs =
  [
    Wire.Hello { version = Wire.protocol_version; peer = "unit-test" };
    Wire.List_queries;
    Wire.Queries
      [
        { Wire.q_name = "tcpdest0"; q_kind = "lfta"; q_schema = schema_small };
        { Wire.q_name = "odd"; q_kind = "hfta"; q_schema = schema_exotic };
      ];
    Wire.Subscribe "portcounts";
    Wire.Subscribed { name = "portcounts"; schema = schema_exotic; sub_id = 7 };
    Wire.Publish "feed";
    Wire.Publish_ok { iface = "feed"; schema = schema_small };
    Wire.Batch sample_batch;
    Wire.Batch (Batch.make [||] (Some Item.Eof));
    Wire.Batch (Batch.make [||] (Some Item.Flush));
    Wire.Batch (Batch.make [| [| Value.Int 1 |] |] None);
    Wire.Err "no such query";
    Wire.Bye;
    (* failure-model control frames: heartbeat, resume, in-band loss *)
    Wire.Heartbeat;
    Wire.Resume { name = "portcounts"; sub_id = 7; token = 123456 };
    Wire.Batch (Batch.make [| [| Value.Int 1; Value.Bool true; Value.Str "x" |] |] (Some (Item.Gap 42)));
    Wire.Batch (Batch.make [||] (Some (Item.Gap (-1))));
    Wire.Batch (Batch.make [||] (Some (Item.Error "operator total crashed: injected")));
    (* v2 latency-stamp column: mixed stamped/unstamped slots, a fully
       stamped singleton, and a stamped batch sealed by a control item *)
    Wire.Batch
      (Batch.make
         ~stamps:[| 123_456_789_000; 0; 987_654_321_000 |]
         [|
           [| Value.Int 1; Value.Str "a" |];
           [| Value.Int 2; Value.Str "b" |];
           [| Value.Int 3; Value.Str "c" |];
         |]
         None);
    Wire.Batch (Batch.make ~stamps:[| 1 |] [| [| Value.Int 9 |] |] None);
    Wire.Batch
      (Batch.make ~stamps:[| 0; 55_000_000 |]
         [| [| Value.Bool false |]; [| Value.Bool true |] |]
         (Some (Item.Punct [ (0, Value.Int 7) ])));
    (* sketch-state columns: every kind, mixed with plain values, empty
       states, and a sketch batch sealed by a control item *)
    Wire.Batch
      (Batch.make
         [|
           [| Value.Int 1; Value.Sketch (sketch_state `Cm) |];
           [| Value.Int 2; Value.Sketch (sketch_state `Topk) |];
           [| Value.Int 3; Value.Sketch (sketch_state `Hll) |];
         |]
         None);
    Wire.Batch
      (Batch.make
         [| [| Value.Sketch (Sketch.hll ~precision:4); Value.Null |] |]
         (Some (Item.Punct [ (0, Value.Int 9) ])));
    Wire.Batch
      (Batch.make ~stamps:[| 77_000 |]
         [| [| Value.Sketch (sketch_state `Topk) |] |]
         (Some Item.Flush));
  ]

(* Byte-level equality after a re-encode sidesteps the need for a
   structural equality on batches and schemas. *)
let check_round_trip msg =
  let b = Wire.encode msg in
  match Wire.decode b ~pos:0 ~len:(Bytes.length b) with
  | Wire.Frame (msg', consumed) ->
      Alcotest.(check int) (Wire.msg_label msg ^ " consumed") (Bytes.length b) consumed;
      Alcotest.(check bool)
        (Wire.msg_label msg ^ " re-encodes identically")
        true
        (Bytes.equal b (Wire.encode msg'))
  | Wire.Need_more -> Alcotest.failf "%s: Need_more on a complete frame" (Wire.msg_label msg)
  | Wire.Corrupt e -> Alcotest.failf "%s: Corrupt: %s" (Wire.msg_label msg) e

let test_round_trips () = List.iter check_round_trip sample_msgs

let test_prefixes_need_more () =
  List.iter
    (fun msg ->
      let b = Wire.encode msg in
      for n = 0 to Bytes.length b - 1 do
        match Wire.decode b ~pos:0 ~len:n with
        | Wire.Need_more -> ()
        | Wire.Frame _ -> Alcotest.failf "%s: decoded from a %d-byte prefix" (Wire.msg_label msg) n
        | Wire.Corrupt e ->
            Alcotest.failf "%s: prefix of %d bytes is Corrupt (%s), want Need_more"
              (Wire.msg_label msg) n e
      done)
    sample_msgs

let test_back_to_back () =
  let a = Wire.encode (Wire.Subscribe "one") in
  let b = Wire.encode Wire.Bye in
  let buf = Bytes.cat a b in
  match Wire.decode buf ~pos:0 ~len:(Bytes.length buf) with
  | Wire.Frame (Wire.Subscribe "one", consumed) -> (
      Alcotest.(check int) "first frame length" (Bytes.length a) consumed;
      match Wire.decode buf ~pos:consumed ~len:(Bytes.length buf) with
      | Wire.Frame (Wire.Bye, consumed') ->
          Alcotest.(check int) "second frame end" (Bytes.length buf) consumed'
      | _ -> Alcotest.fail "second frame did not decode")
  | _ -> Alcotest.fail "first frame did not decode"

let expect_corrupt what b =
  match Wire.decode b ~pos:0 ~len:(Bytes.length b) with
  | Wire.Corrupt _ -> ()
  | Wire.Frame _ -> Alcotest.failf "%s: decoded" what
  | Wire.Need_more -> Alcotest.failf "%s: Need_more" what

let test_corrupt_frames () =
  let good = Wire.encode Wire.Bye in
  let bad_magic = Bytes.copy good in
  Bytes.set bad_magic 0 'X';
  expect_corrupt "bad magic" bad_magic;
  let bad_version = Bytes.copy good in
  Bytes.set bad_version 3 '\x63';
  expect_corrupt "unknown version" bad_version;
  let bad_type = Bytes.copy good in
  Bytes.set bad_type 4 '\xff';
  expect_corrupt "unknown message type" bad_type;
  (* a 4-byte length field must not talk the decoder into buffering 2 GiB *)
  let oversized = Bytes.copy good in
  Bytes.set_int32_be oversized 5 0x7fffffffl;
  expect_corrupt "oversized payload length" oversized;
  (* trailing payload bytes: claim one byte more than Bye carries *)
  let trailing = Bytes.cat good (Bytes.make 1 '\x00') in
  Bytes.set_int32_be trailing 5 1l;
  expect_corrupt "trailing payload bytes" trailing;
  (* a batch frame whose tuple count lies about the bytes that follow *)
  let b = Wire.encode (Wire.Batch sample_batch) in
  let lying = Bytes.copy b in
  Bytes.set_int32_be lying Wire.header_len 0x00ffffffl;
  expect_corrupt "lying batch tuple count" lying;
  (* v1 frames are rejected: the stamp column changed the batch layout *)
  let v1 = Bytes.copy good in
  Bytes.set v1 3 '\x01';
  expect_corrupt "protocol version 1" v1;
  (* the stamp flag byte admits exactly 0 and 1 *)
  let stamped = Wire.encode (Wire.Batch (Batch.make ~stamps:[| 5 |] [| [| Value.Int 1 |] |] None)) in
  let bad_flag = Bytes.copy stamped in
  (* the flag byte sits 8 stamp bytes from the end *)
  Bytes.set bad_flag (Bytes.length bad_flag - 9) '\x02';
  expect_corrupt "bad stamp flag" bad_flag;
  (* a stamped batch whose column is truncated mid-stamp *)
  let truncated = Bytes.sub stamped 0 (Bytes.length stamped - 3) in
  Bytes.set_int32_be truncated 5 (Int32.of_int (Bytes.length truncated - Wire.header_len));
  expect_corrupt "truncated stamp column" truncated

(* Find the unique offset of [needle] inside [hay] — used to locate a
   sketch state's bytes within its encoded frame. *)
let find_sub hay needle =
  let hl = Bytes.length hay and nl = String.length needle in
  let rec go i =
    if i + nl > hl then Alcotest.fail "sketch bytes not found in frame"
    else if String.equal (Bytes.sub_string hay i nl) needle then i
    else go (i + 1)
  in
  go 0

(* Sketch payloads inside batch frames: a skewed codec version is
   rejected as Corrupt with a message naming the version, and every
   truncation of the sketch state inside an otherwise well-formed frame
   is Corrupt — the decoder maps the sketch codec's Error into the
   frame-level failure, never an exception. *)
let test_sketch_payload_version_skew () =
  let s = sketch_state `Hll in
  let enc = Sketch.encode s in
  let frame = Wire.encode (Wire.Batch (Batch.make [| [| Value.Sketch s |] |] None)) in
  let off = find_sub frame enc in
  let skewed = Bytes.copy frame in
  Bytes.set skewed off (Char.chr ((Sketch.codec_version + 1) land 0xff));
  match Wire.decode skewed ~pos:0 ~len:(Bytes.length skewed) with
  | Wire.Corrupt e ->
      Alcotest.(check bool)
        (Printf.sprintf "corruption message mentions version: %s" e)
        true
        (let lower = String.lowercase_ascii e in
         let pat = "version" in
         let rec has i =
           i + String.length pat <= String.length lower
           && (String.equal (String.sub lower i (String.length pat)) pat || has (i + 1))
         in
         has 0)
  | Wire.Frame _ -> Alcotest.fail "version-skewed sketch decoded"
  | Wire.Need_more -> Alcotest.fail "version-skewed sketch: Need_more"

let test_sketch_payload_truncation () =
  List.iter
    (fun kind ->
      let s = sketch_state kind in
      let enc = Sketch.encode s in
      let frame = Wire.encode (Wire.Batch (Batch.make [| [| Value.Sketch s |] |] None)) in
      let off = find_sub frame enc in
      (* the u32 string length prefix sits just before the sketch bytes;
         shrinking it hands Sketch.decode a strict prefix of the state *)
      for keep = 0 to String.length enc - 1 do
        let b = Bytes.copy frame in
        Bytes.set_int32_be b (off - 4) (Int32.of_int keep);
        match Wire.decode b ~pos:0 ~len:(Bytes.length b) with
        | Wire.Corrupt _ -> ()
        | Wire.Frame _ ->
            Alcotest.failf "%s: sketch truncated to %d bytes decoded" (Sketch.kind_name s) keep
        | Wire.Need_more ->
            Alcotest.failf "%s: sketch truncated to %d bytes: Need_more" (Sketch.kind_name s) keep
      done)
    [ `Cm; `Topk; `Hll ]

(* Whatever the bytes, decode returns a value — never raises. *)
let fuzz_decode_total =
  qtest "wire: decode is total on random bytes"
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      let b = Bytes.of_string s in
      match Wire.decode b ~pos:0 ~len:(Bytes.length b) with
      | Wire.Frame _ | Wire.Need_more | Wire.Corrupt _ -> true)

let fuzz_mutated_frames =
  qtest "wire: decode survives mutated valid frames"
    QCheck.(triple (int_bound (List.length sample_msgs - 1)) small_nat (int_bound 255))
    (fun (which, pos, byte) ->
      let b = Wire.encode (List.nth sample_msgs which) in
      if Bytes.length b = 0 then true
      else begin
        Bytes.set b (pos mod Bytes.length b) (Char.chr byte);
        match Wire.decode b ~pos:0 ~len:(Bytes.length b) with
        | Wire.Frame _ | Wire.Need_more | Wire.Corrupt _ -> true
      end)

let fuzz_truncation_total =
  qtest "wire: decode is total on every truncation"
    QCheck.(pair (int_bound (List.length sample_msgs - 1)) small_nat)
    (fun (which, n) ->
      let b = Wire.encode (List.nth sample_msgs which) in
      let n = n mod (Bytes.length b + 1) in
      match Wire.decode b ~pos:0 ~len:n with
      | Wire.Frame _ -> n = Bytes.length b
      | Wire.Need_more -> n < Bytes.length b
      | Wire.Corrupt _ -> false)

(* ------------------------- framed connections --------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_conn_reassembles_split_frames () =
  with_socketpair (fun a b ->
      let conn = Conn.of_fd b in
      let frame = Wire.encode (Wire.Batch sample_batch) in
      (* drip the frame through the socket a few bytes at a time, from a
         thread (recv blocks the main one) *)
      let writer =
        Thread.create
          (fun () ->
            let n = Bytes.length frame in
            let chunk = 7 in
            let rec go off =
              if off < n then begin
                let k = min chunk (n - off) in
                ignore (Unix.write a frame off k);
                Thread.delay 0.001;
                go (off + k)
              end
            in
            go 0)
          ()
      in
      (match Conn.recv conn with
      | Ok (Wire.Batch got) ->
          Alcotest.(check bool)
            "reassembled batch re-encodes identically" true
            (Bytes.equal (Wire.encode (Wire.Batch got)) frame)
      | Ok msg -> Alcotest.failf "expected batch, got %s" (Wire.msg_label msg)
      | Error e -> Alcotest.fail e);
      Thread.join writer)

let test_conn_two_frames_one_write () =
  with_socketpair (fun a b ->
      let conn = Conn.of_fd b in
      let buf = Bytes.cat (Wire.encode (Wire.Subscribe "q")) (Wire.encode Wire.Bye) in
      ignore (Unix.write a buf 0 (Bytes.length buf));
      (match Conn.recv conn with
      | Ok (Wire.Subscribe "q") -> ()
      | _ -> Alcotest.fail "first frame");
      match Conn.recv conn with
      | Ok Wire.Bye -> ()
      | _ -> Alcotest.fail "second frame")

let test_conn_rejects_garbage () =
  with_socketpair (fun a b ->
      let conn = Conn.of_fd b in
      let junk = Bytes.of_string "GET / HTTP/1.1\r\nHost: nope\r\n\r\n" in
      ignore (Unix.write a junk 0 (Bytes.length junk));
      match Conn.recv conn with
      | Error _ -> ()
      | Ok msg -> Alcotest.failf "junk decoded as %s" (Wire.msg_label msg))

(* ----------------------------- loopback --------------------------------- *)

let sock_counter = ref 0

let fresh_sock_path () =
  incr sock_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gsq-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  path

let counter_value snapshot name =
  match Metrics.find snapshot name with
  | Some (Metrics.Counter n) -> n
  | Some _ -> Alcotest.failf "%s is not a counter" name
  | None -> 0

(* A payload-carrying passthrough: each tuple hauls a packet payload, so
   a stalled subscriber's socket buffer fills in a bounded number of
   tuples — what makes the slow-consumer tests deterministic. *)
let payload_program =
  {|
  DEFINE { query_name pay; }
  SELECT time, len, payload FROM eth0.tcp WHERE ipversion = 4
|}

let payload_workload =
  {
    Workloads.wname = "pay";
    program = (fun () -> payload_program);
    setup = Workloads.eth0_setup ~rate:20.0 ~duration:0.5;
    outputs = [ "pay" ];
    params = [];
  }

let await ?(timeout = 10.0) what cond =
  let deadline = Gigascope_obs.Clock.now_ns () +. (timeout *. 1e9) in
  let rec go () =
    if cond () then ()
    else if Gigascope_obs.Clock.now_ns () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

(* The acceptance scenario: one engine, two remote subscribers on the
   same query — one reads promptly, one stalls until the run is over.
   Under Drop_newest the fast subscriber's stream is byte-identical to a
   local subscription, and every tuple the slow one missed is accounted
   for in net.subscriber.drops. *)
let test_loopback_drop_newest () =
  let seed = 11 in
  let baseline, _ = Workloads.exec payload_workload ~seed ~parallel:1 () in
  let expected = List.assoc "pay" baseline in
  let total = List.length expected in
  Alcotest.(check bool) "workload produces enough traffic" true (total > 500);
  let engine = E.create () in
  payload_workload.Workloads.setup ~seed engine;
  (match E.install_program engine payload_program with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* two servers on one engine: the fast subscriber gets an egress queue
     that can hold the whole run (it must not lose anything to scheduling
     jitter), the slow one a tiny queue that must overflow *)
  let srv_fast = Server.create ~policy:Server.Drop_newest ~egress_capacity:(total + 1024) engine in
  let srv_slow = Server.create ~policy:Server.Drop_newest ~egress_capacity:32 engine in
  let addr_fast = Result.get_ok (Server.listen srv_fast (Addr.Unix_sock (fresh_sock_path ()))) in
  let addr_slow = Result.get_ok (Server.listen srv_slow (Addr.Unix_sock (fresh_sock_path ()))) in
  let run_done = Atomic.make false in
  let fast_rows = ref [] in
  let fast_err = ref None in
  let fast_thread =
    Thread.create
      (fun () ->
        match Client.connect addr_fast with
        | Error e -> fast_err := Some e
        | Ok c -> (
            match Client.subscribe c "pay" with
            | Error e -> fast_err := Some e
            | Ok _ -> (
                match
                  Client.iter c (fun item ->
                      match item with
                      | Item.Tuple row -> fast_rows := Workloads.row_to_string row :: !fast_rows
                      | _ -> ())
                with
                | Ok () -> Client.close c
                | Error e -> fast_err := Some e)))
      ()
  in
  let slow_count = ref 0 in
  let slow_err = ref None in
  let slow_thread =
    Thread.create
      (fun () ->
        match Client.connect addr_slow with
        | Error e -> slow_err := Some e
        | Ok c -> (
            match Client.subscribe c "pay" with
            | Error e -> slow_err := Some e
            | Ok _ -> (
                (* stall: read nothing until the producer has finished, so
                   the tiny egress queue must overflow *)
                await "engine run" (fun () -> Atomic.get run_done);
                match
                  Client.iter c (fun item ->
                      if Item.is_tuple item then incr slow_count)
                with
                | Ok () -> Client.close c
                | Error e -> slow_err := Some e)))
      ()
  in
  await "both subscribers" (fun () ->
      Server.subscriber_count srv_fast = 1 && Server.subscriber_count srv_slow = 1);
  (match E.run engine ~parallel:1 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Atomic.set run_done true;
  Thread.join fast_thread;
  Thread.join slow_thread;
  ignore (Server.drain ~timeout:5.0 srv_fast);
  ignore (Server.drain ~timeout:5.0 srv_slow);
  Server.stop srv_fast;
  Server.stop srv_slow;
  (match !fast_err with Some e -> Alcotest.fail ("fast subscriber: " ^ e) | None -> ());
  (match !slow_err with Some e -> Alcotest.fail ("slow subscriber: " ^ e) | None -> ());
  Alcotest.(check (list string))
    "fast subscriber sees the exact local stream" expected (List.rev !fast_rows);
  let snap = E.metrics_snapshot engine in
  let drops = counter_value snap "net.subscriber.drops" in
  Alcotest.(check bool) "the stalled subscriber dropped" true (drops > 0);
  Alcotest.(check int) "every missing tuple is a counted drop" total (!slow_count + drops);
  Alcotest.(check bool)
    "connection metrics counted" true
    (counter_value snap "net.connections" >= 2
    && counter_value snap "net.frames_out" > 0
    && counter_value snap "net.bytes_out" > 0)

let test_disconnect_policy () =
  let seed = 12 in
  let engine = E.create () in
  payload_workload.Workloads.setup ~seed engine;
  (match E.install_program engine payload_program with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let srv = Server.create ~policy:Server.Disconnect ~egress_capacity:8 engine in
  let addr = Result.get_ok (Server.listen srv (Addr.Unix_sock (fresh_sock_path ()))) in
  let run_done = Atomic.make false in
  let outcome = ref `Pending in
  let th =
    Thread.create
      (fun () ->
        match Client.connect addr with
        | Error e -> outcome := `Fail e
        | Ok c -> (
            match Client.subscribe c "pay" with
            | Error e -> outcome := `Fail e
            | Ok _ ->
                await "engine run" (fun () -> Atomic.get run_done);
                let rec drain () =
                  match Client.next c with
                  | Ok (Some _) -> drain ()
                  | Ok None -> outcome := `Clean_eof
                  | Error _ -> outcome := `Severed
                in
                drain ();
                Client.close c))
      ()
  in
  await "subscriber" (fun () -> Server.subscriber_count srv = 1);
  (match E.run engine ~parallel:1 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Atomic.set run_done true;
  Thread.join th;
  Server.stop srv;
  let snap = E.metrics_snapshot engine in
  Alcotest.(check int) "slow subscriber disconnected" 1
    (counter_value snap "net.subscriber.disconnects");
  match !outcome with
  | `Severed -> ()
  | `Clean_eof -> Alcotest.fail "stalled subscriber reached EOF under Disconnect"
  | `Pending -> Alcotest.fail "subscriber never finished"
  | `Fail e -> Alcotest.fail e

let test_list_and_unknown_query () =
  let engine = E.create () in
  payload_workload.Workloads.setup ~seed:1 engine;
  (match E.install_program engine payload_program with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let srv = Server.create engine in
  let addr = Result.get_ok (Server.listen srv (Addr.Unix_sock (fresh_sock_path ()))) in
  let c = Result.get_ok (Client.connect addr) in
  (match Client.list c with
  | Ok qs ->
      let names = List.map (fun q -> q.Wire.q_name) qs in
      Alcotest.(check bool) "listing includes the query" true (List.mem "pay" names);
      Alcotest.(check bool) "listing includes the source" true (List.mem "eth0.tcp" names)
  | Error e -> Alcotest.fail e);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match Client.subscribe c "no_such_query" with
  | Error e ->
      Alcotest.(check bool) "unknown query names itself" true (contains e "no_such_query")
  | Ok _ -> Alcotest.fail "subscribed to a query that does not exist");
  Client.close c;
  Server.stop srv

(* The server outlives clients that speak garbage: raw junk before the
   handshake, an oversized frame header, a vanished peer — each kills
   its own connection only. *)
let test_server_survives_garbage () =
  let engine = E.create () in
  payload_workload.Workloads.setup ~seed:1 engine;
  (match E.install_program engine payload_program with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let srv = Server.create engine in
  let addr = Result.get_ok (Server.listen srv (Addr.Unix_sock (fresh_sock_path ()))) in
  let sockaddr = Result.get_ok (Addr.to_sockaddr addr) in
  let raw_send bytes =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd sockaddr;
    ignore (Unix.write fd bytes 0 (Bytes.length bytes));
    (* give the handler a beat, then vanish without a goodbye *)
    Thread.delay 0.02;
    Unix.close fd
  in
  raw_send (Bytes.of_string "\x00\x01\x02\x03 utter nonsense \xff\xfe");
  (let oversized = Bytes.make Wire.header_len '\x00' in
   Bytes.blit_string "GSW" 0 oversized 0 3;
   Bytes.set oversized 3 (Char.chr Wire.protocol_version);
   Bytes.set oversized 4 '\x01';
   Bytes.set_int32_be oversized 5 0x7fffffffl;
   raw_send oversized);
  raw_send (Wire.encode (Wire.Hello { version = 99; peer = "from the future" }));
  (* half a frame, then silence: the handler must not decode it as whole *)
  (let frame = Wire.encode (Wire.Hello { version = Wire.protocol_version; peer = "half" }) in
   raw_send (Bytes.sub frame 0 (Bytes.length frame - 2)));
  (* after all that abuse, a well-behaved client still gets served *)
  let c = Result.get_ok (Client.connect addr) in
  (match Client.list c with
  | Ok qs -> Alcotest.(check bool) "server still lists queries" true (List.length qs > 0)
  | Error e -> Alcotest.fail ("server unusable after garbage: " ^ e));
  Client.close c;
  Server.stop srv;
  let snap = E.metrics_snapshot engine in
  Alcotest.(check bool) "protocol errors were counted" true
    (counter_value snap "net.errors" > 0)

(* ------------------------------- ingest --------------------------------- *)

let feed_schema =
  Schema.make
    [
      { Schema.name = "t"; ty = Ty.Int; order = Order_prop.Monotone Order_prop.Asc };
      { Schema.name = "v"; ty = Ty.Int; order = Order_prop.Unordered };
    ]

let test_publish_ingest () =
  let engine = E.create () in
  let srv = Server.create engine in
  (match Server.add_ingest srv ~name:"feed" ~schema:feed_schema () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     E.install_program engine
       {|
  DEFINE { query_name fed; }
  SELECT t, v FROM feed WHERE v >= 0
|}
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let addr = Result.get_ok (Server.listen srv (Addr.Unix_sock (fresh_sock_path ()))) in
  let n = 200 in
  let publisher =
    Thread.create
      (fun () ->
        let c = Result.get_ok (Client.connect addr) in
        (match Client.publish c ~iface:"feed" with
        | Ok schema -> Alcotest.(check int) "published schema arity" 2 (Schema.arity schema)
        | Error e -> Alcotest.fail e);
        for i = 1 to n do
          (* every other value filtered out by the WHERE *)
          let v = if i mod 2 = 0 then i else -i in
          Result.get_ok (Client.send_tuple c [| Value.Int i; Value.Int v |])
        done;
        Result.get_ok (Client.finish c);
        Client.close c)
      ()
  in
  let rows = ref [] in
  Result.get_ok (E.on_tuple engine "fed" (fun row -> rows := Array.copy row :: !rows));
  (match E.run engine ~parallel:1 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Thread.join publisher;
  Server.stop srv;
  let got = List.rev_map (fun r -> r.(0)) !rows in
  let want = List.init (n / 2) (fun i -> Value.Int (2 * (i + 1))) in
  Alcotest.(check bool) "filtered published tuples arrive in order" true (got = want);
  Alcotest.(check int) "ingest tuple counter" n
    (counter_value (E.metrics_snapshot engine) "net.ingest.tuples")

(* One gsq engine feeds another: engine A serves a query, engine B
   mounts it as a local source over the wire and queries it — the
   paper's two-level LFTA/HFTA split stretched across a socket. *)
let test_cross_engine_chaining () =
  let seed = 13 in
  let baseline, _ = Workloads.exec payload_workload ~seed ~parallel:1 () in
  let expected = List.assoc "pay" baseline in
  let engine_a = E.create () in
  payload_workload.Workloads.setup ~seed engine_a;
  (match E.install_program engine_a payload_program with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let srv = Server.create ~egress_capacity:(List.length expected + 1024) engine_a in
  let addr = Result.get_ok (Server.listen srv (Addr.Unix_sock (fresh_sock_path ()))) in
  let engine_b = E.create () in
  (* subscribes now, so nothing is lost when A starts running *)
  (match Client.add_remote_interface engine_b ~name:"upstream" addr ~query:"pay" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     E.install_program engine_b
       {|
  DEFINE { query_name relay; }
  SELECT time, len, payload FROM upstream
|}
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let rows = ref [] in
  Result.get_ok
    (E.on_tuple engine_b "relay" (fun row ->
         rows := Workloads.row_to_string row :: !rows));
  let upstream =
    Thread.create
      (fun () ->
        (match E.run engine_a ~parallel:1 () with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "engine A: %s" e);
        ignore (Server.drain ~timeout:5.0 srv))
      ()
  in
  (match E.run engine_b ~parallel:1 () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "engine B: %s" e);
  Thread.join upstream;
  Server.stop srv;
  Alcotest.(check (list string))
    "downstream engine sees the upstream stream intact" expected (List.rev !rows)

(* ------------------------------- addr ----------------------------------- *)

let test_addr_parsing () =
  (match Addr.of_string "unix:/tmp/x.sock" with
  | Ok (Addr.Unix_sock "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix form");
  (match Addr.of_string "localhost:5577" with
  | Ok (Addr.Tcp ("localhost", 5577)) -> ()
  | _ -> Alcotest.fail "host:port form");
  (match Addr.of_string ":5577" with
  | Ok (Addr.Tcp (_, 5577)) -> ()
  | _ -> Alcotest.fail ":port form");
  (match Addr.of_string "no-port-here" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "portless string accepted");
  match Addr.of_string "host:notaport" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric port accepted"

let test_tcp_loopback () =
  let engine = E.create () in
  payload_workload.Workloads.setup ~seed:1 engine;
  (match E.install_program engine payload_program with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let srv = Server.create engine in
  (* port 0: the kernel picks; the bound address reports which *)
  match Server.listen srv (Addr.Tcp ("127.0.0.1", 0)) with
  | Error e -> Alcotest.fail e
  | Ok bound ->
      (match bound with
      | Addr.Tcp (_, port) -> Alcotest.(check bool) "real port" true (port > 0)
      | _ -> Alcotest.fail "bound address is not TCP");
      let c = Result.get_ok (Client.connect bound) in
      (match Client.list c with
      | Ok qs -> Alcotest.(check bool) "TCP listing works" true (List.length qs > 0)
      | Error e -> Alcotest.fail e);
      Client.close c;
      Server.stop srv

let () =
  Alcotest.run "net"
    [
      ( "wire",
        [
          Alcotest.test_case "round-trips every message" `Quick test_round_trips;
          Alcotest.test_case "prefixes want more bytes" `Quick test_prefixes_need_more;
          Alcotest.test_case "back-to-back frames" `Quick test_back_to_back;
          Alcotest.test_case "corrupt frames rejected" `Quick test_corrupt_frames;
          Alcotest.test_case "sketch codec version skew rejected" `Quick
            test_sketch_payload_version_skew;
          Alcotest.test_case "sketch payload truncation is Corrupt" `Quick
            test_sketch_payload_truncation;
          fuzz_decode_total;
          fuzz_mutated_frames;
          fuzz_truncation_total;
        ] );
      ( "conn",
        [
          Alcotest.test_case "reassembles split frames" `Quick test_conn_reassembles_split_frames;
          Alcotest.test_case "two frames in one read" `Quick test_conn_two_frames_one_write;
          Alcotest.test_case "rejects garbage" `Quick test_conn_rejects_garbage;
        ] );
      ( "addr",
        [
          Alcotest.test_case "parsing" `Quick test_addr_parsing;
        ] );
      ( "server",
        [
          Alcotest.test_case "loopback under Drop_newest" `Quick test_loopback_drop_newest;
          Alcotest.test_case "Disconnect severs the slow subscriber" `Quick test_disconnect_policy;
          Alcotest.test_case "list and unknown query" `Quick test_list_and_unknown_query;
          Alcotest.test_case "survives garbage connections" `Quick test_server_survives_garbage;
          Alcotest.test_case "publish feeds an ingest" `Quick test_publish_ingest;
          Alcotest.test_case "one engine feeds another" `Quick test_cross_engine_chaining;
          Alcotest.test_case "TCP loopback on an ephemeral port" `Quick test_tcp_loopback;
        ] );
    ]
