(* Accuracy and algebra laws for lib/sketch.

   The sketches are the payload of the distributed aggregation tree:
   their merge must commute and associate (so any fan-in shape computes
   the same answer), their estimates must honour the advertised error
   bounds (so the root's numbers mean something), and their codec must
   be total (so a truncated or hostile frame is an Error, never an
   exception in the data plane). The split-then-merge differential at
   the bottom mirrors test_shard.ml's merge_partial laws, now for the
   Agg_fn sketch kinds the GSQL aggregates compile to. *)

module Sketch = Gigascope_sketch.Sketch
module Rts = Gigascope_rts
module Value = Rts.Value
module Agg = Rts.Agg_fn

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* A deterministic skewed stream: item [i] of a Zipf-ish universe where
   item rank r appears ~ N/(r+1) times. *)
let zipf_stream ~universe ~n seed =
  let st = ref (seed lor 1) in
  let next () =
    (* splitmix-ish step, deterministic across runs *)
    st := (!st * 0x5851F42D4C957F2D) + 0x14057B7EF767814F;
    (!st lsr 17) land max_int
  in
  List.init n (fun _ ->
      let r = next () mod universe and bias = next () mod universe in
      (* min of two draws skews mass toward low ranks *)
      Printf.sprintf "item-%d" (min r bias))

let true_counts stream =
  let h = Hashtbl.create 256 in
  List.iter
    (fun item ->
      Hashtbl.replace h item (1 + Option.value (Hashtbl.find_opt h item) ~default:0))
    stream;
  h

(* ------------------------------ accuracy -------------------------------- *)

let test_cm_error_bound () =
  let n = 20_000 and eps = 0.01 and delta = 0.01 in
  let stream = zipf_stream ~universe:2000 ~n 42 in
  let sk = Sketch.cm ~eps ~delta in
  List.iter (Sketch.add sk) stream;
  check Alcotest.int "items_added" n (Sketch.items_added sk);
  check (Alcotest.float 1e-9) "error_bound is eps*N"
    (eps *. float_of_int n)
    (Sketch.error_bound sk);
  let truth = true_counts stream in
  let slack = int_of_float (eps *. float_of_int n) in
  let within = ref 0 and total = ref 0 in
  Hashtbl.iter
    (fun item true_n ->
      let est = Sketch.cm_query sk item in
      (* count-min never under-counts *)
      check Alcotest.bool (item ^ " no undercount") true (est >= true_n);
      incr total;
      if est <= true_n + slack then incr within)
    truth;
  (* the eps*N overcount bound holds per query with probability 1-delta;
     demand it for 99% of the (deterministic) queries *)
  check Alcotest.bool
    (Printf.sprintf "eps*N bound held for %d/%d" !within !total)
    true
    (float_of_int !within >= 0.99 *. float_of_int !total);
  (* an item never added reads as (bounded) noise, not garbage *)
  check Alcotest.bool "absent item bounded" true (Sketch.cm_query sk "never-added" <= slack)

let test_heavy_hitter_recall () =
  let n = 30_000 and k = 50 in
  let stream = zipf_stream ~universe:1000 ~n 7 in
  let sk = Sketch.topk ~k in
  List.iter (Sketch.add sk) stream;
  let truth = true_counts stream in
  let top = Sketch.top sk in
  check Alcotest.bool "at most k counters" true (List.length top <= k);
  (* space-saving guarantee: every item with true count > N/(k+1) is
     tracked; demand recall for everything comfortably above the bound *)
  let bound = float_of_int n /. float_of_int (k + 1) in
  Hashtbl.iter
    (fun item true_n ->
      if float_of_int true_n > 2.0 *. bound then
        check Alcotest.bool (item ^ " recalled") true
          (List.mem_assoc item top))
    truth;
  (* reported counts never under-count the truth for tracked items *)
  List.iter
    (fun (item, cnt) ->
      let true_n = Option.value (Hashtbl.find_opt truth item) ~default:0 in
      check Alcotest.bool (item ^ " no undercount") true (cnt >= true_n))
    top;
  (* the listing is sorted and deterministic *)
  let counts = List.map snd top in
  check Alcotest.bool "sorted descending" true
    (List.for_all2 ( >= ) (List.filteri (fun i _ -> i < List.length counts - 1) counts)
       (List.tl counts))

let test_hll_relative_error () =
  List.iter
    (fun n ->
      let sk = Sketch.hll ~precision:14 in
      for i = 1 to n do
        Sketch.add sk (Printf.sprintf "key-%d" i)
      done;
      let est = Sketch.estimate sk in
      let rel = Float.abs (float_of_int (est - n)) /. float_of_int n in
      (* precision 14 promises ~0.8% relative error; allow 3x *)
      check Alcotest.bool
        (Printf.sprintf "n=%d est=%d rel=%.4f" n est rel)
        true (rel <= 0.025))
    [ 100; 5_000; 100_000 ];
  (* duplicates do not inflate the estimate *)
  let sk = Sketch.hll ~precision:14 in
  for _ = 1 to 50 do
    for i = 1 to 500 do
      Sketch.add sk (Printf.sprintf "dup-%d" i)
    done
  done;
  let est = Sketch.estimate sk in
  check Alcotest.bool
    (Printf.sprintf "dedup est=%d" est)
    true
    (Float.abs (float_of_int (est - 500)) /. 500.0 <= 0.05)

(* ---------------------------- merge algebra ------------------------------ *)

let makers =
  [
    ("cm", fun () -> Sketch.cm ~eps:0.01 ~delta:0.01);
    ("topk", fun () -> Sketch.topk ~k:32);
    ("hll", fun () -> Sketch.hll ~precision:12);
  ]

let filled make items =
  let sk = make () in
  List.iter (Sketch.add sk) items;
  sk

let merged a b =
  match Sketch.merge a b with
  | Ok m -> m
  | Error e -> Alcotest.failf "merge: %s" e

let test_merge_laws () =
  let xs = zipf_stream ~universe:300 ~n:2000 1
  and ys = zipf_stream ~universe:300 ~n:2000 2
  and zs = zipf_stream ~universe:300 ~n:2000 3 in
  (* cm and hll merges are exact everywhere; topk is exact while no
     counter has been evicted, so give it headroom over the 300-item
     universe here (the evicted regime is covered below) *)
  List.iter
    (fun (name, make) ->
      let a () = filled make xs and b () = filled make ys and c () = filled make zs in
      (* commutativity is exact: canonical encodings match byte for byte *)
      check Alcotest.string (name ^ " merge commutes")
        (Sketch.encode (merged (a ()) (b ())))
        (Sketch.encode (merged (b ()) (a ())));
      (* identity: merging in a fresh sketch changes nothing *)
      check Alcotest.string (name ^ " empty is identity")
        (Sketch.encode (a ()))
        (Sketch.encode (merged (a ()) (make ())));
      (* associativity: exact for cm and hll; topk is exact while the
         merged summary has not evicted, which these sizes guarantee *)
      let l = merged (merged (a ()) (b ())) (c ())
      and r = merged (a ()) (merged (b ()) (c ())) in
      check Alcotest.string (name ^ " merge associates") (Sketch.encode l) (Sketch.encode r);
      (* merge_into mutates dst only *)
      let dst = a () and src = b () in
      let src_bytes = Sketch.encode src in
      (match Sketch.merge_into dst src with
      | Ok () -> ()
      | Error e -> Alcotest.failf "merge_into: %s" e);
      check Alcotest.string (name ^ " src untouched") src_bytes (Sketch.encode src);
      check Alcotest.int (name ^ " items_added sums") 4000 (Sketch.items_added dst))
    [
      ("cm", fun () -> Sketch.cm ~eps:0.01 ~delta:0.01);
      ("topk", fun () -> Sketch.topk ~k:512);
      ("hll", fun () -> Sketch.hll ~precision:12);
    ];
  (* evicted regime: byte equality is forfeit (the floor correction is
     order-dependent), but both orders must still agree on what is
     heavy — the space-saving recall guarantee survives the merge *)
  let make () = Sketch.topk ~k:32 in
  let ab = merged (filled make xs) (filled make ys)
  and ba = merged (filled make ys) (filled make xs) in
  let truth = true_counts (xs @ ys) in
  let bound = 2.0 *. (4000.0 /. 33.0) in
  Hashtbl.iter
    (fun item n ->
      if float_of_int n > bound then begin
        check Alcotest.bool (item ^ " heavy in a+b") true (List.mem_assoc item (Sketch.top ab));
        check Alcotest.bool (item ^ " heavy in b+a") true (List.mem_assoc item (Sketch.top ba))
      end)
    truth

let test_merge_split_equals_unsplit () =
  (* the tree's load-bearing law: cut a stream anywhere, sketch the
     pieces on different nodes, merge upward — same answer as one
     sketch over the whole stream *)
  let stream = zipf_stream ~universe:400 ~n:3000 9 in
  List.iter
    (fun (name, make) ->
      let whole = filled make stream in
      List.iter
        (fun pieces ->
          let parts =
            List.map (filled make)
              (List.map
                 (fun p ->
                   List.filteri (fun i _ -> i * pieces / List.length stream = p) stream)
                 (List.init pieces (fun p -> p)))
          in
          let tree =
            match parts with
            | [] -> assert false
            | first :: rest -> List.fold_left (fun acc p -> merged acc p) first rest
          in
          check Alcotest.string
            (Printf.sprintf "%s %d-way split = unsplit" name pieces)
            (Sketch.encode whole) (Sketch.encode tree))
        [ 2; 3; 8 ])
    [ ("cm", fun () -> Sketch.cm ~eps:0.01 ~delta:0.01); ("hll", fun () -> Sketch.hll ~precision:12) ];
  (* topk is exact (hence split-invariant) below k distinct items *)
  let small = List.filteri (fun i _ -> i < 500) (zipf_stream ~universe:20 ~n:500 5) in
  let make () = Sketch.topk ~k:64 in
  let whole = filled make small in
  let left = filled make (List.filteri (fun i _ -> i < 250) small)
  and right = filled make (List.filteri (fun i _ -> i >= 250) small) in
  check Alcotest.string "topk split = unsplit (under k distinct)"
    (Sketch.encode whole)
    (Sketch.encode (merged left right))

let test_merge_incompatible () =
  let expect_err label a b =
    match Sketch.merge a b with
    | Ok _ -> Alcotest.failf "%s merged" label
    | Error e ->
        check Alcotest.bool (label ^ " error is one line") false (String.contains e '\n')
  in
  expect_err "cm/hll" (Sketch.cm ~eps:0.01 ~delta:0.01) (Sketch.hll ~precision:12);
  expect_err "hll/topk" (Sketch.hll ~precision:12) (Sketch.topk ~k:8);
  expect_err "cm dims" (Sketch.cm ~eps:0.01 ~delta:0.01) (Sketch.cm ~eps:0.1 ~delta:0.01);
  expect_err "hll precision" (Sketch.hll ~precision:12) (Sketch.hll ~precision:13);
  expect_err "topk k" (Sketch.topk ~k:8) (Sketch.topk ~k:9);
  (* a failed merge_into leaves dst untouched *)
  let dst = Sketch.hll ~precision:12 in
  Sketch.add dst "x";
  let before = Sketch.encode dst in
  (match Sketch.merge_into dst (Sketch.topk ~k:4) with
  | Ok () -> Alcotest.fail "mismatched merge_into succeeded"
  | Error _ -> ());
  check Alcotest.string "dst untouched on error" before (Sketch.encode dst)

let test_constructor_validation () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check Alcotest.bool "eps 0" true (raises (fun () -> Sketch.cm ~eps:0.0 ~delta:0.1));
  check Alcotest.bool "eps nan" true (raises (fun () -> Sketch.cm ~eps:Float.nan ~delta:0.1));
  check Alcotest.bool "delta 1" true (raises (fun () -> Sketch.cm ~eps:0.1 ~delta:1.0));
  check Alcotest.bool "k 0" true (raises (fun () -> Sketch.topk ~k:0));
  check Alcotest.bool "precision 3" true (raises (fun () -> Sketch.hll ~precision:3));
  check Alcotest.bool "precision 17" true (raises (fun () -> Sketch.hll ~precision:17))

(* ------------------------------- codec ----------------------------------- *)

let test_codec_total () =
  let stream = zipf_stream ~universe:100 ~n:1000 13 in
  List.iter
    (fun (name, make) ->
      let sk = filled make stream in
      let bytes = Sketch.encode sk in
      (* round trip reconstructs exactly: canonical bytes and answers *)
      (match Sketch.decode bytes with
      | Error e -> Alcotest.failf "%s round trip: %s" name e
      | Ok back ->
          check Alcotest.string (name ^ " canonical re-encode") bytes (Sketch.encode back);
          check Alcotest.int (name ^ " estimate survives") (Sketch.estimate sk)
            (Sketch.estimate back);
          check Alcotest.string (name ^ " kind survives") (Sketch.kind_name sk)
            (Sketch.kind_name back));
      (* every strict prefix is an Error, never an exception *)
      for len = 0 to String.length bytes - 1 do
        match Sketch.decode (String.sub bytes 0 len) with
        | Ok _ -> Alcotest.failf "%s accepted a %d-byte prefix of %d" name len (String.length bytes)
        | Error _ -> ()
        | exception e ->
            Alcotest.failf "%s raised on truncation at %d: %s" name len (Printexc.to_string e)
      done;
      (* a version bump is rejected by name *)
      let bumped = Bytes.of_string bytes in
      Bytes.set bumped 0 (Char.chr (Sketch.codec_version + 1));
      (match Sketch.decode (Bytes.to_string bumped) with
      | Ok _ -> Alcotest.failf "%s accepted a future codec version" name
      | Error e -> check Alcotest.bool (name ^ " version named: " ^ e) true (contains e "version"));
      (* arbitrary corruption never raises *)
      for i = 0 to min 40 (String.length bytes - 1) do
        let b = Bytes.of_string bytes in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
        match Sketch.decode (Bytes.to_string b) with
        | Ok _ | Error _ -> ()
        | exception e ->
            Alcotest.failf "%s raised on corrupt byte %d: %s" name i (Printexc.to_string e)
      done)
    makers;
  match Sketch.decode "" with
  | Ok _ -> Alcotest.fail "decoded empty string"
  | Error _ -> ()

(* ----------------- Agg_fn: the GSQL-facing sketch kinds ------------------ *)

let specs =
  [
    ("distinct", Agg.Distinct { precision = 12 });
    (* k above the test universe's distinct count: the summary stays in
       its exact regime, so split points cannot perturb the rendering *)
    ("heavy", Agg.Heavy { k = 128 });
    ("freq", Agg.Freq { eps = 0.01; delta = 0.01 });
  ]

let value_t = Alcotest.testable Value.pp Value.equal

(* the same law test_shard.ml proves for Count/Sum/Min/Max/Avg, for the
   sketch kinds: split a group's values across accumulators (an edge
   apiece), merge the partials, finalize — indistinguishable from one
   accumulator that saw everything. *)
let test_agg_split_merge () =
  let vs =
    List.init 400 (fun i ->
        if i mod 3 = 0 then Value.Ip (0x0A000000 + (i mod 37))
        else if i mod 3 = 1 then Value.Int (i mod 23)
        else Value.Str (Printf.sprintf "s%d" (i mod 11)))
  in
  List.iter
    (fun (name, sk) ->
      let final_kind = Agg.Sketch { sk; partial = false } in
      let whole = Agg.init final_kind in
      List.iter (fun v -> Agg.step whole (Some v)) vs;
      let expected = Agg.final whole in
      List.iter
        (fun cut ->
          let a = Agg.init final_kind and b = Agg.init final_kind in
          List.iteri (fun i v -> Agg.step (if i < cut then a else b) (Some v)) vs;
          Agg.merge_partial a b;
          check value_t (Printf.sprintf "%s split@%d" name cut) expected (Agg.final a))
        [ 0; 1; 133; 399; 400 ];
      (* the tree path: partial accumulators finalize to Value.Sketch
         states; an upper level steps those states in and finalizes *)
      let partial_kind = Agg.Sketch { sk; partial = true } in
      let pa = Agg.init partial_kind and pb = Agg.init partial_kind in
      List.iteri (fun i v -> Agg.step (if i < 200 then pa else pb) (Some v)) vs;
      let top = Agg.init final_kind in
      Agg.step top (Some (Agg.final pa));
      Agg.step top (Some (Agg.final pb));
      check value_t (name ^ " partial states relay") expected (Agg.final top);
      (* nulls are skipped, as for every other aggregate *)
      let n = Agg.init final_kind in
      Agg.step n (Some Value.Null);
      Agg.step n None;
      check value_t (name ^ " null-only = empty")
        (Agg.final (Agg.init final_kind))
        (Agg.final n))
    specs

let test_agg_kind_wiring () =
  List.iter
    (fun (name, sk) ->
      let k = Agg.Sketch { sk; partial = false } in
      check Alcotest.(list string) (name ^ " sub is partial self")
        [ Agg.kind_to_string (Agg.Sketch { sk; partial = true }) ]
        (List.map Agg.kind_to_string (Agg.sub_kinds k));
      check Alcotest.(list string) (name ^ " super is final self")
        [ Agg.kind_to_string k ]
        (List.map Agg.kind_to_string (Agg.super_kind k));
      let p = Agg.Sketch { sk; partial = true } in
      check Alcotest.string (name ^ " relay keeps partial")
        (Agg.kind_to_string p)
        (Agg.kind_to_string (Agg.relay_kind p));
      check Alcotest.bool (name ^ " partial result is sketch-typed") true
        (Agg.result_ty p ~arg_ty:(Some Rts.Ty.Ip) = Rts.Ty.Sketch))
    specs;
  (* final renders: Int for distinct/freq, Str listing for heavy *)
  check Alcotest.bool "distinct final is Int" true
    (Agg.result_ty (Agg.Sketch { sk = Agg.Distinct { precision = 12 }; partial = false })
       ~arg_ty:(Some Rts.Ty.Ip)
    = Rts.Ty.Int);
  check Alcotest.bool "heavy final is Str" true
    (Agg.result_ty (Agg.Sketch { sk = Agg.Heavy { k = 4 }; partial = false })
       ~arg_ty:(Some Rts.Ty.Ip)
    = Rts.Ty.Str)

(* -------------------------------- suite --------------------------------- *)

let () =
  Alcotest.run "sketch"
    [
      ( "accuracy",
        [
          Alcotest.test_case "count-min error bound" `Quick test_cm_error_bound;
          Alcotest.test_case "heavy-hitter recall" `Quick test_heavy_hitter_recall;
          Alcotest.test_case "hll relative error" `Quick test_hll_relative_error;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "merge laws" `Quick test_merge_laws;
          Alcotest.test_case "split = unsplit" `Quick test_merge_split_equals_unsplit;
          Alcotest.test_case "incompatible merges" `Quick test_merge_incompatible;
          Alcotest.test_case "constructor validation" `Quick test_constructor_validation;
        ] );
      ("codec", [ Alcotest.test_case "total" `Quick test_codec_total ]);
      ( "agg_fn",
        [
          Alcotest.test_case "split/merge laws" `Quick test_agg_split_merge;
          Alcotest.test_case "kind wiring" `Quick test_agg_kind_wiring;
        ] );
    ]
