(* The failure model, proven under injected faults.

   Every test here follows the same claim: with faults armed, a run
   either converges to a correct (possibly explicitly partial) answer or
   terminates with an error naming the failure — it never hangs and it
   never loses tuples silently. Loss is always conserved somewhere
   visible: an [Item.Gap] marker, an [Item.Error] marker, a shed
   counter, or the run's error result.

   And with faults off, the whole failure apparatus must be invisible:
   supervision plus shedding disabled produce byte-identical output
   across batch sizes and domain counts. *)

module E = Gigascope.Engine
module Rts = Gigascope_rts
module Item = Rts.Item
module Value = Rts.Value
module Schema = Rts.Schema
module Ty = Rts.Ty
module Order_prop = Rts.Order_prop
module Faults = Rts.Faults
module Supervisor = Rts.Supervisor
module Metrics = Gigascope_obs.Metrics
module Addr = Gigascope_net.Addr
module Server = Gigascope_net.Server
module Client = Gigascope_net.Client

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Every test leaves the global fault plan clean for the next one. The
   spec is also exported through GIGASCOPE_FAULTS for the test's scope:
   [Engine.run] re-installs from the environment on every run, so a CI
   job that sets a global chaos spec (make ci) would otherwise clobber
   the plan this test depends on mid-test. *)
let with_faults spec body =
  (match Faults.parse spec with
  | Ok plan -> Faults.install plan
  | Error e -> Alcotest.failf "fault spec %S: %s" spec e);
  let saved = Sys.getenv_opt "GIGASCOPE_FAULTS" in
  Unix.putenv "GIGASCOPE_FAULTS" spec;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "GIGASCOPE_FAULTS" (Option.value saved ~default:"");
      Faults.clear ())
    body

(* ------------------------------ fault specs ----------------------------- *)

let test_spec_round_trip () =
  let spec = "seed=7,crash=total:3,stall=xc:2:5.5,xclose=xc:1,torn=2,drop~0.25,delay=1:10,disconnect=4" in
  match Faults.parse spec with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      let printed = Faults.to_string plan in
      (match Faults.parse printed with
      | Error e -> Alcotest.failf "re-parse of %S: %s" printed e
      | Ok plan' ->
          check Alcotest.string "to_string is a fixpoint" printed (Faults.to_string plan'));
      check Alcotest.int "seed parsed" 7 plan.Faults.seed;
      check Alcotest.int "all clauses parsed" 7 (List.length plan.Faults.clauses)

let test_spec_rejects_garbage () =
  List.iter
    (fun bad ->
      match Faults.parse bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error e -> check Alcotest.bool (bad ^ " has a message") true (String.length e > 0))
    [
      "crash=3" (* targeted kind without a target *);
      "bogus=1" (* unknown kind *);
      "seed=x";
      "crash=n:0" (* hits count from 1 *);
      "drop~1.5" (* probability beyond 1 *);
      "delay=1:nope" (* bad milliseconds *);
      "crash" (* no mode at all *);
    ]

let test_nth_fires_exactly_once () =
  with_faults "crash=op:3" (fun () ->
      let fired = ref [] in
      for i = 1 to 6 do
        (* other nodes never match the target *)
        Faults.crash_point ~node:"bystander";
        match Faults.crash_point ~node:"op" with
        | () -> ()
        | exception Faults.Injected _ -> fired := i :: !fired
      done;
      check Alcotest.(list int) "fires on the 3rd hit only" [ 3 ] (List.rev !fired))

let test_prob_replays_for_seed () =
  let pattern () =
    with_faults "seed=5,drop~0.4" (fun () ->
        List.init 40 (fun _ -> Faults.send_point ~peer:"p" ~len:64 = Faults.Drop))
  in
  let a = pattern () in
  let b = pattern () in
  check Alcotest.(list bool) "same seed, same firing pattern" a b;
  check Alcotest.bool "something fired" true (List.mem true a);
  check Alcotest.bool "something passed" true (List.mem false a)

(* --------------------------- supervision -------------------------------- *)

let int_schema =
  Schema.make [ { Schema.name = "x"; ty = Ty.Int; order = Order_prop.Unordered } ]

let counting_source n =
  let remaining = ref n in
  {
    Rts.Node.pull =
      (fun () ->
        if !remaining > 0 then begin
          decr remaining;
          Some (Item.Tuple [| Value.Int (n - !remaining) |])
        end
        else None);
    clock = (fun () -> []);
  }

let passthrough ~restartable =
  if restartable then Rts.Operator.stateless (fun row ~emit -> emit (Item.Tuple row)) ~n_inputs:1
  else
    {
      Rts.Operator.on_item =
        (fun ~input:_ item ~emit ->
          match item with
          | Item.Tuple _ | Item.Eof | Item.Punct _ | Item.Flush | Item.Error _ | Item.Gap _ ->
              emit item);
      on_batch = None;
      blocked_input = (fun () -> None);
      buffered = (fun () -> 0);
      reset = None;
    }

(* src -> op -> collected items; returns the manager, the collector and
   the source node (for shed accounting) *)
let pipeline ?(name = "op") ?(n = 10) ~restartable () =
  let mgr = Rts.Manager.create () in
  ignore (Result.get_ok (Rts.Manager.add_source mgr ~name:"src" ~schema:int_schema (counting_source n)));
  ignore
    (Result.get_ok
       (Rts.Manager.add_query_node mgr ~name ~kind:Rts.Node.Hfta ~schema:int_schema
          ~inputs:[ "src" ] ~op:(passthrough ~restartable)));
  let items = ref [] in
  Result.get_ok (Rts.Manager.on_item mgr name (fun it -> items := it :: !items));
  (mgr, fun () -> List.rev !items)

let count_tuples items = List.length (List.filter Item.is_tuple items)
let gaps items = List.filter_map (function Item.Gap g -> Some g | _ -> None) items
let has_error items = List.exists (function Item.Error _ -> true | _ -> false) items

let test_fail_fast_names_the_node () =
  with_faults "crash=op:2" (fun () ->
      let mgr, _ = pipeline ~restartable:false () in
      let s = Supervisor.create ~policy:Supervisor.Fail_fast () in
      match Rts.Scheduler.run ~supervisor:s mgr with
      | Ok _ -> Alcotest.fail "crash did not fail the run"
      | Error e ->
          check Alcotest.bool ("error names the node: " ^ e) true (contains e "op");
          check Alcotest.bool "error names the injection" true (contains e "injected"))

let test_isolate_poisons_only_the_subtree () =
  with_faults "crash=opA:2" (fun () ->
      let mgr = Rts.Manager.create () in
      List.iter
        (fun (src, op) ->
          ignore
            (Result.get_ok (Rts.Manager.add_source mgr ~name:src ~schema:int_schema (counting_source 10)));
          ignore
            (Result.get_ok
               (Rts.Manager.add_query_node mgr ~name:op ~kind:Rts.Node.Hfta ~schema:int_schema
                  ~inputs:[ src ] ~op:(passthrough ~restartable:false))))
        [ ("srcA", "opA"); ("srcB", "opB") ];
      let got_a = ref [] and got_b = ref [] in
      Result.get_ok (Rts.Manager.on_item mgr "opA" (fun it -> got_a := it :: !got_a));
      Result.get_ok (Rts.Manager.on_item mgr "opB" (fun it -> got_b := it :: !got_b));
      let s = Supervisor.create ~policy:Supervisor.Isolate () in
      (match Rts.Scheduler.run ~supervisor:s mgr with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("isolate run must converge: " ^ e));
      let a = List.rev !got_a and b = List.rev !got_b in
      check Alcotest.bool "poisoned branch carries an explicit error" true (has_error a);
      check Alcotest.bool "poisoned branch still terminates (Eof)" true (List.mem Item.Eof a);
      check Alcotest.int "healthy branch unaffected" 10 (count_tuples b);
      check Alcotest.bool "supervisor records the poison" true
        (List.mem "opA" (Supervisor.poisoned s)))

let test_restart_within_budget () =
  with_faults "crash=op:3" (fun () ->
      let mgr, get = pipeline ~restartable:true ~n:10 () in
      let s = Supervisor.create ~policy:Supervisor.Restart ~restart_budget:3 () in
      (match Rts.Scheduler.run ~supervisor:s mgr with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("restart run must converge: " ^ e));
      let items = get () in
      check Alcotest.int "one restart consumed" 1 (Supervisor.restarts s);
      check Alcotest.bool "loss is announced as a gap" true (gaps items <> []);
      check Alcotest.bool "no poisoning" false (has_error items);
      (* the batch in flight at the crash is the only loss *)
      check Alcotest.int "all other tuples delivered" 9 (count_tuples items))

let test_restart_budget_exhausts_to_poison () =
  (* probability 1: the operator crashes on every single step *)
  with_faults "seed=1,crash~op:1" (fun () ->
      let mgr, get = pipeline ~restartable:true ~n:10 () in
      let s = Supervisor.create ~policy:Supervisor.Restart ~restart_budget:3 () in
      (match Rts.Scheduler.run ~supervisor:s mgr with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("exhausted-budget run must converge: " ^ e));
      let items = get () in
      check Alcotest.int "budget fully consumed" 3 (Supervisor.restarts s);
      check Alcotest.bool "then poisoned" true (has_error items);
      check Alcotest.bool "poison recorded" true (List.mem "op" (Supervisor.poisoned s));
      check Alcotest.bool "stream still terminates" true (List.mem Item.Eof items))

let test_stateful_operator_never_restarts () =
  with_faults "crash=op:2" (fun () ->
      let mgr, get = pipeline ~restartable:false ~n:10 () in
      let s = Supervisor.create ~policy:Supervisor.Restart ~restart_budget:3 () in
      (match Rts.Scheduler.run ~supervisor:s mgr with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("run must converge: " ^ e));
      let items = get () in
      check Alcotest.int "no restart for stateful state" 0 (Supervisor.restarts s);
      check Alcotest.bool "degrades to poison" true (has_error items))

(* ------------------------- parallel domains ------------------------------ *)

let tcpdest_workload () = Workloads.read_query "tcpdest"

let run_tcpdest ?supervise ?batch ?parallel () =
  let engine = E.create () in
  Workloads.eth0_setup ~rate:20.0 ~duration:0.5 ~seed:42 engine;
  (match E.install_program engine (tcpdest_workload ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let outputs = [ "tcpdest0"; "portcounts" ] in
  let collectors = List.map (fun n -> (n, Workloads.collect engine n)) outputs in
  let result = E.run engine ?supervise ?batch ?parallel () in
  (result, List.map (fun (n, get) -> (n, get ())) collectors)

let test_parallel_worker_crash_reported () =
  with_faults "crash=portcounts:5" (fun () ->
      (* portcounts is an HFTA: on 3 domains it crashes on a worker, and
         the failure must still surface as domain 0's run error *)
      match run_tcpdest ~supervise:Supervisor.Fail_fast ~parallel:3 () with
      | Ok _, _ -> Alcotest.fail "worker crash did not fail the run"
      | Error e, _ ->
          check Alcotest.bool ("error names the node: " ^ e) true (contains e "portcounts"))

let test_parallel_isolate_converges () =
  let (baseline, base_out) = run_tcpdest () in
  (match baseline with Ok _ -> () | Error e -> Alcotest.fail e);
  with_faults "crash=portcounts:5" (fun () ->
      match run_tcpdest ~supervise:Supervisor.Isolate ~parallel:3 () with
      | Error e, _ -> Alcotest.fail ("parallel isolate must converge: " ^ e)
      | Ok _, out ->
          (* the sibling query is untouched, byte for byte *)
          check
            Alcotest.(list string)
            "tcpdest0 unaffected by portcounts poisoning"
            (List.assoc "tcpdest0" base_out) (List.assoc "tcpdest0" out))

let test_parallel_stall_converges () =
  (* stalls in cross-domain pushes slow the run down but must not change
     its output or wedge it *)
  let (baseline, base_out) = run_tcpdest () in
  (match baseline with Ok _ -> () | Error e -> Alcotest.fail e);
  with_faults "stall=portcounts:3:5,stall=portcounts:9:5" (fun () ->
      match run_tcpdest ~parallel:3 () with
      | Error e, _ -> Alcotest.fail ("stalled run must converge: " ^ e)
      | Ok _, out ->
          List.iter
            (fun (name, rows) ->
              check Alcotest.(list string) (name ^ " identical under stalls")
                (List.assoc name base_out) rows)
            out)

let test_faults_off_differential () =
  (* the tentpole's invisibility claim: supervision armed, faults off,
     output byte-identical across the whole execution matrix *)
  let (r0, base) = run_tcpdest () in
  (match r0 with Ok _ -> () | Error e -> Alcotest.fail e);
  List.iter
    (fun (label, batch, parallel) ->
      let (r, out) =
        run_tcpdest ~supervise:Supervisor.Restart ?batch ?parallel ()
      in
      (match r with Ok _ -> () | Error e -> Alcotest.fail (label ^ ": " ^ e));
      List.iter
        (fun (name, rows) ->
          check Alcotest.(list string)
            (Printf.sprintf "%s %s byte-identical" label name)
            (List.assoc name base) rows)
        out)
    [ ("batch=64", Some 64, None); ("parallel=3", None, Some 3); ("batch=16 parallel=2", Some 16, Some 2) ]

(* --------------------------- sharded chains ------------------------------ *)

(* Failure inside ONE shard of a sharded chain: the fault machinery must
   treat a replica as just another node. Fail-fast names the replica;
   isolate poisons only that shard's cone — the sibling query in the
   same engine and the surviving shard keep working; a stall is delay
   only, so the reunified output is untouched; and a Gap entering the
   reunification merge is forwarded exactly once, payload intact. *)

let two_query_program () =
  Workloads.read_query "tcpdest" ^ "\n" ^ Workloads.read_query "subnet_volume"

(* tcpdest0 shards round-robin (2 select replicas + reunify merge),
   subnet_volume hash-partitions its sub-aggregation; both over the one
   eth0 tap. Returns the run result, tcpdest0's raw item stream (errors
   and Eof included) and subnet_volume's tuple rows. *)
let run_sharded_pair ?supervise ?parallel () =
  let engine = E.create ~shards:2 () in
  Workloads.eth0_setup ~rate:20.0 ~duration:0.5 ~seed:42 engine;
  (match E.install_program engine (two_query_program ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let items = ref [] in
  Result.get_ok
    (Rts.Manager.on_item (E.manager engine) "tcpdest0" (fun it -> items := it :: !items));
  let sv = Workloads.collect engine "subnet_volume" in
  let result = E.run engine ?supervise ?parallel () in
  (result, List.rev !items, sv ())

let tuple_rows items =
  List.filter_map
    (function Item.Tuple t -> Some (Workloads.row_to_string t) | _ -> None)
    items

let test_shard_crash_fail_fast () =
  with_faults "crash=_shard_tcpdest0_0:3" (fun () ->
      match run_sharded_pair ~supervise:Supervisor.Fail_fast () with
      | Ok _, _, _ -> Alcotest.fail "shard crash did not fail the run"
      | Error e, _, _ ->
          check Alcotest.bool ("error names the replica: " ^ e) true
            (contains e "_shard_tcpdest0_0"))

let test_shard_crash_isolate () =
  let r0, items0, sv0 = run_sharded_pair () in
  (match r0 with Ok _ -> () | Error e -> Alcotest.fail e);
  let base_rows = tuple_rows items0 in
  with_faults "crash=_shard_tcpdest0_0:3" (fun () ->
      match run_sharded_pair ~supervise:Supervisor.Isolate () with
      | Error e, _, _ -> Alcotest.fail ("isolate under shards must converge: " ^ e)
      | Ok _, items, sv ->
          check Alcotest.bool "poison visible at the reunified output" true
            (has_error items);
          check Alcotest.bool "reunified stream still terminates" true
            (List.mem Item.Eof items);
          let rows = tuple_rows items in
          check Alcotest.bool "surviving shard keeps flowing" true (rows <> []);
          List.iter
            (fun r ->
              check Alcotest.bool "surviving rows are genuine" true (List.mem r base_rows))
            rows;
          check
            Alcotest.(list string)
            "sibling query's shards untouched, byte for byte" sv0 sv)

let test_shard_stall_identical () =
  let r0, items0, sv0 = run_sharded_pair () in
  (match r0 with Ok _ -> () | Error e -> Alcotest.fail e);
  with_faults "stall=_shard_tcpdest0_1:3:5" (fun () ->
      match run_sharded_pair ~parallel:3 () with
      | Error e, _, _ -> Alcotest.fail ("stalled shard must converge: " ^ e)
      | Ok _, items, sv ->
          check
            Alcotest.(list string)
            "reunified output identical under a stalled shard" (tuple_rows items0)
            (tuple_rows items);
          check Alcotest.(list string) "sibling query identical" sv0 sv)

let test_shard_merge_gap_conserved () =
  let merge =
    Rts.Merge_op.make
      { Rts.Merge_op.n_inputs = 2; ordered_idx = 0; direction = Rts.Order_prop.Asc }
  in
  let op = Rts.Merge_op.op merge in
  let out = ref [] in
  let emit i = out := i :: !out in
  op.Rts.Operator.on_item ~input:0 (Item.Tuple [| Value.Int 1 |]) ~emit;
  op.Rts.Operator.on_item ~input:1 (Item.Tuple [| Value.Int 2 |]) ~emit;
  op.Rts.Operator.on_item ~input:0 (Item.Gap 7) ~emit;
  op.Rts.Operator.on_item ~input:1 (Item.Gap (-1)) ~emit;
  op.Rts.Operator.on_item ~input:0 Item.Eof ~emit;
  op.Rts.Operator.on_item ~input:1 Item.Eof ~emit;
  let emitted = List.rev !out in
  check
    Alcotest.(list int)
    "each gap forwarded exactly once, payload intact" [ 7; -1 ] (gaps emitted);
  check Alcotest.int "no tuple lost around the gaps" 2 (count_tuples emitted)

(* ----------------------------- shedding ---------------------------------- *)

let test_shed_conserves_tuples () =
  let mgr = Rts.Manager.create () in
  let n = 100 in
  let src_node =
    Result.get_ok (Rts.Manager.add_source mgr ~name:"src" ~schema:int_schema (counting_source n))
  in
  (* a subscriber channel nobody drains: pressure builds immediately *)
  let chan = Result.get_ok (Rts.Manager.subscribe mgr ~capacity:10 "src") in
  (match Rts.Scheduler.run ~shed:0.5 mgr with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let items = ref [] in
  let rec drain () =
    match Rts.Channel.pop chan with
    | Some it ->
        items := it :: !items;
        drain ()
    | None -> ()
  in
  drain ();
  let items = List.rev !items in
  let delivered = count_tuples items in
  let announced = List.fold_left ( + ) 0 (gaps items) in
  let shed = Rts.Node.shed_count src_node in
  check Alcotest.bool "pressure actually shed" true (shed > 0);
  check Alcotest.int "gap markers announce exactly the shed loss" shed announced;
  check Alcotest.int "emitted + shed = pulled" n (delivered + shed);
  check Alcotest.bool "stream still ends in Eof" true (List.mem Item.Eof items)

(* --------------------------- network healing ----------------------------- *)

let sock_counter = ref 0

let fresh_sock_path () =
  incr sock_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gsq-chaos-%d-%d.sock" (Unix.getpid ()) !sock_counter)
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  path

let counter_value snapshot name =
  match Metrics.find snapshot name with
  | Some (Metrics.Counter n) -> n
  | Some _ -> Alcotest.failf "%s is not a counter" name
  | None -> 0

let payload_program =
  {|
  DEFINE { query_name pay; }
  SELECT time, len, payload FROM eth0.tcp WHERE ipversion = 4
|}

let payload_workload =
  {
    Workloads.wname = "pay";
    program = (fun () -> payload_program);
    setup = Workloads.eth0_setup ~rate:20.0 ~duration:0.5;
    outputs = [ "pay" ];
    params = [];
  }

let await ?(timeout = 10.0) what cond =
  let deadline = Gigascope_obs.Clock.now_ns () +. (timeout *. 1e9) in
  let rec go () =
    if cond () then ()
    else if Gigascope_obs.Clock.now_ns () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

(* S1: a unix path with a live listener behind it must be refused with a
   one-line error; a stale file from a dead server must be reclaimed. *)
let test_listen_address_conflicts () =
  let path = fresh_sock_path () in
  let e1 = E.create () in
  let s1 = Server.create e1 in
  (match Server.listen s1 (Addr.Unix_sock path) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let e2 = E.create () in
  let s2 = Server.create e2 in
  (match Server.listen s2 (Addr.Unix_sock path) with
  | Ok _ -> Alcotest.fail "second server stole a live listener's socket"
  | Error e ->
      check Alcotest.bool ("one-line error: " ^ e) true (contains e "cannot listen"));
  Server.stop s2;
  Server.stop s1;
  (* now fake a crashed server: a socket file with nothing behind it *)
  let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind stale (Unix.ADDR_UNIX path);
  Unix.close stale (* close without unlink: the file stays *);
  check Alcotest.bool "stale file exists" true (Sys.file_exists path);
  let e3 = E.create () in
  let s3 = Server.create e3 in
  (match Server.listen s3 (Addr.Unix_sock path) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("stale socket not reclaimed: " ^ e));
  Server.stop s3

(* S2: a server that stops talking must surface as a timeout error on
   the client, never as an eternal hang in next/iter. *)
let test_idle_timeout_detects_dead_peer () =
  let engine = E.create () in
  payload_workload.Workloads.setup ~seed:7 engine;
  (match E.install_program engine payload_program with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let server = Server.create engine in
  let addr = Result.get_ok (Server.listen server (Addr.Unix_sock (fresh_sock_path ()))) in
  let client = Result.get_ok (Client.connect ~idle_timeout:0.2 addr) in
  (match Client.subscribe client "pay" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* the engine never runs and the server sends no heartbeats: the read
     deadline is the only way out *)
  let t0 = Gigascope_obs.Clock.now_ns () in
  (match Client.next client with
  | Ok _ -> Alcotest.fail "next returned data from a silent server"
  | Error e -> check Alcotest.bool ("timeout error: " ^ e) true (contains e "timeout"));
  let waited = (Gigascope_obs.Clock.now_ns () -. t0) /. 1e9 in
  check Alcotest.bool "returned promptly, not hung" true (waited < 5.0);
  Client.close client;
  Server.stop server

(* Heartbeats feed the idle deadline: a quiet-but-live server must NOT
   trip the client's timeout. *)
let test_heartbeats_keep_idle_link_alive () =
  let engine = E.create () in
  payload_workload.Workloads.setup ~seed:7 engine;
  (match E.install_program engine payload_program with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let server = Server.create ~heartbeat:0.05 engine in
  let addr = Result.get_ok (Server.listen server (Addr.Unix_sock (fresh_sock_path ()))) in
  let rows = ref 0 in
  let err = ref None in
  let client_thread =
    Thread.create
      (fun () ->
        match Client.connect ~idle_timeout:0.3 addr with
        | Error e -> err := Some e
        | Ok c -> (
            match Client.subscribe c "pay" with
            | Error e -> err := Some e
            | Ok _ -> (
                match Client.iter c (fun it -> if Item.is_tuple it then incr rows) with
                | Ok () -> Client.close c
                | Error e -> err := Some e)))
      ()
  in
  await "subscriber" (fun () -> Server.subscriber_count server = 1);
  (* sit past several idle windows before producing anything: only the
     heartbeats keep the subscription alive *)
  Thread.delay 0.8;
  (match E.run engine () with Ok _ -> () | Error e -> Alcotest.fail e);
  Thread.join client_thread;
  ignore (Server.drain ~timeout:5.0 server);
  Server.stop server;
  (match !err with Some e -> Alcotest.fail ("client: " ^ e) | None -> ());
  check Alcotest.bool "stream delivered after the quiet period" true (!rows > 0);
  let hb = counter_value (E.metrics_snapshot engine) "net.heartbeats.sent" in
  check Alcotest.bool "heartbeats were sent" true (hb > 0)

(* The healing loop end to end: a fault plan severs the subscriber's
   socket mid-stream; the client redials, resumes with its token, and
   every missed tuple is announced as an explicit gap. *)
let run_healing_scenario ~spec ~label =
  let seed = 11 in
  let baseline, _ = Workloads.exec payload_workload ~seed ~parallel:1 () in
  let total = List.length (List.assoc "pay" baseline) in
  Alcotest.(check bool) "workload produces traffic" true (total > 500);
  with_faults spec (fun () ->
      let engine = E.create () in
      payload_workload.Workloads.setup ~seed engine;
      (match E.install_program engine payload_program with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      let server = Server.create ~egress_capacity:(total + 1024) engine in
      let addr = Result.get_ok (Server.listen server (Addr.Unix_sock (fresh_sock_path ()))) in
      let delivered = ref 0 in
      let gap_sum = ref 0 in
      let err = ref None in
      let client_thread =
        Thread.create
          (fun () ->
            match
              Client.connect
                ~reconnect:{ Client.default_reconnect with attempts = 10; base_delay = 0.01 }
                addr
            with
            | Error e -> err := Some e
            | Ok c -> (
                match Client.subscribe c "pay" with
                | Error e -> err := Some e
                | Ok _ -> (
                    match
                      Client.iter c (fun item ->
                          match item with
                          | Item.Tuple _ -> incr delivered
                          | Item.Gap g ->
                              if g < 0 then err := Some "unknown-size gap on a resumable sub"
                              else gap_sum := !gap_sum + g
                          | _ -> ())
                    with
                    | Ok () -> Client.close c
                    | Error e -> err := Some e)))
          ()
      in
      await "subscriber" (fun () -> Server.subscriber_count server = 1);
      (match E.run engine () with Ok _ -> () | Error e -> Alcotest.fail e);
      Thread.join client_thread;
      ignore (Server.drain ~timeout:5.0 server);
      let snap = E.metrics_snapshot engine in
      Server.stop server;
      (match !err with Some e -> Alcotest.fail (label ^ " client: " ^ e) | None -> ());
      check Alcotest.bool (label ^ ": connection was actually severed") true
        (!delivered < total || counter_value snap "net.resumes" > 0);
      check Alcotest.bool (label ^ ": client resumed") true (counter_value snap "net.resumes" >= 1);
      check Alcotest.int (label ^ ": delivered + announced gaps = total") total
        (!delivered + !gap_sum))

let test_reconnect_resumes_after_disconnect () =
  run_healing_scenario ~spec:"disconnect=3" ~label:"disconnect"

let test_reconnect_survives_torn_write () =
  run_healing_scenario ~spec:"torn=3" ~label:"torn"

(* --------------------------- state watchdog ------------------------------ *)

(* The regression behind the watchdog: a source whose schema imputes an
   ordering the data does not have. The certifier believes the schema
   (Monotone Asc ⇒ epoch group-closing ⇒ tiny bound, so the plan
   admits), but a first tuple from the far future races the aggregate's
   high water to the top and every later epoch opens a group that can
   never close — unbounded growth on a certified-finite plan. The
   watchdog must catch the certificate violation, announce the held
   state as one Gap, and hand the node to the supervisor instead of
   wedging; a sibling query on an honest source stays byte-identical. *)

let lying_ts_schema order =
  Schema.make [ { Schema.name = "ts"; ty = Ty.Int; order } ]

let add_liar engine ~n =
  (* tuple 0: ts = 1_000_000 (the racer); tuples 1..n: ts = 1..n *)
  let i = ref (-1) in
  Result.get_ok
    (E.add_custom_source engine ~name:"liar"
       ~schema:(lying_ts_schema (Order_prop.Monotone Order_prop.Asc))
       ~pull:(fun () ->
         incr i;
         if !i = 0 then Some (Item.Tuple [| Value.Int 1_000_000 |])
         else if !i <= n then Some (Item.Tuple [| Value.Int !i |])
         else None)
       ~clock:(fun () -> []))

let add_honest engine ~n =
  let i = ref 0 in
  Result.get_ok
    (E.add_custom_source engine ~name:"wellsrc"
       ~schema:(lying_ts_schema (Order_prop.Monotone Order_prop.Asc))
       ~pull:(fun () ->
         if !i >= n then None
         else begin
           incr i;
           Some (Item.Tuple [| Value.Int !i |])
         end)
       ~clock:(fun () -> []))

let bad_query = "DEFINE { query_name bad; } SELECT tb, count(*) as c FROM liar GROUP BY ts/1 as tb"
let good_query = "DEFINE { query_name good; } SELECT tb, count(*) as c FROM wellsrc GROUP BY ts/1 as tb"

let test_watchdog_isolates_certificate_violation () =
  let n = 64 in
  let total = n + 1 in
  let run_good_solo () =
    let engine = E.create () in
    add_honest engine ~n;
    (match E.install_program engine good_query with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    let got = ref [] in
    Result.get_ok (Rts.Manager.on_item (E.manager engine) "good" (fun it -> got := it :: !got));
    (match E.run engine ~quantum:total ~heartbeats:false () with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    List.rev !got
  in
  let engine = E.create () in
  add_liar engine ~n;
  add_honest engine ~n;
  (match E.install_program engine (bad_query ^ "\n" ^ good_query) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* the lie admitted the plan: the recorded certificate is finite *)
  (match E.certificate engine "bad" with
  | Some cert -> check Alcotest.bool "lying schema certifies finite" true (Gigascope_gsql.Certify.finite cert)
  | None -> Alcotest.fail "no certificate recorded for bad");
  let bad_items = ref [] and good_items = ref [] in
  Result.get_ok (Rts.Manager.on_item (E.manager engine) "bad" (fun it -> bad_items := it :: !bad_items));
  Result.get_ok (Rts.Manager.on_item (E.manager engine) "good" (fun it -> good_items := it :: !good_items));
  (* quantum = total: every tuple crosses into the aggregate in ONE
     input step — and the source's quantum runs out before it reaches
     EOF, so the held state is inspected before an Eof can flush it *)
  (match
     E.run engine ~quantum:total ~heartbeats:false ~state_slack:2.0
       ~supervise:Supervisor.Isolate ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("isolate run must converge: " ^ e));
  let bad = List.rev !bad_items in
  let delivered = count_tuples bad in
  let gaps =
    List.fold_left (fun acc it -> match it with Item.Gap g -> acc + g | _ -> acc) 0 bad
  in
  check Alcotest.int "nothing delivered before the trip" 0 delivered;
  check Alcotest.int "the held state is announced as gaps" total gaps;
  check Alcotest.int "delivered + gaps = total" total (delivered + gaps);
  check Alcotest.bool "violation surfaces as an explicit error" true (has_error bad);
  check Alcotest.bool "isolated node still terminates (Eof)" true (List.mem Item.Eof bad);
  (match Rts.Manager.find (E.manager engine) "bad" with
  | None -> Alcotest.fail "bad not installed"
  | Some node ->
      check Alcotest.int "watchdog counted the trip" 1 (Rts.Node.watchdog_trips node);
      check Alcotest.bool "peak gauge recorded the blow-up" true
        (Rts.Node.state_peak node >= total));
  check Alcotest.bool "sibling query is byte-identical to its solo run" true
    (List.rev !good_items = run_good_solo ())

let test_honest_schema_is_rejected_statically () =
  (* same stream, honest (Unordered) schema: the certifier refuses it
     up front, naming the operator — the watchdog is only the backstop
     for schemas that lie *)
  let engine = E.create ~admit:E.Admit_reject () in
  let i = ref 0 in
  Result.get_ok
    (E.add_custom_source engine ~name:"liar"
       ~schema:(lying_ts_schema Order_prop.Unordered)
       ~pull:(fun () ->
         incr i;
         if !i <= 3 then Some (Item.Tuple [| Value.Int !i |]) else None)
       ~clock:(fun () -> []));
  match E.install_program engine bad_query with
  | Ok _ -> Alcotest.fail "unordered epoch key must not certify"
  | Error e ->
      check Alcotest.bool "diagnostic names the operator" true (contains e "bad");
      check Alcotest.bool "diagnostic names the admission override" true
        (contains e "--allow-unbounded")

(* ------------------------------ registration ----------------------------- *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "chaos"
    [
      ( "fault specs",
        [
          tc "spec parses and round-trips" test_spec_round_trip;
          tc "garbage specs rejected" test_spec_rejects_garbage;
          tc "nth clause fires exactly once" test_nth_fires_exactly_once;
          tc "prob clause replays for a seed" test_prob_replays_for_seed;
        ] );
      ( "supervision",
        [
          tc "fail_fast names the node" test_fail_fast_names_the_node;
          tc "isolate poisons only the subtree" test_isolate_poisons_only_the_subtree;
          tc "restart within budget" test_restart_within_budget;
          tc "budget exhausts to poison" test_restart_budget_exhausts_to_poison;
          tc "stateful operators never restart" test_stateful_operator_never_restarts;
        ] );
      ( "parallel domains",
        [
          tc "worker crash reported to domain 0" test_parallel_worker_crash_reported;
          tc "isolate converges on domains" test_parallel_isolate_converges;
          tc "injected stalls do not wedge" test_parallel_stall_converges;
          tc "faults off: byte-identical matrix" test_faults_off_differential;
        ] );
      ( "sharded chains",
        [
          tc "fail_fast names the crashed replica" test_shard_crash_fail_fast;
          tc "isolate poisons only the shard's cone" test_shard_crash_isolate;
          tc "stalled shard: output identical" test_shard_stall_identical;
          tc "gaps conserved through the reunify merge" test_shard_merge_gap_conserved;
        ] );
      ("shedding", [ tc "emitted + shed = pulled" test_shed_conserves_tuples ]);
      ( "state watchdog",
        [
          tc "certificate violation isolated, gaps conserved"
            test_watchdog_isolates_certificate_violation;
          tc "honest schema rejected statically" test_honest_schema_is_rejected_statically;
        ] );
      ( "network healing",
        [
          tc "listen: live socket refused, stale reclaimed" test_listen_address_conflicts;
          tc "idle timeout surfaces a dead peer" test_idle_timeout_detects_dead_peer;
          tc "heartbeats keep an idle link alive" test_heartbeats_keep_idle_link_alive;
          tc "reconnect resumes after a cut" test_reconnect_resumes_after_disconnect;
          tc "reconnect survives a torn write" test_reconnect_survives_torn_write;
        ] );
    ]
