(* Tests for the packet substrate: header codecs, checksums, whole-packet
   round trips, fragmentation/reassembly, pcap files, Netflow records. *)

module P = Gigascope_packet
module Bytes_util = P.Bytes_util
module Checksum = P.Checksum
module Ipaddr = P.Ipaddr
module Ethernet = P.Ethernet
module Ipv4 = P.Ipv4
module Tcp = P.Tcp
module Udp = P.Udp
module Icmp = P.Icmp
module Packet = P.Packet
module Frag = P.Frag
module Pcap = P.Pcap
module Netflow = P.Netflow
module Prng = Gigascope_util.Prng

let check = Alcotest.check
let qtest ?(count = 200) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---------------------------- Bytes_util ------------------------------- *)

let bytes_u16_roundtrip =
  qtest "u16 roundtrip" QCheck.(int_range 0 0xffff) (fun v ->
      let b = Bytes.create 2 in
      Bytes_util.set_u16 b 0 v;
      Bytes_util.get_u16 b 0 = v)

let bytes_u32_roundtrip =
  qtest "u32 roundtrip" QCheck.(int_range 0 0xffffffff) (fun v ->
      let b = Bytes.create 4 in
      Bytes_util.set_u32 b 0 v;
      Bytes_util.get_u32 b 0 = v)

let bytes_u48_roundtrip =
  qtest "u48 roundtrip" QCheck.(int_range 0 0xffffffffffff) (fun v ->
      let b = Bytes.create 6 in
      Bytes_util.set_u48 b 0 v;
      Bytes_util.get_u48 b 0 = v)

let test_bytes_endianness () =
  let b = Bytes.create 4 in
  Bytes_util.set_u32 b 0 0x01020304;
  check Alcotest.int "big-endian byte 0" 0x01 (Bytes_util.get_u8 b 0);
  check Alcotest.int "big-endian byte 3" 0x04 (Bytes_util.get_u8 b 3)

let test_hexdump () =
  let s = Bytes_util.hexdump (Bytes.of_string "AB\x00") in
  check Alcotest.bool "hexdump mentions bytes" true
    (String.length s > 0
    &&
    let has sub =
      let rec go i = i + String.length sub <= String.length s && (String.sub s i (String.length sub) = sub || go (i + 1)) in
      go 0
    in
    has "41" && has "42" && has "00")

(* ----------------------------- Checksum -------------------------------- *)

let test_checksum_rfc1071_example () =
  (* RFC 1071's worked example: 0001 f203 f4f5 f6f7 -> checksum 0x220d *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check Alcotest.int "rfc1071 example" 0x220d (Checksum.compute b 0 8)

let checksum_validates =
  qtest "filled-in checksum validates" QCheck.(list_of_size (Gen.int_range 4 64) (int_range 0 255))
    (fun byte_list ->
      (* even-length region with a 2-byte checksum slot at offset 0 *)
      let n = (List.length byte_list / 2 * 2) + 2 in
      let b = Bytes.make n '\000' in
      List.iteri (fun i v -> if i + 2 < n then Bytes_util.set_u8 b (i + 2) v) byte_list;
      let csum = Checksum.compute b 0 n in
      Bytes_util.set_u16 b 0 csum;
      Checksum.valid b 0 n)

let test_checksum_odd_length () =
  let b = Bytes.of_string "\x12\x34\x56" in
  (* trailing odd byte padded as high octet *)
  let sum = Checksum.sum16 b 0 3 in
  check Alcotest.int "odd trailing byte" (0x1234 + 0x5600) sum

(* ------------------------------ Ipaddr --------------------------------- *)

let ipaddr_roundtrip =
  qtest "parse/print roundtrip" QCheck.(int_range 0 0xffffffff) (fun ip ->
      Ipaddr.of_string (Ipaddr.to_string ip) = ip)

let test_ipaddr_parsing () =
  check Alcotest.int "basic" (Ipaddr.of_octets 10 0 0 1) (Ipaddr.of_string "10.0.0.1");
  check Alcotest.(option int) "bad octet" None (Ipaddr.of_string_opt "10.0.0.256");
  check Alcotest.(option int) "too few parts" None (Ipaddr.of_string_opt "10.0.0");
  check Alcotest.(option int) "garbage" None (Ipaddr.of_string_opt "a.b.c.d");
  check Alcotest.(option int) "empty octet" None (Ipaddr.of_string_opt "10..0.1")

let test_ipaddr_prefix () =
  check Alcotest.int "/8 mask" 0xff000000 (Ipaddr.prefix_mask 8);
  check Alcotest.int "/0 mask" 0 (Ipaddr.prefix_mask 0);
  check Alcotest.int "/32 mask" 0xffffffff (Ipaddr.prefix_mask 32);
  let prefix = Ipaddr.of_string "10.1.0.0" in
  check Alcotest.bool "in prefix" true
    (Ipaddr.in_prefix (Ipaddr.of_string "10.1.2.3") ~prefix ~len:16);
  check Alcotest.bool "outside prefix" false
    (Ipaddr.in_prefix (Ipaddr.of_string "10.2.2.3") ~prefix ~len:16);
  check Alcotest.(pair int int) "parse_prefix with len" (prefix, 16)
    (Ipaddr.parse_prefix "10.1.0.0/16");
  check Alcotest.(pair int int) "bare address is /32"
    (Ipaddr.of_string "1.2.3.4", 32)
    (Ipaddr.parse_prefix "1.2.3.4")

(* ----------------------------- Ethernet -------------------------------- *)

let test_ethernet_roundtrip () =
  let h = { Ethernet.dst = 0x112233445566; src = 0xaabbccddeeff; ethertype = 0x0800 } in
  let b = Bytes.create 14 in
  Ethernet.encode h b 0;
  match Ethernet.decode b 0 with
  | Ok h' ->
      check Alcotest.int "dst" h.Ethernet.dst h'.Ethernet.dst;
      check Alcotest.int "src" h.Ethernet.src h'.Ethernet.src;
      check Alcotest.int "ethertype" h.Ethernet.ethertype h'.Ethernet.ethertype
  | Error e -> Alcotest.fail e

let test_ethernet_truncated () =
  match Ethernet.decode (Bytes.create 10) 0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected truncation error"

(* ------------------------------- Ipv4 ---------------------------------- *)

let arbitrary_ipv4 =
  QCheck.make
    (QCheck.Gen.map
       (fun (seed : int) ->
         let rng = Prng.create seed in
         Ipv4.make ~tos:(Prng.int rng 256) ~ident:(Prng.int rng 65536)
           ~dont_fragment:(Prng.bool rng) ~ttl:(1 + Prng.int rng 255)
           ~protocol:(Prng.int rng 256)
           ~src:(Prng.int rng 0x40000000)
           ~dst:(Prng.int rng 0x40000000)
           ~payload_len:(Prng.int rng 1000) ())
       QCheck.Gen.int)

let ipv4_roundtrip =
  qtest "ipv4 header roundtrip" arbitrary_ipv4 (fun h ->
      let b = Bytes.create (Ipv4.header_len h + 4) in
      Ipv4.encode h b 0;
      match Ipv4.decode b 0 with
      | Ok h' -> h = h'
      | Error _ -> false)

let test_ipv4_checksum_detects_corruption () =
  let h = Ipv4.make ~protocol:6 ~src:(Ipaddr.of_string "1.2.3.4") ~dst:(Ipaddr.of_string "5.6.7.8") ~payload_len:0 () in
  let b = Bytes.create 20 in
  Ipv4.encode h b 0;
  Bytes_util.set_u8 b 8 (Bytes_util.get_u8 b 8 lxor 0xff);
  match Ipv4.decode b 0 with
  | Error msg -> check Alcotest.bool "checksum error reported" true (msg = "ipv4: bad header checksum")
  | Ok _ -> Alcotest.fail "corruption not detected"

let test_ipv4_rejects_v6 () =
  let b = Bytes.make 20 '\000' in
  Bytes_util.set_u8 b 0 0x60;
  match Ipv4.decode b 0 with Error _ -> () | Ok _ -> Alcotest.fail "v6 accepted"

let test_ipv4_options () =
  let options = Bytes.of_string "\x01\x01\x01\x01" (* four NOPs *) in
  let h = Ipv4.make ~options ~protocol:17 ~src:1 ~dst:2 ~payload_len:8 () in
  check Alcotest.int "header len includes options" 24 (Ipv4.header_len h);
  let b = Bytes.create 24 in
  Ipv4.encode h b 0;
  match Ipv4.decode b 0 with
  | Ok h' -> check Alcotest.string "options preserved" "\x01\x01\x01\x01" (Bytes.to_string h'.Ipv4.options)
  | Error e -> Alcotest.fail e

let test_ipv4_bad_options_rejected () =
  Alcotest.check_raises "unaligned options" (Invalid_argument "Ipv4.make: bad options length")
    (fun () -> ignore (Ipv4.make ~options:(Bytes.create 3) ~protocol:6 ~src:1 ~dst:2 ~payload_len:0 ()))

(* ----------------------------- TCP / UDP ------------------------------- *)

let test_tcp_roundtrip () =
  let flags = { Tcp.no_flags with Tcp.syn = true; ack = true } in
  let h = Tcp.make ~seq:123456 ~ack_seq:654321 ~flags ~window:8192 ~src_port:4242 ~dst_port:80 () in
  let payload = Bytes.of_string "hello tcp" in
  let b = Bytes.create (20 + Bytes.length payload) in
  Tcp.encode h ~src_ip:1 ~dst_ip:2 ~payload b 0;
  match Tcp.decode b 0 ~avail:(Bytes.length b) with
  | Ok (h', off) ->
      check Alcotest.int "payload offset" 20 off;
      check Alcotest.int "src port" 4242 h'.Tcp.src_port;
      check Alcotest.int "seq" 123456 h'.Tcp.seq;
      check Alcotest.bool "syn" true h'.Tcp.flags.Tcp.syn;
      check Alcotest.bool "ack flag" true h'.Tcp.flags.Tcp.ack;
      check Alcotest.bool "fin clear" false h'.Tcp.flags.Tcp.fin
  | Error e -> Alcotest.fail e

let tcp_flags_roundtrip =
  qtest "tcp flags bits roundtrip" QCheck.(int_range 0 63) (fun bits ->
      Tcp.flags_to_int (Tcp.flags_of_int bits) = bits)

let test_tcp_checksum_valid () =
  (* end-to-end: the encoded segment plus pseudo-header sums to zero *)
  let h = Tcp.make ~src_port:1 ~dst_port:2 () in
  let payload = Bytes.of_string "data" in
  let seg_len = 20 + Bytes.length payload in
  let b = Bytes.create seg_len in
  Tcp.encode h ~src_ip:0x0a000001 ~dst_ip:0x0a000002 ~payload b 0;
  let total =
    Tcp.pseudo_sum ~src_ip:0x0a000001 ~dst_ip:0x0a000002 ~protocol:6 ~seg_len
    + Checksum.sum16 b 0 seg_len
  in
  check Alcotest.int "tcp checksum validates" 0 (Checksum.finish total)

let test_udp_roundtrip () =
  let h = { Udp.src_port = 53; dst_port = 5353; length = 0 } in
  let payload = Bytes.of_string "dns-ish" in
  let b = Bytes.create (8 + Bytes.length payload) in
  Udp.encode h ~src_ip:1 ~dst_ip:2 ~payload b 0;
  match Udp.decode b 0 ~avail:(Bytes.length b) with
  | Ok h' ->
      check Alcotest.int "src port" 53 h'.Udp.src_port;
      check Alcotest.int "length" 15 h'.Udp.length
  | Error e -> Alcotest.fail e

let test_icmp_roundtrip () =
  let h = { Icmp.icmp_type = Icmp.type_echo_request; code = 0; rest = 0xdead } in
  let b = Bytes.create 16 in
  Icmp.encode h ~payload:(Bytes.of_string "12345678") b 0;
  match Icmp.decode b 0 ~avail:16 with
  | Ok h' ->
      check Alcotest.int "type" 8 h'.Icmp.icmp_type;
      check Alcotest.int "rest" 0xdead h'.Icmp.rest;
      check Alcotest.bool "checksum valid" true (Checksum.valid b 0 16)
  | Error e -> Alcotest.fail e

(* ------------------------------ Packet --------------------------------- *)

let test_packet_tcp_roundtrip () =
  let payload = Bytes.of_string "GET / HTTP/1.1\r\n" in
  let pkt =
    Packet.tcp ~ts:12.5 ~src:(Ipaddr.of_string "10.0.0.1") ~dst:(Ipaddr.of_string "10.0.0.2")
      ~src_port:55555 ~dst_port:80 ~payload ()
  in
  let wire = Packet.encode pkt in
  match Packet.decode ~ts:12.5 wire with
  | Ok pkt' -> (
      match pkt'.Packet.net with
      | Packet.Ipv4 (ip, Packet.Tcp (tcp, pay)) ->
          check Alcotest.int "src ip" (Ipaddr.of_string "10.0.0.1") ip.Ipv4.src;
          check Alcotest.int "dst port" 80 tcp.Tcp.dst_port;
          check Alcotest.string "payload" (Bytes.to_string payload) (Bytes.to_string pay)
      | _ -> Alcotest.fail "wrong shape")
  | Error e -> Alcotest.fail e

let packet_roundtrip_random =
  qtest ~count:300 "random tcp/udp packets roundtrip" QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let payload = Bytes.init (Prng.int rng 200) (fun _ -> Char.chr (Prng.int rng 256)) in
      let src = Prng.int rng 0x7fffffff and dst = Prng.int rng 0x7fffffff in
      let sp = Prng.int rng 65536 and dp = Prng.int rng 65536 in
      let pkt =
        if Prng.bool rng then Packet.tcp ~src ~dst ~src_port:sp ~dst_port:dp ~payload ()
        else Packet.udp ~src ~dst ~src_port:sp ~dst_port:dp ~payload ()
      in
      match Packet.decode (Packet.encode pkt) with
      | Ok pkt' -> Bytes.to_string (Packet.payload pkt') = Bytes.to_string payload
      | Error _ -> false)

let test_packet_snap_truncation () =
  let payload = Bytes.of_string (String.make 500 'x') in
  let pkt = Packet.tcp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 ~payload () in
  let wire = Packet.encode pkt in
  let snapped = Packet.truncate ~snap_len:100 wire in
  check Alcotest.int "truncated to snap" 100 (Bytes.length snapped);
  match Packet.decode ~wire_len:(Bytes.length wire) snapped with
  | Ok pkt' ->
      check Alcotest.int "wire length preserved" (Bytes.length wire) pkt'.Packet.wire_len;
      check Alcotest.bool "payload shortened" true (Bytes.length (Packet.payload pkt') < 500)
  | Error e -> Alcotest.fail e

let test_packet_non_ip () =
  let b = Bytes.make 20 '\000' in
  Bytes_util.set_u16 b 12 0x0806 (* ARP *);
  match Packet.decode b with
  | Ok { Packet.net = Packet.Non_ip _; _ } -> ()
  | Ok _ -> Alcotest.fail "expected Non_ip"
  | Error e -> Alcotest.fail e

let test_packet_accessors () =
  let pkt = Packet.udp ~src:1 ~dst:2 ~src_port:53 ~dst_port:99 ~payload:(Bytes.of_string "z") () in
  check Alcotest.bool "ip header present" true (Packet.ip_header pkt <> None);
  check Alcotest.bool "udp header present" true (Packet.udp_header pkt <> None);
  check Alcotest.bool "tcp header absent" true (Packet.tcp_header pkt = None)

(* ------------------------------- Frag ---------------------------------- *)

let test_fragment_and_reassemble () =
  let payload = Bytes.init 2000 (fun i -> Char.chr (i land 0xff)) in
  let pkt = Packet.udp ~ident:77 ~src:1 ~dst:2 ~src_port:9 ~dst_port:10 ~payload () in
  let frags = Frag.fragment ~mtu:576 pkt in
  check Alcotest.bool "fragmented into several" true (List.length frags > 1);
  (* each fragment is a valid packet *)
  List.iter
    (fun f ->
      match Packet.decode (Packet.encode f) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("fragment does not re-decode: " ^ e))
    frags;
  let r = Frag.create_reassembler () in
  let result = List.filter_map (Frag.push r) frags in
  match result with
  | [whole] ->
      check Alcotest.string "payload reassembled" (Bytes.to_string payload)
        (Bytes.to_string (Packet.payload whole));
      check Alcotest.int "nothing pending" 0 (Frag.pending r)
  | _ -> Alcotest.fail "expected exactly one reassembled packet"

let test_reassemble_out_of_order () =
  let payload = Bytes.init 1500 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let pkt = Packet.udp ~ident:5 ~src:3 ~dst:4 ~src_port:1 ~dst_port:2 ~payload () in
  let frags = Frag.fragment ~mtu:600 pkt in
  let r = Frag.create_reassembler () in
  let shuffled = List.rev frags in
  let result = List.filter_map (Frag.push r) shuffled in
  match result with
  | [whole] ->
      check Alcotest.string "out-of-order reassembly" (Bytes.to_string payload)
        (Bytes.to_string (Packet.payload whole))
  | _ -> Alcotest.fail "reassembly failed out of order"

let frag_roundtrip_random =
  qtest ~count:100 "fragment/reassemble roundtrip" QCheck.(pair small_int (int_range 1200 4000))
    (fun (seed, size) ->
      let rng = Prng.create seed in
      let payload = Bytes.init size (fun _ -> Char.chr (Prng.int rng 256)) in
      let mtu = 400 + Prng.int rng 800 in
      let pkt = Packet.udp ~ident:(Prng.int rng 60000) ~src:9 ~dst:8 ~src_port:1 ~dst_port:2 ~payload () in
      let frags = Frag.fragment ~mtu pkt in
      let r = Frag.create_reassembler () in
      match List.filter_map (Frag.push r) frags with
      | [whole] -> Bytes.to_string (Packet.payload whole) = Bytes.to_string payload
      | _ -> false)

let test_small_packet_not_fragmented () =
  let pkt = Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 ~payload:(Bytes.of_string "tiny") () in
  check Alcotest.int "passes through" 1 (List.length (Frag.fragment ~mtu:1500 pkt))

let test_df_not_fragmented () =
  let payload = Bytes.create 3000 in
  let pkt = Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 ~payload () in
  (* rebuild with DF set *)
  let pkt =
    match pkt.Packet.net with
    | Packet.Ipv4 (ip, t) -> { pkt with Packet.net = Packet.Ipv4 ({ ip with Ipv4.dont_fragment = true }, t) }
    | _ -> pkt
  in
  check Alcotest.int "DF respected" 1 (List.length (Frag.fragment ~mtu:576 pkt))

let test_reassembler_timeout () =
  let payload = Bytes.create 2000 in
  let pkt = Packet.udp ~ts:100.0 ~ident:3 ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 ~payload () in
  let frags = Frag.fragment ~mtu:576 pkt in
  let r = Frag.create_reassembler ~timeout:10.0 () in
  (* feed only the first fragment, then expire *)
  ignore (Frag.push r (List.hd frags));
  check Alcotest.int "one pending" 1 (Frag.pending r);
  check Alcotest.int "expired after timeout" 1 (Frag.expired r 200.0);
  check Alcotest.int "nothing pending" 0 (Frag.pending r)

(* ------------------------------- Pcap ---------------------------------- *)

let test_pcap_memory_roundtrip () =
  let records =
    [
      { Pcap.ts = 1.000001; orig_len = 100; data = Bytes.of_string "abcdef" };
      { Pcap.ts = 2.5; orig_len = 6; data = Bytes.of_string "ghijkl" };
    ]
  in
  match Pcap.decode_file (Pcap.encode_file records) with
  | Ok (hdr, records') ->
      check Alcotest.int "linktype" Pcap.linktype_ethernet hdr.Pcap.linktype;
      check Alcotest.int "record count" 2 (List.length records');
      let r0 = List.nth records' 0 in
      check (Alcotest.float 1e-5) "timestamp with microseconds" 1.000001 r0.Pcap.ts;
      check Alcotest.int "orig_len" 100 r0.Pcap.orig_len;
      check Alcotest.string "data" "abcdef" (Bytes.to_string r0.Pcap.data)
  | Error e -> Alcotest.fail e

let test_pcap_file_roundtrip () =
  let path = Filename.temp_file "gs_test" ".pcap" in
  let pkt1 = Packet.tcp ~ts:10.0 ~src:1 ~dst:2 ~src_port:1 ~dst_port:80 ~payload:(Bytes.of_string "x") () in
  let pkt2 = Packet.udp ~ts:11.0 ~src:3 ~dst:4 ~src_port:53 ~dst_port:53 ~payload:(Bytes.of_string "y") () in
  let w = Pcap.open_writer path in
  Pcap.write_packet w pkt1;
  Pcap.write_packet w pkt2;
  Pcap.close_writer w;
  (match Pcap.read_file path with
  | Ok (_, records) ->
      check Alcotest.int "two records" 2 (List.length records);
      let r = List.hd records in
      (match Packet.decode ~ts:r.Pcap.ts r.Pcap.data with
      | Ok pkt -> check Alcotest.bool "tcp decodes back" true (Packet.tcp_header pkt <> None)
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_pcap_snaplen_applied () =
  let path = Filename.temp_file "gs_snap" ".pcap" in
  let pkt = Packet.tcp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 ~payload:(Bytes.make 1000 'q') () in
  let w = Pcap.open_writer ~snaplen:96 path in
  Pcap.write_packet w pkt;
  Pcap.close_writer w;
  (match Pcap.read_file path with
  | Ok (hdr, [r]) ->
      check Alcotest.int "file snaplen" 96 hdr.Pcap.snaplen;
      check Alcotest.int "captured bytes" 96 (Bytes.length r.Pcap.data);
      check Alcotest.bool "orig_len larger" true (r.Pcap.orig_len > 96)
  | Ok _ -> Alcotest.fail "expected one record"
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_pcap_fold_file () =
  let path = Filename.temp_file "gs_fold" ".pcap" in
  let w = Pcap.open_writer path in
  for i = 1 to 5 do
    Pcap.write_packet w
      (Packet.udp ~ts:(float_of_int i) ~src:1 ~dst:2 ~src_port:1 ~dst_port:2
         ~payload:(Bytes.of_string "x") ())
  done;
  Pcap.close_writer w;
  (match Pcap.fold_file path ~init:0 ~f:(fun acc _ -> acc + 1) with
  | Ok n -> check Alcotest.int "folded all records" 5 n
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_pcap_bad_magic () =
  match Pcap.decode_file (Bytes.make 24 'z') with
  | Error msg -> check Alcotest.bool "magic error" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "bad magic accepted"

let test_pcap_truncated_record () =
  let good = Pcap.encode_file [{ Pcap.ts = 1.0; orig_len = 4; data = Bytes.of_string "abcd" }] in
  let cut = Bytes.sub good 0 (Bytes.length good - 2) in
  match Pcap.decode_file cut with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated record accepted"

(* Each malformed-input branch by its exact message: a capture file is
   untrusted input, and "which byte was wrong" is the whole diagnostic. *)

let expect_pcap_error what expected b =
  match Pcap.decode_file b with
  | Error msg -> check Alcotest.string what expected msg
  | Ok _ -> Alcotest.failf "%s: accepted" what

let test_pcap_truncated_global_header () =
  expect_pcap_error "empty file" "pcap: truncated global header" Bytes.empty;
  expect_pcap_error "header cut short" "pcap: truncated global header" (Bytes.make 23 '\x00')

let test_pcap_bad_magic_message () =
  let b = Bytes.make 24 '\x00' in
  (* the message echoes the magic as read from disk (little-endian) *)
  Bytes.set_int32_le b 0 0xdeadbeefl;
  expect_pcap_error "wrong magic value" "pcap: bad magic 0xdeadbeef" b

let test_pcap_truncated_record_header () =
  let good = Pcap.encode_file [ { Pcap.ts = 1.0; orig_len = 4; data = Bytes.of_string "abcd" } ] in
  (* keep the global header plus half a record header *)
  expect_pcap_error "record header cut" "pcap: truncated record header" (Bytes.sub good 0 (24 + 8))

let test_pcap_truncated_record_body () =
  let good = Pcap.encode_file [ { Pcap.ts = 1.0; orig_len = 4; data = Bytes.of_string "abcd" } ] in
  (* whole record header, body short of its declared caplen *)
  expect_pcap_error "record body cut" "pcap: truncated record body"
    (Bytes.sub good 0 (Bytes.length good - 2))

let test_pcap_read_file_missing () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "gsq-no-such-file.pcap" in
  (try Sys.remove path with Sys_error _ -> ());
  (match Pcap.read_file path with
  | Error msg -> check Alcotest.bool "error is tagged pcap:" true
      (String.length msg > 5 && String.sub msg 0 5 = "pcap:")
  | Ok _ -> Alcotest.fail "read a file that does not exist");
  match Pcap.fold_file path ~init:0 ~f:(fun n _ -> n + 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "folded a file that does not exist"

let test_pcap_big_endian_read () =
  (* hand-build a big-endian file: swapped magic *)
  let b = Bytes.make (24 + 16 + 2) '\000' in
  Bytes_util.set_u32 b 0 0xa1b2c3d4 (* big-endian on-disk = reader sees swapped *);
  Bytes_util.set_u16 b 4 2;
  Bytes_util.set_u16 b 6 4;
  Bytes_util.set_u32 b 16 65535;
  Bytes_util.set_u32 b 20 1;
  Bytes_util.set_u32 b 24 7 (* sec *);
  Bytes_util.set_u32 b 28 0;
  Bytes_util.set_u32 b 32 2 (* caplen *);
  Bytes_util.set_u32 b 36 2 (* origlen *);
  Bytes.set b 40 'h';
  Bytes.set b 41 'i';
  match Pcap.decode_file b with
  | Ok (hdr, [r]) ->
      check Alcotest.int "be snaplen" 65535 hdr.Pcap.snaplen;
      check (Alcotest.float 1e-9) "be ts" 7.0 r.Pcap.ts;
      check Alcotest.string "be data" "hi" (Bytes.to_string r.Pcap.data)
  | Ok _ -> Alcotest.fail "expected one record"
  | Error e -> Alcotest.fail e

(* ------------------------------ Netflow -------------------------------- *)

let sample_record =
  {
    Netflow.src = Ipaddr.of_string "10.0.0.1";
    dst = Ipaddr.of_string "10.0.0.2";
    src_port = 1234;
    dst_port = 80;
    protocol = 6;
    packets = 42;
    octets = 12345;
    start_ts = 1000.25;
    end_ts = 1010.75;
    tcp_flags = 0x1b;
  }

let test_netflow_roundtrip () =
  let boot_ts = 900.0 in
  let dg = Netflow.encode_datagram ~boot_ts [sample_record; { sample_record with Netflow.packets = 1 }] in
  match Netflow.decode_datagram ~boot_ts dg with
  | Ok [r1; r2] ->
      check Alcotest.int "src" sample_record.Netflow.src r1.Netflow.src;
      check Alcotest.int "packets" 42 r1.Netflow.packets;
      check Alcotest.int "packets 2" 1 r2.Netflow.packets;
      check (Alcotest.float 1e-3) "start ts ms precision" 1000.25 r1.Netflow.start_ts;
      check (Alcotest.float 1e-3) "end ts" 1010.75 r1.Netflow.end_ts;
      check Alcotest.int "flags" 0x1b r1.Netflow.tcp_flags
  | Ok _ -> Alcotest.fail "wrong record count"
  | Error e -> Alcotest.fail e

let test_netflow_too_many () =
  let records = List.init 31 (fun _ -> sample_record) in
  Alcotest.check_raises "31 records rejected"
    (Invalid_argument "Netflow.encode_datagram: more than 30 records") (fun () ->
      ignore (Netflow.encode_datagram ~boot_ts:0.0 records))

let test_netflow_truncated () =
  match Netflow.decode_datagram ~boot_ts:0.0 (Bytes.create 4) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated datagram accepted"

let () =
  Alcotest.run "packet"
    [
      ( "bytes",
        [
          bytes_u16_roundtrip;
          bytes_u32_roundtrip;
          bytes_u48_roundtrip;
          Alcotest.test_case "endianness" `Quick test_bytes_endianness;
          Alcotest.test_case "hexdump" `Quick test_hexdump;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "rfc1071 example" `Quick test_checksum_rfc1071_example;
          checksum_validates;
          Alcotest.test_case "odd length" `Quick test_checksum_odd_length;
        ] );
      ( "ipaddr",
        [
          ipaddr_roundtrip;
          Alcotest.test_case "parsing" `Quick test_ipaddr_parsing;
          Alcotest.test_case "prefixes" `Quick test_ipaddr_prefix;
        ] );
      ( "ethernet",
        [
          Alcotest.test_case "roundtrip" `Quick test_ethernet_roundtrip;
          Alcotest.test_case "truncated" `Quick test_ethernet_truncated;
        ] );
      ( "ipv4",
        [
          ipv4_roundtrip;
          Alcotest.test_case "checksum detects corruption" `Quick test_ipv4_checksum_detects_corruption;
          Alcotest.test_case "rejects v6" `Quick test_ipv4_rejects_v6;
          Alcotest.test_case "options" `Quick test_ipv4_options;
          Alcotest.test_case "bad options" `Quick test_ipv4_bad_options_rejected;
        ] );
      ( "tcp-udp-icmp",
        [
          Alcotest.test_case "tcp roundtrip" `Quick test_tcp_roundtrip;
          tcp_flags_roundtrip;
          Alcotest.test_case "tcp checksum" `Quick test_tcp_checksum_valid;
          Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
          Alcotest.test_case "icmp roundtrip" `Quick test_icmp_roundtrip;
        ] );
      ( "packet",
        [
          Alcotest.test_case "tcp roundtrip" `Quick test_packet_tcp_roundtrip;
          packet_roundtrip_random;
          Alcotest.test_case "snap truncation" `Quick test_packet_snap_truncation;
          Alcotest.test_case "non-ip" `Quick test_packet_non_ip;
          Alcotest.test_case "accessors" `Quick test_packet_accessors;
        ] );
      ( "frag",
        [
          Alcotest.test_case "fragment + reassemble" `Quick test_fragment_and_reassemble;
          Alcotest.test_case "out of order" `Quick test_reassemble_out_of_order;
          frag_roundtrip_random;
          Alcotest.test_case "small not fragmented" `Quick test_small_packet_not_fragmented;
          Alcotest.test_case "DF respected" `Quick test_df_not_fragmented;
          Alcotest.test_case "timeout eviction" `Quick test_reassembler_timeout;
        ] );
      ( "pcap",
        [
          Alcotest.test_case "memory roundtrip" `Quick test_pcap_memory_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_pcap_file_roundtrip;
          Alcotest.test_case "snaplen applied" `Quick test_pcap_snaplen_applied;
          Alcotest.test_case "fold_file" `Quick test_pcap_fold_file;
          Alcotest.test_case "bad magic" `Quick test_pcap_bad_magic;
          Alcotest.test_case "truncated record" `Quick test_pcap_truncated_record;
          Alcotest.test_case "truncated global header" `Quick test_pcap_truncated_global_header;
          Alcotest.test_case "bad magic message" `Quick test_pcap_bad_magic_message;
          Alcotest.test_case "truncated record header" `Quick test_pcap_truncated_record_header;
          Alcotest.test_case "truncated record body" `Quick test_pcap_truncated_record_body;
          Alcotest.test_case "missing file" `Quick test_pcap_read_file_missing;
          Alcotest.test_case "big-endian read" `Quick test_pcap_big_endian_read;
        ] );
      ( "netflow",
        [
          Alcotest.test_case "roundtrip" `Quick test_netflow_roundtrip;
          Alcotest.test_case "too many records" `Quick test_netflow_too_many;
          Alcotest.test_case "truncated" `Quick test_netflow_truncated;
        ] );
    ]
