(* The distributed aggregation tree harness.

   lib/cluster stretches the paper's two-level LFTA/HFTA split over an
   N-level tree of engine+server nodes connected by real loopback TCP.
   The claims under test: (1) topology validation is total with one-line
   errors; (2) exact aggregates computed by a tree are identical to a
   single-process run over the concatenated feeds; (3) sketch aggregates
   keep every uplink bounded by (groups x sketch size) while the
   root's estimate stays inside the sketch's error bound — over a
   million input tuples; (4) loss is visible, never silent: a killed
   edge surfaces as an Item.Gap at the root with per-link conservation
   (tuples_out = delivered + gaps) intact, and a permanently dead node
   becomes one in-band Item.Error, not a wedge. *)

module E = Gigascope.Engine
module Rts = Gigascope_rts
module Value = Rts.Value
module Item = Rts.Item
module Metrics = Gigascope_obs.Metrics
module Cluster = Gigascope_cluster.Cluster
module Topology = Gigascope_cluster.Topology

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let fail_on_error label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label e

(* ------------------------------ topology -------------------------------- *)

let parse_err text =
  match Topology.parse text with
  | Ok _ -> Alcotest.failf "accepted bad topology: %s" (String.escaped text)
  | Error e ->
      check Alcotest.bool ("one-line error: " ^ e) false (String.contains e '\n');
      e

let test_topology_valid () =
  let t =
    fail_on_error "parse"
      (Topology.parse
         "# two racks\nroot: rack0 rack1\nrack0: e0 e1\nrack1: e2 e3 # tail comment\n")
  in
  check Alcotest.string "root" "root" (Topology.root t);
  check Alcotest.(list string) "bfs order"
    [ "root"; "rack0"; "rack1"; "e0"; "e1"; "e2"; "e3" ]
    (Topology.nodes t);
  check Alcotest.(list string) "leaves" [ "e0"; "e1"; "e2"; "e3" ] (Topology.leaves t);
  check Alcotest.(list string) "children" [ "e0"; "e1" ] (Topology.children t "rack0");
  check Alcotest.(option string) "parent" (Some "rack1") (Topology.parent t "e3");
  check Alcotest.(option string) "root parent" None (Topology.parent t "root");
  check Alcotest.int "depth root" 0 (Topology.depth t "root");
  check Alcotest.int "depth leaf" 2 (Topology.depth t "e2");
  check Alcotest.int "depth unknown" (-1) (Topology.depth t "nope");
  check Alcotest.int "height" 2 (Topology.height t);
  check Alcotest.int "size" 7 (Topology.size t);
  check Alcotest.bool "leaf" true (Topology.is_leaf t "e0");
  check Alcotest.bool "interior not leaf" false (Topology.is_leaf t "rack0");
  check Alcotest.bool "unknown not leaf" false (Topology.is_leaf t "nope");
  (* a leaf may be declared explicitly with an empty child list *)
  let t2 = fail_on_error "explicit leaf" (Topology.parse "r: a b\na:\n") in
  check Alcotest.(list string) "explicit leaf parses" [ "a"; "b" ] (Topology.leaves t2)

let test_topology_errors () =
  let e = parse_err "" in
  check Alcotest.bool "empty named" true (contains e "empty");
  let e = parse_err "root: e0\nroot: e1\n" in
  check Alcotest.bool "duplicate decl" true (contains e "duplicate");
  let e = parse_err "a: c\nb: c\nroot: a b\n" in
  check Alcotest.bool "two parents" true (contains e "two parents");
  let e = parse_err "a: b\nb: a\n" in
  check Alcotest.bool "cycle" true (contains e "cyclic");
  let e = parse_err "a: b\nc: d\n" in
  check Alcotest.bool "two roots" true (contains e "two roots");
  let e = parse_err "a: a\n" in
  check Alcotest.bool "self child" true (contains e "its own child");
  let e = parse_err "root: e0 e0\n" in
  check Alcotest.bool "dup child" true (contains e "twice");
  let e = parse_err "root: e$0\n" in
  check Alcotest.bool "bad name cited" true (contains e "e$0");
  let e = parse_err "root\n" in
  check Alcotest.bool "childless root" true (contains e "no children");
  let many = String.concat " " (List.init 65 (fun i -> Printf.sprintf "e%d" i)) in
  let e = parse_err ("root: " ^ many ^ "\n") in
  check Alcotest.bool "fan-in cap" true (contains e "max 64");
  (match Topology.load "/nonexistent/topo.conf" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error e -> check Alcotest.bool "load error prefixed" true (contains e "topology:"))

(* ------------------------------ feeds ----------------------------------- *)

(* Rows in the builtin [ip] protocol schema: time, timestamp, ipversion,
   hdr_length, len, ident, frag_offset, more_fragments, ttl, protocol,
   srcip, destip, data_length. *)
let ip_row ~time ~srcip ~len =
  [|
    Value.Int time;
    Value.Float (float_of_int time);
    Value.Int 4;
    Value.Int 20;
    Value.Int len;
    Value.Int 0;
    Value.Int 0;
    Value.Int 0;
    Value.Int 64;
    Value.Int 6;
    Value.Ip srcip;
    Value.Ip 0x0A000001;
    Value.Int (max 0 (len - 20));
  |]

let ip_schema =
  (Option.get (Gigascope.Default_protocols.find "ip")).Gigascope.Default_protocols
    .catalog_entry.Gigascope_gsql.Catalog.schema

(* A pull function over [epochs] x [per_epoch] deterministic rows;
   [row ~epoch ~i] builds row [i] of an epoch. *)
let gen_feed ~epochs ~per_epoch ?(epoch_pause = 0.0) row =
  let e = ref 0 and i = ref 0 in
  fun () ->
    if !e >= epochs then None
    else begin
      let r = row ~epoch:!e ~i:!i in
      incr i;
      if !i >= per_epoch then begin
        i := 0;
        incr e;
        if epoch_pause > 0.0 then Thread.delay epoch_pause
      end;
      Some r
    end

let row_to_string row = String.concat "," (List.map Value.to_string (Array.to_list row))

let result_rows t =
  List.filter_map
    (function Item.Tuple vs -> Some (row_to_string vs) | _ -> None)
    (Cluster.results t)

let topo_of text = fail_on_error "topology" (Topology.parse text)

(* a tame reconnect budget so chaos tests converge in test time *)
let fast_reconnect =
  { Gigascope_net.Client.attempts = 3; base_delay = 0.02; max_delay = 0.1; jitter = 0.2; seed = 7 }

(* ------------------- exact aggregates: tree = one process --------------- *)

(* count/sum/min/max/avg grouped two ways; avg exercises the multi-slot
   (sum+count) partial path through relay re-reduction. *)
let exact_query from_ =
  Printf.sprintf
    {|
DEFINE { query_name volume; }
SELECT tb, truncate_ip(srcip, 24) as net, count(*) as pkts, sum(len) as bytes,
       min(len) as lo, max(len) as hi, avg(len) as mean
FROM %s
WHERE ipversion = 4
GROUP BY time/1 as tb, truncate_ip(srcip, 24) as net
|}
    from_

let exact_epochs = 5
let exact_per_edge = 2000

let exact_row ~edge ~epoch ~i =
  let srcip = 0x0A000000 + (((i * 37) + (edge * 101)) mod 520) in
  let len = 40 + ((i + edge) mod 1000) in
  ip_row ~time:epoch ~srcip ~len

let test_exact_identity () =
  let topo = topo_of "root: rack0 rack1\nrack0: e0 e1\nrack1: e2 e3\n" in
  let t =
    fail_on_error "launch"
      (Cluster.launch ~topo ~program:(exact_query "ip")
         ~feed:(fun ~edge:_ ~index ->
           gen_feed ~epochs:exact_epochs ~per_epoch:exact_per_edge (exact_row ~edge:index))
         ())
  in
  check Alcotest.string "query name" "volume" (Cluster.query_name t);
  fail_on_error "run" (Cluster.run ~timeout:60.0 t);
  let got = List.sort compare (result_rows t) in
  (* the single-process baseline: same query text over a custom stream
     fed the per-epoch interleave of all four edges *)
  let engine = E.create ~shards:1 () in
  let feeds = Array.init 4 (fun e -> gen_feed ~epochs:exact_epochs ~per_epoch:exact_per_edge (exact_row ~edge:e)) in
  let cur = ref 0 in
  let rec pull tries =
    (* round-robin the edge generators; they stay epoch-aligned because
       all four advance epochs at the same row count *)
    if tries > 4 then None
    else
      match feeds.(!cur mod 4) () with
      | Some r ->
          incr cur;
          Some (Item.Tuple r)
      | None ->
          incr cur;
          pull (tries + 1)
  in
  fail_on_error "baseline source"
    (E.add_custom_source engine ~name:"src" ~schema:ip_schema
       ~pull:(fun () -> pull 0)
       ~clock:(fun () -> []));
  ignore (fail_on_error "baseline install" (E.install_program engine (exact_query "src")));
  let rows = ref [] in
  fail_on_error "baseline collect"
    (E.on_tuple engine "volume" (fun r -> rows := row_to_string r :: !rows));
  (match E.run engine () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "baseline run: %s" e);
  let expected = List.sort compare !rows in
  check Alcotest.bool "baseline produced rows" true (expected <> []);
  check Alcotest.(list string) "tree output = single-process output" expected got;
  (* a clean run loses nothing anywhere: every link conserves with zero
     gaps, and delivered = the child's emitted tuple count *)
  List.iter
    (fun (from_, to_, tuples, gaps, errors) ->
      let label = Printf.sprintf "link %s->%s" from_ to_ in
      check Alcotest.int (label ^ " no gaps") 0 gaps;
      check Alcotest.int (label ^ " no errors") 0 errors;
      check Alcotest.int (label ^ " conserves") (Cluster.node_out t from_) tuples)
    (Cluster.link_stats t);
  (* the cluster.* surface is live *)
  let snap = Metrics.snapshot (Cluster.metrics t) in
  (match Metrics.find snap "cluster.node.e0.alive" with
  | Some (Metrics.Gauge g) -> check (Alcotest.float 0.0) "e0 alive gauge settled" 0.0 g
  | _ -> Alcotest.fail "missing cluster.node.e0.alive");
  (match Metrics.find snap "cluster.node.root.level" with
  | Some (Metrics.Gauge g) -> check (Alcotest.float 0.0) "root level" 0.0 g
  | _ -> Alcotest.fail "missing cluster.node.root.level");
  (match Metrics.find snap "cluster.node.e0.out" with
  | Some (Metrics.Gauge g) -> check Alcotest.bool "e0 out gauge positive" true (g > 0.0)
  | _ -> Alcotest.fail "missing cluster.node.e0.out");
  (match Metrics.find snap "cluster.link.e0->rack0.tuples" with
  | Some (Metrics.Counter n) -> check Alcotest.bool "link counter positive" true (n > 0)
  | _ -> Alcotest.fail "missing cluster.link.e0->rack0.tuples");
  (match Metrics.find snap "cluster.level.2.out" with
  | Some (Metrics.Gauge g) -> check Alcotest.bool "level 2 out" true (g > 0.0)
  | _ -> Alcotest.fail "missing cluster.level.2.out");
  let report = Cluster.report t in
  List.iter
    (fun needle ->
      check Alcotest.bool ("report mentions " ^ needle) true (contains report needle))
    [ "cluster volume"; "root"; "rack0"; "e3"; "link e0->rack0"; "reduction" ];
  Cluster.shutdown t

(* -------------------- sketches: a bounded-uplink million ----------------- *)

(* 4 edges x 2 epochs x 125k rows = 1M tuples; every edge sees the same
   50k-key universe, so the true per-epoch distinct count is exactly
   50_000. HLL precision 12 promises ~1.6% relative error; we accept
   5%. The tree reduces a million tuples to one sketch-carrying partial
   per (edge, epoch) — that bound, asserted on the link counters, is
   what "root memory stays sketch-sized" means operationally. *)
let sketch_epochs = 2
let sketch_per_edge_epoch = 125_000
let sketch_universe = 50_000

let sketch_query =
  {|
DEFINE { query_name dcount; }
SELECT tb, approx_count_distinct(srcip, 12) as dc
FROM ip
GROUP BY time/1 as tb
|}

let test_sketch_million () =
  let topo = topo_of "root: rack0 rack1\nrack0: e0 e1\nrack1: e2 e3\n" in
  let t =
    fail_on_error "launch"
      (Cluster.launch ~topo ~program:sketch_query
         ~feed:(fun ~edge:_ ~index ->
           gen_feed ~epochs:sketch_epochs ~per_epoch:sketch_per_edge_epoch
             (fun ~epoch ~i ->
               (* walk the whole universe; stride co-prime to its size *)
               let key = (i * 7 + index) mod sketch_universe in
               ip_row ~time:epoch ~srcip:(0x0A000000 + key) ~len:60))
         ())
  in
  fail_on_error "run" (Cluster.run ~timeout:120.0 t);
  let rows =
    List.filter_map
      (function Item.Tuple [| Value.Int tb; Value.Int dc |] -> Some (tb, dc) | _ -> None)
      (Cluster.results t)
  in
  check Alcotest.int "one result row per epoch" sketch_epochs (List.length rows);
  List.iter
    (fun (tb, dc) ->
      let err =
        Float.abs (float_of_int (dc - sketch_universe)) /. float_of_int sketch_universe
      in
      check Alcotest.bool
        (Printf.sprintf "epoch %d estimate %d within 5%% of %d" tb dc sketch_universe)
        true (err <= 0.05))
    rows;
  (* bounded uplinks: each link moved one sketch partial per epoch (+1
     for the trailing partial flush at Eof), not a share of the million *)
  List.iter
    (fun (from_, to_, tuples, gaps, _errors) ->
      let label = Printf.sprintf "link %s->%s" from_ to_ in
      check Alcotest.int (label ^ " no gaps") 0 gaps;
      check Alcotest.bool
        (Printf.sprintf "%s moved %d tuples (bounded by epochs, not input)" label tuples)
        true
        (tuples >= 1 && tuples <= sketch_epochs + 1))
    (Cluster.link_stats t);
  (* and the reduction is visible end to end: a million tuples in, a
     handful of partials past the edges *)
  let edges_out =
    List.fold_left (fun acc e -> acc + Cluster.node_out t e) 0 [ "e0"; "e1"; "e2"; "e3" ]
  in
  check Alcotest.bool "million-to-partials reduction" true
    (edges_out <= 4 * (sketch_epochs + 1));
  Cluster.shutdown t

(* ----------------------- chaos: severed edge = Gap ----------------------- *)

(* High-cardinality groups make each epoch flush a burst of partials, so
   an edge severed while orphaned provably loses some: the burst
   overruns the egress queue before the parent's link has resumed. The
   law is conservation, not a loss count: whatever the kill swallowed is
   announced, so emitted = delivered + gaps, and the Gap markers ride
   merge and relay to the root's output. *)
let chaos_query =
  {|
DEFINE { query_name chaos; }
SELECT tb, srcip, count(*) as pkts
FROM ip
GROUP BY time/1 as tb, srcip
|}

let test_killed_edge_gap_conservation () =
  let topo = topo_of "root: e0 e1\n" in
  let epochs = 150 and keys = 5000 in
  let t =
    fail_on_error "launch"
      (Cluster.launch ~topo ~program:chaos_query
         ~feed:(fun ~edge:_ ~index ->
           gen_feed ~epochs ~per_epoch:keys ~epoch_pause:0.002 (fun ~epoch ~i ->
               ip_row ~time:epoch ~srcip:(0x0A000000 + (i * 4) + index) ~len:60))
         ~reconnect:fast_reconnect ())
  in
  let e0_gaps () =
    List.fold_left
      (fun acc (from_, _, _, gaps, _) -> if from_ = "e0" then acc + gaps else acc)
      0 (Cluster.link_stats t)
  in
  let killer =
    Thread.create
      (fun () ->
        Thread.delay 0.3;
        let rec go n =
          if n > 0 && e0_gaps () = 0 then begin
            (match Cluster.kill_node t "e0" with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "kill_node e0: %s" e);
            Thread.delay 0.12;
            go (n - 1)
          end
        in
        go 60)
      ()
  in
  fail_on_error "run" (Cluster.run ~timeout:120.0 t);
  Thread.join killer;
  let stats = Cluster.link_stats t in
  let _, _, delivered, gaps, _ =
    List.find (fun (from_, _, _, _, _) -> from_ = "e0") stats
  in
  check Alcotest.bool "the kill lost tuples" true (gaps > 0);
  check Alcotest.int "conservation: emitted = delivered + gaps"
    (Cluster.node_out t "e0")
    (delivered + gaps);
  check Alcotest.bool "gap marker reached the root" true
    (List.exists (function Item.Gap _ -> true | _ -> false) (Cluster.results t));
  (* the untouched edge conserved trivially *)
  let _, _, d1, g1, _ = List.find (fun (from_, _, _, _, _) -> from_ = "e1") stats in
  check Alcotest.int "e1 conserves" (Cluster.node_out t "e1") (d1 + g1);
  Cluster.shutdown t

(* ------------------- chaos: dead node = Error, not wedge ------------------ *)

let test_stopped_node_error () =
  let topo = topo_of "root: e0 e1\n" in
  let t =
    fail_on_error "launch"
      (Cluster.launch ~topo ~program:chaos_query
         ~feed:(fun ~edge ~index:_ ->
           if edge = "e0" then
             gen_feed ~epochs:10 ~per_epoch:50 (fun ~epoch ~i ->
                 ip_row ~time:epoch ~srcip:(0x0A000000 + i) ~len:60)
           else
             (* e1 outlives its own stopped server: the feed keeps
                going, the run must still complete *)
             gen_feed ~epochs:300 ~per_epoch:20 ~epoch_pause:0.001 (fun ~epoch ~i ->
                 ip_row ~time:epoch ~srcip:(0x0B000000 + i) ~len:60))
         ~reconnect:fast_reconnect ())
  in
  (match Cluster.stop_node t "nope" with
  | Ok () -> Alcotest.fail "stopped an unknown node"
  | Error e -> check Alcotest.bool "unknown node named" true (contains e "nope"));
  (match Cluster.stop_node t "root" with
  | Ok () -> Alcotest.fail "stopped the root"
  | Error e -> check Alcotest.bool "root refusal" true (contains e "root"));
  (match Cluster.kill_node t "root" with
  | Ok _ -> Alcotest.fail "severed the root"
  | Error e -> check Alcotest.bool "root sever refusal" true (contains e "root"));
  let killer =
    Thread.create
      (fun () ->
        Thread.delay 0.15;
        match Cluster.stop_node t "e1" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "stop_node e1: %s" e)
      ()
  in
  fail_on_error "run (must not wedge)" (Cluster.run ~timeout:60.0 t);
  Thread.join killer;
  check Alcotest.bool "death surfaced as in-band Error" true
    (List.exists (function Item.Error _ -> true | _ -> false) (Cluster.results t));
  let _, _, _, _, errors =
    List.find (fun (from_, _, _, _, _) -> from_ = "e1") (Cluster.link_stats t)
  in
  check Alcotest.bool "link error counted" true (errors >= 1);
  (* the healthy edge's data still arrived *)
  check Alcotest.bool "partial results delivered" true (result_rows t <> []);
  Cluster.shutdown t

(* -------------------------- launch eligibility ---------------------------- *)

let test_launch_errors () =
  let topo = topo_of "root: e0 e1\n" in
  let feed ~edge:_ ~index:_ () = None in
  let expect_err label program needle =
    match Cluster.launch ~topo ~program ~feed () with
    | Ok t ->
        Cluster.shutdown t;
        Alcotest.failf "%s: launched" label
    | Error e ->
        check Alcotest.bool
          (Printf.sprintf "%s error is one line: %s" label e)
          false (String.contains e '\n');
        check Alcotest.bool (Printf.sprintf "%s names the cause: %s" label e) true
          (contains e needle)
  in
  expect_err "no epoch" "SELECT srcip, count(*) as c FROM ip GROUP BY srcip" "epoch";
  expect_err "pure select" "SELECT time, srcip FROM ip" "must split";
  expect_err "derived stream"
    {|
DEFINE { query_name base; }
SELECT tb, srcip, count(*) as c FROM ip GROUP BY time/1 as tb, srcip

DEFINE { query_name again; }
SELECT tb, count(*) as n FROM base GROUP BY tb
|}
    "must split";
  expect_err "parse error" "SELECT FROM WHERE" "";
  expect_err "empty program" "" ""

(* -------------------------------- suite --------------------------------- *)

let () =
  Alcotest.run "cluster"
    [
      ( "topology",
        [
          Alcotest.test_case "valid" `Quick test_topology_valid;
          Alcotest.test_case "errors" `Quick test_topology_errors;
        ] );
      ("eligibility", [ Alcotest.test_case "launch errors" `Quick test_launch_errors ]);
      ("exact", [ Alcotest.test_case "tree = single process" `Slow test_exact_identity ]);
      ("sketch", [ Alcotest.test_case "bounded million" `Slow test_sketch_million ]);
      ( "chaos",
        [
          Alcotest.test_case "killed edge: gap + conservation" `Slow
            test_killed_edge_gap_conservation;
          Alcotest.test_case "dead node: error, no wedge" `Slow test_stopped_node_error;
        ] );
    ]
