(* The differential workloads and runner shared by the determinism
   harnesses: test_parallel.ml runs them across domain counts, and
   test_fuzz.ml across data-plane batch sizes. Every workload replays
   deterministic generated traffic, so two runs differing only in an
   execution knob must produce byte-identical subscriber output. *)

module E = Gigascope.Engine
module Rts = Gigascope_rts
module Value = Rts.Value
module Traffic = Gigascope_traffic
module Packet = Gigascope_packet.Packet
module Ipaddr = Gigascope_packet.Ipaddr

let read_query name =
  let path = Filename.concat ".." (Filename.concat "queries" (name ^ ".gsql")) in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let row_to_string row = String.concat "," (List.map Value.to_string (Array.to_list row))

let collect engine name =
  let rows = ref [] in
  Result.get_ok (E.on_tuple engine name (fun t -> rows := Array.copy t :: !rows));
  fun () -> List.rev_map row_to_string !rows

type workload = {
  wname : string;
  program : unit -> string;
  setup : seed:int -> E.t -> unit;
  outputs : string list;
  params : (string * Value.t) list;
}

let gen_cfg ~seed ~duration ~rate ?(interfaces = 1) () =
  {
    Traffic.Gen.default with
    rate_mbps = rate;
    duration;
    seed;
    interface_count = interfaces;
  }

let eth0_setup ~rate ~duration ~seed engine =
  E.add_generator_interface engine ~name:"eth0" (gen_cfg ~seed ~duration ~rate ())

let from_file ?(outputs = []) ?(params = []) ?(rate = 40.0) ?(duration = 1.0) name =
  {
    wname = name;
    program = (fun () -> read_query name);
    setup = eth0_setup ~rate ~duration;
    outputs;
    params;
  }

(* q3-style ordered join: the output-order-sensitive case. Two taps see
   overlapping traffic; the join has an explicit +-1s window, equality on
   three attributes, and ORDERED output — held pairs release strictly
   behind the watermark, so equal-timestamp matches exercise the
   content-sorted batch release. *)
let join_program =
  {|
  DEFINE { query_name bb; }
  SELECT time, srcip, destip, ident FROM backbone.ip WHERE ipversion = 4

  DEFINE { query_name cust; }
  SELECT time, srcip, destip, ident FROM custlink.ip WHERE ipversion = 4

  DEFINE { query_name matched; join_output ordered; }
  SELECT c.time as t, c.srcip as src
  FROM cust c, bb b
  WHERE c.time >= b.time - 1 and c.time <= b.time + 1
    and c.srcip = b.srcip and c.destip = b.destip and c.ident = b.ident

  DEFINE { query_name matched_per_sec; }
  SELECT tb, count(*) as cnt FROM matched GROUP BY t/1 as tb

  DEFINE { query_name bb_per_sec; }
  SELECT tb, count(*) as cnt FROM bb GROUP BY time/1 as tb
|}

let customer_prefix = Ipaddr.of_string "10.0.0.0"

let is_customer pkt =
  match Packet.ip_header pkt with
  | Some ip ->
      Ipaddr.in_prefix ip.Gigascope_packet.Ipv4.src ~prefix:customer_prefix ~len:8
  | None -> false

let join_setup ~seed engine =
  let cfg = gen_cfg ~seed ~duration:2.0 ~rate:2.0 () in
  E.add_interface engine ~name:"backbone"
    ~feed:(fun () ->
      let g = Traffic.Gen.create cfg in
      fun () -> Traffic.Gen.next g)
    ();
  E.add_interface engine ~name:"custlink"
    ~feed:(fun () ->
      let g = Traffic.Gen.create cfg in
      let rec pull () =
        match Traffic.Gen.next g with
        | Some p when is_customer p -> Some p
        | Some _ -> pull ()
        | None -> None
      in
      pull)
    ()

let link_merge_setup ~seed engine =
  E.add_split_interfaces engine ~names:["eth0"; "eth1"]
    (gen_cfg ~seed ~duration:1.0 ~rate:20.0 ~interfaces:2 ())

let sessions_setup ~seed engine =
  let g = Traffic.Gen.create (gen_cfg ~seed ~duration:2.0 ~rate:20.0 ()) in
  Result.get_ok
    (E.add_session_source engine ~name:"sessions" ~feed:(fun () -> Traffic.Gen.next g) ())

let workloads =
  [
    from_file "http_fraction" ~outputs:["port80"; "http80"];
    from_file "subnet_volume" ~outputs:["subnet_volume"];
    from_file "syn_flood" ~outputs:["syn_flood"] ~params:[("threshold", Value.Int 2)];
    from_file "tcpdest" ~outputs:["tcpdest0"; "portcounts"];
    {
      wname = "link_merge";
      program = (fun () -> read_query "link_merge");
      setup = link_merge_setup;
      outputs = ["t0"; "t1"; "link"; "volume"];
      params = [];
    };
    {
      wname = "sessions_report";
      program = (fun () -> read_query "sessions_report");
      setup = sessions_setup;
      outputs = ["session_sizes"];
      params = [];
    };
    {
      wname = "ordered_join";
      program = (fun () -> join_program);
      setup = join_setup;
      outputs = ["matched"; "matched_per_sec"; "bb_per_sec"];
      params = [];
    };
  ]

(* ------------------------------ execution ------------------------------- *)

let exec w ~seed ~parallel ?quantum ?(heartbeats = true) ?heartbeat_period
    ?placement ?batch ?shards () =
  (* [quantum] is deliberately a pass-through: left unset, the scheduler
     floors its default quantum at the batch size, so the large-batch
     fuzz cases really move large batches. [shards] too: left unset,
     GIGASCOPE_SHARDS shards every workload the suite executes. *)
  let engine = E.create ?shards () in
  w.setup ~seed engine;
  (match E.install_program engine ~params:w.params (w.program ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Printf.sprintf "%s: install: %s" w.wname e));
  let collectors = List.map (fun n -> (n, collect engine n)) w.outputs in
  (match
     E.run engine ?quantum ~heartbeats ?heartbeat_period ~parallel ?placement ?batch ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Printf.sprintf "%s: run: %s" w.wname e));
  (List.map (fun (n, get) -> (n, get ())) collectors, E.total_drops engine)

let assert_same ~label baseline got =
  List.iter2
    (fun (n, expected) (n', actual) ->
      assert (n = n');
      Alcotest.check
        Alcotest.(list string)
        (Printf.sprintf "%s output %s" label n)
        expected actual)
    baseline got
