(* Static memory certification and the admission gate.

   The claim under test: every compiled plan either carries a finite
   symbolic state bound (composed from epoch group-closing, join
   windows, merge skew and sketch parameters) or a structured
   Unbounded verdict naming the operator, the missing ordering
   property, and the fixing rewrite — and the engine refuses, warns on,
   or silently admits unbounded plans according to its admission mode.
   Every query we ship and every differential workload must certify
   finite; the two canonical unbounded shapes (an epoch-less
   aggregation, a windowless join) must not. *)

module E = Gigascope.Engine
module Rts = Gigascope_rts
module Gsql = Gigascope_gsql
module Certify = Gsql.Certify
module Value = Rts.Value

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Compile against a fresh default catalog (sessions registered like
   gsq explain does, so the shipped sessions_report compiles too). *)
let compile text =
  let engine = E.create () in
  ignore (E.add_session_source engine ~name:"sessions" ~feed:(fun () -> None) ());
  match Gsql.Compile.compile_program (E.catalog engine) text with
  | Error e -> Alcotest.fail e
  | Ok compiled -> compiled

let certs text =
  List.map (fun c -> Certify.certify c.Gsql.Compile.split) (compile text)

let last_cert text =
  match List.rev (certs text) with
  | c :: _ -> c
  | [] -> Alcotest.fail "no queries compiled"

(* ------------------------- unbounded verdicts --------------------------- *)

let epochless_agg = "DEFINE { query_name peraddr; } SELECT srcip, count(*) as c FROM eth0.tcp GROUP BY srcip"

let test_epochless_agg_unbounded () =
  let cert = last_cert epochless_agg in
  check Alcotest.bool "verdict is unbounded" false (Certify.finite cert);
  match Certify.unbounded_nodes cert with
  | [ u ] ->
      check Alcotest.string "names the super-aggregation" "peraddr" u.Certify.u_operator;
      check Alcotest.bool "reason names the missing epoch" true
        (contains u.Certify.u_reason "monotone");
      check Alcotest.bool "fix proposes a bucketed ordered key" true
        (contains u.Certify.u_fix "GROUP BY");
      (* the LFTA half is a direct-mapped table, bounded regardless *)
      check Alcotest.bool "lfta table stays bounded" true
        (Certify.node_bound cert "_lfta_peraddr" <> None)
  | us -> Alcotest.failf "expected exactly one unbounded node, got %d" (List.length us)

let windowless_join =
  {| DEFINE { query_name l; } SELECT time, srcip FROM eth0.tcp
     DEFINE { query_name r; } SELECT time, destip FROM eth0.tcp
     DEFINE { query_name j; }
     SELECT a.time, a.srcip, b.destip FROM l a, r b WHERE a.srcip = b.destip |}

let test_windowless_join_unbounded () =
  let cert = last_cert windowless_join in
  check Alcotest.bool "verdict is unbounded" false (Certify.finite cert);
  match Certify.unbounded_nodes cert with
  | [ u ] ->
      check Alcotest.string "names the join" "j" u.Certify.u_operator;
      check Alcotest.bool "reason names the unbounded window" true
        (contains u.Certify.u_reason "bound");
      check Alcotest.bool "fix proposes window conjuncts" true
        (contains u.Certify.u_fix "window")
  | us -> Alcotest.failf "expected exactly one unbounded node, got %d" (List.length us)

let test_one_sided_window_unbounded () =
  let text =
    {| DEFINE { query_name l; } SELECT time, srcip FROM eth0.tcp
       DEFINE { query_name r; } SELECT time, destip FROM eth0.tcp
       DEFINE { query_name j; }
       SELECT a.time FROM l a, r b WHERE a.time >= b.time - 2 and a.srcip = b.destip |}
  in
  let cert = last_cert text in
  check Alcotest.bool "half a window is no window" false (Certify.finite cert)

let test_windowed_join_finite () =
  let text =
    {| DEFINE { query_name l; } SELECT time, srcip FROM eth0.tcp
       DEFINE { query_name r; } SELECT time, destip FROM eth0.tcp
       DEFINE { query_name j; }
       SELECT a.time FROM l a, r b
       WHERE a.time >= b.time - 2 and a.time <= b.time + 1 and a.srcip = b.destip |}
  in
  let cert = last_cert text in
  check Alcotest.bool "windowed join certifies finite" true (Certify.finite cert);
  check Alcotest.bool "a window implies a positive bound" true
    (match Certify.total_estimate cert with Some b -> b > 0.0 | None -> false)

(* ------------------------ shipped plans certify ------------------------- *)

let test_shipped_queries_finite () =
  let dir = Filename.concat ".." "queries" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".gsql")
    |> List.sort compare
  in
  check Alcotest.bool "query files found" true (files <> []);
  List.iter
    (fun f ->
      let ic = open_in (Filename.concat dir f) in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      List.iter
        (fun cert ->
          if not (Certify.finite cert) then
            Alcotest.failf "%s: %s is unbounded:\n%s" f cert.Certify.cquery
              (Certify.report cert))
        (certs text))
    files

let test_differential_workloads_admit_under_reject () =
  (* the 7-workload differential set must install on an engine that
     rejects unbounded plans — certification of the whole suite *)
  List.iter
    (fun (w : Workloads.workload) ->
      let engine = E.create ~admit:E.Admit_reject () in
      w.Workloads.setup ~seed:5 engine;
      match E.install_program engine ~params:w.Workloads.params (w.Workloads.program ()) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s rejected: %s" w.Workloads.wname e)
    Workloads.workloads

(* --------------------------- admission modes ---------------------------- *)

let engine_with_traffic ?admit () =
  let engine = E.create ?admit () in
  E.add_generator_interface engine ~name:"eth0"
    { Gigascope_traffic.Gen.default with rate_mbps = 20.0; duration = 0.05; seed = 9 };
  engine

let test_reject_refuses_unbounded () =
  let engine = engine_with_traffic ~admit:E.Admit_reject () in
  match E.install_program engine epochless_agg with
  | Ok _ -> Alcotest.fail "reject admission accepted an unbounded plan"
  | Error e ->
      check Alcotest.bool "error names the operator" true (contains e "peraddr");
      check Alcotest.bool "error carries the diagnostic" true (contains e "unbounded state");
      check Alcotest.bool "error names the override" true (contains e "--allow-unbounded")

let test_warn_installs_unbounded () =
  let engine = engine_with_traffic ~admit:E.Admit_warn () in
  (match E.install_program engine epochless_agg with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "warn admission must install: %s" e);
  (* flush-driven use still works: this is Section 2.2's epoch-less
     aggregation, the reason warn (not reject) is the library default *)
  let rows = ref 0 in
  Result.get_ok (E.on_tuple engine "peraddr" (fun _ -> incr rows));
  (match E.run engine () with Ok _ -> () | Error e -> Alcotest.fail e);
  check Alcotest.bool "epoch-less aggregation still emits at EOF" true (!rows > 0)

let test_bounded_plans_admit_everywhere () =
  List.iter
    (fun admit ->
      let engine = engine_with_traffic ~admit () in
      match E.install_program engine "SELECT tb, count(*) as c FROM eth0.tcp GROUP BY time/1 as tb" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "bounded plan rejected under %s: %s" (E.admit_to_string admit) e)
    [ E.Admit_allow; E.Admit_warn; E.Admit_reject ]

let with_env name value body =
  let saved = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect ~finally:(fun () -> Unix.putenv name (Option.value saved ~default:"")) body

let test_admit_env_knob () =
  with_env "GIGASCOPE_ADMIT" "reject" (fun () ->
      check Alcotest.string "GIGASCOPE_ADMIT=reject honored" "reject"
        (E.admit_to_string (E.admit_mode (E.create ()))));
  with_env "GIGASCOPE_ADMIT" "Allow" (fun () ->
      check Alcotest.string "case-insensitive" "allow"
        (E.admit_to_string (E.admit_mode (E.create ()))));
  with_env "GIGASCOPE_ADMIT" "bogus" (fun () ->
      (* malformed values warn and default, like every other knob *)
      check Alcotest.string "garbage defaults to warn" "warn"
        (E.admit_to_string (E.admit_mode (E.create ()))));
  with_env "GIGASCOPE_ADMIT" "" (fun () ->
      check Alcotest.string "unset defaults to warn" "warn"
        (E.admit_to_string (E.admit_mode (E.create ()))))

(* ----------------------- installed-plan wiring -------------------------- *)

let test_install_wires_bounds_and_burst () =
  let engine = engine_with_traffic () in
  (match E.install_program engine (Workloads.read_query "tcpdest") with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* the certificate is recorded per query... *)
  (match E.certificate engine "portcounts" with
  | None -> Alcotest.fail "no certificate recorded for portcounts"
  | Some cert -> check Alcotest.bool "recorded certificate is finite" true (Certify.finite cert));
  (* ...its per-node bounds land on the runtime nodes... *)
  (match Rts.Manager.find (E.manager engine) "portcounts" with
  | None -> Alcotest.fail "portcounts not installed"
  | Some node ->
      check Alcotest.bool "node carries a finite certified bound" true
        (Float.is_finite (Rts.Node.state_bound node)));
  (* ...and the LFTA's table flush sets the query burst (2^12 slots) *)
  check Alcotest.bool "certified burst covers an LFTA table flush" true
    (E.certified_burst engine "portcounts" >= 4096);
  check Alcotest.int "unknown queries have burst 1" 1 (E.certified_burst engine "nosuch")

let test_explain_memory_surfaces_certification () =
  let engine = E.create () in
  let text = "SELECT tb, count(*) as c FROM eth0.tcp GROUP BY time/1 as tb" in
  (match E.explain engine ~memory:true text with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check Alcotest.bool "memory section present" true (contains s "memory certification");
      check Alcotest.bool "query bound printed" true (contains s "query bound"));
  match E.explain engine text with
  | Error e -> Alcotest.fail e
  | Ok s -> check Alcotest.bool "off by default" false (contains s "memory certification")

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "certify"
    [
      ( "unbounded verdicts",
        [
          tc "epoch-less aggregation" test_epochless_agg_unbounded;
          tc "windowless join" test_windowless_join_unbounded;
          tc "one-sided window" test_one_sided_window_unbounded;
          tc "windowed join is finite" test_windowed_join_finite;
        ] );
      ( "shipped plans",
        [
          tc "every queries/*.gsql certifies finite" test_shipped_queries_finite;
          tc "differential workloads admit under reject" test_differential_workloads_admit_under_reject;
        ] );
      ( "admission",
        [
          tc "reject refuses with the diagnostic" test_reject_refuses_unbounded;
          tc "warn installs and flushes at EOF" test_warn_installs_unbounded;
          tc "bounded plans admit everywhere" test_bounded_plans_admit_everywhere;
          tc "GIGASCOPE_ADMIT knob" test_admit_env_knob;
        ] );
      ( "wiring",
        [
          tc "install records certificate, bounds, burst" test_install_wires_bounds_and_burst;
          tc "explain --memory" test_explain_memory_surfaces_certification;
        ] );
    ]
