(* Tests for the runtime system: values, schemas, ordering properties,
   operators (with offline oracles), the two-level aggregation equivalence,
   the stream manager, and the scheduler. *)

module Rts = Gigascope_rts
module Value = Rts.Value
module Ty = Rts.Ty
module Schema = Rts.Schema
module Item = Rts.Item
module Order_prop = Rts.Order_prop
module Agg_fn = Rts.Agg_fn
module Prng = Gigascope_util.Prng

let check = Alcotest.check
let qtest ?(count = 200) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let vint i = Value.Int i

(* run an operator over a list of items, collecting emissions *)
let run_op ?(input = 0) op items =
  let out = ref [] in
  let emit item = out := item :: !out in
  List.iter (fun item -> op.Rts.Operator.on_item ~input item ~emit) items;
  List.rev !out

let tuples items = List.filter_map (function Item.Tuple t -> Some t | _ -> None) items

(* ------------------------------- Value --------------------------------- *)

let test_value_compare () =
  check Alcotest.bool "int order" true (Value.compare (vint 1) (vint 2) < 0);
  check Alcotest.bool "int/float mix" true (Value.compare (vint 2) (Value.Float 1.5) > 0);
  check Alcotest.bool "float/int equal" true (Value.compare (Value.Float 2.0) (vint 2) = 0);
  check Alcotest.bool "strings" true (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  check Alcotest.bool "null first" true (Value.compare Value.Null (vint 0) < 0)

let value_equal_hash_consistent =
  qtest "equal values hash equally" QCheck.(pair int int) (fun (a, b) ->
      let va = vint a and vb = vint b in
      (not (Value.equal va vb)) || Value.hash va = Value.hash vb)

let test_value_truthy () =
  check Alcotest.bool "bool true" true (Value.is_truthy (Value.Bool true));
  check Alcotest.bool "zero" false (Value.is_truthy (vint 0));
  check Alcotest.bool "nonzero" true (Value.is_truthy (vint 3));
  check Alcotest.bool "null" false (Value.is_truthy Value.Null);
  check Alcotest.bool "string" false (Value.is_truthy (Value.Str "x"))

let test_value_arrays () =
  let a = [| vint 1; Value.Str "x" |] and b = [| vint 1; Value.Str "x" |] in
  check Alcotest.bool "array equal" true (Value.equal_array a b);
  check Alcotest.bool "array hash equal" true (Value.hash_array a = Value.hash_array b);
  check Alcotest.bool "length mismatch" false (Value.equal_array a [| vint 1 |])

(* ----------------------------- Order_prop ------------------------------ *)

let test_order_weaken () =
  let open Order_prop in
  check Alcotest.string "strict+strict" (to_string (Strict Asc)) (to_string (weaken (Strict Asc) (Strict Asc)));
  check Alcotest.string "strict+monotone" (to_string (Monotone Asc))
    (to_string (weaken (Strict Asc) (Monotone Asc)));
  check Alcotest.string "banded widest" (to_string (Banded (Asc, 30.0)))
    (to_string (weaken (Banded (Asc, 30.0)) (Monotone Asc)));
  check Alcotest.string "opposite directions" (to_string Unordered)
    (to_string (weaken (Monotone Asc) (Monotone Desc)));
  check Alcotest.string "unordered absorbs" (to_string Unordered)
    (to_string (weaken Unordered (Strict Asc)))

let test_order_usability () =
  let open Order_prop in
  check Alcotest.bool "monotone usable" true (usable_for_epoch (Monotone Asc));
  check Alcotest.bool "banded usable" true (usable_for_window (Banded (Asc, 5.0)));
  check Alcotest.bool "nonrepeating not usable" false (usable_for_epoch Nonrepeating);
  check Alcotest.bool "in-group not usable" false (usable_for_window (In_group (["a"], Asc)))

let test_order_arithmetic_imputation () =
  let open Order_prop in
  check Alcotest.string "strict loses strictness" (to_string (Monotone Asc))
    (to_string (imputed_through_arithmetic (Strict Asc) ~monotone_fn:true));
  check Alcotest.string "non-monotone fn destroys" (to_string Unordered)
    (to_string (imputed_through_arithmetic (Strict Asc) ~monotone_fn:false))

(* ------------------------------- Schema -------------------------------- *)

let mk_schema () =
  Schema.make
    [
      { Schema.name = "ts"; ty = Ty.Int; order = Order_prop.Monotone Order_prop.Asc };
      { Schema.name = "Port"; ty = Ty.Int; order = Order_prop.Unordered };
    ]

let test_schema_lookup () =
  let s = mk_schema () in
  check Alcotest.(option int) "case-insensitive" (Some 1) (Schema.field_index s "port");
  check Alcotest.(option int) "exact" (Some 0) (Schema.field_index s "ts");
  check Alcotest.(option int) "missing" None (Schema.field_index s "nope")

let test_schema_duplicates () =
  Alcotest.check_raises "duplicates rejected"
    (Invalid_argument "Schema.make: duplicate field X") (fun () ->
      ignore
        (Schema.make
           [
             { Schema.name = "x"; ty = Ty.Int; order = Order_prop.Unordered };
             { Schema.name = "X"; ty = Ty.Int; order = Order_prop.Unordered };
           ]))

let test_schema_concat () =
  let s = Schema.concat (mk_schema ()) (mk_schema ()) in
  check Alcotest.int "arity" 4 (Schema.arity s);
  check Alcotest.(option int) "suffixed clash" (Some 2) (Schema.field_index s "ts_2")

let test_schema_ordered_fields () =
  let s = mk_schema () in
  check Alcotest.int "one ordered field" 1 (List.length (Schema.ordered_fields s))

(* ----------------------------- Select op ------------------------------- *)

let test_select_filter_project () =
  let op =
    Rts.Select_op.make
      ~pred:(fun t -> Value.compare t.(1) (vint 10) > 0)
      ~project:(fun t -> Some [| t.(0) |])
      ~punct_map:[(0, 0)] ()
  in
  let items =
    [
      Item.Tuple [| vint 1; vint 5 |];
      Item.Tuple [| vint 2; vint 20 |];
      Item.Punct [(0, vint 2); (1, vint 99)];
      Item.Tuple [| vint 3; vint 30 |];
      Item.Eof;
    ]
  in
  let out = run_op op items in
  check Alcotest.int "two tuples pass" 2 (List.length (tuples out));
  (match List.nth out 1 with
  | Item.Punct [(0, Value.Int 2)] -> ()
  | _ -> Alcotest.fail "punct should translate field 0 only, dropping field 1");
  match List.rev out with Item.Eof :: _ -> () | _ -> Alcotest.fail "eof forwarded"

let test_select_partial_projection () =
  let op =
    Rts.Select_op.make
      ~project:(fun t -> if Value.is_truthy t.(0) then Some t else None)
      ~punct_map:[] ()
  in
  let out = run_op op [Item.Tuple [| vint 0 |]; Item.Tuple [| vint 1 |]; Item.Eof] in
  check Alcotest.int "partial projection discards" 1 (List.length (tuples out))

(* ------------------------------ Sample op ------------------------------ *)

let test_sample_extremes () =
  let none = Rts.Sample_op.make ~rate:0.0 ~seed:1 () in
  let all = Rts.Sample_op.make ~rate:1.0 ~seed:1 () in
  let input = List.init 100 (fun i -> Item.Tuple [| vint i |]) @ [Item.Eof] in
  check Alcotest.int "rate 0 keeps none" 0 (List.length (tuples (run_op none input)));
  check Alcotest.int "rate 1 keeps all" 100 (List.length (tuples (run_op all input)))

let test_sample_deterministic () =
  let input = List.init 200 (fun i -> Item.Tuple [| vint i |]) @ [Item.Eof] in
  let a = run_op (Rts.Sample_op.make ~rate:0.5 ~seed:9 ()) input in
  let b = run_op (Rts.Sample_op.make ~rate:0.5 ~seed:9 ()) input in
  check Alcotest.int "same seed same sample" (List.length (tuples a)) (List.length (tuples b));
  let n = List.length (tuples a) in
  check Alcotest.bool "roughly half" true (n > 70 && n < 130)

(* --------------------------- HFTA aggregation -------------------------- *)

(* group by (ts/10, key), count + sum(v); input ts nondecreasing *)
let agg_config ?(band = 0.0) ?having () =
  {
    Rts.Aggregate.pred = None;
    keys =
      [|
        (fun t -> match t.(0) with Value.Int ts -> Some (vint (ts / 10)) | _ -> None);
        (fun t -> Some t.(1));
      |];
    epoch_key = Some 0;
    direction = Order_prop.Asc;
    band;
    aggs =
      [|
        { Agg_fn.kind = Agg_fn.Count; arg = None };
        { Agg_fn.kind = Agg_fn.Sum; arg = Some (fun t -> Some t.(2)) };
      |];
    assemble = (fun ~keys ~aggs -> Array.append keys aggs);
    having;
    epoch_out = Some 0;
    punct_in = Some (0, fun v -> match v with Value.Int ts -> Some (vint (ts / 10)) | _ -> None);
  }

let mk_rows seed n =
  (* nondecreasing timestamps, few keys *)
  let rng = Prng.create seed in
  let ts = ref 0 in
  List.init n (fun _ ->
      ts := !ts + Prng.int rng 3;
      [| vint !ts; vint (Prng.int rng 4); vint (Prng.int rng 100) |])

let oracle rows =
  (* offline group-by: (ts/10, key) -> count, sum *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun row ->
      match (row.(0), row.(1), row.(2)) with
      | Value.Int ts, Value.Int k, Value.Int v ->
          let key = (ts / 10, k) in
          let c, s = Option.value (Hashtbl.find_opt tbl key) ~default:(0, 0) in
          Hashtbl.replace tbl key (c + 1, s + v)
      | _ -> assert false)
    rows;
  tbl

let hfta_agg_matches_oracle =
  qtest ~count:100 "HFTA aggregation = offline group-by" QCheck.small_int (fun seed ->
      let rows = mk_rows seed 300 in
      let agg = Rts.Aggregate.make (agg_config ()) in
      let out =
        run_op (Rts.Aggregate.op agg) (List.map (fun r -> Item.Tuple r) rows @ [Item.Eof])
      in
      let expected = oracle rows in
      let got = Hashtbl.create 16 in
      List.iter
        (fun t ->
          match (t.(0), t.(1), t.(2), t.(3)) with
          | Value.Int tb, Value.Int k, Value.Int c, Value.Int s -> Hashtbl.replace got (tb, k) (c, s)
          | _ -> ())
        (tuples out);
      Hashtbl.length got = Hashtbl.length expected
      && Hashtbl.fold (fun k v acc -> acc && Hashtbl.find_opt got k = Some v) expected true)

let test_agg_epoch_flushes_incrementally () =
  let agg = Rts.Aggregate.make (agg_config ()) in
  let op = Rts.Aggregate.op agg in
  let out1 = run_op op [Item.Tuple [| vint 5; vint 0; vint 1 |]] in
  check Alcotest.int "nothing emitted within epoch" 0 (List.length out1);
  let out2 = run_op op [Item.Tuple [| vint 15; vint 0; vint 1 |]] in
  check Alcotest.int "epoch advance flushes closed group" 1 (List.length (tuples out2));
  check Alcotest.int "one group open" 1 (Rts.Aggregate.open_groups agg)

let test_agg_output_epoch_order () =
  (* closed groups come out sorted by epoch key *)
  let agg = Rts.Aggregate.make (agg_config ()) in
  let op = Rts.Aggregate.op agg in
  let rows =
    [
      [| vint 5; vint 1; vint 0 |]; [| vint 12; vint 0; vint 0 |]; [| vint 25; vint 2; vint 0 |];
      [| vint 33; vint 1; vint 0 |];
    ]
  in
  let out = run_op op (List.map (fun r -> Item.Tuple r) rows @ [Item.Eof]) in
  let epochs =
    List.filter_map (fun t -> match t.(0) with Value.Int e -> Some e | _ -> None) (tuples out)
  in
  check Alcotest.(list int) "monotone epoch output" (List.sort compare epochs) epochs

let test_agg_punct_flush_and_translate () =
  let agg = Rts.Aggregate.make (agg_config ()) in
  let op = Rts.Aggregate.op agg in
  ignore (run_op op [Item.Tuple [| vint 5; vint 0; vint 7 |]]);
  let out = run_op op [Item.Punct [(0, vint 20)]] in
  check Alcotest.int "punct closes passed groups" 1 (List.length (tuples out));
  match List.rev out with
  | Item.Punct [(0, Value.Int 2)] :: _ -> ()
  | _ -> Alcotest.fail "output punct should carry translated bound 20/10=2"

let test_agg_having () =
  let having virt = match virt.(2) with Value.Int c -> c >= 2 | _ -> false in
  let agg = Rts.Aggregate.make (agg_config ~having ()) in
  let op = Rts.Aggregate.op agg in
  let rows = [[| vint 1; vint 0; vint 1 |]; [| vint 2; vint 0; vint 1 |]; [| vint 3; vint 1; vint 1 |]] in
  let out = run_op op (List.map (fun r -> Item.Tuple r) rows @ [Item.Eof]) in
  check Alcotest.int "having filters singleton group" 1 (List.length (tuples out))

let test_agg_banded_keeps_groups_open () =
  (* band 1 in epoch units: epoch e closes only when the frontier passes
     e + 1 *)
  let agg = Rts.Aggregate.make (agg_config ~band:1.0 ()) in
  let op = Rts.Aggregate.op agg in
  ignore (run_op op [Item.Tuple [| vint 5; vint 0; vint 1 |]]);
  let out = run_op op [Item.Tuple [| vint 15; vint 0; vint 1 |]] in
  check Alcotest.int "within band: no flush yet" 0 (List.length (tuples out));
  (* a late tuple for the old epoch still lands in its group *)
  ignore (run_op op [Item.Tuple [| vint 8; vint 0; vint 1 |]]);
  let out2 = run_op op [Item.Tuple [| vint 29; vint 0; vint 1 |]] in
  let flushed = tuples out2 in
  check Alcotest.int "band passed: old epoch flushed" 1 (List.length flushed);
  match (List.hd flushed).(2) with
  | Value.Int c -> check Alcotest.int "late tuple was counted" 2 c
  | _ -> Alcotest.fail "bad count"

let test_agg_partial_key_discards () =
  let cfg = agg_config () in
  let cfg =
    { cfg with Rts.Aggregate.keys = [| (fun _ -> None); (fun t -> Some t.(1)) |];
               epoch_key = None; epoch_out = None; punct_in = None }
  in
  let agg = Rts.Aggregate.make cfg in
  let out = run_op (Rts.Aggregate.op agg) [Item.Tuple [| vint 1; vint 2; vint 3 |]; Item.Eof] in
  check Alcotest.int "partial key discards tuple" 0 (List.length (tuples out))

let test_agg_no_epoch_flushes_at_eof_only () =
  let cfg = { (agg_config ()) with Rts.Aggregate.epoch_key = None; epoch_out = None; punct_in = None } in
  let agg = Rts.Aggregate.make cfg in
  let op = Rts.Aggregate.op agg in
  let out1 = run_op op [Item.Tuple [| vint 5; vint 0; vint 1 |]; Item.Tuple [| vint 500; vint 0; vint 1 |]] in
  check Alcotest.int "no epoch: nothing flushes" 0 (List.length out1);
  let out2 = run_op op [Item.Eof] in
  check Alcotest.int "eof flushes all" 2 (List.length (tuples out2))

let test_agg_flush_item () =
  let agg = Rts.Aggregate.make (agg_config ()) in
  let op = Rts.Aggregate.op agg in
  ignore (run_op op [Item.Tuple [| vint 5; vint 0; vint 1 |]]);
  let out = run_op op [Item.Flush] in
  check Alcotest.int "user flush empties groups" 1 (List.length (tuples out))

let test_agg_pred_filters () =
  let cfg = { (agg_config ()) with Rts.Aggregate.pred = Some (fun t -> Value.compare t.(2) (vint 50) > 0) } in
  let agg = Rts.Aggregate.make cfg in
  let op = Rts.Aggregate.op agg in
  let rows = [[| vint 1; vint 0; vint 10 |]; [| vint 2; vint 0; vint 90 |]] in
  let out = run_op op (List.map (fun r -> Item.Tuple r) rows @ [Item.Eof]) in
  match tuples out with
  | [t] -> (
      match t.(2) with
      | Value.Int c -> check Alcotest.int "only passing tuple counted" 1 c
      | _ -> Alcotest.fail "bad shape")
  | _ -> Alcotest.fail "expected one group"

(* --------------------- LFTA/HFTA two-level equivalence ------------------ *)

let two_level_equivalence =
  qtest ~count:60 "LFTA+HFTA split aggregation = single level"
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, bits) ->
      let rows = mk_rows seed 400 in
      let items = List.map (fun r -> Item.Tuple r) rows @ [Item.Eof] in
      let keys =
        [|
          (fun (t : Value.t array) -> match t.(0) with Value.Int ts -> Some (vint (ts / 10)) | _ -> None);
          (fun (t : Value.t array) -> Some t.(1));
        |]
      in
      let arg = Some (fun (t : Value.t array) -> Some t.(2)) in
      let aggs =
        [|
          { Agg_fn.kind = Agg_fn.Count; arg = None };
          { Agg_fn.kind = Agg_fn.Sum; arg };
          { Agg_fn.kind = Agg_fn.Min; arg };
          { Agg_fn.kind = Agg_fn.Max; arg };
        |]
      in
      let single =
        Rts.Aggregate.make
          {
            Rts.Aggregate.pred = None;
            keys;
            epoch_key = Some 0;
            direction = Order_prop.Asc;
            band = 0.0;
            aggs;
            assemble = (fun ~keys ~aggs -> Array.append keys aggs);
            having = None;
            epoch_out = Some 0;
            punct_in = None;
          }
      in
      let single_out = tuples (run_op (Rts.Aggregate.op single) items) in
      (* two level: a small direct-mapped LFTA emits partials; the HFTA
         recombines them (count -> sum of counts, etc.) *)
      let lfta =
        Rts.Lfta_aggregate.make
          {
            Rts.Lfta_aggregate.table_bits = bits;
            pred = None;
            keys;
            epoch_key = Some 0;
            direction = Order_prop.Asc;
            band = 0.0;
            aggs;
            assemble = (fun ~keys ~aggs -> Array.append keys aggs);
            punct_in = None;
            epoch_out = None;
          }
      in
      let partials = run_op (Rts.Lfta_aggregate.op lfta) items in
      let super =
        Rts.Aggregate.make
          {
            Rts.Aggregate.pred = None;
            keys = [| (fun t -> Some t.(0)); (fun t -> Some t.(1)) |];
            epoch_key = Some 0;
            direction = Order_prop.Asc;
            band = 0.0;
            aggs =
              [|
                { Agg_fn.kind = Agg_fn.Sum; arg = Some (fun t -> Some t.(2)) };
                { Agg_fn.kind = Agg_fn.Sum; arg = Some (fun t -> Some t.(3)) };
                { Agg_fn.kind = Agg_fn.Min; arg = Some (fun t -> Some t.(4)) };
                { Agg_fn.kind = Agg_fn.Max; arg = Some (fun t -> Some t.(5)) };
              |];
            assemble = (fun ~keys ~aggs -> Array.append keys aggs);
            having = None;
            epoch_out = Some 0;
            punct_in = None;
          }
      in
      let split_out = tuples (run_op (Rts.Aggregate.op super) partials) in
      let to_set rows = List.sort compare (List.map Array.to_list rows) in
      to_set single_out = to_set split_out)

let test_lfta_eviction_counting () =
  (* table of 1 slot: every key change evicts *)
  let lfta =
    Rts.Lfta_aggregate.make
      {
        Rts.Lfta_aggregate.table_bits = 0;
        pred = None;
        keys = [| (fun t -> Some t.(0)) |];
        epoch_key = None;
        direction = Order_prop.Asc;
        band = 0.0;
        aggs = [| { Agg_fn.kind = Agg_fn.Count; arg = None } |];
        assemble = (fun ~keys ~aggs -> Array.append keys aggs);
        punct_in = None;
        epoch_out = None;
      }
  in
  let op = Rts.Lfta_aggregate.op lfta in
  let items = [Item.Tuple [| vint 1 |]; Item.Tuple [| vint 2 |]; Item.Tuple [| vint 1 |]; Item.Eof] in
  let out = run_op op items in
  check Alcotest.int "evictions" 2 (Rts.Lfta_aggregate.evictions lfta);
  check Alcotest.int "three partials out" 3 (List.length (tuples out))

(* ------------------------------- Merge --------------------------------- *)

let merge_outputs_ordered =
  qtest ~count:100 "merge output respects the ordered attribute" QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let mk () =
        let ts = ref 0 in
        List.init (10 + Prng.int rng 30) (fun _ ->
            ts := !ts + Prng.int rng 5;
            [| vint !ts |])
      in
      let s0 = mk () and s1 = mk () in
      let merge =
        Rts.Merge_op.make { Rts.Merge_op.n_inputs = 2; ordered_idx = 0; direction = Order_prop.Asc }
      in
      let op = Rts.Merge_op.op merge in
      let out = ref [] in
      let emit i = out := i :: !out in
      let q0 = ref s0 and q1 = ref s1 in
      let deliver input row = op.Rts.Operator.on_item ~input (Item.Tuple row) ~emit in
      let rec go () =
        match (!q0, !q1) with
        | [], [] -> ()
        | x :: rest, _ when !q1 = [] || Prng.bool rng ->
            q0 := rest;
            deliver 0 x;
            go ()
        | _, y :: rest ->
            q1 := rest;
            deliver 1 y;
            go ()
        | x :: rest, [] ->
            q0 := rest;
            deliver 0 x;
            go ()
      in
      go ();
      op.Rts.Operator.on_item ~input:0 Item.Eof ~emit;
      op.Rts.Operator.on_item ~input:1 Item.Eof ~emit;
      let ts_list =
        List.filter_map
          (function
            | Item.Tuple t -> ( match t.(0) with Value.Int v -> Some v | _ -> None)
            | _ -> None)
          (List.rev !out)
      in
      ts_list = List.sort compare ts_list
      && List.length ts_list = List.length s0 + List.length s1)

let test_merge_blocked_input_reported () =
  let merge = Rts.Merge_op.make { Rts.Merge_op.n_inputs = 2; ordered_idx = 0; direction = Order_prop.Asc } in
  let op = Rts.Merge_op.op merge in
  let emit _ = () in
  op.Rts.Operator.on_item ~input:0 (Item.Tuple [| vint 5 |]) ~emit;
  check Alcotest.(option int) "blocked on silent input 1" (Some 1)
    (op.Rts.Operator.blocked_input ());
  (* a punctuation unblocks without a tuple *)
  op.Rts.Operator.on_item ~input:1 (Item.Punct [(0, vint 10)]) ~emit;
  check Alcotest.(option int) "punct unblocked" None (op.Rts.Operator.blocked_input ())

let test_merge_punct_advances () =
  let merge = Rts.Merge_op.make { Rts.Merge_op.n_inputs = 2; ordered_idx = 0; direction = Order_prop.Asc } in
  let op = Rts.Merge_op.op merge in
  let out = ref [] in
  let emit i = out := i :: !out in
  op.Rts.Operator.on_item ~input:0 (Item.Tuple [| vint 5 |]) ~emit;
  check Alcotest.int "held back" 0 (List.length !out);
  op.Rts.Operator.on_item ~input:1 (Item.Punct [(0, vint 7)]) ~emit;
  check Alcotest.bool "tuple released by punct" true
    (List.exists (function Item.Tuple [| Value.Int 5 |] -> true | _ -> false) !out)

let test_merge_eof_drains () =
  let merge = Rts.Merge_op.make { Rts.Merge_op.n_inputs = 2; ordered_idx = 0; direction = Order_prop.Asc } in
  let op = Rts.Merge_op.op merge in
  let out = ref [] in
  let emit i = out := i :: !out in
  op.Rts.Operator.on_item ~input:0 (Item.Tuple [| vint 5 |]) ~emit;
  op.Rts.Operator.on_item ~input:1 Item.Eof ~emit;
  op.Rts.Operator.on_item ~input:0 Item.Eof ~emit;
  check Alcotest.bool "drained and eof" true
    (match List.rev !out with [Item.Tuple _; Item.Eof] -> true | _ -> false)

(* -------------------------------- Join ---------------------------------- *)

let join_matches_nested_loop =
  qtest ~count:100 "windowed join = nested loop within window" QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let mk n =
        let ts = ref 0 in
        List.init n (fun i ->
            ts := !ts + Prng.int rng 4;
            [| vint !ts; vint i |])
      in
      let left = mk (10 + Prng.int rng 20) and right = mk (10 + Prng.int rng 20) in
      let lo = -2.0 and hi = 2.0 in
      let join =
        Rts.Join_op.make
          {
            Rts.Join_op.output_mode = Rts.Join_op.Banded_output;
            left_idx = 0;
            right_idx = 0;
            lo;
            hi;
            pred = (fun _ _ -> true);
            assemble = (fun l r -> Some [| l.(0); l.(1); r.(0); r.(1) |]);
            left_out = Some 0;
            right_out = Some 2;
          }
      in
      let op = Rts.Join_op.op join in
      let out = ref [] in
      let emit i = out := i :: !out in
      (* interleave by timestamp, as an ordered network would deliver *)
      let tagged =
        List.map (fun r -> (0, r)) left @ List.map (fun r -> (1, r)) right
        |> List.stable_sort (fun (_, a) (_, b) -> Value.compare a.(0) b.(0))
      in
      List.iter (fun (input, row) -> op.Rts.Operator.on_item ~input (Item.Tuple row) ~emit) tagged;
      op.Rts.Operator.on_item ~input:0 Item.Eof ~emit;
      op.Rts.Operator.on_item ~input:1 Item.Eof ~emit;
      let got =
        List.filter_map (function Item.Tuple t -> Some (Array.to_list t) | _ -> None) !out
        |> List.sort compare
      in
      let expected =
        List.concat_map
          (fun l ->
            List.filter_map
              (fun r ->
                match (l.(0), r.(0)) with
                | Value.Int lt, Value.Int rt
                  when float_of_int (lt - rt) >= lo && float_of_int (lt - rt) <= hi ->
                    Some [l.(0); l.(1); r.(0); r.(1)]
                | _ -> None)
              right)
          left
        |> List.sort compare
      in
      got = expected)

let test_join_output_modes () =
  (* the Section 2.1 algorithm choice: banded output can run backwards
     within the window; ordered output may not, and buffers more *)
  let mk mode =
    Rts.Join_op.make
      {
        Rts.Join_op.output_mode = mode;
        left_idx = 0;
        right_idx = 0;
        lo = -2.0;
        hi = 2.0;
        pred = (fun _ _ -> true);
        assemble = (fun l r -> Some [| l.(0); r.(0) |]);
        left_out = Some 0;
        right_out = Some 1;
      }
  in
  (* deliver rights first so banded probing emits left ts out of order:
     left 5 arrives and matches rights 4,5,6 immediately; left 4 arrives
     later and matches 3..6 — its outputs (ts 4) follow left 5's. *)
  let feed join =
    let op = Rts.Join_op.op join in
    let out = ref [] in
    let emit i = out := i :: !out in
    List.iter
      (fun rt -> op.Rts.Operator.on_item ~input:1 (Item.Tuple [| vint rt |]) ~emit)
      [3; 4; 5; 6];
    (* left side arrives late and slightly jumbled within its band *)
    op.Rts.Operator.on_item ~input:0 (Item.Tuple [| vint 5 |]) ~emit;
    op.Rts.Operator.on_item ~input:0 (Item.Tuple [| vint 5 |]) ~emit;
    (* a punctuation instead of the straggler: bound jumps forward *)
    op.Rts.Operator.on_item ~input:0 (Item.Punct [(0, vint 9)]) ~emit;
    op.Rts.Operator.on_item ~input:1 (Item.Punct [(0, vint 9)]) ~emit;
    op.Rts.Operator.on_item ~input:0 Item.Eof ~emit;
    op.Rts.Operator.on_item ~input:1 Item.Eof ~emit;
    List.filter_map
      (function
        | Item.Tuple t -> ( match t.(0) with Value.Int v -> Some v | _ -> None)
        | _ -> None)
      (List.rev !out)
  in
  let banded_join = mk Rts.Join_op.Banded_output in
  let banded = feed banded_join in
  let ordered_join = mk Rts.Join_op.Ordered_output in
  let ordered = feed ordered_join in
  check Alcotest.(list int) "same matches either way" (List.sort compare banded)
    (List.sort compare ordered);
  check Alcotest.(list int) "ordered mode sorted on the left attribute"
    (List.sort compare ordered) ordered

let join_ordered_mode_sorted =
  qtest ~count:60 "ordered join output is always sorted" QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let mk n =
        let ts = ref 0 in
        List.init n (fun i ->
            ts := !ts + Prng.int rng 4;
            [| vint !ts; vint i |])
      in
      let left = mk (5 + Prng.int rng 20) and right = mk (5 + Prng.int rng 20) in
      let join =
        Rts.Join_op.make
          {
            Rts.Join_op.output_mode = Rts.Join_op.Ordered_output;
            left_idx = 0;
            right_idx = 0;
            lo = -3.0;
            hi = 3.0;
            pred = (fun _ _ -> true);
            assemble = (fun l r -> Some [| l.(0); l.(1); r.(0); r.(1) |]);
            left_out = Some 0;
            right_out = Some 2;
          }
      in
      let op = Rts.Join_op.op join in
      let out = ref [] in
      let emit i = out := i :: !out in
      let tagged =
        List.map (fun r -> (0, r)) left @ List.map (fun r -> (1, r)) right
        |> List.stable_sort (fun (_, a) (_, b) -> Value.compare a.(0) b.(0))
      in
      List.iter (fun (input, row) -> op.Rts.Operator.on_item ~input (Item.Tuple row) ~emit) tagged;
      op.Rts.Operator.on_item ~input:0 Item.Eof ~emit;
      op.Rts.Operator.on_item ~input:1 Item.Eof ~emit;
      let left_ts =
        List.filter_map
          (function
            | Item.Tuple t -> ( match t.(0) with Value.Int v -> Some v | _ -> None)
            | _ -> None)
          (List.rev !out)
      in
      left_ts = List.sort compare left_ts)

let test_join_purges_state () =
  let join =
    Rts.Join_op.make
      {
        Rts.Join_op.output_mode = Rts.Join_op.Banded_output;
        left_idx = 0;
        right_idx = 0;
        lo = 0.0;
        hi = 0.0;
        pred = (fun _ _ -> true);
        assemble = (fun l r -> Some (Array.append l r));
        left_out = Some 0;
        right_out = None;
      }
  in
  let op = Rts.Join_op.op join in
  let emit _ = () in
  for i = 1 to 100 do
    op.Rts.Operator.on_item ~input:0 (Item.Tuple [| vint i |]) ~emit;
    op.Rts.Operator.on_item ~input:1 (Item.Tuple [| vint i |]) ~emit
  done;
  check Alcotest.bool "window bounds buffered state" true (Rts.Join_op.buffered join <= 4)

let test_join_bad_window () =
  Alcotest.check_raises "lo > hi rejected" (Invalid_argument "Join_op.make: empty window (lo > hi)")
    (fun () ->
      ignore
        (Rts.Join_op.make
           {
             Rts.Join_op.output_mode = Rts.Join_op.Banded_output;
             left_idx = 0;
             right_idx = 0;
             lo = 1.0;
             hi = -1.0;
             pred = (fun _ _ -> true);
             assemble = (fun _ _ -> None);
             left_out = None;
             right_out = None;
           }))

let test_agg_descending_stream () =
  (* a countdown stream (Desc direction): epochs close as values fall *)
  let cfg =
    {
      (agg_config ()) with
      Rts.Aggregate.direction = Order_prop.Desc;
      keys =
        [|
          (fun t -> match t.(0) with Value.Int ts -> Some (vint (ts / 10)) | _ -> None);
          (fun t -> Some t.(1));
        |];
      punct_in = None;
    }
  in
  let agg = Rts.Aggregate.make cfg in
  let op = Rts.Aggregate.op agg in
  let out1 = run_op op [Item.Tuple [| vint 35; vint 0; vint 1 |]] in
  check Alcotest.int "no flush on first" 0 (List.length out1);
  let out2 = run_op op [Item.Tuple [| vint 25; vint 0; vint 1 |]] in
  check Alcotest.int "falling epoch closes group" 1 (List.length (tuples out2));
  let out3 = run_op op [Item.Eof] in
  check Alcotest.int "eof flushes the rest" 1 (List.length (tuples out3))

let test_merge_descending () =
  let merge =
    Rts.Merge_op.make { Rts.Merge_op.n_inputs = 2; ordered_idx = 0; direction = Order_prop.Desc }
  in
  let op = Rts.Merge_op.op merge in
  let out = ref [] in
  let emit i = out := i :: !out in
  op.Rts.Operator.on_item ~input:0 (Item.Tuple [| vint 9 |]) ~emit;
  op.Rts.Operator.on_item ~input:1 (Item.Tuple [| vint 8 |]) ~emit;
  op.Rts.Operator.on_item ~input:0 (Item.Tuple [| vint 5 |]) ~emit;
  op.Rts.Operator.on_item ~input:1 (Item.Tuple [| vint 3 |]) ~emit;
  op.Rts.Operator.on_item ~input:0 Item.Eof ~emit;
  op.Rts.Operator.on_item ~input:1 Item.Eof ~emit;
  let ts =
    List.filter_map
      (function Item.Tuple t -> (match t.(0) with Value.Int v -> Some v | _ -> None) | _ -> None)
      (List.rev !out)
  in
  check Alcotest.(list int) "descending merge order" [9; 8; 5; 3] ts

(* ------------------------------ MD-join --------------------------------- *)

(* base rows: (label_id, lo_port, hi_port); overlapping on purpose *)
let md_base =
  [|
    [| vint 0; vint 0; vint 1023 |];     (* well-known *)
    [| vint 1; vint 1024; vint 65535 |]; (* ephemeral *)
    [| vint 2; vint 80; vint 80 |];      (* web: overlaps well-known *)
  |]

let md_config ?(epoch_field = 0) () =
  {
    Rts.Md_join_op.base = md_base;
    theta =
      (fun b s ->
        match (b.(1), b.(2), s.(1)) with
        | Value.Int lo, Value.Int hi, Value.Int port -> port >= lo && port <= hi
        | _ -> false);
    aggs =
      [|
        { Agg_fn.kind = Agg_fn.Count; arg = None };
        { Agg_fn.kind = Agg_fn.Sum; arg = Some (fun s -> Some s.(2)) };
      |];
    epoch_field;
    direction = Order_prop.Asc;
    band = 0.0;
    assemble = (fun ~base ~epoch ~aggs -> [| epoch; base.(0); aggs.(0); aggs.(1) |]);
  }

let test_md_join_overlapping_groups () =
  (* tuples: (epoch, port, len) *)
  let md = Rts.Md_join_op.make (md_config ()) in
  let rows =
    [
      [| vint 1; vint 80; vint 10 |];
      [| vint 1; vint 22; vint 20 |];
      [| vint 1; vint 5000; vint 30 |];
      [| vint 2; vint 80; vint 40 |];
    ]
  in
  let out = run_op (Rts.Md_join_op.op md) (List.map (fun r -> Item.Tuple r) rows @ [Item.Eof]) in
  let strings =
    List.map
      (fun t -> String.concat "," (List.map Value.to_string (Array.to_list t)))
      (tuples out)
  in
  (* epoch 1: the port-80 packet counts in BOTH well-known and web; the
     quiet group still reports; epoch 2 flushed at EOF *)
  check Alcotest.(list string) "overlapping + empty groups"
    [
      "1,0,2,30"  (* well-known: 80 + 22 *);
      "1,1,1,30"  (* ephemeral: 5000 *);
      "1,2,1,10"  (* web: just the port-80 one *);
      "2,0,1,40";
      "2,1,0,null";
      "2,2,1,40";
    ]
    strings

let test_md_join_empty_base_rejected () =
  Alcotest.check_raises "empty base" (Invalid_argument "Md_join_op.make: empty base relation")
    (fun () -> ignore (Rts.Md_join_op.make { (md_config ()) with Rts.Md_join_op.base = [||] }))

let test_md_join_flush_and_punct () =
  let md = Rts.Md_join_op.make (md_config ()) in
  let op = Rts.Md_join_op.op md in
  ignore (run_op op [Item.Tuple [| vint 5; vint 80; vint 1 |]]);
  (* a punctuation past the open epoch closes it *)
  let out = run_op op [Item.Punct [(0, vint 9)]] in
  check Alcotest.int "punct closes the epoch (3 base rows)" 3 (List.length (tuples out));
  check Alcotest.int "one epoch emitted" 1 (Rts.Md_join_op.epochs_emitted md)

let test_md_join_in_manager () =
  (* the paper's bypass path: a user-written query node in the network *)
  let mgr = Rts.Manager.create () in
  let schema3 =
    Schema.make
      [
        { Schema.name = "tb"; ty = Ty.Int; order = Order_prop.Monotone Order_prop.Asc };
        { Schema.name = "port"; ty = Ty.Int; order = Order_prop.Unordered };
        { Schema.name = "len"; ty = Ty.Int; order = Order_prop.Unordered };
      ]
  in
  let rows =
    [[| vint 1; vint 80; vint 5 |]; [| vint 1; vint 9000; vint 7 |]; [| vint 2; vint 443; vint 9 |]]
  in
  let remaining = ref rows in
  ignore
    (Result.get_ok
       (Rts.Manager.add_source mgr ~name:"s" ~schema:schema3
          {
            Rts.Node.pull =
              (fun () ->
                match !remaining with
                | [] -> None
                | r :: rest ->
                    remaining := rest;
                    Some (Item.Tuple r));
            clock = (fun () -> []);
          }));
  let md = Rts.Md_join_op.make (md_config ()) in
  let out_schema =
    Schema.make
      [
        { Schema.name = "tb"; ty = Ty.Int; order = Order_prop.Monotone Order_prop.Asc };
        { Schema.name = "bucket"; ty = Ty.Int; order = Order_prop.Unordered };
        { Schema.name = "cnt"; ty = Ty.Int; order = Order_prop.Unordered };
        { Schema.name = "bytes"; ty = Ty.Int; order = Order_prop.Unordered };
      ]
  in
  ignore
    (Result.get_ok
       (Rts.Manager.add_query_node mgr ~name:"port_bands" ~kind:Rts.Node.Hfta
          ~schema:out_schema ~inputs:["s"] ~op:(Rts.Md_join_op.op md)));
  let n = ref 0 in
  Result.get_ok (Rts.Manager.on_item mgr "port_bands" (function Item.Tuple _ -> incr n | _ -> ()));
  (match Rts.Scheduler.run mgr with Ok _ -> () | Error e -> Alcotest.fail e);
  check Alcotest.int "two epochs x three buckets" 6 !n

(* --------------------------- Manager/Scheduler -------------------------- *)

let src_schema = mk_schema ()

let counting_source n =
  let i = ref 0 in
  {
    Rts.Node.pull =
      (fun () ->
        if !i >= n then None
        else begin
          let v = !i in
          incr i;
          Some (Item.Tuple [| vint v; vint (v mod 3) |])
        end);
    clock = (fun () -> [(0, vint !i)]);
  }

let test_manager_registry () =
  let mgr = Rts.Manager.create () in
  (match Rts.Manager.add_source mgr ~name:"s" ~schema:src_schema (counting_source 5) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Rts.Manager.add_source mgr ~name:"S" ~schema:src_schema (counting_source 5) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate name (case-insensitive) accepted");
  check Alcotest.bool "find case-insensitive" true (Rts.Manager.find mgr "S" <> None);
  match Rts.Manager.subscribe mgr "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown stream subscribed"

let passthrough_op () = Rts.Select_op.make ~project:(fun t -> Some t) ~punct_map:[(0, 0)] ()

let test_manager_lfta_batch_restriction () =
  let mgr = Rts.Manager.create () in
  ignore (Result.get_ok (Rts.Manager.add_source mgr ~name:"s" ~schema:src_schema (counting_source 1)));
  Rts.Manager.start mgr;
  (match
     Rts.Manager.add_query_node mgr ~name:"late_lfta" ~kind:Rts.Node.Lfta ~schema:src_schema
       ~inputs:["s"] ~op:(passthrough_op ())
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "LFTA after start accepted");
  (* HFTAs can be added at any point *)
  (match
     Rts.Manager.add_query_node mgr ~name:"late_hfta" ~kind:Rts.Node.Hfta ~schema:src_schema
       ~inputs:["s"] ~op:(passthrough_op ())
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("HFTA after start rejected: " ^ e));
  (* a restart re-opens the LFTA batch *)
  Rts.Manager.restart mgr;
  match
    Rts.Manager.add_query_node mgr ~name:"relinked" ~kind:Rts.Node.Lfta ~schema:src_schema
      ~inputs:["s"] ~op:(passthrough_op ())
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("LFTA after restart rejected: " ^ e)

let test_manager_lfta_input_restriction () =
  let mgr = Rts.Manager.create () in
  ignore (Result.get_ok (Rts.Manager.add_source mgr ~name:"s" ~schema:src_schema (counting_source 1)));
  ignore
    (Result.get_ok
       (Rts.Manager.add_query_node mgr ~name:"h" ~kind:Rts.Node.Hfta ~schema:src_schema
          ~inputs:["s"] ~op:(passthrough_op ())));
  match
    Rts.Manager.add_query_node mgr ~name:"bad" ~kind:Rts.Node.Lfta ~schema:src_schema
      ~inputs:["h"] ~op:(passthrough_op ())
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "LFTA reading a stream accepted"

(* -------------------- channel promotion --------------------------------- *)

let drain_channel chan =
  let rec go acc =
    match Rts.Channel.pop chan with Some item -> go (item :: acc) | None -> List.rev acc
  in
  go []

let test_promote_cross_carries_buffer () =
  (* whatever sits buffered at promotion time — tuples, punctuation, Eof —
     must come out of the cross-domain channel intact and in order *)
  let chan = Rts.Channel.create ~capacity:16 ~name:"edge" () in
  let items =
    [
      Item.Tuple [| vint 0; vint 0 |];
      Item.Tuple [| vint 1; vint 0 |];
      Item.Punct [(0, vint 1)];
      Item.Tuple [| vint 2; vint 0 |];
      Item.Eof;
    ]
  in
  List.iter (fun item -> assert (Rts.Channel.push chan item)) items;
  let xc = Rts.Channel.promote_cross chan in
  check Alcotest.bool "channel reports cross" true (Rts.Channel.is_cross chan);
  check Alcotest.int "nothing lost in the move" (List.length items) (Rts.Channel.length chan);
  check Alcotest.int "xchannel holds the buffer" (List.length items) (Rts.Xchannel.length xc);
  let got = drain_channel chan in
  check Alcotest.bool "buffered items carry over in order" true (got = items);
  check Alcotest.int "no drops from promotion" 0 (Rts.Channel.drops chan)

let test_promote_cross_partial_batch () =
  (* promotion mid-stream, after a batch was partially consumed: the
     consumer-side remainder must carry over ahead of the ring *)
  let chan = Rts.Channel.create ~capacity:16 ~name:"edge" () in
  let batch =
    Rts.Batch.make
      [| [| vint 0; vint 0 |]; [| vint 1; vint 0 |]; [| vint 2; vint 0 |] |]
      (Some (Item.Punct [(0, vint 2)]))
  in
  assert (Rts.Channel.push_batch chan batch);
  assert (Rts.Channel.push chan (Item.Tuple [| vint 3; vint 0 |]));
  (match Rts.Channel.pop chan with
  | Some (Item.Tuple [| Value.Int 0; _ |]) -> ()
  | _ -> Alcotest.fail "first tuple expected before promotion");
  ignore (Rts.Channel.promote_cross chan);
  let got = drain_channel chan in
  let expected =
    [
      Item.Tuple [| vint 1; vint 0 |];
      Item.Tuple [| vint 2; vint 0 |];
      Item.Punct [(0, vint 2)];
      Item.Tuple [| vint 3; vint 0 |];
    ]
  in
  check Alcotest.bool "remainder then ring, in order" true (got = expected)

let test_promote_cross_idempotent () =
  (* a second promotion mid-stream must return the same xchannel and
     disturb nothing *)
  let chan = Rts.Channel.create ~capacity:16 ~name:"edge" () in
  assert (Rts.Channel.push chan (Item.Tuple [| vint 0; vint 0 |]));
  let xc1 = Rts.Channel.promote_cross chan in
  assert (Rts.Channel.push chan (Item.Tuple [| vint 1; vint 0 |]));
  (match Rts.Channel.pop chan with
  | Some (Item.Tuple [| Value.Int 0; _ |]) -> ()
  | _ -> Alcotest.fail "first tuple expected between promotions");
  let xc2 = Rts.Channel.promote_cross chan in
  check Alcotest.bool "same xchannel both times" true (xc1 == xc2);
  (match Rts.Channel.cross chan with
  | Some xc -> check Alcotest.bool "cross accessor agrees" true (xc == xc1)
  | None -> Alcotest.fail "promoted channel lost its xchannel");
  let got = drain_channel chan in
  check Alcotest.bool "in-flight item undisturbed" true
    (got = [Item.Tuple [| vint 1; vint 0 |]])

let test_promote_cross_capacity_clamp () =
  (* the cross capacity is never smaller than what is already buffered:
     promotion runs single-domain, so a blocking push would never drain *)
  let chan = Rts.Channel.create ~capacity:8 ~name:"edge" () in
  for i = 0 to 4 do
    assert (Rts.Channel.push chan (Item.Tuple [| vint i; vint 0 |]))
  done;
  let xc = Rts.Channel.promote_cross ~capacity:2 chan in
  check Alcotest.bool "capacity clamped to buffer" true (Rts.Xchannel.capacity xc >= 5);
  check Alcotest.int "every buffered item admitted" 5 (Rts.Xchannel.length xc)

let test_scheduler_end_to_end () =
  let mgr = Rts.Manager.create () in
  ignore (Result.get_ok (Rts.Manager.add_source mgr ~name:"s" ~schema:src_schema (counting_source 100)));
  ignore
    (Result.get_ok
       (Rts.Manager.add_query_node mgr ~name:"q" ~kind:Rts.Node.Lfta ~schema:src_schema
          ~inputs:["s"] ~op:(passthrough_op ())));
  let chan = Result.get_ok (Rts.Manager.subscribe mgr "q") in
  (match Rts.Scheduler.run mgr with Ok _ -> () | Error e -> Alcotest.fail e);
  let rec drain acc =
    match Rts.Channel.pop chan with
    | Some (Item.Tuple _) -> drain (acc + 1)
    | Some _ -> drain acc
    | None -> acc
  in
  check Alcotest.int "all tuples arrive at subscriber" 100 (drain 0)

let test_scheduler_max_rounds_guard () =
  (* a source that never ends must hit the round guard with a clean error *)
  let mgr = Rts.Manager.create () in
  ignore
    (Result.get_ok
       (Rts.Manager.add_source mgr ~name:"forever" ~schema:src_schema
          {
            Rts.Node.pull = (fun () -> Some (Item.Tuple [| vint 0; vint 0 |]));
            clock = (fun () -> []);
          }));
  match Rts.Scheduler.run ~max_rounds:10 mgr with
  | Error msg -> check Alcotest.bool "round guard fires" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "unbounded source should exhaust max_rounds"

let test_scheduler_rerun_is_noop () =
  let mgr = Rts.Manager.create () in
  ignore (Result.get_ok (Rts.Manager.add_source mgr ~name:"s" ~schema:src_schema (counting_source 5)));
  ignore (Result.get_ok (Rts.Scheduler.run mgr));
  (* everything exhausted: a second run completes immediately *)
  match Rts.Scheduler.run mgr with
  | Ok stats -> check Alcotest.bool "no extra rounds needed" true (stats.Rts.Scheduler.rounds <= 1)
  | Error e -> Alcotest.fail e

let rounds_metric mgr =
  match
    Gigascope_obs.Metrics.find
      (Gigascope_obs.Metrics.snapshot (Rts.Manager.metrics mgr))
      "rts.scheduler.rounds"
  with
  | Some (Gigascope_obs.Metrics.Counter n) -> n
  | _ -> Alcotest.fail "rts.scheduler.rounds counter missing"

let test_scheduler_rounds_match_progress () =
  (* regression: [rounds] (stat and metric) counts only iterations that
     moved data. An empty source's single Eof-emitting iteration moves
     nothing — it used to be reported as a round *)
  let mgr = Rts.Manager.create () in
  ignore (Result.get_ok (Rts.Manager.add_source mgr ~name:"s" ~schema:src_schema (counting_source 0)));
  let stats = Result.get_ok (Rts.Scheduler.run ~quantum:1 mgr) in
  check Alcotest.int "empty source: zero rounds" 0 stats.Rts.Scheduler.rounds;
  check Alcotest.int "empty source: metric agrees" 0 (rounds_metric mgr);
  (* N tuples at quantum 1: exactly N productive iterations. The trailing
     iteration that only discovers Eof is not observable progress and must
     not be counted (it used to make this N + 1) *)
  let mgr = Rts.Manager.create () in
  ignore (Result.get_ok (Rts.Manager.add_source mgr ~name:"s" ~schema:src_schema (counting_source 7)));
  let seen = ref 0 in
  Result.get_ok (Rts.Manager.on_item mgr "s" (function Item.Tuple _ -> incr seen | _ -> ()));
  let stats = Result.get_ok (Rts.Scheduler.run ~quantum:1 mgr) in
  check Alcotest.int "all tuples observed" 7 !seen;
  check Alcotest.int "one round per tuple, Eof round excluded" 7 stats.Rts.Scheduler.rounds;
  check Alcotest.int "metric matches the stat" stats.Rts.Scheduler.rounds (rounds_metric mgr)

let test_scheduler_multiple_subscribers () =
  let mgr = Rts.Manager.create () in
  ignore (Result.get_ok (Rts.Manager.add_source mgr ~name:"s" ~schema:src_schema (counting_source 10)));
  let a = ref 0 and b = ref 0 in
  Result.get_ok (Rts.Manager.on_item mgr "s" (function Item.Tuple _ -> incr a | _ -> ()));
  Result.get_ok (Rts.Manager.on_item mgr "s" (function Item.Tuple _ -> incr b | _ -> ()));
  ignore (Result.get_ok (Rts.Scheduler.run mgr));
  check Alcotest.int "first subscriber" 10 !a;
  check Alcotest.int "second subscriber" 10 !b

let () =
  Alcotest.run "rts"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          value_equal_hash_consistent;
          Alcotest.test_case "truthy" `Quick test_value_truthy;
          Alcotest.test_case "arrays" `Quick test_value_arrays;
        ] );
      ( "order-prop",
        [
          Alcotest.test_case "weaken" `Quick test_order_weaken;
          Alcotest.test_case "usability" `Quick test_order_usability;
          Alcotest.test_case "arithmetic imputation" `Quick test_order_arithmetic_imputation;
        ] );
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "duplicates" `Quick test_schema_duplicates;
          Alcotest.test_case "concat" `Quick test_schema_concat;
          Alcotest.test_case "ordered fields" `Quick test_schema_ordered_fields;
        ] );
      ( "select",
        [
          Alcotest.test_case "filter + project + punct" `Quick test_select_filter_project;
          Alcotest.test_case "partial projection" `Quick test_select_partial_projection;
        ] );
      ( "sample",
        [
          Alcotest.test_case "extremes" `Quick test_sample_extremes;
          Alcotest.test_case "deterministic" `Quick test_sample_deterministic;
        ] );
      ( "aggregate",
        [
          hfta_agg_matches_oracle;
          Alcotest.test_case "epoch flush" `Quick test_agg_epoch_flushes_incrementally;
          Alcotest.test_case "epoch output order" `Quick test_agg_output_epoch_order;
          Alcotest.test_case "punct flush + translate" `Quick test_agg_punct_flush_and_translate;
          Alcotest.test_case "having" `Quick test_agg_having;
          Alcotest.test_case "banded keeps groups open" `Quick test_agg_banded_keeps_groups_open;
          Alcotest.test_case "partial key discards" `Quick test_agg_partial_key_discards;
          Alcotest.test_case "no epoch -> eof only" `Quick test_agg_no_epoch_flushes_at_eof_only;
          Alcotest.test_case "flush item" `Quick test_agg_flush_item;
          Alcotest.test_case "predicate filters" `Quick test_agg_pred_filters;
          Alcotest.test_case "descending stream" `Quick test_agg_descending_stream;
        ] );
      ( "lfta-aggregate",
        [
          two_level_equivalence;
          Alcotest.test_case "eviction counting" `Quick test_lfta_eviction_counting;
        ] );
      ( "merge",
        [
          merge_outputs_ordered;
          Alcotest.test_case "blocked input reported" `Quick test_merge_blocked_input_reported;
          Alcotest.test_case "punct advances" `Quick test_merge_punct_advances;
          Alcotest.test_case "eof drains" `Quick test_merge_eof_drains;
          Alcotest.test_case "descending merge" `Quick test_merge_descending;
        ] );
      ( "join",
        [
          join_matches_nested_loop;
          Alcotest.test_case "output modes" `Quick test_join_output_modes;
          join_ordered_mode_sorted;
          Alcotest.test_case "purges state" `Quick test_join_purges_state;
          Alcotest.test_case "bad window" `Quick test_join_bad_window;
        ] );
      ( "md-join",
        [
          Alcotest.test_case "overlapping groups" `Quick test_md_join_overlapping_groups;
          Alcotest.test_case "empty base rejected" `Quick test_md_join_empty_base_rejected;
          Alcotest.test_case "flush + punct" `Quick test_md_join_flush_and_punct;
          Alcotest.test_case "as a query node" `Quick test_md_join_in_manager;
        ] );
      ( "channel",
        [
          Alcotest.test_case "promotion carries buffer" `Quick test_promote_cross_carries_buffer;
          Alcotest.test_case "promotion carries partial batch" `Quick
            test_promote_cross_partial_batch;
          Alcotest.test_case "promotion idempotent" `Quick test_promote_cross_idempotent;
          Alcotest.test_case "promotion capacity clamp" `Quick test_promote_cross_capacity_clamp;
        ] );
      ( "manager-scheduler",
        [
          Alcotest.test_case "registry" `Quick test_manager_registry;
          Alcotest.test_case "LFTA batch restriction" `Quick test_manager_lfta_batch_restriction;
          Alcotest.test_case "LFTA input restriction" `Quick test_manager_lfta_input_restriction;
          Alcotest.test_case "end to end" `Quick test_scheduler_end_to_end;
          Alcotest.test_case "max rounds guard" `Quick test_scheduler_max_rounds_guard;
          Alcotest.test_case "rerun is noop" `Quick test_scheduler_rerun_is_noop;
          Alcotest.test_case "multiple subscribers" `Quick test_scheduler_multiple_subscribers;
          Alcotest.test_case "rounds match progress" `Quick test_scheduler_rounds_match_progress;
        ] );
    ]
