(* Tests for the GSQL compiler: lexer, parser, analyzer (types, windows,
   epochs), ordering inference, the LFTA/HFTA splitter, predicate lowering,
   expression codegen, and the pseudo-C emitter. *)

module Gsql = Gigascope_gsql
module Rts = Gigascope_rts
module Value = Rts.Value
module Ty = Rts.Ty
module Schema = Rts.Schema
module Order_prop = Rts.Order_prop
module Token = Gsql.Token
module Lexer = Gsql.Lexer
module Parser = Gsql.Parser
module Ast = Gsql.Ast
module Expr_ir = Gsql.Expr_ir
module Plan = Gsql.Plan
module Split = Gsql.Split
module Codegen = Gsql.Codegen

let check = Alcotest.check

let fresh_catalog () =
  let funcs = Rts.Func.create_registry () in
  Rts.Builtin_funcs.register_all funcs;
  let catalog = Gsql.Catalog.create funcs in
  Gigascope.Default_protocols.register catalog;
  catalog

let compile ?name text =
  let catalog = fresh_catalog () in
  Gsql.Compile.compile_query catalog ?name text

let compile_ok ?name text =
  match compile ?name text with
  | Ok c -> c
  | Error e -> Alcotest.failf "unexpected compile error: %s" e

let compile_err ?name text =
  match compile ?name text with
  | Error e -> e
  | Ok _ -> Alcotest.failf "expected a compile error for: %s" text

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------- lexer ---------------------------------- *)

let toks s = List.map (fun t -> t.Token.token) (Lexer.tokenize s)

let test_lexer_tokens () =
  (match toks "SELECT x FROM y" with
  | [Token.Kw_select; Token.Ident "x"; Token.Kw_from; Token.Ident "y"; Token.Eof] -> ()
  | _ -> Alcotest.fail "basic tokens");
  (match toks "a <> b <= c >= d << e >> f" with
  | [ Token.Ident _; Token.Neq; Token.Ident _; Token.Le; Token.Ident _; Token.Ge; Token.Ident _;
      Token.Shl; Token.Ident _; Token.Shr; Token.Ident _; Token.Eof ] -> ()
  | _ -> Alcotest.fail "operators");
  match toks "$param 0x1F 2.5 'it''s'" with
  | [Token.Param "param"; Token.Int_lit 31; Token.Float_lit f; Token.Str_lit s; Token.Eof] ->
      check (Alcotest.float 1e-9) "float" 2.5 f;
      check Alcotest.string "escaped quote" "it's" s
  | _ -> Alcotest.fail "literals"

let test_lexer_ip_literal () =
  match toks "10.1.2.3" with
  | [Token.Ip_lit ip; Token.Eof] ->
      check Alcotest.int "ip value" (Gigascope_packet.Ipaddr.of_string "10.1.2.3") ip
  | _ -> Alcotest.fail "dotted quad should lex as IP"

let test_lexer_comments () =
  match toks "a -- line comment\n b /* block\ncomment */ c" with
  | [Token.Ident "a"; Token.Ident "b"; Token.Ident "c"; Token.Eof] -> ()
  | _ -> Alcotest.fail "comments skipped"

let test_lexer_error_position () =
  match Lexer.tokenize "ab\n  #" with
  | exception Lexer.Error (_, line, col) ->
      check Alcotest.int "line" 2 line;
      check Alcotest.int "col" 3 col
  | _ -> Alcotest.fail "expected lexer error"

(* ------------------------------- parser --------------------------------- *)

let test_parse_paper_query () =
  let q =
    Parser.parse_query
      {|
      DEFINE { query_name tcpdest0; }
      SELECT destIP, destPort, time
      FROM eth0.tcp
      WHERE IPVersion = 4 and Protocol = 6
    |}
  in
  check Alcotest.(option string) "query name" (Some "tcpdest0") (Ast.query_name q);
  match q.Ast.body with
  | Ast.Select_q s ->
      check Alcotest.int "three items" 3 (List.length s.Ast.select);
      check Alcotest.int "one source" 1 (List.length s.Ast.from);
      let src = List.hd s.Ast.from in
      check Alcotest.(option string) "interface" (Some "eth0") src.Ast.interface;
      check Alcotest.string "protocol" "tcp" src.Ast.stream;
      check Alcotest.bool "where present" true (s.Ast.where <> None)
  | Ast.Merge_q _ -> Alcotest.fail "not a merge"

let test_parse_merge () =
  let q =
    Parser.parse_query
      {| DEFINE { query_name tcpdest; }
         MERGE a.time : b.time
         FROM tcpdest0 a, tcpdest1 b |}
  in
  match q.Ast.body with
  | Ast.Merge_q m ->
      check Alcotest.int "two columns" 2 (List.length m.Ast.merge_cols);
      check Alcotest.(list (pair string string)) "columns" [("a", "time"); ("b", "time")]
        m.Ast.merge_cols
  | Ast.Select_q _ -> Alcotest.fail "not a select"

let test_parse_group_by_having_sample () =
  let q =
    Parser.parse_query
      {| SELECT tb, count(*) as cnt FROM eth0.tcp
         GROUP BY time/60 as tb HAVING count(*) > 5 SAMPLE 0.25 |}
  in
  match q.Ast.body with
  | Ast.Select_q s ->
      check Alcotest.int "group by" 1 (List.length s.Ast.group_by);
      check Alcotest.bool "having" true (s.Ast.having <> None);
      check Alcotest.(option (float 1e-9)) "sample" (Some 0.25) s.Ast.sample
  | _ -> Alcotest.fail "shape"

let test_parse_precedence () =
  (* & binds tighter than <>, which binds tighter than and *)
  match Parser.parse_expr "flags & 2 <> 0 and x = 1" with
  | Ast.Binop (Ast.And, Ast.Binop (Ast.Ne, Ast.Binop (Ast.Band, _, _), _), Ast.Binop (Ast.Eq, _, _)) -> ()
  | e -> Alcotest.failf "unexpected parse: %s" (Ast.expr_to_string e)

let test_parse_arith_precedence () =
  match Parser.parse_expr "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Int_lit 1, Ast.Binop (Ast.Mul, Ast.Int_lit 2, Ast.Int_lit 3)) -> ()
  | e -> Alcotest.failf "mul should bind tighter: %s" (Ast.expr_to_string e)

let test_parse_protocol_ddl () =
  let prog =
    Parser.parse_program
      {| PROTOCOL myproto {
           uint ts (increasing);
           uint start (banded_increasing 30);
           ip   src;
           string payload;
         }
         SELECT ts FROM myproto |}
  in
  check Alcotest.int "two decls" 2 (List.length prog);
  match List.hd prog with
  | Ast.Protocol_decl p ->
      check Alcotest.string "name" "myproto" p.Ast.protocol_name;
      check Alcotest.int "fields" 4 (List.length p.Ast.fields)
  | _ -> Alcotest.fail "expected protocol decl"

let test_parse_errors () =
  let bad = ["SELECT"; "SELECT a FROM"; "MERGE a FROM x"; "SELECT a FROM b WHERE"; "DEFINE { x }"] in
  List.iter
    (fun text ->
      match Parser.parse_query text with
      | exception Parser.Error _ -> ()
      | _ -> Alcotest.failf "should not parse: %s" text)
    bad

let test_parse_protocol_as_field () =
  (* "protocol" is a keyword only at declaration position *)
  match Parser.parse_expr "protocol = 6" with
  | Ast.Binop (Ast.Eq, Ast.Ident "protocol", Ast.Int_lit 6) -> ()
  | e -> Alcotest.failf "protocol should parse as a field: %s" (Ast.expr_to_string e)

(* ------------------------------ analyzer -------------------------------- *)

let test_analyze_simple_select () =
  let c = compile_ok ~name:"q" "SELECT destip, destport, time FROM eth0.tcp WHERE protocol = 6" in
  let schema = c.Gsql.Compile.plan.Plan.out_schema in
  check Alcotest.int "arity" 3 (Schema.arity schema);
  check Alcotest.string "time keeps ordering" "increasing"
    (Order_prop.to_string (Schema.field_at schema 2).Schema.order);
  check Alcotest.string "destip unordered" "unordered"
    (Order_prop.to_string (Schema.field_at schema 0).Schema.order)

let test_analyze_unknown_field () =
  let e = compile_err "SELECT nosuchfield FROM eth0.tcp" in
  check Alcotest.bool "reports the field" true (contains e "nosuchfield")

let test_analyze_type_errors () =
  ignore (compile_err "SELECT time FROM eth0.tcp WHERE payload + 1 > 2");
  ignore (compile_err "SELECT time FROM eth0.tcp WHERE time = 'str'");
  ignore (compile_err "SELECT time FROM eth0.tcp WHERE time");
  ignore (compile_err "SELECT time FROM eth0.tcp WHERE not time > 1 and payload")

let test_analyze_unknown_function () =
  ignore (compile_err "SELECT nosuchfn(time) FROM eth0.tcp")

let test_analyze_group_by_epoch () =
  let c =
    compile_ok ~name:"g" "SELECT tb, count(*) as c FROM eth0.tcp GROUP BY time/60 as tb"
  in
  (match c.Gsql.Compile.plan.Plan.body with
  | Plan.Agg a ->
      check Alcotest.(option int) "epoch is key 0" (Some 0) a.Plan.epoch;
      check Alcotest.(option int) "epoch input field" (Some 0) a.Plan.epoch_in_field
  | _ -> Alcotest.fail "expected aggregation");
  let schema = c.Gsql.Compile.plan.Plan.out_schema in
  check Alcotest.string "bucketed time is monotone out" "increasing"
    (Order_prop.to_string (Schema.field_at schema 0).Schema.order)

let test_analyze_select_item_must_be_key_or_agg () =
  ignore (compile_err "SELECT srcip, count(*) FROM eth0.tcp GROUP BY time/60 as tb")

let test_analyze_group_key_by_expression () =
  (* selecting the group expression itself, not via alias *)
  ignore (compile_ok "SELECT time/60, count(*) FROM eth0.tcp GROUP BY time/60")

let test_analyze_agg_dedup () =
  let c =
    compile_ok ~name:"d"
      "SELECT tb, count(*) as a, count(*) as b FROM eth0.tcp GROUP BY time/60 as tb"
  in
  match c.Gsql.Compile.plan.Plan.body with
  | Plan.Agg a -> check Alcotest.int "identical aggs deduplicated" 1 (List.length a.Plan.aggs)
  | _ -> Alcotest.fail "expected aggregation"

let test_analyze_join_window () =
  let catalog = fresh_catalog () in
  let program =
    {|
    DEFINE { query_name l; } SELECT time, srcip FROM eth0.tcp
    DEFINE { query_name r; } SELECT time, destip FROM eth1.tcp
    DEFINE { query_name j; }
    SELECT a.time, a.srcip, b.destip
    FROM l a, r b
    WHERE a.time >= b.time - 2 and a.time <= b.time + 1 and a.srcip = b.destip
  |}
  in
  match Gsql.Compile.compile_program catalog program with
  | Error e -> Alcotest.fail e
  | Ok compiled -> (
      let j = List.nth compiled 2 in
      match j.Gsql.Compile.plan.Plan.body with
      | Plan.Join jb ->
          check (Alcotest.float 1e-9) "window lo" (-2.0) jb.Plan.win_lo;
          check (Alcotest.float 1e-9) "window hi" 1.0 jb.Plan.win_hi;
          check Alcotest.int "left ordered field" 0 jb.Plan.left_ord
      | _ -> Alcotest.fail "expected join")

let test_analyze_join_equality_window () =
  let catalog = fresh_catalog () in
  let program =
    {|
    DEFINE { query_name l; } SELECT time, srcport FROM eth0.tcp
    DEFINE { query_name r; } SELECT time, destport FROM eth1.tcp
    DEFINE { query_name j; }
    SELECT a.time FROM l a, r b WHERE a.time = b.time
  |}
  in
  match Gsql.Compile.compile_program catalog program with
  | Error e -> Alcotest.fail e
  | Ok compiled -> (
      match (List.nth compiled 2).Gsql.Compile.plan.Plan.body with
      | Plan.Join jb ->
          check (Alcotest.float 1e-9) "equality lo" 0.0 jb.Plan.win_lo;
          check (Alcotest.float 1e-9) "equality hi" 0.0 jb.Plan.win_hi
      | _ -> Alcotest.fail "expected join")

let test_analyze_join_output_mode () =
  let check_prop ~props expected =
    let catalog = fresh_catalog () in
    let program =
      Printf.sprintf
        {|
        DEFINE { query_name l; } SELECT time, srcip FROM eth0.tcp
        DEFINE { query_name r; } SELECT time, destip FROM eth1.tcp
        DEFINE { query_name j; %s }
        SELECT a.time, b.destip FROM l a, r b
        WHERE a.time >= b.time - 2 and a.time <= b.time + 2
      |}
        props
    in
    match Gsql.Compile.compile_program catalog program with
    | Error e -> Alcotest.fail e
    | Ok compiled ->
        let j = List.nth compiled 2 in
        check Alcotest.string ("output ordering with props " ^ props) expected
          (Order_prop.to_string
             (Schema.field_at j.Gsql.Compile.plan.Plan.out_schema 0).Schema.order)
  in
  (* default algorithm: probe order, banded by the window span *)
  check_prop ~props:"" "banded increasing(4)";
  (* the buffered algorithm: monotone, at the cost of buffer space *)
  check_prop ~props:"join_output ordered;" "increasing"

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let join_window_extraction_property =
  qtest "window extraction recovers random bounds" QCheck.(pair (int_range 0 50) (int_range 0 50))
    (fun (x, y) ->
      let catalog = fresh_catalog () in
      let program =
        Printf.sprintf
          {|
          DEFINE { query_name l; } SELECT time, srcport FROM eth0.tcp
          DEFINE { query_name r; } SELECT time, destport FROM eth1.tcp
          DEFINE { query_name j; }
          SELECT a.time FROM l a, r b
          WHERE a.time >= b.time - %d and a.time <= b.time + %d
        |}
          x y
      in
      match Gsql.Compile.compile_program catalog program with
      | Error e -> QCheck.Test.fail_reportf "compile failed: %s" e
      | Ok compiled -> (
          match (List.nth compiled 2).Gsql.Compile.plan.Plan.body with
          | Plan.Join jb ->
              jb.Plan.win_lo = -.float_of_int x && jb.Plan.win_hi = float_of_int y
          | _ -> false))

let test_analyze_join_without_window_rejected () =
  (* a windowless join is no longer a hard analyzer error: it compiles,
     and the memory certifier (not the analyzer) rules it unbounded —
     the admission gate then decides whether it may run *)
  let catalog = fresh_catalog () in
  let program =
    {|
    DEFINE { query_name l; } SELECT time, srcport FROM eth0.tcp
    DEFINE { query_name r; } SELECT time, destport FROM eth1.tcp
    DEFINE { query_name j; }
    SELECT a.time FROM l a, r b WHERE a.srcport = b.destport
  |}
  in
  match Gsql.Compile.compile_program catalog program with
  | Error e -> Alcotest.fail ("windowless join must still compile: " ^ e)
  | Ok compiled -> (
      match List.rev compiled with
      | c :: _ ->
          let cert = Gsql.Certify.certify c.Gsql.Compile.split in
          if Gsql.Certify.finite cert then
            Alcotest.fail "windowless join certified finite"
      | [] -> Alcotest.fail "no queries compiled")

let test_analyze_three_way_join_rejected () =
  ignore (compile_err "SELECT a.time FROM eth0.tcp a, eth1.tcp b, eth2.tcp c WHERE a.time = b.time")

let test_analyze_merge () =
  let catalog = fresh_catalog () in
  let program =
    {|
    DEFINE { query_name t0; } SELECT time, len FROM eth0.tcp
    DEFINE { query_name t1; } SELECT time, len FROM eth1.tcp
    DEFINE { query_name m; } MERGE a.time : b.time FROM t0 a, t1 b
  |}
  in
  match Gsql.Compile.compile_program catalog program with
  | Error e -> Alcotest.fail e
  | Ok compiled -> (
      match (List.nth compiled 2).Gsql.Compile.plan.Plan.body with
      | Plan.Merge m -> check Alcotest.int "merge field" 0 m.Plan.merge_field
      | _ -> Alcotest.fail "expected merge")

let test_analyze_merge_incompatible () =
  let catalog = fresh_catalog () in
  let program =
    {|
    DEFINE { query_name t0; } SELECT time, len FROM eth0.tcp
    DEFINE { query_name t1; } SELECT time, payload FROM eth1.tcp
    DEFINE { query_name m; } MERGE a.time : b.time FROM t0 a, t1 b
  |}
  in
  match Gsql.Compile.compile_program catalog program with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "union-incompatible merge accepted"

let test_analyze_merge_unordered_column_rejected () =
  let catalog = fresh_catalog () in
  let program =
    {|
    DEFINE { query_name t0; } SELECT len, time FROM eth0.tcp
    DEFINE { query_name t1; } SELECT len, time FROM eth1.tcp
    DEFINE { query_name m; } MERGE a.len : b.len FROM t0 a, t1 b
  |}
  in
  match Gsql.Compile.compile_program catalog program with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "merge on unordered column accepted"

let test_analyze_param_typing () =
  let c = compile_ok "SELECT time FROM eth0.tcp WHERE destport = $p" in
  check Alcotest.(list (pair string string)) "param typed from comparison" [("p", "int")]
    (List.map (fun (n, t) -> (n, Ty.to_string t)) c.Gsql.Compile.plan.Plan.params)

let test_analyze_handle_must_be_literal () =
  ignore (compile_err "SELECT time FROM eth0.tcp WHERE str_match_regex(payload, payload) = TRUE")

let test_analyze_nonrepeating_through_hash () =
  (* the paper's Section 2.1 property 2: a hash of a sequence number is
     monotone nonrepeating *)
  let catalog = fresh_catalog () in
  let program =
    {|
    PROTOCOL seqsrc { uint seqno (strictly_increasing); uint v; }
    DEFINE { query_name hashed; }
    SELECT hash32(seqno) as h, v FROM lab.seqsrc
  |}
  in
  match Gsql.Compile.compile_program catalog program with
  | Error e -> Alcotest.fail e
  | Ok [c] ->
      check Alcotest.string "hash of strict attr is nonrepeating" "monotone nonrepeating"
        (Order_prop.to_string (Schema.field_at c.Gsql.Compile.plan.Plan.out_schema 0).Schema.order)
  | Ok _ -> Alcotest.fail "expected one query"

let test_analyze_in_group_imputation () =
  (* the paper's Netflow example: min(start) of an epoch-closed flow
     aggregation is increasing within each flow's group *)
  let c =
    compile_ok ~name:"flows"
      {| SELECT tb, srcip, destip, min(time) as first_seen, count(*) as c
         FROM eth0.tcp
         GROUP BY time/10 as tb, srcip, destip |}
  in
  let schema = c.Gsql.Compile.plan.Plan.out_schema in
  check Alcotest.string "min(time) increasing in flow group"
    "increasing in group (srcip, destip)"
    (Order_prop.to_string (Schema.field_at schema 3).Schema.order);
  check Alcotest.string "count stays unordered" "unordered"
    (Order_prop.to_string (Schema.field_at schema 4).Schema.order)

let test_analyze_ddl_protocol_usable () =
  let catalog = fresh_catalog () in
  let program =
    {|
    PROTOCOL sensor { uint ts (increasing); uint reading; }
    DEFINE { query_name hot; }
    SELECT ts, reading FROM lab.sensor WHERE reading > 100
  |}
  in
  match Gsql.Compile.compile_program catalog program with
  | Ok [c] ->
      check Alcotest.string "ordering from DDL annotation" "increasing"
        (Order_prop.to_string (Schema.field_at c.Gsql.Compile.plan.Plan.out_schema 0).Schema.order)
  | Ok _ -> Alcotest.fail "expected one query"
  | Error e -> Alcotest.fail e

(* ------------------------------ splitter -------------------------------- *)

let kinds c =
  List.map
    (fun (p : Split.phys_node) ->
      match p.Split.pkind with
      | Rts.Node.Lfta -> "lfta"
      | Rts.Node.Hfta -> "hfta"
      | Rts.Node.Source -> "source")
    c.Gsql.Compile.split.Split.phys

let test_split_simple_select_is_lfta () =
  let c = compile_ok ~name:"s" "SELECT time, destport FROM eth0.tcp WHERE protocol = 6" in
  check Alcotest.(list string) "entirely an LFTA" ["lfta"] (kinds c)

let test_split_regex_forces_hfta () =
  let c =
    compile_ok ~name:"rx"
      {| SELECT time FROM eth0.tcp
         WHERE destport = 80 and str_match_regex(payload, 'HTTP') = TRUE |}
  in
  check Alcotest.(list string) "LFTA + HFTA" ["lfta"; "hfta"] (kinds c);
  (* the LFTA must forward the payload for the HFTA's regex *)
  let lfta = List.hd c.Gsql.Compile.split.Split.phys in
  check Alcotest.bool "payload forwarded" true
    (Schema.field_index lfta.Split.pschema "payload" <> None);
  (* and the cheap conjunct stays below *)
  match lfta.Split.pbody with
  | Plan.Select { sel_pred = Some _; _ } -> ()
  | _ -> Alcotest.fail "cheap predicate should stay in the LFTA"

let test_split_aggregation () =
  let c =
    compile_ok ~name:"agg"
      "SELECT tb, destport, count(*) as c, avg(len) as a FROM eth0.tcp GROUP BY time/1 as tb, destport"
  in
  check Alcotest.(list string) "sub + super" ["lfta"; "hfta"] (kinds c);
  let lfta = List.hd c.Gsql.Compile.split.Split.phys in
  (* avg splits into sum + count partials *)
  match lfta.Split.pbody with
  | Plan.Agg a ->
      check Alcotest.int "count + avg -> 3 partials" 3 (List.length a.Plan.aggs);
      check Alcotest.bool "lfta direct-mapped table sized" true (lfta.Split.ptable_bits > 0)
  | _ -> Alcotest.fail "expected LFTA aggregation"

let test_split_stream_select_is_hfta () =
  let catalog = fresh_catalog () in
  let program =
    {|
    DEFINE { query_name base; } SELECT time, destport FROM eth0.tcp
    DEFINE { query_name over; } SELECT time FROM base WHERE destport = 80
  |}
  in
  match Gsql.Compile.compile_program catalog program with
  | Error e -> Alcotest.fail e
  | Ok compiled ->
      let over = List.nth compiled 1 in
      check Alcotest.(list string) "stream input -> hfta only" ["hfta"] (kinds over)

let test_split_nic_hints () =
  let c = compile_ok ~name:"nh" "SELECT time, destport FROM eth0.tcp WHERE destport = 80" in
  let lfta = List.hd c.Gsql.Compile.split.Split.phys in
  match lfta.Split.pnic with
  | Some { Split.nic_filter = Some _; snap_len } ->
      check Alcotest.int "headers-only snap" 134 snap_len
  | _ -> Alcotest.fail "expected a lowered NIC filter"

let test_split_nic_payload_snap () =
  let c = compile_ok ~name:"np" "SELECT time, payload FROM eth0.tcp WHERE destport = 80" in
  let lfta = List.hd c.Gsql.Compile.split.Split.phys in
  match lfta.Split.pnic with
  | Some { Split.snap_len; _ } -> check Alcotest.int "full snap for payload" 65535 snap_len
  | None -> Alcotest.fail "expected a NIC hint"

let test_split_lfta_bits_property () =
  let c =
    compile_ok
      {| DEFINE { query_name bits; lfta_bits 6; }
         SELECT tb, count(*) as c FROM eth0.tcp GROUP BY time/1 as tb |}
  in
  let lfta = List.hd c.Gsql.Compile.split.Split.phys in
  check Alcotest.int "lfta_bits honoured" 6 lfta.Split.ptable_bits

let test_split_join_feeders () =
  let catalog = fresh_catalog () in
  let program =
    {|
    DEFINE { query_name j; }
    SELECT a.time, a.srcip FROM eth0.tcp a, eth1.udp b
    WHERE a.time = b.time and a.srcport = 53
  |}
  in
  match Gsql.Compile.compile_program catalog program with
  | Error e -> Alcotest.fail e
  | Ok [c] ->
      check Alcotest.(list string) "two feeders + join" ["lfta"; "lfta"; "hfta"] (kinds c)
  | Ok _ -> Alcotest.fail "expected one query"

let test_lower_filter_weakening () =
  (* an unlowerable conjunct is dropped, not fatal *)
  let bpf_of_field i = if i = 0 then Some Gigascope_bpf.Filter.Dst_port else None in
  let pred =
    Expr_ir.Binop
      ( Ast.And,
        Expr_ir.Binop (Ast.Eq, Expr_ir.Field (0, Ty.Int), Expr_ir.Const (Value.Int 80), Ty.Bool),
        Expr_ir.Binop (Ast.Eq, Expr_ir.Field (9, Ty.Int), Expr_ir.Const (Value.Int 1), Ty.Bool),
        Ty.Bool )
  in
  match Split.lower_filter ~bpf_of_field pred with
  | Some (Gigascope_bpf.Filter.Cmp (Gigascope_bpf.Filter.Dst_port, Gigascope_bpf.Filter.Eq, 80)) -> ()
  | Some f -> Alcotest.failf "unexpected filter %s" (Format.asprintf "%a" Gigascope_bpf.Filter.pp f)
  | None -> Alcotest.fail "lowerable conjunct lost"

(* ------------------------------ codegen --------------------------------- *)

let eval_expr text row =
  (* build a tiny schema: a:int, b:int and evaluate over [row] *)
  let funcs = Rts.Func.create_registry () in
  Rts.Builtin_funcs.register_all funcs;
  let catalog = Gsql.Catalog.create funcs in
  Gsql.Catalog.add_stream catalog ~name:"s"
    (Schema.make
       [
         { Schema.name = "a"; ty = Ty.Int; order = Order_prop.Monotone Order_prop.Asc };
         { Schema.name = "b"; ty = Ty.Int; order = Order_prop.Unordered };
       ]);
  match Gsql.Compile.compile_query catalog ~name:"e" (Printf.sprintf "SELECT %s AS v FROM s" text) with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok c -> (
      match c.Gsql.Compile.plan.Plan.body with
      | Plan.Select { sel_items = [(ir, _)]; _ } -> (
          let params = Hashtbl.create 4 in
          Hashtbl.replace params "p" (Value.Int 7);
          match Codegen.compile_expr ~params ir with
          | Ok f -> f row
          | Error e -> Alcotest.failf "codegen: %s" e)
      | _ -> Alcotest.fail "unexpected plan shape")

let test_codegen_arithmetic () =
  let row = [| Value.Int 17; Value.Int 5 |] in
  check Alcotest.bool "add" true (eval_expr "a + b" row = Some (Value.Int 22));
  check Alcotest.bool "integer division" true (eval_expr "a / b" row = Some (Value.Int 3));
  check Alcotest.bool "mod" true (eval_expr "a % b" row = Some (Value.Int 2));
  check Alcotest.bool "band" true (eval_expr "a & 1" row = Some (Value.Int 1));
  check Alcotest.bool "shift" true (eval_expr "a >> 2" row = Some (Value.Int 4));
  check Alcotest.bool "neg" true (eval_expr "-a" row = Some (Value.Int (-17)));
  check Alcotest.bool "cmp" true (eval_expr "a > b" row = Some (Value.Bool true));
  check Alcotest.bool "param" true (eval_expr "$p + 1" row = Some (Value.Int 8))

let test_codegen_division_by_zero_discards () =
  let row = [| Value.Int 17; Value.Int 0 |] in
  check Alcotest.bool "div by zero = no value" true (eval_expr "a / b" row = None)

let test_codegen_short_circuit () =
  let row = [| Value.Int 0; Value.Int 0 |] in
  (* the right side would divide by zero, but the left side is false *)
  check Alcotest.bool "and short-circuits" true
    (eval_expr "a > 1 and a / b > 0" row = Some (Value.Bool false))

let test_codegen_bad_handle_reported_at_install () =
  let catalog = fresh_catalog () in
  match
    Gsql.Compile.compile_query catalog ~name:"bad"
      "SELECT time FROM eth0.tcp WHERE str_match_regex(payload, '[unclosed') = TRUE"
  with
  | Error _ -> () (* rejecting at compile time is also acceptable *)
  | Ok c -> (
      (* the bad pattern must surface at install (handle instantiation) *)
      let mgr = Rts.Manager.create () in
      let binder =
        {
          Codegen.bind_source =
            (fun ~interface ~protocol ~nic:_ ->
              let schema =
                (Option.get (Gsql.Catalog.find_protocol catalog protocol)).Gsql.Catalog.schema
              in
              let name = interface ^ "." ^ protocol in
              match
                Rts.Manager.add_source mgr ~name ~schema
                  { Rts.Node.pull = (fun () -> None); clock = (fun () -> []) }
              with
              | Ok _ -> Ok name
              | Error e -> Error e);
        }
      in
      match Codegen.install mgr ~source_binder:binder c.Gsql.Compile.split with
      | Error msg -> check Alcotest.bool "error reported" true (String.length msg > 0)
      | Ok _ -> Alcotest.fail "bad regex pattern accepted")

(* ------------------------------ emitter --------------------------------- *)

let test_emit_c_select () =
  let c = compile_ok ~name:"em" "SELECT time, destport FROM eth0.tcp WHERE destport = 80" in
  let code = Gsql.Emit_c.emit c.Gsql.Compile.split in
  check Alcotest.bool "has struct" true (contains code "struct em_out");
  check Alcotest.bool "has process fn" true (contains code "em_process");
  check Alcotest.bool "has predicate" true (contains code "GS_DROP");
  check Alcotest.bool "mentions NIC" true (contains code "snap length")

let test_emit_c_agg () =
  let c = compile_ok ~name:"ag" "SELECT tb, count(*) as c FROM eth0.tcp GROUP BY time/1 as tb" in
  let code = Gsql.Emit_c.emit c.Gsql.Compile.split in
  check Alcotest.bool "direct-mapped table" true (contains code "direct-mapped table");
  check Alcotest.bool "epoch flush logic" true (contains code "flush_closed_groups")

let test_expr_print_reparse () =
  (* Ast.pp_expr emits fully parenthesized text: reparsing it must yield
     the same tree *)
  let sources =
    [
      "a + b * c - 2";
      "flags & 2 <> 0 and x = 1 or not y > 3";
      "f(a, b + 1) = true";
      "count(a) > 5";
      "x.y + $p";
      "10.0.0.1 = srcip";
      "-a % 3 << 2";
    ]
  in
  List.iter
    (fun src ->
      let e1 = Parser.parse_expr src in
      let e2 = Parser.parse_expr (Ast.expr_to_string e1) in
      check Alcotest.bool ("stable print/reparse: " ^ src) true (e1 = e2))
    sources

let test_emit_c_join_merge () =
  let catalog = fresh_catalog () in
  let program =
    {|
    DEFINE { query_name l; } SELECT time, srcport FROM eth0.tcp
    DEFINE { query_name r; } SELECT time, destport FROM eth1.tcp
    DEFINE { query_name jj; } SELECT a.time FROM l a, r b WHERE a.time = b.time
    DEFINE { query_name mm; } MERGE a.time : b.time FROM l a, r b
  |}
  in
  match Gsql.Compile.compile_program catalog program with
  | Error e -> Alcotest.fail e
  | Ok compiled ->
      let code =
        String.concat "\n"
          (List.map (fun c -> Gsql.Emit_c.emit c.Gsql.Compile.split) compiled)
      in
      check Alcotest.bool "join window mentioned" true (contains code "two-stream join");
      check Alcotest.bool "merge mentioned" true (contains code "order-preserving merge")

let test_explain_runs () =
  let c = compile_ok ~name:"ex" "SELECT time FROM eth0.tcp WHERE protocol = 6" in
  let text = Gsql.Compile.explain c in
  check Alcotest.bool "explain is substantial" true (String.length text > 200)

let () =
  Alcotest.run "gsql"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "ip literal" `Quick test_lexer_ip_literal;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "error positions" `Quick test_lexer_error_position;
        ] );
      ( "parser",
        [
          Alcotest.test_case "paper query" `Quick test_parse_paper_query;
          Alcotest.test_case "merge" `Quick test_parse_merge;
          Alcotest.test_case "group/having/sample" `Quick test_parse_group_by_having_sample;
          Alcotest.test_case "bitwise precedence" `Quick test_parse_precedence;
          Alcotest.test_case "arith precedence" `Quick test_parse_arith_precedence;
          Alcotest.test_case "protocol ddl" `Quick test_parse_protocol_ddl;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "protocol as field" `Quick test_parse_protocol_as_field;
        ] );
      ( "analyzer",
        [
          Alcotest.test_case "simple select" `Quick test_analyze_simple_select;
          Alcotest.test_case "unknown field" `Quick test_analyze_unknown_field;
          Alcotest.test_case "type errors" `Quick test_analyze_type_errors;
          Alcotest.test_case "unknown function" `Quick test_analyze_unknown_function;
          Alcotest.test_case "group-by epoch" `Quick test_analyze_group_by_epoch;
          Alcotest.test_case "non-key select rejected" `Quick test_analyze_select_item_must_be_key_or_agg;
          Alcotest.test_case "group key by expression" `Quick test_analyze_group_key_by_expression;
          Alcotest.test_case "agg dedup" `Quick test_analyze_agg_dedup;
          Alcotest.test_case "join window" `Quick test_analyze_join_window;
          Alcotest.test_case "join equality" `Quick test_analyze_join_equality_window;
          join_window_extraction_property;
          Alcotest.test_case "join output mode" `Quick test_analyze_join_output_mode;
          Alcotest.test_case "windowless join certifies unbounded" `Quick
            test_analyze_join_without_window_rejected;
          Alcotest.test_case "three-way join rejected" `Quick test_analyze_three_way_join_rejected;
          Alcotest.test_case "merge" `Quick test_analyze_merge;
          Alcotest.test_case "merge incompatible" `Quick test_analyze_merge_incompatible;
          Alcotest.test_case "merge unordered rejected" `Quick test_analyze_merge_unordered_column_rejected;
          Alcotest.test_case "param typing" `Quick test_analyze_param_typing;
          Alcotest.test_case "handle must be literal" `Quick test_analyze_handle_must_be_literal;
          Alcotest.test_case "nonrepeating through hash" `Quick test_analyze_nonrepeating_through_hash;
          Alcotest.test_case "in-group imputation" `Quick test_analyze_in_group_imputation;
          Alcotest.test_case "ddl protocol usable" `Quick test_analyze_ddl_protocol_usable;
        ] );
      ( "splitter",
        [
          Alcotest.test_case "simple select -> LFTA" `Quick test_split_simple_select_is_lfta;
          Alcotest.test_case "regex -> LFTA+HFTA" `Quick test_split_regex_forces_hfta;
          Alcotest.test_case "aggregation sub/super" `Quick test_split_aggregation;
          Alcotest.test_case "stream select -> HFTA" `Quick test_split_stream_select_is_hfta;
          Alcotest.test_case "NIC hints" `Quick test_split_nic_hints;
          Alcotest.test_case "payload snap" `Quick test_split_nic_payload_snap;
          Alcotest.test_case "lfta_bits property" `Quick test_split_lfta_bits_property;
          Alcotest.test_case "join feeders" `Quick test_split_join_feeders;
          Alcotest.test_case "filter weakening" `Quick test_lower_filter_weakening;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "arithmetic" `Quick test_codegen_arithmetic;
          Alcotest.test_case "division by zero" `Quick test_codegen_division_by_zero_discards;
          Alcotest.test_case "short circuit" `Quick test_codegen_short_circuit;
          Alcotest.test_case "bad handle at install" `Quick test_codegen_bad_handle_reported_at_install;
        ] );
      ( "emitter",
        [
          Alcotest.test_case "select" `Quick test_emit_c_select;
          Alcotest.test_case "aggregation" `Quick test_emit_c_agg;
          Alcotest.test_case "explain" `Quick test_explain_runs;
          Alcotest.test_case "print/reparse" `Quick test_expr_print_reparse;
          Alcotest.test_case "emit join/merge" `Quick test_emit_c_join_merge;
        ] );
    ]
