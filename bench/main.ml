(* The benchmark harness: one entry per experiment in EXPERIMENTS.md.

     e1    - Section 4: the four capture configurations, loss vs. rate
     e2    - Conclusions: packets/second through a production-like query set
     a1    - LFTA direct-mapped table: data reduction vs. table size
     a2    - LFTA/HFTA splitting on vs. off: tuples crossing the channel
     a3    - merge of skewed streams: buffer growth with/without heartbeats
     a4    - NIC capability levels: bytes delivered to the host
     a5    - join algorithm choice: output ordering vs. buffer space
     soak  - paced end-to-end replay over the loopback wire protocol:
             the 2%-loss doctrine, gap conservation, latency percentiles
     micro - Bechamel micro-costs of the operators and substrates

   `main.exe` with no argument runs everything. *)

module E = Gigascope.Engine
module Rts = Gigascope_rts
module Gsql = Gigascope_gsql
module Traffic = Gigascope_traffic
module Sim = Gigascope_sim
module Value = Rts.Value
module Metrics = Gigascope_obs.Metrics

let section title =
  Printf.printf "\n==== %s ====\n%!" title

(* Minimal JSON emitter for the BENCH_*.json artifacts (no deps; the
   registry's own Metrics.to_json only covers snapshots, and the bench
   records are summary rows, not raw metrics). *)
module Json = struct
  type t =
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf ~indent j =
    let pad n = String.make n ' ' in
    match j with
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else Buffer.add_string buf (Printf.sprintf "%.6g" f)
    | Str s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (escape s))
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (pad (indent + 2));
            emit buf ~indent:(indent + 2) item)
          items;
        Buffer.add_string buf ("\n" ^ pad indent ^ "]")
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (Printf.sprintf "%s\"%s\": " (pad (indent + 2)) (escape k));
            emit buf ~indent:(indent + 2) v)
          fields;
        Buffer.add_string buf ("\n" ^ pad indent ^ "}")

  let to_file path j =
    let buf = Buffer.create 4096 in
    emit buf ~indent:0 j;
    Buffer.add_char buf '\n';
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote %s\n%!" path
end

(* Memory accounting for the meta block: the process heap high-water
   (top_heap_words covers every engine a sweep created, warmups
   included) plus, when a representative engine is handed over, the
   per-operator resident-state peaks against their certified bounds —
   the rts.state.* namespace, frozen into the artifact. *)
let state_peak_rows eng =
  List.filter_map
    (fun node ->
      let peak = Rts.Node.state_peak node in
      if peak = 0 then None
      else
        Some
          ( Rts.Node.name node,
            Json.Obj
              [
                ("peak", Json.Int peak);
                ( "bound",
                  let b = Rts.Node.state_bound node in
                  if Float.is_finite b then Json.Float b else Json.Str "unbounded" );
              ] ))
    (Rts.Manager.nodes (E.manager eng))

(* Run metadata stamped into every BENCH_*.json: a bench number without
   the revision and the knobs it ran under cannot be compared to anything. *)
let run_meta ?(state = []) ~wall_s () =
  let gc = Gc.quick_stat () in
  let git_rev =
    match
      let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with Unix.WEXITED 0 when line <> "" -> line | _ -> ""
    with
    | "" -> "unknown"
    | rev -> rev
    | exception _ -> "unknown"
  in
  let env name =
    match Sys.getenv_opt name with Some v when v <> "" -> v | _ -> "unset"
  in
  Json.Obj
    [
      ("git_rev", Json.Str git_rev);
      ("wall_clock_s", Json.Float wall_s);
      ("host_cores", Json.Int (Domain.recommended_domain_count ()));
      ("env_parallel", Json.Str (env "GIGASCOPE_PARALLEL"));
      ("env_batch", Json.Str (env "GIGASCOPE_BATCH"));
      ("env_shards", Json.Str (env "GIGASCOPE_SHARDS"));
      ("env_latency", Json.Str (env "GIGASCOPE_LATENCY"));
      ("ocaml", Json.Str Sys.ocaml_version);
      ("word_size_bits", Json.Int Sys.word_size);
      ( "heap_top_mb",
        Json.Float
          (float_of_int gc.Gc.top_heap_words
          *. float_of_int (Sys.word_size / 8)
          /. 1e6) );
      ("gc_major_collections", Json.Int gc.Gc.major_collections);
      ("rts_state_peaks", Json.Obj state);
    ]

(* ---------------------------------------------------------------- E1 --- *)

let run_e1 () =
  section "E1: Section 4 performance experiment";
  Sim.Experiment.print_summary (Sim.Experiment.run ~duration:20.0 ())

(* ---------------------------------------------------------------- E2 --- *)

(* A production-like query set: the HTTP-fraction pair, per-port counts,
   per-subnet volumes, and a flow aggregation. *)
let e2_queries =
  {|
  DEFINE { query_name e2_port80cnt; }
  SELECT tb, count(*) as cnt
  FROM eth0.tcp
  WHERE ipversion = 4 and protocol = 6 and destport = 80
  GROUP BY time/1 as tb

  DEFINE { query_name e2_http; }
  SELECT tb, count(*) as cnt
  FROM eth0.tcp
  WHERE ipversion = 4 and protocol = 6 and destport = 80
    and str_match_regex(payload, '^[^\n]*HTTP/1.*') = TRUE
  GROUP BY time/1 as tb

  DEFINE { query_name e2_ports; }
  SELECT tb, destport, count(*) as cnt, sum(len) as bytes
  FROM eth0.tcp
  WHERE ipversion = 4
  GROUP BY time/1 as tb, destport

  DEFINE { query_name e2_subnets; }
  SELECT tb, truncate_ip(srcip, 16) as subnet, count(*) as cnt
  FROM eth0.tcp
  WHERE ipversion = 4
  GROUP BY time/1 as tb, truncate_ip(srcip, 16) as subnet

  DEFINE { query_name e2_flows; }
  SELECT tb, srcip, destip, srcport, destport, count(*) as pkts, sum(len) as bytes
  FROM eth0.tcp
  WHERE ipversion = 4
  GROUP BY time/1 as tb, srcip, destip, srcport, destport
|}

let e2_names = ["e2_port80cnt"; "e2_http"; "e2_ports"; "e2_subnets"; "e2_flows"]

(* pre-generate so the measurement is the query network, not the source *)
let e2_packets () =
  let cfg =
    {
      Traffic.Gen.default with
      Traffic.Gen.duration = 3.0;
      rate_mbps = 300.0;
      seed = 5;
      n_flows = 2048;
    }
  in
  let gen = Traffic.Gen.create cfg in
  let rec go acc = match Traffic.Gen.next gen with Some p -> go (p :: acc) | None -> List.rev acc in
  go []

(* Best of [n] repetitions by wall time (first element of the result
   tuple): the container this runs in is noisy, and minimum-of-N is the
   standard way to read a throughput bench through the noise. *)
let best_of n run =
  let rec go best k =
    if k = 0 then best
    else
      let r = run () in
      let best = match best with Some b when fst b <= fst r -> Some b | _ -> Some r in
      go best (k - 1)
  in
  Option.get (go None n)

(* Per-operator rows (tuples in/out, evictions, service time) from a run's
   metrics registry, as both a printed table and the JSON records. *)
let per_op_rows snap =
  let counter name =
    match Metrics.find snap name with Some (Metrics.Counter n) -> n | _ -> 0
  in
  List.filter_map
    (fun (name, value) ->
      match value with
      | Metrics.Counter tout
        when String.starts_with ~prefix:"rts.node." name
             && Filename.check_suffix name ".tuples_out" ->
          let node = String.sub name 9 (String.length name - 9 - String.length ".tuples_out") in
          let service =
            match Metrics.find snap (Printf.sprintf "rts.node.%s.service_ns" node) with
            | Some (Metrics.Histogram h) -> Some h
            | _ -> None
          in
          Some
            ( node,
              counter (Printf.sprintf "rts.node.%s.tuples_in" node),
              tout,
              counter (Printf.sprintf "rts.node.%s.lfta.evictions" node),
              service )
      | _ -> None)
    snap

let per_op_json rows =
  Json.List
    (List.map
       (fun (node, tin, tout, evictions, service) ->
         Json.Obj
           ([
              ("node", Json.Str node);
              ("tuples_in", Json.Int tin);
              ("tuples_out", Json.Int tout);
              ("lfta_evictions", Json.Int evictions);
            ]
           @
           match service with
           | Some h ->
               [
                 ("service_steps", Json.Int h.Metrics.h_count);
                 ("service_ns_mean", Json.Float h.Metrics.h_mean);
                 ("service_ns_p99", Json.Float h.Metrics.h_p99);
               ]
           | None -> []))
       rows)

let run_e2 () =
  section "E2: sustained packets/second through a 5-query production-like set";
  let t_start = Unix.gettimeofday () in
  let packets = e2_packets () in
  let n_packets = List.length packets in
  let run_one ~batch =
    let eng = E.create ~default_capacity:65536 () in
    E.add_packet_list_interface eng ~name:"eth0" packets;
    (match E.install_program eng e2_queries with
    | Ok _ -> ()
    | Error e -> failwith ("e2 install: " ^ e));
    let outputs = ref 0 in
    List.iter (fun q -> Result.get_ok (E.on_tuple eng q (fun _ -> incr outputs))) e2_names;
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    (match E.run eng ~batch () with Ok _ -> () | Error e -> failwith ("e2 run: " ^ e));
    let dt = Unix.gettimeofday () -. t0 in
    (dt, (!outputs, E.total_drops eng, eng))
  in
  Printf.printf "packets: %d\n" n_packets;
  (* one discarded warmup run: the first run through the packet list pays
     promotion of the shared fixtures into the major heap *)
  ignore (run_one ~batch:1);
  Printf.printf "%-8s %10s %14s %10s %8s %10s\n" "batch" "wall(s)" "pkts/s" "outputs" "drops"
    "speedup";
  let base_outputs = ref (-1) and baseline = ref 0.0 and base_rows = ref [] in
  let base_state = ref [] in
  let sweep =
    List.map
      (fun batch ->
        let dt, (outputs, drops, eng) = best_of 3 (fun () -> run_one ~batch) in
        if !base_outputs < 0 then begin
          base_outputs := outputs;
          baseline := dt;
          base_rows := per_op_rows (E.metrics_snapshot eng);
          base_state := state_peak_rows eng
        end
        else if outputs <> !base_outputs then
          failwith
            (Printf.sprintf "e2: batch %d produced %d outputs, batch 1 produced %d" batch
               outputs !base_outputs);
        let rate = float_of_int n_packets /. dt in
        Printf.printf "%-8d %10.2f %14.0f %10d %8d %9.2fx\n%!" batch dt rate outputs drops
          (!baseline /. dt);
        Json.Obj
          [
            ("batch", Json.Int batch);
            ("wall_s", Json.Float dt);
            ("pkts_per_s", Json.Float rate);
            ("outputs", Json.Int outputs);
            ("drops", Json.Int drops);
            ("speedup_vs_batch1", Json.Float (!baseline /. dt));
          ])
      [1; 16; 64; 256]
  in
  (* per-operator detail from the batch=1 run: where the packets went and
     which LFTA tables thrashed *)
  Printf.printf "%-22s %12s %12s %10s %14s\n" "operator" "tuples-in" "tuples-out" "evictions"
    "service(ns)";
  List.iter
    (fun (node, tin, tout, evictions, service) ->
      Printf.printf "%-22s %12d %12d %10d %14s\n" node tin tout evictions
        (match service with
        | Some h -> Printf.sprintf "%.0f" h.Metrics.h_mean
        | None -> "-"))
    !base_rows;
  Json.to_file "BENCH_e2.json"
    (Json.Obj
       [
         ("bench", Json.Str "e2");
         ("description", Json.Str "packets/second through a 5-query production-like set, swept over data-plane batch size");
         ("meta", run_meta ~state:!base_state ~wall_s:(Unix.gettimeofday () -. t_start) ());
         ("packets", Json.Int n_packets);
         ( "pre_refactor_baseline",
           Json.Obj
             [
               ("note", Json.Str "tuple-at-a-time data plane, before the batched refactor");
               ("pkts_per_s", Json.Float 220_434.0);
             ] );
         ("sweep", Json.List sweep);
         ("per_op_batch1", per_op_json !base_rows);
       ]);
  Printf.printf "paper: 1.2M pkts/s sustained on a 2003 dual 2.4GHz server\n"

(* ---------------------------------------------------------------- E3 --- *)

(* The e2 workload again, single-threaded and with the HFTAs spread over
   worker domains (the paper's process-per-HFTA architecture, Section 2.2,
   on OCaml domains). The outputs must agree exactly between the modes;
   the interesting number is the wall-clock ratio. *)
(* The data-plane workload for the batch sweep: a select feeding an
   aggregate over cheap synthetic tuples, so the per-item channel and
   dispatch overhead — what batching removes — dominates the measurement
   instead of packet decoding. Output fingerprints must be byte-identical
   across every (domains, batch) point. *)
let e3_select_aggregate ~n ~domains ~batch =
  let mgr = Rts.Manager.create ~default_capacity:65536 () in
  let schema =
    Rts.Schema.make
      [
        { Rts.Schema.name = "ts"; ty = Rts.Ty.Int; order = Rts.Order_prop.Monotone Rts.Order_prop.Asc };
        { Rts.Schema.name = "port"; ty = Rts.Ty.Int; order = Rts.Order_prop.Unordered };
        { Rts.Schema.name = "len"; ty = Rts.Ty.Int; order = Rts.Order_prop.Unordered };
      ]
  in
  let out_schema =
    Rts.Schema.make
      [
        { Rts.Schema.name = "tb"; ty = Rts.Ty.Int; order = Rts.Order_prop.Monotone Rts.Order_prop.Asc };
        { Rts.Schema.name = "cnt"; ty = Rts.Ty.Int; order = Rts.Order_prop.Unordered };
        { Rts.Schema.name = "bytes"; ty = Rts.Ty.Int; order = Rts.Order_prop.Unordered };
      ]
  in
  let i = ref 0 in
  let source =
    {
      Rts.Node.pull =
        (fun () ->
          if !i >= n then None
          else begin
            let t = !i in
            incr i;
            Some
              (Rts.Item.Tuple
                 [| Value.Int (t / 1000); Value.Int (t mod 997); Value.Int (64 + (t mod 1400)) |])
          end);
      clock = (fun () -> [(0, Value.Int (!i / 1000))]);
    }
  in
  Result.get_ok (Result.map ignore (Rts.Manager.add_source mgr ~name:"src" ~schema source));
  let select =
    Rts.Select_op.make
      ~pred:(fun t -> match t.(1) with Value.Int p -> p < 512 | _ -> false)
      ~project:(fun t -> Some [| t.(0); t.(2) |])
      ~punct_map:[(0, 0)] ()
  in
  Result.get_ok
    (Result.map ignore
       (Rts.Manager.add_query_node mgr ~name:"sel" ~kind:Rts.Node.Lfta ~schema
          ~inputs:["src"] ~op:select));
  let agg =
    Rts.Aggregate.make
      {
        Rts.Aggregate.pred = None;
        keys = [| (fun t -> Some t.(0)) |];
        epoch_key = Some 0;
        direction = Rts.Order_prop.Asc;
        band = 0.0;
        aggs =
          [|
            { Rts.Agg_fn.kind = Rts.Agg_fn.Count; arg = None };
            { Rts.Agg_fn.kind = Rts.Agg_fn.Sum; arg = Some (fun t -> Some t.(1)) };
          |];
        assemble = (fun ~keys ~aggs -> Array.append keys aggs);
        having = None;
        epoch_out = Some 0;
        punct_in = Some (0, fun v -> Some v);
      }
  in
  Result.get_ok
    (Result.map ignore
       (Rts.Manager.add_query_node mgr ~name:"agg" ~kind:Rts.Node.Hfta ~schema:out_schema
          ~inputs:["sel"] ~op:(Rts.Aggregate.op agg)));
  let out = Result.get_ok (Rts.Manager.subscribe mgr "agg") in
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  (match
     if domains > 1 then Rts.Scheduler.run_parallel ~domains ~batch mgr
     else Rts.Scheduler.run ~batch mgr
   with
  | Ok _ -> ()
  | Error e -> failwith ("e3 select+aggregate: " ^ e));
  let dt = Unix.gettimeofday () -. t0 in
  let fingerprint = Buffer.create 4096 in
  let rec drain () =
    match Rts.Channel.pop out with
    | Some item ->
        Buffer.add_string fingerprint (Format.asprintf "%a@." Rts.Item.pp item);
        drain ()
    | None -> ()
  in
  drain ();
  (dt, Buffer.contents fingerprint)

let run_e3 () =
  section "E3: single-threaded vs. parallel HFTA execution (e2 query set)";
  let t_start = Unix.gettimeofday () in
  let packets = e2_packets () in
  let n_packets = List.length packets in
  let run_one ~shards ~domains ~batch =
    let eng = E.create ~default_capacity:65536 ~shards () in
    E.add_packet_list_interface eng ~name:"eth0" packets;
    (match E.install_program eng e2_queries with
    | Ok _ -> ()
    | Error e -> failwith ("e3 install: " ^ e));
    (* one counter per query: each output's callback runs on the single
       domain hosting that query, so plain refs summed after the join are
       race-free *)
    let counters = List.map (fun q -> (q, ref 0)) e2_names in
    List.iter (fun (q, r) -> Result.get_ok (E.on_tuple eng q (fun _ -> incr r))) counters;
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    (match E.run eng ~parallel:domains ~batch () with
    | Ok _ -> ()
    | Error e -> failwith ("e3 run: " ^ e));
    let dt = Unix.gettimeofday () -. t0 in
    let outputs = List.fold_left (fun acc (_, r) -> acc + !r) 0 counters in
    (dt, (outputs, E.total_drops eng, eng))
  in
  ignore (run_one ~shards:1 ~domains:1 ~batch:1) (* warmup, see run_e2 *);
  let baseline = ref 0.0 and base_outputs = ref (-1) in
  let base_state = ref [] in
  let best_sharded = ref 0.0 in
  Printf.printf "%-8s %-10s %-8s %10s %14s %10s %8s %10s\n" "shards" "domains" "batch"
    "wall(s)" "pkts/s" "outputs" "drops" "speedup";
  let e2_sweep =
    List.map
      (fun (shards, domains, batch) ->
        let dt, (outputs, drops, eng) = best_of 3 (fun () -> run_one ~shards ~domains ~batch) in
        if !base_outputs < 0 then begin
          baseline := dt;
          base_outputs := outputs;
          base_state := state_peak_rows eng
        end
        else if outputs <> !base_outputs then
          failwith
            (Printf.sprintf
               "e3: %d shards %d domains batch %d produced %d outputs, the baseline \
                produced %d"
               shards domains batch outputs !base_outputs);
        let speedup = !baseline /. dt in
        if shards = 4 && domains > 1 then best_sharded := max !best_sharded speedup;
        Printf.printf "%-8d %-10d %-8d %10.2f %14.0f %10d %8d %9.2fx\n%!" shards domains
          batch dt
          (float_of_int n_packets /. dt)
          outputs drops speedup;
        Json.Obj
          [
            ("shards", Json.Int shards);
            ("domains", Json.Int domains);
            ("batch", Json.Int batch);
            ("wall_s", Json.Float dt);
            ("pkts_per_s", Json.Float (float_of_int n_packets /. dt));
            ("outputs", Json.Int outputs);
            ("drops", Json.Int drops);
            ("speedup_vs_baseline", Json.Float speedup);
          ])
      [
        (1, 1, 1);
        (1, 1, 64);
        (1, 2, 1);
        (1, 2, 64);
        (1, 3, 1);
        (1, 3, 64);
        (2, 3, 1);
        (2, 3, 64);
        (4, 5, 1);
        (4, 5, 64);
      ]
  in
  let host_cores = Domain.recommended_domain_count () in
  let shard_meets = !best_sharded >= 1.5 in
  Printf.printf "best 4-shard multi-domain speedup: %.2fx (target 1.5x) %s\n" !best_sharded
    (if shard_meets then "PASS"
     else if host_cores < 2 then
       "UNMEASURABLE (single-core host: every multi-domain row times N domains \
        interleaved on 1 core, so the sharded rows price the partitioner+merge overhead, \
        not the offload)"
     else "MISS");
  Printf.printf
    "claim: the process-per-HFTA architecture (Section 2.2) moves HFTA work off\n\
     the packet path without drops or any change in output; when LFTA reduction\n\
     already makes the HFTAs cheap, channel overhead can outweigh the offload —\n\
     sharding fixes that by replicating the LFTA chain itself across domains\n\
     behind a partitioner, so the per-packet work leaves the packet path too.\n";
  (* -- the batched data plane on a select+aggregate chain ------------- *)
  Printf.printf "\nselect+aggregate chain, %d tuples (batched data plane):\n" 2_000_000;
  let n = 2_000_000 in
  let sa_baseline = ref 0.0 and sa_fingerprint = ref "" in
  Printf.printf "%-10s %-8s %10s %14s %10s\n" "domains" "batch" "wall(s)" "tuples/s" "speedup";
  let sa_sweep =
    List.map
      (fun (domains, batch) ->
        let dt, fp = best_of 3 (fun () -> e3_select_aggregate ~n ~domains ~batch) in
        if !sa_fingerprint = "" then begin
          sa_baseline := dt;
          sa_fingerprint := fp
        end
        else if fp <> !sa_fingerprint then
          failwith
            (Printf.sprintf "e3: select+aggregate output diverged at domains %d batch %d"
               domains batch);
        Printf.printf "%-10d %-8d %10.2f %14.0f %9.2fx\n%!" domains batch dt
          (float_of_int n /. dt) (!sa_baseline /. dt);
        ( (domains, batch, !sa_baseline /. dt),
          Json.Obj
            [
              ("domains", Json.Int domains);
              ("batch", Json.Int batch);
              ("wall_s", Json.Float dt);
              ("tuples_per_s", Json.Float (float_of_int n /. dt));
              ("speedup_vs_batch1", Json.Float (!sa_baseline /. dt));
            ] ))
      [(1, 1); (1, 8); (1, 64); (1, 256); (1, 1024); (2, 64)]
  in
  let best_batched =
    List.fold_left
      (fun acc ((domains, batch, speedup), _) ->
        if domains = 1 && batch >= 64 then max acc speedup else acc)
      0.0 sa_sweep
  in
  let meets = best_batched >= 1.5 in
  Printf.printf "batch>=64 single-threaded speedup: %.2fx (target 1.5x) %s\n" best_batched
    (if meets then "PASS" else "MISS");
  Json.to_file "BENCH_e3.json"
    (Json.Obj
       [
         ("bench", Json.Str "e3");
         ("description", Json.Str "parallel HFTA execution and the batched data plane: e2 query set over domains x batch, plus a select+aggregate chain swept over batch size");
         ("meta", run_meta ~state:!base_state ~wall_s:(Unix.gettimeofday () -. t_start) ());
         ( "pre_refactor_baseline",
           Json.Obj
             [
               ("note", Json.Str "tuple-at-a-time data plane, before the batched refactor; e2 query set");
               ( "pkts_per_s_by_domains",
                 Json.Obj
                   [
                     ("1", Json.Float 95_733.0);
                     ("2", Json.Float 107_381.0);
                     ("3", Json.Float 105_552.0);
                   ] );
             ] );
         ( "e2_set",
           Json.Obj
             [
               ("packets", Json.Int n_packets);
               ("sweep", Json.List e2_sweep);
               ("best_sharded_speedup_4shards_multidomain", Json.Float !best_sharded);
               ("sharded_target_speedup", Json.Float 1.5);
               ("sharded_meets_target", Json.Bool shard_meets);
               ("host_cores", Json.Int host_cores);
               ( "sharded_note",
                 Json.Str
                   (if host_cores < 2 then
                      "single-core host: the multi-domain offload the target measures \
                       cannot manifest (N domains timeshare 1 core), so the sharded rows \
                       report pure partitioner+reunify overhead"
                    else "multi-core host: sharded rows measure real offload") );
             ] );
         ( "select_aggregate",
           Json.Obj
             [
               ("tuples", Json.Int n);
               ("sweep", Json.List (List.map snd sa_sweep));
               ("best_batched_speedup_1domain", Json.Float best_batched);
               ("target_speedup", Json.Float 1.5);
               ("meets_target", Json.Bool meets);
             ] );
       ])

(* ---------------------------------------------------------------- A1 --- *)

let run_a1 () =
  section "A1: LFTA direct-mapped table size vs. early data reduction";
  Printf.printf "%-10s %18s %18s %12s\n" "slots" "reduction(local)" "reduction(uniform)" "note";
  let run_one ~bits ~uniform =
    let cfg =
      {
        Traffic.Gen.default with
        Traffic.Gen.duration = 2.0;
        rate_mbps = 200.0;
        seed = 21;
        n_flows = 1024;
        uniform_random = uniform;
      }
    in
    let eng = E.create ~default_capacity:1_000_000 () in
    E.add_generator_interface eng ~name:"eth0" cfg;
    let q =
      Printf.sprintf
        {|
        DEFINE { query_name a1_flows; lfta_bits %d; }
        SELECT tb, srcip, destip, srcport, destport, count(*) as cnt
        FROM eth0.tcp
        WHERE ipversion = 4
        GROUP BY time/1 as tb, srcip, destip, srcport, destport
      |}
        bits
    in
    match E.install_query eng q with
    | Error e -> failwith ("a1: " ^ e)
    | Ok inst -> (
        (match E.run eng () with Ok _ -> () | Error e -> failwith ("a1 run: " ^ e));
        match inst.Gsql.Codegen.lfta_aggs with
        | [(_, agg)] ->
            let mgr = E.manager eng in
            let lfta = Option.get (Rts.Manager.find mgr "_lfta_a1_flows") in
            let input = Rts.Node.tuples_in lfta in
            let emitted = Rts.Lfta_aggregate.emitted agg in
            (input, emitted, Rts.Lfta_aggregate.evictions agg)
        | _ -> failwith "a1: expected one LFTA aggregation")
  in
  List.iter
    (fun bits ->
      let in_l, out_l, _ = run_one ~bits ~uniform:false in
      let in_u, out_u, _ = run_one ~bits ~uniform:true in
      Printf.printf "%-10d %17.1fx %17.1fx %12s\n" (1 lsl bits)
        (float_of_int in_l /. float_of_int (max 1 out_l))
        (float_of_int in_u /. float_of_int (max 1 out_u))
        (if bits <= 6 then "tiny table" else ""))
    [4; 6; 8; 10; 12; 14];
  Printf.printf
    "claim: temporal locality makes even a small table effective (Section 3);\n\
     adversarial uniform traffic defeats it.\n"

(* ---------------------------------------------------------------- A2 --- *)

let run_a2 () =
  section "A2: LFTA/HFTA aggregate splitting on vs. off";
  let cfg =
    { Traffic.Gen.default with Traffic.Gen.duration = 1.0; rate_mbps = 80.0; seed = 22 }
  in
  let crossing ~split =
    let eng = E.create ~default_capacity:1_000_000 () in
    E.add_generator_interface eng ~name:"eth0" cfg;
    let q =
      if split then
        {|
        DEFINE { query_name a2_agg; }
        SELECT tb, destport, count(*) as cnt
        FROM eth0.tcp WHERE ipversion = 4
        GROUP BY time/1 as tb, destport
      |}
      else
        (* disable the splitter by interposing a raw pass-through stream:
           the aggregation then runs entirely in the HFTA and every raw
           tuple crosses the channel *)
        {|
        DEFINE { query_name a2_raw; }
        SELECT time, destport FROM eth0.tcp WHERE ipversion = 4

        DEFINE { query_name a2_agg; }
        SELECT tb, destport, count(*) as cnt
        FROM a2_raw
        GROUP BY time/1 as tb, destport
      |}
    in
    (match E.install_program eng q with Ok _ -> () | Error e -> failwith ("a2: " ^ e));
    (match E.run eng () with Ok _ -> () | Error e -> failwith ("a2 run: " ^ e));
    let mgr = E.manager eng in
    let agg = Option.get (Rts.Manager.find mgr "a2_agg") in
    (* tuples the HFTA read from its input channel *)
    Rts.Node.tuples_in agg
  in
  let with_split = crossing ~split:true in
  let without = crossing ~split:false in
  Printf.printf "tuples crossing into the HFTA: split=%d  unsplit=%d  (%.0fx reduction)\n"
    with_split without
    (float_of_int without /. float_of_int (max 1 with_split))

(* ---------------------------------------------------------------- A3 --- *)

let run_a3 () =
  section "A3: heartbeats unblock a merge of skewed streams";
  let schema =
    Rts.Schema.make
      [
        { Rts.Schema.name = "ts"; ty = Rts.Ty.Int; order = Rts.Order_prop.Monotone Rts.Order_prop.Asc };
        { Rts.Schema.name = "v"; ty = Rts.Ty.Int; order = Rts.Order_prop.Unordered };
      ]
  in
  let run_one ~heartbeats =
    let mgr = Rts.Manager.create ~default_capacity:1_000_000 () in
    (* fast source: 100k tuples, 1 per "ms"; slow source: 2 tuples total *)
    let fast_i = ref 0 in
    let fast =
      {
        Rts.Node.pull =
          (fun () ->
            if !fast_i >= 100_000 then None
            else begin
              let t = !fast_i in
              incr fast_i;
              Some (Rts.Item.Tuple [| Value.Int t; Value.Int 0 |])
            end);
        clock = (fun () -> [(0, Value.Int !fast_i)]);
      }
    in
    let slow_sent = ref 0 in
    let slow =
      {
        Rts.Node.pull =
          (fun () ->
            (* one tuple at t=0, one at the very end; in between silence —
               but its clock tracks the fast stream's progress, as a real
               low-volume interface's timer would *)
            if !slow_sent = 0 then begin
              incr slow_sent;
              Some (Rts.Item.Tuple [| Value.Int 0; Value.Int 1 |])
            end
            else if !slow_sent = 1 && !fast_i >= 100_000 then begin
              incr slow_sent;
              Some (Rts.Item.Tuple [| Value.Int 100_000; Value.Int 1 |])
            end
            else if !slow_sent >= 2 then None
            else Some Rts.Item.Flush (* a keep-alive no-op so the source is not "exhausted" *));
        clock = (fun () -> [(0, Value.Int !fast_i)]);
      }
    in
    Result.get_ok (Result.map ignore (Rts.Manager.add_source mgr ~name:"fast" ~schema fast));
    Result.get_ok (Result.map ignore (Rts.Manager.add_source mgr ~name:"slow" ~schema slow));
    let merge =
      Rts.Merge_op.make { Rts.Merge_op.n_inputs = 2; ordered_idx = 0; direction = Rts.Order_prop.Asc }
    in
    Result.get_ok
      (Result.map ignore
         (Rts.Manager.add_query_node mgr ~name:"merged" ~kind:Rts.Node.Hfta ~schema
            ~inputs:["fast"; "slow"] ~op:(Rts.Merge_op.op merge)));
    (match Rts.Scheduler.run ~heartbeats mgr with
    | Ok _ -> ()
    | Error e -> failwith ("a3: " ^ e));
    Rts.Merge_op.high_water merge
  in
  let hw_on = run_one ~heartbeats:true in
  let hw_off = run_one ~heartbeats:false in
  Printf.printf "peak merge buffer: heartbeats ON = %d tuples, OFF = %d tuples\n" hw_on hw_off;
  Printf.printf
    "claim: without ordering-update tokens the silent input forces the merge\n\
     to buffer the fast stream (Section 3, Unblocking Operators).\n"

(* ---------------------------------------------------------------- A5 --- *)

let run_a5 () =
  section "A5: join algorithm choice - output ordering vs. buffer space";
  (* Section 2.1: the join's output can be "monotonically increasing or
     banded-increasing(2) depending on the choice of join algorithm
     (monotonically increasing requires more buffer space)" *)
  let rng = Gigascope_util.Prng.create 55 in
  let mk n =
    let ts = ref 0 in
    List.init n (fun i ->
        ts := !ts + Gigascope_util.Prng.int rng 3;
        [| Value.Int !ts; Value.Int i |])
  in
  let left = mk 20000 and right = mk 20000 in
  let run mode =
    let join =
      Rts.Join_op.make
        {
          Rts.Join_op.output_mode = mode;
          left_idx = 0;
          right_idx = 0;
          lo = -4.0;
          hi = 4.0;
          pred = (fun _ _ -> true);
          assemble = (fun l r -> Some [| l.(0); r.(0) |]);
          left_out = Some 0;
          right_out = Some 1;
        }
    in
    let op = Rts.Join_op.op join in
    let out = ref 0 and backwards = ref 0 and last = ref min_int in
    let emit = function
      | Rts.Item.Tuple t ->
          incr out;
          (match t.(0) with
          | Value.Int v ->
              if v < !last then incr backwards;
              last := max !last v
          | _ -> ())
      | _ -> ()
    in
    let tagged =
      List.map (fun r -> (0, r)) left @ List.map (fun r -> (1, r)) right
      |> List.stable_sort (fun (_, a) (_, b) -> Value.compare a.(0) b.(0))
    in
    List.iter (fun (input, row) -> op.Rts.Operator.on_item ~input (Rts.Item.Tuple row) ~emit) tagged;
    op.Rts.Operator.on_item ~input:0 Rts.Item.Eof ~emit;
    op.Rts.Operator.on_item ~input:1 Rts.Item.Eof ~emit;
    (!out, !backwards, Rts.Join_op.high_water join)
  in
  let out_b, back_b, hw_b = run Rts.Join_op.Banded_output in
  let out_o, back_o, hw_o = run Rts.Join_op.Ordered_output in
  Printf.printf "%-18s %10s %18s %14s\n" "algorithm" "matches" "out-of-order out" "peak buffered";
  Printf.printf "%-18s %10d %18d %14d\n" "probe (banded)" out_b back_b hw_b;
  Printf.printf "%-18s %10d %18d %14d\n" "buffered (ordered)" out_o back_o hw_o;
  Printf.printf
    "claim: same matches; the ordered algorithm emits monotone output at the\n\
     cost of extra buffering (Section 2.1).\n"

(* ---------------------------------------------------------------- A4 --- *)

let run_a4 () =
  section "A4: NIC capability vs. bytes delivered to the host";
  (* the same port-80 query under the three card models; results identical,
     host-side data volume not *)
  let cfg =
    { Traffic.Gen.default with Traffic.Gen.duration = 1.0; rate_mbps = 60.0; seed = 44 }
  in
  Printf.printf "%-14s %12s %14s %14s %10s\n" "capability" "pkts to host" "bytes to host" "query rows" "reduction";
  let base_bytes = ref 0 in
  List.iter
    (fun (label, cap) ->
      let eng = E.create ~default_capacity:500_000 () in
      E.add_generator_interface eng ~name:"eth0" ~capability:cap cfg;
      (match
         E.install_query eng ~name:"a4q"
           {| SELECT time, destport FROM eth0.tcp WHERE protocol = 6 and destport = 80 |}
       with
      | Ok _ -> ()
      | Error e -> failwith ("a4: " ^ e));
      let rows = ref 0 in
      Result.get_ok (E.on_tuple eng "a4q" (fun _ -> incr rows));
      (match E.run eng () with Ok _ -> () | Error e -> failwith ("a4 run: " ^ e));
      let stats = Gigascope_nic.Nic.stats (Option.get (E.nic_of eng "eth0")) in
      if !base_bytes = 0 then base_bytes := stats.Gigascope_nic.Nic.bytes_delivered;
      Printf.printf "%-14s %12d %14d %14d %9.1fx\n" label
        stats.Gigascope_nic.Nic.packets_delivered stats.Gigascope_nic.Nic.bytes_delivered !rows
        (float_of_int !base_bytes /. float_of_int (max 1 stats.Gigascope_nic.Nic.bytes_delivered)))
    [("dumb", E.Cap_none); ("bpf+snap", E.Cap_bpf); ("programmable", E.Cap_lfta)];
  Printf.printf
    "claim: pushing the filter and snap length into the card shrinks what the\n\
     host must touch, without changing any query result (Section 3).\n"

(* -------------------------------------------------------------- soak --- *)

(* A paced end-to-end regression harness: replay synthetic traffic at its
   own timestamps (wall-clock pacing, not flat-out), deliver every query's
   output to a real subscriber over the loopback wire protocol, and hold
   the run to the paper's doctrine — at the offered rate the system keeps
   up, loses at most 2%, and accounts for every tuple it does lose (gap
   markers at the subscribers must conserve the server's drop count).
   Ingest→deliver latency is sampled throughout and reported per query.

     main.exe soak [DURATION_S] [RATE_MBPS]     (defaults 10s, 80 Mbit/s) *)

module Net = Gigascope_net

let soak_loss_threshold_pct = 2.0

(* p99 sanity bound for the smoke test: on a paced run that keeps up,
   ingest→deliver latency is queue residence, not load; anything beyond
   this means the plane stalled. Generous because CI containers are noisy. *)
let soak_sane_p99_ms = 5_000.0

let run_soak () =
  section "SOAK: paced replay, loopback delivery, the 2%-loss doctrine";
  let t_start = Unix.gettimeofday () in
  let argf i default =
    if Array.length Sys.argv > i then
      match float_of_string_opt Sys.argv.(i) with Some f when f > 0.0 -> f | _ -> default
    else default
  in
  let duration = argf 2 10.0 in
  let rate = argf 3 80.0 in
  let latency_every = 32 in
  (* pre-generate so pacing (and nothing else) is the source-side cost *)
  let packets =
    let cfg =
      {
        Traffic.Gen.default with
        Traffic.Gen.duration;
        rate_mbps = rate;
        seed = 77;
        n_flows = 1024;
      }
    in
    let gen = Traffic.Gen.create cfg in
    let rec go acc =
      match Traffic.Gen.next gen with Some p -> go (p :: acc) | None -> List.rev acc
    in
    Array.of_list (go [])
  in
  let n_packets = Array.length packets in
  Printf.printf "replaying %d packets over %.1fs at %.0f Mbit/s, latency sample 1/%d\n%!"
    n_packets duration rate latency_every;
  let eng = E.create ~default_capacity:65536 () in
  (* capture timestamps are absolute (the generator's start_ts); pace
     relative to the first packet *)
  let base_ts = if n_packets > 0 then packets.(0).Gigascope_packet.Packet.ts else 0.0 in
  E.add_interface eng ~name:"eth0"
    ~feed:(fun () ->
      let i = ref 0 in
      let t0 = ref nan in
      fun () ->
        if !i >= n_packets then None
        else begin
          let p = packets.(!i) in
          incr i;
          if Float.is_nan !t0 then t0 := Unix.gettimeofday ();
          let lag =
            !t0 +. (p.Gigascope_packet.Packet.ts -. base_ts) -. Unix.gettimeofday ()
          in
          if lag > 0.0005 then Thread.delay lag;
          Some p
        end)
    ();
  (match E.install_program eng e2_queries with
  | Ok _ -> ()
  | Error e -> failwith ("soak install: " ^ e));
  let server = Net.Server.create ~policy:Net.Server.Drop_newest ~egress_capacity:4096 eng in
  let addr =
    match Net.Server.listen server (Net.Addr.Tcp ("127.0.0.1", 0)) with
    | Ok a -> a
    | Error e -> failwith ("soak listen: " ^ e)
  in
  let subscribe q =
    let delivered = ref 0 and gap_tuples = ref 0 and err = ref "" in
    let thread =
      Thread.create
        (fun () ->
          match Net.Client.connect addr with
          | Error e -> err := e
          | Ok c ->
              (match Net.Client.subscribe c q with
              | Error e -> err := e
              | Ok _ ->
                  let rec go () =
                    match Net.Client.next c with
                    | Ok (Some (Rts.Item.Tuple _)) ->
                        incr delivered;
                        go ()
                    | Ok (Some (Rts.Item.Gap n)) ->
                        gap_tuples := !gap_tuples + max 0 n;
                        go ()
                    | Ok (Some _) -> go ()
                    | Ok None -> ()
                    | Error e -> err := e
                  in
                  go ());
              Net.Client.close c)
        ()
    in
    (q, delivered, gap_tuples, err, thread)
  in
  let subs = List.map subscribe e2_names in
  let n_subs = List.length subs in
  let rec wait_attached tries =
    if Net.Server.subscriber_count server < n_subs then
      if tries = 0 then failwith "soak: subscribers failed to attach"
      else begin
        Thread.delay 0.02;
        wait_attached (tries - 1)
      end
  in
  wait_attached 250;
  let t_run = Unix.gettimeofday () in
  (match E.run eng ~latency_sample:latency_every () with
  | Ok _ -> ()
  | Error e -> failwith ("soak run: " ^ e));
  let replay_wall = Unix.gettimeofday () -. t_run in
  if not (Net.Server.drain server) then prerr_endline "soak: drain timed out";
  Net.Server.stop server;
  List.iter (fun (_, _, _, _, thread) -> Thread.join thread) subs;
  List.iter
    (fun (q, _, _, err, _) -> if !err <> "" then prerr_endline ("soak " ^ q ^ ": " ^ !err))
    subs;
  (* -- accounting ---------------------------------------------------- *)
  let snap = E.metrics_snapshot eng in
  let counter name =
    match Metrics.find snap name with Some (Metrics.Counter n) -> n | _ -> 0
  in
  let hist name =
    match Metrics.find snap name with Some (Metrics.Histogram h) -> Some h | _ -> None
  in
  let sum_counters ~prefix ~suffix =
    List.fold_left
      (fun acc (name, v) ->
        match v with
        | Metrics.Counter n
          when String.starts_with ~prefix name && Filename.check_suffix name suffix ->
            acc + n
        | _ -> acc)
      0 snap
  in
  let source_out = counter "rts.node.eth0.tcp.tuples_out" in
  let chan_drops = sum_counters ~prefix:"rts.chan." ~suffix:".drops" in
  let shed = sum_counters ~prefix:"rts.shed." ~suffix:"" in
  let egress_drops = counter "net.subscriber.drops" in
  let client_gap_tuples = List.fold_left (fun acc (_, _, g, _, _) -> acc + !g) 0 subs in
  let delivered_total = List.fold_left (fun acc (_, d, _, _, _) -> acc + !d) 0 subs in
  let lost = chan_drops + shed + egress_drops in
  let loss_pct = 100.0 *. float_of_int lost /. float_of_int (max 1 source_out) in
  let loss_ok = loss_pct <= soak_loss_threshold_pct in
  let gaps_conserved = client_gap_tuples = egress_drops in
  let hist_ms name =
    match hist name with
    | Some h when h.Metrics.h_count > 0 ->
        Some (h.Metrics.h_count, h.Metrics.h_p50 /. 1e6, h.Metrics.h_p90 /. 1e6, h.Metrics.h_p99 /. 1e6)
    | _ -> None
  in
  let p99_sane =
    List.for_all
      (fun q ->
        match hist_ms ("rts.latency." ^ q) with
        | Some (_, _, _, p99) -> p99 <= soak_sane_p99_ms
        | None -> true)
      e2_names
  in
  Printf.printf "replay: %.2fs wall (%.0f pkt/s paced, %.0f achieved)\n" replay_wall
    (float_of_int n_packets /. duration)
    (float_of_int n_packets /. replay_wall);
  Printf.printf
    "source tuples %d  delivered %d  chan drops %d  shed %d  egress drops %d  gaps@clients %d\n"
    source_out delivered_total chan_drops shed egress_drops client_gap_tuples;
  Printf.printf "%-14s %10s %8s  %-26s %-26s\n" "query" "delivered" "gaps" "rts p50/p90/p99 ms"
    "net p50/p90/p99 ms";
  let query_rows =
    List.map
      (fun (q, delivered, gaps, _, _) ->
        let render = function
          | Some (_, p50, p90, p99) -> Printf.sprintf "%.2f/%.2f/%.2f" p50 p90 p99
          | None -> "-"
        in
        let rts_h = hist_ms ("rts.latency." ^ q) and net_h = hist_ms ("net.latency." ^ q) in
        Printf.printf "%-14s %10d %8d  %-26s %-26s\n" q !delivered !gaps (render rts_h)
          (render net_h);
        let lat_json = function
          | Some (count, p50, p90, p99) ->
              Json.Obj
                [
                  ("samples", Json.Int count);
                  ("p50_ms", Json.Float p50);
                  ("p90_ms", Json.Float p90);
                  ("p99_ms", Json.Float p99);
                ]
          | None -> Json.Obj []
        in
        Json.Obj
          [
            ("query", Json.Str q);
            ("delivered", Json.Int !delivered);
            ("gap_tuples", Json.Int !gaps);
            ("rts_latency", lat_json rts_h);
            ("net_latency", lat_json net_h);
          ])
      subs
  in
  Json.to_file "BENCH_soak.json"
    (Json.Obj
       [
         ("bench", Json.Str "soak");
         ( "description",
           Json.Str
             "paced end-to-end replay through the loopback wire protocol: loss vs. the 2% doctrine, gap conservation, ingest-to-deliver latency per query" );
         ("meta", run_meta ~state:(state_peak_rows eng) ~wall_s:(Unix.gettimeofday () -. t_start) ());
         ( "config",
           Json.Obj
             [
               ("duration_s", Json.Float duration);
               ("rate_mbps", Json.Float rate);
               ("packets", Json.Int n_packets);
               ("latency_sample", Json.Int latency_every);
               ("queries", Json.Int n_subs);
               ("egress_policy", Json.Str "drop");
             ] );
         ( "replay",
           Json.Obj
             [
               ("wall_s", Json.Float replay_wall);
               ("paced_pkts_per_s", Json.Float (float_of_int n_packets /. duration));
               ("achieved_pkts_per_s", Json.Float (float_of_int n_packets /. replay_wall));
             ] );
         ( "loss",
           Json.Obj
             [
               ("source_tuples", Json.Int source_out);
               ("delivered_tuples", Json.Int delivered_total);
               ("channel_drops", Json.Int chan_drops);
               ("shed_tuples", Json.Int shed);
               ("egress_drops", Json.Int egress_drops);
               ("loss_pct", Json.Float loss_pct);
               ("threshold_pct", Json.Float soak_loss_threshold_pct);
               ("pass", Json.Bool loss_ok);
             ] );
         ( "gap_conservation",
           Json.Obj
             [
               ("egress_drops", Json.Int egress_drops);
               ("client_gap_tuples", Json.Int client_gap_tuples);
               ("conserved", Json.Bool gaps_conserved);
             ] );
         ("p99_sane", Json.Bool p99_sane);
         ("queries", Json.List query_rows);
       ]);
  Printf.printf "loss %.3f%% (threshold %.1f%%) %s  gap conservation %s  p99 sanity %s\n"
    loss_pct soak_loss_threshold_pct
    (if loss_ok then "PASS" else "FAIL")
    (if gaps_conserved then "PASS" else "FAIL")
    (if p99_sane then "PASS" else "FAIL");
  if not (loss_ok && gaps_conserved && p99_sane) then exit 1

(* ------------------------------------------------------------- micro --- *)

let run_micro () =
  section "M1-M8: micro-costs of operators and substrates (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  (* shared fixtures *)
  let gen = Traffic.Gen.create { Traffic.Gen.default with Traffic.Gen.duration = 1e9; seed = 31 } in
  let pkts = Array.init 512 (fun _ -> Option.get (Traffic.Gen.next gen)) in
  let wires = Array.map Gigascope_packet.Packet.encode pkts in
  let proto = Option.get (Gigascope.Default_protocols.find "tcp") in
  let tuples = Array.map (fun p -> Option.get (proto.Gigascope.Default_protocols.interpret p)) pkts in
  let payloads = Array.map (fun p -> Bytes.to_string (Gigascope_packet.Packet.payload p)) pkts in
  let idx = ref 0 in
  let next n = let i = !idx in idx := (i + 1) land 511; i mod n in
  let rx = Gigascope_regex.Regex.compile "^[^\\n]*HTTP/1.*" in
  let bpf_prog =
    Gigascope_bpf.Filter.(compile (And (Cmp (Ip_protocol, Eq, 6), Cmp (Dst_port, Eq, 80))))
  in
  let lpm =
    Gigascope_lpm.Table.of_entries
      (List.init 256 (fun i -> (Printf.sprintf "%d.0.0.0/8" i, i)))
  in
  let lfta =
    Rts.Lfta_aggregate.make
      {
        Rts.Lfta_aggregate.table_bits = 12;
        pred = None;
        keys = [| (fun t -> Some t.(9)); (fun t -> Some t.(10)) |];
        epoch_key = None;
        direction = Rts.Order_prop.Asc;
        band = 0.0;
        aggs = [| { Rts.Agg_fn.kind = Rts.Agg_fn.Count; arg = None } |];
        assemble = (fun ~keys ~aggs -> Array.append keys aggs);
        punct_in = None;
        epoch_out = None;
      }
  in
  let lfta_op = Rts.Lfta_aggregate.op lfta in
  let sinkhole _ = () in
  let tests =
    [
      Test.make ~name:"packet-decode+interpret"
        (Staged.stage (fun () ->
             let i = next 512 in
             match Gigascope_packet.Packet.decode ~ts:0.0 wires.(i) with
             | Ok p -> ignore (proto.Gigascope.Default_protocols.interpret p)
             | Error _ -> ()));
      Test.make ~name:"bpf-filter"
        (Staged.stage (fun () ->
             let i = next 512 in
             ignore (Gigascope_bpf.Vm.run bpf_prog wires.(i))));
      Test.make ~name:"regex-http"
        (Staged.stage (fun () ->
             let i = next 512 in
             ignore (Gigascope_regex.Regex.matches rx payloads.(i))));
      Test.make ~name:"lpm-lookup"
        (Staged.stage (fun () ->
             let i = next 512 in
             match tuples.(i).(9) with
             | Value.Ip ip -> ignore (Gigascope_lpm.Table.lookup lpm ip)
             | _ -> ()));
      Test.make ~name:"lfta-agg-step"
        (Staged.stage (fun () ->
             let i = next 512 in
             lfta_op.Rts.Operator.on_item ~input:0 (Rts.Item.Tuple tuples.(i)) ~emit:sinkhole));
      Test.make ~name:"tuple-hash"
        (Staged.stage (fun () ->
             let i = next 512 in
             ignore (Value.hash_array tuples.(i))));
      Test.make ~name:"checksum-750B"
        (Staged.stage (fun () ->
             let i = next 512 in
             ignore (Gigascope_packet.Checksum.compute wires.(i) 0 (Bytes.length wires.(i)))));
    ]
  in
  let instances = Instance.[monotonic_clock] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [est] -> Printf.printf "%-28s %12.1f ns/op\n%!" name est
          | _ -> Printf.printf "%-28s %12s\n%!" name "n/a")
        analyzed)
    tests

(* ------------------------------------------------------------- main --- *)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let all =
    [ ("e1", run_e1); ("e2", run_e2); ("e3", run_e3); ("a1", run_a1); ("a2", run_a2); ("a3", run_a3);
      ("a4", run_a4); ("a5", run_a5); ("soak", run_soak); ("micro", run_micro) ]
  in
  match List.assoc_opt which all with
  | Some f -> f ()
  | None ->
      if which = "all" then List.iter (fun (_, f) -> f ()) all
      else begin
        Printf.eprintf "unknown benchmark %s (use: %s | all)\n" which
          (String.concat " | " (List.map fst all));
        exit 1
      end
