(* gsq — the Gigascope command line.

     gsq run query.gsql [--rate 100] [--duration 2] [--seed 42] [--pcap in.pcap]
         [--stats] [--trace] [--metrics-out m.json] [--log-level info]
         compile and run GSQL over synthetic traffic or a capture file,
         printing the output stream(s); observability flags render the
         runtime metrics registry after the run

     gsq serve query.gsql --listen unix:/tmp/gsq.sock --listen :5577
         run as a stream-database server: remote clients list the
         installed queries and subscribe to their output streams over
         the binary wire protocol

     gsq tap ADDR [QUERY] [--format csv|json]
         subscribe to a query on a running gsq server and print its
         stream; without QUERY, list what the server offers

     gsq top ADDR [--interval 2] [--once]
         refreshing per-query view of a server's --http endpoint:
         throughput, queue depths, drops and ingest→deliver latency
         percentiles, computed from metrics-registry deltas

     gsq explain query.gsql
         show the logical plan, the LFTA/HFTA split, imputed ordering
         properties, NIC hints and generated pseudo-C

     gsq gen out.pcap [--rate 100] [--duration 2] [--seed 42]
         write synthetic traffic to a pcap file

     gsq cluster topo.conf query.gsql [--rows N] [--distinct K]
         run a distributed aggregation tree on loopback: the topology
         file's edge nodes sub-aggregate synthetic feeds, interior
         nodes merge partial aggregates (sketch states included), the
         root completes the query and prints it

     gsq e1
         run the Section-4 performance experiment
*)

module E = Gigascope.Engine
module Rts = Gigascope_rts
module Value = Rts.Value
module Metrics = Gigascope_obs.Metrics
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- shared options ---- *)

let rate =
  Arg.(value & opt float 100.0 & info ["rate"] ~docv:"MBPS" ~doc:"Offered load in Mbit/s.")

let duration =
  Arg.(value & opt float 2.0 & info ["duration"] ~docv:"SEC" ~doc:"Seconds of traffic.")

let seed = Arg.(value & opt int 42 & info ["seed"] ~docv:"N" ~doc:"Generator seed.")

let pcap_in =
  Arg.(
    value
    & opt (some string) None
    & info ["pcap"] ~docv:"FILE" ~doc:"Replay this capture file instead of generating traffic.")

let iface =
  Arg.(
    value & opt string "eth0"
    & info ["iface"] ~docv:"NAME" ~doc:"Interface name queries refer to (default eth0).")

let max_rows =
  Arg.(
    value & opt int 20
    & info ["max-rows"] ~docv:"N" ~doc:"Print at most N tuples per output stream.")

let stats =
  Arg.(
    value & flag
    & info ["stats"]
        ~doc:
          "Render the runtime metrics registry after the run (also on a failed or interrupted \
           run: whatever was measured up to that point).")

let trace =
  Arg.(
    value & flag
    & info ["trace"]
        ~doc:
          "Time every scheduler step and print an EXPLAIN-ANALYZE-style per-operator breakdown \
           (tuples, drops, cumulative service time, ns/tuple) after the run.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info ["metrics-out"] ~docv:"FILE"
        ~doc:
          "Write a metrics snapshot to FILE after the run (Prometheus text format when FILE \
           ends in .prom, JSON otherwise).")

let log_level =
  Arg.(
    value & opt string "warning"
    & info ["log-level"] ~docv:"LEVEL"
        ~doc:"Runtime log verbosity: quiet, app, error, warning, info or debug.")

let setup_logging level =
  Logs.set_reporter (Logs_fmt.reporter ());
  match Logs.level_of_string level with
  | Ok lvl -> Logs.set_level lvl
  | Error (`Msg m) ->
      prerr_endline ("bad --log-level: " ^ m);
      exit 2

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_metrics engine path =
  let snap = E.metrics_snapshot engine in
  let text =
    if Filename.check_suffix path ".prom" then Metrics.to_prometheus snap
    else Metrics.to_json snap
  in
  match
    let oc = open_out path in
    output_string oc text;
    close_out oc
  with
  | () -> Printf.printf "-- metrics written to %s\n" path
  | exception Sys_error e -> prerr_endline ("cannot write metrics: " ^ e)

let sessions =
  Arg.(
    value & flag
    & info ["sessions"]
        ~doc:
          "Additionally register a TCP-session stream named $(b,sessions) extracted from the \
           same traffic, for queries that aggregate whole connections.")

let query_file = Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY.gsql")

let parallel =
  Arg.(
    value & opt int 1
    & info ["parallel"] ~docv:"N"
        ~doc:
          "Run the query network on N OCaml domains: HFTAs on worker domains, sources and \
           LFTAs on the packet-path domain. 1 (the default) is single-threaded; the \
           $(b,GIGASCOPE_PARALLEL) environment variable sets the default. Output is \
           byte-identical to a single-threaded run.")

let batch =
  Arg.(
    value & opt int 1
    & info ["batch"] ~docv:"N"
        ~doc:
          "Batch the data plane: tuples move through channels, operators and the scheduler \
           in runs of up to N (control items seal a batch early, so punctuation keeps its \
           stream position). 1 (the default) is tuple-at-a-time; the $(b,GIGASCOPE_BATCH) \
           environment variable sets the default. Output is byte-identical for every batch \
           size.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info ["shards"] ~docv:"N"
        ~doc:
          "Shard each query N ways: the LFTA chain is replicated per shard behind a \
           source-side hash partitioner and reunified through an order-preserving merge. \
           Combine with $(b,--parallel) to land the shards on distinct domains. 1 (the \
           default) is unsharded; the $(b,GIGASCOPE_SHARDS) environment variable sets the \
           default. Output is byte-identical to an unsharded run; queries that cannot \
           shard run unsharded and $(b,--trace) reports why.")

let latency_sample_arg =
  Arg.(
    value & opt int 64
    & info ["latency-sample"] ~docv:"N"
        ~doc:
          "Stamp every Nth source tuple with its ingest time and record ingest-to-deliver \
           latency histograms, per query, under $(b,rts.latency.*) (and $(b,net.latency.*) \
           on a server). Unsampled tuples carry no stamp and cost nothing; 0 disables \
           sampling entirely. The percentiles surface through $(b,--stats), \
           $(b,--metrics-out), the $(b,--http) endpoint and $(b,gsq top).")

let placement =
  Arg.(
    value
    & opt (list (pair ~sep:'=' string int)) []
    & info ["placement"] ~docv:"NODE=DOM,..."
        ~doc:
          "Pin named query nodes to execution domains (e.g. \
           $(b,--placement total=1,volume=2)), overriding the automatic pipeline-stage \
           HFTA placement. A placement whose domain graph is cyclic is rejected \
           (bounded cross-domain channels would deadlock). Only meaningful with \
           $(b,--parallel).")

let inject =
  Arg.(
    value & opt (some string) None
    & info ["inject"] ~docv:"SPEC"
        ~doc:
          "Install a deterministic fault plan before the run (e.g.            $(b,seed=7,crash=total:3,torn=2)) — see the failure-model documentation for the            clause grammar. Also settable via $(b,GIGASCOPE_FAULTS). Same spec, same seed:            same faults, every run.")

let supervise_arg =
  Arg.(
    value
    & opt (some string) None
    & info ["supervise"] ~docv:"POLICY"
        ~doc:
          "Crash policy for query nodes: $(b,fail_fast) (default; the run stops with an            error naming the node), $(b,isolate) (poison only the crashing subtree —            downstream sees an explicit error marker and terminates), or $(b,restart)            (restart stateless operators in place, with a capped budget).            $(b,GIGASCOPE_SUPERVISE) sets the default. An unknown POLICY warns and falls            back to the default, matching the env knob.")

(* Every other knob (GIGASCOPE_PARALLEL/BATCH/SHARDS and their flags)
   degrades a malformed value to the default with a warning; --supervise
   used to be the one hard error. Keep the CLI consistent with the env
   knob: warn loudly, run with the default policy. *)
let resolve_supervise = function
  | None -> None
  | Some s -> (
      match Rts.Supervisor.policy_of_string s with
      | Ok p -> Some p
      | Error e ->
          Printf.eprintf "warning: ignoring --supervise: %s; using the default policy\n%!" e;
          None)

let allow_unbounded =
  Arg.(
    value & flag
    & info ["allow-unbounded"]
        ~doc:
          "Admit queries the memory certifier cannot bound (they install with a logged            warning naming the operator instead of being rejected). By default $(b,gsq run)            and $(b,gsq serve) refuse any plan without a finite state bound;            $(b,GIGASCOPE_ADMIT) overrides the default stance.")

(* CLI admission stance: the flag wins; otherwise an explicitly set
   GIGASCOPE_ADMIT decides (Engine.create reads it); otherwise reject —
   a server admitting arbitrary GSQL should not accept a plan whose
   state grows without bound. *)
let resolve_admit allow_unbounded =
  if allow_unbounded then Some E.Admit_warn
  else
    match Sys.getenv_opt "GIGASCOPE_ADMIT" with
    | Some s when String.trim s <> "" -> None
    | _ -> Some E.Admit_reject

let watchdog_arg =
  Arg.(
    value
    & opt (some float) None
    & info ["watchdog"] ~docv:"SLACK"
        ~doc:
          "Arm the state watchdog: a query node found holding more than its certified            memory bound times SLACK (>= 1.0) is treated as crashed — the loss is announced            downstream as a gap marker and the $(b,--supervise) policy applies. 0 disables            (the default); $(b,GIGASCOPE_WATCHDOG) sets the default.")

let shed_arg =
  Arg.(
    value & opt (some float) None
    & info ["shed"] ~docv:"FRAC"
        ~doc:
          "Source-side load shedding: while any subscriber channel sits at or above this            fraction of its capacity (in (0,1]), sources discard incoming tuples, counting            them under rts.shed.* and announcing the loss downstream as a gap marker.            $(b,GIGASCOPE_SHED) sets the default.")

let install_inject inject =
  match inject with
  | None -> ()
  | Some spec -> (
      match Rts.Faults.parse spec with
      | Ok plan -> Rts.Faults.install plan
      | Error e ->
          prerr_endline ("--inject: " ^ e);
          exit 2)

(* ---- run ---- *)

(* Engine with traffic plumbing shared by `run` and `serve`: a pcap
   replay or generator interface, plus the optional session stream. *)
let setup_engine ~pcap_in ~iface ~gen_cfg ~sessions ~shards ~admit =
  let engine = E.create ?shards:(if shards > 1 then Some shards else None) ?admit () in
  (match pcap_in with
  | Some path -> (
      match E.add_pcap_interface engine ~name:iface path with
      | Ok () -> ()
      | Error e ->
          prerr_endline e;
          exit 1)
  | None -> E.add_generator_interface engine ~name:iface gen_cfg);
  if sessions then begin
    let feed =
      match pcap_in with
      | Some path -> (
          match Gigascope_packet.Pcap.read_file path with
          | Ok (_, records) ->
              let remaining =
                ref
                  (List.filter_map
                     (fun (r : Gigascope_packet.Pcap.record) ->
                       Result.to_option
                         (Gigascope_packet.Packet.decode ~ts:r.Gigascope_packet.Pcap.ts
                            r.Gigascope_packet.Pcap.data))
                     records)
              in
              fun () ->
                (match !remaining with
                | [] -> None
                | p :: rest ->
                    remaining := rest;
                    Some p)
          | Error e ->
              prerr_endline e;
              exit 1)
      | None ->
          let g = Gigascope_traffic.Gen.create gen_cfg in
          fun () -> Gigascope_traffic.Gen.next g
    in
    match E.add_session_source engine ~name:"sessions" ~feed () with
    | Ok () -> ()
    | Error e ->
        prerr_endline e;
        exit 1
  end;
  engine

let do_run query_file rate duration seed pcap_in iface max_rows sessions show_stats trace
    metrics_out log_level parallel placement batch shards latency_sample inject supervise
    shed allow_unbounded watchdog =
  setup_logging log_level;
  install_inject inject;
  let supervise = resolve_supervise supervise in
  let text = read_file query_file in
  let gen_cfg = { Gigascope_traffic.Gen.default with rate_mbps = rate; duration; seed } in
  let engine =
    setup_engine ~pcap_in ~iface ~gen_cfg ~sessions ~shards ~admit:(resolve_admit allow_unbounded)
  in
  match E.install_program engine text with
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
  | Ok instances ->
      let printed = Hashtbl.create 8 in
      (* with --parallel, each query's callback runs on the domain hosting
         its output node; the shared table and stdout need the lock *)
      let print_mu = Mutex.create () in
      List.iter
        (fun (inst : Gigascope_gsql.Codegen.instance) ->
          let name = inst.Gigascope_gsql.Codegen.inst_name in
          Result.get_ok
            (E.on_tuple engine name (fun tuple ->
                 Mutex.lock print_mu;
                 let n = Option.value (Hashtbl.find_opt printed name) ~default:0 in
                 Hashtbl.replace printed name (n + 1);
                 if n < max_rows then begin
                   Printf.printf "%s: " name;
                   Array.iteri
                     (fun i v ->
                       if i > 0 then print_string ", ";
                       print_string (Value.to_string v))
                     tuple;
                   print_newline ()
                 end;
                 Mutex.unlock print_mu)))
        instances;
      (* Whatever was measured prints even on a failed or interrupted run:
         a drop-rate question answered by "the run crashed" is no answer. *)
      let epilogue () =
        Hashtbl.iter (fun name n -> Printf.printf "-- %s: %d tuples\n" name n) printed;
        if trace then print_string (E.trace_report engine);
        if show_stats then print_string (Metrics.render (E.metrics_snapshot engine));
        Option.iter (write_metrics engine) metrics_out
      in
      Sys.catch_break true;
      (match
         E.run engine ~trace
           ?parallel:(if parallel > 1 then Some parallel else None)
           ?batch:(if batch > 1 then Some batch else None)
           ~latency_sample ?supervise ?shed ?state_slack:watchdog ~placement ()
       with
      | Ok stats ->
          Printf.printf "-- done: %d rounds, %d heartbeats, %d drops\n"
            stats.Rts.Scheduler.rounds stats.Rts.Scheduler.heartbeat_requests
            (E.total_drops engine);
          epilogue ()
      | Error e ->
          prerr_endline ("run error: " ^ e);
          Printf.printf "-- run failed; statistics up to the failure:\n";
          epilogue ();
          exit 1
      | exception Sys.Break ->
          prerr_endline "interrupted";
          Printf.printf "-- interrupted; statistics up to the interrupt:\n";
          epilogue ();
          exit 130)

let run_cmd =
  let doc = "compile and run GSQL over synthetic traffic or a pcap file" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const do_run $ query_file $ rate $ duration $ seed $ pcap_in $ iface $ max_rows
      $ sessions $ stats $ trace $ metrics_out $ log_level $ parallel $ placement $ batch
      $ shards_arg $ latency_sample_arg $ inject $ supervise_arg $ shed_arg $ allow_unbounded
      $ watchdog_arg)

(* ---- serve ---- *)

module Server = Gigascope_net.Server
module Client = Gigascope_net.Client
module Addr = Gigascope_net.Addr
module Http = Gigascope_net.Http

let listen_addrs =
  Arg.(
    non_empty & opt_all string []
    & info ["listen"] ~docv:"ADDR"
        ~doc:
          "Accept subscribers on ADDR: $(b,unix:/path.sock) or $(b,host:port) ($(b,:port) \
           for every interface, port 0 for a kernel-chosen port). Repeatable.")

let policy_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Server.policy_of_string s) in
  let print fmt p = Format.pp_print_string fmt (Server.policy_to_string p) in
  Arg.(
    value
    & opt (conv (parse, print)) Server.Drop_newest
    & info ["policy"] ~docv:"POLICY"
        ~doc:
          "Slow-consumer policy when a subscriber's egress queue fills: $(b,block) the \
           engine, $(b,drop) the newest tuples (default; drops are counted under \
           net.subscriber.drops), or $(b,disconnect) the subscriber.")

let egress =
  Arg.(
    value & opt int 4096
    & info ["egress"] ~docv:"N" ~doc:"Per-subscriber egress queue capacity in items.")

let wait_subscribers =
  Arg.(
    value & opt int 0
    & info ["wait-subscribers"] ~docv:"N"
        ~doc:"Hold the traffic until N subscribers have attached, then start the run.")

let heartbeat_arg =
  Arg.(
    value & opt float 0.0
    & info ["heartbeat"] ~docv:"SEC"
        ~doc:
          "Send liveness frames to every subscriber at this interval (0 disables). A            subscriber with an idle timeout can then tell a quiet query from a dead            server.")

let http_addr =
  Arg.(
    value
    & opt (some string) None
    & info ["http"] ~docv:"ADDR"
        ~doc:
          "Serve a read-only observability endpoint on ADDR ($(b,unix:/path.sock) or \
           $(b,host:port)): $(b,/metrics) is the registry in Prometheus text format, \
           $(b,/stats) the same snapshot as JSON, $(b,/queries) the installed streams as \
           JSON. $(b,gsq top) and a Prometheus scraper read this endpoint.")

(* What /queries serves: the same listing the wire protocol's List request
   answers, as JSON for HTTP consumers. *)
let queries_json engine =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i node ->
      if i > 0 then Buffer.add_char buf ',';
      let kind =
        match Rts.Node.kind node with
        | Rts.Node.Source -> "source"
        | Rts.Node.Lfta -> "lfta"
        | Rts.Node.Hfta -> "hfta"
      in
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"kind\":\"%s\",\"schema\":\"%s\"}"
           (json_escape (Rts.Node.name node))
           kind
           (json_escape
              (Format.asprintf "%a" Rts.Schema.pp (Rts.Node.schema node)))))
    (Rts.Manager.nodes (E.manager engine));
  Buffer.add_char buf ']';
  Buffer.contents buf

let ingests =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string string) []
    & info ["ingest"] ~docv:"NAME=PROTO"
        ~doc:
          "Register a network-fed source stream NAME with the schema of protocol PROTO \
           (see $(b,gsq catalog)); remote publishers feed it with $(b,Publish NAME). \
           Repeatable.")

let do_serve query_file rate duration seed pcap_in iface sessions show_stats trace
    metrics_out log_level parallel placement batch shards latency_sample listen_addrs policy
    egress wait_subscribers ingests heartbeat http_addr inject supervise shed allow_unbounded
    watchdog =
  setup_logging log_level;
  install_inject inject;
  let supervise = resolve_supervise supervise in
  let text = read_file query_file in
  let gen_cfg = { Gigascope_traffic.Gen.default with rate_mbps = rate; duration; seed } in
  let engine =
    setup_engine ~pcap_in ~iface ~gen_cfg ~sessions ~shards ~admit:(resolve_admit allow_unbounded)
  in
  let server =
    Server.create ~policy ~egress_capacity:egress
      ?heartbeat:(if heartbeat > 0.0 then Some heartbeat else None)
      engine
  in
  List.iter
    (fun (name, proto) ->
      match Gigascope_gsql.Catalog.find_protocol (E.catalog engine) proto with
      | None ->
          prerr_endline ("unknown protocol for --ingest: " ^ proto);
          exit 1
      | Some p -> (
          match
            Server.add_ingest server ~name ~schema:p.Gigascope_gsql.Catalog.schema ()
          with
          | Ok () -> ()
          | Error e ->
              prerr_endline ("--ingest " ^ name ^ ": " ^ e);
              exit 1))
    ingests;
  (match E.install_program engine text with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1);
  List.iter
    (fun addr_s ->
      match Result.bind (Addr.of_string addr_s) (Server.listen server) with
      | Ok bound -> Printf.printf "-- listening on %s\n%!" (Addr.to_string bound)
      | Error e ->
          prerr_endline ("listen " ^ addr_s ^ ": " ^ e);
          Server.stop server;
          exit 1)
    listen_addrs;
  let http =
    match http_addr with
    | None -> None
    | Some addr_s -> (
        let handler ~path =
          match path with
          | "/metrics" ->
              Some
                ( "text/plain; version=0.0.4; charset=utf-8",
                  Metrics.to_prometheus (E.metrics_snapshot engine) )
          | "/stats" -> Some ("application/json", Metrics.to_json (E.metrics_snapshot engine))
          | "/queries" -> Some ("application/json", queries_json engine)
          | _ -> None
        in
        let h = Http.create ~handler in
        match Result.bind (Addr.of_string addr_s) (Http.listen h) with
        | Ok bound ->
            Printf.printf "-- http on %s\n%!" (Addr.to_string bound);
            Some h
        | Error e ->
            prerr_endline ("http " ^ addr_s ^ ": " ^ e);
            Server.stop server;
            exit 1)
  in
  Sys.catch_break true;
  let epilogue () =
    if trace then print_string (E.trace_report engine);
    if show_stats then print_string (Metrics.render (E.metrics_snapshot engine));
    Option.iter (write_metrics engine) metrics_out
  in
  let finish code =
    (* A second Ctrl-C during the drain must not skip the epilogue: whoever
       asked for --stats or --metrics-out still gets whatever was measured. *)
    (match Server.drain server with
    | true -> ()
    | false -> Logs.warn (fun m -> m "timed out waiting for subscribers to drain")
    | exception Sys.Break -> prerr_endline "interrupted again; not waiting for drain");
    Server.stop server;
    Option.iter Http.stop http;
    epilogue ();
    exit code
  in
  (try
     while Server.subscriber_count server < wait_subscribers do
       Thread.delay 0.02
     done
   with Sys.Break ->
     prerr_endline "interrupted";
     finish 130);
  match
    E.run engine ~trace
      ?parallel:(if parallel > 1 then Some parallel else None)
      ?batch:(if batch > 1 then Some batch else None)
      ~latency_sample ?supervise ?shed ?state_slack:watchdog ~placement ()
  with
  | Ok stats ->
      Printf.printf "-- done: %d rounds, %d heartbeats, %d drops\n%!"
        stats.Rts.Scheduler.rounds stats.Rts.Scheduler.heartbeat_requests
        (E.total_drops engine);
      finish 0
  | Error e ->
      prerr_endline ("run error: " ^ e);
      finish 1
  | exception Sys.Break ->
      prerr_endline "interrupted";
      finish 130

let serve_cmd =
  let doc = "run as a stream-database server: remote clients subscribe over the wire" in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const do_serve $ query_file $ rate $ duration $ seed $ pcap_in $ iface $ sessions
      $ stats $ trace $ metrics_out $ log_level $ parallel $ placement $ batch $ shards_arg
      $ latency_sample_arg $ listen_addrs $ policy_arg $ egress $ wait_subscribers $ ingests
      $ heartbeat_arg $ http_addr $ inject $ supervise_arg $ shed_arg $ allow_unbounded
      $ watchdog_arg)

(* ---- tap ---- *)

let json_of_value = function
  | Value.Null -> "null"
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
      else if Float.is_finite f then Printf.sprintf "%.17g" f
      else "null" (* nan/inf have no JSON spelling *)
  | Value.Str s -> "\"" ^ json_escape s ^ "\""
  | (Value.Ip _ | Value.Sketch _) as v -> "\"" ^ json_escape (Value.to_string v) ^ "\""

let tap_addr = Arg.(required & pos 0 (some string) None & info [] ~docv:"ADDR")

let tap_query = Arg.(value & pos 1 (some string) None & info [] ~docv:"QUERY")

let tap_format =
  Arg.(
    value
    & opt (enum [("csv", `Csv); ("json", `Json)]) `Csv
    & info ["format"] ~docv:"FMT" ~doc:"Output format: $(b,csv) (default) or $(b,json).")

let tap_max_rows =
  Arg.(
    value & opt int 0
    & info ["max-rows"] ~docv:"N" ~doc:"Stop after printing N tuples (0 = unlimited).")

let tap_reconnect =
  Arg.(
    value & opt int 0
    & info ["reconnect"] ~docv:"N"
        ~doc:
          "Self-heal a lost subscription: redial up to N times with exponential backoff            and resume from the last delivered tuple (missed tuples arrive as an explicit            gap marker). 0 (default) fails on the first connection loss.")

let tap_idle_timeout =
  Arg.(
    value & opt float 0.0
    & info ["idle-timeout"] ~docv:"SEC"
        ~doc:
          "Treat SEC seconds without any frame (data or heartbeat) as a dead connection            instead of waiting forever. Pair with the server's $(b,--heartbeat), using a            timeout of several heartbeat intervals.")

let do_tap addr_s query format max_rows log_level reconnect_n idle_timeout =
  setup_logging log_level;
  let fail e =
    prerr_endline ("tap: " ^ e);
    exit 1
  in
  let addr = match Addr.of_string addr_s with Ok a -> a | Error e -> fail e in
  let client =
    match
      Client.connect
        ?reconnect:
          (if reconnect_n > 0 then Some { Client.default_reconnect with attempts = reconnect_n }
           else None)
        ?idle_timeout:(if idle_timeout > 0.0 then Some idle_timeout else None)
        addr
    with
    | Ok c -> c
    | Error e -> fail e
  in
  match query with
  | None ->
      (match Client.list client with
      | Error e -> fail e
      | Ok qs ->
          List.iter
            (fun (q : Gigascope_net.Wire.query_info) ->
              Printf.printf "%-20s %-8s %s\n" q.Gigascope_net.Wire.q_name
                q.Gigascope_net.Wire.q_kind
                (Format.asprintf "%a" Rts.Schema.pp q.Gigascope_net.Wire.q_schema))
            qs);
      Client.close client
  | Some name -> (
      let schema = match Client.subscribe client name with Ok s -> s | Error e -> fail e in
      let fields = Rts.Schema.fields schema in
      let print_tuple tuple =
        match format with
        | `Csv ->
            Array.iteri
              (fun i v ->
                if i > 0 then print_string ",";
                print_string (Value.to_string v))
              tuple;
            print_newline ()
        | `Json ->
            print_char '{';
            Array.iteri
              (fun i v ->
                if i > 0 then print_string ", ";
                let fname =
                  if i < Array.length fields then fields.(i).Rts.Schema.name
                  else Printf.sprintf "f%d" i
                in
                Printf.printf "\"%s\": %s" (json_escape fname) (json_of_value v))
              tuple;
            print_string "}\n"
      in
      if format = `Csv then begin
        Array.iteri
          (fun i (f : Rts.Schema.field) ->
            if i > 0 then print_string ",";
            print_string f.Rts.Schema.name)
          fields;
        print_newline ()
      end;
      let rows = ref 0 in
      let rec go () =
        if max_rows > 0 && !rows >= max_rows then ()
        else
          match Client.next client with
          | Ok None -> ()
          | Ok (Some (Rts.Item.Tuple tuple)) ->
              print_tuple tuple;
              incr rows;
              go ()
          | Ok (Some _) -> go () (* punctuation / flush: not rows *)
          | Error e ->
              Client.close client;
              fail e
      in
      Sys.catch_break true;
      (try go () with Sys.Break -> ());
      Client.close client;
      Printf.printf "-- %d tuples\n%!" !rows)

let tap_cmd =
  let doc = "subscribe to a query on a running gsq server and print its stream" in
  Cmd.v (Cmd.info "tap" ~doc)
    Term.(
      const do_tap $ tap_addr $ tap_query $ tap_format $ tap_max_rows $ log_level
      $ tap_reconnect $ tap_idle_timeout)

(* ---- top ---- *)

(* A one-shot HTTP/1.0 GET against a serve --http endpoint. Blocking
   Unix sockets are fine here: the endpoint answers and closes. *)
let http_get addr path =
  match Addr.to_sockaddr addr with
  | Error e -> Error e
  | Ok sa -> (
      let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
      let raw =
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            match
              Unix.connect fd sa;
              let req = Printf.sprintf "GET %s HTTP/1.0\r\nConnection: close\r\n\r\n" path in
              let rec send_all off =
                if off < String.length req then
                  send_all (off + Unix.write_substring fd req off (String.length req - off))
              in
              send_all 0;
              let buf = Buffer.create 4096 in
              let chunk = Bytes.create 4096 in
              let rec recv_all () =
                let n = Unix.read fd chunk 0 (Bytes.length chunk) in
                if n > 0 then begin
                  Buffer.add_subbytes buf chunk 0 n;
                  recv_all ()
                end
              in
              recv_all ();
              Buffer.contents buf
            with
            | raw -> Ok raw
            | exception Unix.Unix_error (e, fn, _) ->
                Error (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
      in
      match raw with
      | Error _ as e -> e
      | Ok raw -> (
          let len = String.length raw in
          let rec find i =
            if i + 3 >= len then None
            else if
              raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r' && raw.[i + 3] = '\n'
            then Some i
            else find (i + 1)
          in
          match find 0 with
          | None -> Error "malformed HTTP response"
          | Some i -> (
              let head = String.sub raw 0 i in
              let body = String.sub raw (i + 4) (len - i - 4) in
              let status =
                match String.index_opt head '\r' with
                | Some j -> String.sub head 0 j
                | None -> head
              in
              match String.split_on_char ' ' status with
              | _ :: "200" :: _ -> Ok body
              | _ :: code :: _ -> Error ("HTTP " ^ code ^ " for " ^ path)
              | _ -> Error ("bad status line: " ^ status))))

(* Pull every string value of [key] out of the /queries JSON, in document
   order. The endpoint is ours, so a targeted scan beats a JSON parser. *)
let json_string_fields key s =
  let pat = "\"" ^ key ^ "\":\"" in
  let plen = String.length pat and len = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i + plen <= len do
    if String.sub s !i plen = pat then begin
      let b = Buffer.create 16 in
      let j = ref (!i + plen) in
      let stop = ref false in
      while (not !stop) && !j < len do
        (match s.[!j] with
        | '\\' when !j + 1 < len ->
            incr j;
            Buffer.add_char b s.[!j]
        | '"' -> stop := true
        | c -> Buffer.add_char b c);
        incr j
      done;
      out := Buffer.contents b :: !out;
      i := !j
    end
    else incr i
  done;
  List.rev !out

let top_addr = Arg.(required & pos 0 (some string) None & info [] ~docv:"ADDR")

let top_interval =
  Arg.(
    value & opt float 2.0
    & info ["interval"] ~docv:"SEC" ~doc:"Seconds between refreshes (and the rate window).")

let top_once =
  Arg.(
    value & flag
    & info ["once"]
        ~doc:"Render a single frame (one rate window) and exit, without clearing the screen.")

let do_top addr_s interval once log_level =
  setup_logging log_level;
  let fail e =
    prerr_endline ("top: " ^ e);
    exit 1
  in
  let interval = if interval > 0.0 then interval else 2.0 in
  let addr = match Addr.of_string addr_s with Ok a -> a | Error e -> fail e in
  let fetch path = match http_get addr path with Ok b -> b | Error e -> fail e in
  let queries =
    let raw = fetch "/queries" in
    let names = json_string_fields "name" raw in
    let kinds = json_string_fields "kind" raw in
    List.mapi
      (fun i name -> (name, try List.nth kinds i with Failure _ -> "?"))
      names
  in
  let snap () =
    match Metrics.of_json (fetch "/stats") with
    | Ok s -> s
    | Error e -> fail ("bad /stats payload: " ^ e)
  in
  let counter s name =
    match Metrics.find s name with Some (Metrics.Counter n) -> n | _ -> 0
  in
  let gauge s name =
    match Metrics.find s name with Some (Metrics.Gauge g) -> g | _ -> 0.0
  in
  let hist s name =
    match Metrics.find s name with Some (Metrics.Histogram h) -> Some h | _ -> None
  in
  (* channel drops land on the consumer: "rts.chan.<src>-><dst>[...].drops" *)
  let drops_into s query =
    let marker = "->" ^ query in
    List.fold_left
      (fun acc (name, v) ->
        match v with
        | Metrics.Counter n
          when String.length name > 9
               && String.sub name 0 9 = "rts.chan."
               && Filename.check_suffix name ".drops" ->
            let mid = String.sub name 9 (String.length name - 9 - 6) in
            let mlen = String.length marker in
            let rec has i =
              if i + mlen > String.length mid then false
              else if String.sub mid i mlen = marker then
                (* full dest-name match: marker runs to the end of the
                   channel name or up to a dedup "#" suffix *)
                i + mlen = String.length mid || mid.[i + mlen] = '#'
              else has (i + 1)
            in
            if has 0 then acc + n else acc
        | _ -> acc)
      0 s
  in
  let pct h = (h.Metrics.h_p50 /. 1e6, h.Metrics.h_p90 /. 1e6, h.Metrics.h_p99 /. 1e6) in
  let render d =
    let buf = Buffer.create 2048 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    let t = Unix.localtime (Unix.gettimeofday ()) in
    line "gsq top — %s — %02d:%02d:%02d — window %.1fs" (Addr.to_string addr) t.Unix.tm_hour
      t.Unix.tm_min t.Unix.tm_sec interval;
    line "batch %.0f  domains %.0f  latency sample 1/%.0f  subscribers %.0f  connections %.0f"
      (Float.max 1.0 (gauge d "rts.scheduler.batch"))
      (Float.max 1.0 (gauge d "rts.scheduler.domains"))
      (gauge d "rts.scheduler.latency_sample")
      (gauge d "net.subscribers.active")
      (gauge d "net.connections.active");
    line "";
    line "%-24s %-7s %10s %7s %7s  %-22s %-22s" "QUERY" "KIND" "TUP/S" "BUF" "DROPS"
      "LAT p50/p90/p99 ms" "NET p50/p90/p99 ms";
    List.iter
      (fun (q, kind) ->
        let rate = float_of_int (counter d ("rts.node." ^ q ^ ".tuples_out")) /. interval in
        let buffered = gauge d ("rts.node." ^ q ^ ".buffered") in
        let drops = drops_into d q in
        let fmt_lat = function
          | Some h when h.Metrics.h_count > 0 ->
              let p50, p90, p99 = pct h in
              Printf.sprintf "%.2f/%.2f/%.2f" p50 p90 p99
          | _ -> "-"
        in
        line "%-24s %-7s %10.1f %7.0f %7d  %-22s %-22s" q kind rate buffered drops
          (fmt_lat (hist d ("rts.latency." ^ q)))
          (fmt_lat (hist d ("net.latency." ^ q))))
      queries;
    line "";
    line "net: gaps %d  sub drops %d  disconnects %d  heartbeats %d  ingest tup/s %.1f"
      (counter d "net.gaps")
      (counter d "net.subscriber.drops")
      (counter d "net.subscriber.disconnects")
      (counter d "net.heartbeats.sent")
      (float_of_int (counter d "net.ingest.tuples") /. interval);
    if not once then Buffer.add_string buf "\n(ctrl-c to quit)\n";
    if not once then print_string "\027[H\027[2J";
    print_string (Buffer.contents buf);
    flush stdout
  in
  Sys.catch_break true;
  try
    let before = ref (snap ()) in
    let continue = ref true in
    while !continue do
      Thread.delay interval;
      let after = snap () in
      render (Metrics.diff ~before:!before ~after);
      before := after;
      if once then continue := false
    done
  with Sys.Break -> print_newline ()

let top_cmd =
  let doc = "live per-query view of a running server: rates, queues, drops, latency" in
  Cmd.v (Cmd.info "top" ~doc) Term.(const do_top $ top_addr $ top_interval $ top_once $ log_level)

(* ---- explain ---- *)

let explain_memory =
  Arg.(
    value & flag
    & info ["memory"]
        ~doc:
          "Append the static memory certification: per-operator state bounds (group            tables, join windows, merge buffers, sketches) composed into a per-query bound,            or an UNBOUNDED diagnostic naming the operator, the missing ordering property            and the fixing rewrite.")

let do_explain query_file memory =
  let text = read_file query_file in
  let engine = E.create () in
  (* explain never pulls traffic, so an empty feed is enough to put the
     session-record schema in the catalog for queries FROM sessions *)
  ignore (E.add_session_source engine ~name:"sessions" ~feed:(fun () -> None) ());
  match Gigascope_gsql.Compile.compile_program (E.catalog engine) text with
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
  | Ok compiled ->
      List.iter (fun c -> print_endline (Gigascope_gsql.Compile.explain ~memory c)) compiled

let explain_cmd =
  let doc = "show plan, LFTA/HFTA split, ordering properties, memory bounds and pseudo-C" in
  Cmd.v (Cmd.info "explain" ~doc) Term.(const do_explain $ query_file $ explain_memory)

(* ---- gen ---- *)

let do_gen out rate duration seed =
  let gen =
    Gigascope_traffic.Gen.create
      { Gigascope_traffic.Gen.default with rate_mbps = rate; duration; seed }
  in
  let writer = Gigascope_packet.Pcap.open_writer out in
  let n = ref 0 in
  let rec go () =
    match Gigascope_traffic.Gen.next gen with
    | Some pkt ->
        Gigascope_packet.Pcap.write_packet writer pkt;
        incr n;
        go ()
    | None -> ()
  in
  go ();
  Gigascope_packet.Pcap.close_writer writer;
  Printf.printf "wrote %d packets to %s\n" !n out

let out_file = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.pcap")

let gen_cmd =
  let doc = "write synthetic traffic to a pcap capture file" in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const do_gen $ out_file $ rate $ duration $ seed)

(* ---- cluster ---- *)

module Cluster = Gigascope_cluster.Cluster
module Topology = Gigascope_cluster.Topology

(* Synthesize feed rows for one edge from the query's input schema:
   directional fields carry the epoch number (so GROUP BY time/1 closes
   groups), everything else is drawn from a [distinct]-bounded seeded
   space. A field literally named ipversion is pinned to 4, so the
   paper's idiomatic WHERE ipversion = 4 passes synthetic rows. *)
let synth_feed schema ~rows ~epochs ~distinct ~seed ~index =
  let fields = Rts.Schema.fields schema in
  let st = ref (((seed + 1) * 2654435761) + (index * 9973) + 1) in
  let rnd () =
    st := ((!st * 0x5851F42D4C957F2D) + 0x14057B7EF767814F) land max_int;
    (!st lsr 17) land 0xFFFFFF
  in
  let per_epoch = max 1 (rows / max 1 epochs) in
  let i = ref 0 in
  fun () ->
    if !i >= rows then None
    else begin
      let epoch = !i / per_epoch in
      incr i;
      Some
        (Array.map
           (fun (f : Rts.Schema.field) ->
             let directional =
               match f.Rts.Schema.order with
               | Rts.Order_prop.Strict _ | Rts.Order_prop.Monotone _
               | Rts.Order_prop.Banded _ ->
                   true
               | _ -> false
             in
             match (f.Rts.Schema.ty, directional) with
             | Rts.Ty.Int, true -> Value.Int epoch
             | Rts.Ty.Float, true -> Value.Float (float_of_int epoch)
             | Rts.Ty.Int, false ->
                 if String.lowercase_ascii f.Rts.Schema.name = "ipversion" then Value.Int 4
                 else Value.Int (rnd () mod distinct)
             | Rts.Ty.Ip, _ -> Value.Ip (0x0A000000 + (rnd () mod distinct))
             | Rts.Ty.Float, false -> Value.Float (float_of_int (rnd () mod distinct))
             | Rts.Ty.Str, _ -> Value.Str ("s" ^ string_of_int (rnd () mod distinct))
             | Rts.Ty.Bool, _ -> Value.Bool (rnd () mod 2 = 0)
             | Rts.Ty.Sketch, _ -> Value.Null)
           fields)
    end

let topology_file = Arg.(required & pos 0 (some string) None & info [] ~docv:"TOPOLOGY")

let cluster_query_file = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY.gsql")

let cluster_rows =
  Arg.(
    value & opt int 50_000
    & info ["rows"] ~docv:"N" ~doc:"Synthetic input rows fed to each edge node.")

let cluster_distinct =
  Arg.(
    value & opt int 10_000
    & info ["distinct"] ~docv:"K"
        ~doc:"Cardinality of each synthesized non-ordered field's value space.")

let cluster_epochs =
  Arg.(
    value & opt int 5
    & info ["epochs"] ~docv:"E" ~doc:"Epochs (distinct ordered-field values) per edge feed.")

let cluster_timeout =
  Arg.(
    value & opt float 60.0
    & info ["timeout"] ~docv:"SEC"
        ~doc:"Abort the whole tree if the run exceeds SEC seconds (the no-wedge guarantee).")

let do_cluster topo_path query_path rows distinct epochs seed timeout max_rows show_stats
    log_level =
  setup_logging log_level;
  let topo =
    match Topology.load topo_path with
    | Ok t -> t
    | Error e ->
        prerr_endline e;
        exit 1
  in
  let program = read_file query_path in
  let _, in_schema, out_schema =
    match Cluster.probe ~program with
    | Ok p -> p
    | Error e ->
        prerr_endline ("error: " ^ e);
        exit 1
  in
  let t =
    match
      Cluster.launch ~topo ~program
        ~feed:(fun ~edge:_ ~index -> synth_feed in_schema ~rows ~epochs ~distinct ~seed ~index)
        ()
    with
    | Ok t -> t
    | Error e ->
        prerr_endline ("error: " ^ e);
        exit 1
  in
  Printf.printf "-- cluster %s: %d nodes (%d edges, height %d), %d rows/edge\n%!"
    (Cluster.query_name t) (Topology.size topo)
    (List.length (Topology.leaves topo))
    (Topology.height topo) rows;
  let code =
    match Cluster.run ~timeout t with
    | Ok () -> 0
    | Error e ->
        prerr_endline ("run error: " ^ e);
        1
  in
  let names = Array.map (fun f -> f.Rts.Schema.name) (Rts.Schema.fields out_schema) in
  let shown = ref 0 and total = ref 0 in
  List.iter
    (function
      | Rts.Item.Tuple vs ->
          incr total;
          if max_rows = 0 || !shown < max_rows then begin
            incr shown;
            let cells =
              List.mapi
                (fun i v -> Printf.sprintf "\"%s\":%s" (json_escape names.(i)) (json_of_value v))
                (Array.to_list vs)
            in
            Printf.printf "{%s}\n" (String.concat "," cells)
          end
      | Rts.Item.Gap n -> Printf.printf "-- gap: %s tuples lost upstream\n"
            (if n < 0 then "unknown" else string_of_int n)
      | Rts.Item.Error e -> Printf.printf "-- upstream error: %s\n" e
      | _ -> ())
    (Cluster.results t);
  if max_rows > 0 && !total > !shown then
    Printf.printf "-- (%d more rows)\n" (!total - !shown);
  print_string (Cluster.report t);
  if show_stats then print_string (Metrics.render (Metrics.snapshot (Cluster.metrics t)));
  Cluster.shutdown t;
  exit code

let cluster_cmd =
  let doc =
    "run a distributed aggregation tree on loopback: edges sub-aggregate synthetic feeds, \
     interior nodes merge partials (sketches included), the root completes the query"
  in
  Cmd.v (Cmd.info "cluster" ~doc)
    Term.(
      const do_cluster $ topology_file $ cluster_query_file $ cluster_rows $ cluster_distinct
      $ cluster_epochs $ seed $ cluster_timeout $ max_rows $ stats $ log_level)

(* ---- catalog ---- *)

let do_catalog () =
  let engine = E.create () in
  let catalog = E.catalog engine in
  print_endline "-- Protocols (bind as interface.protocol in FROM) --";
  List.iter
    (fun name ->
      match Gigascope_gsql.Catalog.find_protocol catalog name with
      | Some p ->
          Printf.printf "%-10s %s
" name
            (Format.asprintf "%a" Rts.Schema.pp p.Gigascope_gsql.Catalog.schema)
      | None -> ())
    (Gigascope_gsql.Catalog.protocol_names catalog);
  print_endline "
-- Functions --";
  let funcs = Rts.Manager.functions (E.manager engine) in
  List.iter
    (fun name ->
      match Rts.Func.find funcs name with
      | Some f ->
          Printf.printf "%-18s (%s) -> %s%s%s%s
" f.Rts.Func.name
            (String.concat ", " (List.map Rts.Ty.to_string f.Rts.Func.arg_tys))
            (Rts.Ty.to_string f.Rts.Func.ret_ty)
            (if f.Rts.Func.partial then "  [partial]" else "")
            (if f.Rts.Func.handle_args <> [] then "  [pass-by-handle]" else "")
            (if f.Rts.Func.cost = Rts.Func.Expensive then "  [expensive: HFTA only]" else "")
      | None -> ())
    (Rts.Func.names funcs)

let catalog_cmd =
  let doc = "list the built-in protocols and the function library" in
  Cmd.v (Cmd.info "catalog" ~doc) Term.(const do_catalog $ const ())

(* ---- e1 ---- *)

let do_e1 () = Gigascope_sim.Experiment.print_summary (Gigascope_sim.Experiment.run ())

let e1_cmd =
  let doc = "run the Section-4 performance experiment (four capture configurations)" in
  Cmd.v (Cmd.info "e1" ~doc) Term.(const do_e1 $ const ())

let () =
  let doc = "Gigascope: a stream database for network applications" in
  let info = Cmd.info "gsq" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            serve_cmd;
            cluster_cmd;
            tap_cmd;
            top_cmd;
            explain_cmd;
            gen_cmd;
            catalog_cmd;
            e1_cmd;
          ]))
