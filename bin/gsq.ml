(* gsq — the Gigascope command line.

     gsq run query.gsql [--rate 100] [--duration 2] [--seed 42] [--pcap in.pcap]
         [--stats] [--trace] [--metrics-out m.json] [--log-level info]
         compile and run GSQL over synthetic traffic or a capture file,
         printing the output stream(s); observability flags render the
         runtime metrics registry after the run

     gsq explain query.gsql
         show the logical plan, the LFTA/HFTA split, imputed ordering
         properties, NIC hints and generated pseudo-C

     gsq gen out.pcap [--rate 100] [--duration 2] [--seed 42]
         write synthetic traffic to a pcap file

     gsq e1
         run the Section-4 performance experiment
*)

module E = Gigascope.Engine
module Rts = Gigascope_rts
module Value = Rts.Value
module Metrics = Gigascope_obs.Metrics
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- shared options ---- *)

let rate =
  Arg.(value & opt float 100.0 & info ["rate"] ~docv:"MBPS" ~doc:"Offered load in Mbit/s.")

let duration =
  Arg.(value & opt float 2.0 & info ["duration"] ~docv:"SEC" ~doc:"Seconds of traffic.")

let seed = Arg.(value & opt int 42 & info ["seed"] ~docv:"N" ~doc:"Generator seed.")

let pcap_in =
  Arg.(
    value
    & opt (some string) None
    & info ["pcap"] ~docv:"FILE" ~doc:"Replay this capture file instead of generating traffic.")

let iface =
  Arg.(
    value & opt string "eth0"
    & info ["iface"] ~docv:"NAME" ~doc:"Interface name queries refer to (default eth0).")

let max_rows =
  Arg.(
    value & opt int 20
    & info ["max-rows"] ~docv:"N" ~doc:"Print at most N tuples per output stream.")

let stats =
  Arg.(
    value & flag
    & info ["stats"]
        ~doc:
          "Render the runtime metrics registry after the run (also on a failed or interrupted \
           run: whatever was measured up to that point).")

let trace =
  Arg.(
    value & flag
    & info ["trace"]
        ~doc:
          "Time every scheduler step and print an EXPLAIN-ANALYZE-style per-operator breakdown \
           (tuples, drops, cumulative service time, ns/tuple) after the run.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info ["metrics-out"] ~docv:"FILE"
        ~doc:
          "Write a metrics snapshot to FILE after the run (Prometheus text format when FILE \
           ends in .prom, JSON otherwise).")

let log_level =
  Arg.(
    value & opt string "warning"
    & info ["log-level"] ~docv:"LEVEL"
        ~doc:"Runtime log verbosity: quiet, app, error, warning, info or debug.")

let setup_logging level =
  Logs.set_reporter (Logs_fmt.reporter ());
  match Logs.level_of_string level with
  | Ok lvl -> Logs.set_level lvl
  | Error (`Msg m) ->
      prerr_endline ("bad --log-level: " ^ m);
      exit 2

let write_metrics engine path =
  let snap = E.metrics_snapshot engine in
  let text =
    if Filename.check_suffix path ".prom" then Metrics.to_prometheus snap
    else Metrics.to_json snap
  in
  match
    let oc = open_out path in
    output_string oc text;
    close_out oc
  with
  | () -> Printf.printf "-- metrics written to %s\n" path
  | exception Sys_error e -> prerr_endline ("cannot write metrics: " ^ e)

let sessions =
  Arg.(
    value & flag
    & info ["sessions"]
        ~doc:
          "Additionally register a TCP-session stream named $(b,sessions) extracted from the \
           same traffic, for queries that aggregate whole connections.")

let query_file = Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY.gsql")

let parallel =
  Arg.(
    value & opt int 1
    & info ["parallel"] ~docv:"N"
        ~doc:
          "Run the query network on N OCaml domains: HFTAs on worker domains, sources and \
           LFTAs on the packet-path domain. 1 (the default) is single-threaded; the \
           $(b,GIGASCOPE_PARALLEL) environment variable sets the default. Output is \
           byte-identical to a single-threaded run.")

let batch =
  Arg.(
    value & opt int 1
    & info ["batch"] ~docv:"N"
        ~doc:
          "Batch the data plane: tuples move through channels, operators and the scheduler \
           in runs of up to N (control items seal a batch early, so punctuation keeps its \
           stream position). 1 (the default) is tuple-at-a-time; the $(b,GIGASCOPE_BATCH) \
           environment variable sets the default. Output is byte-identical for every batch \
           size.")

let placement =
  Arg.(
    value
    & opt (list (pair ~sep:'=' string int)) []
    & info ["placement"] ~docv:"NODE=DOM,..."
        ~doc:
          "Pin named query nodes to execution domains (e.g. \
           $(b,--placement total=1,volume=2)), overriding the automatic pipeline-stage \
           HFTA placement. A placement whose domain graph is cyclic is rejected \
           (bounded cross-domain channels would deadlock). Only meaningful with \
           $(b,--parallel).")

(* ---- run ---- *)

let do_run query_file rate duration seed pcap_in iface max_rows sessions show_stats trace
    metrics_out log_level parallel placement batch =
  setup_logging log_level;
  let text = read_file query_file in
  let engine = E.create () in
  let gen_cfg = { Gigascope_traffic.Gen.default with rate_mbps = rate; duration; seed } in
  (match pcap_in with
  | Some path -> (
      match E.add_pcap_interface engine ~name:iface path with
      | Ok () -> ()
      | Error e ->
          prerr_endline e;
          exit 1)
  | None -> E.add_generator_interface engine ~name:iface gen_cfg);
  if sessions then begin
    let feed =
      match pcap_in with
      | Some path -> (
          match Gigascope_packet.Pcap.read_file path with
          | Ok (_, records) ->
              let remaining =
                ref
                  (List.filter_map
                     (fun (r : Gigascope_packet.Pcap.record) ->
                       Result.to_option
                         (Gigascope_packet.Packet.decode ~ts:r.Gigascope_packet.Pcap.ts
                            r.Gigascope_packet.Pcap.data))
                     records)
              in
              fun () ->
                (match !remaining with
                | [] -> None
                | p :: rest ->
                    remaining := rest;
                    Some p)
          | Error e ->
              prerr_endline e;
              exit 1)
      | None ->
          let g = Gigascope_traffic.Gen.create gen_cfg in
          fun () -> Gigascope_traffic.Gen.next g
    in
    match E.add_session_source engine ~name:"sessions" ~feed () with
    | Ok () -> ()
    | Error e ->
        prerr_endline e;
        exit 1
  end;
  match E.install_program engine text with
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
  | Ok instances ->
      let printed = Hashtbl.create 8 in
      (* with --parallel, each query's callback runs on the domain hosting
         its output node; the shared table and stdout need the lock *)
      let print_mu = Mutex.create () in
      List.iter
        (fun (inst : Gigascope_gsql.Codegen.instance) ->
          let name = inst.Gigascope_gsql.Codegen.inst_name in
          Result.get_ok
            (E.on_tuple engine name (fun tuple ->
                 Mutex.lock print_mu;
                 let n = Option.value (Hashtbl.find_opt printed name) ~default:0 in
                 Hashtbl.replace printed name (n + 1);
                 if n < max_rows then begin
                   Printf.printf "%s: " name;
                   Array.iteri
                     (fun i v ->
                       if i > 0 then print_string ", ";
                       print_string (Value.to_string v))
                     tuple;
                   print_newline ()
                 end;
                 Mutex.unlock print_mu)))
        instances;
      (* Whatever was measured prints even on a failed or interrupted run:
         a drop-rate question answered by "the run crashed" is no answer. *)
      let epilogue () =
        Hashtbl.iter (fun name n -> Printf.printf "-- %s: %d tuples\n" name n) printed;
        if trace then print_string (E.trace_report engine);
        if show_stats then print_string (Metrics.render (E.metrics_snapshot engine));
        Option.iter (write_metrics engine) metrics_out
      in
      Sys.catch_break true;
      (match
         E.run engine ~trace
           ?parallel:(if parallel > 1 then Some parallel else None)
           ?batch:(if batch > 1 then Some batch else None)
           ~placement ()
       with
      | Ok stats ->
          Printf.printf "-- done: %d rounds, %d heartbeats, %d drops\n"
            stats.Rts.Scheduler.rounds stats.Rts.Scheduler.heartbeat_requests
            (E.total_drops engine);
          epilogue ()
      | Error e ->
          prerr_endline ("run error: " ^ e);
          Printf.printf "-- run failed; statistics up to the failure:\n";
          epilogue ();
          exit 1
      | exception Sys.Break ->
          prerr_endline "interrupted";
          Printf.printf "-- interrupted; statistics up to the interrupt:\n";
          epilogue ();
          exit 130)

let run_cmd =
  let doc = "compile and run GSQL over synthetic traffic or a pcap file" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const do_run $ query_file $ rate $ duration $ seed $ pcap_in $ iface $ max_rows
      $ sessions $ stats $ trace $ metrics_out $ log_level $ parallel $ placement $ batch)

(* ---- explain ---- *)

let do_explain query_file =
  let text = read_file query_file in
  let engine = E.create () in
  match Gigascope_gsql.Compile.compile_program (E.catalog engine) text with
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
  | Ok compiled ->
      List.iter (fun c -> print_endline (Gigascope_gsql.Compile.explain c)) compiled

let explain_cmd =
  let doc = "show plan, LFTA/HFTA split, ordering properties and pseudo-C" in
  Cmd.v (Cmd.info "explain" ~doc) Term.(const do_explain $ query_file)

(* ---- gen ---- *)

let do_gen out rate duration seed =
  let gen =
    Gigascope_traffic.Gen.create
      { Gigascope_traffic.Gen.default with rate_mbps = rate; duration; seed }
  in
  let writer = Gigascope_packet.Pcap.open_writer out in
  let n = ref 0 in
  let rec go () =
    match Gigascope_traffic.Gen.next gen with
    | Some pkt ->
        Gigascope_packet.Pcap.write_packet writer pkt;
        incr n;
        go ()
    | None -> ()
  in
  go ();
  Gigascope_packet.Pcap.close_writer writer;
  Printf.printf "wrote %d packets to %s\n" !n out

let out_file = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.pcap")

let gen_cmd =
  let doc = "write synthetic traffic to a pcap capture file" in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const do_gen $ out_file $ rate $ duration $ seed)

(* ---- catalog ---- *)

let do_catalog () =
  let engine = E.create () in
  let catalog = E.catalog engine in
  print_endline "-- Protocols (bind as interface.protocol in FROM) --";
  List.iter
    (fun name ->
      match Gigascope_gsql.Catalog.find_protocol catalog name with
      | Some p ->
          Printf.printf "%-10s %s
" name
            (Format.asprintf "%a" Rts.Schema.pp p.Gigascope_gsql.Catalog.schema)
      | None -> ())
    (Gigascope_gsql.Catalog.protocol_names catalog);
  print_endline "
-- Functions --";
  let funcs = Rts.Manager.functions (E.manager engine) in
  List.iter
    (fun name ->
      match Rts.Func.find funcs name with
      | Some f ->
          Printf.printf "%-18s (%s) -> %s%s%s%s
" f.Rts.Func.name
            (String.concat ", " (List.map Rts.Ty.to_string f.Rts.Func.arg_tys))
            (Rts.Ty.to_string f.Rts.Func.ret_ty)
            (if f.Rts.Func.partial then "  [partial]" else "")
            (if f.Rts.Func.handle_args <> [] then "  [pass-by-handle]" else "")
            (if f.Rts.Func.cost = Rts.Func.Expensive then "  [expensive: HFTA only]" else "")
      | None -> ())
    (Rts.Func.names funcs)

let catalog_cmd =
  let doc = "list the built-in protocols and the function library" in
  Cmd.v (Cmd.info "catalog" ~doc) Term.(const do_catalog $ const ())

(* ---- e1 ---- *)

let do_e1 () = Gigascope_sim.Experiment.print_summary (Gigascope_sim.Experiment.run ())

let e1_cmd =
  let doc = "run the Section-4 performance experiment (four capture configurations)" in
  Cmd.v (Cmd.info "e1" ~doc) Term.(const do_e1 $ const ())

let () =
  let doc = "Gigascope: a stream database for network applications" in
  let info = Cmd.info "gsq" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [run_cmd; explain_cmd; gen_cmd; catalog_cmd; e1_cmd]))
