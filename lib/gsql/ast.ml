type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Not | Neg

type agg_kind =
  | Count
  | Sum
  | Min
  | Max
  | Avg
  | Approx_count_distinct of int option  (* HLL precision; None = default *)
  | Heavy_hitters of int option  (* how many counters to track; None = default *)
  | Cm_count

type expr =
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Bool_lit of bool
  | Ip_lit of int
  | Param of string
  | Ident of string
  | Qualified of string * string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Agg of agg_kind * expr option

type select_item = { expr : expr; alias : string option }

type source_ref = {
  interface : string option;
  stream : string;
  src_alias : string option;
  sub : select_query option;
}

and select_query = {
  select : select_item list;
  from : source_ref list;
  where : expr option;
  group_by : select_item list;
  having : expr option;
  sample : float option;
}

type merge_query = {
  merge_cols : (string * string) list;
  merge_from : source_ref list;
}

type query_body = Select_q of select_query | Merge_q of merge_query

type query_def = { props : (string * string) list; body : query_body }

type field_decl = { field_name : string; type_name : string; order_spec : order_spec option }

and order_spec =
  | Spec_increasing
  | Spec_decreasing
  | Spec_strictly_increasing
  | Spec_strictly_decreasing
  | Spec_nonrepeating
  | Spec_banded_increasing of float
  | Spec_banded_decreasing of float
  | Spec_increasing_in of string list

type protocol_def = { protocol_name : string; fields : field_decl list }

type decl = Protocol_decl of protocol_def | Query_decl of query_def

type program = decl list

let query_name def =
  List.fold_left
    (fun acc (k, v) -> if String.lowercase_ascii k = "query_name" then Some v else acc)
    None def.props

let binop_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "and"
  | Or -> "or"

let agg_string = function
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"
  | Approx_count_distinct _ -> "approx_count_distinct"
  | Heavy_hitters _ -> "heavy_hitters"
  | Cm_count -> "cm_count"

(* The optional trailing literal a sketch aggregate was called with. *)
let agg_param = function
  | Approx_count_distinct p | Heavy_hitters p -> p
  | Count | Sum | Min | Max | Avg | Cm_count -> None

let rec pp_expr fmt = function
  | Int_lit i -> Format.fprintf fmt "%d" i
  | Float_lit f -> Format.fprintf fmt "%g" f
  | Str_lit s -> Format.fprintf fmt "'%s'" s
  | Bool_lit b -> Format.fprintf fmt "%b" b
  | Ip_lit ip -> Format.fprintf fmt "%s" (Gigascope_packet.Ipaddr.to_string ip)
  | Param p -> Format.fprintf fmt "$%s" p
  | Ident s -> Format.fprintf fmt "%s" s
  | Qualified (a, f) -> Format.fprintf fmt "%s.%s" a f
  | Unop (Not, e) -> Format.fprintf fmt "(not %a)" pp_expr e
  | Unop (Neg, e) -> Format.fprintf fmt "(-%a)" pp_expr e
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_string op) pp_expr b
  | Call (f, args) ->
      Format.fprintf fmt "%s(" f;
      List.iteri
        (fun i a ->
          if i > 0 then Format.fprintf fmt ", ";
          pp_expr fmt a)
        args;
      Format.fprintf fmt ")"
  | Agg (k, None) -> Format.fprintf fmt "%s(*)" (agg_string k)
  | Agg (k, Some e) -> (
      match agg_param k with
      | Some p -> Format.fprintf fmt "%s(%a, %d)" (agg_string k) pp_expr e p
      | None -> Format.fprintf fmt "%s(%a)" (agg_string k) pp_expr e)

let expr_to_string e = Format.asprintf "%a" pp_expr e
