(* Static memory certification of compiled (split, possibly sharded)
   plans — the "bounded-memory criteria" gate from ROADMAP item 4.

   Every physical node gets a symbolic state bound derived from the
   ordering properties the analyzer imputed: open-group counts from the
   epoch key and its band, join buffers from the temporal window, merge
   reorder buffers from cross-input skew, sketch state from the sketch
   parameters. Bounds compose: a query's bound is the sum over its
   physical nodes, and an engine's bound is the sum over its queries
   (plus the bounded channels connecting them, which are sized from
   these very numbers at install time — see Engine).

   A node whose state cannot be bounded gets a structured [Unbounded]
   verdict naming the operator, the missing ordering property, and the
   rewrite that would fix it. The engine's admission control turns that
   verdict into a warning or a rejection; `gsq explain --memory` prints
   the whole derivation. *)

module Rts = Gigascope_rts
module Schema = Rts.Schema
module Ty = Rts.Ty
module Value = Rts.Value
module Order_prop = Rts.Order_prop

(* ---------------- the bound algebra ------------------------------------ *)

(* Bounds are symbolic so the report can say *why* a number is what it
   is; [eval] collapses them under a default cardinality model so the
   runtime can size channels and arm the watchdog with a concrete
   figure. *)
type expr =
  | Num of float
  | Card of string * float  (** named cardinality with its default estimate *)
  | Sum of expr list
  | Prod of expr list

let rec eval = function
  | Num f -> f
  | Card (_, d) -> d
  | Sum es -> List.fold_left (fun acc e -> acc +. eval e) 0.0 es
  | Prod es -> List.fold_left (fun acc e -> acc *. eval e) 1.0 es

let rec render = function
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f
  | Card (n, d) -> Printf.sprintf "|%s|≈%g" n d
  | Sum [] -> "0"
  | Sum [ e ] -> render e
  | Sum es -> "(" ^ String.concat " + " (List.map render es) ^ ")"
  | Prod [] -> "1"
  | Prod [ e ] -> render e
  | Prod es -> String.concat " × " (List.map render es)

(* The default cardinality model. Deliberately round numbers: these are
   sizing estimates, not promises — the watchdog multiplies them by a
   slack factor before treating an excursion as a fault. *)
let default_key_card = 4096.0
let default_rate = 4096.0 (* tuples per time-unit of an ordered attribute *)
let default_skew = 4096.0 (* cross-input reorder skew of a merge *)

(* ---------------- verdicts --------------------------------------------- *)

type unbounded = {
  u_operator : string;  (** physical node name *)
  u_reason : string;  (** the missing ordering property *)
  u_fix : string;  (** the rewrite that would bound it *)
}

type verdict = Finite of expr | Unbounded of unbounded

type node_cert = {
  cname : string;
  ckind : string;
  cstate : verdict;  (** resident tuples/groups/cells *)
  cburst : int;  (** worst-case tuples emitted in one step (flush/drain) *)
  cdetail : string;  (** one-line derivation *)
}

type t = {
  cquery : string;
  cnodes : node_cert list;
  ctotal : verdict;  (** sum of node states, or the first unbounded one *)
}

let diagnostic (u : unbounded) =
  Printf.sprintf "operator %s holds unbounded state: %s; fix: %s" u.u_operator u.u_reason
    u.u_fix

(* ---------------- per-operator derivation ------------------------------ *)

(* Sketch accumulators carry real state per group; everything else
   (count/sum/min/max/avg) is one cell. *)
let agg_cells (c : Plan.agg_call) =
  match c.Plan.kind with
  | Rts.Agg_fn.Sketch { sk; _ } -> (
      match sk with
      | Rts.Agg_fn.Distinct { precision } -> float_of_int (1 lsl precision)
      | Rts.Agg_fn.Heavy { k } -> float_of_int k
      | Rts.Agg_fn.Freq { eps; delta } ->
          Float.ceil (Float.exp 1.0 /. eps) *. Float.ceil (Float.log (1.0 /. delta)))
  | _ -> 1.0

let group_weight (a : Plan.agg_body) =
  Float.max 1.0 (List.fold_left (fun acc c -> acc +. agg_cells c) 0.0 a.Plan.aggs)

let key_card (e, name) =
  match Expr_ir.ty e with
  | Ty.Bool -> Num 2.0
  | _ -> Card (name, default_key_card)

let bounded_agg_expr (a : Plan.agg_body) ~epochs =
  let non_epoch =
    List.filteri (fun i _ -> a.Plan.epoch <> Some i) a.Plan.keys |> List.map key_card
  in
  let w = group_weight a in
  Prod ((Num epochs :: non_epoch) @ if w > 1.0 then [ Num w ] else [])

let clamp_burst f =
  if Float.is_finite f then max 1 (min (int_of_float f) (1 lsl 20)) else 1 lsl 20

let certify_agg ~pname ~table_bits (a : Plan.agg_body) =
  if table_bits > 0 then begin
    (* LFTA direct-mapped table: 2^bits slots, collisions evict — the
       paper's constant-state per-packet path. Bounded with or without
       an epoch key. *)
    let slots = float_of_int (1 lsl table_bits) in
    let w = group_weight a in
    let expr = if w > 1.0 then Prod [ Num slots; Num w ] else Num slots in
    ( Finite expr,
      clamp_burst slots,
      Printf.sprintf "direct-mapped table: 2^%d slots%s, evict-on-collision" table_bits
        (if w > 1.0 then Printf.sprintf " × %g sketch cells/group" w else "") )
  end
  else
    match a.Plan.epoch with
    | None ->
        ( Unbounded
            {
              u_operator = pname;
              u_reason =
                "no group key is a monotone (epoch) attribute, so no group ever closes \
                 before EOF and the group table grows with every distinct key";
              u_fix =
                "GROUP BY a bucketed ordered attribute (e.g. time/60), or declare the \
                 source field's ordering in the catalog (increasing/decreasing); flush-only \
                 use needs --allow-unbounded";
            },
          clamp_burst
            (eval (bounded_agg_expr a ~epochs:1.0)),
          "group table flushes at EOF only" )
    | Some ek ->
        (* Groups strictly behind frontier − band close; so at most
           1 + ⌈band⌉ epoch values are ever open at once, each holding
           the cross product of the non-epoch keys. *)
        let epochs = 1.0 +. Float.ceil a.Plan.epoch_band in
        let expr = bounded_agg_expr a ~epochs in
        let ekname = try snd (List.nth a.Plan.keys ek) with _ -> "epoch" in
        ( Finite expr,
          clamp_burst (eval expr),
          Printf.sprintf "open epochs ≤ %g (epoch key %s, band %g) × non-epoch key space"
            epochs ekname a.Plan.epoch_band )

let certify_join ~pname (j : Plan.join_body) =
  let lo = j.Plan.win_lo and hi = j.Plan.win_hi in
  if Float.is_finite lo && Float.is_finite hi then begin
    let span = hi -. lo in
    let left_name =
      (Schema.field_at (Plan.input_schema j.Plan.left) j.Plan.left_ord).Schema.name
    in
    let per_side span_term =
      Prod [ Card ("rate", default_rate); Num (span_term +. 1.0) ]
    in
    (* Each side buffers tuples within the window span of the opposite
       bound; Ordered_output additionally holds matches below the output
       watermark, which lags by at most the span as well. *)
    let sides = [ per_side span; per_side span ] in
    let held = if j.Plan.ordered_output then [ per_side span ] else [] in
    let expr = Sum (sides @ held) in
    ( Finite expr,
      clamp_burst (eval expr),
      Printf.sprintf "window [%g, %g] on %s: per-side buffer ≤ rate × (span %g + 1)%s" lo
        hi left_name span
        (if j.Plan.ordered_output then ", plus the ordered-output hold heap" else "") )
  end
  else
    let missing =
      match (Float.is_finite lo, Float.is_finite hi) with
      | false, false -> "neither a lower nor an upper"
      | false, true -> "no lower"
      | true, false -> "no upper"
      | true, true -> assert false
    in
    ( Unbounded
        {
          u_operator = pname;
          u_reason =
            Printf.sprintf
              "the join predicate puts %s bound on left.ord − right.ord, so purging never \
               retires buffered tuples (window [%g, %g])"
              missing lo hi;
          u_fix =
            "add window conjuncts on the ordered attributes of both streams, e.g. \
             L.time >= R.time - 1 AND L.time <= R.time + 1";
        },
      1 lsl 12,
      "windowless join: both side buffers grow without bound" )

let certify_merge (m : Plan.merge_body) =
  let n = List.length m.Plan.merge_inputs in
  let fname =
    (Schema.field_at (Plan.input_schema (List.hd m.Plan.merge_inputs)) m.Plan.merge_field)
      .Schema.name
  in
  let expr = Prod [ Num (float_of_int n); Card ("skew(" ^ fname ^ ")", default_skew) ] in
  ( Finite expr,
    clamp_burst (eval expr),
    Printf.sprintf
      "%d ordered inputs on %s: each queue drains at the next covering bound, so state is \
       bounded by the cross-input skew" n fname )

let certify_node (p : Split.phys_node) =
  let state, burst, detail, kind =
    match p.Split.pbody with
    | Plan.Select _ -> (Finite (Num 0.0), 1, "stateless filter/projection", "select")
    | Plan.Agg a ->
        let s, b, d = certify_agg ~pname:p.Split.pname ~table_bits:p.Split.ptable_bits a in
        (s, b, d, if p.Split.ptable_bits > 0 then "lfta-agg" else "agg")
    | Plan.Join j ->
        let s, b, d = certify_join ~pname:p.Split.pname j in
        (s, b, d, "join")
    | Plan.Merge m ->
        let s, b, d = certify_merge m in
        (s, b, d, "merge")
  in
  { cname = p.Split.pname; ckind = kind; cstate = state; cburst = burst; cdetail = detail }

(* ---------------- composition ------------------------------------------ *)

let certify (split : Split.t) =
  let nodes = List.map certify_node split.Split.phys in
  let total =
    match
      List.find_map
        (fun c -> match c.cstate with Unbounded u -> Some u | Finite _ -> None)
        nodes
    with
    | Some u -> Unbounded u
    | None ->
        Finite
          (Sum
             (List.filter_map
                (fun c ->
                  match c.cstate with
                  | Finite (Num 0.0) -> None
                  | Finite e -> Some e
                  | Unbounded _ -> None)
                nodes))
  in
  { cquery = split.Split.plan.Plan.name; cnodes = nodes; ctotal = total }

let finite t = match t.ctotal with Finite _ -> true | Unbounded _ -> false

let total_estimate t =
  match t.ctotal with Finite e -> Some (eval e) | Unbounded _ -> None

let unbounded_nodes t =
  List.filter_map
    (fun c -> match c.cstate with Unbounded u -> Some u | Finite _ -> None)
    t.cnodes

let node_bound t name =
  List.find_map
    (fun c ->
      if String.lowercase_ascii c.cname = String.lowercase_ascii name then
        match c.cstate with Finite e -> Some (eval e) | Unbounded _ -> None
      else None)
    t.cnodes

let node_unbounded t name =
  List.exists
    (fun c ->
      String.lowercase_ascii c.cname = String.lowercase_ascii name
      && match c.cstate with Unbounded _ -> true | Finite _ -> false)
    t.cnodes

let burst t name =
  match
    List.find_opt (fun c -> String.lowercase_ascii c.cname = String.lowercase_ascii name) t.cnodes
  with
  | Some c -> c.cburst
  | None -> 1

let query_burst t = List.fold_left (fun acc c -> max acc c.cburst) 1 t.cnodes

(* ---------------- reporting -------------------------------------------- *)

let report t =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "-- memory certification: %s --\n" t.cquery;
  List.iter
    (fun c ->
      match c.cstate with
      | Finite e ->
          Printf.bprintf buf "%-24s %-9s state ≤ %s (≈%.0f tuples)\n    %s\n" c.cname
            c.ckind (render e) (eval e) c.cdetail
      | Unbounded u ->
          Printf.bprintf buf "%-24s %-9s state UNBOUNDED\n    %s\n    fix: %s\n" c.cname
            c.ckind u.u_reason u.u_fix)
    t.cnodes;
  (match t.ctotal with
  | Finite e ->
      Printf.bprintf buf "query bound: %s ≈ %.0f resident tuples (channels are bounded \
                          rings sized from these bursts at install)\n"
        (render e) (eval e)
  | Unbounded u -> Printf.bprintf buf "query bound: UNBOUNDED — %s\n" (diagnostic u));
  Buffer.contents buf
