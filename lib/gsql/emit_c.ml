module Rts = Gigascope_rts
module Schema = Rts.Schema
module Ty = Rts.Ty
module Value = Rts.Value

let c_ty = function
  | Ty.Bool -> "int"
  | Ty.Int -> "long long"
  | Ty.Float -> "double"
  | Ty.Str -> "struct gs_string"
  | Ty.Ip -> "unsigned int"
  | Ty.Sketch -> "struct gs_sketch"

let c_ident name =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c else '_') name

let struct_of_schema buf ~name schema =
  Buffer.add_string buf (Printf.sprintf "struct %s {\n" (c_ident name));
  Array.iter
    (fun (f : Schema.field) ->
      Buffer.add_string buf (Printf.sprintf "  %s %s;\n" (c_ty f.Schema.ty) (c_ident f.Schema.name)))
    (Schema.fields schema);
  Buffer.add_string buf "};\n"

let c_value = function
  | Value.Null -> "GS_NULL"
  | Value.Bool b -> if b then "1" else "0"
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%g" f
  | Value.Str s -> Printf.sprintf "%S" s
  | Value.Ip ip -> Printf.sprintf "0x%08xU /* %s */" ip (Gigascope_packet.Ipaddr.to_string ip)
  (* sketch states have no literal syntax; they never appear as constants *)
  | Value.Sketch _ -> "GS_NULL /* sketch */"

let binop_c = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Band -> "&"
  | Ast.Bor -> "|"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "&&"
  | Ast.Or -> "||"

let rec c_expr ~in_schema e =
  match e with
  | Expr_ir.Const v -> c_value v
  | Expr_ir.Field (i, _) ->
      if i < Schema.arity in_schema then
        Printf.sprintf "in->%s" (c_ident (Schema.field_at in_schema i).Schema.name)
      else Printf.sprintf "in->f%d" i
  | Expr_ir.Param (p, _) -> Printf.sprintf "qparam_%s" (c_ident p)
  | Expr_ir.Unop (Ast.Not, a) -> Printf.sprintf "!(%s)" (c_expr ~in_schema a)
  | Expr_ir.Unop (Ast.Neg, a) -> Printf.sprintf "-(%s)" (c_expr ~in_schema a)
  | Expr_ir.Binop (op, a, b, _) ->
      Printf.sprintf "(%s %s %s)" (c_expr ~in_schema a) (binop_c op) (c_expr ~in_schema b)
  | Expr_ir.Call (f, args) ->
      Printf.sprintf "%s(%s)" (c_ident f.Rts.Func.name)
        (String.concat ", " (List.map (c_expr ~in_schema) args))

let emit_select buf ~node_name ~in_schema ~out_schema pred items =
  struct_of_schema buf ~name:(node_name ^ "_in") in_schema;
  struct_of_schema buf ~name:(node_name ^ "_out") out_schema;
  Buffer.add_string buf
    (Printf.sprintf
       "\nint %s_process(const struct %s_in *in, struct %s_out *out) {\n" (c_ident node_name)
       (c_ident node_name) (c_ident node_name));
  (match pred with
  | Some p -> Buffer.add_string buf (Printf.sprintf "  if (!%s) return GS_DROP;\n" (c_expr ~in_schema p))
  | None -> ());
  List.iteri
    (fun i (e, name) ->
      ignore i;
      Buffer.add_string buf (Printf.sprintf "  out->%s = %s;\n" (c_ident name) (c_expr ~in_schema e)))
    items;
  Buffer.add_string buf "  return GS_EMIT;\n}\n"

let emit_agg buf ~node_name ~lfta ~table_bits ~in_schema ~out_schema (a : Plan.agg_body) =
  struct_of_schema buf ~name:(node_name ^ "_in") in_schema;
  struct_of_schema buf ~name:(node_name ^ "_out") out_schema;
  Buffer.add_string buf (Printf.sprintf "\nstruct %s_group {\n" (c_ident node_name));
  List.iteri
    (fun i (k, name) ->
      ignore i;
      Buffer.add_string buf (Printf.sprintf "  %s key_%s;\n" (c_ty (Expr_ir.ty k)) (c_ident name)))
    a.Plan.keys;
  List.iter
    (fun (c : Plan.agg_call) ->
      Buffer.add_string buf (Printf.sprintf "  gs_acc_t acc_%s;\n" (c_ident c.Plan.agg_name)))
    a.Plan.aggs;
  Buffer.add_string buf "};\n";
  if lfta then
    Buffer.add_string buf
      (Printf.sprintf
         "\n/* direct-mapped table: %d slots; a collision ejects the old group\n   as a partial aggregate for the HFTA to combine */\nstatic struct %s_group table[1 << %d];\n"
         (1 lsl table_bits) (c_ident node_name) table_bits)
  else
    Buffer.add_string buf
      (Printf.sprintf "\nstatic gs_hashtable_t groups; /* closed on epoch advance */\n");
  Buffer.add_string buf
    (Printf.sprintf "\nint %s_process(const struct %s_in *in) {\n" (c_ident node_name)
       (c_ident node_name));
  (match a.Plan.agg_pred with
  | Some p -> Buffer.add_string buf (Printf.sprintf "  if (!%s) return GS_DROP;\n" (c_expr ~in_schema p))
  | None -> ());
  List.iteri
    (fun i (k, name) ->
      ignore i;
      Buffer.add_string buf
        (Printf.sprintf "  gs_key_%s = %s;\n" (c_ident name) (c_expr ~in_schema k)))
    a.Plan.keys;
  (match a.Plan.epoch with
  | Some ek ->
      let _, name = List.nth a.Plan.keys ek in
      Buffer.add_string buf
        (Printf.sprintf
           "  if (gs_key_%s > epoch_high_water) {\n    flush_closed_groups();  /* ordered group key: all passed groups are closed */\n    epoch_high_water = gs_key_%s;\n  }\n"
           (c_ident name) (c_ident name))
  | None -> ());
  List.iter
    (fun (c : Plan.agg_call) ->
      let arg = match c.Plan.arg with Some e -> c_expr ~in_schema e | None -> "1" in
      Buffer.add_string buf
        (Printf.sprintf "  gs_%s_step(&g->acc_%s, %s);\n"
           (Rts.Agg_fn.kind_to_string c.Plan.kind) (c_ident c.Plan.agg_name) arg))
    a.Plan.aggs;
  Buffer.add_string buf "  return GS_OK;\n}\n"

let emit_node (phys : Split.phys_node) =
  let buf = Buffer.create 1024 in
  let kind = match phys.Split.pkind with Rts.Node.Lfta -> "LFTA" | _ -> "HFTA" in
  Buffer.add_string buf
    (Printf.sprintf "/* ---- %s %s ---- */\n" kind phys.Split.pname);
  (match phys.Split.pnic with
  | Some { Split.nic_filter; snap_len } ->
      Buffer.add_string buf (Printf.sprintf "/* NIC: snap length %d bytes" snap_len);
      (match nic_filter with
      | Some f ->
          Buffer.add_string buf
            (Format.asprintf ";@ bpf filter: %a, %d instructions" Gigascope_bpf.Filter.pp f
               (Array.length (Gigascope_bpf.Filter.compile f)))
      | None -> Buffer.add_string buf "; no bpf filter (predicate not lowerable)");
      Buffer.add_string buf " */\n"
  | None -> ());
  (match phys.Split.pbody with
  | Plan.Select { sel_input; sel_pred; sel_items; _ } ->
      emit_select buf ~node_name:phys.Split.pname
        ~in_schema:(Plan.input_schema sel_input) ~out_schema:phys.Split.pschema sel_pred
        sel_items
  | Plan.Agg a ->
      emit_agg buf ~node_name:phys.Split.pname
        ~lfta:(phys.Split.pkind = Rts.Node.Lfta)
        ~table_bits:(max phys.Split.ptable_bits 1)
        ~in_schema:(Plan.input_schema a.Plan.agg_input) ~out_schema:phys.Split.pschema a
  | Plan.Join j ->
      struct_of_schema buf ~name:(phys.Split.pname ^ "_out") phys.Split.pschema;
      Buffer.add_string buf
        (Printf.sprintf
           "\n/* two-stream join, window [%g, %g] on ordered attrs (left #%d, right #%d);\n   buffered tuples are purged as the opposite bound advances */\n"
           j.Plan.win_lo j.Plan.win_hi j.Plan.left_ord j.Plan.right_ord)
  | Plan.Merge m ->
      Buffer.add_string buf
        (Printf.sprintf
           "/* order-preserving merge of %d inputs on attribute #%d;\n   blocked inputs are advanced by heartbeat punctuation */\n"
           (List.length m.Plan.merge_inputs) m.Plan.merge_field));
  Buffer.contents buf

let emit (split : Split.t) =
  String.concat "\n" (List.map emit_node split.Split.phys)
