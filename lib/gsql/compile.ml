type compiled = { plan : Plan.t; split : Split.t; helpers : compiled list }

let ( let* ) = Result.bind

let prop_int props key =
  List.fold_left
    (fun acc (k, v) ->
      if String.lowercase_ascii k = key then int_of_string_opt v else acc)
    None props

(* Hoist inline FROM subqueries into standalone named queries compiled
   before their parent ("supporting subqueries in the FROM clause requires
   only an update of the parser"): each (SELECT ...) becomes the query
   _sub<N>_<parent>, and the parent reads it by name. *)
let hoist_subqueries ~parent_name def =
  let counter = ref 0 in
  let hoisted = ref [] in
  let rec walk_select (q : Ast.select_query) =
    let from =
      List.map
        (fun (src : Ast.source_ref) ->
          match src.Ast.sub with
          | None -> src
          | Some sub ->
              let sub = walk_select sub in
              incr counter;
              let name = Printf.sprintf "_sub%d_%s" !counter parent_name in
              hoisted :=
                !hoisted
                @ [{ Ast.props = [("query_name", name)]; body = Ast.Select_q sub }];
              { src with Ast.stream = name; sub = None })
        q.Ast.from
    in
    { q with Ast.from }
  in
  let body =
    match def.Ast.body with
    | Ast.Select_q q -> Ast.Select_q (walk_select q)
    | Ast.Merge_q m ->
        Ast.Merge_q
          {
            m with
            Ast.merge_from =
              List.map
                (fun (src : Ast.source_ref) ->
                  match src.Ast.sub with
                  | None -> src
                  | Some sub ->
                      let sub = walk_select sub in
                      incr counter;
                      let name = Printf.sprintf "_sub%d_%s" !counter parent_name in
                      hoisted :=
                        !hoisted
                        @ [{ Ast.props = [("query_name", name)]; body = Ast.Select_q sub }];
                      { src with Ast.stream = name; sub = None })
                m.Ast.merge_from;
          }
  in
  (!hoisted, { def with Ast.body })

let compile_def_flat catalog ~default_interface ~lfta_table_bits ~name def =
  let* plan = Analyze.analyze catalog ~default_interface ~name def in
  let bits =
    Option.value (prop_int def.Ast.props "lfta_bits") ~default:lfta_table_bits
  in
  let placement = prop_int def.Ast.props "placement" in
  let* split = Split.split catalog ~lfta_table_bits:bits ?placement plan in
  Catalog.add_stream catalog ~name:plan.Plan.name plan.Plan.out_schema;
  Ok { plan; split; helpers = [] }

(* Compile one definition: hoisted subqueries (already fully flattened by
   the hoister) become helper units attached to the main one. *)
let compile_def catalog ~default_interface ~lfta_table_bits ~name def =
  let parent_name = Option.value (Ast.query_name def) ~default:name in
  let subs, def = hoist_subqueries ~parent_name def in
  let* helpers =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | sub_def :: rest ->
          let* c = compile_def_flat catalog ~default_interface ~lfta_table_bits ~name:parent_name sub_def in
          go (c :: acc) rest
    in
    go [] subs
  in
  let* main = compile_def_flat catalog ~default_interface ~lfta_table_bits ~name def in
  Ok { main with helpers }

let compile_program catalog ?(default_interface = "default") ?(lfta_table_bits = 12) text =
  match Parser.parse_program text with
  | exception Parser.Error (msg, line, col) ->
      Error (Printf.sprintf "parse error at %d:%d: %s" line col msg)
  | decls ->
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | Ast.Protocol_decl p :: rest ->
            let* () = Catalog.add_protocol_def catalog p in
            go i acc rest
        | Ast.Query_decl def :: rest ->
            let* compiled =
              compile_def catalog ~default_interface ~lfta_table_bits
                ~name:(Printf.sprintf "q%d" i) def
            in
            (* flatten: helpers become standalone entries so installers see
               each unit exactly once *)
            go (i + 1)
              (({ compiled with helpers = [] } :: List.rev compiled.helpers) @ acc)
              rest
      in
      go 0 [] decls

let compile_query catalog ?(default_interface = "default") ?(lfta_table_bits = 12) ?name text =
  match Parser.parse_query text with
  | exception Parser.Error (msg, line, col) ->
      Error (Printf.sprintf "parse error at %d:%d: %s" line col msg)
  | def ->
      compile_def catalog ~default_interface ~lfta_table_bits
        ~name:(Option.value name ~default:"q0") def

let explain ?(memory = false) compiled =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Format.asprintf "%a@." Plan.pp compiled.plan);
  if memory then begin
    Buffer.add_string buf "\n";
    Buffer.add_string buf (Certify.report (Certify.certify compiled.split))
  end;
  Buffer.add_string buf "\n-- physical plan (LFTA/HFTA split) --\n";
  List.iter
    (fun (p : Split.phys_node) ->
      let kind =
        match p.Split.pkind with
        | Gigascope_rts.Node.Lfta -> "LFTA"
        | Gigascope_rts.Node.Hfta -> "HFTA"
        | Gigascope_rts.Node.Source -> "SOURCE"
      in
      Buffer.add_string buf
        (Format.asprintf "%s %s : %a@." kind p.Split.pname Gigascope_rts.Schema.pp
           p.Split.pschema))
    compiled.split.Split.phys;
  Buffer.add_string buf "\n-- generated pseudo-C --\n";
  Buffer.add_string buf (Emit_c.emit compiled.split);
  Buffer.contents buf
