(** The GSQL compiler driver: text -> parsed -> analyzed -> split.

    A program may interleave PROTOCOL definitions and queries; queries see
    the output schemas of queries compiled before them (composition by
    name, Section 2.2). Installation into a running stream manager is a
    separate step ({!Codegen.install}) so a compiled program can be
    explained without running. *)

type compiled = {
  plan : Plan.t;
  split : Split.t;
  helpers : compiled list;
      (** hoisted FROM-clause subqueries, to be installed before this
          query (already flattened: helpers have no helpers) *)
}

val compile_program :
  Catalog.t ->
  ?default_interface:string ->
  ?lfta_table_bits:int ->
  string ->
  (compiled list, string) result
(** Compile every query in the program, registering each output schema in
    the catalog as it goes. A query's DEFINE section may set
    [query_name] and [lfta_bits]. Unnamed queries get [q0], [q1], ... *)

val compile_query :
  Catalog.t ->
  ?default_interface:string ->
  ?lfta_table_bits:int ->
  ?name:string ->
  string ->
  (compiled, string) result
(** Compile a single query (errors if the text holds more than one). *)

val explain : ?memory:bool -> compiled -> string
(** Human-readable report: the logical plan, imputed ordering properties,
    the LFTA/HFTA split, NIC hints, and generated pseudo-C. With
    [~memory:true], the {!Certify} derivation (per-operator state
    bounds or the unbounded diagnostic) is included. *)
