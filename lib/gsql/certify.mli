(** Static memory certification of compiled plans.

    Walks a {!Split.t} (the physical LFTA/HFTA graph, possibly
    sharded) and derives a symbolic per-operator state bound from the
    analyzer's ordering properties — or a structured [Unbounded]
    verdict naming the operator, the missing ordering property, and
    the rewrite that would bound it. The engine uses the evaluated
    bounds for admission control, channel auto-sizing, and the state
    watchdog; [gsq explain --memory] prints the derivation. *)

(** Symbolic bound. [Card] is a named cardinality with its default
    estimate, so reports can say {e why} a number is what it is. *)
type expr =
  | Num of float
  | Card of string * float
  | Sum of expr list
  | Prod of expr list

val eval : expr -> float
(** Collapse under the default cardinality model. *)

val render : expr -> string

type unbounded = {
  u_operator : string;  (** physical node name *)
  u_reason : string;  (** the missing ordering property *)
  u_fix : string;  (** the rewrite that would bound it *)
}

type verdict = Finite of expr | Unbounded of unbounded

type node_cert = {
  cname : string;
  ckind : string;  (** select | lfta-agg | agg | join | merge *)
  cstate : verdict;  (** resident tuples/groups/sketch cells *)
  cburst : int;  (** worst-case tuples emitted in one step (flush/drain) *)
  cdetail : string;  (** one-line derivation *)
}

type t = {
  cquery : string;
  cnodes : node_cert list;
  ctotal : verdict;  (** sum of node states, or the first unbounded one *)
}

val certify : Split.t -> t

val finite : t -> bool

val total_estimate : t -> float option
(** Evaluated query bound in resident tuples; [None] if unbounded. *)

val unbounded_nodes : t -> unbounded list

val node_bound : t -> string -> float option
(** Evaluated state bound for one physical node (by registered name,
    case-insensitive); [None] if unknown or unbounded. *)

val node_unbounded : t -> string -> bool

val burst : t -> string -> int
(** Worst-case single-step emission of one node — the lower bound for
    the capacity of the channel it feeds. 1 for unknown nodes. *)

val query_burst : t -> int
(** Max burst across the query's nodes — sizes the subscriber/egress
    queue. *)

val diagnostic : unbounded -> string
(** One-line "operator X holds unbounded state: ...; fix: ..." *)

val report : t -> string
(** Multi-line derivation, [shard_report]-style. *)
