module Rts = Gigascope_rts
module Value = Rts.Value
module Ty = Rts.Ty
module Schema = Rts.Schema
module Func = Rts.Func
module Order_prop = Rts.Order_prop

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* ------------------------------------------------------------------ *)
(* Source resolution                                                    *)
(* ------------------------------------------------------------------ *)

type resolved_source = { input : Plan.input; alias : string }

let resolve_source catalog ~default_interface (src : Ast.source_ref) =
  let alias = Option.value src.Ast.src_alias ~default:src.Ast.stream in
  match src.Ast.interface with
  | Some interface -> (
      match Catalog.find_protocol catalog src.Ast.stream with
      | Some proto ->
          Ok
            {
              input =
                Plan.From_protocol { interface; protocol = src.Ast.stream; schema = proto.Catalog.schema };
              alias;
            }
      | None -> err "unknown protocol %s (referenced as %s.%s)" src.Ast.stream interface src.Ast.stream)
  | None -> (
      match Catalog.find_stream catalog src.Ast.stream with
      | Some schema -> Ok { input = Plan.From_stream { stream = src.Ast.stream; schema }; alias }
      | None -> (
          match Catalog.find_protocol catalog src.Ast.stream with
          | Some proto ->
              Ok
                {
                  input =
                    Plan.From_protocol
                      {
                        interface = default_interface;
                        protocol = src.Ast.stream;
                        schema = proto.Catalog.schema;
                      };
                  alias;
                }
          | None -> err "unknown stream or protocol %s" src.Ast.stream))

(* ------------------------------------------------------------------ *)
(* Expression checking                                                  *)
(* ------------------------------------------------------------------ *)

(* The resolution environment: named tuple segments at field offsets, plus
   a table accumulating parameter types. *)
type env = {
  segments : (string * Schema.t * int) list;  (* alias, schema, field offset *)
  params : (string, Ty.t) Hashtbl.t;
  funcs : Func.registry;
}

let find_field env ?alias name =
  let matches =
    List.filter_map
      (fun (seg_alias, schema, offset) ->
        let alias_ok =
          match alias with
          | Some a -> String.lowercase_ascii a = String.lowercase_ascii seg_alias
          | None -> true
        in
        if not alias_ok then None
        else
          Option.map
            (fun idx -> (offset + idx, (Schema.field_at schema idx).Schema.ty))
            (Schema.field_index schema name))
      env.segments
  in
  match matches with
  | [hit] -> Ok hit
  | [] -> (
      match alias with
      | Some a -> err "unknown field %s.%s" a name
      | None -> err "unknown field %s" name)
  | _ :: _ -> err "ambiguous field %s (qualify it with the stream alias)" name

let numeric ty = Ty.is_numeric ty

let result_ty_arith a b = if a = Ty.Int && b = Ty.Int then Ty.Int else Ty.Float

let compatible ~declared ~actual =
  declared = actual
  || (declared = Ty.Float && actual = Ty.Int)
  || (declared = Ty.Ip && actual = Ty.Int)
  || (declared = Ty.Int && actual = Ty.Ip)

let comparable a b = a = b || (numeric a && numeric b) || (a = Ty.Ip && b = Ty.Ip)

let declare_param env name ty =
  match Hashtbl.find_opt env.params name with
  | None ->
      Hashtbl.replace env.params name ty;
      Ok ty
  | Some prev when prev = ty -> Ok ty
  | Some prev ->
      err "parameter $%s used at both %s and %s" name (Ty.to_string prev) (Ty.to_string ty)

let rec check env ?(expected : Ty.t option) (e : Ast.expr) : (Expr_ir.t, string) result =
  match e with
  | Ast.Int_lit i -> Ok (Expr_ir.Const (Value.Int i))
  | Ast.Float_lit f -> Ok (Expr_ir.Const (Value.Float f))
  | Ast.Str_lit s -> Ok (Expr_ir.Const (Value.Str s))
  | Ast.Bool_lit b -> Ok (Expr_ir.Const (Value.Bool b))
  | Ast.Ip_lit ip -> Ok (Expr_ir.Const (Value.Ip ip))
  | Ast.Param name ->
      let ty = Option.value expected ~default:Ty.Int in
      let* ty = declare_param env name ty in
      Ok (Expr_ir.Param (name, ty))
  | Ast.Ident name ->
      let* idx, ty = find_field env name in
      Ok (Expr_ir.Field (idx, ty))
  | Ast.Qualified (alias, name) ->
      let* idx, ty = find_field env ~alias name in
      Ok (Expr_ir.Field (idx, ty))
  | Ast.Unop (Ast.Not, a) ->
      let* ia = check env ~expected:Ty.Bool a in
      if Expr_ir.ty ia <> Ty.Bool then err "NOT requires a boolean, got %s" (Ty.to_string (Expr_ir.ty ia))
      else Ok (Expr_ir.Unop (Ast.Not, ia))
  | Ast.Unop (Ast.Neg, a) ->
      let* ia = check env ?expected a in
      if not (numeric (Expr_ir.ty ia)) then err "unary minus requires a number"
      else Ok (Expr_ir.Unop (Ast.Neg, ia))
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op), a, b) ->
      let* ia = check env ~expected:Ty.Int a in
      let* ib = check env ~expected:Ty.Int b in
      let ta = Expr_ir.ty ia and tb = Expr_ir.ty ib in
      if not (numeric ta && numeric tb) then
        err "arithmetic on non-numeric operands (%s, %s)" (Ty.to_string ta) (Ty.to_string tb)
      else Ok (Expr_ir.Binop (op, ia, ib, result_ty_arith ta tb))
  | Ast.Binop (((Ast.Mod | Ast.Band | Ast.Bor | Ast.Shl | Ast.Shr) as op), a, b) ->
      let* ia = check env ~expected:Ty.Int a in
      let* ib = check env ~expected:Ty.Int b in
      let int_like t = t = Ty.Int || t = Ty.Ip in
      if not (int_like (Expr_ir.ty ia) && int_like (Expr_ir.ty ib)) then
        err "bitwise/mod operators require integers"
      else Ok (Expr_ir.Binop (op, ia, ib, Ty.Int))
  | Ast.Binop (((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b) ->
      (* Check one side first so a parameter on the other side picks up its
         type. *)
      let* ia, ib =
        match (a, b) with
        | Ast.Param _, _ ->
            let* ib = check env b in
            let* ia = check env ~expected:(Expr_ir.ty ib) a in
            Ok (ia, ib)
        | _ ->
            let* ia = check env a in
            let* ib = check env ~expected:(Expr_ir.ty ia) b in
            Ok (ia, ib)
      in
      let ta = Expr_ir.ty ia and tb = Expr_ir.ty ib in
      if not (comparable ta tb) then
        err "cannot compare %s with %s" (Ty.to_string ta) (Ty.to_string tb)
      else Ok (Expr_ir.Binop (op, ia, ib, Ty.Bool))
  | Ast.Binop (((Ast.And | Ast.Or) as op), a, b) ->
      let* ia = check env ~expected:Ty.Bool a in
      let* ib = check env ~expected:Ty.Bool b in
      if Expr_ir.ty ia <> Ty.Bool || Expr_ir.ty ib <> Ty.Bool then
        err "AND/OR require boolean operands"
      else Ok (Expr_ir.Binop (op, ia, ib, Ty.Bool))
  | Ast.Call (fname, args) -> (
      match Func.find env.funcs fname with
      | None -> err "unknown function %s" fname
      | Some f ->
          let n_declared = List.length f.Func.arg_tys in
          if List.length args <> n_declared then
            err "function %s expects %d arguments, got %d" f.Func.name n_declared
              (List.length args)
          else
            let rec check_args i acc args tys =
              match (args, tys) with
              | [], [] -> Ok (List.rev acc)
              | arg :: args, declared :: tys ->
                  let* ia = check env ~expected:declared arg in
                  let actual = Expr_ir.ty ia in
                  if not (compatible ~declared ~actual) then
                    err "function %s argument %d: expected %s, got %s" f.Func.name (i + 1)
                      (Ty.to_string declared) (Ty.to_string actual)
                  else if
                    List.mem i f.Func.handle_args
                    && not (match ia with Expr_ir.Const _ | Expr_ir.Param _ -> true | _ -> false)
                  then
                    err
                      "function %s argument %d is pass-by-handle and must be a literal or a \
                       query parameter"
                      f.Func.name (i + 1)
                  else check_args (i + 1) (ia :: acc) args tys
              | _ -> assert false
            in
            let* iargs = check_args 0 [] args f.Func.arg_tys in
            Ok (Expr_ir.Call (f, iargs)))
  | Ast.Agg _ -> Error "aggregate functions are only allowed in the SELECT/HAVING of a GROUP BY query"

(* ------------------------------------------------------------------ *)
(* Item naming                                                          *)
(* ------------------------------------------------------------------ *)

let item_name i (item : Ast.select_item) =
  match item.Ast.alias with
  | Some a -> a
  | None -> (
      match item.Ast.expr with
      | Ast.Ident n -> n
      | Ast.Qualified (_, n) -> n
      | Ast.Agg (k, _) ->
          (match k with
          | Ast.Count -> "cnt"
          | Ast.Sum -> "sum"
          | Ast.Min -> "min"
          | Ast.Max -> "max"
          | Ast.Avg -> "avg"
          | Ast.Approx_count_distinct _ -> "acd"
          | Ast.Heavy_hitters _ -> "hh"
          | Ast.Cm_count -> "cmc")
          ^ string_of_int i
      | _ -> Printf.sprintf "col%d" i)

let dedup_names items =
  (* Schema.make rejects duplicates; make auto names unique. *)
  let seen = Hashtbl.create 8 in
  List.map
    (fun (e, name) ->
      let base = name in
      let rec fresh candidate n =
        if Hashtbl.mem seen (String.lowercase_ascii candidate) then
          fresh (Printf.sprintf "%s_%d" base n) (n + 1)
        else candidate
      in
      let name = fresh base 2 in
      Hashtbl.replace seen (String.lowercase_ascii name) ();
      (e, name))
    items

(* ------------------------------------------------------------------ *)
(* Aggregation                                                          *)
(* ------------------------------------------------------------------ *)

(* Sketch parameter defaults: precision 12 is a 4 KiB HLL with ~1.6%
   relative error; k = 10 heavy hitters; a 0.005/0.01 count-min is
   5 rows of 544 counters. *)
let default_hll_precision = 12
let default_heavy_k = 10
let default_cm_eps = 0.005
let default_cm_delta = 0.01

let agg_kind_of_ast = function
  | Ast.Count -> Rts.Agg_fn.Count
  | Ast.Sum -> Rts.Agg_fn.Sum
  | Ast.Min -> Rts.Agg_fn.Min
  | Ast.Max -> Rts.Agg_fn.Max
  | Ast.Avg -> Rts.Agg_fn.Avg
  | Ast.Approx_count_distinct p ->
      Rts.Agg_fn.Sketch
        {
          sk = Rts.Agg_fn.Distinct { precision = Option.value p ~default:default_hll_precision };
          partial = false;
        }
  | Ast.Heavy_hitters k ->
      Rts.Agg_fn.Sketch
        { sk = Rts.Agg_fn.Heavy { k = Option.value k ~default:default_heavy_k }; partial = false }
  | Ast.Cm_count ->
      Rts.Agg_fn.Sketch
        { sk = Rts.Agg_fn.Freq { eps = default_cm_eps; delta = default_cm_delta }; partial = false }

let agg_result_ty kind arg =
  Rts.Agg_fn.result_ty kind ~arg_ty:(Option.map Expr_ir.ty arg)

(* Check a SELECT/HAVING expression of a grouped query: leaves must resolve
   to group keys or aggregates over the input; the result is an expression
   over the virtual tuple [keys @ aggs]. *)
let rec check_virtual env ~keys ~(aggs : Plan.agg_call list ref) (e : Ast.expr) :
    (Expr_ir.t, string) result =
  let n_keys = List.length keys in
  let as_key candidate_ir =
    (* does this input-side expression coincide with a group key? *)
    let rec find i = function
      | [] -> None
      | (k, _) :: rest -> if Expr_ir.equal k candidate_ir then Some i else find (i + 1) rest
    in
    find 0 keys
  in
  let key_by_name name =
    let rec find i = function
      | [] -> None
      | (_, kname) :: rest ->
          if String.lowercase_ascii kname = String.lowercase_ascii name then Some i
          else find (i + 1) rest
    in
    find 0 keys
  in
  match e with
  | Ast.Agg (k, arg_ast) ->
      let* () =
        match k with
        | Ast.Approx_count_distinct (Some p) when p < 4 || p > 16 ->
            err "approx_count_distinct() precision must be in [4, 16], got %d" p
        | Ast.Heavy_hitters (Some k) when k < 1 || k > 100_000 ->
            err "heavy_hitters() k must be in [1, 100000], got %d" k
        | _ -> Ok ()
      in
      let kind = agg_kind_of_ast k in
      let* arg =
        match arg_ast with
        | None -> Ok None
        | Some a ->
            let* ia = check env a in
            (* sketches canonicalize any value into the summary; only the
               arithmetic aggregates insist on numbers *)
            let exempt =
              match kind with Rts.Agg_fn.Count | Rts.Agg_fn.Sketch _ -> true | _ -> false
            in
            if (not exempt) && not (numeric (Expr_ir.ty ia)) then
              err "%s() requires a numeric argument" (Rts.Agg_fn.kind_to_string kind)
            else Ok (Some ia)
      in
      (* dedupe identical aggregate calls *)
      let existing =
        let rec find i = function
          | [] -> None
          | (c : Plan.agg_call) :: rest ->
              let same_arg =
                match (c.Plan.arg, arg) with
                | None, None -> true
                | Some a, Some b -> Expr_ir.equal a b
                | _ -> false
              in
              if c.Plan.kind = kind && same_arg then Some i else find (i + 1) rest
        in
        find 0 !aggs
      in
      let idx =
        match existing with
        | Some i -> i
        | None ->
            let i = List.length !aggs in
            aggs :=
              !aggs
              @ [
                  {
                    Plan.kind;
                    arg;
                    agg_name = Printf.sprintf "%s_%d" (Rts.Agg_fn.kind_to_string kind) i;
                  };
                ];
            i
      in
      let rty = agg_result_ty kind arg in
      Ok (Expr_ir.Field (n_keys + idx, rty))
  | Ast.Ident name when key_by_name name <> None ->
      let i = Option.get (key_by_name name) in
      Ok (Expr_ir.Field (i, Expr_ir.ty (fst (List.nth keys i))))
  | Ast.Ident _ | Ast.Qualified _ -> (
      let* ir = check env e in
      match as_key ir with
      | Some i -> Ok (Expr_ir.Field (i, Expr_ir.ty ir))
      | None -> err "%s is neither a group key nor an aggregate" (Ast.expr_to_string e))
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Bool_lit _ | Ast.Ip_lit _ | Ast.Param _
    ->
      check env e
  | Ast.Unop (op, a) ->
      let* ia = check_virtual env ~keys ~aggs a in
      (match op with
      | Ast.Not when Expr_ir.ty ia <> Ty.Bool -> err "NOT requires a boolean"
      | Ast.Neg when not (numeric (Expr_ir.ty ia)) -> err "unary minus requires a number"
      | Ast.Not | Ast.Neg -> Ok (Expr_ir.Unop (op, ia)))
  | Ast.Binop (op, a, b) -> (
      (* first try: the whole expression is a group key (e.g. select
         time/60 when grouped by time/60) *)
      match check env e with
      | Ok ir when as_key ir <> None ->
          let i = Option.get (as_key ir) in
          Ok (Expr_ir.Field (i, Expr_ir.ty ir))
      | _ ->
          let* ia = check_virtual env ~keys ~aggs a in
          let* ib = check_virtual env ~keys ~aggs b in
          let ta = Expr_ir.ty ia and tb = Expr_ir.ty ib in
          let rty =
            match op with
            | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div -> result_ty_arith ta tb
            | Ast.Mod | Ast.Band | Ast.Bor | Ast.Shl | Ast.Shr -> Ty.Int
            | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or -> Ty.Bool
          in
          Ok (Expr_ir.Binop (op, ia, ib, rty)))
  | Ast.Call (fname, args) when (match check env e with
                                 | Ok ir -> as_key ir <> None
                                 | Error _ -> false) ->
      (* the whole call is itself a group key, e.g.
         SELECT truncate_ip(srcip, 16) ... GROUP BY truncate_ip(srcip, 16) *)
      let ir = Result.get_ok (check env e) in
      let i = Option.get (as_key ir) in
      ignore (fname, args);
      Ok (Expr_ir.Field (i, Expr_ir.ty ir))
  | Ast.Call (fname, args) -> (
      (* allow scalar functions over keys/aggregates *)
      match Func.find env.funcs fname with
      | None -> err "unknown function %s" fname
      | Some f ->
          if List.length args <> List.length f.Func.arg_tys then
            err "function %s: wrong arity" f.Func.name
          else
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | a :: rest ->
                  let* ia = check_virtual env ~keys ~aggs a in
                  go (ia :: acc) rest
            in
            let* iargs = go [] args in
            Ok (Expr_ir.Call (f, iargs)))

(* ------------------------------------------------------------------ *)
(* Join window extraction                                               *)
(* ------------------------------------------------------------------ *)

(* Interpret an expression as [field + offset] where the field belongs to
   one side of the join. *)
let rec linear_form n_left e =
  match e with
  | Expr_ir.Field (i, ty) when numeric ty || ty = Ty.Int ->
      Some ((if i < n_left then `Left else `Right), i, 0.0)
  | Expr_ir.Binop (Ast.Add, a, Expr_ir.Const c, _) ->
      Option.bind (linear_form n_left a) (fun (side, i, off) ->
          Option.map (fun x -> (side, i, off +. x)) (Value.to_float c))
  | Expr_ir.Binop (Ast.Add, Expr_ir.Const c, a, _) ->
      Option.bind (linear_form n_left a) (fun (side, i, off) ->
          Option.map (fun x -> (side, i, off +. x)) (Value.to_float c))
  | Expr_ir.Binop (Ast.Sub, a, Expr_ir.Const c, _) ->
      Option.bind (linear_form n_left a) (fun (side, i, off) ->
          Option.map (fun x -> (side, i, off -. x)) (Value.to_float c))
  | _ -> None

(* From the conjuncts of the join predicate, derive the window
   [lo <= left.ord - right.ord <= hi] plus the ordered fields used. *)
let extract_window ~n_left ~left_schema ~right_schema pred =
  let ordered_ok schema idx =
    Order_prop.usable_for_window (Schema.field_at schema idx).Schema.order
  in
  let conjs = match pred with Some p -> Expr_ir.conjuncts p | None -> [] in
  let constraints = ref [] in
  List.iter
    (fun c ->
      match c with
      | Expr_ir.Binop (((Ast.Eq | Ast.Le | Ast.Lt | Ast.Ge | Ast.Gt) as op), a, b, _) -> (
          match (linear_form n_left a, linear_form n_left b) with
          | Some (`Left, li, loff), Some (`Right, ri, roff) ->
              let li' = li and ri' = ri - n_left in
              if ordered_ok left_schema li' && ordered_ok right_schema ri' then
                (* left + loff OP right + roff  =>  left - right OP roff - loff *)
                constraints := (op, li', ri', roff -. loff) :: !constraints
          | Some (`Right, ri, roff), Some (`Left, li, loff) ->
              let li' = li and ri' = ri - n_left in
              if ordered_ok left_schema li' && ordered_ok right_schema ri' then
                (* right + roff OP left + loff => reverse the comparison *)
                let flipped =
                  match op with
                  | Ast.Le -> Ast.Ge
                  | Ast.Lt -> Ast.Gt
                  | Ast.Ge -> Ast.Le
                  | Ast.Gt -> Ast.Lt
                  | other -> other
                in
                constraints := (flipped, li', ri', loff -. roff) :: !constraints
          | _ -> ())
      | _ -> ())
    conjs;
  (* Combine the accumulated constraints into a single window. *)
  let lo = ref neg_infinity and hi = ref infinity in
  let fields = ref None in
  let note li ri =
    match !fields with
    | None -> fields := Some (li, ri)
    | Some (l, r) -> if (l, r) <> (li, ri) then fields := Some (l, r) (* keep first pair *)
  in
  List.iter
    (fun (op, li, ri, c) ->
      note li ri;
      match op with
      | Ast.Eq ->
          lo := Float.max !lo c;
          hi := Float.min !hi c
      | Ast.Le -> hi := Float.min !hi c
      | Ast.Lt -> hi := Float.min !hi c
      | Ast.Ge -> lo := Float.max !lo c
      | Ast.Gt -> lo := Float.max !lo c
      | _ -> ())
    !constraints;
  (* An under-constrained (even windowless) join still compiles: the
     certifier hands it an Unbounded verdict and admission control
     decides whether it may run. Only a provably empty window is a
     hard analysis error. *)
  match !fields with
  | Some (li, ri) when !lo <= !hi -> Ok (li, ri, !lo, !hi)
  | Some _ ->
      Error
        (Printf.sprintf
           "join window is empty: the predicate implies %g <= left.ord - right.ord <= %g \
            which no tuple pair satisfies"
           !lo !hi)
  | None -> (
      let first_ordered schema =
        let n = Schema.arity schema in
        let rec go i =
          if i >= n then None else if ordered_ok schema i then Some i else go (i + 1)
        in
        go 0
      in
      match (first_ordered left_schema, first_ordered right_schema) with
      | Some li, Some ri -> Ok (li, ri, neg_infinity, infinity)
      | _ ->
          Error
            "join needs an ordered (increasing/decreasing) attribute on each input stream \
             to anchor purging (e.g. a window constraint B.ts = C.ts)")

(* ------------------------------------------------------------------ *)
(* Output schema construction                                           *)
(* ------------------------------------------------------------------ *)

let schema_of_items items props =
  Schema.make
    (List.map2
       (fun (e, name) order -> { Schema.name; ty = Expr_ir.ty e; order })
       items props)

(* ------------------------------------------------------------------ *)
(* The main entry                                                       *)
(* ------------------------------------------------------------------ *)

let collect_params env = Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.params []

let analyze_select env ~props name (q : Ast.select_query) sources =
  match sources with
  | [src] -> (
      let schema = Plan.input_schema src.input in
      let grouped =
        q.Ast.group_by <> []
        || List.exists
             (fun (it : Ast.select_item) ->
               let rec has_agg = function
                 | Ast.Agg _ -> true
                 | Ast.Unop (_, a) -> has_agg a
                 | Ast.Binop (_, a, b) -> has_agg a || has_agg b
                 | Ast.Call (_, args) -> List.exists has_agg args
                 | _ -> false
               in
               has_agg it.Ast.expr)
             q.Ast.select
      in
      let* pred =
        match q.Ast.where with
        | None -> Ok None
        | Some w ->
            let* iw = check env ~expected:Ty.Bool w in
            if Expr_ir.ty iw <> Ty.Bool then Error "WHERE must be boolean" else Ok (Some iw)
      in
      if not grouped then begin
        let* items =
          let rec go i acc = function
            | [] -> Ok (List.rev acc)
            | (it : Ast.select_item) :: rest ->
                let* ir = check env it.Ast.expr in
                go (i + 1) ((ir, item_name i it) :: acc) rest
          in
          go 0 [] q.Ast.select
        in
        let items = dedup_names items in
        let props = List.map (fun (e, _) -> Order_infer.of_select_item schema e) items in
        let out_schema = schema_of_items items props in
        Ok
          {
            Plan.name;
            body =
              Plan.Select { sel_input = src.input; sel_pred = pred; sel_items = items; sample = q.Ast.sample };
            out_schema;
            params = collect_params env;
          }
      end
      else begin
        (* aggregation *)
        let* keys =
          let rec go i acc = function
            | [] -> Ok (List.rev acc)
            | (it : Ast.select_item) :: rest ->
                let* ir = check env it.Ast.expr in
                go (i + 1) ((ir, item_name i it) :: acc) rest
          in
          go 0 [] q.Ast.group_by
        in
        let keys = dedup_names keys in
        let aggs = ref [] in
        let* items =
          let rec go i acc = function
            | [] -> Ok (List.rev acc)
            | (it : Ast.select_item) :: rest ->
                let* ir = check_virtual env ~keys ~aggs it.Ast.expr in
                go (i + 1) ((ir, item_name i it) :: acc) rest
          in
          go 0 [] q.Ast.select
        in
        let items = dedup_names items in
        let* having =
          match q.Ast.having with
          | None -> Ok None
          | Some h ->
              let* ih = check_virtual env ~keys ~aggs h in
              if Expr_ir.ty ih <> Ty.Bool then Error "HAVING must be boolean" else Ok (Some ih)
        in
        let aggs = !aggs in
        (* epoch key selection *)
        let epoch_info =
          (* A band declared on the input attribute shrinks through a
             bucketing division: time/60 over banded-increasing(30) keys is
             banded by 30/60 buckets. Other monotone shapes keep the band
             unscaled (conservative: groups stay open a little longer). *)
          let scaled_band band kexpr =
            match kexpr with
            | Expr_ir.Binop (Ast.Div, Expr_ir.Field _, Expr_ir.Const (Value.Int c), _)
              when c > 0 ->
                band /. float_of_int c
            | Expr_ir.Binop (Ast.Shr, Expr_ir.Field _, Expr_ir.Const (Value.Int c), _)
              when c >= 0 ->
                band /. float_of_int (1 lsl c)
            | _ -> band
          in
          let rec find i = function
            | [] -> None
            | (kexpr, _) :: rest -> (
                match Expr_ir.fields_used kexpr with
                | [f]
                  when Order_prop.usable_for_epoch (Schema.field_at schema f).Schema.order
                       && Expr_ir.monotone_in kexpr f ->
                    let prop = (Schema.field_at schema f).Schema.order in
                    let band = Option.value (Order_prop.band_of prop) ~default:0.0 in
                    Some
                      ( i,
                        f,
                        Option.value (Order_prop.direction_of prop) ~default:Order_prop.Asc,
                        scaled_band band kexpr )
                | _ -> find (i + 1) rest)
          in
          find 0 keys
        in
        let epoch, epoch_in_field, epoch_dir, epoch_band =
          match epoch_info with
          | Some (i, f, d, b) -> (Some i, Some f, d, b)
          | None -> (None, None, Order_prop.Asc, 0.0)
        in
        (* virtual schema for ordering imputation of items *)
        let virtual_schema =
          Schema.make
            (List.mapi
               (fun i (k, kname) ->
                 {
                   Schema.name = kname;
                   ty = Expr_ir.ty k;
                   order = Order_infer.of_group_key schema k ~is_epoch:(epoch = Some i);
                 })
               keys
            @
            let non_epoch_keys =
              List.filteri (fun i _ -> epoch <> Some i) keys |> List.map snd
            in
            List.map
              (fun (c : Plan.agg_call) ->
                {
                  Schema.name = c.Plan.agg_name;
                  ty = agg_result_ty c.Plan.kind c.Plan.arg;
                  order =
                    Order_infer.of_agg_result schema ~kind:c.Plan.kind ~arg:c.Plan.arg
                      ~group_names:non_epoch_keys ~has_epoch:(epoch <> None);
                })
              aggs)
        in
        let props = List.map (fun (e, _) -> Order_infer.of_select_item virtual_schema e) items in
        let out_schema = schema_of_items items props in
        Ok
          {
            Plan.name;
            body =
              Plan.Agg
                {
                  agg_input = src.input;
                  agg_pred = pred;
                  keys;
                  epoch;
                  epoch_dir;
                  epoch_band;
                  epoch_in_field;
                  aggs;
                  agg_items = items;
                  having;
                };
            out_schema;
            params = collect_params env;
          }
      end)
  | [left; right] ->
      if q.Ast.group_by <> [] then Error "grouped joins are not supported; compose two queries"
      else begin
        let left_schema = Plan.input_schema left.input in
        let right_schema = Plan.input_schema right.input in
        let n_left = Schema.arity left_schema in
        let* pred =
          match q.Ast.where with
          | None -> Ok None
          | Some w ->
              let* iw = check env ~expected:Ty.Bool w in
              if Expr_ir.ty iw <> Ty.Bool then Error "WHERE must be boolean" else Ok (Some iw)
        in
        let* left_ord, right_ord, win_lo, win_hi =
          extract_window ~n_left ~left_schema ~right_schema pred
        in
        let* items =
          let rec go i acc = function
            | [] -> Ok (List.rev acc)
            | (it : Ast.select_item) :: rest ->
                let* ir = check env it.Ast.expr in
                go (i + 1) ((ir, item_name i it) :: acc) rest
          in
          go 0 [] q.Ast.select
        in
        let items = dedup_names items in
        let ordered_output =
          List.exists
            (fun (k, v) ->
              String.lowercase_ascii k = "join_output" && String.lowercase_ascii v = "ordered")
            props
        in
        let order_props =
          List.map
            (fun (e, _) ->
              Order_infer.of_join_item ~left:left_schema ~right:right_schema ~win_lo ~win_hi
                ~ordered_output e)
            items
        in
        let out_schema = schema_of_items items order_props in
        Ok
          {
            Plan.name;
            body =
              Plan.Join
                {
                  left = left.input;
                  right = right.input;
                  left_ord;
                  right_ord;
                  win_lo;
                  win_hi;
                  join_pred = pred;
                  join_items = items;
                  ordered_output;
                };
            out_schema;
            params = collect_params env;
          }
      end
  | [] -> Error "FROM clause is empty"
  | _ -> Error "GSQL joins are restricted to two streams"

let analyze_merge _catalog name (q : Ast.merge_query) sources =
  if List.length sources < 2 then Error "MERGE needs at least two input streams"
  else if List.length q.Ast.merge_cols <> List.length sources then
    Error "MERGE must name one ordered column per input stream (a.ts : b.ts)"
  else begin
    let schemas = List.map (fun s -> Plan.input_schema s.input) sources in
    let first_schema = List.hd schemas in
    let arity = Schema.arity first_schema in
    (* union compatibility *)
    let compatible_schemas =
      List.for_all
        (fun s ->
          Schema.arity s = arity
          && Array.for_all2
               (fun (a : Schema.field) (b : Schema.field) -> a.Schema.ty = b.Schema.ty)
               (Schema.fields first_schema) (Schema.fields s))
        schemas
    in
    if not compatible_schemas then
      Error "MERGE inputs must be union-compatible (same arity and field types)"
    else begin
      (* resolve each alias.field to an index; all must agree *)
      let resolve (alias, field) =
        match
          List.find_opt
            (fun s -> String.lowercase_ascii s.alias = String.lowercase_ascii alias)
            sources
        with
        | None -> err "MERGE column %s.%s: unknown stream alias" alias field
        | Some s -> (
            match Schema.field_index (Plan.input_schema s.input) field with
            | Some idx -> Ok idx
            | None -> err "MERGE column %s.%s: unknown field" alias field)
      in
      let rec resolve_all acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest ->
            let* idx = resolve c in
            resolve_all (idx :: acc) rest
      in
      let* indices = resolve_all [] q.Ast.merge_cols in
      match indices with
      | [] -> Error "MERGE: no columns"
      | first_idx :: rest_idx ->
          if not (List.for_all (fun i -> i = first_idx) rest_idx) then
            Error "MERGE columns must be the same field position in every input"
          else begin
            let props_at i =
              List.map (fun s -> (Schema.field_at s i).Schema.order) schemas
            in
            let merge_prop = Order_infer.of_merge (props_at first_idx) in
            if not (Order_prop.usable_for_window merge_prop) then
              Error "MERGE column must be an ordered attribute in every input"
            else begin
              let out_schema =
                Schema.make
                  (List.mapi
                     (fun i (f : Schema.field) ->
                       let order =
                         if i = first_idx then merge_prop
                         else Order_infer.of_merge (props_at i)
                       in
                       { f with Schema.order })
                     (Array.to_list (Schema.fields first_schema)))
              in
              Ok
                {
                  Plan.name;
                  body =
                    Plan.Merge
                      { merge_inputs = List.map (fun s -> s.input) sources; merge_field = first_idx };
                  out_schema;
                  params = [];
                }
            end
          end
    end
  end

let analyze catalog ?(default_interface = "default") ~name (def : Ast.query_def) =
  let name = Option.value (Ast.query_name def) ~default:name in
  let source_refs =
    match def.Ast.body with
    | Ast.Select_q q -> q.Ast.from
    | Ast.Merge_q q -> q.Ast.merge_from
  in
  let rec resolve_all acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest ->
        let* r = resolve_source catalog ~default_interface s in
        resolve_all (r :: acc) rest
  in
  let* sources = resolve_all [] source_refs in
  let env =
    {
      segments =
        (let offset = ref 0 in
         List.map
           (fun s ->
             let schema = Plan.input_schema s.input in
             let seg = (s.alias, schema, !offset) in
             offset := !offset + Schema.arity schema;
             seg)
           sources);
      params = Hashtbl.create 4;
      funcs = Catalog.functions catalog;
    }
  in
  match def.Ast.body with
  | Ast.Select_q q -> analyze_select env ~props:def.Ast.props name q sources
  | Ast.Merge_q q -> analyze_merge catalog name q sources
