(** The LFTA/HFTA query splitter (Section 3's central optimization).

    "One significant optimization technique is to push the query as far
    down the processing stack as possible, even into the network interface
    card itself." A logical plan over Protocol sources is rewritten into:

    - one {e LFTA} per Protocol source: cheap filtering, projection, and
      sub-aggregation over a small direct-mapped table, linked into the
      runtime (and, when the predicate lowers to the filter machine, pushed
      into the NIC along with the snap length);
    - one {e HFTA} completing the query: expensive predicates (regex UDFs),
      join, merge, and super-aggregation over the LFTA partials.

    A simple, fully cheap selection executes entirely as an LFTA. Split
    aggregates follow the sub/super-aggregate decomposition of
    {!Gigascope_rts.Agg_fn}. *)

module Rts = Gigascope_rts
module Bpf = Gigascope_bpf

type nic_hint = {
  nic_filter : Bpf.Filter.t option;
      (** lowered (possibly weaker) predicate; the LFTA re-checks, so a
          partial lowering is still sound *)
  snap_len : int;  (** bytes of each qualifying packet the NIC returns *)
}

type shard_tag = {
  sshard : int;  (** which shard this replica is; drives scheduler spreading *)
  sseq : (int * (unit -> int)) option;
      (** select replicas only: position of the appended ["__seq"] column
          and a reader of the next sequence number this replica could
          assign — a firm lower bound the codegen re-publishes as
          punctuation so the reunification merge stays live *)
}

type phys_node = {
  pname : string;  (** registered stream name ("mangled" for helper LFTAs) *)
  pkind : Rts.Node.kind;  (** [Lfta] or [Hfta] *)
  pbody : Plan.body;  (** inputs rebound to the physical graph *)
  pschema : Rts.Schema.t;
  pnic : nic_hint option;  (** LFTAs over a protocol only *)
  ptable_bits : int;
      (** direct-mapped table size for an LFTA aggregation body *)
  pplace : int option;
      (** pinned execution domain for {!Gigascope_rts.Scheduler.run_parallel};
          HFTAs only (LFTAs stay on the packet-path domain) *)
  pshard : shard_tag option;
      (** set by {!shard} on the replicas of a sharded chain *)
}

type t = {
  plan : Plan.t;
  phys : phys_node list;  (** topological order; the last node is the query *)
}

val split : Catalog.t -> ?lfta_table_bits:int -> ?placement:int -> Plan.t -> (t, string) result
(** [lfta_table_bits] (default 12, i.e. 4096 slots) sizes LFTA aggregation
    tables; the DEFINE property [lfta_bits] overrides it upstream.
    [placement] pins the query's HFTAs to an execution domain (the DEFINE
    property [placement] sets it upstream). *)

val lower_filter :
  bpf_of_field:(int -> Bpf.Filter.field option) -> Expr_ir.t -> Bpf.Filter.t option
(** Best-effort lowering of a predicate to the filter machine. The result
    accepts a superset of the predicate (conjuncts that cannot lower are
    dropped); [None] when nothing lowers. Exposed for tests. *)

(** {1 Sharded data-parallel execution}

    [shard ~shards split] rewrites an eligible split result into [shards]
    data-parallel replicas of its LFTA, a source-side partitioner
    embedded in each replica's predicate, and a reunification
    {!Plan.Merge} that restores a deterministic stream:

    - a {e pure-LFTA selection} becomes round-robin replicas that append
      a private ["__seq"] arrival-index column, a merge ordered on
      ["__seq"], and an identity select under the original name that
      strips the column — the single-shard output order, byte for byte;
    - a {e sub/super-aggregation} becomes replicas of the sub-aggregating
      LFTA, each owning the group keys that hash to it ([Hash_key];
      round-robin when the epoch is the only key), reunified through a
      merge ordered on the epoch column and registered under the LFTA's
      name — the super-aggregating HFTA re-groups shard partials exactly
      as it re-groups table evictions, so its sorted per-epoch output is
      unchanged.

    Everything else (joins, merges, stream inputs, sampling, expensive
    splits, epoch-less or banded-epoch aggregates, pinned placements)
    returns [Error reason]; the engine reports the reason in the run
    trace rather than silently degrading.

    Caveat: summing floating-point partials regroups additions, so [Sum]/
    [Avg] over a [Float] column is byte-identical only up to the last
    ulp. Integer aggregates — every built-in workload — are exact. *)

type shard_mode = Hash_key | Round_robin

type shard_info = {
  squery : string;  (** the sharded query *)
  smode : shard_mode;
  sshards : int;
  stuples : Gigascope_obs.Metrics.Counter.t array;
      (** tuples accepted per shard, incremented inside the partitioner *)
  sreunify : string;  (** name of the reunification merge node *)
}

val shard : shards:int -> t -> (t * shard_info, string) result
