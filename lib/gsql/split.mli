(** The LFTA/HFTA query splitter (Section 3's central optimization).

    "One significant optimization technique is to push the query as far
    down the processing stack as possible, even into the network interface
    card itself." A logical plan over Protocol sources is rewritten into:

    - one {e LFTA} per Protocol source: cheap filtering, projection, and
      sub-aggregation over a small direct-mapped table, linked into the
      runtime (and, when the predicate lowers to the filter machine, pushed
      into the NIC along with the snap length);
    - one {e HFTA} completing the query: expensive predicates (regex UDFs),
      join, merge, and super-aggregation over the LFTA partials.

    A simple, fully cheap selection executes entirely as an LFTA. Split
    aggregates follow the sub/super-aggregate decomposition of
    {!Gigascope_rts.Agg_fn}. *)

module Rts = Gigascope_rts
module Bpf = Gigascope_bpf

type nic_hint = {
  nic_filter : Bpf.Filter.t option;
      (** lowered (possibly weaker) predicate; the LFTA re-checks, so a
          partial lowering is still sound *)
  snap_len : int;  (** bytes of each qualifying packet the NIC returns *)
}

type phys_node = {
  pname : string;  (** registered stream name ("mangled" for helper LFTAs) *)
  pkind : Rts.Node.kind;  (** [Lfta] or [Hfta] *)
  pbody : Plan.body;  (** inputs rebound to the physical graph *)
  pschema : Rts.Schema.t;
  pnic : nic_hint option;  (** LFTAs over a protocol only *)
  ptable_bits : int;
      (** direct-mapped table size for an LFTA aggregation body *)
  pplace : int option;
      (** pinned execution domain for {!Gigascope_rts.Scheduler.run_parallel};
          HFTAs only (LFTAs stay on the packet-path domain) *)
}

type t = {
  plan : Plan.t;
  phys : phys_node list;  (** topological order; the last node is the query *)
}

val split : Catalog.t -> ?lfta_table_bits:int -> ?placement:int -> Plan.t -> (t, string) result
(** [lfta_table_bits] (default 12, i.e. 4096 slots) sizes LFTA aggregation
    tables; the DEFINE property [lfta_bits] overrides it upstream.
    [placement] pins the query's HFTAs to an execution domain (the DEFINE
    property [placement] sets it upstream). *)

val lower_filter :
  bpf_of_field:(int -> Bpf.Filter.field option) -> Expr_ir.t -> Bpf.Filter.t option
(** Best-effort lowering of a predicate to the filter machine. The result
    accepts a superset of the predicate (conjuncts that cannot lower are
    dropped); [None] when nothing lowers. Exposed for tests. *)
