exception Error of string * int * int

type state = { mutable toks : Token.located list }

let peek st =
  match st.toks with [] -> Token.Eof | t :: _ -> t.Token.token

let loc st =
  match st.toks with [] -> (0, 0) | t :: _ -> (t.Token.line, t.Token.col)

let error st msg =
  let line, col = loc st in
  raise (Error (msg, line, col))

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  if peek st = tok then advance st
  else error st (Printf.sprintf "expected %s, found %s" (Token.to_string tok) (Token.to_string (peek st)))

let ident st =
  match peek st with
  | Token.Ident name ->
      advance st;
      name
  (* PROTOCOL only acts as a keyword at declaration position; elsewhere it
     is an ordinary identifier (the IP header field is called protocol) *)
  | Token.Kw_protocol ->
      advance st;
      "protocol"
  | t -> error st (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

let agg_of_name = function
  | "count" -> Some Ast.Count
  | "sum" -> Some Ast.Sum
  | "min" -> Some Ast.Min
  | "max" -> Some Ast.Max
  | "avg" -> Some Ast.Avg
  | "approx_count_distinct" -> Some (Ast.Approx_count_distinct None)
  | "heavy_hitters" -> Some (Ast.Heavy_hitters None)
  | "cm_count" -> Some Ast.Cm_count
  | _ -> None

(* The sketch aggregates take an optional trailing integer literal —
   [heavy_hitters(x, 20)] tracks 20 counters, [approx_count_distinct(x, 14)]
   uses 2^14 registers — folded into the aggregate kind at parse time. *)
let agg_with_param st kind =
  match kind with
  | Ast.Approx_count_distinct None | Ast.Heavy_hitters None -> (
      match peek st with
      | Token.Int_lit p when p > 0 ->
          advance st;
          (match kind with
          | Ast.Approx_count_distinct None -> Ast.Approx_count_distinct (Some p)
          | _ -> Ast.Heavy_hitters (Some p))
      | t ->
          error st
            (Printf.sprintf "expected a positive integer literal after ',', found %s"
               (Token.to_string t)))
  | _ ->
      error st
        (Printf.sprintf "%s() does not take a second argument" (Ast.agg_string kind))

(* ---------------- expressions (precedence climbing) -------------------- *)

let rec parse_or st =
  let left = parse_and st in
  if peek st = Token.Kw_or then begin
    advance st;
    Ast.Binop (Ast.Or, left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_not st in
  if peek st = Token.Kw_and then begin
    advance st;
    Ast.Binop (Ast.And, left, parse_and st)
  end
  else left

and parse_not st =
  if peek st = Token.Kw_not then begin
    advance st;
    Ast.Unop (Ast.Not, parse_not st)
  end
  else parse_cmp st

and parse_cmp st =
  let left = parse_bits st in
  let op =
    match peek st with
    | Token.Eq -> Some Ast.Eq
    | Token.Neq -> Some Ast.Ne
    | Token.Lt -> Some Ast.Lt
    | Token.Le -> Some Ast.Le
    | Token.Gt -> Some Ast.Gt
    | Token.Ge -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | Some op ->
      advance st;
      Ast.Binop (op, left, parse_bits st)
  | None -> left

and parse_bits st =
  let rec go left =
    match peek st with
    | Token.Amp ->
        advance st;
        go (Ast.Binop (Ast.Band, left, parse_shift st))
    | Token.Pipe ->
        advance st;
        go (Ast.Binop (Ast.Bor, left, parse_shift st))
    | _ -> left
  in
  go (parse_shift st)

and parse_shift st =
  let rec go left =
    match peek st with
    | Token.Shl ->
        advance st;
        go (Ast.Binop (Ast.Shl, left, parse_add st))
    | Token.Shr ->
        advance st;
        go (Ast.Binop (Ast.Shr, left, parse_add st))
    | _ -> left
  in
  go (parse_add st)

and parse_add st =
  let rec go left =
    match peek st with
    | Token.Plus ->
        advance st;
        go (Ast.Binop (Ast.Add, left, parse_mul st))
    | Token.Minus ->
        advance st;
        go (Ast.Binop (Ast.Sub, left, parse_mul st))
    | _ -> left
  in
  go (parse_mul st)

and parse_mul st =
  let rec go left =
    match peek st with
    | Token.Star ->
        advance st;
        go (Ast.Binop (Ast.Mul, left, parse_unary st))
    | Token.Slash ->
        advance st;
        go (Ast.Binop (Ast.Div, left, parse_unary st))
    | Token.Percent ->
        advance st;
        go (Ast.Binop (Ast.Mod, left, parse_unary st))
    | _ -> left
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.Minus ->
      advance st;
      Ast.Unop (Ast.Neg, parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Token.Int_lit i ->
      advance st;
      Ast.Int_lit i
  | Token.Float_lit f ->
      advance st;
      Ast.Float_lit f
  | Token.Str_lit s ->
      advance st;
      Ast.Str_lit s
  | Token.Ip_lit ip ->
      advance st;
      Ast.Ip_lit ip
  | Token.Param p ->
      advance st;
      Ast.Param p
  | Token.Kw_true ->
      advance st;
      Ast.Bool_lit true
  | Token.Kw_false ->
      advance st;
      Ast.Bool_lit false
  | Token.Lparen ->
      advance st;
      let e = parse_or st in
      expect st Token.Rparen;
      e
  | Token.Kw_protocol ->
      advance st;
      Ast.Ident "protocol"
  | Token.Ident name -> (
      advance st;
      match peek st with
      | Token.Lparen -> (
          advance st;
          (* "count(*)" and friends *)
          match (agg_of_name (String.lowercase_ascii name), peek st) with
          | Some Ast.Count, Token.Star ->
              advance st;
              expect st Token.Rparen;
              Ast.Agg (Ast.Count, None)
          | Some kind, _ ->
              let arg = parse_or st in
              let kind =
                if peek st = Token.Comma then begin
                  advance st;
                  agg_with_param st kind
                end
                else kind
              in
              expect st Token.Rparen;
              Ast.Agg (kind, Some arg)
          | None, _ ->
              let rec args acc =
                let a = parse_or st in
                if peek st = Token.Comma then begin
                  advance st;
                  args (a :: acc)
                end
                else begin
                  expect st Token.Rparen;
                  List.rev (a :: acc)
                end
              in
              if peek st = Token.Rparen then begin
                advance st;
                Ast.Call (name, [])
              end
              else Ast.Call (name, args []))
      | Token.Dot -> (
          advance st;
          match peek st with
          | Token.Ident field ->
              advance st;
              Ast.Qualified (name, field)
          | t -> error st (Printf.sprintf "expected field after '.', found %s" (Token.to_string t)))
      | _ -> Ast.Ident name)
  | t -> error st (Printf.sprintf "expected expression, found %s" (Token.to_string t))

(* ---------------- clauses ---------------------------------------------- *)

let parse_select_item st =
  let expr = parse_or st in
  match peek st with
  | Token.Kw_as ->
      advance st;
      { Ast.expr; alias = Some (ident st) }
  | _ -> { Ast.expr; alias = None }

let parse_item_list st =
  let rec go acc =
    let item = parse_select_item st in
    if peek st = Token.Comma then begin
      advance st;
      go (item :: acc)
    end
    else List.rev (item :: acc)
  in
  go []

let parse_define st =
  if peek st <> Token.Kw_define then []
  else begin
    advance st;
    expect st Token.Lbrace;
    let rec props acc =
      match peek st with
      | Token.Rbrace ->
          advance st;
          List.rev acc
      | Token.Ident key ->
          advance st;
          let value =
            match peek st with
            | Token.Ident v ->
                advance st;
                v
            | Token.Str_lit v ->
                advance st;
                v
            | Token.Int_lit v ->
                advance st;
                string_of_int v
            | Token.Float_lit v ->
                advance st;
                string_of_float v
            | t -> error st (Printf.sprintf "expected property value, found %s" (Token.to_string t))
          in
          expect st Token.Semi;
          props ((key, value) :: acc)
      | t -> error st (Printf.sprintf "expected property or '}', found %s" (Token.to_string t))
    in
    props []
  end

let rec parse_source_ref st =
  if peek st = Token.Lparen then begin
    (* inline subquery: FROM (SELECT ...) alias *)
    advance st;
    let sub = parse_select_query st in
    expect st Token.Rparen;
    let src_alias =
      match peek st with
      | Token.Ident alias ->
          advance st;
          Some alias
      | _ -> None
    in
    { Ast.interface = None; stream = ""; src_alias; sub = Some sub }
  end
  else begin
    let first = ident st in
    let interface, stream =
      if peek st = Token.Dot then begin
        advance st;
        (Some first, ident st)
      end
      else (None, first)
    in
    let src_alias =
      match peek st with
      | Token.Ident alias ->
          advance st;
          Some alias
      | _ -> None
    in
    { Ast.interface; stream; src_alias; sub = None }
  end

and parse_from st =
  expect st Token.Kw_from;
  let rec go acc =
    let src = parse_source_ref st in
    if peek st = Token.Comma then begin
      advance st;
      go (src :: acc)
    end
    else List.rev (src :: acc)
  in
  go []

and parse_select_query st =
  expect st Token.Kw_select;
  let select = parse_item_list st in
  let from = parse_from st in
  let where =
    if peek st = Token.Kw_where then begin
      advance st;
      Some (parse_or st)
    end
    else None
  in
  let group_by =
    if peek st = Token.Kw_group then begin
      advance st;
      expect st Token.Kw_by;
      parse_item_list st
    end
    else []
  in
  let having =
    if peek st = Token.Kw_having then begin
      advance st;
      Some (parse_or st)
    end
    else None
  in
  let sample =
    if peek st = Token.Kw_sample then begin
      advance st;
      match peek st with
      | Token.Float_lit f ->
          advance st;
          Some f
      | Token.Int_lit i ->
          advance st;
          Some (float_of_int i)
      | t -> error st (Printf.sprintf "expected sampling rate, found %s" (Token.to_string t))
    end
    else None
  in
  { Ast.select; from; where; group_by; having; sample }

let parse_merge_query st =
  expect st Token.Kw_merge;
  let col st =
    let alias = ident st in
    expect st Token.Dot;
    let field = ident st in
    (alias, field)
  in
  let rec cols acc =
    let c = col st in
    if peek st = Token.Colon then begin
      advance st;
      cols (c :: acc)
    end
    else List.rev (c :: acc)
  in
  let merge_cols = cols [] in
  let merge_from = parse_from st in
  { Ast.merge_cols; merge_from }

let parse_query_def st =
  let props = parse_define st in
  let body =
    match peek st with
    | Token.Kw_select -> Ast.Select_q (parse_select_query st)
    | Token.Kw_merge -> Ast.Merge_q (parse_merge_query st)
    | t -> error st (Printf.sprintf "expected SELECT or MERGE, found %s" (Token.to_string t))
  in
  (* optional terminating semicolon *)
  if peek st = Token.Semi then advance st;
  { Ast.props; body }

(* ---------------- PROTOCOL DDL ----------------------------------------- *)

let parse_order_spec st =
  (* inside parens after a field declaration *)
  let word = String.lowercase_ascii (ident st) in
  let num () =
    match peek st with
    | Token.Int_lit i ->
        advance st;
        float_of_int i
    | Token.Float_lit f ->
        advance st;
        f
    | t -> error st (Printf.sprintf "expected band width, found %s" (Token.to_string t))
  in
  match word with
  | "increasing" -> Ast.Spec_increasing
  | "decreasing" -> Ast.Spec_decreasing
  | "strictly_increasing" -> Ast.Spec_strictly_increasing
  | "strictly_decreasing" -> Ast.Spec_strictly_decreasing
  | "nonrepeating" -> Ast.Spec_nonrepeating
  | "banded_increasing" -> Ast.Spec_banded_increasing (num ())
  | "banded_decreasing" -> Ast.Spec_banded_decreasing (num ())
  | "increasing_in" ->
      let rec fields acc =
        let f = ident st in
        if peek st = Token.Comma then begin
          advance st;
          fields (f :: acc)
        end
        else List.rev (f :: acc)
      in
      Ast.Spec_increasing_in (fields [])
  | other -> error st (Printf.sprintf "unknown ordering property %s" other)

let parse_protocol st =
  expect st Token.Kw_protocol;
  let protocol_name = ident st in
  expect st Token.Lbrace;
  let rec fields acc =
    match peek st with
    | Token.Rbrace ->
        advance st;
        List.rev acc
    | Token.Ident type_name ->
        advance st;
        let field_name = ident st in
        let order_spec =
          if peek st = Token.Lparen then begin
            advance st;
            let spec = parse_order_spec st in
            expect st Token.Rparen;
            Some spec
          end
          else None
        in
        expect st Token.Semi;
        fields ({ Ast.field_name; type_name; order_spec } :: acc)
    | t -> error st (Printf.sprintf "expected field declaration or '}', found %s" (Token.to_string t))
  in
  { Ast.protocol_name; fields = fields [] }

(* ---------------- programs --------------------------------------------- *)

let parse_program_st st =
  let rec go acc =
    match peek st with
    | Token.Eof -> List.rev acc
    | Token.Kw_protocol -> go (Ast.Protocol_decl (parse_protocol st) :: acc)
    | Token.Kw_define | Token.Kw_select | Token.Kw_merge ->
        go (Ast.Query_decl (parse_query_def st) :: acc)
    | t -> error st (Printf.sprintf "expected PROTOCOL, DEFINE, SELECT or MERGE, found %s" (Token.to_string t))
  in
  go []

let with_lexer src f =
  match Lexer.tokenize src with
  | toks -> f { toks }
  | exception Lexer.Error (msg, line, col) -> raise (Error (msg, line, col))

let parse_program src = with_lexer src parse_program_st

let parse_query src =
  with_lexer src (fun st ->
      let q = parse_query_def st in
      expect st Token.Eof;
      q)

let parse_expr src =
  with_lexer src (fun st ->
      let e = parse_or st in
      expect st Token.Eof;
      e)
