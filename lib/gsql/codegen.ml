module Rts = Gigascope_rts
module Value = Rts.Value
module Ty = Rts.Ty
module Schema = Rts.Schema
module Func = Rts.Func
module Order_prop = Rts.Order_prop

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

type params = (string, Value.t) Hashtbl.t

(* ---------------- value-level operator semantics ----------------------- *)

let as_ints a b =
  match (a, b) with
  | (Value.Int x | Value.Ip x), (Value.Int y | Value.Ip y) -> Some (x, y)
  | _ -> None

let as_floats a b =
  match (Value.to_float a, Value.to_float b) with
  | Some x, Some y -> Some (x, y)
  | _ -> None

let arith op a b =
  match (op, as_ints a b) with
  | Ast.Add, Some (x, y) -> Some (Value.Int (x + y))
  | Ast.Sub, Some (x, y) -> Some (Value.Int (x - y))
  | Ast.Mul, Some (x, y) -> Some (Value.Int (x * y))
  | Ast.Div, Some (x, y) -> if y = 0 then None else Some (Value.Int (x / y))
  | Ast.Mod, Some (x, y) -> if y = 0 then None else Some (Value.Int (x mod y))
  | Ast.Band, Some (x, y) -> Some (Value.Int (x land y))
  | Ast.Bor, Some (x, y) -> Some (Value.Int (x lor y))
  | Ast.Shl, Some (x, y) -> Some (Value.Int (x lsl y))
  | Ast.Shr, Some (x, y) -> Some (Value.Int (x lsr y))
  | (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), None -> (
      match (op, as_floats a b) with
      | Ast.Add, Some (x, y) -> Some (Value.Float (x +. y))
      | Ast.Sub, Some (x, y) -> Some (Value.Float (x -. y))
      | Ast.Mul, Some (x, y) -> Some (Value.Float (x *. y))
      | Ast.Div, Some (x, y) -> if y = 0.0 then None else Some (Value.Float (x /. y))
      | _ -> None)
  | _ -> None

(* Ip and Int compare as numbers; the checker allowed the mix. *)
let normalize_pair a b =
  match (a, b) with
  | Value.Ip x, Value.Int _ -> (Value.Int x, b)
  | Value.Int _, Value.Ip y -> (a, Value.Int y)
  | _ -> (a, b)

let compare_vals op a b =
  let a, b = normalize_pair a b in
  let c = Value.compare a b in
  let r =
    match op with
    | Ast.Eq -> c = 0
    | Ast.Ne -> c <> 0
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0
    | _ -> false
  in
  Some (Value.Bool r)

(* ---------------- expression compilation ------------------------------- *)

let rec compile_expr ~params (e : Expr_ir.t) =
  match e with
  | Expr_ir.Const v -> Ok (fun _ -> Some v)
  | Expr_ir.Field (i, _) -> Ok (fun tup -> if i < Array.length tup then Some tup.(i) else None)
  | Expr_ir.Param (name, _) -> Ok (fun _ -> Hashtbl.find_opt params name)
  | Expr_ir.Unop (Ast.Not, a) ->
      let* fa = compile_expr ~params a in
      Ok
        (fun tup ->
          match fa tup with
          | Some (Value.Bool b) -> Some (Value.Bool (not b))
          | _ -> None)
  | Expr_ir.Unop (Ast.Neg, a) ->
      let* fa = compile_expr ~params a in
      Ok
        (fun tup ->
          match fa tup with
          | Some (Value.Int i) -> Some (Value.Int (-i))
          | Some (Value.Float f) -> Some (Value.Float (-.f))
          | _ -> None)
  | Expr_ir.Binop (Ast.And, a, b, _) ->
      let* fa = compile_expr ~params a in
      let* fb = compile_expr ~params b in
      Ok
        (fun tup ->
          match fa tup with
          | Some v when not (Value.is_truthy v) -> Some (Value.Bool false)
          | Some _ -> (
              match fb tup with
              | Some w -> Some (Value.Bool (Value.is_truthy w))
              | None -> None)
          | None -> None)
  | Expr_ir.Binop (Ast.Or, a, b, _) ->
      let* fa = compile_expr ~params a in
      let* fb = compile_expr ~params b in
      Ok
        (fun tup ->
          match fa tup with
          | Some v when Value.is_truthy v -> Some (Value.Bool true)
          | Some _ -> (
              match fb tup with
              | Some w -> Some (Value.Bool (Value.is_truthy w))
              | None -> None)
          | None -> None)
  | Expr_ir.Binop (((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b, _) ->
      let* fa = compile_expr ~params a in
      let* fb = compile_expr ~params b in
      Ok
        (fun tup ->
          match (fa tup, fb tup) with
          | Some va, Some vb -> compare_vals op va vb
          | _ -> None)
  | Expr_ir.Binop (op, a, b, _) ->
      let* fa = compile_expr ~params a in
      let* fb = compile_expr ~params b in
      Ok
        (fun tup ->
          match (fa tup, fb tup) with
          | Some va, Some vb -> arith op va vb
          | _ -> None)
  | Expr_ir.Call (f, args) ->
      (* Instantiate handles now: the expensive preprocessing of
         pass-by-handle parameters happens once per query instance. *)
      let handle_value idx =
        match List.nth_opt args idx with
        | Some (Expr_ir.Const v) -> Ok v
        | Some (Expr_ir.Param (name, _)) -> (
            match Hashtbl.find_opt params name with
            | Some v -> Ok v
            | None -> err "function %s: handle parameter $%s has no value" f.Func.name name)
        | _ -> err "function %s: handle argument %d is not a literal" f.Func.name idx
      in
      let rec handles acc = function
        | [] -> Ok (List.rev acc)
        | idx :: rest ->
            let* v = handle_value idx in
            handles (v :: acc) rest
      in
      let* handle_values = handles [] f.Func.handle_args in
      let* impl = f.Func.instantiate handle_values in
      let rec compile_args acc = function
        | [] -> Ok (List.rev acc)
        | a :: rest ->
            let* fa = compile_expr ~params a in
            compile_args (fa :: acc) rest
      in
      let* arg_fns = compile_args [] args in
      let arg_fns = Array.of_list arg_fns in
      let n = Array.length arg_fns in
      Ok
        (fun tup ->
          let vals = Array.make n Value.Null in
          let ok = ref true in
          Array.iteri
            (fun i fa ->
              match fa tup with
              | Some v -> vals.(i) <- v
              | None -> ok := false)
            arg_fns;
          if !ok then impl vals else None)

let compile_pred ~params e =
  let* f = compile_expr ~params e in
  Ok (fun tup -> match f tup with Some v -> Value.is_truthy v | None -> false)

(* ---------------- operator construction -------------------------------- *)

type source_binder = {
  bind_source :
    interface:string -> protocol:string -> nic:Split.nic_hint option -> (string, string) result;
}

type instance = {
  inst_name : string;
  out_node : Rts.Node.t;
  node_names : string list;
  inst_params : params;
  lfta_aggs : (string * Rts.Lfta_aggregate.t) list;
  hfta_aggs : (string * Rts.Aggregate.t) list;
  merges : (string * Rts.Merge_op.t) list;
  joins : (string * Rts.Join_op.t) list;
}

let set_param inst name v = Hashtbl.replace inst.inst_params name v

let compile_items ~params items =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (e, _) :: rest ->
        let* f = compile_expr ~params e in
        go (f :: acc) rest
  in
  let* fns = go [] items in
  Ok (Array.of_list fns)

(* Projection closure: None when any partial item misses. *)
let projector item_fns =
  let n = Array.length item_fns in
  fun tup ->
    let out = Array.make n Value.Null in
    let ok = ref true in
    for i = 0 to n - 1 do
      match item_fns.(i) tup with
      | Some v -> out.(i) <- v
      | None -> ok := false
    done;
    if !ok then Some out else None

(* Identity-projected ordered input fields, for punctuation translation. *)
let punct_map_of_items ~in_schema items =
  List.concat
    (List.mapi
       (fun out_idx (e, _) ->
         match e with
         | Expr_ir.Field (i, _)
           when i < Schema.arity in_schema
                && Order_prop.usable_for_window (Schema.field_at in_schema i).Schema.order ->
             [(i, out_idx)]
         | _ -> [])
       items)

(* Translate a punctuation bound through a single-field monotone key
   expression by evaluating it on a synthetic tuple. *)
let bound_translator ~params key_expr ~in_field ~in_arity =
  match compile_expr ~params key_expr with
  | Error _ -> fun _ -> None
  | Ok f ->
      fun bound ->
        let synthetic = Array.make in_arity Value.Null in
        if in_field < in_arity then synthetic.(in_field) <- bound;
        f synthetic

let agg_specs ~params (aggs : Plan.agg_call list) =
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | (c : Plan.agg_call) :: rest ->
        let* arg =
          match c.Plan.arg with
          | None -> Ok None
          | Some e ->
              let* f = compile_expr ~params e in
              Ok (Some f)
        in
        go ({ Rts.Agg_fn.kind = c.Plan.kind; arg } :: acc) rest
  in
  go [] aggs

let make_agg_config ~params ~sample_seed:_ (a : Plan.agg_body) =
  let in_schema = Plan.input_schema a.Plan.agg_input in
  let in_arity = Schema.arity in_schema in
  let* pred =
    match a.Plan.agg_pred with
    | None -> Ok None
    | Some p ->
        let* f = compile_pred ~params p in
        Ok (Some f)
  in
  let* key_fns = compile_items ~params a.Plan.keys in
  let* aggs = agg_specs ~params a.Plan.aggs in
  let* item_fns = compile_items ~params a.Plan.agg_items in
  let* having =
    match a.Plan.having with
    | None -> Ok None
    | Some h ->
        let* p = compile_pred ~params h in
        Ok (Some p)
  in
  let n_items = Array.length item_fns in
  let assemble ~keys ~aggs:agg_vals =
    let virt = Array.append keys agg_vals in
    let out = Array.make n_items Value.Null in
    for i = 0 to n_items - 1 do
      match item_fns.(i) virt with
      | Some v -> out.(i) <- v
      | None -> out.(i) <- Value.Null
    done;
    out
  in
  let epoch_out =
    (* where does the epoch key land in the output? an item that is exactly
       Field(epoch index in the virtual tuple) *)
    match a.Plan.epoch with
    | None -> None
    | Some ek ->
        let rec find i = function
          | [] -> None
          | (Expr_ir.Field (j, _), _) :: _ when j = ek -> Some i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 a.Plan.agg_items
  in
  let punct_in =
    match (a.Plan.epoch, a.Plan.epoch_in_field) with
    | Some ek, Some in_field ->
        let key_expr, _ = List.nth a.Plan.keys ek in
        Some (in_field, bound_translator ~params key_expr ~in_field ~in_arity)
    | _ -> None
  in
  Ok
    {
      Rts.Aggregate.pred;
      keys = key_fns;
      epoch_key = a.Plan.epoch;
      direction = a.Plan.epoch_dir;
      band = a.Plan.epoch_band;
      aggs;
      assemble;
      having;
      epoch_out;
      punct_in;
    }

(* A shard replica's select appends a private "__seq" column the
   reunification merge orders on. Tuples advance the merge's bound on
   that column, but a quiet replica must too: whenever the replica sees
   punctuation, re-publish it as a bound on the sequence column —
   [next_seq ()] is the next index this replica could ever assign, hence
   a firm lower bound on everything it will still emit. *)
let shard_seq_wrap (op : Rts.Operator.t) ~seq_idx ~next_seq =
  let seq_punct ~emit = emit (Rts.Item.Punct [ (seq_idx, Value.Int (next_seq ())) ]) in
  let on_item ~input item ~emit =
    op.Rts.Operator.on_item ~input item ~emit;
    match item with Rts.Item.Punct _ -> seq_punct ~emit | _ -> ()
  in
  let on_batch =
    match op.Rts.Operator.on_batch with
    | None -> None
    | Some f ->
        Some
          (fun ~input batch ~emit ->
            f ~input batch ~emit;
            match Rts.Batch.ctrl batch with
            | Some (Rts.Item.Punct _) -> seq_punct ~emit
            | _ -> ())
  in
  { op with Rts.Operator.on_item; on_batch }

let make_op ~params ~seed (phys : Split.phys_node) =
  match phys.Split.pbody with
  | Plan.Select { sel_input; sel_pred; sel_items; sample } ->
      let in_schema = Plan.input_schema sel_input in
      let* pred =
        match sel_pred with
        | None -> Ok None
        | Some p ->
            let* f = compile_pred ~params p in
            Ok (Some f)
      in
      let* pred =
        match sample with
        | None -> Ok pred
        | Some rate ->
            let rng = Gigascope_util.Prng.create seed in
            let sampled tup =
              (match pred with None -> true | Some p -> p tup)
              && Gigascope_util.Prng.float rng 1.0 < rate
            in
            Ok (Some sampled)
      in
      let* item_fns = compile_items ~params sel_items in
      let punct_map = punct_map_of_items ~in_schema sel_items in
      let rejected = Gigascope_obs.Metrics.Counter.make () in
      let op = Rts.Select_op.make ~rejected ?pred ~project:(projector item_fns) ~punct_map () in
      let op =
        match phys.Split.pshard with
        | Some { Split.sseq = Some (seq_idx, next_seq); _ } -> shard_seq_wrap op ~seq_idx ~next_seq
        | _ -> op
      in
      Ok (op, `Select rejected)
  | Plan.Agg a ->
      let* cfg = make_agg_config ~params ~sample_seed:seed a in
      if phys.Split.pkind = Rts.Node.Lfta then begin
        (* A shard replica's partials feed a reunification merge, which
           needs firm bounds from a replica even when the replica's next
           epoch is slow to arrive — so replicas translate input
           punctuation onto the epoch column. Unsharded LFTAs keep
           swallowing punctuation (the HFTA regenerates bounds). *)
        let sharded = phys.Split.pshard <> None in
        let lcfg =
          {
            Rts.Lfta_aggregate.table_bits = (if phys.Split.ptable_bits > 0 then phys.Split.ptable_bits else 12);
            pred = cfg.Rts.Aggregate.pred;
            keys = cfg.Rts.Aggregate.keys;
            epoch_key = cfg.Rts.Aggregate.epoch_key;
            direction = cfg.Rts.Aggregate.direction;
            band = cfg.Rts.Aggregate.band;
            aggs = cfg.Rts.Aggregate.aggs;
            assemble =
              (fun ~keys ~aggs -> cfg.Rts.Aggregate.assemble ~keys ~aggs);
            punct_in = (if sharded then cfg.Rts.Aggregate.punct_in else None);
            epoch_out = (if sharded then cfg.Rts.Aggregate.epoch_out else None);
          }
        in
        let agg = Rts.Lfta_aggregate.make lcfg in
        Ok (Rts.Lfta_aggregate.op agg, `Lfta_agg agg)
      end
      else begin
        let agg = Rts.Aggregate.make cfg in
        Ok (Rts.Aggregate.op agg, `Hfta_agg agg)
      end
  | Plan.Join j ->
      let left_schema = Plan.input_schema j.Plan.left in
      let n_left = Schema.arity left_schema in
      let* pred_fn =
        match j.Plan.join_pred with
        | None -> Ok (fun _ -> true)
        | Some p -> compile_pred ~params p
      in
      let* item_fns = compile_items ~params j.Plan.join_items in
      let project = projector item_fns in
      let find_identity target =
        let rec go i = function
          | [] -> None
          | (Expr_ir.Field (k, _), _) :: _ when k = target -> Some i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 j.Plan.join_items
      in
      let cfg =
        {
          Rts.Join_op.output_mode =
            (if j.Plan.ordered_output then Rts.Join_op.Ordered_output
             else Rts.Join_op.Banded_output);
          left_idx = j.Plan.left_ord;
          right_idx = j.Plan.right_ord;
          lo = j.Plan.win_lo;
          hi = j.Plan.win_hi;
          pred = (fun l r -> pred_fn (Array.append l r));
          assemble = (fun l r -> project (Array.append l r));
          left_out = find_identity j.Plan.left_ord;
          right_out = find_identity (n_left + j.Plan.right_ord);
        }
      in
      let join = Rts.Join_op.make cfg in
      Ok (Rts.Join_op.op join, `Join join)
  | Plan.Merge m ->
      let schema = Plan.input_schema (List.hd m.Plan.merge_inputs) in
      let direction =
        match
          Order_prop.direction_of (Schema.field_at schema m.Plan.merge_field).Schema.order
        with
        | Some d -> d
        | None -> Order_prop.Asc
      in
      (* Monotone fields beyond the merge attribute survive the merge;
         republishing their bounds keeps operators keyed on them (e.g. an
         epoch aggregation downstream of a shard reunification) unblocked. *)
      let forward =
        List.concat
          (List.init (Schema.arity schema) (fun i ->
               if i = m.Plan.merge_field then []
               else
                 match (Schema.field_at schema i).Schema.order with
                 | Order_prop.Monotone d | Order_prop.Strict d -> [ (i, d) ]
                 | _ -> []))
      in
      let cfg =
        {
          Rts.Merge_op.n_inputs = List.length m.Plan.merge_inputs;
          ordered_idx = m.Plan.merge_field;
          direction;
        }
      in
      let merge = Rts.Merge_op.make ~forward cfg in
      Ok (Rts.Merge_op.op merge, `Merge merge)

let input_names ~binder (phys : Split.phys_node) =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | Plan.From_protocol { interface; protocol; _ } :: rest ->
        let* name = binder.bind_source ~interface ~protocol ~nic:phys.Split.pnic in
        go (name :: acc) rest
    | Plan.From_stream { stream; _ } :: rest -> go (stream :: acc) rest
  in
  go [] (Plan.inputs_of_body phys.Split.pbody)

let install mgr ~source_binder ?(params = []) ?(seed = 0x6516) ?chan_capacity
    (split : Split.t) =
  let param_tbl : params = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace param_tbl k v) params;
  (* Check every declared parameter has a value when used in handles is
     deferred to expression compilation; here just install node by node. *)
  let reg = Rts.Manager.metrics mgr in
  (* Operator-specific cells attach once the node exists: the node name
     anchors the metric namespace. *)
  let register_op_metrics name stat =
    let pfx sub = Printf.sprintf "rts.node.%s.%s" name sub in
    match stat with
    | `Select rejected -> Gigascope_obs.Metrics.attach_counter reg (pfx "select.rejected") rejected
    | `Lfta_agg agg -> Rts.Lfta_aggregate.register_metrics agg reg ~prefix:(pfx "lfta")
    | `Hfta_agg agg -> Rts.Aggregate.register_metrics agg reg ~prefix:(pfx "agg")
    | `Join join -> Rts.Join_op.register_metrics join reg ~prefix:(pfx "join")
    | `Merge merge -> Rts.Merge_op.register_metrics merge reg ~prefix:(pfx "merge")
  in
  let rec go acc_names acc_stats = function
    | [] -> Ok (List.rev acc_names, acc_stats)
    | (phys : Split.phys_node) :: rest ->
        let* op, stat = make_op ~params:param_tbl ~seed phys in
        let* inputs = input_names ~binder:source_binder phys in
        (* Certified-burst auto-sizing: the engine supplies the input
           ring capacity this node needs to absorb its upstream's
           largest single-step emission (an LFTA table flush, a merge
           drain). The manager only ever grows past its default. *)
        let capacity =
          match chan_capacity with Some f -> f phys.Split.pname | None -> None
        in
        let* node =
          Rts.Manager.add_query_node_sized mgr ~capacity ~name:phys.Split.pname
            ~kind:phys.Split.pkind ~schema:phys.Split.pschema ~inputs ~op
        in
        Rts.Node.set_placement node phys.Split.pplace;
        Rts.Node.set_shard node (Option.map (fun s -> s.Split.sshard) phys.Split.pshard);
        register_op_metrics phys.Split.pname stat;
        go (phys.Split.pname :: acc_names) ((phys.Split.pname, stat) :: acc_stats) rest
  in
  let* node_names, stats = go [] [] split.Split.phys in
  let inst_name = split.Split.plan.Plan.name in
  match Rts.Manager.find mgr inst_name with
  | None -> err "codegen: query node %s vanished" inst_name
  | Some out_node ->
      let pick f = List.filter_map (fun (n, s) -> f n s) stats in
      Ok
        {
          inst_name;
          out_node;
          node_names;
          inst_params = param_tbl;
          lfta_aggs = pick (fun n s -> match s with `Lfta_agg a -> Some (n, a) | _ -> None);
          hfta_aggs = pick (fun n s -> match s with `Hfta_agg a -> Some (n, a) | _ -> None);
          merges = pick (fun n s -> match s with `Merge m -> Some (n, m) | _ -> None);
          joins = pick (fun n s -> match s with `Join j -> Some (n, j) | _ -> None);
        }
