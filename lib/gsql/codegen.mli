(** Code generation: the split physical plan becomes running query nodes.

    The real Gigascope generates C that is compiled into the runtime; the
    OCaml analogue compiles each expression once into a closure over the
    input tuple (field indices resolved, handles instantiated), then wires
    the operators into the stream manager. Pass-by-handle arguments are
    prepared here, exactly once per query instantiation.

    Query parameters are held in a mutable environment that the compiled
    closures read, so {!set_param} takes effect on the fly ("similar to
    constants but which can be changed on-the-fly", Section 3) — except for
    handle parameters, whose preprocessing already happened. *)

module Rts = Gigascope_rts

type params = (string, Rts.Value.t) Hashtbl.t

val compile_expr :
  params:params -> Expr_ir.t -> (Rts.Value.t array -> Rts.Value.t option, string) result
(** [None] at evaluation time means "no value": a partial function missed,
    a parameter is unset, or arithmetic faulted (division by zero). The
    containing tuple is then discarded, per GSQL's partial-function
    semantics. *)

val compile_pred : params:params -> Expr_ir.t -> (Rts.Value.t array -> bool, string) result
(** Predicate view: "no value" is false. *)

type source_binder = {
  bind_source :
    interface:string ->
    protocol:string ->
    nic:Split.nic_hint option ->
    (string, string) result;
      (** Resolve (creating if needed) the source node for
          [interface.protocol], applying the NIC hint; returns the
          registered node name to subscribe to. *)
}

type instance = {
  inst_name : string;  (** the query's registered stream name *)
  out_node : Rts.Node.t;
  node_names : string list;  (** every node this query registered, in order *)
  inst_params : params;
  lfta_aggs : (string * Rts.Lfta_aggregate.t) list;
  hfta_aggs : (string * Rts.Aggregate.t) list;
  merges : (string * Rts.Merge_op.t) list;
  joins : (string * Rts.Join_op.t) list;
}

val set_param : instance -> string -> Rts.Value.t -> unit

val install :
  Rts.Manager.t ->
  source_binder:source_binder ->
  ?params:(string * Rts.Value.t) list ->
  ?seed:int ->
  ?chan_capacity:(string -> int option) ->
  Split.t ->
  (instance, string) result
(** Registers every physical node with the stream manager. [seed] feeds the
    sampling operator. [chan_capacity] maps a physical node name to the
    input-ring capacity it needs (certified-burst auto-sizing; the
    manager only grows past its default). Fails without side effects on
    expression-compile errors; node-registration failures may leave
    earlier nodes registered. *)
