module Rts = Gigascope_rts
module Order_prop = Rts.Order_prop

(* An output expression inherits an ordering property when it is a monotone
   function of exactly one ordered input field. Strictness is preserved
   only by the identity projection. *)
let of_expr schema expr =
  match Expr_ir.fields_used expr with
  | [i] when i < Rts.Schema.arity schema -> (
      let prop = (Rts.Schema.field_at schema i).Rts.Schema.order in
      match expr with
      | Expr_ir.Field _ -> prop
      | Expr_ir.Call (f, [_]) when f.Rts.Func.injective -> (
          (* a one-to-one function of a never-repeating attribute never
             repeats: the paper's hash example (Section 2.1, property 2) *)
          match prop with
          | Order_prop.Strict _ | Order_prop.Nonrepeating -> Order_prop.Nonrepeating
          | _ ->
              if Expr_ir.monotone_in expr i then
                Order_prop.imputed_through_arithmetic prop ~monotone_fn:true
              else Order_prop.Unordered)
      | _ ->
          if Expr_ir.monotone_in expr i then
            Order_prop.imputed_through_arithmetic prop ~monotone_fn:true
          else Order_prop.Unordered)
  | _ -> Order_prop.Unordered

let of_select_item schema expr = of_expr schema expr

let of_group_key schema expr ~is_epoch =
  if is_epoch then
    (* Closed groups are flushed in epoch order, so the key is monotone in
       the output even when the input was only banded. *)
    match Order_prop.direction_of (of_expr schema expr) with
    | Some d -> Order_prop.Monotone d
    | None -> Order_prop.Monotone Order_prop.Asc
  else Order_prop.Unordered

let of_join_item ~left ~right ~win_lo ~win_hi ~ordered_output expr =
  let n_left = Rts.Schema.arity left in
  let window_span = win_hi -. win_lo in
  (* A windowless (infinite-span) join gives downstream operators no
     usable order at all: a banded property with an infinite band would
     let an epoch key look certifiable when it is not. *)
  if not (Float.is_finite window_span) then Order_prop.Unordered
  else
  match Expr_ir.fields_used expr with
  | [i] ->
      let is_left = i < n_left in
      let side_schema, idx = if is_left then (left, i) else (right, i - n_left) in
      let prop = (Rts.Schema.field_at side_schema idx).Rts.Schema.order in
      let monotone =
        match expr with Expr_ir.Field _ -> true | _ -> Expr_ir.monotone_in expr i
      in
      if not monotone then Order_prop.Unordered
      else begin
        match Order_prop.direction_of prop with
        | Some d ->
            if ordered_output && is_left then
              (* the buffered algorithm releases matches in left order *)
              Order_prop.Monotone d
            else begin
              (* probe order: the attribute can run backwards by up to the
                 window span plus its own band *)
              let own_band = match Order_prop.band_of prop with Some b -> b | None -> 0.0 in
              Order_prop.Banded (d, own_band +. window_span)
            end
        | None -> Order_prop.Unordered
      end
  | _ -> Order_prop.Unordered

let of_agg_result schema ~kind ~arg ~group_names ~has_epoch =
  match (kind, arg) with
  | (Rts.Agg_fn.Min | Rts.Agg_fn.Max), Some e when has_epoch && group_names <> [] -> (
      (* successive epochs of the same group see later extrema of an
         ordered attribute; across groups there is no order *)
      match of_expr schema e with
      | Order_prop.Strict d | Order_prop.Monotone d | Order_prop.Banded (d, _) ->
          Order_prop.In_group (group_names, d)
      | _ -> Order_prop.Unordered)
  | _ -> Order_prop.Unordered

let of_merge props =
  match props with
  | [] -> Order_prop.Unordered
  | first :: rest -> List.fold_left Order_prop.weaken first rest
