module Rts = Gigascope_rts
module Bpf = Gigascope_bpf
module Schema = Rts.Schema
module Ty = Rts.Ty
module Value = Rts.Value
module Order_prop = Rts.Order_prop

type nic_hint = { nic_filter : Bpf.Filter.t option; snap_len : int }

type shard_tag = {
  sshard : int;
  sseq : (int * (unit -> int)) option;
}

type phys_node = {
  pname : string;
  pkind : Rts.Node.kind;
  pbody : Plan.body;
  pschema : Schema.t;
  pnic : nic_hint option;
  ptable_bits : int;
  pplace : int option;
  pshard : shard_tag option;
}

type t = { plan : Plan.t; phys : phys_node list }

(* ---------------- predicate lowering to the filter machine ------------- *)

let cmp_of_binop = function
  | Ast.Eq -> Some Bpf.Filter.Eq
  | Ast.Ne -> Some Bpf.Filter.Ne
  | Ast.Lt -> Some Bpf.Filter.Lt
  | Ast.Le -> Some Bpf.Filter.Le
  | Ast.Gt -> Some Bpf.Filter.Gt
  | Ast.Ge -> Some Bpf.Filter.Ge
  | _ -> None

let const_int = function
  | Expr_ir.Const (Value.Int i) -> Some i
  | Expr_ir.Const (Value.Ip i) -> Some i
  | Expr_ir.Const (Value.Bool b) -> Some (if b then 1 else 0)
  | _ -> None

let flip_cmp = function
  | Bpf.Filter.Lt -> Bpf.Filter.Gt
  | Bpf.Filter.Le -> Bpf.Filter.Ge
  | Bpf.Filter.Gt -> Bpf.Filter.Lt
  | Bpf.Filter.Ge -> Bpf.Filter.Le
  | (Bpf.Filter.Eq | Bpf.Filter.Ne) as c -> c

(* Lower a single expression completely, or fail. *)
let rec lower_exact ~bpf_of_field e =
  match e with
  | Expr_ir.Const (Value.Bool true) -> Some Bpf.Filter.True
  | Expr_ir.Const (Value.Bool false) -> Some Bpf.Filter.False
  | Expr_ir.Unop (Ast.Not, a) ->
      Option.map (fun f -> Bpf.Filter.Not f) (lower_exact ~bpf_of_field a)
  | Expr_ir.Binop (Ast.And, a, b, _) -> (
      match (lower_exact ~bpf_of_field a, lower_exact ~bpf_of_field b) with
      | Some fa, Some fb -> Some (Bpf.Filter.And (fa, fb))
      | _ -> None)
  | Expr_ir.Binop (Ast.Or, a, b, _) -> (
      match (lower_exact ~bpf_of_field a, lower_exact ~bpf_of_field b) with
      | Some fa, Some fb -> Some (Bpf.Filter.Or (fa, fb))
      | _ -> None)
  | Expr_ir.Binop (op, Expr_ir.Field (i, _), rhs, _) -> (
      match (cmp_of_binop op, bpf_of_field i, const_int rhs) with
      | Some cmp, Some field, Some k -> Some (Bpf.Filter.Cmp (field, cmp, k))
      | _ -> None)
  | Expr_ir.Binop (op, lhs, Expr_ir.Field (i, _), _) -> (
      match (cmp_of_binop op, bpf_of_field i, const_int lhs) with
      | Some cmp, Some field, Some k -> Some (Bpf.Filter.Cmp (field, flip_cmp cmp, k))
      | _ -> None)
  | Expr_ir.Binop
      (Ast.Ne, Expr_ir.Binop (Ast.Band, Expr_ir.Field (i, _), mask, _), rhs, _)
    when const_int rhs = Some 0 -> (
      match (bpf_of_field i, const_int mask) with
      | Some field, Some m -> Some (Bpf.Filter.Flag_set (field, m))
      | _ -> None)
  | Expr_ir.Binop
      (Ast.Eq, Expr_ir.Binop (Ast.Band, Expr_ir.Field (i, _), mask, _), rhs, _)
    when const_int rhs = Some 0 -> (
      match (bpf_of_field i, const_int mask) with
      | Some field, Some m -> Some (Bpf.Filter.Not (Bpf.Filter.Flag_set (field, m)))
      | _ -> None)
  | _ -> None

let lower_filter ~bpf_of_field pred =
  (* Lower the lowerable conjuncts; dropping one weakens the filter, which
     is safe because the LFTA re-evaluates the full predicate. *)
  let lowered = List.filter_map (lower_exact ~bpf_of_field) (Expr_ir.conjuncts pred) in
  match lowered with
  | [] -> None
  | first :: rest ->
      Some (List.fold_left (fun acc f -> Bpf.Filter.And (acc, f)) first rest)

(* ---------------- helpers ---------------------------------------------- *)

let partition_conjuncts pred =
  match pred with
  | None -> ([], [])
  | Some p -> List.partition Expr_ir.is_lfta_safe (Expr_ir.conjuncts p)

let items_lfta_safe items = List.for_all (fun (e, _) -> Expr_ir.is_lfta_safe e) items

(* Build the projection LFTA that forwards the given input fields. *)
let projection_items schema field_indices =
  List.map
    (fun i ->
      let f = Schema.field_at schema i in
      (Expr_ir.Field (i, f.Schema.ty), f.Schema.name))
    field_indices

let projection_schema schema field_indices =
  Schema.make
    (List.map (fun i -> Schema.field_at schema i) field_indices)

let mapping_of field_indices =
  let tbl = Hashtbl.create 8 in
  List.iteri (fun pos i -> Hashtbl.replace tbl i pos) field_indices;
  fun i ->
    match Hashtbl.find_opt tbl i with
    | Some pos -> pos
    | None -> invalid_arg (Printf.sprintf "split: field %d not forwarded by LFTA" i)

let nic_hint_for catalog ~protocol ~schema ~pred ~fields_needed =
  match Catalog.find_protocol catalog protocol with
  | None -> { nic_filter = None; snap_len = 65535 }
  | Some proto ->
      let bpf_of_field i =
        let name = (Schema.field_at schema i).Schema.name in
        List.assoc_opt (String.lowercase_ascii name)
          (List.map (fun (n, f) -> (String.lowercase_ascii n, f)) proto.Catalog.bpf_fields)
      in
      let nic_filter = Option.bind pred (lower_filter ~bpf_of_field) in
      let needs_payload =
        List.exists
          (fun i ->
            let name = String.lowercase_ascii (Schema.field_at schema i).Schema.name in
            List.exists
              (fun p -> String.lowercase_ascii p = name)
              proto.Catalog.payload_fields)
          fields_needed
      in
      (* 134 covers Ethernet + maximal IP + maximal TCP headers. *)
      { nic_filter; snap_len = (if needs_payload then 65535 else 134) }

let fields_of_items items =
  List.sort_uniq compare (List.concat_map (fun (e, _) -> Expr_ir.fields_used e) items)

let fields_of_pred = function
  | None -> []
  | Some p -> Expr_ir.fields_used p

(* ---------------- per-shape splitting ----------------------------------- *)

let split_select catalog ~qname ~interface ~protocol ~schema ~pred ~items ~sample =
  let cheap, expensive = partition_conjuncts pred in
  let input = Plan.From_protocol { interface; protocol; schema } in
  if expensive = [] && items_lfta_safe items && sample = None then
    (* the whole query runs as an LFTA *)
    let fields_needed =
      List.sort_uniq compare (fields_of_items items @ fields_of_pred pred)
    in
    let out_schema_items = items in
    let props = List.map (fun (e, _) -> Order_infer.of_select_item schema e) items in
    let pschema =
      Schema.make
        (List.map2
           (fun (e, name) order -> { Schema.name; ty = Expr_ir.ty e; order })
           out_schema_items props)
    in
    [
      {
        pname = qname;
        pkind = Rts.Node.Lfta;
        pbody =
          Plan.Select
            { sel_input = input; sel_pred = Expr_ir.conjoin cheap; sel_items = items; sample = None };
        pschema;
        pnic = Some (nic_hint_for catalog ~protocol ~schema ~pred:(Expr_ir.conjoin cheap) ~fields_needed);
        ptable_bits = 0;
        pplace = None; pshard = None;
      };
    ]
  else begin
    (* LFTA: cheap filter + projection of every field the HFTA needs *)
    let hfta_fields =
      List.sort_uniq compare
        (List.concat_map Expr_ir.fields_used expensive @ fields_of_items items)
    in
    let lfta_name = "_lfta_" ^ qname in
    let lfta_schema = projection_schema schema hfta_fields in
    let lfta =
      {
        pname = lfta_name;
        pkind = Rts.Node.Lfta;
        pbody =
          Plan.Select
            {
              sel_input = input;
              sel_pred = Expr_ir.conjoin cheap;
              sel_items = projection_items schema hfta_fields;
              sample = None;
            };
        pschema = lfta_schema;
        pnic =
          Some
            (nic_hint_for catalog ~protocol ~schema ~pred:(Expr_ir.conjoin cheap)
               ~fields_needed:
                 (List.sort_uniq compare (hfta_fields @ fields_of_pred (Expr_ir.conjoin cheap))));
        ptable_bits = 0;
        pplace = None; pshard = None;
      }
    in
    let mapping = mapping_of hfta_fields in
    let rebased_pred =
      Expr_ir.conjoin (List.map (Expr_ir.rebase_fields ~mapping) expensive)
    in
    let rebased_items =
      List.map (fun (e, name) -> (Expr_ir.rebase_fields e ~mapping, name)) items
    in
    let props =
      List.map (fun (e, _) -> Order_infer.of_select_item lfta_schema e) rebased_items
    in
    let hschema =
      Schema.make
        (List.map2
           (fun (e, name) order -> { Schema.name; ty = Expr_ir.ty e; order })
           rebased_items props)
    in
    let hfta =
      {
        pname = qname;
        pkind = Rts.Node.Hfta;
        pbody =
          Plan.Select
            {
              sel_input = Plan.From_stream { stream = lfta_name; schema = lfta_schema };
              sel_pred = rebased_pred;
              sel_items = rebased_items;
              sample;
            };
        pschema = hschema;
        pnic = None;
        ptable_bits = 0;
        pplace = None; pshard = None;
      }
    in
    [lfta; hfta]
  end

(* Split an aggregation over a protocol into LFTA sub-agg + HFTA super-agg. *)
let split_agg catalog ~qname ~table_bits ~interface ~protocol ~schema (a : Plan.agg_body)
    ~out_schema =
  let cheap, expensive = partition_conjuncts a.Plan.agg_pred in
  let input = Plan.From_protocol { interface; protocol; schema } in
  let keys_safe = List.for_all (fun (k, _) -> Expr_ir.is_lfta_safe k) a.Plan.keys in
  let args_safe =
    List.for_all
      (fun (c : Plan.agg_call) ->
        match c.Plan.arg with None -> true | Some e -> Expr_ir.is_lfta_safe e)
      a.Plan.aggs
  in
  if expensive = [] && keys_safe && args_safe then begin
    (* sub-aggregate in the LFTA, super-aggregate in the HFTA *)
    let lfta_name = "_lfta_" ^ qname in
    let n_keys = List.length a.Plan.keys in
    (* expand aggs into sub-aggregate calls; remember each original agg's
       slot list *)
    let sub_calls = ref [] and slots = ref [] in
    List.iter
      (fun (c : Plan.agg_call) ->
        let kinds = Rts.Agg_fn.sub_kinds c.Plan.kind in
        let these =
          List.mapi
            (fun j kind ->
              let idx = List.length !sub_calls + j in
              ignore idx;
              {
                Plan.kind;
                arg = (match kind with Rts.Agg_fn.Count -> None | _ -> c.Plan.arg);
                agg_name = Printf.sprintf "%s_p%d" c.Plan.agg_name j;
              })
            kinds
        in
        let base = List.length !sub_calls in
        slots := !slots @ [List.mapi (fun j _ -> base + j) these];
        sub_calls := !sub_calls @ these)
      a.Plan.aggs;
    let sub_calls = !sub_calls and slots = !slots in
    (* LFTA output schema: keys then partials *)
    let epoch_prop =
      let dir = a.Plan.epoch_dir in
      if a.Plan.epoch_band = 0.0 then Order_prop.Monotone dir
      else Order_prop.Banded (dir, a.Plan.epoch_band)
    in
    let lfta_schema =
      Schema.make
        (List.mapi
           (fun i (k, name) ->
             {
               Schema.name;
               ty = Expr_ir.ty k;
               order = (if a.Plan.epoch = Some i then epoch_prop else Order_prop.Unordered);
             })
           a.Plan.keys
        @ List.map
            (fun (c : Plan.agg_call) ->
              (* a sketch partial's column type is Ty.Sketch: the state
                 itself rides the stream, not an estimate *)
              let ty =
                Rts.Agg_fn.result_ty c.Plan.kind ~arg_ty:(Option.map Expr_ir.ty c.Plan.arg)
              in
              { Schema.name = c.Plan.agg_name; ty; order = Order_prop.Unordered })
            sub_calls)
    in
    let lfta_items =
      List.mapi (fun i (k, name) -> (Expr_ir.Field (i, Expr_ir.ty k), name)) a.Plan.keys
      @ List.mapi
          (fun j (c : Plan.agg_call) ->
            let f = Schema.field_at lfta_schema (n_keys + j) in
            (Expr_ir.Field (n_keys + j, f.Schema.ty), c.Plan.agg_name))
          sub_calls
    in
    let lfta =
      {
        pname = lfta_name;
        pkind = Rts.Node.Lfta;
        pbody =
          Plan.Agg
            {
              a with
              Plan.agg_input = input;
              agg_pred = Expr_ir.conjoin cheap;
              aggs = sub_calls;
              agg_items = lfta_items;
              having = None;
            };
        pschema = lfta_schema;
        pnic =
          Some
            (nic_hint_for catalog ~protocol ~schema ~pred:(Expr_ir.conjoin cheap)
               ~fields_needed:
                 (List.sort_uniq compare
                    (fields_of_pred (Expr_ir.conjoin cheap)
                    @ List.concat_map (fun (k, _) -> Expr_ir.fields_used k) a.Plan.keys
                    @ List.concat_map
                        (fun (c : Plan.agg_call) ->
                          match c.Plan.arg with Some e -> Expr_ir.fields_used e | None -> [])
                        a.Plan.aggs)));
        ptable_bits = table_bits;
        pplace = None; pshard = None;
      }
    in
    (* HFTA super-aggregation over the LFTA's output *)
    let super_keys =
      List.mapi
        (fun i (k, name) -> (Expr_ir.Field (i, Expr_ir.ty k), name))
        a.Plan.keys
    in
    let super_calls = ref [] and super_slots = ref [] in
    List.iteri
      (fun orig_idx (c : Plan.agg_call) ->
        let sub_slot_list = List.nth slots orig_idx in
        let kinds = Rts.Agg_fn.super_kind c.Plan.kind in
        let base = List.length !super_calls in
        let these =
          List.map2
            (fun kind sub_slot ->
              let f = Schema.field_at lfta_schema (n_keys + sub_slot) in
              {
                Plan.kind;
                arg = Some (Expr_ir.Field (n_keys + sub_slot, f.Schema.ty));
                agg_name = f.Schema.name ^ "_s";
              })
            kinds sub_slot_list
        in
        super_slots := !super_slots @ [List.mapi (fun j _ -> base + j) these];
        super_calls := !super_calls @ these)
      a.Plan.aggs;
    let super_calls = !super_calls and super_slots = !super_slots in
    (* rewrite the original items/having: key refs unchanged; agg ref j ->
       super slot (or fdiv(sum, count) for avg) *)
    let fdiv =
      match Rts.Func.find (Catalog.functions catalog) "fdiv" with
      | Some f -> f
      | None -> invalid_arg "split: fdiv builtin missing"
    in
    let subst i =
      if i < n_keys then
        Expr_ir.Field (i, Expr_ir.ty (fst (List.nth a.Plan.keys i)))
      else begin
        let orig_idx = i - n_keys in
        let c = List.nth a.Plan.aggs orig_idx in
        let sslots = List.nth super_slots orig_idx in
        match (c.Plan.kind, sslots) with
        | Rts.Agg_fn.Avg, [sum_slot; cnt_slot] ->
            Expr_ir.Call
              ( fdiv,
                [
                  Expr_ir.Field (n_keys + sum_slot, Ty.Float);
                  Expr_ir.Field (n_keys + cnt_slot, Ty.Float);
                ] )
        | _, [slot] ->
            let ty =
              Rts.Agg_fn.result_ty c.Plan.kind ~arg_ty:(Option.map Expr_ir.ty c.Plan.arg)
            in
            Expr_ir.Field (n_keys + slot, ty)
        | _ -> invalid_arg "split: unexpected super-aggregate arity"
      end
    in
    let super_items =
      List.map (fun (e, name) -> (Expr_ir.subst_fields e ~subst, name)) a.Plan.agg_items
    in
    let super_having = Option.map (Expr_ir.subst_fields ~subst) a.Plan.having in
    let hfta =
      {
        pname = qname;
        pkind = Rts.Node.Hfta;
        pbody =
          Plan.Agg
            {
              agg_input = Plan.From_stream { stream = lfta_name; schema = lfta_schema };
              agg_pred = None;
              keys = super_keys;
              epoch = a.Plan.epoch;
              epoch_dir = a.Plan.epoch_dir;
              (* LFTA evictions can straggle within the table's epoch; the
                 input to the HFTA keeps the source band. *)
              epoch_band = a.Plan.epoch_band;
              epoch_in_field =
                (match a.Plan.epoch with Some i -> Some i | None -> None);
              aggs = super_calls;
              agg_items = super_items;
              having = super_having;
            };
        pschema = out_schema;
        pnic = None;
        ptable_bits = 0;
        pplace = None; pshard = None;
      }
    in
    [lfta; hfta]
  end
  else begin
    (* Expensive pieces before aggregation: LFTA only filters/projects. *)
    let needed =
      List.sort_uniq compare
        (List.concat_map Expr_ir.fields_used expensive
        @ List.concat_map (fun (k, _) -> Expr_ir.fields_used k) a.Plan.keys
        @ List.concat_map
            (fun (c : Plan.agg_call) ->
              match c.Plan.arg with Some e -> Expr_ir.fields_used e | None -> [])
            a.Plan.aggs)
    in
    let lfta_name = "_lfta_" ^ qname in
    let lfta_schema = projection_schema schema needed in
    let lfta =
      {
        pname = lfta_name;
        pkind = Rts.Node.Lfta;
        pbody =
          Plan.Select
            {
              sel_input = input;
              sel_pred = Expr_ir.conjoin cheap;
              sel_items = projection_items schema needed;
              sample = None;
            };
        pschema = lfta_schema;
        pnic =
          Some
            (nic_hint_for catalog ~protocol ~schema ~pred:(Expr_ir.conjoin cheap)
               ~fields_needed:(List.sort_uniq compare (needed @ fields_of_pred (Expr_ir.conjoin cheap))));
        ptable_bits = 0;
        pplace = None; pshard = None;
      }
    in
    let mapping = mapping_of needed in
    let rebase = Expr_ir.rebase_fields ~mapping in
    let hfta =
      {
        pname = qname;
        pkind = Rts.Node.Hfta;
        pbody =
          Plan.Agg
            {
              a with
              Plan.agg_input = Plan.From_stream { stream = lfta_name; schema = lfta_schema };
              agg_pred = Expr_ir.conjoin (List.map rebase expensive);
              keys = List.map (fun (k, n) -> (rebase k, n)) a.Plan.keys;
              epoch_in_field = Option.map mapping a.Plan.epoch_in_field;
              aggs =
                List.map
                  (fun (c : Plan.agg_call) -> { c with Plan.arg = Option.map rebase c.Plan.arg })
                  a.Plan.aggs;
            };
        pschema = out_schema;
        pnic = None;
        ptable_bits = 0;
        pplace = None; pshard = None;
      }
    in
    [lfta; hfta]
  end

(* For join/merge over protocols: a projection LFTA per protocol input. *)
let protocol_feeder catalog ~name ~interface ~protocol ~schema ~fields ~pred =
  let lfta_schema = projection_schema schema fields in
  {
    pname = name;
    pkind = Rts.Node.Lfta;
    pbody =
      Plan.Select
        {
          sel_input = Plan.From_protocol { interface; protocol; schema };
          sel_pred = pred;
          sel_items = projection_items schema fields;
          sample = None;
        };
    pschema = lfta_schema;
    pnic =
      Some
        (nic_hint_for catalog ~protocol ~schema ~pred
           ~fields_needed:(List.sort_uniq compare (fields @ fields_of_pred pred)));
    ptable_bits = 0;
    pplace = None; pshard = None;
  }

let split catalog ?(lfta_table_bits = 12) ?placement (plan : Plan.t) =
  let qname = plan.Plan.name in
  (* Placement from the DEFINE block lands on the query's HFTAs; LFTAs
     always run on the packet-path domain, like the paper's RTS. *)
  let placed t =
    match placement with
    | None -> t
    | Some d ->
        {
          t with
          phys =
            List.map
              (fun p -> if p.pkind = Rts.Node.Hfta then { p with pplace = Some d } else p)
              t.phys;
        }
  in
  Result.map placed
  @@
  match plan.Plan.body with
  | Plan.Select { sel_input = Plan.From_protocol { interface; protocol; schema }; sel_pred; sel_items; sample }
    ->
      Ok
        {
          plan;
          phys = split_select catalog ~qname ~interface ~protocol ~schema ~pred:sel_pred ~items:sel_items ~sample;
        }
  | Plan.Select _ ->
      (* stream input: a single HFTA *)
      Ok
        {
          plan;
          phys =
            [
              {
                pname = qname;
                pkind = Rts.Node.Hfta;
                pbody = plan.Plan.body;
                pschema = plan.Plan.out_schema;
                pnic = None;
                ptable_bits = 0;
        pplace = None; pshard = None;
              };
            ];
        }
  | Plan.Agg ({ agg_input = Plan.From_protocol { interface; protocol; schema }; _ } as a) ->
      Ok
        {
          plan;
          phys =
            split_agg catalog ~qname ~table_bits:lfta_table_bits ~interface ~protocol ~schema a
              ~out_schema:plan.Plan.out_schema;
        }
  | Plan.Agg _ ->
      Ok
        {
          plan;
          phys =
            [
              {
                pname = qname;
                pkind = Rts.Node.Hfta;
                pbody = plan.Plan.body;
                pschema = plan.Plan.out_schema;
                pnic = None;
                ptable_bits = 0;
        pplace = None; pshard = None;
              };
            ];
        }
  | Plan.Join j -> begin
      (* For each protocol side, insert a projection LFTA that forwards the
         fields the join touches and applies the conjuncts that reference
         only that side. *)
      let left_schema = Plan.input_schema j.Plan.left in
      let n_left = Schema.arity left_schema in
      let all_fields =
        List.sort_uniq compare
          (fields_of_items j.Plan.join_items
          @ fields_of_pred j.Plan.join_pred
          @ [j.Plan.left_ord; n_left + j.Plan.right_ord])
      in
      let left_fields = List.filter (fun i -> i < n_left) all_fields in
      let right_fields =
        List.filter_map (fun i -> if i >= n_left then Some (i - n_left) else None) all_fields
      in
      let conjs = match j.Plan.join_pred with Some p -> Expr_ir.conjuncts p | None -> [] in
      let side_pred ~left =
        let eligible c =
          Expr_ir.is_lfta_safe c
          && List.for_all
               (fun i -> if left then i < n_left else i >= n_left)
               (Expr_ir.fields_used c)
          && Expr_ir.fields_used c <> []
        in
        let mine = List.filter eligible conjs in
        let mapping i = if left then i else i - n_left in
        Expr_ir.conjoin (List.map (Expr_ir.rebase_fields ~mapping) mine)
      in
      let make_side input ~left ~fields ~suffix =
        match input with
        | Plan.From_protocol { interface; protocol; schema } ->
            let name = Printf.sprintf "_lfta_%s_%s" qname suffix in
            let node =
              protocol_feeder catalog ~name ~interface ~protocol ~schema ~fields
                ~pred:(side_pred ~left)
            in
            (Plan.From_stream { stream = name; schema = node.pschema }, Some node, mapping_of fields)
        | Plan.From_stream _ -> (input, None, fun i -> i)
      in
      let left_input, left_node, left_map = make_side j.Plan.left ~left:true ~fields:left_fields ~suffix:"l" in
      let right_input, right_node, right_map =
        make_side j.Plan.right ~left:false ~fields:right_fields ~suffix:"r"
      in
      let new_n_left = Schema.arity (Plan.input_schema left_input) in
      let mapping i =
        if i < n_left then left_map i else new_n_left + right_map (i - n_left)
      in
      let rebase = Expr_ir.rebase_fields ~mapping in
      let hfta =
        {
          pname = qname;
          pkind = Rts.Node.Hfta;
          pbody =
            Plan.Join
              {
                j with
                Plan.left = left_input;
                right = right_input;
                left_ord = left_map j.Plan.left_ord;
                right_ord = right_map j.Plan.right_ord;
                join_pred = Option.map rebase j.Plan.join_pred;
                join_items = List.map (fun (e, n) -> (rebase e, n)) j.Plan.join_items;
              };
          pschema = plan.Plan.out_schema;
          pnic = None;
          ptable_bits = 0;
        pplace = None; pshard = None;
        }
      in
      Ok { plan; phys = List.filter_map Fun.id [left_node; right_node] @ [hfta] }
    end
  | Plan.Merge m -> begin
      (* Protocol inputs get identity-projection LFTAs. *)
      let feeders_and_inputs =
        List.mapi
          (fun idx input ->
            match input with
            | Plan.From_protocol { interface; protocol; schema } ->
                let fields = List.init (Schema.arity schema) Fun.id in
                let name = Printf.sprintf "_lfta_%s_%d" qname idx in
                let node =
                  protocol_feeder catalog ~name ~interface ~protocol ~schema ~fields ~pred:None
                in
                (Some node, Plan.From_stream { stream = name; schema = node.pschema })
            | Plan.From_stream _ -> (None, input))
          m.Plan.merge_inputs
      in
      let feeders = List.filter_map fst feeders_and_inputs in
      let inputs = List.map snd feeders_and_inputs in
      let hfta =
        {
          pname = qname;
          pkind = Rts.Node.Hfta;
          pbody = Plan.Merge { m with Plan.merge_inputs = inputs };
          pschema = plan.Plan.out_schema;
          pnic = None;
          ptable_bits = 0;
        pplace = None; pshard = None;
        }
      in
      Ok { plan; phys = feeders @ [hfta] }
    end

(* ---------------- sharded data-parallel execution ----------------------- *)

module Metrics = Gigascope_obs.Metrics

type shard_mode = Hash_key | Round_robin

type shard_info = {
  squery : string;
  smode : shard_mode;
  sshards : int;
  stuples : Metrics.Counter.t array;
  sreunify : string;
}

let replica_name qname i = Printf.sprintf "_shard_%s_%d" qname i

(* Every replica sees the same broadcast input stream and evaluates the
   same cheap conjuncts, so the private counters inside the ownership
   closures advance in lockstep across replicas and exactly one replica
   accepts each tuple. The ownership conjunct must come LAST: And
   short-circuits left-to-right, which is what keeps the counters equal
   on every replica regardless of which conjunct rejects a tuple. *)
let with_owner pred owner =
  let conjs = match pred with None -> [] | Some p -> Expr_ir.conjuncts p in
  match Expr_ir.conjoin (conjs @ [ owner ]) with Some p -> p | None -> owner

let round_robin_owner ~shards ~me ~accepted =
  let ctr = ref 0 in
  let f =
    Rts.Func.pure
      ~name:(Printf.sprintf "_shard_rr_%d_of_%d" me shards)
      ~arg_tys:[] ~ret_ty:Ty.Bool
      (fun _ ->
        let s = !ctr in
        incr ctr;
        let mine = s mod shards = me in
        if mine then Metrics.Counter.incr accepted;
        Some (Value.Bool mine))
  in
  (Expr_ir.Call (f, []), ctr)

let hash_owner ~shards ~me ~accepted key_exprs =
  let f =
    Rts.Func.pure
      ~name:(Printf.sprintf "_shard_hash_%d_of_%d" me shards)
      ~arg_tys:(List.map Expr_ir.ty key_exprs)
      ~ret_ty:Ty.Bool
      (fun vals ->
        let mine = Value.hash_array vals land max_int mod shards = me in
        if mine then Metrics.Counter.incr accepted;
        Some (Value.Bool mine))
  in
  Expr_ir.Call (f, key_exprs)

(* A pure-LFTA selection: N round-robin replicas, each appending a private
   "__seq" column carrying the tuple's global arrival index among the
   accepted tuples. A reunification merge ordered on __seq restores the
   exact single-shard output order, and an identity select registered
   under the original query name strips the column again. *)
let shard_pure_select ~shards t (node : phys_node) ~sel_input ~sel_pred ~sel_items =
  let qname = node.pname in
  let n_items = List.length sel_items in
  let stuples = Array.init shards (fun _ -> Metrics.Counter.make ()) in
  let replicas =
    List.init shards (fun i ->
        let owner, ctr = round_robin_owner ~shards ~me:i ~accepted:stuples.(i) in
        let seq =
          (* reads the round-robin counter the owner conjunct just
             advanced for this same tuple: [!ctr - 1] is the tuple's
             global index among cheap-passing tuples *)
          Rts.Func.pure ~name:"_shard_seq" ~arg_tys:[] ~ret_ty:Ty.Int (fun _ ->
              Some (Value.Int (!ctr - 1)))
        in
        {
          node with
          pname = replica_name qname i;
          pbody =
            Plan.Select
              {
                sel_input;
                sel_pred = Some (with_owner sel_pred owner);
                sel_items = sel_items @ [ (Expr_ir.Call (seq, []), "__seq") ];
                sample = None;
              };
          pschema =
            Schema.make
              (Array.to_list (Schema.fields node.pschema)
              @ [
                  {
                    Schema.name = "__seq";
                    ty = Ty.Int;
                    order = Order_prop.Monotone Order_prop.Asc;
                  };
                ]);
          pshard = Some { sshard = i; sseq = Some (n_items, (fun () -> !ctr)) };
        })
  in
  let rschema = (List.hd replicas).pschema in
  let merge_name = "_shard_" ^ qname in
  let merge =
    {
      pname = merge_name;
      pkind = Rts.Node.Hfta;
      pbody =
        Plan.Merge
          {
            Plan.merge_inputs =
              List.map
                (fun r -> Plan.From_stream { stream = r.pname; schema = rschema })
                replicas;
            merge_field = n_items;
          };
      pschema = rschema;
      pnic = None;
      ptable_bits = 0;
      pplace = None; pshard = None;
    }
  in
  let strip =
    {
      pname = qname;
      pkind = Rts.Node.Hfta;
      pbody =
        Plan.Select
          {
            sel_input = Plan.From_stream { stream = merge_name; schema = rschema };
            sel_pred = None;
            sel_items =
              List.mapi
                (fun i (f : Schema.field) -> (Expr_ir.Field (i, f.Schema.ty), f.Schema.name))
                (Array.to_list (Schema.fields node.pschema));
            sample = None;
          };
      pschema = node.pschema;
      pnic = None;
      ptable_bits = 0;
      pplace = None; pshard = None;
    }
  in
  ( { t with phys = replicas @ [ merge; strip ] },
    { squery = qname; smode = Round_robin; sshards = shards; stuples; sreunify = merge_name }
  )

(* A split sub/super aggregation: N replicas of the sub-aggregating LFTA,
   each owning the group keys that hash to its shard (round-robin when the
   epoch is the only key), reunified through a merge ordered on the epoch
   column and registered under the LFTA's name — the super-aggregating
   HFTA re-groups the shard partials exactly as it re-groups table
   evictions today, so the final output is unchanged. *)
let shard_sub_agg ~shards t (lfta : phys_node) (la : Plan.agg_body) (hfta : phys_node) =
  match (la.Plan.epoch, la.Plan.epoch_in_field) with
  | None, _ -> Error "no epoch group key to reunify the shard partials on"
  | _, None -> Error "the epoch key has no punctuation translator"
  | Some _, Some _ when la.Plan.epoch_band <> 0.0 ->
      Error "a banded epoch gives the reunification merge unsound bounds"
  | Some ek, Some _ ->
      let qname = t.plan.Plan.name in
      let stuples = Array.init shards (fun _ -> Metrics.Counter.make ()) in
      let non_epoch = List.filteri (fun j _ -> j <> ek) (List.map fst la.Plan.keys) in
      let smode = if non_epoch = [] then Round_robin else Hash_key in
      let replicas =
        List.init shards (fun i ->
            let owner =
              match smode with
              | Hash_key -> hash_owner ~shards ~me:i ~accepted:stuples.(i) non_epoch
              | Round_robin -> fst (round_robin_owner ~shards ~me:i ~accepted:stuples.(i))
            in
            {
              lfta with
              pname = replica_name qname i;
              pbody =
                Plan.Agg { la with Plan.agg_pred = Some (with_owner la.Plan.agg_pred owner) };
              pshard = Some { sshard = i; sseq = None };
            })
      in
      let merge =
        {
          pname = lfta.pname;
          pkind = Rts.Node.Hfta;
          pbody =
            Plan.Merge
              {
                Plan.merge_inputs =
                  List.map
                    (fun r -> Plan.From_stream { stream = r.pname; schema = lfta.pschema })
                    replicas;
                merge_field = ek;
              };
          pschema = lfta.pschema;
          pnic = None;
          ptable_bits = 0;
          pplace = None; pshard = None;
        }
      in
      Ok
        ( { t with phys = replicas @ [ merge; hfta ] },
          { squery = qname; smode; sshards = shards; stuples; sreunify = lfta.pname } )

let fallback_reason t =
  match t.plan.Plan.body with
  | Plan.Join _ -> "joins run as a single HFTA"
  | Plan.Merge _ -> "merges run as a single HFTA"
  | Plan.Select { sel_input = Plan.From_stream _; _ } | Plan.Agg { Plan.agg_input = Plan.From_stream _; _ }
    ->
      "stream input: shard the protocol tap upstream instead"
  | Plan.Select { sample = Some _; _ } -> "sampling draws from a single stream of randomness"
  | Plan.Select _ -> "an expensive predicate or item keeps the query on one HFTA"
  | Plan.Agg _ -> "an expensive predicate, key or argument keeps aggregation on one HFTA"

let shard ~shards (t : t) =
  if shards < 2 then Error "shards < 2"
  else if List.exists (fun p -> p.pplace <> None) t.phys then
    Error "explicit placement pins the chain to fixed domains"
  else if
    List.exists
      (fun p ->
        Array.exists (fun (f : Schema.field) -> f.Schema.name = "__seq") (Schema.fields p.pschema))
      t.phys
  then Error "a \"__seq\" column already exists"
  else
    match t.phys with
    | [
     ({ pkind = Rts.Node.Lfta; pbody = Plan.Select { sel_input; sel_pred; sel_items; sample = None }; _ }
      as node);
    ] ->
        Ok (shard_pure_select ~shards t node ~sel_input ~sel_pred ~sel_items)
    | [ ({ pkind = Rts.Node.Lfta; pbody = Plan.Agg la; _ } as lfta); ({ pkind = Rts.Node.Hfta; _ } as hfta) ]
      ->
        shard_sub_agg ~shards t lfta la hfta
    | _ -> Error (fallback_reason t)

