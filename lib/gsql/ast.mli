(** Abstract syntax of GSQL programs: PROTOCOL definitions and queries. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band  (** bitwise and, [&] *)
  | Bor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Not | Neg

type agg_kind =
  | Count
  | Sum
  | Min
  | Max
  | Avg
  | Approx_count_distinct of int option
      (** HLL-based approximate COUNT(DISTINCT x); the optional literal
          is the sketch precision (registers = 2^precision) *)
  | Heavy_hitters of int option
      (** space-saving top-k summary; the optional literal is [k] *)
  | Cm_count  (** count-min-sketched count of non-null arguments *)

type expr =
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Bool_lit of bool
  | Ip_lit of int
  | Param of string  (** [$name], bound at query instantiation *)
  | Ident of string  (** field, alias, or group-by alias *)
  | Qualified of string * string  (** [alias.field] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Agg of agg_kind * expr option  (** a count over all tuples is [Agg (Count, None)] *)

type select_item = { expr : expr; alias : string option }

(** A FROM entry: [interface.protocol] (a Protocol source), a named
    stream (another query's output), or an inline subquery
    [(SELECT ...) alias]; [FROM tcp] with no interface means the default
    interface. Subqueries are hoisted into standalone named queries by the
    compile driver ("supporting subqueries in the FROM clause requires
    only an update of the parser", Section 2.2). *)
type source_ref = {
  interface : string option;
  stream : string;  (** empty when [sub] is set, filled in by hoisting *)
  src_alias : string option;
  sub : select_query option;
}

and select_query = {
  select : select_item list;
  from : source_ref list;  (** one, or two for a join *)
  where : expr option;
  group_by : select_item list;
  having : expr option;
  sample : float option;
}

type merge_query = {
  merge_cols : (string * string) list;  (** [alias.field] per input, in FROM order *)
  merge_from : source_ref list;
}

type query_body = Select_q of select_query | Merge_q of merge_query

type query_def = {
  props : (string * string) list;  (** the DEFINE section; [query_name] names the query *)
  body : query_body;
}

(** PROTOCOL DDL: field declarations with ordering annotations. *)
type field_decl = {
  field_name : string;
  type_name : string;
  order_spec : order_spec option;
}

and order_spec =
  | Spec_increasing
  | Spec_decreasing
  | Spec_strictly_increasing
  | Spec_strictly_decreasing
  | Spec_nonrepeating
  | Spec_banded_increasing of float
  | Spec_banded_decreasing of float
  | Spec_increasing_in of string list

type protocol_def = { protocol_name : string; fields : field_decl list }

type decl = Protocol_decl of protocol_def | Query_decl of query_def

type program = decl list

val query_name : query_def -> string option
(** The [query_name] property of the DEFINE section. *)

val agg_string : agg_kind -> string
val pp_expr : Format.formatter -> expr -> unit
val expr_to_string : expr -> string
