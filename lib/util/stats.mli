(** Online summary statistics.

    Constant-space accumulators (Welford's algorithm) plus a reservoir for
    approximate percentiles; used by the benchmark harness and the
    simulator's measurement hooks. *)

type t

val create : ?reservoir:int -> unit -> t
(** [create ?reservoir ()] makes an empty accumulator. [reservoir] (default
    1024) bounds the sample kept for percentile estimates. *)

val add : t -> float -> unit

val clear : t -> unit
(** Forget every observation (the reservoir PRNG keeps its state, so a
    cleared accumulator is not bit-identical to a fresh one). *)

val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the observations; 0 when empty. *)

val variance : t -> float
(** Population variance; 0 when fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
(** Smallest observation; [infinity] when empty. *)

val max_value : t -> float
(** Largest observation; [neg_infinity] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] estimates the [p]-th percentile ([p] in \[0,100\]) from
    the reservoir sample; 0 when empty.

    Estimator: linear interpolation at rank [p/100 * (m - 1)] on the
    sorted reservoir of [m = min seen k] observations ([k] the
    reservoir size). While [seen <= k] the sample is the whole stream
    and the estimate is exact (up to interpolation). Beyond that the
    reservoir is a uniform sample (Vitter's algorithm R), and the
    estimate is the true quantile of rank [q ± sqrt (q (1 - q) / k)]
    (one standard error, [q = p/100]): for the default [k = 1024],
    ±1.6 rank points at the median, ±0.3 at p99. The error is in rank
    space — the value error it translates to depends on how steep the
    distribution is at that quantile. *)
