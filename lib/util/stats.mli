(** Online summary statistics.

    Constant-space accumulators (Welford's algorithm) plus a reservoir for
    approximate percentiles; used by the benchmark harness and the
    simulator's measurement hooks. *)

type t

val create : ?reservoir:int -> unit -> t
(** [create ?reservoir ()] makes an empty accumulator. [reservoir] (default
    1024) bounds the sample kept for percentile estimates. *)

val add : t -> float -> unit

val clear : t -> unit
(** Forget every observation (the reservoir PRNG keeps its state, so a
    cleared accumulator is not bit-identical to a fresh one). *)

val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the observations; 0 when empty. *)

val variance : t -> float
(** Population variance; 0 when fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
(** Smallest observation; [infinity] when empty. *)

val max_value : t -> float
(** Largest observation; [neg_infinity] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] estimates the [p]-th percentile ([p] in \[0,100\]) from
    the reservoir sample; 0 when empty. *)
