type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
  reservoir : float array;
  mutable seen : int; (* observations offered to the reservoir *)
  rng : Prng.t;
}

let create ?(reservoir = 1024) () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    total = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    reservoir = Array.make (max 1 reservoir) 0.0;
    seen = 0;
    rng = Prng.create 0x5747;
  }

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  let cap = Array.length t.reservoir in
  if t.seen < cap then t.reservoir.(t.seen) <- x
  else begin
    (* Vitter's algorithm R keeps a uniform sample. *)
    let j = Prng.int t.rng (t.seen + 1) in
    if j < cap then t.reservoir.(j) <- x
  end;
  t.seen <- t.seen + 1

let clear t =
  t.n <- 0;
  t.mean <- 0.0;
  t.m2 <- 0.0;
  t.total <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity;
  t.seen <- 0

let count t = t.n
let total t = t.total
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n
let stddev t = sqrt (variance t)
let min_value t = t.min_v
let max_value t = t.max_v

let percentile t p =
  let filled = min t.seen (Array.length t.reservoir) in
  if filled = 0 then 0.0
  else begin
    let sample = Array.sub t.reservoir 0 filled in
    Array.sort compare sample;
    let rank = p /. 100.0 *. float_of_int (filled - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let lo = max 0 (min lo (filled - 1)) and hi = max 0 (min hi (filled - 1)) in
    if lo = hi then sample.(lo)
    else
      let frac = rank -. float_of_int lo in
      (sample.(lo) *. (1.0 -. frac)) +. (sample.(hi) *. frac)
  end
